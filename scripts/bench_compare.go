// Command bench_compare diffs a freshly generated BENCH_core.json against the
// committed baseline and fails (exit 1) on regressions.
//
// Usage:
//
//	go run ./scripts -baseline BENCH_core.json -fresh /tmp/BENCH_fresh.json [-tolerance 0.5]
//
// Two classes of checks run:
//
//   - Exactness: when the two results cover the same corpus (equal n and
//     seed), the analyzed/failed/warning counts and the unique-bytecode count
//     must match bit-for-bit — the analysis is deterministic, so any drift is
//     a correctness bug, not noise. Within the fresh result, every engine
//     scaling point must derive the identical tuple count (the parallel
//     evaluator is exact at any worker count), and every sweep scaling point
//     must report identical analyzed/failed/warnings/unique-work counts: the
//     scheduler changes who computes what when, never the result, regardless
//     of worker or shard counts. The scheduled sweeps must also perform
//     exactly one analysis per unique bytecode, coalescing the rest. The
//     warm_restart section has its own exactness contract, checked within the
//     fresh result alone: the warm process start performs zero analyses and
//     zero decompilations, dispatches nothing to the pool, serves every
//     unique bytecode from the disk tier, and reproduces the cold run's
//     result digest bit-for-bit. A baseline with a warm_restart section also
//     pins its presence: a fresh result without one is a regression. The
//     replica_sweep section likewise: each replica's warm pass over the other
//     replica's half performs zero analyses and zero decompilations, its peer
//     hits cover exactly the unique bytecodes it lacked, and its digest is
//     bit-identical to the other replica's cold pass.
//
//   - Timing: the fresh uncached and cached sweep walls, the summed uncached
//     decompile stage, and the 1-worker sweep scaling wall may exceed the
//     baseline by at most the fractional -tolerance (default 0.5, i.e. +50%,
//     loose enough for shared CI runners). Timing checks are skipped when the
//     corpora differ, and also when the recorded CPU counts differ (or the
//     baseline predates recording them): wall-clock across machine shapes is
//     not comparable — which is also why multi-worker sweep walls are never
//     compared against the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ethainter/internal/bench"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_core.json", "committed baseline result")
		freshPath    = flag.String("fresh", "", "freshly generated result to vet (required)")
		tolerance    = flag.Float64("tolerance", 0.5, "max fractional wall-clock regression (0.5 = +50%)")
	)
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}
	problems := compare(baseline, fresh, *tolerance)
	for _, p := range problems {
		fmt.Printf("REGRESSION: %s\n", p)
	}
	if len(problems) > 0 {
		fmt.Printf("bench_compare: %d regression(s) against %s\n", len(problems), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("bench_compare: OK (uncached %s vs baseline %s, cached %s vs %s, tolerance +%.0f%%)\n",
		fmtNS(fresh.Uncached.WallNS), fmtNS(baseline.Uncached.WallNS),
		fmtNS(fresh.Cached.WallNS), fmtNS(baseline.Cached.WallNS), *tolerance*100)
}

func load(path string) (*bench.CoreBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.CoreBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare returns the list of regressions of fresh against baseline.
func compare(baseline, fresh *bench.CoreBenchResult, tolerance float64) []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	sameCorpus := baseline.N == fresh.N && baseline.Seed == fresh.Seed
	if !sameCorpus {
		fmt.Printf("note: corpora differ (baseline n=%d seed=%d, fresh n=%d seed=%d); only internal consistency is checked\n",
			baseline.N, baseline.Seed, fresh.N, fresh.Seed)
	}

	if sameCorpus {
		// Determinism: identical corpus must yield identical counts.
		if fresh.UniqueBytecodes != baseline.UniqueBytecodes {
			bad("unique bytecodes: %d, baseline %d", fresh.UniqueBytecodes, baseline.UniqueBytecodes)
		}
		for _, s := range []struct {
			name           string
			fresh, against bench.SweepResult
		}{
			{"uncached", fresh.Uncached, baseline.Uncached},
			{"cached", fresh.Cached, baseline.Cached},
		} {
			if s.fresh.Analyzed != s.against.Analyzed {
				bad("%s sweep analyzed %d contracts, baseline %d", s.name, s.fresh.Analyzed, s.against.Analyzed)
			}
			if s.fresh.Failed != s.against.Failed {
				bad("%s sweep failed on %d contracts, baseline %d", s.name, s.fresh.Failed, s.against.Failed)
			}
			if s.fresh.Warnings != s.against.Warnings {
				bad("%s sweep produced %d warnings, baseline %d", s.name, s.fresh.Warnings, s.against.Warnings)
			}
		}

		// Walls may only regress within tolerance — but only when both runs
		// recorded the same machine shape. A 4-core laptop legitimately takes
		// multiples of a 32-core runner's wall; that is not a regression.
		sameCPU := baseline.NumCPU > 0 && fresh.NumCPU == baseline.NumCPU &&
			fresh.GoMaxProcs == baseline.GoMaxProcs
		if !sameCPU {
			fmt.Printf("note: CPU shapes differ or are unrecorded (baseline %d cpus/gomaxprocs %d, fresh %d/%d); wall-clock checks skipped\n",
				baseline.NumCPU, baseline.GoMaxProcs, fresh.NumCPU, fresh.GoMaxProcs)
		} else {
			checkWall := func(name string, freshNS, baseNS int64) {
				if baseNS <= 0 {
					return
				}
				limit := float64(baseNS) * (1 + tolerance)
				if float64(freshNS) > limit {
					bad("%s %s exceeds baseline %s by more than +%.0f%%",
						name, fmtNS(freshNS), fmtNS(baseNS), tolerance*100)
				}
			}
			checkWall("uncached sweep wall", fresh.Uncached.WallNS, baseline.Uncached.WallNS)
			checkWall("cached sweep wall", fresh.Cached.WallNS, baseline.Cached.WallNS)
			checkWall("uncached decompile stage", fresh.Uncached.Stages.Decompile, baseline.Uncached.Stages.Decompile)
			// The analysis stages the dense-layout work targets: each summed
			// stage wall is held to the same tolerance as the decompile stage.
			checkWall("uncached facts stage", fresh.Uncached.Stages.Facts, baseline.Uncached.Stages.Facts)
			checkWall("uncached guards stage", fresh.Uncached.Stages.Guards, baseline.Uncached.Stages.Guards)
			checkWall("uncached fixpoint stage", fresh.Uncached.Stages.Fixpoint, baseline.Uncached.Stages.Fixpoint)
			// Only the sequential sweep wall is machine-comparable; the
			// multi-worker points measure scaling, which CI runner noise and
			// core-count differences dominate.
			if f, b := sweepPointAt(fresh, 1), sweepPointAt(baseline, 1); f != nil && b != nil {
				checkWall("1-worker sweep scaling wall", f.WallNS, b.WallNS)
			}
			if fw, bw := fresh.WarmRestart, baseline.WarmRestart; fw != nil && bw != nil {
				checkWall("warm restart cold wall", fw.Cold.WallNS, bw.Cold.WallNS)
				checkWall("warm restart warm wall", fw.Warm.WallNS, bw.Warm.WallNS)
			}
			if fr, br := fresh.ReplicaSweep, baseline.ReplicaSweep; fr != nil && br != nil {
				// The individual passes — the warm ones especially — are
				// ~100ms of loopback HTTP, where connection-setup jitter
				// alone can exceed any sane tolerance; only the whole
				// experiment's wall is stable enough to gate on.
				checkWall("replica sweep total wall",
					fr.ColdA.WallNS+fr.ColdB.WallNS+fr.WarmA.WallNS+fr.WarmB.WallNS,
					br.ColdA.WallNS+br.ColdB.WallNS+br.WarmA.WallNS+br.WarmB.WallNS)
			}
		}

		// The scheduled sweep's dedup invariant: exactly one analysis per
		// unique bytecode, every other request coalesced onto it.
		if s := fresh.Cached.Sched; s.Unique > 0 {
			if s.Unique != uint64(fresh.UniqueBytecodes) {
				bad("cached sweep dispatched %d unique analyses, want one per unique bytecode (%d)",
					s.Unique, fresh.UniqueBytecodes)
			}
			if got := s.Coalesced + s.CacheHits; got != uint64(fresh.N)-s.Unique {
				bad("cached sweep coalesced+hit %d requests, want the full remainder (%d)",
					got, uint64(fresh.N)-s.Unique)
			}
		}
	}

	// The parallel engine is exact: every scaling point derives the same sets.
	if len(fresh.EngineScaling) > 0 {
		want := fresh.EngineScaling[0].Tuples
		for _, p := range fresh.EngineScaling[1:] {
			if p.Tuples != want {
				bad("engine scaling at %d workers derived %d tuples, %d workers derived %d — parallel evaluation is not exact",
					p.Workers, p.Tuples, fresh.EngineScaling[0].Workers, want)
			}
		}
	}

	// The sweep scheduler is exact: every worker count must produce
	// bit-identical counts — analyzed, failed, warnings, and the unique-work
	// plan. Shard and worker counts change contention, never results.
	if len(fresh.SweepScaling) > 0 {
		want := fresh.SweepScaling[0]
		for _, p := range fresh.SweepScaling[1:] {
			if p.Analyzed != want.Analyzed || p.Failed != want.Failed || p.Warnings != want.Warnings {
				bad("sweep scaling at %d workers counted %d/%d/%d analyzed/failed/warnings, %d workers counted %d/%d/%d — scheduling changed results",
					p.Workers, p.Analyzed, p.Failed, p.Warnings,
					want.Workers, want.Analyzed, want.Failed, want.Warnings)
			}
			if p.UniqueWork != want.UniqueWork {
				bad("sweep scaling at %d workers planned %d unique items, %d workers planned %d — dedup is not deterministic",
					p.Workers, p.UniqueWork, want.Workers, want.UniqueWork)
			}
		}
		for _, p := range fresh.SweepScaling {
			if p.Analyzed+p.Failed != fresh.N {
				bad("sweep scaling at %d workers covered %d contracts, corpus has %d",
					p.Workers, p.Analyzed+p.Failed, fresh.N)
			}
			if p.UniqueWork != uint64(fresh.UniqueBytecodes) {
				bad("sweep scaling at %d workers dispatched %d unique analyses, want one per unique bytecode (%d)",
					p.Workers, p.UniqueWork, fresh.UniqueBytecodes)
			}
		}
		if sameCorpus && len(baseline.SweepScaling) > 0 {
			b := baseline.SweepScaling[0]
			if want.Analyzed != b.Analyzed || want.Failed != b.Failed || want.Warnings != b.Warnings {
				bad("sweep scaling counts %d/%d/%d analyzed/failed/warnings, baseline %d/%d/%d",
					want.Analyzed, want.Failed, want.Warnings, b.Analyzed, b.Failed, b.Warnings)
			}
		}
	}

	// The shared-facts contract, internal to the fresh result: no matter how
	// many configs the corpus is swept under through one cache, the facts
	// stratum is computed exactly once per unique decompilable bytecode — all
	// of it during the first config's pass, with every later pass reusing the
	// memo and running only guards + fixpoint.
	if sw := fresh.ConfigSweep; sw != nil {
		if sw.FactsComputed != uint64(sw.UniqueOK) {
			bad("config sweep computed %d facts strata over %d configs, want exactly one per unique decompilable bytecode (%d)",
				sw.FactsComputed, len(sw.Configs), sw.UniqueOK)
		}
		for i, p := range sw.Configs {
			if p.Analyzed+p.Failed != fresh.N {
				bad("config sweep [%s] covered %d contracts, corpus has %d", p.Config, p.Analyzed+p.Failed, fresh.N)
			}
			if i == 0 {
				continue
			}
			if p.FactsComputed != 0 {
				bad("config sweep [%s] recomputed %d facts strata, want zero — facts sharing across configs is broken",
					p.Config, p.FactsComputed)
			}
			if p.Analyzed != sw.Configs[0].Analyzed || p.Failed != sw.Configs[0].Failed {
				bad("config sweep [%s] counted %d/%d analyzed/failed, first config counted %d/%d — decompilability must be config-independent",
					p.Config, p.Analyzed, p.Failed, sw.Configs[0].Analyzed, sw.Configs[0].Failed)
			}
		}
		// The default-config point re-derives the uncached sweep's results
		// through the shared-facts path; the counts must agree bit-for-bit.
		if len(sw.Configs) > 0 && sw.Configs[0].Config == "default" {
			d := sw.Configs[0]
			if d.Analyzed != fresh.Uncached.Analyzed || d.Failed != fresh.Uncached.Failed || d.Warnings != fresh.Uncached.Warnings {
				bad("config sweep default pass counted %d/%d/%d analyzed/failed/warnings, uncached sweep %d/%d/%d — shared-facts analysis diverges",
					d.Analyzed, d.Failed, d.Warnings, fresh.Uncached.Analyzed, fresh.Uncached.Failed, fresh.Uncached.Warnings)
			}
		}
	} else if baseline.ConfigSweep != nil {
		bad("fresh result has no config_sweep section but the baseline does — the shared-facts experiment went missing")
	}

	// The warm-restart contract, internal to the fresh result: the second
	// process start over the persisted tier does zero pipeline work and
	// reproduces the cold run exactly.
	if wr := fresh.WarmRestart; wr != nil {
		cold, warm := wr.Cold, wr.Warm
		if warm.Analyses != 0 || warm.Decompiles != 0 {
			bad("warm restart ran %d analyses and %d decompilations, want zero of each — the disk tier failed to serve the corpus",
				warm.Analyses, warm.Decompiles)
		}
		if warm.UniqueWork != 0 {
			bad("warm restart dispatched %d unique items to the scheduler pool, want everything served on the Lookup fast path",
				warm.UniqueWork)
		}
		if warm.Analyzed != cold.Analyzed || warm.Failed != cold.Failed || warm.Warnings != cold.Warnings {
			bad("warm restart counted %d/%d/%d analyzed/failed/warnings, cold run counted %d/%d/%d",
				warm.Analyzed, warm.Failed, warm.Warnings, cold.Analyzed, cold.Failed, cold.Warnings)
		}
		if warm.Digest == "" || warm.Digest != cold.Digest {
			bad("warm restart digest %q differs from cold digest %q — disk-served results are not bit-identical",
				warm.Digest, cold.Digest)
		}
		if cold.Analyzed+cold.Failed != fresh.N {
			bad("warm restart cold pass covered %d contracts, corpus has %d", cold.Analyzed+cold.Failed, fresh.N)
		}
		if cold.Analyses != uint64(fresh.UniqueBytecodes) {
			bad("warm restart cold pass ran %d analyses, want one per unique bytecode (%d)",
				cold.Analyses, fresh.UniqueBytecodes)
		}
		if warm.DiskHits != uint64(fresh.UniqueBytecodes) {
			bad("warm restart served %d unique bytecodes from disk, want all of them (%d)",
				warm.DiskHits, fresh.UniqueBytecodes)
		}
	} else if baseline.WarmRestart != nil {
		bad("fresh result has no warm_restart section but the baseline does — the cold→warm double start went missing")
	}

	// The replica-sweep contract, internal to the fresh result: after each
	// replica cold-analyzes its own half, sweeping the other half is pure
	// peer fill — zero analyses, zero decompilations, nothing dispatched to
	// the pool, peer hits covering exactly the uniques the replica lacked,
	// and each warm digest bit-identical to the other replica's cold digest.
	if rs := fresh.ReplicaSweep; rs != nil {
		if rs.HalfA+rs.HalfB != fresh.N {
			bad("replica sweep halves cover %d+%d contracts, corpus has %d", rs.HalfA, rs.HalfB, fresh.N)
		}
		for _, p := range []struct {
			name string
			run  bench.ReplicaSweepRun
			half int
		}{
			{"cold A", rs.ColdA, rs.HalfA},
			{"cold B", rs.ColdB, rs.HalfB},
			{"warm A", rs.WarmA, rs.HalfB},
			{"warm B", rs.WarmB, rs.HalfA},
		} {
			if p.run.Analyzed+p.run.Failed != p.half {
				bad("replica sweep %s covered %d contracts, its half has %d", p.name, p.run.Analyzed+p.run.Failed, p.half)
			}
			if p.run.PeerErrors != 0 {
				bad("replica sweep %s counted %d peer errors between healthy loopback replicas", p.name, p.run.PeerErrors)
			}
		}
		if rs.ColdA.PeerHits != 0 {
			bad("replica sweep cold A peer-filled %d entries from an empty peer", rs.ColdA.PeerHits)
		}
		if rs.ColdA.Analyses != uint64(rs.UniqueA) {
			bad("replica sweep cold A ran %d analyses, want one per unique bytecode in its half (%d)",
				rs.ColdA.Analyses, rs.UniqueA)
		}
		if rs.ColdB.PeerHits != uint64(rs.SharedUnique) {
			bad("replica sweep cold B peer-filled %d entries, want exactly the bytecodes the halves share (%d)",
				rs.ColdB.PeerHits, rs.SharedUnique)
		}
		if rs.ColdB.Analyses != uint64(rs.UniqueB-rs.SharedUnique) {
			bad("replica sweep cold B ran %d analyses, want its half's uniques minus the shared ones (%d)",
				rs.ColdB.Analyses, rs.UniqueB-rs.SharedUnique)
		}
		for _, p := range []struct {
			name string
			run  bench.ReplicaSweepRun
		}{{"warm A", rs.WarmA}, {"warm B", rs.WarmB}} {
			if p.run.Analyses != 0 || p.run.Decompiles != 0 {
				bad("replica sweep %s ran %d analyses and %d decompilations, want zero of each — the peer-fill tier failed to serve its half",
					p.name, p.run.Analyses, p.run.Decompiles)
			}
			if p.run.UniqueWork != 0 {
				bad("replica sweep %s dispatched %d unique items to the scheduler pool, want everything served on the Lookup fast path",
					p.name, p.run.UniqueWork)
			}
		}
		if want := uint64(rs.UniqueB - rs.SharedUnique); rs.WarmA.PeerHits != want {
			bad("replica sweep warm A peer-filled %d entries, want exactly the uniques it lacked (%d)",
				rs.WarmA.PeerHits, want)
		}
		if want := uint64(rs.UniqueA - rs.SharedUnique); rs.WarmB.PeerHits != want {
			bad("replica sweep warm B peer-filled %d entries, want exactly the uniques it lacked (%d)",
				rs.WarmB.PeerHits, want)
		}
		if rs.WarmA.Digest == "" || rs.WarmA.Digest != rs.ColdB.Digest {
			bad("replica sweep warm A digest %q differs from cold B digest %q — peer-served results are not bit-identical",
				rs.WarmA.Digest, rs.ColdB.Digest)
		}
		if rs.WarmB.Digest == "" || rs.WarmB.Digest != rs.ColdA.Digest {
			bad("replica sweep warm B digest %q differs from cold A digest %q — peer-served results are not bit-identical",
				rs.WarmB.Digest, rs.ColdA.Digest)
		}
	} else if baseline.ReplicaSweep != nil {
		bad("fresh result has no replica_sweep section but the baseline does — the two-replica experiment went missing")
	}
	return problems
}

// sweepPointAt finds the sweep scaling point at the given worker count, nil
// when the result has none (old baselines predate the curve).
func sweepPointAt(r *bench.CoreBenchResult, workers int) *bench.SweepScalingPoint {
	for i := range r.SweepScaling {
		if r.SweepScaling[i].Workers == workers {
			return &r.SweepScaling[i]
		}
	}
	return nil
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
	os.Exit(1)
}
