// Command bench_compare diffs a freshly generated BENCH_core.json against the
// committed baseline and fails (exit 1) on regressions.
//
// Usage:
//
//	go run ./scripts -baseline BENCH_core.json -fresh /tmp/BENCH_fresh.json [-tolerance 0.5]
//
// Two classes of checks run:
//
//   - Exactness: when the two results cover the same corpus (equal n and
//     seed), the analyzed/failed/warning counts and the unique-bytecode count
//     must match bit-for-bit — the analysis is deterministic, so any drift is
//     a correctness bug, not noise. Within the fresh result, every engine
//     scaling point must derive the identical tuple count: the parallel
//     evaluator is exact at any worker count.
//
//   - Timing: the fresh uncached and cached sweep walls — and the summed
//     uncached decompile stage — may exceed the baseline by at most the
//     fractional -tolerance (default 0.5, i.e. +50%, loose enough for shared
//     CI runners). Timing checks are skipped when the corpora differ, and
//     also when the recorded CPU counts differ (or the baseline predates
//     recording them): wall-clock across machine shapes is not comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ethainter/internal/bench"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_core.json", "committed baseline result")
		freshPath    = flag.String("fresh", "", "freshly generated result to vet (required)")
		tolerance    = flag.Float64("tolerance", 0.5, "max fractional wall-clock regression (0.5 = +50%)")
	)
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "bench_compare: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}
	problems := compare(baseline, fresh, *tolerance)
	for _, p := range problems {
		fmt.Printf("REGRESSION: %s\n", p)
	}
	if len(problems) > 0 {
		fmt.Printf("bench_compare: %d regression(s) against %s\n", len(problems), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("bench_compare: OK (uncached %s vs baseline %s, cached %s vs %s, tolerance +%.0f%%)\n",
		fmtNS(fresh.Uncached.WallNS), fmtNS(baseline.Uncached.WallNS),
		fmtNS(fresh.Cached.WallNS), fmtNS(baseline.Cached.WallNS), *tolerance*100)
}

func load(path string) (*bench.CoreBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.CoreBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare returns the list of regressions of fresh against baseline.
func compare(baseline, fresh *bench.CoreBenchResult, tolerance float64) []string {
	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	sameCorpus := baseline.N == fresh.N && baseline.Seed == fresh.Seed
	if !sameCorpus {
		fmt.Printf("note: corpora differ (baseline n=%d seed=%d, fresh n=%d seed=%d); only internal consistency is checked\n",
			baseline.N, baseline.Seed, fresh.N, fresh.Seed)
	}

	if sameCorpus {
		// Determinism: identical corpus must yield identical counts.
		if fresh.UniqueBytecodes != baseline.UniqueBytecodes {
			bad("unique bytecodes: %d, baseline %d", fresh.UniqueBytecodes, baseline.UniqueBytecodes)
		}
		for _, s := range []struct {
			name           string
			fresh, against bench.SweepResult
		}{
			{"uncached", fresh.Uncached, baseline.Uncached},
			{"cached", fresh.Cached, baseline.Cached},
		} {
			if s.fresh.Analyzed != s.against.Analyzed {
				bad("%s sweep analyzed %d contracts, baseline %d", s.name, s.fresh.Analyzed, s.against.Analyzed)
			}
			if s.fresh.Failed != s.against.Failed {
				bad("%s sweep failed on %d contracts, baseline %d", s.name, s.fresh.Failed, s.against.Failed)
			}
			if s.fresh.Warnings != s.against.Warnings {
				bad("%s sweep produced %d warnings, baseline %d", s.name, s.fresh.Warnings, s.against.Warnings)
			}
		}

		// Walls may only regress within tolerance — but only when both runs
		// recorded the same machine shape. A 4-core laptop legitimately takes
		// multiples of a 32-core runner's wall; that is not a regression.
		sameCPU := baseline.NumCPU > 0 && fresh.NumCPU == baseline.NumCPU &&
			fresh.GoMaxProcs == baseline.GoMaxProcs
		if !sameCPU {
			fmt.Printf("note: CPU shapes differ or are unrecorded (baseline %d cpus/gomaxprocs %d, fresh %d/%d); wall-clock checks skipped\n",
				baseline.NumCPU, baseline.GoMaxProcs, fresh.NumCPU, fresh.GoMaxProcs)
		} else {
			checkWall := func(name string, freshNS, baseNS int64) {
				if baseNS <= 0 {
					return
				}
				limit := float64(baseNS) * (1 + tolerance)
				if float64(freshNS) > limit {
					bad("%s %s exceeds baseline %s by more than +%.0f%%",
						name, fmtNS(freshNS), fmtNS(baseNS), tolerance*100)
				}
			}
			checkWall("uncached sweep wall", fresh.Uncached.WallNS, baseline.Uncached.WallNS)
			checkWall("cached sweep wall", fresh.Cached.WallNS, baseline.Cached.WallNS)
			checkWall("uncached decompile stage", fresh.Uncached.Stages.Decompile, baseline.Uncached.Stages.Decompile)
		}
	}

	// The parallel engine is exact: every scaling point derives the same sets.
	if len(fresh.EngineScaling) > 0 {
		want := fresh.EngineScaling[0].Tuples
		for _, p := range fresh.EngineScaling[1:] {
			if p.Tuples != want {
				bad("engine scaling at %d workers derived %d tuples, %d workers derived %d — parallel evaluation is not exact",
					p.Workers, p.Tuples, fresh.EngineScaling[0].Workers, want)
			}
		}
	}
	return problems
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench_compare: %v\n", err)
	os.Exit(1)
}
