#!/bin/sh
# serve_smoke.sh — build ethainter-serve, boot it, hit the main endpoints,
# and assert a clean drain on SIGTERM. Run via `make serve-smoke`.
set -eu

PORT="${SMOKE_PORT:-18545}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/ethainter-serve"

go build -o "$BIN" ./cmd/ethainter-serve
"$BIN" -addr "127.0.0.1:$PORT" -timeout 30s &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener.
up=0
i=0
while [ "$i" -lt 50 ]; do
    if curl -fs "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    i=$((i + 1))
    sleep 0.1
done
[ "$up" = 1 ] || { echo "serve-smoke: server never came up" >&2; exit 1; }

SRC='contract Killable {
    address beneficiary;
    constructor() { beneficiary = msg.sender; }
    function kill() public { selfdestruct(beneficiary); }
}'

echo "== /healthz"
curl -fs "$BASE/healthz"
echo "== /analyze (miss)"
curl -fs -X POST --data-binary "$SRC" "$BASE/analyze" | grep -q selfdestruct
echo "ok"
echo "== /analyze (repeat, must hit the cache)"
curl -fs -X POST --data-binary "$SRC" "$BASE/analyze" >/dev/null
echo "== /batch"
curl -fs -X POST --data-binary '["0x00", "0xzz"]' "$BASE/batch" | grep -q '"failed"'
echo "ok"
echo "== /statsz"
STATS="$(curl -fs "$BASE/statsz")"
echo "$STATS" | grep -q '"hits": [1-9]' || { echo "serve-smoke: no cache hit recorded: $STATS" >&2; exit 1; }
echo "cache hit recorded"

echo "== SIGTERM drain"
kill -TERM "$PID"
if wait "$PID"; then
    echo "serve-smoke: clean shutdown"
else
    echo "serve-smoke: server exited non-zero on SIGTERM" >&2
    exit 1
fi
trap - EXIT
