#!/bin/sh
# sync_smoke.sh — build ethainter-sync and run a short follow over a seeded
# chain, twice against one -cache-dir: the cold run must index findings with
# exactly one analysis per unique bytecode (zero duplicate analyses), and the
# warm restart must reproduce the identical findings digest with zero new
# analyses and zero decompilations. Run via `make sync-smoke`.
set -eu

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
BIN="$TMP/ethainter-sync"
CACHE="$TMP/cache"

go build -o "$BIN" ./cmd/ethainter-sync

# jsonfield FILE KEY -> numeric/string value (summary JSON is one key per line).
jsonfield() {
    sed -n "s/^  \"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1"
}

echo "== cold follow"
"$BIN" -oneshot -corpus 50 -seed 1 -cache-dir "$CACHE" > "$TMP/cold.json" 2> /dev/null
cat "$TMP/cold.json"

COLD_FINDINGS="$(jsonfield "$TMP/cold.json" findings)"
COLD_LAUNCHED="$(jsonfield "$TMP/cold.json" analyses_launched)"
COLD_ANALYSES="$(jsonfield "$TMP/cold.json" cache_analyses)"
COLD_DIGEST="$(jsonfield "$TMP/cold.json" digest)"

[ "$COLD_FINDINGS" -ge 1 ] || { echo "sync-smoke: cold follow found no findings" >&2; exit 1; }
# Zero duplicate analyses: every launched analysis was for a unique bytecode,
# so the cache computed exactly once per launch.
[ "$COLD_ANALYSES" = "$COLD_LAUNCHED" ] || {
    echo "sync-smoke: duplicate analyses (launched $COLD_LAUNCHED, computed $COLD_ANALYSES)" >&2; exit 1; }

echo "== warm restart (same -cache-dir)"
"$BIN" -oneshot -corpus 50 -seed 1 -cache-dir "$CACHE" > "$TMP/warm.json" 2> /dev/null
cat "$TMP/warm.json"

WARM_FINDINGS="$(jsonfield "$TMP/warm.json" findings)"
WARM_ANALYSES="$(jsonfield "$TMP/warm.json" cache_analyses)"
WARM_DECOMPILES="$(jsonfield "$TMP/warm.json" cache_decompiles)"
WARM_DIGEST="$(jsonfield "$TMP/warm.json" digest)"

[ "$WARM_ANALYSES" = 0 ] || { echo "sync-smoke: warm restart performed $WARM_ANALYSES analyses" >&2; exit 1; }
[ "$WARM_DECOMPILES" = 0 ] || { echo "sync-smoke: warm restart performed $WARM_DECOMPILES decompilations" >&2; exit 1; }
[ "$WARM_FINDINGS" = "$COLD_FINDINGS" ] || {
    echo "sync-smoke: findings diverged (cold $COLD_FINDINGS, warm $WARM_FINDINGS)" >&2; exit 1; }
[ "$WARM_DIGEST" = "$COLD_DIGEST" ] || {
    echo "sync-smoke: digest diverged (cold $COLD_DIGEST, warm $WARM_DIGEST)" >&2; exit 1; }

echo "sync-smoke: cold indexed $COLD_FINDINGS findings, warm restart reproduced digest with zero re-analyses"
