package main

import (
	"os"
	"path/filepath"
	"testing"

	"ethainter/internal/bench"
)

// Each experiment runner executes end to end at a tiny scale. The core
// runner's JSON output goes to a temp dir so tests leave no artifacts.
func TestRunnersExecute(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_core.json")
	// sweep-workers 2 keeps the scaling curve at two points ({1,2}) so the
	// tiny-scale run stays fast; 4 shards exercise the sharded cache path.
	runners := experimentRunners(bench.CoreOptions{
		N: 60, Seed: 5, Workers: 2, Parallelism: 2, SweepWorkers: 2, CacheShards: 4,
	}, jsonPath)
	for _, name := range []string{"exp1", "table2", "fig6", "securify", "rq2", "fig8", "core"} {
		out := runners[name]()
		if len(out) == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Errorf("core runner did not write %s: %v", jsonPath, err)
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run("nosuch", bench.CoreOptions{N: 10, Seed: 1, Workers: 1}, ""); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run("table2", bench.CoreOptions{N: 40, Seed: 1, Workers: 2}, ""); err != nil {
		t.Errorf("table2: %v", err)
	}
}
