package main

import (
	"os"
	"path/filepath"
	"testing"

	"ethainter/internal/decompiler"
)

// Each experiment runner executes end to end at a tiny scale. The core
// runner's JSON output goes to a temp dir so tests leave no artifacts.
func TestRunnersExecute(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_core.json")
	// sweep-workers 2 keeps the scaling curve at two points ({1,2}) so the
	// tiny-scale run stays fast; 4 shards exercise the sharded cache path.
	runners := experimentRunners(60, 5, 2, 2, 2, 4, "", jsonPath, decompiler.Limits{})
	for _, name := range []string{"exp1", "table2", "fig6", "securify", "rq2", "fig8", "core"} {
		out := runners[name]()
		if len(out) == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Errorf("core runner did not write %s: %v", jsonPath, err)
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run("nosuch", 10, 1, 1, 0, 1, 0, "", "", decompiler.Limits{}); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run("table2", 40, 1, 2, 0, 1, 0, "", "", decompiler.Limits{}); err != nil {
		t.Errorf("table2: %v", err)
	}
}
