package main

import "testing"

// Each experiment runner executes end to end at a tiny scale.
func TestRunnersExecute(t *testing.T) {
	runners := experimentRunners(60, 5, 2)
	for _, name := range []string{"exp1", "table2", "fig6", "securify", "rq2", "fig8"} {
		out := runners[name]()
		if len(out) == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run("nosuch", 10, 1, 1); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run("table2", 40, 1, 2); err != nil {
		t.Errorf("table2: %v", err)
	}
}
