package main

import (
	"fmt"
	"os"

	"ethainter/internal/bench"
)

// experimentRunners binds every experiment to a renderer at the given scale.
// Scales are tuned per experiment the way the paper's were (the inspection
// sample is 40; the Securify sample 2K; Figure 7 needs enough source-
// compatible contracts). The core experiment takes the options verbatim; the
// rest use only the corpus shape and worker count.
func experimentRunners(opts bench.CoreOptions, jsonPath string) map[string]func() string {
	n, seed, workers := opts.N, opts.Seed, opts.Workers
	return map[string]func() string{
		"core": func() string {
			r := bench.CoreBench(opts)
			out := r.Render()
			if jsonPath != "" {
				data, err := r.JSON()
				if err == nil {
					err = os.WriteFile(jsonPath, data, 0o644)
				}
				if err != nil {
					out += fmt.Sprintf("note: writing %s failed: %v\n", jsonPath, err)
				} else {
					out += fmt.Sprintf("note: wrote %s\n", jsonPath)
				}
			}
			return out
		},
		"exp1": func() string {
			return bench.Exp1(n, seed, workers).Render()
		},
		"table2": func() string {
			return bench.Table2(n, seed, workers).Render()
		},
		"fig6": func() string {
			return bench.Fig6(n, seed, 40, workers).Render()
		},
		"securify": func() string {
			sample := n
			if sample > 2000 {
				sample = 2000
			}
			return bench.SecurifyCmp(n, seed, sample, workers).Render()
		},
		"fig7": func() string {
			// Figure 7's universe is the ~3% source-compatible subset;
			// over-generate so the universe is meaningful.
			return bench.Fig7(max(n, 1500), seed, workers).Render()
		},
		"teether": func() string {
			// Symbolic execution is the costly baseline; cap its population.
			m := n
			if m > 600 {
				m = 600
			}
			return bench.TeetherCmp(m, seed, workers).Render()
		},
		"rq2": func() string {
			return bench.RQ2(n, seed, workers).Render()
		},
		"fig8": func() string {
			return bench.Fig8(n, seed, workers).Render()
		},
	}
}
