// Command ethainter-bench regenerates every table and figure of the paper's
// evaluation (Section 6) over the synthetic corpus.
//
// Usage:
//
//	ethainter-bench [-n N] [-seed S] [-workers W] [-exp name]
//
// Experiments: exp1, table2, fig6, securify, fig7, teether, rq2, fig8, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

func main() {
	var (
		n       = flag.Int("n", 2000, "corpus size per experiment")
		seed    = flag.Int64("seed", 20200615, "corpus seed (the paper's publication date)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent analysis workers (the paper used 45)")
		exp     = flag.String("exp", "all", "experiment: exp1|table2|fig6|securify|fig7|teether|rq2|fig8|all")
	)
	flag.Parse()
	if err := run(*exp, *n, *seed, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "ethainter-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, n int, seed int64, workers int) error {
	runners := experimentRunners(n, seed, workers)
	if exp != "all" {
		r, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		fmt.Print(r())
		return nil
	}
	for _, name := range []string{"exp1", "table2", "fig6", "securify", "fig7", "teether", "rq2", "fig8"} {
		fmt.Print(runners[name]())
		fmt.Println()
	}
	return nil
}
