// Command ethainter-bench regenerates every table and figure of the paper's
// evaluation (Section 6) over the synthetic corpus.
//
// Usage:
//
//	ethainter-bench [-n N] [-seed S] [-workers W] [-parallelism P]
//	                [-sweep-workers W] [-cache-shards N] [-cache-dir DIR]
//	                [-exp name]
//	                [-progress] [-json file] [-cpuprofile file] [-memprofile file]
//
// Experiments: exp1, table2, fig6, securify, fig7, teether, rq2, fig8,
// core, all. The core experiment additionally emits a machine-readable
// BENCH_core.json (per-stage timings, cache hit rates) at the -json path.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ethainter/internal/bench"
	"ethainter/internal/decompiler"
)

func main() {
	var (
		n           = flag.Int("n", 2000, "corpus size per experiment")
		seed        = flag.Int64("seed", 20200615, "corpus seed (the paper's publication date)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent analysis workers (the paper used 45)")
		par         = flag.Int("parallelism", 0, "Datalog engine workers inside one fixpoint (0/1 sequential, -1 = one per core)")
		sweepW      = flag.Int("sweep-workers", 0, "sweep_scaling curve shape: 0 = workers {1,2,4,8}, W>0 = {1,W} (core experiment)")
		shards      = flag.Int("cache-shards", 0, "analysis cache shard count, rounded down to a power of two (0 = default; core experiment)")
		cacheDir    = flag.String("cache-dir", "", "directory for the warm-restart persistent tier (empty = throwaway temp dir; core experiment)")
		progress    = flag.Bool("progress", false, "draw sweep progress lines on stderr")
		exp         = flag.String("exp", "all", "experiment: exp1|table2|fig6|securify|fig7|teether|rq2|fig8|core|all")
		jsonPath    = flag.String("json", "BENCH_core.json", "output path for the core experiment's JSON result")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file")
		maxContexts = flag.Int("decompile-max-contexts", 0, "decompile budget: max (block, depth) contexts (0 = default; core experiment)")
		maxSteps    = flag.Int("decompile-max-steps", 0, "decompile budget: max value-set worklist steps (0 = default; core experiment)")
		maxStmts    = flag.Int("decompile-max-stmts", 0, "decompile budget: max translated statements (0 = default; core experiment)")
	)
	flag.Parse()
	limits := decompiler.Limits{
		MaxContexts:      *maxContexts,
		MaxWorklistSteps: *maxSteps,
		MaxStatements:    *maxStmts,
	}
	if *progress {
		bench.SetProgressOutput(os.Stderr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if err := run(*exp, *n, *seed, *workers, *par, *sweepW, *shards, *cacheDir, *jsonPath, limits); err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ethainter-bench: %v\n", err)
	os.Exit(1)
}

func run(exp string, n int, seed int64, workers, parallelism, sweepWorkers, cacheShards int, cacheDir, jsonPath string, limits decompiler.Limits) error {
	runners := experimentRunners(n, seed, workers, parallelism, sweepWorkers, cacheShards, cacheDir, jsonPath, limits)
	if exp != "all" {
		r, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		fmt.Print(r())
		return nil
	}
	for _, name := range []string{"exp1", "table2", "fig6", "securify", "fig7", "teether", "rq2", "fig8", "core"} {
		fmt.Print(runners[name]())
		fmt.Println()
	}
	return nil
}
