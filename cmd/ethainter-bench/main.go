// Command ethainter-bench regenerates every table and figure of the paper's
// evaluation (Section 6) over the synthetic corpus.
//
// Usage:
//
//	ethainter-bench [-n N] [-seed S] [-workers W] [-parallelism P]
//	                [-sweep-workers W] [-cache-shards N] [-cache-dir DIR]
//	                [-cache-max-disk-bytes N] [-cache-peers host:port,...]
//	                [-cache-peer-timeout D] [-exp name]
//	                [-progress] [-json file] [-cpuprofile file] [-memprofile file]
//
// Experiments: exp1, table2, fig6, securify, fig7, teether, rq2, fig8,
// core, all. The core experiment additionally emits a machine-readable
// BENCH_core.json (per-stage timings, cache hit rates) at the -json path.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ethainter/internal/bench"
	"ethainter/internal/decompiler"
)

func main() {
	var (
		n           = flag.Int("n", 2000, "corpus size per experiment")
		seed        = flag.Int64("seed", 20200615, "corpus seed (the paper's publication date)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent analysis workers (the paper used 45)")
		par         = flag.Int("parallelism", 0, "Datalog engine workers inside one fixpoint (0/1 sequential, -1 = one per core)")
		sweepW      = flag.Int("sweep-workers", 0, "sweep_scaling curve shape: 0 = workers {1,2,4,8}, W>0 = {1,W} (core experiment)")
		shards      = flag.Int("cache-shards", 0, "analysis cache shard count, rounded down to a power of two (0 = default; core experiment)")
		cacheDir    = flag.String("cache-dir", "", "directory for the warm-restart and replica-sweep persistent tiers (empty = throwaway temp dirs; core experiment)")
		maxDisk     = flag.Int64("cache-max-disk-bytes", 0, "size budget for those persistent tiers, oldest entries evicted first (0 = unbounded; core experiment)")
		peers       = flag.String("cache-peers", "", "comma-separated replica addresses the cached sweep peer-fills from; ad-hoc measurement only — warm peers change the dedup invariants (core experiment)")
		peerTimeout = flag.Duration("cache-peer-timeout", 0, "per-probe timeout for peer cache fills (0 = default; core experiment)")
		progress    = flag.Bool("progress", false, "draw sweep progress lines on stderr")
		exp         = flag.String("exp", "all", "experiment: exp1|table2|fig6|securify|fig7|teether|rq2|fig8|core|all")
		jsonPath    = flag.String("json", "BENCH_core.json", "output path for the core experiment's JSON result")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file")
		maxContexts = flag.Int("decompile-max-contexts", 0, "decompile budget: max (block, depth) contexts (0 = default; core experiment)")
		maxSteps    = flag.Int("decompile-max-steps", 0, "decompile budget: max value-set worklist steps (0 = default; core experiment)")
		maxStmts    = flag.Int("decompile-max-stmts", 0, "decompile budget: max translated statements (0 = default; core experiment)")
	)
	flag.Parse()
	opts := bench.CoreOptions{
		N:            *n,
		Seed:         *seed,
		Workers:      *workers,
		Parallelism:  *par,
		SweepWorkers: *sweepW,
		CacheShards:  *shards,
		CacheDir:     *cacheDir,
		MaxDiskBytes: *maxDisk,
		Peers:        splitPeers(*peers),
		PeerTimeout:  *peerTimeout,
		Limits: decompiler.Limits{
			MaxContexts:      *maxContexts,
			MaxWorklistSteps: *maxSteps,
			MaxStatements:    *maxStmts,
		},
	}
	if *progress {
		bench.SetProgressOutput(os.Stderr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if err := run(*exp, opts, *jsonPath); err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ethainter-bench: %v\n", err)
	os.Exit(1)
}

// splitPeers parses the comma-separated -cache-peers value, dropping empty
// elements so a trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(exp string, opts bench.CoreOptions, jsonPath string) error {
	runners := experimentRunners(opts, jsonPath)
	if exp != "all" {
		r, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		fmt.Print(r())
		return nil
	}
	for _, name := range []string{"exp1", "table2", "fig6", "securify", "fig7", "teether", "rq2", "fig8", "core"} {
		fmt.Print(runners[name]())
		fmt.Println()
	}
	return nil
}
