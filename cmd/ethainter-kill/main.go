// Command ethainter-kill is the companion exploit tool (Section 6.1): it
// compiles and deploys a contract onto an in-process chain fork, runs the
// Ethainter analysis, replays the flagged escalation chains as transactions
// from an attacker account, and reports whether the contract was destroyed —
// confirmed from the VM instruction trace.
//
// Usage:
//
//	ethainter-kill <contract.msol>
package main

import (
	"flag"
	"fmt"
	"os"

	"ethainter"
)

func main() {
	balance := flag.Uint64("balance", 100_000, "wei preloaded into the victim contract")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ethainter-kill [flags] <contract.msol>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *balance); err != nil {
		fmt.Fprintf(os.Stderr, "ethainter-kill: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, balance uint64) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	compiled, err := ethainter.Compile(string(src))
	if err != nil {
		return err
	}
	report, err := ethainter.AnalyzeBytecode(compiled.Runtime, ethainter.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("analysis: %d warning(s)\n", len(report.Warnings))
	for _, w := range report.Warnings {
		fmt.Printf("  [%s] pc=%d\n", w.Kind, w.PC)
	}

	tb := ethainter.NewTestbed()
	addr, err := tb.DeployContract(compiled)
	if err != nil {
		return err
	}
	tb.Fund(addr, ethainter.NewWei(balance))
	fmt.Printf("deployed at %s holding %d wei\n", addr, balance)

	res := ethainter.Exploit(tb, addr, report)
	switch {
	case !res.Pinpointed:
		fmt.Println("no exploitable entry chain pinpointed")
	case res.Destroyed:
		fmt.Printf("DESTROYED in %d attempt(s); attack sequence:\n", res.Attempts)
		for i, s := range res.Steps {
			fmt.Printf("  tx%d: selector 0x%x (%d args)\n", i+1, s.Selector, s.NumArgs)
		}
		fmt.Printf("attacker profit: %s wei\n", res.Profit.Dec())
	default:
		fmt.Printf("exploitation failed after %d attempt(s)\n", res.Attempts)
	}
	return nil
}
