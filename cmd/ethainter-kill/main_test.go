package main

import (
	"os"
	"path/filepath"
	"testing"

	"ethainter/internal/minisol"
)

func TestKillToolOnVictim(t *testing.T) {
	p := filepath.Join(t.TempDir(), "victim.msol")
	if err := os.WriteFile(p, []byte(minisol.VictimSource), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(p, 5000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestKillToolOnSafeContract(t *testing.T) {
	p := filepath.Join(t.TempDir(), "token.msol")
	if err := os.WriteFile(p, []byte(minisol.SafeTokenSource), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(p, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
}
