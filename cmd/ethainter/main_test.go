package main

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"ethainter"
	"ethainter/internal/core"
)

const vulnerableSrc = `
contract W {
    address owner;
    function initOwner(address o) public { owner = o; }
    function kill() public { if (msg.sender == owner) { selfdestruct(owner); } }
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunOnSource(t *testing.T) {
	p := writeTemp(t, "w.msol", vulnerableSrc)
	if err := run(p, ethainter.DefaultConfig(), "go", "", false, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Ablation flags work too.
	ablated := ethainter.Config{}
	if err := run(p, ablated, "go", "", true, true, false); err != nil {
		t.Fatalf("run with flags: %v", err)
	}
}

func TestRunOnHexBytecode(t *testing.T) {
	compiled, err := ethainter.Compile(vulnerableSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := writeTemp(t, "w.hex", "0x"+hex.EncodeToString(compiled.Runtime))
	if err := run(p, ethainter.DefaultConfig(), "go", "", false, false, false); err != nil {
		t.Fatalf("run on hex: %v", err)
	}
}

// The datalog engine route works at several worker counts, and unknown
// engines are rejected.
func TestRunDatalogEngine(t *testing.T) {
	p := writeTemp(t, "w.msol", vulnerableSrc)
	for _, workers := range []int{0, 2, -1} {
		cfg := ethainter.DefaultConfig()
		cfg.Parallelism = workers
		if err := run(p, cfg, "datalog", "", false, false, true); err != nil {
			t.Fatalf("datalog run (parallelism=%d): %v", workers, err)
		}
	}
	if err := run(p, ethainter.DefaultConfig(), "prolog", "", false, false, false); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := ethainter.DefaultConfig()
	if err := run(filepath.Join(t.TempDir(), "absent"), cfg, "go", "", false, false, false); err == nil {
		t.Error("missing file should error")
	}
	bad := writeTemp(t, "bad.msol", "contract {")
	if err := run(bad, cfg, "go", "", false, false, false); err == nil {
		t.Error("unparseable source should error")
	}
	badHex := writeTemp(t, "bad.hex", "0x60zz")
	if err := run(badHex, cfg, "go", "", false, false, false); err == nil {
		t.Error("bad hex should error")
	}
}

func TestLooksHex(t *testing.T) {
	cases := map[string]bool{
		"0x6001": true, "6001": true, "0x": false, "": false,
		"60013": false, "contract": false, "0xGG": false,
	}
	for in, want := range cases {
		if got := looksHex(in); got != want {
			t.Errorf("looksHex(%q) = %v", in, got)
		}
	}
}

// TestRunWithCacheDir: two invocations with -cache-dir share one persistent
// store — the second run is served from disk (the tier reports one intact
// entry on reopen) — and -cache-dir composes only with the go engine.
func TestRunWithCacheDir(t *testing.T) {
	p := writeTemp(t, "w.msol", vulnerableSrc)
	dir := filepath.Join(t.TempDir(), "cache")
	for i := 0; i < 2; i++ {
		if err := run(p, ethainter.DefaultConfig(), "go", dir, false, false, false); err != nil {
			t.Fatalf("run %d with cache dir: %v", i, err)
		}
	}
	tier, err := core.OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	if st := tier.Stats(); st.Entries != 1 || st.Scrubbed != 0 {
		t.Fatalf("tier stats = %+v, want exactly the one persisted report", st)
	}
	if err := run(p, ethainter.DefaultConfig(), "datalog", dir, false, false, false); err == nil {
		t.Fatal("datalog engine accepted -cache-dir")
	}
}
