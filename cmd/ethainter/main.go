// Command ethainter analyzes a smart contract for the five composite
// information-flow vulnerability classes.
//
// Usage:
//
//	ethainter [flags] <file>
//
// The file is mini-Solidity source (.msol/.sol) or hex runtime bytecode
// (.hex, with or without 0x prefix). Flags select the Figure 8 ablations,
// the fixpoint engine (-engine go|datalog, with -parallelism workers for the
// Datalog one), and output detail. With -cache-dir, go-engine analyses are
// served from and persisted to a durable result store, so re-running the CLI
// over bytecode it has seen before (under the same config) skips the whole
// pipeline.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ethainter"
	"ethainter/internal/core"
	"ethainter/internal/decompiler"
)

func main() {
	var (
		noGuards     = flag.Bool("no-guards", false, "disable guard modeling (Figure 8b ablation)")
		noStorage    = flag.Bool("no-storage", false, "disable taint through storage (Figure 8a ablation)")
		conservative = flag.Bool("conservative-storage", false, "conservative unknown-storage modeling (Figure 8c ablation)")
		showIR       = flag.Bool("ir", false, "print the decompiled 3-address IR")
		showAsm      = flag.Bool("disasm", false, "print the disassembly")
		engine       = flag.String("engine", "go", "fixpoint engine: go (compiled worklist) or datalog (declarative rules)")
		par          = flag.Int("parallelism", 0, "Datalog engine workers inside one fixpoint (0/1 sequential, -1 = one per core; go engine ignores it)")
		timings      = flag.Bool("timings", false, "print the per-stage timing breakdown, including the decompiler's decode/value-set/translate/functions split")
		maxContexts  = flag.Int("decompile-max-contexts", 0, "decompile budget: max (block, depth) contexts (0 = default)")
		maxSteps     = flag.Int("decompile-max-steps", 0, "decompile budget: max value-set worklist steps (0 = default)")
		maxStmts     = flag.Int("decompile-max-stmts", 0, "decompile budget: max translated statements (0 = default)")
		cacheDir     = flag.String("cache-dir", "", "persistent result cache directory; repeated runs over known bytecode skip analysis (-engine go only)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ethainter [flags] <contract.msol | contract.hex>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := ethainter.DefaultConfig()
	cfg.ModelGuards = !*noGuards
	cfg.ModelStorageTaint = !*noStorage
	cfg.ConservativeStorage = *conservative
	cfg.Parallelism = *par
	cfg.DecompileLimits = decompiler.Limits{
		MaxContexts:      *maxContexts,
		MaxWorklistSteps: *maxSteps,
		MaxStatements:    *maxStmts,
	}
	if err := run(flag.Arg(0), cfg, *engine, *cacheDir, *showIR, *showAsm, *timings); err != nil {
		fmt.Fprintf(os.Stderr, "ethainter: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, cfg ethainter.Config, engine, cacheDir string, showIR, showAsm, timings bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	code, err := loadBytecode(path, raw)
	if err != nil {
		return err
	}
	if showAsm {
		fmt.Print(ethainter.Disassemble(code))
	}
	if showIR {
		ir, err := ethainter.DecompileToIR(code)
		if err != nil {
			return err
		}
		fmt.Print(ir)
	}
	switch engine {
	case "go":
		return runGoEngine(code, cfg, cacheDir, timings)
	case "datalog":
		if cacheDir != "" {
			return fmt.Errorf("-cache-dir requires -engine go (the datalog path reports per-pc relations, not cacheable Reports)")
		}
		return runDatalogEngine(code, cfg, timings)
	default:
		return fmt.Errorf("unknown engine %q (want go or datalog)", engine)
	}
}

func runGoEngine(code []byte, cfg ethainter.Config, cacheDir string, timings bool) error {
	report, err := analyzeMaybeCached(code, cfg, cacheDir)
	if err != nil {
		return err
	}
	fmt.Printf("public functions: %d\n", report.PublicFunctions)
	if len(report.Warnings) == 0 {
		fmt.Println("no vulnerabilities flagged")
	}
	for _, w := range report.Warnings {
		fmt.Printf("[%s] pc=%d: %s\n", w.Kind, w.PC, w.Message)
		if len(w.Witness) > 0 {
			fmt.Printf("  escalation: ")
			for i, s := range w.Witness {
				if i > 0 {
					fmt.Print(" -> ")
				}
				fmt.Printf("0x%x(%d args)", s.Selector, s.NumArgs)
			}
			fmt.Println()
		}
	}
	if timings {
		t := report.Stats.Timings
		fmt.Printf("timings: decompile %v (decode %v, value-set %v, translate %v, functions %v), facts %v, guards %v, fixpoint %v, detect %v\n",
			t.Decompile, t.DecompileDecode, t.DecompileValueSet, t.DecompileTranslate, t.DecompileFunctions,
			t.Facts, t.Guards, t.Fixpoint, t.Detect)
	}
	return nil
}

// analyzeMaybeCached runs the go-engine analysis, routed through a
// disk-backed cache when -cache-dir is set. Closing the tier before
// returning flushes the write-behind queue, so the very next invocation of
// the CLI over the same bytecode is already warm.
func analyzeMaybeCached(code []byte, cfg ethainter.Config, cacheDir string) (*ethainter.Report, error) {
	if cacheDir == "" {
		return ethainter.AnalyzeBytecode(code, cfg)
	}
	tier, err := core.OpenDiskTier(cacheDir)
	if err != nil {
		return nil, err
	}
	cache := core.NewCache(0)
	cache.SetDiskTier(tier)
	report, aerr := cache.AnalyzeBytecode(code, cfg)
	if cerr := tier.Close(); cerr != nil && aerr == nil {
		return nil, cerr
	}
	return report, aerr
}

// runDatalogEngine analyzes through the declarative rules — the path the
// -parallelism knob fans out — and prints the (kind, pc) violations plus,
// on request, the engine's stage breakdown.
func runDatalogEngine(code []byte, cfg ethainter.Config, timings bool) error {
	decompileStart := time.Now()
	prog, dt, err := decompiler.DecompileTimed(context.Background(), code, cfg.DecompileLimits)
	decompileTotal := time.Since(decompileStart)
	if err != nil {
		return err
	}
	res, t, err := core.AnalyzeDatalogTimed(prog, cfg)
	if err != nil {
		return err
	}
	flagged := 0
	for kind := core.VulnKind(0); kind < core.NumVulnKinds; kind++ {
		pcs := make([]int, 0, len(res[kind]))
		for pc := range res[kind] {
			pcs = append(pcs, pc)
		}
		sort.Ints(pcs)
		for _, pc := range pcs {
			fmt.Printf("[%s] pc=%d\n", kind, pc)
			flagged++
		}
	}
	if flagged == 0 {
		fmt.Println("no vulnerabilities flagged")
	}
	if timings {
		fmt.Printf("timings: decompile %v (decode %v, value-set %v, translate %v, functions %v), facts %v, guards %v, fixpoint %v (index %v, join %v, merge %v)\n",
			decompileTotal, dt.Decode, dt.ValueSet, dt.Translate, dt.Functions,
			t.Facts, t.Guards, t.Fixpoint, t.EngineIndex, t.EngineJoin, t.EngineMerge)
	}
	return nil
}

// loadBytecode compiles source files and hex-decodes bytecode files.
func loadBytecode(path string, raw []byte) ([]byte, error) {
	text := strings.TrimSpace(string(raw))
	if strings.HasSuffix(path, ".hex") || looksHex(text) {
		text = strings.TrimPrefix(text, "0x")
		code, err := hex.DecodeString(text)
		if err != nil {
			return nil, fmt.Errorf("bad hex bytecode: %w", err)
		}
		return code, nil
	}
	compiled, err := ethainter.Compile(text)
	if err != nil {
		return nil, err
	}
	fmt.Printf("compiled %s: %d bytes runtime\n", path, len(compiled.Runtime))
	return compiled.Runtime, nil
}

func looksHex(s string) bool {
	if strings.HasPrefix(s, "0x") {
		s = s[2:]
	}
	if len(s) == 0 || len(s)%2 != 0 {
		return false
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdefABCDEF", c) {
			return false
		}
	}
	return true
}
