// Command ethainter analyzes a smart contract for the five composite
// information-flow vulnerability classes.
//
// Usage:
//
//	ethainter [flags] <file>
//
// The file is mini-Solidity source (.msol/.sol) or hex runtime bytecode
// (.hex, with or without 0x prefix). Flags select the Figure 8 ablations and
// output detail.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"ethainter"
)

func main() {
	var (
		noGuards     = flag.Bool("no-guards", false, "disable guard modeling (Figure 8b ablation)")
		noStorage    = flag.Bool("no-storage", false, "disable taint through storage (Figure 8a ablation)")
		conservative = flag.Bool("conservative-storage", false, "conservative unknown-storage modeling (Figure 8c ablation)")
		showIR       = flag.Bool("ir", false, "print the decompiled 3-address IR")
		showAsm      = flag.Bool("disasm", false, "print the disassembly")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ethainter [flags] <contract.msol | contract.hex>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *noGuards, *noStorage, *conservative, *showIR, *showAsm); err != nil {
		fmt.Fprintf(os.Stderr, "ethainter: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, noGuards, noStorage, conservative, showIR, showAsm bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	code, err := loadBytecode(path, raw)
	if err != nil {
		return err
	}
	if showAsm {
		fmt.Print(ethainter.Disassemble(code))
	}
	if showIR {
		ir, err := ethainter.DecompileToIR(code)
		if err != nil {
			return err
		}
		fmt.Print(ir)
	}
	cfg := ethainter.DefaultConfig()
	cfg.ModelGuards = !noGuards
	cfg.ModelStorageTaint = !noStorage
	cfg.ConservativeStorage = conservative
	report, err := ethainter.AnalyzeBytecode(code, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("public functions: %d\n", report.PublicFunctions)
	if len(report.Warnings) == 0 {
		fmt.Println("no vulnerabilities flagged")
		return nil
	}
	for _, w := range report.Warnings {
		fmt.Printf("[%s] pc=%d: %s\n", w.Kind, w.PC, w.Message)
		if len(w.Witness) > 0 {
			fmt.Printf("  escalation: ")
			for i, s := range w.Witness {
				if i > 0 {
					fmt.Print(" -> ")
				}
				fmt.Printf("0x%x(%d args)", s.Selector, s.NumArgs)
			}
			fmt.Println()
		}
	}
	return nil
}

// loadBytecode compiles source files and hex-decodes bytecode files.
func loadBytecode(path string, raw []byte) ([]byte, error) {
	text := strings.TrimSpace(string(raw))
	if strings.HasSuffix(path, ".hex") || looksHex(text) {
		text = strings.TrimPrefix(text, "0x")
		code, err := hex.DecodeString(text)
		if err != nil {
			return nil, fmt.Errorf("bad hex bytecode: %w", err)
		}
		return code, nil
	}
	compiled, err := ethainter.Compile(text)
	if err != nil {
		return nil, err
	}
	fmt.Printf("compiled %s: %d bytes runtime\n", path, len(compiled.Runtime))
	return compiled.Runtime, nil
}

func looksHex(s string) bool {
	if strings.HasPrefix(s, "0x") {
		s = s[2:]
	}
	if len(s) == 0 || len(s)%2 != 0 {
		return false
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdefABCDEF", c) {
			return false
		}
	}
	return true
}
