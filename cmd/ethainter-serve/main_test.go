package main

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"ethainter/internal/minisol"
)

func TestParseFlags(t *testing.T) {
	opts, err := parseFlags([]string{"-addr", "127.0.0.1:9999", "-timeout", "5s", "-max-inflight", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != "127.0.0.1:9999" || opts.timeout != 5*time.Second || opts.maxInFlight != 7 {
		t.Errorf("opts = %+v", opts)
	}
	if _, err := parseFlags([]string{"-timeout", "soon"}); err == nil {
		t.Error("bad duration parsed without error")
	}
}

// TestServeLifecycle boots the real server loop on an ephemeral port, drives
// /healthz, a cache-hitting pair of /analyze calls, and /statsz, then
// delivers SIGTERM and asserts a clean drain.
func TestServeLifecycle(t *testing.T) {
	opts, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-shutdown-grace", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ready := make(chan net.Addr, 1)
	shutdown := make(chan os.Signal, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- run(opts, logger, ready, shutdown) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-errCh:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	body := "0x" + hex.EncodeToString(minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/analyze", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/analyze %d: %d", i, resp.StatusCode)
		}
	}

	resp, err = http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Cache struct {
			Hits uint64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache.Hits < 1 {
		t.Errorf("repeated /analyze recorded no cache hit: %+v", stats)
	}

	shutdown <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still serving after clean shutdown")
	}
}
