// Command ethainter-serve runs the analyzer as an HTTP service — the
// reproduction's analog of the paper's live deployment at
// contract-library.com.
//
// Usage:
//
//	ethainter-serve [-addr :8545]
//
// Endpoints: POST /analyze (hex bytecode or mini-Solidity source),
// POST /compile, POST /exploit, GET /healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"ethainter/internal/core"
	"ethainter/internal/server"
)

func main() {
	addr := flag.String("addr", ":8545", "listen address")
	flag.Parse()
	s := server.New(core.DefaultConfig())
	fmt.Printf("ethainter-serve listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "ethainter-serve: %v\n", err)
		os.Exit(1)
	}
}
