// Command ethainter-serve runs the analyzer as a production-shaped HTTP
// service — the reproduction's analog of the paper's live deployment at
// contract-library.com. All analysis endpoints share one content-addressed
// report cache; requests run under per-request deadlines behind an in-flight
// limiter; SIGINT/SIGTERM drain in-flight requests before exit.
//
// Usage:
//
//	ethainter-serve [-addr :8545] [-timeout 30s] [-max-inflight 64]
//	                [-cache-entries N] [-cache-shards N] [-cache-dir DIR]
//	                [-cache-max-disk-bytes N] [-cache-peers host:port,...]
//	                [-cache-peer-timeout 250ms] [-sweep-workers N]
//	                [-parallelism P] [-max-body N] [-read-timeout 10s]
//	                [-write-timeout 2m] [-idle-timeout 2m]
//	                [-shutdown-grace 15s] [-decompile-max-contexts N]
//	                [-decompile-max-steps N] [-decompile-max-stmts N]
//
// Endpoints: POST /analyze (hex runtime bytecode or mini-Solidity source),
// POST /batch (JSON array of such inputs), POST /compile, POST /exploit,
// GET /healthz, GET /statsz (cache/request/latency counters).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/decompiler"
	"ethainter/internal/server"
)

// options carries the parsed serving configuration.
type options struct {
	addr         string
	timeout      time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
	grace        time.Duration
	maxInFlight  int
	cacheEntries int
	cacheShards  int
	cacheDir     string
	maxDiskBytes int64
	cachePeers   string
	peerTimeout  time.Duration
	sweepWorkers int
	parallelism  int
	maxBody      int64
	limits       decompiler.Limits
}

func parseFlags(args []string) (options, error) {
	var opts options
	fs := flag.NewFlagSet("ethainter-serve", flag.ContinueOnError)
	fs.StringVar(&opts.addr, "addr", ":8545", "listen address")
	fs.DurationVar(&opts.timeout, "timeout", 30*time.Second, "per-request analysis deadline (0 disables)")
	fs.DurationVar(&opts.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout")
	fs.DurationVar(&opts.writeTimeout, "write-timeout", 2*time.Minute, "HTTP write timeout (must exceed -timeout)")
	fs.DurationVar(&opts.idleTimeout, "idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout")
	fs.DurationVar(&opts.grace, "shutdown-grace", 15*time.Second, "drain period for in-flight requests on SIGINT/SIGTERM")
	fs.IntVar(&opts.maxInFlight, "max-inflight", 64, "max concurrently-served analysis requests; excess get 503 (0 = unlimited)")
	fs.IntVar(&opts.cacheEntries, "cache-entries", 0, "report cache capacity (0 = default)")
	fs.IntVar(&opts.cacheShards, "cache-shards", 0, "report cache shard count, rounded down to a power of two (0 = default)")
	fs.StringVar(&opts.cacheDir, "cache-dir", "", "persistent cache directory: reports and deterministic failures survive restarts (empty = memory-only); safe to share between replicas")
	fs.Int64Var(&opts.maxDiskBytes, "cache-max-disk-bytes", 0, "persistent cache size budget: scrubs evict oldest entries first above it (0 = unbounded)")
	fs.StringVar(&opts.cachePeers, "cache-peers", "", "comma-separated replica base URLs (host:port or http://host:port) probed for cache entries on local misses; peers that are down degrade to plain misses")
	fs.DurationVar(&opts.peerTimeout, "cache-peer-timeout", 0, "per-probe timeout for peer cache fills (0 = default 250ms)")
	fs.IntVar(&opts.sweepWorkers, "sweep-workers", 0, "server-wide /batch sweep scheduler pool size (0 = one per core)")
	fs.IntVar(&opts.parallelism, "parallelism", 0, "Datalog engine workers inside one fixpoint (0/1 sequential, -1 = one per core); multiplies with -max-inflight request concurrency")
	fs.Int64Var(&opts.maxBody, "max-body", 1<<20, "max request body bytes")
	fs.IntVar(&opts.limits.MaxContexts, "decompile-max-contexts", 0, "decompile budget: max (block, depth) contexts per contract (0 = default); exhaustion is a deterministic 422, negatively cached")
	fs.IntVar(&opts.limits.MaxWorklistSteps, "decompile-max-steps", 0, "decompile budget: max value-set worklist steps (0 = default)")
	fs.IntVar(&opts.limits.MaxStatements, "decompile-max-stmts", 0, "decompile budget: max translated statements (0 = default)")
	if err := fs.Parse(args); err != nil {
		return opts, err
	}
	return opts, nil
}

// splitPeers parses the comma-separated -cache-peers value, dropping empty
// elements so a trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// run serves until the listener fails or a signal arrives on shutdown, then
// drains in-flight requests for at most opts.grace. When ready is non-nil it
// receives the bound address once the listener is up (the smoke tests bind
// :0 and need the assigned port).
func run(opts options, logger *slog.Logger, ready chan<- net.Addr, shutdown <-chan os.Signal) error {
	cfg := core.DefaultConfig()
	cfg.Parallelism = opts.parallelism
	cfg.DecompileLimits = opts.limits
	cache := core.NewCacheSharded(opts.cacheEntries, opts.cacheShards)
	if opts.cacheDir != "" {
		tier, err := core.OpenDiskTierBudget(opts.cacheDir, opts.maxDiskBytes)
		if err != nil {
			return err
		}
		// Flush the write-behind queue after the HTTP drain, so reports
		// computed right up to shutdown are durable for the next start.
		defer tier.Close()
		cache.SetDiskTier(tier)
		ds := tier.Stats()
		logger.Info("disk cache tier open", "dir", opts.cacheDir,
			"entries", ds.Entries, "scrubbed", ds.Scrubbed,
			"bytes", ds.Bytes, "evicted", ds.Evictions)
	}
	if remote := core.NewRemoteTier(splitPeers(opts.cachePeers), opts.peerTimeout); remote != nil {
		defer remote.Close()
		cache.SetRemoteTier(remote)
		logger.Info("remote cache tier attached", "peers", remote.Peers())
	}
	srv := server.NewWithCache(cfg, cache)
	srv.Timeout = opts.timeout
	srv.MaxInFlight = opts.maxInFlight
	srv.SweepWorkers = opts.sweepWorkers
	if opts.maxBody > 0 {
		srv.MaxBodyBytes = opts.maxBody
	}
	srv.Logger = logger

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"timeout", opts.timeout.String(), "max_inflight", opts.maxInFlight)
	if ready != nil {
		ready <- ln.Addr()
	}

	hs := &http.Server{
		Handler:      srv.Handler(),
		ReadTimeout:  opts.readTimeout,
		WriteTimeout: opts.writeTimeout,
		IdleTimeout:  opts.idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case sig := <-shutdown:
		logger.Info("shutting down", "signal", fmt.Sprint(sig), "grace", opts.grace.String())
		ctx, cancel := context.WithTimeout(context.Background(), opts.grace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			// Grace expired with requests still in flight: hard-close.
			hs.Close()
			return fmt.Errorf("shutdown: %w", err)
		}
		logger.Info("drained, exiting")
		return nil
	}
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	if err := run(opts, logger, nil, shutdown); err != nil {
		fmt.Fprintf(os.Stderr, "ethainter-serve: %v\n", err)
		os.Exit(1)
	}
}
