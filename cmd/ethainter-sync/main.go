// Command ethainter-sync runs the chain-follow analysis daemon: the
// reproduction's analog of the paper's continuous whole-chain deployment,
// where every newly created contract is analyzed as it appears and the
// findings index is "updated in quasi-real time" (Section 7).
//
// The daemon seeds a simulated chain from the synthetic corpus, follows it
// from a cursor — detecting contract creations in the receipts, analyzing
// each new runtime bytecode exactly once through the shared scheduler/cache
// path — and serves the live findings index over HTTP. With -cache-dir the
// report cache persists across restarts: a restarted follower re-indexes the
// whole chain from genesis without performing a single new analysis.
//
// Usage:
//
//	ethainter-sync [-addr :8546] [-corpus N] [-seed S]
//	               [-cache-entries N] [-cache-shards N] [-cache-dir DIR]
//	               [-cache-max-disk-bytes N] [-cache-peers host:port,...]
//	               [-cache-peer-timeout 250ms]
//	               [-workers N] [-poll 50ms] [-batch N] [-start-block N]
//	               [-deploy-interval D] [-deploy-count N]
//	               [-shutdown-grace 15s] [-oneshot]
//	               [-parallelism P] [-decompile-max-contexts N]
//	               [-decompile-max-steps N] [-decompile-max-stmts N]
//
// In -oneshot mode the command catches up on the seeded chain, prints a JSON
// summary (blocks, creations, analyses launched/coalesced, cache work
// counters, findings, index digest) to stdout, and exits — the mode the
// sync-smoke CI check drives twice against one -cache-dir to assert that a
// warm restart reproduces the cold index with zero re-analyses.
//
// Endpoints (daemon mode): GET /findings (filters: kind, address, from, to,
// findings=1), GET /healthz, GET /statsz (cache, scheduler, and follow-loop
// counters).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/decompiler"
	"ethainter/internal/follow"
	"ethainter/internal/sched"
	"ethainter/internal/server"
	"ethainter/internal/u256"
)

// options carries the parsed follower configuration.
type options struct {
	addr         string
	corpusN      int
	seed         int64
	cacheEntries int
	cacheShards  int
	cacheDir     string
	maxDiskBytes int64
	cachePeers   string
	peerTimeout  time.Duration
	workers      int
	poll         time.Duration
	batch        int
	startBlock   uint64
	deployEvery  time.Duration
	deployCount  int
	grace        time.Duration
	oneshot      bool
	parallelism  int
	limits       decompiler.Limits
}

func parseFlags(args []string) (options, error) {
	var opts options
	fs := flag.NewFlagSet("ethainter-sync", flag.ContinueOnError)
	fs.StringVar(&opts.addr, "addr", ":8546", "listen address for the findings/stats endpoints (daemon mode)")
	fs.IntVar(&opts.corpusN, "corpus", 50, "synthetic contracts deployed onto the chain before following starts")
	fs.Int64Var(&opts.seed, "seed", 1, "corpus generation seed (same seed = same chain = same findings digest)")
	fs.IntVar(&opts.cacheEntries, "cache-entries", 0, "report cache capacity (0 = default)")
	fs.IntVar(&opts.cacheShards, "cache-shards", 0, "report cache shard count, rounded down to a power of two (0 = default)")
	fs.StringVar(&opts.cacheDir, "cache-dir", "", "persistent cache directory: a warm restart re-indexes the chain with zero new analyses (empty = memory-only); safe to share between replicas")
	fs.Int64Var(&opts.maxDiskBytes, "cache-max-disk-bytes", 0, "persistent cache size budget: scrubs evict oldest entries first above it (0 = unbounded)")
	fs.StringVar(&opts.cachePeers, "cache-peers", "", "comma-separated replica base URLs (host:port or http://host:port) probed for cache entries on local misses; peers that are down degrade to plain misses")
	fs.DurationVar(&opts.peerTimeout, "cache-peer-timeout", 0, "per-probe timeout for peer cache fills (0 = default 250ms)")
	fs.IntVar(&opts.workers, "workers", 0, "analysis scheduler pool size (0 = one per core)")
	fs.DurationVar(&opts.poll, "poll", follow.DefaultPoll, "chain poll interval (daemon mode)")
	fs.IntVar(&opts.batch, "batch", 0, "max receipts ingested per poll step (0 = default)")
	fs.Uint64Var(&opts.startBlock, "start-block", 0, "cursor start block (0 = genesis)")
	fs.DurationVar(&opts.deployEvery, "deploy-interval", 0, "keep deploying corpus contracts at this interval while the daemon runs (0 = seed only)")
	fs.IntVar(&opts.deployCount, "deploy-count", 0, "stop live deploys after this many (0 = unbounded)")
	fs.DurationVar(&opts.grace, "shutdown-grace", 15*time.Second, "drain period for in-flight analyses and requests on SIGINT/SIGTERM")
	fs.BoolVar(&opts.oneshot, "oneshot", false, "catch up on the seeded chain, print a JSON summary, exit")
	fs.IntVar(&opts.parallelism, "parallelism", 0, "Datalog engine workers inside one fixpoint (0/1 sequential, -1 = one per core)")
	fs.IntVar(&opts.limits.MaxContexts, "decompile-max-contexts", 0, "decompile budget: max (block, depth) contexts per contract (0 = default); exhaustion is a deterministic indexed failure, never retried hot")
	fs.IntVar(&opts.limits.MaxWorklistSteps, "decompile-max-steps", 0, "decompile budget: max value-set worklist steps (0 = default)")
	fs.IntVar(&opts.limits.MaxStatements, "decompile-max-stmts", 0, "decompile budget: max translated statements (0 = default)")
	if err := fs.Parse(args); err != nil {
		return opts, err
	}
	return opts, nil
}

// summary is the -oneshot stdout report: the follow-loop counters joined with
// the cache's work counters and the canonical index digest. The sync-smoke
// check compares two of these — cold and warm over one -cache-dir — for
// identical digests with CacheAnalyses and CacheDecompiles zero on the warm
// side.
type summary struct {
	follow.Stats
	CacheAnalyses   uint64 `json:"cache_analyses"`
	CacheDecompiles uint64 `json:"cache_decompiles"`
	Digest          string `json:"digest"`
}

// splitPeers parses the comma-separated -cache-peers value, dropping empty
// elements so a trailing comma is harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// seedChain deploys n corpus contracts onto a fresh chain. Generation is
// seed-deterministic, so two runs with the same -corpus/-seed produce
// byte-identical chains.
func seedChain(n int, seed int64) (*chain.Chain, []*corpus.Contract) {
	ch := chain.New()
	contracts := corpus.Generate(corpus.DefaultProfile(n, seed))
	for _, c := range contracts {
		ch.DeployRuntime(c.Runtime, u256.Zero)
	}
	return ch, contracts
}

// run follows the chain until a signal arrives on shutdown (daemon mode) or
// the catch-up completes (-oneshot), then drains. When ready is non-nil it
// receives the bound address once the listener is up; oneshot output lands on
// out.
func run(opts options, logger *slog.Logger, out io.Writer, ready chan<- net.Addr, shutdown <-chan os.Signal) error {
	cfg := core.DefaultConfig()
	cfg.Parallelism = opts.parallelism
	cfg.DecompileLimits = opts.limits
	cache := core.NewCacheSharded(opts.cacheEntries, opts.cacheShards)
	if opts.cacheDir != "" {
		tier, err := core.OpenDiskTierBudget(opts.cacheDir, opts.maxDiskBytes)
		if err != nil {
			return err
		}
		// Flush the write-behind queue after the drain, so reports computed
		// right up to shutdown are durable for the next start.
		defer tier.Close()
		cache.SetDiskTier(tier)
		ds := tier.Stats()
		logger.Info("disk cache tier open", "dir", opts.cacheDir,
			"entries", ds.Entries, "scrubbed", ds.Scrubbed,
			"bytes", ds.Bytes, "evicted", ds.Evictions)
	}
	if remote := core.NewRemoteTier(splitPeers(opts.cachePeers), opts.peerTimeout); remote != nil {
		defer remote.Close()
		cache.SetRemoteTier(remote)
		logger.Info("remote cache tier attached", "peers", remote.Peers())
	}
	sc := sched.New(cache, opts.workers)
	defer sc.Close()

	ch, contracts := seedChain(opts.corpusN, opts.seed)
	logger.Info("chain seeded", "contracts", opts.corpusN, "seed", opts.seed, "head", ch.Head())

	f := follow.New(follow.Options{
		Source:        ch,
		Scheduler:     sc,
		Config:        cfg,
		BatchReceipts: opts.batch,
		StartBlock:    opts.startBlock,
	})

	if opts.oneshot {
		if err := f.CatchUp(context.Background()); err != nil {
			return err
		}
		s := f.Stats()
		cs := cache.Stats()
		logger.Info("caught up", "blocks", s.Blocks, "creations", s.Creations,
			"launched", s.Launched, "coalesced", s.Coalesced,
			"findings", s.Findings, "failed", s.Failed)
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(summary{
			Stats:           s,
			CacheAnalyses:   cs.Analyses,
			CacheDecompiles: cs.Decompiles,
			Digest:          fmt.Sprintf("0x%x", f.Digest()),
		})
	}

	// Daemon mode: follow loop + optional live deployer + HTTP surface.
	srv := server.NewWithCache(cfg, cache)
	srv.UseScheduler(sc)
	srv.Follow = f
	srv.Logger = logger

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(), "poll", opts.poll.String())
	if ready != nil {
		ready <- ln.Addr()
	}
	hs := &http.Server{Handler: srv.Handler(), ReadTimeout: 10 * time.Second, IdleTimeout: 2 * time.Minute}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	followCtx, stopFollow := context.WithCancel(context.Background())
	defer stopFollow()
	followDone := make(chan error, 1)
	go func() { followDone <- f.Run(followCtx, opts.poll) }()

	// The live deployer simulates chain growth: one goroutine applies
	// transactions while the follower reads receipts concurrently.
	deployDone := make(chan struct{})
	if opts.deployEvery > 0 {
		go func() {
			defer close(deployDone)
			t := time.NewTicker(opts.deployEvery)
			defer t.Stop()
			for i := 0; opts.deployCount <= 0 || i < opts.deployCount; i++ {
				select {
				case <-followCtx.Done():
					return
				case <-t.C:
					ch.DeployRuntime(contracts[i%len(contracts)].Runtime, u256.Zero)
				}
			}
		}()
	} else {
		close(deployDone)
	}

	select {
	case err := <-httpErr:
		stopFollow()
		<-followDone
		return err
	case sig := <-shutdown:
		logger.Info("shutting down", "signal", fmt.Sprint(sig), "grace", opts.grace.String())
		// Stop the deployer and drain the follow loop first — cancelled
		// analyses are dropped from the index, settled ones flushed to the
		// disk tier on exit — then drain HTTP.
		stopFollow()
		<-deployDone
		<-followDone
		ctx, cancel := context.WithTimeout(context.Background(), opts.grace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
			return fmt.Errorf("shutdown: %w", err)
		}
		s := f.Stats()
		logger.Info("drained, exiting", "entries", s.Entries, "findings", s.Findings,
			"launched", s.Launched, "coalesced", s.Coalesced, "cancelled", s.Cancelled)
		return nil
	}
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	if err := run(opts, logger, os.Stdout, nil, shutdown); err != nil {
		fmt.Fprintf(os.Stderr, "ethainter-sync: %v\n", err)
		os.Exit(1)
	}
}
