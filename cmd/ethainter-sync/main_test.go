package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	opts, err := parseFlags([]string{"-corpus", "7", "-seed", "42", "-oneshot", "-poll", "10ms", "-cache-dir", "/tmp/x"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.corpusN != 7 || opts.seed != 42 || !opts.oneshot || opts.poll != 10*time.Millisecond || opts.cacheDir != "/tmp/x" {
		t.Errorf("opts = %+v", opts)
	}
	if _, err := parseFlags([]string{"-poll", "soon"}); err == nil {
		t.Error("bad duration parsed without error")
	}
}

// oneshot runs one -oneshot follow and decodes its summary.
func oneshot(t *testing.T, args ...string) summary {
	t.Helper()
	opts, err := parseFlags(append([]string{"-oneshot"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := run(opts, logger, &buf, nil, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	var s summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("decoding summary %s: %v", buf.Bytes(), err)
	}
	return s
}

// TestOneshotColdThenWarm is the acceptance criterion in miniature: a cold
// follow and a restarted warm follow over the same -cache-dir produce
// identical findings digests, and the warm run performs zero decompilations
// and zero analyses.
func TestOneshotColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-corpus", "30", "-seed", "6", "-cache-dir", dir}

	cold := oneshot(t, args...)
	if cold.Creations == 0 || cold.Launched == 0 {
		t.Fatalf("cold run saw no work: %+v", cold)
	}
	if cold.CacheAnalyses != cold.Launched {
		t.Errorf("cold run: %d launches but %d analyses — duplicates analyzed twice", cold.Launched, cold.CacheAnalyses)
	}
	if cold.Entries != cold.Analyzed+cold.Failed {
		t.Errorf("cold index not settled: %+v", cold)
	}

	warm := oneshot(t, args...)
	if warm.CacheAnalyses != 0 || warm.CacheDecompiles != 0 {
		t.Errorf("warm restart did work: analyses = %d, decompiles = %d", warm.CacheAnalyses, warm.CacheDecompiles)
	}
	if warm.Digest != cold.Digest {
		t.Errorf("warm digest %s != cold digest %s", warm.Digest, cold.Digest)
	}
	if warm.Findings != cold.Findings || warm.Entries != cold.Entries {
		t.Errorf("warm index diverges: %+v vs %+v", warm, cold)
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port with a live
// deployer, waits for the follower to catch up past the seed, reads /findings
// and /statsz, then delivers SIGTERM and asserts a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	opts, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-corpus", "10", "-seed", "3",
		"-poll", "5ms", "-deploy-interval", "2ms", "-deploy-count", "5",
		"-shutdown-grace", "5s",
	})
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ready := make(chan net.Addr, 1)
	shutdown := make(chan os.Signal, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- run(opts, logger, io.Discard, ready, shutdown) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}

	// Wait until the follower has indexed the seed plus the live deploys.
	deadline := time.Now().Add(30 * time.Second)
	var statsz struct {
		Follow *struct {
			Entries   uint64 `json:"entries"`
			Analyzed  uint64 `json:"analyzed"`
			Failed    uint64 `json:"failed"`
			Creations uint64 `json:"creations_seen"`
			InFlight  int64  `json:"in_flight"`
		} `json:"follow"`
	}
	for {
		resp, err := http.Get(base + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&statsz)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fs := statsz.Follow
		if fs != nil && fs.Creations >= 15 && fs.Entries == fs.Analyzed+fs.Failed && fs.Entries >= 15 && fs.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", statsz.Follow)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/findings")
	if err != nil {
		t.Fatal(err)
	}
	var findings struct {
		Count int `json:"count"`
	}
	err = json.NewDecoder(resp.Body).Decode(&findings)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if findings.Count < 15 {
		t.Errorf("/findings count = %d, want >= 15", findings.Count)
	}

	shutdown <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never drained")
	}
}
