package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMinisolcModes(t *testing.T) {
	p := filepath.Join(t.TempDir(), "c.msol")
	src := `contract C {
    uint256 n;
    function bump() public returns (uint256) { n += 1; return n; }
    function kill() public { selfdestruct(msg.sender); }
}`
	if err := os.WriteFile(p, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct{ deploy, abi, disasm bool }{
		{false, false, false}, {true, false, false}, {false, true, false}, {false, false, true},
	} {
		if err := run(p, mode.deploy, mode.abi, mode.disasm); err != nil {
			t.Fatalf("run(%+v): %v", mode, err)
		}
	}
	if err := run(filepath.Join(t.TempDir(), "absent"), false, false, false); err == nil {
		t.Error("missing file should error")
	}
}
