// Command minisolc compiles mini-Solidity source to EVM bytecode.
//
// Usage:
//
//	minisolc [flags] <contract.msol>
//
// By default it prints the runtime bytecode as hex; flags emit deploy code,
// the ABI, or a disassembly instead.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"ethainter"
)

func main() {
	var (
		deploy = flag.Bool("deploy", false, "print deployment (constructor) bytecode instead of runtime")
		abi    = flag.Bool("abi", false, "print the public ABI")
		disasm = flag.Bool("disasm", false, "print a runtime disassembly")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: minisolc [flags] <contract.msol>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *deploy, *abi, *disasm); err != nil {
		fmt.Fprintf(os.Stderr, "minisolc: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, deploy, abi, disasm bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	compiled, err := ethainter.Compile(string(src))
	if err != nil {
		return err
	}
	switch {
	case abi:
		for _, fn := range compiled.ABI {
			ret := ""
			if fn.Ret != nil {
				ret = " returns (" + fn.Ret.String() + ")"
			}
			fmt.Printf("0x%x  %s%s\n", fn.Selector, fn.Sig, ret)
		}
	case disasm:
		fmt.Print(ethainter.Disassemble(compiled.Runtime))
	case deploy:
		fmt.Println("0x" + hex.EncodeToString(compiled.Deploy))
	default:
		fmt.Println("0x" + hex.EncodeToString(compiled.Runtime))
	}
	return nil
}
