package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/minisol"
)

// TestAnalyzeContextCancelled pins the cancellation contract: an
// already-expired context aborts the analysis with the context's error and a
// nil report, both uncached and through the cache.
func TestAnalyzeContextCancelled(t *testing.T) {
	compiled := minisol.MustCompile(minisol.VictimSource)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithTimeout(context.Background(), -time.Second)
	defer cancel2()

	cases := []struct {
		name string
		ctx  context.Context
		want error
	}{
		{"cancelled", cancelled, context.Canceled},
		{"expired", expired, context.DeadlineExceeded},
	}
	for _, c := range cases {
		rep, err := core.AnalyzeBytecodeContext(c.ctx, compiled.Runtime, core.DefaultConfig())
		if rep != nil || !errors.Is(err, c.want) {
			t.Errorf("%s: AnalyzeBytecodeContext = (%v, %v), want (nil, %v)", c.name, rep, err, c.want)
		}
		if !core.IsCancellation(err) {
			t.Errorf("%s: IsCancellation(%v) = false", c.name, err)
		}
	}
}

// TestCacheNeverMemoizesCancellation verifies a cancelled request does not
// poison the cache: the same bytecode analyzed again with a live context
// succeeds, and the cancelled attempt is not served as a negative hit.
func TestCacheNeverMemoizesCancellation(t *testing.T) {
	compiled := minisol.MustCompile(minisol.VictimSource)
	cache := core.NewCache(0)
	cfg := core.DefaultConfig()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.AnalyzeBytecodeContext(ctx, compiled.Runtime, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled analysis: err = %v, want context.Canceled", err)
	}

	rep, err := cache.AnalyzeBytecodeContext(context.Background(), compiled.Runtime, cfg)
	if err != nil || rep == nil {
		t.Fatalf("retry after cancellation: (%v, %v), want a report", rep, err)
	}
	if len(rep.Warnings) == 0 {
		t.Error("retry returned an empty report for the Victim contract")
	}

	// The successful report is now memoized: a third call is a hit and
	// returns the identical pointer.
	rep2, err := cache.AnalyzeBytecodeContext(context.Background(), compiled.Runtime, cfg)
	if err != nil || rep2 != rep {
		t.Errorf("post-retry lookup: rep2 == rep is %v, err %v", rep2 == rep, err)
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Errorf("stats after cancel+miss+hit: %+v, want exactly 1 hit", s)
	}
}

// TestContextVariantsMatchPlain pins that the context-threaded entry points
// with a background context produce reports identical to the plain ones.
func TestContextVariantsMatchPlain(t *testing.T) {
	compiled := minisol.MustCompile(minisol.VictimSource)
	cfg := core.DefaultConfig()
	plain, err := core.AnalyzeBytecode(compiled.Runtime, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := core.AnalyzeBytecodeContext(context.Background(), compiled.Runtime, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Warnings) != len(ctxed.Warnings) || plain.Stats.FixpointPasses != ctxed.Stats.FixpointPasses {
		t.Errorf("context variant diverges: plain %d warnings/%d passes, ctx %d/%d",
			len(plain.Warnings), plain.Stats.FixpointPasses, len(ctxed.Warnings), ctxed.Stats.FixpointPasses)
	}
}
