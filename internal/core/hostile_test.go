package core_test

import (
	"context"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/decompiler"
)

// hostileBytecode loads one committed adversarial input from the decompiler's
// corpus; these drive the value-set fixpoint into seconds of work before
// exhausting the default contexts budget.
func hostileBytecode(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "decompiler", "testdata", "hostile", name))
	if err != nil {
		t.Fatalf("hostile corpus: %v", err)
	}
	code, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestHostileDeadlineRegression is the end-to-end serving-latency contract: a
// full-pipeline analysis of the worst-case hostile input under a 50ms
// deadline must return a cancellation error within 2x the deadline. Before
// the decompiler polled its context, this input pinned a worker for the full
// multi-second fixpoint regardless of the caller's deadline.
func TestHostileDeadlineRegression(t *testing.T) {
	code := hostileBytecode(t, "ctx-explosion-312b.hex")
	const deadline = 50 * time.Millisecond
	// Budgets far past the deadline's reach: the optimized decompiler can
	// exhaust the default contexts budget on this input in tens of
	// milliseconds, which would race the deadline; the regression under test
	// is cancellation latency, so the deadline must be the only exit.
	cfg := core.DefaultConfig()
	cfg.DecompileLimits = decompiler.Limits{MaxContexts: 1 << 30, MaxWorklistSteps: 1 << 40, MaxStatements: 1 << 40}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	start := time.Now()
	rep, err := core.AnalyzeBytecodeContext(ctx, code, cfg)
	elapsed := time.Since(start)

	if rep != nil || !core.IsCancellation(err) {
		t.Fatalf("got (%v, %v), want a cancellation error", rep, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Errorf("returned after %v, want <= %v (2x the deadline)", elapsed, 2*deadline)
	}
}

// TestBudgetExhaustionNegativelyCached pins the error-memoization split: a
// deterministic budget-exhaustion failure is served from the negative cache
// on the second request (a hit, no re-analysis), while the cancellation path
// exercised by TestCacheNeverMemoizesCancellation is never memoized. A tight
// step budget makes the hostile input fail in milliseconds instead of
// seconds.
func TestBudgetExhaustionNegativelyCached(t *testing.T) {
	code := hostileBytecode(t, "ctx-explosion-356b.hex")
	cache := core.NewCache(0)
	cfg := core.DefaultConfig()
	cfg.DecompileLimits = decompiler.Limits{MaxWorklistSteps: 2000}

	_, err := cache.AnalyzeBytecodeContext(context.Background(), code, cfg)
	if !core.IsBudgetExhaustion(err) {
		t.Fatalf("first request: err = %v, want budget exhaustion", err)
	}
	if core.IsCancellation(err) {
		t.Fatalf("budget exhaustion misclassified as cancellation: %v", err)
	}

	_, err2 := cache.AnalyzeBytecodeContext(context.Background(), code, cfg)
	if !core.IsBudgetExhaustion(err2) || err2.Error() != err.Error() {
		t.Fatalf("second request: err = %v, want the memoized %v", err2, err)
	}
	s := cache.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want exactly 1 miss then 1 hit (negative cache)", s)
	}
}

// TestBudgetScopedByConfig: the same bytecode under different budgets is a
// different cache entry — a tight-budget failure must not shadow a
// default-budget success, and vice versa.
func TestBudgetScopedByConfig(t *testing.T) {
	code := hostileBytecode(t, "ctx-explosion-356b.hex")
	cache := core.NewCache(0)

	tight := core.DefaultConfig()
	tight.DecompileLimits = decompiler.Limits{MaxWorklistSteps: 2000}
	if _, err := cache.AnalyzeBytecodeContext(context.Background(), code, tight); !core.IsBudgetExhaustion(err) {
		t.Fatalf("tight budget: err = %v, want budget exhaustion", err)
	}

	var be *decompiler.BudgetError
	loose := core.DefaultConfig()
	_, err := cache.AnalyzeBytecodeContext(context.Background(), code, loose)
	if !core.IsBudgetExhaustion(err) || !errors.As(err, &be) || be.Resource != "contexts" {
		t.Fatalf("default budget: err = %v, want a contexts budget error", err)
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 2 misses (distinct configs must not share entries)", s)
	}
}
