package core

// White-box tests for the persistent tier: warm restarts serve everything
// from disk with zero analyses and zero decompilations, the startup scrub
// drops exactly the torn and stale-format entries, and the codec
// round-trips reports and deterministic negative entries bit-for-bit. These
// manipulate entry files and internal keys directly, hence package core.

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// newWarmDir analyzes the given bytecodes into a fresh tier at dir and
// flushes it, returning the digests of the successful reports by index.
func newWarmDir(t *testing.T, dir string, codes [][]byte, cfg Config) map[int][32]byte {
	t.Helper()
	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.SetDiskTier(tier)
	digests := map[int][32]byte{}
	for i, code := range codes {
		rep, err := c.AnalyzeBytecode(code, cfg)
		if err != nil {
			t.Fatalf("cold analysis %d: %v", i, err)
		}
		digests[i] = rep.Digest()
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if st := tier.Stats(); st.Writes != uint64(len(codes)) || st.Entries != int64(len(codes)) {
		t.Fatalf("cold tier stats = %+v, want %d writes and entries", st, len(codes))
	}
	return digests
}

// entryFiles returns every committed entry file under dir, sorted by path.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == diskEntryExt {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

var warmTestSources = []string{
	minisol.VictimSource,
	minisol.TaintedOwnerSource,
	minisol.AccessibleSelfdestructSource,
}

// TestDiskTierWarmRestart is the tentpole contract in miniature: a second
// process over the same corpus performs zero analyses and zero
// decompilations, serves every request from the disk tier, and returns
// reports bit-identical (modulo wall-clock timings) to the cold run.
func TestDiskTierWarmRestart(t *testing.T) {
	var codes [][]byte
	for _, src := range warmTestSources {
		codes = append(codes, minisol.MustCompile(src).Runtime)
	}
	cfg := DefaultConfig()
	dir := t.TempDir()
	digests := newWarmDir(t, dir, codes, cfg)

	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	if st := tier.Stats(); st.Entries != int64(len(codes)) || st.Scrubbed != 0 {
		t.Fatalf("reopened tier stats = %+v, want %d intact entries, none scrubbed", st, len(codes))
	}
	c := NewCache(0)
	c.SetDiskTier(tier)
	for i, code := range codes {
		rep, err := c.AnalyzeBytecode(code, cfg)
		if err != nil {
			t.Fatalf("warm analysis %d: %v", i, err)
		}
		if rep.Digest() != digests[i] {
			t.Fatalf("warm report %d differs from cold run", i)
		}
	}
	st := c.Stats()
	if st.Analyses != 0 || st.Decompiles != 0 {
		t.Fatalf("warm restart: Analyses = %d, Decompiles = %d, want 0/0", st.Analyses, st.Decompiles)
	}
	if st.DiskHits != uint64(len(codes)) || st.Misses != uint64(len(codes)) || st.Hits != 0 {
		t.Fatalf("warm restart: DiskHits = %d, Misses = %d, Hits = %d, want %d/%d/0",
			st.DiskHits, st.Misses, st.Hits, len(codes), len(codes))
	}
}

// TestDiskTierPersistsNegativeEntries: a deterministic budget failure is
// written to disk and a warm restart re-serves it without re-running the
// decompiler — the negative-caching contract extended to the durable tier.
func TestDiskTierPersistsNegativeEntries(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := DefaultConfig()
	cfg.DecompileLimits = decompiler.Limits{MaxWorklistSteps: 1}
	dir := t.TempDir()

	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.SetDiskTier(tier)
	_, coldErr := c.AnalyzeBytecode(code, cfg)
	if !IsBudgetExhaustion(coldErr) {
		t.Fatalf("cold: err = %v, want budget exhaustion", coldErr)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if st := tier.Stats(); st.Writes != 1 {
		t.Fatalf("tier stats = %+v, want the negative entry written", st)
	}

	tier2, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	c2 := NewCache(0)
	c2.SetDiskTier(tier2)
	_, warmErr := c2.AnalyzeBytecode(code, cfg)
	var be *decompiler.BudgetError
	if !IsBudgetExhaustion(warmErr) || !errors.As(warmErr, &be) {
		t.Fatalf("warm: err = %v, want a budget error", warmErr)
	}
	if warmErr.Error() != coldErr.Error() {
		t.Fatalf("warm error %q differs from cold %q", warmErr, coldErr)
	}
	if st := c2.Stats(); st.Analyses != 0 || st.Decompiles != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want the failure served from disk", st)
	}
}

// TestDiskTierScrubDropsTornEntries simulates a crash mid-write: one entry
// truncated under its final name (a torn page the rename protocol itself
// cannot cause, but the checksum must still catch) and one stray temp file.
// The reopen scrub must drop exactly those two, keep every intact entry, and
// recompute only the torn key.
func TestDiskTierScrubDropsTornEntries(t *testing.T) {
	var codes [][]byte
	for _, src := range warmTestSources {
		codes = append(codes, minisol.MustCompile(src).Runtime)
	}
	cfg := DefaultConfig()
	dir := t.TempDir()
	newWarmDir(t, dir, codes, cfg)

	files := entryFiles(t, dir)
	if len(files) != len(codes) {
		t.Fatalf("%d entry files, want %d", len(files), len(codes))
	}
	torn := files[0]
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(filepath.Dir(torn), "deadbeef.ent.tmp")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	if st := tier.Stats(); st.Scrubbed != 2 || st.Entries != int64(len(codes)-1) {
		t.Fatalf("scrub stats = %+v, want exactly 2 scrubbed and %d survivors", st, len(codes)-1)
	}
	if _, err := os.Lstat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn entry still on disk: %v", err)
	}
	if _, err := os.Lstat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file still on disk: %v", err)
	}

	c := NewCache(0)
	c.SetDiskTier(tier)
	for i, code := range codes {
		if _, err := c.AnalyzeBytecode(code, cfg); err != nil {
			t.Fatalf("post-scrub analysis %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Analyses != 1 || st.DiskHits != uint64(len(codes)-1) || st.DiskMisses != 1 {
		t.Fatalf("post-scrub stats = %+v, want exactly the torn key recomputed", st)
	}
}

// TestDiskTierScrubDropsStaleFormat bumps the format version inside an
// otherwise-valid entry (re-checksummed, so only the version check can
// reject it) and asserts the scrub drops it rather than mis-decoding a
// report written under a different format.
func TestDiskTierScrubDropsStaleFormat(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := DefaultConfig()
	dir := t.TempDir()
	newWarmDir(t, dir, [][]byte{code}, cfg)

	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("%d entry files, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Bump the u32 format version right after the magic and re-checksum.
	data[len(diskMagic)+3]++
	body := data[:len(data)-32]
	sum := crypto.Keccak256(body)
	if err := os.WriteFile(files[0], append(body, sum[:]...), 0o644); err != nil {
		t.Fatal(err)
	}

	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	if st := tier.Stats(); st.Scrubbed != 1 || st.Entries != 0 {
		t.Fatalf("scrub stats = %+v, want the stale-format entry dropped", st)
	}
}

// TestDiskTierLazyScrubOnRead: an entry that rots after the startup scrub
// (torn in place) is dropped by the read path and reported as a miss, never
// mis-decoded.
func TestDiskTierLazyScrubOnRead(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := DefaultConfig()
	dir := t.TempDir()
	newWarmDir(t, dir, [][]byte{code}, cfg)

	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	files := entryFiles(t, dir)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	key := reportKey{code: crypto.Keccak256(code), cfg: cfg.Fingerprint()}
	if _, ok := tier.get(key, cfg.DecompileLimits.Normalized()); ok {
		t.Fatal("torn entry served as a hit")
	}
	if st := tier.Stats(); st.Scrubbed != 1 || st.Entries != 0 {
		t.Fatalf("lazy scrub stats = %+v, want the torn entry dropped", st)
	}
	if _, ok := tier.get(key, cfg.DecompileLimits.Normalized()); ok {
		t.Fatal("dropped entry came back")
	}
}

// TestCacheLookupDiskFastPath: Lookup — the scheduler's no-worker fast path —
// must serve a warm-disk entry directly, promote it into memory, and count
// one DiskHit; the second Lookup is then a pure memory hit.
func TestCacheLookupDiskFastPath(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := DefaultConfig()
	dir := t.TempDir()
	digests := newWarmDir(t, dir, [][]byte{code}, cfg)

	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	c := NewCache(0)
	c.SetDiskTier(tier)
	hash := crypto.Keccak256(code)

	rep, repErr, ok := c.Lookup(hash, cfg)
	if !ok || repErr != nil || rep.Digest() != digests[0] {
		t.Fatalf("warm Lookup: ok = %v, err = %v, want the cold report", ok, repErr)
	}
	if st := c.Stats(); st.DiskHits != 1 || st.Hits != 0 || st.Misses != 0 || st.Analyses != 0 {
		t.Fatalf("after warm Lookup: stats = %+v, want exactly one disk hit", st)
	}
	if _, _, ok := c.Lookup(hash, cfg); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := c.Stats(); st.Hits != 1 || st.DiskHits != 1 {
		t.Fatalf("after second Lookup: stats = %+v, want one memory hit", st)
	}
}

// TestDiskCodecRoundTrip pins the entry codec: reports with warnings and
// witnesses, budget errors, and generic deterministic errors all survive an
// encode/decode cycle, and structural damage is rejected.
func TestDiskCodecRoundTrip(t *testing.T) {
	key := reportKey{cfg: 0x0123456789abcdef}
	copy(key.code[:], []byte("some-32-byte-bytecode-hash......"))
	limits := decompiler.DefaultLimits()

	rep := &Report{PublicFunctions: 3}
	rep.Stats.Blocks = 41
	rep.Stats.FixpointPasses = 2
	rep.Warnings = []Warning{{
		Kind:    TaintedOwner,
		PC:      0x42,
		Message: "owner slot tainted",
		Witness: []Step{{Selector: [4]byte{0xde, 0xad, 0xbe, 0xef}, NumArgs: 2}},
	}}
	rep.Warnings[0].Slot[0] = 7

	cases := []reportEntry{
		{rep: rep},
		{err: &decompiler.BudgetError{Resource: "contexts", Limit: 6000}},
		{err: errors.New("decompiler: unresolvable jump target")},
	}
	for i, e := range cases {
		data := encodeEntry(key, limits, e)
		gotKey, gotLimits, got, err := decodeEntry(data)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if gotKey != key || gotLimits != limits {
			t.Fatalf("case %d: key/limits echo mismatch", i)
		}
		switch {
		case e.rep != nil:
			if got.rep == nil || got.rep.Digest() != e.rep.Digest() || got.err != nil {
				t.Fatalf("case %d: report did not round-trip", i)
			}
		default:
			if got.err == nil || got.err.Error() != e.err.Error() {
				t.Fatalf("case %d: err = %v, want %v", i, got.err, e.err)
			}
			var wantBE, gotBE *decompiler.BudgetError
			if errors.As(e.err, &wantBE) {
				if !errors.As(got.err, &gotBE) || *gotBE != *wantBE {
					t.Fatalf("case %d: budget error did not round-trip: %v", i, got.err)
				}
			}
		}

		// Truncation at any point must fail the checksum, never mis-decode.
		if _, _, _, err := decodeEntry(data[:len(data)-1]); err == nil {
			t.Fatalf("case %d: truncated entry decoded", i)
		}
		// Trailing garbage inside a valid checksum must still be rejected.
		padded := append(append([]byte{}, data[:len(data)-32]...), 0)
		sum := crypto.Keccak256(padded)
		if _, _, _, err := decodeEntry(append(padded, sum[:]...)); err == nil {
			t.Fatalf("case %d: oversized entry decoded", i)
		}
	}
}

// TestDiskTierNeverPersistsCancellation pins the persistence policy at both
// layers: persistable rejects cancellations and internal panics, and a
// cancelled analysis leaves the tier empty.
func TestDiskTierNeverPersistsCancellation(t *testing.T) {
	if persistable(context.Canceled) || persistable(context.DeadlineExceeded) {
		t.Fatal("cancellations must not persist")
	}
	if persistable(&PanicError{}) {
		t.Fatal("internal panics must not persist")
	}
	if !persistable(nil) || !persistable(&decompiler.BudgetError{Resource: "contexts", Limit: 1}) {
		t.Fatal("reports and deterministic failures must persist")
	}

	dir := t.TempDir()
	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0)
	c.SetDiskTier(tier)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	if _, err := c.AnalyzeBytecodeContext(ctx, code, DefaultConfig()); !IsCancellation(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if st := tier.Stats(); st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("tier stats = %+v, want nothing persisted", st)
	}
	if files := entryFiles(t, dir); len(files) != 0 {
		t.Fatalf("entry files on disk after cancellation: %v", files)
	}
}
