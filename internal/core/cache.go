package core

import (
	"context"
	"encoding/binary"
	"math/bits"
	"sync"
	"time"

	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/tac"
)

// Fingerprint returns a stable digest of the configuration. Cache entries
// are partitioned by it: reports computed under different configs never
// alias. Every behavior-affecting Config field must be folded in here —
// including the decompilation budgets, normalized first so the zero value
// and explicit defaults fingerprint identically. Parallelism is deliberately
// NOT folded in: it changes only how the Datalog fixpoint is scheduled,
// never what it derives, so reports computed at different worker counts are
// interchangeable and share cache entries.
func (c Config) Fingerprint() uint64 {
	bits := byte(0)
	if c.ModelGuards {
		bits |= 1 << 0
	}
	if c.ModelStorageTaint {
		bits |= 1 << 1
	}
	if c.ConservativeStorage {
		bits |= 1 << 2
	}
	if c.InferOwnerSinks {
		bits |= 1 << 3
	}
	lim := c.DecompileLimits.Normalized()
	var limBytes [24]byte
	binary.BigEndian.PutUint64(limBytes[0:], uint64(lim.MaxContexts))
	binary.BigEndian.PutUint64(limBytes[8:], uint64(lim.MaxWorklistSteps))
	binary.BigEndian.PutUint64(limBytes[16:], uint64(lim.MaxStatements))
	h := crypto.Keccak256([]byte("ethainter-config-v2"), []byte{bits}, limBytes[:])
	return binary.BigEndian.Uint64(h[:8])
}

// CacheStats are the counters of one Cache (or, from ShardStats, of one
// shard). The merged view sums hits/misses/evictions/entries/contended over
// every shard and reports the shard count.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Shards is the shard count in a merged Stats() snapshot (0 in a
	// per-shard snapshot).
	Shards int `json:"shards,omitempty"`
	// Contended counts lock acquisitions that found the shard mutex already
	// held and had to wait — the direct measure of cross-worker serialization
	// the sharding exists to kill. Cheap (one TryLock) and monotone.
	Contended uint64 `json:"contended,omitempty"`
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// reportKey addresses one analysis result: the keccak-256 of the runtime
// bytecode plus the config fingerprint.
type reportKey struct {
	code [32]byte
	cfg  uint64
}

type reportEntry struct {
	rep *Report
	err error
}

// progKey addresses one decompiled program: bytecode hash plus the
// normalized decompilation budget. Programs are shared across analysis
// configs but never across budgets — a bytecode near a limit decompiles
// under one budget and exhausts another.
type progKey struct {
	code   [32]byte
	limits decompiler.Limits
}

type progEntry struct {
	prog *tac.Program
	err  error
}

// inflight tracks one in-progress computation so concurrent lookups of the
// same key wait for it instead of duplicating the work.
type inflight struct {
	done chan struct{}
	rep  *Report
	err  error
}

// cacheShard is one independently-locked slice of the cache. All state for a
// given bytecode hash — report entries across configs, decompiled programs
// across budgets, and in-flight computations — lives on the same shard, so
// one contract's full lifecycle never takes more than one shard lock.
type cacheShard struct {
	mu         sync.Mutex
	contended  uint64 // TryLock failures; read under mu
	maxEntries int    // per-store bound for this shard

	reports     map[reportKey]reportEntry
	reportOrder []reportKey
	progs       map[progKey]progEntry
	progOrder   []progKey
	pending     map[reportKey]*inflight

	stats CacheStats
}

// lock acquires the shard mutex, counting the acquisitions that had to wait.
// The TryLock fast path costs one CAS when uncontended; when it fails, the
// blocking Lock below is charged to the contention counter.
func (s *cacheShard) lock() {
	if s.mu.TryLock() {
		return
	}
	s.mu.Lock()
	s.contended++
}

// Cache memoizes decompilation and full analysis Reports across a sweep —
// the unique-contract deduplication behind the paper's 38 MLoC scalability
// claim (Section 6: ~240K unique contracts stand in for millions deployed).
// Reports are content-addressed by keccak-256 of the runtime bytecode plus a
// Config fingerprint; decompiled programs are shared across configs (they
// are read-only after construction). Both stores evict FIFO past a capacity
// bound.
//
// The cache is sharded by bytecode hash: each shard carries its own mutex,
// maps, and counters, so concurrent sweeps on different contracts never
// serialize on one lock (the pre-sharding design did, and the single mutex
// dominated multi-worker sweep profiles). Stats() merges the shards into one
// view; ShardStats() exposes the split. Safe for concurrent use.
type Cache struct {
	shards []cacheShard
	mask   uint64
}

// DefaultCacheEntries bounds each cache store when NewCache is given a
// non-positive capacity — comfortably above the unique-contract count of any
// corpus profile shipped in this repository.
const DefaultCacheEntries = 1 << 16

// DefaultCacheShards is the shard count when NewCacheSharded is given a
// non-positive one: enough to make lock collisions rare at any worker count
// this repository's pools reach, small enough that a Stats() merge is free.
const DefaultCacheShards = 16

// NewCache returns a cache bounded to maxEntries reports (and as many
// decompiled programs) across DefaultCacheShards shards; maxEntries <= 0
// selects DefaultCacheEntries.
func NewCache(maxEntries int) *Cache {
	return NewCacheSharded(maxEntries, 0)
}

// NewCacheSharded returns a cache bounded to maxEntries reports total,
// partitioned over the given shard count. Non-positive values select the
// defaults. The shard count is rounded down to a power of two (for mask
// indexing) and clamped so every shard holds at least one entry — a
// capacity-1 cache degenerates to one shard and keeps exact FIFO semantics.
func NewCacheSharded(maxEntries, shards int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	if shards > maxEntries {
		shards = maxEntries
	}
	// Round down to a power of two so shard selection is a mask, not a mod.
	shards = 1 << (bits.Len(uint(shards)) - 1)
	perShard := maxEntries / shards
	c := &Cache{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			maxEntries: perShard,
			reports:    map[reportKey]reportEntry{},
			progs:      map[progKey]progEntry{},
			pending:    map[reportKey]*inflight{},
		}
	}
	return c
}

// shardFor picks the shard owning a bytecode hash. Keccak output is uniform,
// so any fixed 8 bytes index evenly; the low word is used.
func (c *Cache) shardFor(hash [32]byte) *cacheShard {
	return &c.shards[binary.BigEndian.Uint64(hash[24:])&c.mask]
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Stats returns a merged snapshot of the per-shard counters.
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	out.Shards = len(c.shards)
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.Evictions += s.stats.Evictions
		out.Entries += len(s.reports)
		out.Contended += s.contended
		s.mu.Unlock()
	}
	return out
}

// ShardStats returns one snapshot per shard — the hit/miss split behind the
// merged Stats() view, for the /statsz observability surface and for
// verifying that sharding actually spread the load.
func (c *Cache) ShardStats() []CacheStats {
	out := make([]CacheStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		out[i] = s.stats
		out[i].Entries = len(s.reports)
		out[i].Contended = s.contended
		s.mu.Unlock()
	}
	return out
}

// Lookup returns the memoized report (or negatively-cached deterministic
// error) for an already-hashed bytecode under cfg, without computing
// anything. A found entry counts as a hit; an absent one counts nothing —
// the caller is expected to follow up with AnalyzeHashedContext, which
// records the miss when it computes. The sweep scheduler uses this as its
// synchronous fast path so cache-resident work never occupies a pool worker.
func (c *Cache) Lookup(hash [32]byte, cfg Config) (*Report, error, bool) {
	key := reportKey{code: hash, cfg: cfg.Fingerprint()}
	s := c.shardFor(hash)
	s.lock()
	e, ok := s.reports[key]
	if ok {
		s.stats.Hits++
	}
	s.mu.Unlock()
	return e.rep, e.err, ok
}

// AnalyzeBytecode is the cached equivalent of the package-level
// AnalyzeBytecode. On a hit the memoized Report is returned directly (shared,
// so callers must treat reports as immutable — everything else in this
// repository already does). Decompile errors — including budget exhaustion,
// which is deterministic for a (bytecode, limits) pair — are cached
// negatively: retrying a hostile bytecode costs one lookup, not seconds of
// re-decompilation.
func (c *Cache) AnalyzeBytecode(code []byte, cfg Config) (*Report, error) {
	return c.AnalyzeBytecodeContext(context.Background(), code, cfg)
}

// AnalyzeBytecodeContext is the cancellable cached analysis. Cancellation
// errors are never memoized: a request that ran out of budget must not
// poison the key for later callers with more patience. When a waiter
// coalesces onto a computation that is itself cancelled, the waiter retries
// the analysis under its own context.
func (c *Cache) AnalyzeBytecodeContext(ctx context.Context, code []byte, cfg Config) (*Report, error) {
	return c.AnalyzeHashedContext(ctx, crypto.Keccak256(code), code, cfg)
}

// AnalyzeHashedContext is AnalyzeBytecodeContext for callers that already
// hold the bytecode's keccak-256 — the sweep scheduler hashes once during
// dedup planning and never pays for it again.
func (c *Cache) AnalyzeHashedContext(ctx context.Context, hash [32]byte, code []byte, cfg Config) (*Report, error) {
	key := reportKey{code: hash, cfg: cfg.Fingerprint()}
	s := c.shardFor(hash)

	s.lock()
	if e, ok := s.reports[key]; ok {
		s.stats.Hits++
		s.mu.Unlock()
		return e.rep, e.err
	}
	if fl, ok := s.pending[key]; ok {
		// Another goroutine is computing this key; waiting for it is a hit —
		// the work is not duplicated.
		s.stats.Hits++
		s.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if IsCancellation(fl.err) {
			// The computing request was cancelled; its failure says nothing
			// about the bytecode. Redo the work under our own context.
			return c.AnalyzeHashedContext(ctx, hash, code, cfg)
		}
		return fl.rep, fl.err
	}
	s.stats.Misses++
	fl := &inflight{done: make(chan struct{})}
	s.pending[key] = fl
	s.mu.Unlock()

	fl.rep, fl.err = c.computeReport(ctx, key, code, cfg)

	s.lock()
	if !IsCancellation(fl.err) {
		s.storeReport(key, reportEntry{rep: fl.rep, err: fl.err})
	}
	delete(s.pending, key)
	s.mu.Unlock()
	close(fl.done)
	return fl.rep, fl.err
}

// computeReport runs decompile + analysis under ctx and cfg's budgets. The
// deferred recover converts any residual panic on hostile bytecode into
// ErrInternal so one poisonous input can never take down a serving process —
// the same guarantee the uncached AnalyzeBytecodeContext boundary makes.
func (c *Cache) computeReport(ctx context.Context, key reportKey, code []byte, cfg Config) (rep *Report, err error) {
	defer recoverToError(&err)
	prog, decompileTime, dt, err := c.decompile(ctx, key.code, code, cfg.DecompileLimits)
	if err != nil {
		return nil, err
	}
	rep, err = AnalyzeContext(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	rep.Stats.Timings.setDecompile(decompileTime, dt)
	return rep, nil
}

// decompile returns the (shared, read-only) decompiled program for the
// (bytecode, budget) pair, computing and memoizing it on first use. The
// recorded durations — the stage total and its sub-breakdown — are zero on a
// hit: the sweep did not pay for it again. Deterministic failures — including
// budget exhaustion — are memoized; cancellations are not, since they reflect
// the caller's deadline rather than the bytecode.
func (c *Cache) decompile(ctx context.Context, hash [32]byte, code []byte, limits decompiler.Limits) (*tac.Program, time.Duration, decompiler.Timings, error) {
	key := progKey{code: hash, limits: limits.Normalized()}
	s := c.shardFor(hash)
	s.lock()
	if e, ok := s.progs[key]; ok {
		s.mu.Unlock()
		return e.prog, 0, decompiler.Timings{}, e.err
	}
	s.mu.Unlock()

	t0 := time.Now()
	prog, dt, err := decompiler.DecompileTimed(ctx, code, limits)
	elapsed := time.Since(t0)

	s.lock()
	if _, ok := s.progs[key]; !ok && !IsCancellation(err) {
		if len(s.progs) >= s.maxEntries && len(s.progOrder) > 0 {
			delete(s.progs, s.progOrder[0])
			s.progOrder = s.progOrder[1:]
			s.stats.Evictions++
		}
		s.progs[key] = progEntry{prog: prog, err: err}
		s.progOrder = append(s.progOrder, key)
	}
	s.mu.Unlock()
	return prog, elapsed, dt, err
}

// storeReport inserts under s.mu, evicting the shard's oldest entry past its
// per-shard capacity (the total bound divided over the shards).
func (s *cacheShard) storeReport(key reportKey, e reportEntry) {
	if _, ok := s.reports[key]; ok {
		return
	}
	if len(s.reports) >= s.maxEntries && len(s.reportOrder) > 0 {
		delete(s.reports, s.reportOrder[0])
		s.reportOrder = s.reportOrder[1:]
		s.stats.Evictions++
	}
	s.reports[key] = e
	s.reportOrder = append(s.reportOrder, key)
}
