package core

import (
	"context"
	"encoding/binary"
	"math/bits"
	"sync"
	"time"

	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/tac"
)

// fingerprintScheme names the config-fingerprint scheme. It is folded into
// every fingerprint AND into every persistent cache entry's header: bumping
// the scheme (because a new behavior-affecting Config field was added)
// automatically invalidates every on-disk entry written under the old one —
// the startup scrub drops them instead of mis-decoding reports computed under
// a config the old fingerprint could not distinguish.
const fingerprintScheme = "ethainter-config-v2"

// Fingerprint returns a stable digest of the configuration. Cache entries
// are partitioned by it: reports computed under different configs never
// alias. Every behavior-affecting Config field must be folded in here —
// including the decompilation budgets, normalized first so the zero value
// and explicit defaults fingerprint identically. Parallelism is deliberately
// NOT folded in: it changes only how the Datalog fixpoint is scheduled,
// never what it derives, so reports computed at different worker counts are
// interchangeable and share cache entries.
func (c Config) Fingerprint() uint64 {
	bits := byte(0)
	if c.ModelGuards {
		bits |= 1 << 0
	}
	if c.ModelStorageTaint {
		bits |= 1 << 1
	}
	if c.ConservativeStorage {
		bits |= 1 << 2
	}
	if c.InferOwnerSinks {
		bits |= 1 << 3
	}
	lim := c.DecompileLimits.Normalized()
	var limBytes [24]byte
	binary.BigEndian.PutUint64(limBytes[0:], uint64(lim.MaxContexts))
	binary.BigEndian.PutUint64(limBytes[8:], uint64(lim.MaxWorklistSteps))
	binary.BigEndian.PutUint64(limBytes[16:], uint64(lim.MaxStatements))
	h := crypto.Keccak256([]byte(fingerprintScheme), []byte{bits}, limBytes[:])
	return binary.BigEndian.Uint64(h[:8])
}

// CacheStats are the counters of one Cache (or, from ShardStats, of one
// shard). The merged view sums the per-shard counters over every shard,
// reports the shard count, and — when a disk tier is attached — adds the
// tier-level write/scrub counters, which have no per-shard split.
//
// The counting contract: every logical request that resolves to a report or
// a memoized error counts exactly one memory Hit or exactly one memory Miss —
// never both, no matter how many internal retries a cancelled coalesced
// computation forces — so Hits+Misses equals the number of resolved logical
// lookups. Tier probes happen only on memory misses, and each computing miss
// counts exactly one DiskHit or DiskMiss when a disk tier is attached — a
// miss served by a remote peer still counts a DiskMiss, because the local
// disk was probed first and had nothing. Analyses
// and Decompiles count work actually performed (compute attempts and real
// decompiler invocations), so a fully warm restart shows both at zero.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Shards is the shard count in a merged Stats() snapshot (0 in a
	// per-shard snapshot).
	Shards int `json:"shards,omitempty"`
	// Contended counts lock acquisitions that found the shard mutex already
	// held and had to wait — the direct measure of cross-worker serialization
	// the sharding exists to kill. Cheap (one TryLock) and monotone.
	Contended uint64 `json:"contended,omitempty"`

	// DiskHits counts memory misses served by the disk tier; DiskMisses
	// counts memory misses that probed the disk tier and had to compute.
	// Both stay zero when no tier is attached.
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	DiskMisses uint64 `json:"disk_misses,omitempty"`
	// Analyses counts compute attempts (a report computed or a deterministic
	// failure established by actually running the pipeline); Decompiles
	// counts real decompiler invocations (program singleflight waiters and
	// program-memo hits don't re-decompile). A warm restart over a fully
	// persisted corpus keeps both at zero.
	Analyses   uint64 `json:"analyses,omitempty"`
	Decompiles uint64 `json:"decompiles,omitempty"`

	// FactsMisses counts facts strata actually computed — once per unique
	// successfully-decompiled program, inside the program singleflight, no
	// matter how many configs the program is analyzed under. FactsHits
	// counts analyses that reused a memoized facts stratum (a program-memo
	// hit or a singleflight waiter) and ran only the config-dependent
	// guards+fixpoint tail. Report-level hits (memory or disk) touch
	// neither counter: they never reached the facts layer at all.
	FactsHits   uint64 `json:"facts_hits,omitempty"`
	FactsMisses uint64 `json:"facts_misses,omitempty"`

	// Tier-level disk counters, merged view only (per-shard snapshots leave
	// them zero): durable entry writes, failed writes, entries dropped by the
	// startup/lazy scrub, live on-disk entries, their total byte size, and
	// entries removed by the size-budget eviction sweep.
	DiskWrites      uint64 `json:"disk_writes,omitempty"`
	DiskWriteErrors uint64 `json:"disk_write_errors,omitempty"`
	DiskScrubbed    uint64 `json:"disk_scrubbed,omitempty"`
	DiskEntries     int64  `json:"disk_entries,omitempty"`
	DiskBytes       int64  `json:"disk_bytes,omitempty"`
	DiskEvictions   uint64 `json:"disk_evictions,omitempty"`

	// Peer-fill counters, merged view only. PeerHits counts local
	// (memory+disk) misses served by a peer replica's cache over the
	// peer-fill protocol; PeerMisses counts remote probes that found the
	// entry on no configured peer; PeerFillBytes totals the verified entry
	// bytes installed from peers; PeerErrors counts failed peer probes —
	// transport errors, timeouts, unexpected statuses, and entries rejected
	// by the checksum/key/scheme verification. All zero when no remote tier
	// is attached.
	PeerHits      uint64 `json:"peer_hits,omitempty"`
	PeerMisses    uint64 `json:"peer_misses,omitempty"`
	PeerFillBytes uint64 `json:"peer_fill_bytes,omitempty"`
	PeerErrors    uint64 `json:"peer_errors,omitempty"`
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// reportKey addresses one analysis result: the keccak-256 of the runtime
// bytecode plus the config fingerprint.
type reportKey struct {
	code [32]byte
	cfg  uint64
}

type reportEntry struct {
	rep *Report
	err error
	// limits is the normalized decompilation budget the outcome was computed
	// under — the third component of the persistent entry format's key echo.
	// Carrying it on the in-memory entry lets EntryBytes re-serialize a
	// memory-resident outcome for a peer without knowing the caller's Config.
	limits decompiler.Limits
}

// progKey addresses one decompiled program: bytecode hash plus the
// normalized decompilation budget. Programs are shared across analysis
// configs but never across budgets — a bytecode near a limit decompiles
// under one budget and exhausts another.
type progKey struct {
	code   [32]byte
	limits decompiler.Limits
}

// progEntry memoizes the config-independent prefix of the pipeline: the
// decompiled program AND its facts stratum (constants, memory model, storage
// classification, sender derivation — see facts.go). Facts are computed once
// inside the program singleflight and shared read-only across every config
// the program is analyzed under; per-config analysis then runs only
// computeGuards + the taint fixpoint. facts is non-nil exactly when err is
// nil: both are produced together under the singleflight, and a facts-stage
// panic resolves the entry as an error without memoizing it.
type progEntry struct {
	prog  *tac.Program
	facts *facts
	err   error
}

// inflight tracks one in-progress report computation so concurrent lookups
// of the same key wait for it instead of duplicating the work.
type inflight struct {
	done chan struct{}
	rep  *Report
	err  error
}

// progInflight tracks one in-progress decompilation — the program-level
// mirror of the report singleflight. Without it, two concurrent report
// misses under different configs (distinct report keys, same program key)
// both ran the full decompiler.
type progInflight struct {
	done  chan struct{}
	prog  *tac.Program
	facts *facts
	err   error
}

// cacheShard is one independently-locked slice of the cache. All state for a
// given bytecode hash — report entries across configs, decompiled programs
// across budgets, and in-flight computations — lives on the same shard, so
// one contract's full lifecycle never takes more than one shard lock.
type cacheShard struct {
	mu         sync.Mutex
	contended  uint64 // TryLock failures; read under mu
	maxEntries int    // per-store bound for this shard

	reports     map[reportKey]reportEntry
	reportOrder []reportKey
	progs       map[progKey]progEntry
	progOrder   []progKey
	pending     map[reportKey]*inflight
	progPending map[progKey]*progInflight

	stats CacheStats
}

// lock acquires the shard mutex, counting the acquisitions that had to wait.
// The TryLock fast path costs one CAS when uncontended; when it fails, the
// blocking Lock below is charged to the contention counter.
func (s *cacheShard) lock() {
	if s.mu.TryLock() {
		return
	}
	s.mu.Lock()
	s.contended++
}

// Cache memoizes decompilation and full analysis Reports across a sweep —
// the unique-contract deduplication behind the paper's 38 MLoC scalability
// claim (Section 6: ~240K unique contracts stand in for millions deployed).
// Reports are content-addressed by keccak-256 of the runtime bytecode plus a
// Config fingerprint; decompiled programs are shared across configs (they
// are read-only after construction). Both stores evict FIFO past a capacity
// bound.
//
// The cache is sharded by bytecode hash: each shard carries its own mutex,
// maps, and counters, so concurrent sweeps on different contracts never
// serialize on one lock (the pre-sharding design did, and the single mutex
// dominated multi-worker sweep profiles). Stats() merges the shards into one
// view; ShardStats() exposes the split. Safe for concurrent use.
//
// Optional tiers extend the cache below the in-memory shards. A DiskTier
// (SetDiskTier) adds a durable, content-addressed store: memory misses probe
// it read-through before computing, and computed results — including
// deterministic negative entries — are written behind asynchronously, so a
// process restart over the same corpus performs zero decompilations and zero
// analyses. A RemoteTier (SetRemoteTier) extends the probe chain across the
// process boundary: a local memory+disk miss asks peer replicas for their
// serialized entry before computing, so a fleet behaves like one warm cache.
type Cache struct {
	shards []cacheShard
	mask   uint64

	// disk is the optional persistent tier; remote the optional peer-fill
	// tier. Both are set once via SetDiskTier/SetRemoteTier before the cache
	// serves requests and read without synchronization afterwards. tiers is
	// the derived probe order — always local disk before remote peers, so a
	// shared or pre-warmed -cache-dir short-circuits network probes.
	disk   *DiskTier
	remote *RemoteTier
	tiers  []Tier
}

// Tier is a persistent or remote store below the in-memory cache shards.
// Tiers are probed in order on a memory miss; a hit from a lower tier is
// back-filled (write-behind) into the tiers above it, and computed results
// are offered to every tier via put. The interface is sealed — its methods
// traffic in the package's internal entry representation — with DiskTier and
// RemoteTier as the two implementations.
type Tier interface {
	// get probes the tier for one memoized outcome. The limits are the
	// caller's normalized decompilation budget; implementations must verify
	// the stored entry's key and limits echo and report a mismatch as a miss.
	get(key reportKey, limits decompiler.Limits) (reportEntry, bool)
	// put offers one immutable, persistable outcome. Implementations may
	// drop it (a remote tier is fill-only); they must not block beyond
	// bounded write-behind backpressure.
	put(key reportKey, limits decompiler.Limits, e reportEntry)
	// Close releases the tier's resources, flushing any write-behind queue.
	Close() error
}

// DefaultCacheEntries bounds each cache store when NewCache is given a
// non-positive capacity — comfortably above the unique-contract count of any
// corpus profile shipped in this repository.
const DefaultCacheEntries = 1 << 16

// DefaultCacheShards is the shard count when NewCacheSharded is given a
// non-positive one: enough to make lock collisions rare at any worker count
// this repository's pools reach, small enough that a Stats() merge is free.
const DefaultCacheShards = 16

// NewCache returns a cache bounded to maxEntries reports (and as many
// decompiled programs) across DefaultCacheShards shards; maxEntries <= 0
// selects DefaultCacheEntries.
func NewCache(maxEntries int) *Cache {
	return NewCacheSharded(maxEntries, 0)
}

// NewCacheSharded returns a cache bounded to maxEntries reports total,
// partitioned over the given shard count. Non-positive values select the
// defaults. The shard count is rounded down to a power of two (for mask
// indexing) and clamped so every shard holds at least one entry — a
// capacity-1 cache degenerates to one shard and keeps exact FIFO semantics.
// The capacity remainder (maxEntries mod shards) is distributed one entry
// per low-numbered shard, so the per-shard bounds always sum to exactly
// maxEntries — integer truncation must never silently shrink the cache.
func NewCacheSharded(maxEntries, shards int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	if shards > maxEntries {
		shards = maxEntries
	}
	// Round down to a power of two so shard selection is a mask, not a mod.
	shards = 1 << (bits.Len(uint(shards)) - 1)
	perShard := maxEntries / shards
	remainder := maxEntries % shards
	c := &Cache{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		per := perShard
		if i < remainder {
			per++
		}
		c.shards[i] = cacheShard{
			maxEntries:  per,
			reports:     map[reportKey]reportEntry{},
			progs:       map[progKey]progEntry{},
			pending:     map[reportKey]*inflight{},
			progPending: map[progKey]*progInflight{},
		}
	}
	return c
}

// SetDiskTier attaches a persistent tier below the in-memory shards. Must be
// called before the cache serves its first request (the field is read
// without synchronization on the hot path); the caller keeps ownership of
// the tier and must Close it — after the cache's last user is done — to
// flush the write-behind queue.
func (c *Cache) SetDiskTier(t *DiskTier) {
	c.disk = t
	c.rebuildTiers()
}

// SetRemoteTier attaches a peer-fill tier below the disk tier (or directly
// below memory when no disk tier is attached). Same discipline as
// SetDiskTier: set before the first request, caller owns and closes it.
func (c *Cache) SetRemoteTier(t *RemoteTier) {
	c.remote = t
	c.rebuildTiers()
}

// rebuildTiers derives the probe order from the attached tiers: local disk
// first (a file read), remote peers last (a network round trip).
func (c *Cache) rebuildTiers() {
	c.tiers = c.tiers[:0]
	if c.disk != nil {
		c.tiers = append(c.tiers, c.disk)
	}
	if c.remote != nil {
		c.tiers = append(c.tiers, c.remote)
	}
}

// Disk returns the attached persistent tier, nil when the cache is
// memory-only.
func (c *Cache) Disk() *DiskTier { return c.disk }

// Remote returns the attached peer-fill tier, nil when none is configured.
func (c *Cache) Remote() *RemoteTier { return c.remote }

// shardFor picks the shard owning a bytecode hash. Keccak output is uniform,
// so any fixed 8 bytes index evenly; the low word is used.
func (c *Cache) shardFor(hash [32]byte) *cacheShard {
	return &c.shards[binary.BigEndian.Uint64(hash[24:])&c.mask]
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// Stats returns a merged snapshot of the per-shard counters plus, when a
// disk tier is attached, its tier-level write/scrub counters.
func (c *Cache) Stats() CacheStats {
	var out CacheStats
	out.Shards = len(c.shards)
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.Evictions += s.stats.Evictions
		out.Entries += len(s.reports)
		out.Contended += s.contended
		out.DiskHits += s.stats.DiskHits
		out.DiskMisses += s.stats.DiskMisses
		out.Analyses += s.stats.Analyses
		out.Decompiles += s.stats.Decompiles
		out.FactsHits += s.stats.FactsHits
		out.FactsMisses += s.stats.FactsMisses
		s.mu.Unlock()
	}
	if c.disk != nil {
		ds := c.disk.Stats()
		out.DiskWrites = ds.Writes
		out.DiskWriteErrors = ds.WriteErrors
		out.DiskScrubbed = ds.Scrubbed
		out.DiskEntries = ds.Entries
		out.DiskBytes = ds.Bytes
		out.DiskEvictions = ds.Evictions
	}
	if c.remote != nil {
		rs := c.remote.Stats()
		out.PeerHits = rs.Hits
		out.PeerMisses = rs.Misses
		out.PeerFillBytes = rs.FillBytes
		out.PeerErrors = rs.Errors
	}
	return out
}

// ShardStats returns one snapshot per shard — the hit/miss split (memory and
// disk) behind the merged Stats() view, for the /statsz observability
// surface and for verifying that sharding actually spread the load. The
// tier-level disk write/scrub counters have no per-shard split and appear
// only in the merged view.
func (c *Cache) ShardStats() []CacheStats {
	out := make([]CacheStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.lock()
		out[i] = s.stats
		out[i].Entries = len(s.reports)
		out[i].Contended = s.contended
		s.mu.Unlock()
	}
	return out
}

// tierHit is one successful probe of the tier chain: the entry plus which
// kind of tier served it, for the shard-level counter split.
type tierHit struct {
	e    reportEntry
	disk bool // served by the local disk tier (else by a remote peer)
}

// tierGet probes the attached tiers in order — local disk, then remote peers
// — and back-fills a hit from a lower tier into every tier above it
// (write-behind), so a peer-filled entry lands in the local disk tier and
// the next restart never re-asks the network. Runs outside any shard lock:
// file and network IO must not serialize a shard, and concurrent probes of
// one key read the same immutable entry, making the back-fill idempotent.
func (c *Cache) tierGet(key reportKey, limits decompiler.Limits) (tierHit, bool) {
	for i, t := range c.tiers {
		e, ok := t.get(key, limits)
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			if persistable(e.err) {
				c.tiers[j].put(key, limits, e)
			}
		}
		return tierHit{e: e, disk: c.disk != nil && i == 0}, true
	}
	return tierHit{}, false
}

// Lookup returns the memoized report (or negatively-cached deterministic
// error) for an already-hashed bytecode under cfg, without computing
// anything. The memory shards are probed first; on a memory miss the tier
// chain (when attached) is probed synchronously on the caller's own
// goroutine — a file read for the disk tier, a bounded-timeout peer probe
// for the remote tier; this is how the sweep scheduler serves warm-disk and
// peer-filled requests without occupying a pool worker — and a tier hit is
// promoted into the memory shard. A memory hit counts Hits, a disk hit
// DiskHits, a peer hit PeerHits (and DiskMisses when a disk tier was probed
// on the way); an entry found nowhere counts nothing — the caller is
// expected to follow up with AnalyzeHashedContext, which records the miss
// when it computes.
func (c *Cache) Lookup(hash [32]byte, cfg Config) (*Report, error, bool) {
	key := reportKey{code: hash, cfg: cfg.Fingerprint()}
	s := c.shardFor(hash)
	s.lock()
	if e, ok := s.reports[key]; ok {
		s.stats.Hits++
		s.mu.Unlock()
		return e.rep, e.err, true
	}
	s.mu.Unlock()
	if len(c.tiers) == 0 {
		return nil, nil, false
	}
	h, ok := c.tierGet(key, cfg.DecompileLimits.Normalized())
	if !ok {
		return nil, nil, false
	}
	s.lock()
	if h.disk {
		s.stats.DiskHits++
	} else if c.disk != nil {
		s.stats.DiskMisses++
	}
	s.storeReport(key, h.e)
	s.mu.Unlock()
	return h.e.rep, h.e.err, true
}

// EntryBytes returns the serialized, checksummed persistent-format entry for
// one (bytecode hash, config fingerprint) — the peer-fill serving path
// behind GET /cache/{hash}/{fp}. Memory-resident outcomes are re-encoded;
// on a memory miss the raw bytes come straight from the disk tier. The
// remote tier is deliberately never probed: a replica serves only what it
// holds locally, so two peers pointed at each other can never proxy-loop a
// miss. Non-persistable outcomes (recovered panics) are never served.
func (c *Cache) EntryBytes(hash [32]byte, fp uint64) ([]byte, bool) {
	key := reportKey{code: hash, cfg: fp}
	s := c.shardFor(hash)
	s.lock()
	e, ok := s.reports[key]
	s.mu.Unlock()
	if ok && persistable(e.err) {
		return encodeEntry(key, e.limits, e), true
	}
	if c.disk != nil {
		if data, ok := c.disk.getRaw(key); ok {
			return data, true
		}
	}
	return nil, false
}

// AnalyzeBytecode is the cached equivalent of the package-level
// AnalyzeBytecode. On a hit the memoized Report is returned directly (shared,
// so callers must treat reports as immutable — everything else in this
// repository already does). Decompile errors — including budget exhaustion,
// which is deterministic for a (bytecode, limits) pair — are cached
// negatively: retrying a hostile bytecode costs one lookup, not seconds of
// re-decompilation.
func (c *Cache) AnalyzeBytecode(code []byte, cfg Config) (*Report, error) {
	return c.AnalyzeBytecodeContext(context.Background(), code, cfg)
}

// AnalyzeBytecodeContext is the cancellable cached analysis. Cancellation
// errors are never memoized: a request that ran out of budget must not
// poison the key for later callers with more patience. When a waiter
// coalesces onto a computation that is itself cancelled, the waiter retries
// the analysis under its own context.
func (c *Cache) AnalyzeBytecodeContext(ctx context.Context, code []byte, cfg Config) (*Report, error) {
	return c.AnalyzeHashedContext(ctx, crypto.Keccak256(code), code, cfg)
}

// AnalyzeHashedContext is AnalyzeBytecodeContext for callers that already
// hold the bytecode's keccak-256 — the sweep scheduler hashes once during
// dedup planning and never pays for it again.
//
// Counting: each call records exactly one Hit (served from memory or from a
// finished in-flight computation) or exactly one Miss (this call probed the
// disk tier and/or computed), regardless of how many times a cancelled
// coalesced computation forces it to retry. A call that returns its own
// ctx.Err() while coalescing records neither — it never consumed a probe or
// a computation.
func (c *Cache) AnalyzeHashedContext(ctx context.Context, hash [32]byte, code []byte, cfg Config) (*Report, error) {
	key := reportKey{code: hash, cfg: cfg.Fingerprint()}
	s := c.shardFor(hash)
	for {
		s.lock()
		if e, ok := s.reports[key]; ok {
			s.stats.Hits++
			s.mu.Unlock()
			return e.rep, e.err
		}
		if fl, ok := s.pending[key]; ok {
			// Another goroutine is computing this key; wait for it. Nothing
			// is counted until the wait resolves — counting here inflated
			// Hits on the cancellation-retry path (a waiter counted a Hit,
			// observed the computation was cancelled, recursed, and counted
			// again).
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if IsCancellation(fl.err) {
				// The computing request was cancelled; its failure says
				// nothing about the bytecode. Redo the work under our own
				// context. Still nothing counted for this logical request.
				continue
			}
			s.lock()
			s.stats.Hits++
			s.mu.Unlock()
			return fl.rep, fl.err
		}
		s.stats.Misses++
		fl := &inflight{done: make(chan struct{})}
		s.pending[key] = fl
		s.mu.Unlock()

		// Read-through: probe the tier chain (disk, then peers) before
		// computing. The probe runs under the singleflight, so concurrent
		// misses on one key cost one probe sequence, and coalesced waiters
		// above never touch the tiers. tierGet back-fills cross-tier hits;
		// only freshly computed outcomes are offered to the disk tier below.
		lim := cfg.DecompileLimits.Normalized()
		fromTier, fromDisk := false, false
		if len(c.tiers) > 0 {
			if h, ok := c.tierGet(key, lim); ok {
				fl.rep, fl.err = h.e.rep, h.e.err
				fromTier, fromDisk = true, h.disk
			}
		}
		if !fromTier {
			fl.rep, fl.err = c.computeReport(ctx, key, code, cfg)
		}

		s.lock()
		if c.disk != nil {
			if fromDisk {
				s.stats.DiskHits++
			} else {
				s.stats.DiskMisses++
			}
		}
		if !IsCancellation(fl.err) {
			s.storeReport(key, reportEntry{rep: fl.rep, err: fl.err, limits: lim})
			if !fromTier && c.disk != nil && persistable(fl.err) {
				// Write-behind: serialize now (the entry is immutable), hand
				// the durable write to the tier's writer goroutine.
				c.disk.put(key, lim, reportEntry{rep: fl.rep, err: fl.err, limits: lim})
			}
		}
		delete(s.pending, key)
		s.mu.Unlock()
		close(fl.done)
		return fl.rep, fl.err
	}
}

// persistable reports whether a memoized outcome may be written to the disk
// tier: successful reports and deterministic failures (budget exhaustion,
// unresolvable bytecode) persist; cancellations are never memoized at all,
// and recovered analyzer panics stay memory-only — they are our defect, not
// a property of the bytecode, and must not outlive the process that carried
// the bug.
func persistable(err error) bool {
	return err == nil || (!IsCancellation(err) && !IsInternal(err))
}

// computeReport runs decompile + analysis under ctx and cfg's budgets. The
// deferred recover converts any residual panic on hostile bytecode into
// ErrInternal so one poisonous input can never take down a serving process —
// the same guarantee the uncached AnalyzeBytecodeContext boundary makes.
//
// The decompile call below yields the shared facts stratum along with the
// program (facts is non-nil whenever err is nil — they are memoized
// together), so only the config-dependent guards + fixpoint tail runs here.
func (c *Cache) computeReport(ctx context.Context, key reportKey, code []byte, cfg Config) (rep *Report, err error) {
	s := c.shardFor(key.code)
	s.lock()
	s.stats.Analyses++
	s.mu.Unlock()
	defer recoverToError(&err)
	f, times, err := c.decompile(ctx, key.code, code, cfg.DecompileLimits)
	if err != nil {
		return nil, err
	}
	rep, err = analyzeOnFacts(ctx, f, times.facts, cfg, false)
	if err != nil {
		return nil, err
	}
	rep.Stats.Timings.setDecompile(times.decompile, times.sub)
	return rep, nil
}

// progTimes carries the stage attribution out of the program singleflight:
// the decompile wall and its sub-breakdown, plus the facts wall. All zero
// for memo hits and singleflight waiters — they did not pay for the work.
type progTimes struct {
	decompile time.Duration
	sub       decompiler.Timings
	facts     time.Duration
}

// decompile returns the (shared, read-only) facts stratum — which carries the
// decompiled program — for the (bytecode, budget) pair, computing and
// memoizing both on first use. In-flight computations are tracked like
// in-flight reports: concurrent misses on the same (hash, limits) — e.g. one
// bytecode analyzed under two configs at once — run the decompiler and the
// facts pipeline exactly once, with the waiters attaching to the
// singleflight. The recorded durations are zero on a memo hit and for
// waiters: they did not pay for the work. Deterministic failures — including
// budget exhaustion — are memoized; cancellations are not, since they reflect
// the caller's deadline rather than the bytecode, and a waiter observing a
// cancelled decompilation retries under its own context.
//
// Facts are computed inside the singleflight under a local recover: a panic
// in the facts pipeline must resolve the inflight entry (waiters would hang
// on done otherwise) before surfacing as an ErrInternal. Such an entry is
// not memoized — a recovered panic is our defect, not a property of the
// bytecode, and must not outlive the request that hit it.
func (c *Cache) decompile(ctx context.Context, hash [32]byte, code []byte, limits decompiler.Limits) (*facts, progTimes, error) {
	key := progKey{code: hash, limits: limits.Normalized()}
	s := c.shardFor(hash)
	for {
		s.lock()
		if e, ok := s.progs[key]; ok {
			if e.err == nil {
				s.stats.FactsHits++
			}
			s.mu.Unlock()
			return e.facts, progTimes{}, e.err
		}
		if fl, ok := s.progPending[key]; ok {
			s.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, progTimes{}, ctx.Err()
			}
			if IsCancellation(fl.err) {
				continue
			}
			if fl.err == nil {
				s.lock()
				s.stats.FactsHits++
				s.mu.Unlock()
			}
			return fl.facts, progTimes{}, fl.err
		}
		fl := &progInflight{done: make(chan struct{})}
		s.progPending[key] = fl
		s.stats.Decompiles++
		s.mu.Unlock()

		var times progTimes
		var factsPanic error
		t0 := time.Now()
		fl.prog, times.sub, fl.err = decompiler.DecompileTimed(ctx, code, limits)
		times.decompile = time.Since(t0)
		if fl.err == nil {
			f0 := time.Now()
			func() {
				defer recoverToError(&factsPanic)
				fl.facts = computeFacts(fl.prog)
			}()
			times.facts = time.Since(f0)
			if factsPanic != nil {
				fl.prog, fl.facts, fl.err = nil, nil, factsPanic
			}
		}

		s.lock()
		if fl.err == nil {
			s.stats.FactsMisses++
		}
		if _, ok := s.progs[key]; !ok && !IsCancellation(fl.err) && factsPanic == nil {
			if len(s.progs) >= s.maxEntries && len(s.progOrder) > 0 {
				delete(s.progs, s.progOrder[0])
				s.progOrder = s.progOrder[1:]
				s.stats.Evictions++
			}
			s.progs[key] = progEntry{prog: fl.prog, facts: fl.facts, err: fl.err}
			s.progOrder = append(s.progOrder, key)
		}
		delete(s.progPending, key)
		s.mu.Unlock()
		close(fl.done)
		return fl.facts, times, fl.err
	}
}

// storeReport inserts under s.mu, evicting the shard's oldest entry past its
// per-shard capacity (the total bound divided over the shards).
func (s *cacheShard) storeReport(key reportKey, e reportEntry) {
	if _, ok := s.reports[key]; ok {
		return
	}
	if len(s.reports) >= s.maxEntries && len(s.reportOrder) > 0 {
		delete(s.reports, s.reportOrder[0])
		s.reportOrder = s.reportOrder[1:]
		s.stats.Evictions++
	}
	s.reports[key] = e
	s.reportOrder = append(s.reportOrder, key)
}
