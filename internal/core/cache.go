package core

import (
	"context"
	"encoding/binary"
	"sync"
	"time"

	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/tac"
)

// Fingerprint returns a stable digest of the configuration. Cache entries
// are partitioned by it: reports computed under different configs never
// alias. Every behavior-affecting Config field must be folded in here —
// including the decompilation budgets, normalized first so the zero value
// and explicit defaults fingerprint identically. Parallelism is deliberately
// NOT folded in: it changes only how the Datalog fixpoint is scheduled,
// never what it derives, so reports computed at different worker counts are
// interchangeable and share cache entries.
func (c Config) Fingerprint() uint64 {
	bits := byte(0)
	if c.ModelGuards {
		bits |= 1 << 0
	}
	if c.ModelStorageTaint {
		bits |= 1 << 1
	}
	if c.ConservativeStorage {
		bits |= 1 << 2
	}
	if c.InferOwnerSinks {
		bits |= 1 << 3
	}
	lim := c.DecompileLimits.Normalized()
	var limBytes [24]byte
	binary.BigEndian.PutUint64(limBytes[0:], uint64(lim.MaxContexts))
	binary.BigEndian.PutUint64(limBytes[8:], uint64(lim.MaxWorklistSteps))
	binary.BigEndian.PutUint64(limBytes[16:], uint64(lim.MaxStatements))
	h := crypto.Keccak256([]byte("ethainter-config-v2"), []byte{bits}, limBytes[:])
	return binary.BigEndian.Uint64(h[:8])
}

// CacheStats are the counters of one Cache.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// reportKey addresses one analysis result: the keccak-256 of the runtime
// bytecode plus the config fingerprint.
type reportKey struct {
	code [32]byte
	cfg  uint64
}

type reportEntry struct {
	rep *Report
	err error
}

// progKey addresses one decompiled program: bytecode hash plus the
// normalized decompilation budget. Programs are shared across analysis
// configs but never across budgets — a bytecode near a limit decompiles
// under one budget and exhausts another.
type progKey struct {
	code   [32]byte
	limits decompiler.Limits
}

type progEntry struct {
	prog *tac.Program
	err  error
}

// inflight tracks one in-progress computation so concurrent lookups of the
// same key wait for it instead of duplicating the work.
type inflight struct {
	done chan struct{}
	rep  *Report
	err  error
}

// Cache memoizes decompilation and full analysis Reports across a sweep —
// the unique-contract deduplication behind the paper's 38 MLoC scalability
// claim (Section 6: ~240K unique contracts stand in for millions deployed).
// Reports are content-addressed by keccak-256 of the runtime bytecode plus a
// Config fingerprint; decompiled programs are shared across configs (they
// are read-only after construction). Both stores evict FIFO past a capacity
// bound. Safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int

	reports     map[reportKey]reportEntry
	reportOrder []reportKey
	progs       map[progKey]progEntry
	progOrder   []progKey
	pending     map[reportKey]*inflight

	stats CacheStats
}

// DefaultCacheEntries bounds each cache store when NewCache is given a
// non-positive capacity — comfortably above the unique-contract count of any
// corpus profile shipped in this repository.
const DefaultCacheEntries = 1 << 16

// NewCache returns a cache bounded to maxEntries reports (and as many
// decompiled programs); maxEntries <= 0 selects DefaultCacheEntries.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{
		maxEntries: maxEntries,
		reports:    map[reportKey]reportEntry{},
		progs:      map[progKey]progEntry{},
		pending:    map[reportKey]*inflight{},
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.reports)
	return s
}

// AnalyzeBytecode is the cached equivalent of the package-level
// AnalyzeBytecode. On a hit the memoized Report is returned directly (shared,
// so callers must treat reports as immutable — everything else in this
// repository already does). Decompile errors — including budget exhaustion,
// which is deterministic for a (bytecode, limits) pair — are cached
// negatively: retrying a hostile bytecode costs one lookup, not seconds of
// re-decompilation.
func (c *Cache) AnalyzeBytecode(code []byte, cfg Config) (*Report, error) {
	return c.AnalyzeBytecodeContext(context.Background(), code, cfg)
}

// AnalyzeBytecodeContext is the cancellable cached analysis. Cancellation
// errors are never memoized: a request that ran out of budget must not
// poison the key for later callers with more patience. When a waiter
// coalesces onto a computation that is itself cancelled, the waiter retries
// the analysis under its own context.
func (c *Cache) AnalyzeBytecodeContext(ctx context.Context, code []byte, cfg Config) (*Report, error) {
	key := reportKey{code: crypto.Keccak256(code), cfg: cfg.Fingerprint()}

	c.mu.Lock()
	if e, ok := c.reports[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return e.rep, e.err
	}
	if fl, ok := c.pending[key]; ok {
		// Another goroutine is computing this key; waiting for it is a hit —
		// the work is not duplicated.
		c.stats.Hits++
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if IsCancellation(fl.err) {
			// The computing request was cancelled; its failure says nothing
			// about the bytecode. Redo the work under our own context.
			return c.AnalyzeBytecodeContext(ctx, code, cfg)
		}
		return fl.rep, fl.err
	}
	c.stats.Misses++
	fl := &inflight{done: make(chan struct{})}
	c.pending[key] = fl
	c.mu.Unlock()

	fl.rep, fl.err = c.computeReport(ctx, key, code, cfg)

	c.mu.Lock()
	if !IsCancellation(fl.err) {
		c.storeReport(key, reportEntry{rep: fl.rep, err: fl.err})
	}
	delete(c.pending, key)
	c.mu.Unlock()
	close(fl.done)
	return fl.rep, fl.err
}

// computeReport runs decompile + analysis under ctx and cfg's budgets. The
// deferred recover converts any residual panic on hostile bytecode into
// ErrInternal so one poisonous input can never take down a serving process —
// the same guarantee the uncached AnalyzeBytecodeContext boundary makes.
func (c *Cache) computeReport(ctx context.Context, key reportKey, code []byte, cfg Config) (rep *Report, err error) {
	defer recoverToError(&err)
	prog, decompileTime, dt, err := c.decompile(ctx, key.code, code, cfg.DecompileLimits)
	if err != nil {
		return nil, err
	}
	rep, err = AnalyzeContext(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	rep.Stats.Timings.setDecompile(decompileTime, dt)
	return rep, nil
}

// decompile returns the (shared, read-only) decompiled program for the
// (bytecode, budget) pair, computing and memoizing it on first use. The
// recorded durations — the stage total and its sub-breakdown — are zero on a
// hit: the sweep did not pay for it again. Deterministic failures — including
// budget exhaustion — are memoized; cancellations are not, since they reflect
// the caller's deadline rather than the bytecode.
func (c *Cache) decompile(ctx context.Context, hash [32]byte, code []byte, limits decompiler.Limits) (*tac.Program, time.Duration, decompiler.Timings, error) {
	key := progKey{code: hash, limits: limits.Normalized()}
	c.mu.Lock()
	if e, ok := c.progs[key]; ok {
		c.mu.Unlock()
		return e.prog, 0, decompiler.Timings{}, e.err
	}
	c.mu.Unlock()

	t0 := time.Now()
	prog, dt, err := decompiler.DecompileTimed(ctx, code, limits)
	elapsed := time.Since(t0)

	c.mu.Lock()
	if _, ok := c.progs[key]; !ok && !IsCancellation(err) {
		if len(c.progs) >= c.maxEntries && len(c.progOrder) > 0 {
			delete(c.progs, c.progOrder[0])
			c.progOrder = c.progOrder[1:]
			c.stats.Evictions++
		}
		c.progs[key] = progEntry{prog: prog, err: err}
		c.progOrder = append(c.progOrder, key)
	}
	c.mu.Unlock()
	return prog, elapsed, dt, err
}

// storeReport inserts under c.mu, evicting the oldest entry past capacity.
func (c *Cache) storeReport(key reportKey, e reportEntry) {
	if _, ok := c.reports[key]; ok {
		return
	}
	if len(c.reports) >= c.maxEntries && len(c.reportOrder) > 0 {
		delete(c.reports, c.reportOrder[0])
		c.reportOrder = c.reportOrder[1:]
		c.stats.Evictions++
	}
	c.reports[key] = e
	c.reportOrder = append(c.reportOrder, key)
}
