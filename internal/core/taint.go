package core

import (
	"context"

	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// Taint kinds, bit-ored: input taint is sanitized by effective guards,
// storage taint is not (Guard-1 vs Guard-2). Sender taint marks values
// derived from msg.sender: the attacker chooses their own address, so such
// values taint storage they are written to ("ownership can be bought"), but
// they do not invalidate a guard that *compares* the sender — that comparison
// is exactly what sanitizes.
const (
	taintIn uint8 = 1 << iota
	taintSt
	taintSender

	// guardBypassTaint is the mask of kinds that invalidate a guard when
	// present on its condition value.
	guardBypassTaint = taintIn | taintSt
)

// analysis is the mutable fixpoint state implementing the Figure 5 mutual
// recursion between TaintedFlow, AttackerModelInfoflow and
// ReachableByAttacker.
type analysis struct {
	cfg Config
	f   *facts
	g   *guardInfo
	// ctx bounds the fixpoint: both drivers poll it between passes, so a
	// request deadline or client disconnect aborts the analysis at the next
	// pass boundary instead of running to convergence.
	ctx context.Context

	// stmts is every statement in program order — the iteration order of both
	// fixpoint drivers, so first-derivation witnesses agree bit-for-bit.
	stmts []*tac.Stmt
	// deps, when non-nil, receives change notifications and drives the
	// worklist fixpoint; the reference fixpoint leaves it nil.
	deps *depGraph

	varTaint map[tac.VarID]uint8
	// slotTainted marks constant storage slots holding attacker-influenced
	// values (↓T S(v)).
	slotTainted map[u256.U256]bool
	// elemValueTainted marks mapping families into which an attacker-
	// reachable store put a tainted value.
	elemValueTainted map[u256.U256]bool
	// elemWritable marks mapping families whose membership the attacker
	// controls: an attacker-reachable store whose key is the sender or
	// tainted. Guards looking permissions up in such a family are bypassable
	// — the mechanism behind the paper's Section 2 composite escalation.
	elemWritable map[u256.U256]bool
	// allTainted is rule StorageWrite-2 (or conservative mode): every slot
	// and family is considered attacker-influenced.
	allTainted bool
	// bypassed marks guard conditions the attacker can satisfy.
	bypassed map[tac.VarID]bool

	// Witnesses: the first-derivation escalation chain per fact.
	witVar   map[tac.VarID][]Step
	witSlot  map[u256.U256][]Step
	witElemW map[u256.U256][]Step
	witElemV map[u256.U256][]Step
	witByp   map[tac.VarID][]Step
	witAll   []Step

	passes int
}

func newAnalysis(cfg Config, f *facts, g *guardInfo) *analysis {
	a := &analysis{
		cfg: cfg, f: f, g: g,
		ctx:              context.Background(),
		varTaint:         map[tac.VarID]uint8{},
		slotTainted:      map[u256.U256]bool{},
		elemValueTainted: map[u256.U256]bool{},
		elemWritable:     map[u256.U256]bool{},
		bypassed:         map[tac.VarID]bool{},
		witVar:           map[tac.VarID][]Step{},
		witSlot:          map[u256.U256][]Step{},
		witElemW:         map[u256.U256][]Step{},
		witElemV:         map[u256.U256][]Step{},
		witByp:           map[tac.VarID][]Step{},
	}
	f.prog.AllStmts(func(s *tac.Stmt) { a.stmts = append(a.stmts, s) })
	return a
}

// reachable implements ReachableByAttacker at block granularity: every
// effective guard on the block must be bypassed. (Blocks are all behind the
// public dispatcher; non-sender guards do not restrict the attacker.)
func (a *analysis) reachable(b *tac.Block) bool {
	for _, g := range a.g.guardsOf[b] {
		if a.g.effective[g] && !a.bypassed[g] {
			return false
		}
	}
	return true
}

// reachWitness collects the escalation steps that made the block reachable.
func (a *analysis) reachWitness(b *tac.Block) []Step {
	var out []Step
	for _, g := range a.g.guardsOf[b] {
		if a.g.effective[g] {
			out = appendSteps(out, a.witByp[g])
		}
	}
	return out
}

// appendSteps concatenates witness chains, dropping immediate duplicates and
// capping length.
func appendSteps(dst []Step, src []Step) []Step {
	for _, s := range src {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup && len(dst) < 12 {
			dst = append(dst, s)
		}
	}
	return dst
}

// --- fact mutators: every derivation flows through one of these, so the
// --- worklist learns about exactly the facts that changed.

func (a *analysis) taintVar(v tac.VarID, kind uint8, wit []Step) bool {
	if a.varTaint[v]&kind == kind {
		return false
	}
	if _, has := a.witVar[v]; !has {
		a.witVar[v] = wit
	}
	a.varTaint[v] |= kind
	if a.deps != nil {
		a.deps.varChanged(v)
	}
	return true
}

func (a *analysis) setSlotTainted(slot u256.U256, wit []Step) {
	a.slotTainted[slot] = true
	a.witSlot[slot] = wit
	if a.deps != nil {
		a.deps.slotChanged(slot)
	}
}

func (a *analysis) setElemValueTainted(slot u256.U256, wit []Step) {
	a.elemValueTainted[slot] = true
	a.witElemV[slot] = wit
	if a.deps != nil {
		a.deps.elemValChanged(slot)
	}
}

func (a *analysis) setElemWritable(slot u256.U256, wit []Step) {
	// Only the guard sweep reads elemWritable, and it runs in full every
	// round, so no statements need re-marking.
	a.elemWritable[slot] = true
	a.witElemW[slot] = wit
}

func (a *analysis) setAllTainted(wit []Step) {
	a.allTainted = true
	a.witAll = wit
	if a.deps != nil {
		a.deps.allChanged()
	}
}

func (a *analysis) setBypassed(cond tac.VarID, wit []Step) {
	a.bypassed[cond] = true
	a.witByp[cond] = wit
	if a.deps != nil {
		a.deps.bypassChanged(cond)
	}
}

// run executes the worklist fixpoint: rounds in statement program order, but
// re-evaluating only statements whose inputs (a tainted variable, slot,
// mapping family, or the reachability of their block) changed since their
// last evaluation. Derivations per round — and therefore first-derivation
// witnesses and the round count — match the reference global re-pass
// fixpoint bit-for-bit, because a statement with unchanged inputs cannot
// derive anything new (every rule is a monotone function of its read set).
func (a *analysis) run() error {
	a.deps = buildDeps(a)
	d := a.deps
	for i := range d.dirty {
		d.dirty[i] = true
	}
	for {
		if err := a.ctx.Err(); err != nil {
			return err
		}
		a.passes++
		changed := false
		for i, s := range a.stmts {
			if !d.dirty[i] {
				continue
			}
			d.dirty[i] = false
			if a.stepStmt(s) {
				changed = true
			}
		}
		if a.stepGuards() {
			changed = true
		}
		if !changed {
			return nil
		}
	}
}

// runReference executes the pre-worklist fixpoint: every pass re-evaluates
// every statement. Kept as the differential-testing oracle for run.
func (a *analysis) runReference() error {
	for {
		if err := a.ctx.Err(); err != nil {
			return err
		}
		a.passes++
		changed := false
		for _, s := range a.stmts {
			if a.stepStmt(s) {
				changed = true
			}
		}
		if a.stepGuards() {
			changed = true
		}
		if !changed {
			return nil
		}
	}
}

// stepStmt applies the introduction, propagation, and storage rules of one
// statement, returning whether any fact changed.
func (a *analysis) stepStmt(s *tac.Stmt) bool {
	changed := false
	mark := func(ok bool) {
		if ok {
			changed = true
		}
	}
	f := a.f
	switch s.Op {
	case tac.Calldataload, tac.Callvalue:
		// TaintedFlow seeds: attacker-supplied data in attacker-reachable
		// code.
		if a.reachable(s.Block) {
			mark(a.taintVar(s.Def, taintIn, a.reachWitness(s.Block)))
		}
	case tac.Caller:
		if a.reachable(s.Block) {
			mark(a.taintVar(s.Def, taintSender, a.reachWitness(s.Block)))
		}
	case tac.Mload:
		if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() {
			for _, st := range f.memSources(s, off.Uint64()) {
				if k := a.varTaint[st.Args[1]]; k != 0 {
					mark(a.taintVar(s.Def, k, a.witVar[st.Args[1]]))
				}
			}
		} else {
			// Unknown offset: reads any tainted memory word.
			for _, st := range f.memUnknown {
				if k := a.varTaint[st.Args[1]]; k != 0 {
					mark(a.taintVar(s.Def, k, a.witVar[st.Args[1]]))
				}
			}
		}
	case tac.Sha3:
		// Taint of hashed memory words propagates to the hash (address
		// taint for StorageWrite-2-style reasoning).
		if words, ok := f.hashWordStores(s); ok {
			for _, stores := range words {
				for _, st := range stores {
					if k := a.varTaint[st.Args[1]]; k != 0 {
						mark(a.taintVar(s.Def, k, a.witVar[st.Args[1]]))
					}
				}
			}
		}
	case tac.Sload:
		cls := f.addrClass[s]
		switch cls.kind {
		case addrConst:
			if a.slotTainted[cls.slot] {
				mark(a.taintVar(s.Def, taintSt, a.witSlot[cls.slot]))
			}
		case addrElem:
			if a.elemValueTainted[cls.slot] {
				mark(a.taintVar(s.Def, taintSt, a.witElemV[cls.slot]))
			}
		case addrUnknown:
			if a.cfg.ConservativeStorage && a.anySlotTainted() {
				mark(a.taintVar(s.Def, taintSt, a.witAll))
			}
		}
		if a.allTainted {
			mark(a.taintVar(s.Def, taintSt, a.witAll))
		}
	case tac.Sstore:
		if !a.cfg.ModelStorageTaint {
			return false
		}
		if !a.reachable(s.Block) {
			return false
		}
		valTaint := a.varTaint[s.Args[1]]
		keyTaint := a.varTaint[s.Args[0]]
		reachWit := a.reachWitness(s.Block)
		step, hasStep := f.stepFor(s.Block)
		withStep := func(wit []Step) []Step {
			out := appendSteps([]Step{}, reachWit)
			out = appendSteps(out, wit)
			if hasStep {
				out = appendSteps(out, []Step{step})
			}
			return out
		}
		cls := f.addrClass[s]
		switch cls.kind {
		case addrConst:
			if valTaint != 0 && !a.slotTainted[cls.slot] {
				a.setSlotTainted(cls.slot, withStep(a.witVar[s.Args[1]]))
				mark(true)
			}
		case addrElem:
			if valTaint != 0 && !a.elemValueTainted[cls.slot] {
				a.setElemValueTainted(cls.slot, withStep(a.witVar[s.Args[1]]))
				mark(true)
			}
			// Membership control: the attacker chooses which element is
			// written — their own entry (sender key) or any entry
			// (tainted key).
			keyControlled := false
			var keyWit []Step
			for _, k := range cls.keys {
				if f.senderDerived.get(k) {
					keyControlled = true
				}
				if a.varTaint[k] != 0 {
					keyControlled = true
					keyWit = a.witVar[k]
				}
			}
			if keyControlled && !a.elemWritable[cls.slot] {
				a.setElemWritable(cls.slot, withStep(keyWit))
				mark(true)
			}
		case addrUnknown:
			// StorageWrite-2: tainted value at a tainted address taints
			// everything statically known. Conservative mode does so for
			// any tainted value at an unknown address.
			if valTaint != 0 && (keyTaint != 0 || a.cfg.ConservativeStorage) && !a.allTainted {
				a.setAllTainted(withStep(a.witVar[s.Args[1]]))
				mark(true)
			}
		}
	default:
		if s.Op.IsArith() && s.Def != tac.NoVar {
			for _, arg := range s.Args {
				if k := a.varTaint[arg]; k != 0 && a.varTaint[s.Def]&k != k {
					mark(a.taintVar(s.Def, k, a.witVar[arg]))
				}
			}
		}
	}
	return changed
}

// stepGuards applies the guard-bypass rules (Uguard-T generalized): a guard
// falls when its condition value is tainted, or when its storage sources are
// attacker-writable. The sweep is over guard conditions — a small set — so
// both fixpoints run it in full every round.
func (a *analysis) stepGuards() bool {
	changed := false
	for cond, eff := range a.g.effective {
		if !eff || a.bypassed[cond] {
			continue
		}
		if a.varTaint[cond]&guardBypassTaint != 0 {
			a.setBypassed(cond, a.witVar[cond])
			changed = true
			continue
		}
		for _, src := range a.g.sources[cond] {
			bypass := false
			var wit []Step
			switch src.class.kind {
			case addrConst:
				if a.slotTainted[src.class.slot] {
					bypass, wit = true, a.witSlot[src.class.slot]
				}
			case addrElem:
				if a.elemWritable[src.class.slot] {
					bypass, wit = true, a.witElemW[src.class.slot]
				}
				if a.elemValueTainted[src.class.slot] {
					bypass, wit = true, a.witElemV[src.class.slot]
				}
			case addrUnknown:
				// Conservative mode: an unresolved guard source may read any
				// tainted location (Figure 8c's precision loss).
				if a.cfg.ConservativeStorage && a.anySlotTainted() {
					bypass, wit = true, a.witAll
				}
			}
			if a.allTainted {
				bypass, wit = true, a.witAll
			}
			if bypass {
				a.setBypassed(cond, wit)
				changed = true
				break
			}
		}
	}
	return changed
}

func (a *analysis) anySlotTainted() bool {
	return a.allTainted || len(a.slotTainted) > 0 || len(a.elemValueTainted) > 0
}
