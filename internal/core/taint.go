package core

import (
	"context"
	"sync"

	"ethainter/internal/tac"
)

// Taint kinds, bit-ored: input taint is sanitized by effective guards,
// storage taint is not (Guard-1 vs Guard-2). Sender taint marks values
// derived from msg.sender: the attacker chooses their own address, so such
// values taint storage they are written to ("ownership can be bought"), but
// they do not invalidate a guard that *compares* the sender — that comparison
// is exactly what sanitizes.
const (
	taintIn uint8 = 1 << iota
	taintSt
	taintSender

	// guardBypassTaint is the mask of kinds that invalidate a guard when
	// present on its condition value.
	guardBypassTaint = taintIn | taintSt
)

// analysis is the mutable fixpoint state implementing the Figure 5 mutual
// recursion between TaintedFlow, AttackerModelInfoflow and
// ReachableByAttacker.
//
// All state is dense: variable-keyed relations index by VarID, storage-keyed
// relations by the facts' interned slot id. The whole object — including the
// witness tables and the depGraph it drags along — is pooled: newAnalysis
// draws from a sync.Pool and release() returns it once the report is built.
type analysis struct {
	cfg Config
	f   *facts
	g   *guardInfo
	// ctx bounds the fixpoint: both drivers poll it between passes, so a
	// request deadline or client disconnect aborts the analysis at the next
	// pass boundary instead of running to convergence.
	ctx context.Context

	// stmts is every statement in program order (shared with facts) — the
	// iteration order of both fixpoint drivers, so first-derivation witnesses
	// agree bit-for-bit.
	stmts []*tac.Stmt
	// deps, when non-nil, receives change notifications and drives the
	// worklist fixpoint; the reference fixpoint leaves it nil. pooledDeps
	// keeps the depGraph arenas across runs either way.
	deps       *depGraph
	pooledDeps *depGraph

	// varTaint[v] is the taint-kind mask of variable v; taintedVarCount
	// counts variables with a nonzero mask (Stats.TaintedVars).
	varTaint        []uint8
	taintedVarCount int
	// slotTainted marks (by slot id) constant storage slots holding
	// attacker-influenced values (↓T S(v)).
	slotTainted      []bool
	slotTaintedCount int
	// elemValueTainted marks mapping families into which an attacker-
	// reachable store put a tainted value.
	elemValueTainted []bool
	elemValueCount   int
	// elemWritable marks mapping families whose membership the attacker
	// controls: an attacker-reachable store whose key is the sender or
	// tainted. Guards looking permissions up in such a family are bypassable
	// — the mechanism behind the paper's Section 2 composite escalation.
	elemWritable []bool
	// allTainted is rule StorageWrite-2 (or conservative mode): every slot
	// and family is considered attacker-influenced.
	allTainted bool
	// bypassed marks (by VarID) guard conditions the attacker can satisfy.
	bypassed      []bool
	bypassedCount int

	// Witnesses: the first-derivation escalation chain per fact. witVar[v] is
	// meaningful iff varTaint[v] != 0 (set exactly on the 0 → nonzero edge),
	// witByp[c] iff bypassed[c]; the slot tables parallel their bool tables.
	witVar   [][]Step
	witSlot  [][]Step
	witElemW [][]Step
	witElemV [][]Step
	witByp   [][]Step
	witAll   []Step

	passes int
}

var analysisPool = sync.Pool{New: func() any { return new(analysis) }}

// grownU8 / grownBools / grownSteps recycle a pooled backing array: reslice
// when capacity suffices (clearing the live region), reallocate otherwise.
func grownU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func grownBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func grownSteps(buf [][]Step, n int) [][]Step {
	if cap(buf) < n {
		return make([][]Step, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func grownI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func newAnalysis(cfg Config, f *facts, g *guardInfo) *analysis {
	a := analysisPool.Get().(*analysis)
	nv := indexedVars(f.prog)
	ns := f.numSlots()
	*a = analysis{
		cfg: cfg, f: f, g: g,
		ctx:              context.Background(),
		stmts:            f.stmts,
		pooledDeps:       a.pooledDeps,
		varTaint:         grownU8(a.varTaint, nv),
		slotTainted:      grownBools(a.slotTainted, ns),
		elemValueTainted: grownBools(a.elemValueTainted, ns),
		elemWritable:     grownBools(a.elemWritable, ns),
		bypassed:         grownBools(a.bypassed, nv),
		witVar:           grownSteps(a.witVar, nv),
		witSlot:          grownSteps(a.witSlot, ns),
		witElemW:         grownSteps(a.witElemW, ns),
		witElemV:         grownSteps(a.witElemV, ns),
		witByp:           grownSteps(a.witByp, nv),
	}
	return a
}

// release returns the analysis (and its depGraph arenas) to the pool. The
// report never aliases pooled memory: every witness chain it keeps was copied
// through appendSteps into fresh slices.
func (a *analysis) release() {
	d := a.pooledDeps
	if d != nil {
		d.releaseRefs()
	}
	a.f, a.g, a.stmts, a.deps = nil, nil, nil, nil
	a.ctx = nil
	a.witAll = nil
	analysisPool.Put(a)
}

// taintOf is the bounds-checked taint-mask read (args can be NoVar).
func (a *analysis) taintOf(v tac.VarID) uint8 {
	if v < 0 || int(v) >= len(a.varTaint) {
		return 0
	}
	return a.varTaint[v]
}

// witVarOf is the bounds-checked witness read; meaningful when taintOf != 0.
func (a *analysis) witVarOf(v tac.VarID) []Step {
	if v < 0 || int(v) >= len(a.witVar) {
		return nil
	}
	return a.witVar[v]
}

// isBypassed is the bounds-checked bypass read.
func (a *analysis) isBypassed(v tac.VarID) bool {
	return v >= 0 && int(v) < len(a.bypassed) && a.bypassed[v]
}

// reachable implements ReachableByAttacker at block granularity: every
// effective guard on the block must be bypassed. (Blocks are all behind the
// public dispatcher; non-sender guards do not restrict the attacker.)
func (a *analysis) reachable(b *tac.Block) bool {
	if b.ID < 0 || b.ID >= len(a.g.guardsOf) {
		return true
	}
	for _, gv := range a.g.guardsOf[b.ID] {
		if a.g.effective.get(gv) && !a.isBypassed(gv) {
			return false
		}
	}
	return true
}

// reachWitness collects the escalation steps that made the block reachable.
func (a *analysis) reachWitness(b *tac.Block) []Step {
	var out []Step
	if b.ID < 0 || b.ID >= len(a.g.guardsOf) {
		return out
	}
	for _, gv := range a.g.guardsOf[b.ID] {
		if a.g.effective.get(gv) {
			out = appendSteps(out, a.witByp[gv])
		}
	}
	return out
}

// appendSteps concatenates witness chains, dropping immediate duplicates and
// capping length.
func appendSteps(dst []Step, src []Step) []Step {
	for _, s := range src {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup && len(dst) < 12 {
			dst = append(dst, s)
		}
	}
	return dst
}

// --- fact mutators: every derivation flows through one of these, so the
// --- worklist learns about exactly the facts that changed.

func (a *analysis) taintVar(v tac.VarID, kind uint8, wit []Step) bool {
	if v < 0 || int(v) >= len(a.varTaint) {
		return false
	}
	cur := a.varTaint[v]
	if cur&kind == kind {
		return false
	}
	if cur == 0 {
		a.witVar[v] = wit
		a.taintedVarCount++
	}
	a.varTaint[v] = cur | kind
	if a.deps != nil {
		a.deps.varChanged(v)
	}
	return true
}

func (a *analysis) setSlotTainted(sid int32, wit []Step) {
	if !a.slotTainted[sid] {
		a.slotTaintedCount++
	}
	a.slotTainted[sid] = true
	a.witSlot[sid] = wit
	if a.deps != nil {
		a.deps.slotChanged(sid)
	}
}

func (a *analysis) setElemValueTainted(sid int32, wit []Step) {
	if !a.elemValueTainted[sid] {
		a.elemValueCount++
	}
	a.elemValueTainted[sid] = true
	a.witElemV[sid] = wit
	if a.deps != nil {
		a.deps.elemValChanged(sid)
	}
}

func (a *analysis) setElemWritable(sid int32, wit []Step) {
	// Only the guard sweep reads elemWritable, and it runs in full every
	// round, so no statements need re-marking.
	a.elemWritable[sid] = true
	a.witElemW[sid] = wit
}

func (a *analysis) setAllTainted(wit []Step) {
	a.allTainted = true
	a.witAll = wit
	if a.deps != nil {
		a.deps.allChanged()
	}
}

func (a *analysis) setBypassed(cond tac.VarID, wit []Step) {
	if cond < 0 || int(cond) >= len(a.bypassed) {
		return
	}
	if !a.bypassed[cond] {
		a.bypassedCount++
	}
	a.bypassed[cond] = true
	a.witByp[cond] = wit
	if a.deps != nil {
		a.deps.bypassChanged(cond)
	}
}

// run executes the worklist fixpoint: rounds in statement program order, but
// re-evaluating only statements whose inputs (a tainted variable, slot,
// mapping family, or the reachability of their block) changed since their
// last evaluation. Derivations per round — and therefore first-derivation
// witnesses and the round count — match the reference global re-pass
// fixpoint bit-for-bit, because a statement with unchanged inputs cannot
// derive anything new (every rule is a monotone function of its read set).
//
// Pending statements live in an order-preserving dirty queue (a min-heap of
// statement indices plus a next-round list) instead of a dirty[] bool array
// scanned in full every round, so a round costs O(dirty·log dirty) rather
// than O(stmts). The queue replicates the array-scan semantics exactly: a
// statement marked at index j while the round is at index cur joins the
// current round iff j > cur (the scan had not passed it yet), otherwise the
// next round; guard-sweep marks always join the next round.
func (a *analysis) run() error {
	a.deps = buildDeps(a)
	d := a.deps
	n := len(a.stmts)
	// Round 1 evaluates everything, ascending: a sorted array is a min-heap.
	d.heap = d.heap[:0]
	for i := 0; i < n; i++ {
		d.heap = append(d.heap, int32(i))
		d.inQueue[i] = true
	}
	for {
		if err := a.ctx.Err(); err != nil {
			return err
		}
		a.passes++
		changed := false
		for len(d.heap) > 0 {
			i := d.heapPop()
			d.cur = i
			d.inQueue[i] = false
			if a.stepStmt(a.stmts[i]) {
				changed = true
			}
		}
		d.cur = curSentinel // marks from the guard sweep go to the next round
		if a.stepGuards() {
			changed = true
		}
		if !changed {
			return nil
		}
		for _, i := range d.next {
			d.heapPush(i)
		}
		d.next = d.next[:0]
	}
}

// runReference executes the pre-worklist fixpoint: every pass re-evaluates
// every statement. Kept as the differential-testing oracle for run.
func (a *analysis) runReference() error {
	for {
		if err := a.ctx.Err(); err != nil {
			return err
		}
		a.passes++
		changed := false
		for _, s := range a.stmts {
			if a.stepStmt(s) {
				changed = true
			}
		}
		if a.stepGuards() {
			changed = true
		}
		if !changed {
			return nil
		}
	}
}

// stepStmt applies the introduction, propagation, and storage rules of one
// statement, returning whether any fact changed.
func (a *analysis) stepStmt(s *tac.Stmt) bool {
	changed := false
	mark := func(ok bool) {
		if ok {
			changed = true
		}
	}
	f := a.f
	switch s.Op {
	case tac.Calldataload, tac.Callvalue:
		// TaintedFlow seeds: attacker-supplied data in attacker-reachable
		// code.
		if a.reachable(s.Block) {
			mark(a.taintVar(s.Def, taintIn, a.reachWitness(s.Block)))
		}
	case tac.Caller:
		if a.reachable(s.Block) {
			mark(a.taintVar(s.Def, taintSender, a.reachWitness(s.Block)))
		}
	case tac.Mload:
		if srcs, ok := f.memSrcAt(s); ok {
			for _, st := range srcs {
				if k := a.taintOf(st.Args[1]); k != 0 {
					mark(a.taintVar(s.Def, k, a.witVarOf(st.Args[1])))
				}
			}
		} else {
			// Unknown offset: reads any tainted memory word.
			for _, st := range f.memUnknown {
				if k := a.taintOf(st.Args[1]); k != 0 {
					mark(a.taintVar(s.Def, k, a.witVarOf(st.Args[1])))
				}
			}
		}
	case tac.Sha3:
		// Taint of hashed memory words propagates to the hash (address
		// taint for StorageWrite-2-style reasoning).
		if words, ok := f.hashWordsAt(s); ok {
			for _, stores := range words {
				for _, st := range stores {
					if k := a.taintOf(st.Args[1]); k != 0 {
						mark(a.taintVar(s.Def, k, a.witVarOf(st.Args[1])))
					}
				}
			}
		}
	case tac.Sload:
		cls := f.addrClassAt(s)
		switch cls.kind {
		case addrConst:
			if a.slotTainted[cls.sid] {
				mark(a.taintVar(s.Def, taintSt, a.witSlot[cls.sid]))
			}
		case addrElem:
			if a.elemValueTainted[cls.sid] {
				mark(a.taintVar(s.Def, taintSt, a.witElemV[cls.sid]))
			}
		case addrUnknown:
			if a.cfg.ConservativeStorage && a.anySlotTainted() {
				mark(a.taintVar(s.Def, taintSt, a.witAll))
			}
		}
		if a.allTainted {
			mark(a.taintVar(s.Def, taintSt, a.witAll))
		}
	case tac.Sstore:
		if !a.cfg.ModelStorageTaint {
			return false
		}
		if !a.reachable(s.Block) {
			return false
		}
		valTaint := a.taintOf(s.Args[1])
		keyTaint := a.taintOf(s.Args[0])
		reachWit := a.reachWitness(s.Block)
		step, hasStep := f.stepFor(s.Block)
		withStep := func(wit []Step) []Step {
			out := appendSteps([]Step{}, reachWit)
			out = appendSteps(out, wit)
			if hasStep {
				out = appendSteps(out, []Step{step})
			}
			return out
		}
		cls := f.addrClassAt(s)
		switch cls.kind {
		case addrConst:
			if valTaint != 0 && !a.slotTainted[cls.sid] {
				a.setSlotTainted(cls.sid, withStep(a.witVarOf(s.Args[1])))
				mark(true)
			}
		case addrElem:
			if valTaint != 0 && !a.elemValueTainted[cls.sid] {
				a.setElemValueTainted(cls.sid, withStep(a.witVarOf(s.Args[1])))
				mark(true)
			}
			// Membership control: the attacker chooses which element is
			// written — their own entry (sender key) or any entry
			// (tainted key).
			keyControlled := false
			var keyWit []Step
			for _, k := range cls.keys {
				if f.senderDerived.get(k) {
					keyControlled = true
				}
				if a.taintOf(k) != 0 {
					keyControlled = true
					keyWit = a.witVarOf(k)
				}
			}
			if keyControlled && !a.elemWritable[cls.sid] {
				a.setElemWritable(cls.sid, withStep(keyWit))
				mark(true)
			}
		case addrUnknown:
			// StorageWrite-2: tainted value at a tainted address taints
			// everything statically known. Conservative mode does so for
			// any tainted value at an unknown address.
			if valTaint != 0 && (keyTaint != 0 || a.cfg.ConservativeStorage) && !a.allTainted {
				a.setAllTainted(withStep(a.witVarOf(s.Args[1])))
				mark(true)
			}
		}
	default:
		if s.Op.IsArith() && s.Def != tac.NoVar {
			for _, arg := range s.Args {
				if k := a.taintOf(arg); k != 0 && a.taintOf(s.Def)&k != k {
					mark(a.taintVar(s.Def, k, a.witVarOf(arg)))
				}
			}
		}
	}
	return changed
}

// stepGuards applies the guard-bypass rules (Uguard-T generalized): a guard
// falls when its condition value is tainted, or when its storage sources are
// attacker-writable. The sweep is over guard conditions — a small set — so
// both fixpoints run it in full every round. Each condition's decision reads
// only pre-sweep fixpoint state, so the (sorted) iteration order cannot
// change the outcome.
func (a *analysis) stepGuards() bool {
	changed := false
	for ci, cond := range a.g.conds {
		if !a.g.effective.get(cond) || a.isBypassed(cond) {
			continue
		}
		if a.taintOf(cond)&guardBypassTaint != 0 {
			a.setBypassed(cond, a.witVarOf(cond))
			changed = true
			continue
		}
		for _, src := range a.g.condSources(ci) {
			bypass := false
			var wit []Step
			switch src.class.kind {
			case addrConst:
				if a.slotTainted[src.class.sid] {
					bypass, wit = true, a.witSlot[src.class.sid]
				}
			case addrElem:
				if a.elemWritable[src.class.sid] {
					bypass, wit = true, a.witElemW[src.class.sid]
				}
				if a.elemValueTainted[src.class.sid] {
					bypass, wit = true, a.witElemV[src.class.sid]
				}
			case addrUnknown:
				// Conservative mode: an unresolved guard source may read any
				// tainted location (Figure 8c's precision loss).
				if a.cfg.ConservativeStorage && a.anySlotTainted() {
					bypass, wit = true, a.witAll
				}
			}
			if a.allTainted {
				bypass, wit = true, a.witAll
			}
			if bypass {
				a.setBypassed(cond, wit)
				changed = true
				break
			}
		}
	}
	return changed
}

func (a *analysis) anySlotTainted() bool {
	return a.allTainted || a.slotTaintedCount > 0 || a.elemValueCount > 0
}
