package core
