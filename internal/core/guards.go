package core

import (
	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// guardInfo describes the guards of the program: which condition variables
// dominate which blocks (StaticallyGuardedStatement), which conditions
// scrutinize the sender (the under-approximate effectiveness test built on
// DS/DSA), what storage each guard condition reads, and which constant slots
// behave as owner variables (Section 4.5).
type guardInfo struct {
	// guardsOf lists the condition variables guarding each block.
	guardsOf map[*tac.Block][]tac.VarID
	// effective marks sender-scrutinizing conditions.
	effective map[tac.VarID]bool
	// sources lists the storage reads in each guard condition's def cone.
	sources map[tac.VarID][]guardSource
	// ownerSlots are constant slots whose loaded value is compared against
	// the sender in some guard — the inferred sinks of Section 4.5.
	ownerSlots map[u256.U256]bool
}

// guardSource is one storage read feeding a guard condition.
type guardSource struct {
	class addrClass
}

func computeGuards(f *facts, cfg Config) *guardInfo {
	g := &guardInfo{
		guardsOf:   map[*tac.Block][]tac.VarID{},
		effective:  map[tac.VarID]bool{},
		sources:    map[tac.VarID][]guardSource{},
		ownerSlots: map[u256.U256]bool{},
	}
	// guardEntry: blocks with a unique predecessor ending in JUMPI are
	// guarded by that branch's condition from their entry onward.
	guardEntry := map[*tac.Block][]tac.VarID{}
	conds := map[tac.VarID]bool{}
	for _, b := range f.prog.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != tac.Jumpi {
			continue
		}
		cond := term.Args[1]
		conds[cond] = true
		for _, succ := range b.Succs {
			if len(succ.Preds) == 1 {
				guardEntry[succ] = append(guardEntry[succ], cond)
			}
		}
	}
	// guardsOf(x) = union of guardEntry over x's dominators.
	for _, b := range f.prog.Blocks {
		var acc []tac.VarID
		f.dom.Walk(b, func(d *tac.Block) bool {
			acc = append(acc, guardEntry[d]...)
			return true
		})
		if len(acc) > 0 {
			g.guardsOf[b] = acc
		}
	}
	// Effectiveness and storage sources per condition.
	for cond := range conds {
		g.effective[cond] = cfg.ModelGuards && f.senderDerived.get(cond)
		g.sources[cond] = storageSources(f, cond)
	}
	if cfg.InferOwnerSinks {
		g.computeOwnerSlots(f, conds)
	}
	return g
}

// storageSources walks the condition's definition cone (through value ops,
// phis, and constant-offset memory cells) collecting storage reads.
func storageSources(f *facts, root tac.VarID) []guardSource {
	var out []guardSource
	seen := map[tac.VarID]bool{}
	var walk func(v tac.VarID)
	walk = func(v tac.VarID) {
		if seen[v] {
			return
		}
		seen[v] = true
		def := f.prog.DefSite(v)
		if def == nil {
			return
		}
		switch {
		case def.Op == tac.Sload:
			out = append(out, guardSource{class: f.addrClass[def]})
		case def.Op == tac.Mload:
			if off, ok := f.constOf.get(def.Args[0]); ok && off.IsUint64() {
				for _, st := range f.memSources(def, off.Uint64()) {
					walk(st.Args[1])
				}
			}
		case def.Op.IsArith():
			for _, a := range def.Args {
				walk(a)
			}
		}
	}
	walk(root)
	return out
}

// computeOwnerSlots finds constant storage slots z with a guard of the shape
// sender == z (through ISZERO chains): per Section 4.5, "a variable that
// determines a potentially-sanitizing guard is by itself a sink".
func (g *guardInfo) computeOwnerSlots(f *facts, conds map[tac.VarID]bool) {
	for cond := range conds {
		base := peelIszero(f, cond)
		def := f.prog.DefSite(base)
		if def == nil || def.Op != tac.Eq {
			continue
		}
		for _, pair := range [][2]tac.VarID{{def.Args[0], def.Args[1]}, {def.Args[1], def.Args[0]}} {
			if !f.senderDerived.get(pair[0]) {
				continue
			}
			// The other side must be loaded from a constant slot.
			for _, src := range storageSources(f, pair[1]) {
				if src.class.kind == addrConst {
					g.ownerSlots[src.class.slot] = true
				}
			}
		}
	}
}

// peelIszero follows ISZERO chains to the underlying comparison.
func peelIszero(f *facts, v tac.VarID) tac.VarID {
	for i := 0; i < 8; i++ {
		def := f.prog.DefSite(v)
		if def == nil || def.Op != tac.Iszero {
			return v
		}
		v = def.Args[0]
	}
	return v
}
