package core

import (
	"sort"
	"sync"

	"ethainter/internal/tac"
)

// guardInfo describes the guards of the program: which condition variables
// dominate which blocks (StaticallyGuardedStatement), which conditions
// scrutinize the sender (the under-approximate effectiveness test built on
// DS/DSA), what storage each guard condition reads, and which constant slots
// behave as owner variables (Section 4.5).
//
// guardInfo is per-config (effectiveness depends on cfg.ModelGuards, owner
// slots on cfg.InferOwnerSinks) and is recomputed for every analysis run; all
// relations are dense — Block.ID, VarID, or interned slot id indexed — and
// flat-packed where per-block lists are involved.
type guardInfo struct {
	// guardsOf lists the condition variables guarding each block, indexed by
	// Block.ID; segments share one flat backing array. The per-block order is
	// the dominator walk order (the block's own entry guards first), which
	// witness assembly depends on.
	guardsOf [][]tac.VarID
	// conds lists every JUMPI condition variable, deduplicated and sorted
	// ascending — the deterministic iteration order of the guard sweep and of
	// the Datalog fact export.
	conds []tac.VarID
	// effective marks sender-scrutinizing conditions (indexed by VarID);
	// numEffective counts them.
	effective    boolTab
	numEffective int
	// sources lists the storage reads in each condition's def cone, parallel
	// to conds.
	sources [][]guardSource
	// ownerSlot marks, by interned slot id, constant slots whose loaded value
	// is compared against the sender in some guard — the inferred sinks of
	// Section 4.5.
	ownerSlot      []bool
	ownerSlotCount int
}

// isOwnerSlot reports whether the interned slot id is an inferred owner slot.
func (g *guardInfo) isOwnerSlot(sid int32) bool {
	return sid >= 0 && int(sid) < len(g.ownerSlot) && g.ownerSlot[sid]
}

// condSources returns the storage sources of a condition by its index in
// g.conds.
func (g *guardInfo) condSources(ci int) []guardSource { return g.sources[ci] }

// guardSource is one storage read feeding a guard condition.
type guardSource struct {
	class addrClass
}

// guardScratch holds the epoch-stamped visited array behind storageSources'
// def-cone walks, pooled across computeGuards calls.
type guardScratch struct {
	visited []int32
	epoch   int32
}

var guardScratchPool = sync.Pool{New: func() any { return &guardScratch{} }}

// reset prepares the scratch for a program with n variables.
func (sc *guardScratch) reset(n int) {
	if cap(sc.visited) < n {
		sc.visited = make([]int32, n)
		sc.epoch = 0
	}
	sc.visited = sc.visited[:n]
}

// begin starts a new walk epoch, recycling the visited array without
// clearing it (entries from older epochs read as unvisited).
func (sc *guardScratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped: clear and restart
		clear(sc.visited)
		sc.epoch = 1
	}
}

func (sc *guardScratch) seen(v tac.VarID) bool {
	if v < 0 || int(v) >= len(sc.visited) {
		return false
	}
	if sc.visited[v] == sc.epoch {
		return true
	}
	sc.visited[v] = sc.epoch
	return false
}

func computeGuards(f *facts, cfg Config) *guardInfo {
	nb := len(f.funcsOf) // covers every Block.ID (sized by attributeFunctions)
	nv := indexedVars(f.prog)
	g := &guardInfo{
		effective: make(boolTab, nv),
		ownerSlot: make([]bool, f.numSlots()),
	}
	// guardEntry: blocks with a unique predecessor ending in JUMPI are
	// guarded by that branch's condition from their entry onward.
	guardEntry := make([][]tac.VarID, nb)
	condSeen := make(boolTab, nv)
	for _, b := range f.prog.Blocks {
		term := b.Terminator()
		if term == nil || term.Op != tac.Jumpi {
			continue
		}
		cond := term.Args[1]
		if cond >= 0 && !condSeen.get(cond) {
			condSeen.set(cond)
			g.conds = append(g.conds, cond)
		}
		for _, succ := range b.Succs {
			if len(succ.Preds) == 1 {
				guardEntry[succ.ID] = append(guardEntry[succ.ID], cond)
			}
		}
	}
	sort.Slice(g.conds, func(i, j int) bool { return g.conds[i] < g.conds[j] })

	// guardsOf(x) = union of guardEntry over x's dominators, flat-packed via
	// a counting pass (walk order preserved: x's own entry guards first).
	g.guardsOf = make([][]tac.VarID, nb)
	total := 0
	counts := make([]int32, nb)
	for _, b := range f.prog.Blocks {
		c := 0
		f.dom.Walk(b, func(d *tac.Block) bool { c += len(guardEntry[d.ID]); return true })
		counts[b.ID] = int32(c)
		total += c
	}
	flat := make([]tac.VarID, 0, total)
	for _, b := range f.prog.Blocks {
		c := int(counts[b.ID])
		if c == 0 {
			continue
		}
		start := len(flat)
		f.dom.Walk(b, func(d *tac.Block) bool {
			flat = append(flat, guardEntry[d.ID]...)
			return true
		})
		g.guardsOf[b.ID] = flat[start : start+c : start+c]
	}

	// Effectiveness and storage sources per condition.
	sc := guardScratchPool.Get().(*guardScratch)
	sc.reset(nv)
	g.sources = make([][]guardSource, len(g.conds))
	for ci, cond := range g.conds {
		if cfg.ModelGuards && f.senderDerived.get(cond) {
			g.effective.set(cond)
			g.numEffective++
		}
		g.sources[ci] = storageSources(f, cond, sc)
	}
	if cfg.InferOwnerSinks {
		g.computeOwnerSlots(f, sc)
	}
	guardScratchPool.Put(sc)
	return g
}

// indexedVars is the variable-id space an analysis must cover: NumVars, or
// the def/use index size when a hand-built program outgrew it.
func indexedVars(p *tac.Program) int {
	n := p.NumVars
	if iv := p.IndexedVars(); iv > n {
		n = iv
	}
	return n
}

// storageSources walks the condition's definition cone (through value ops,
// phis, and constant-offset memory cells) collecting storage reads.
func storageSources(f *facts, root tac.VarID, sc *guardScratch) []guardSource {
	var out []guardSource
	sc.begin()
	var walk func(v tac.VarID)
	walk = func(v tac.VarID) {
		if sc.seen(v) {
			return
		}
		def := f.prog.DefSite(v)
		if def == nil {
			return
		}
		switch {
		case def.Op == tac.Sload:
			out = append(out, guardSource{class: f.addrClassAt(def)})
		case def.Op == tac.Mload:
			if srcs, ok := f.memSrcAt(def); ok {
				for _, st := range srcs {
					walk(st.Args[1])
				}
			}
		case def.Op.IsArith():
			for _, a := range def.Args {
				walk(a)
			}
		}
	}
	walk(root)
	return out
}

// computeOwnerSlots finds constant storage slots z with a guard of the shape
// sender == z (through ISZERO chains): per Section 4.5, "a variable that
// determines a potentially-sanitizing guard is by itself a sink".
func (g *guardInfo) computeOwnerSlots(f *facts, sc *guardScratch) {
	for _, cond := range g.conds {
		base := peelIszero(f, cond)
		def := f.prog.DefSite(base)
		if def == nil || def.Op != tac.Eq {
			continue
		}
		for _, pair := range [][2]tac.VarID{{def.Args[0], def.Args[1]}, {def.Args[1], def.Args[0]}} {
			if !f.senderDerived.get(pair[0]) {
				continue
			}
			// The other side must be loaded from a constant slot.
			for _, src := range storageSources(f, pair[1], sc) {
				if src.class.kind == addrConst && src.class.sid >= 0 && !g.ownerSlot[src.class.sid] {
					g.ownerSlot[src.class.sid] = true
					g.ownerSlotCount++
				}
			}
		}
	}
}

// peelIszero follows ISZERO chains to the underlying comparison.
func peelIszero(f *facts, v tac.VarID) tac.VarID {
	for i := 0; i < 8; i++ {
		def := f.prog.DefSite(v)
		if def == nil || def.Op != tac.Iszero {
			return v
		}
		v = def.Args[0]
	}
	return v
}
