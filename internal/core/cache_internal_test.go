package core

// White-box tests for the cache-layer counting and capacity contracts: the
// per-shard capacity split must sum to the requested bound, every resolved
// logical request must count exactly one hit or one miss (even across the
// cancellation-retry path), and decompilation must singleflight across
// configs. These need access to shard internals (to plant in-flight
// computations and inspect per-shard bounds), hence package core.

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"ethainter/internal/crypto"
	"ethainter/internal/minisol"
)

// TestCacheShardedCapacitySums pins the capacity-accounting contract: the
// per-shard bounds sum to exactly the requested total. The old
// maxEntries/shards truncation silently shrank the cache — NewCacheSharded
// (20, 16) held 16 entries, not 20.
func TestCacheShardedCapacitySums(t *testing.T) {
	cases := []struct {
		maxEntries, shards int
		wantShards         int
	}{
		{20, 16, 16}, // the motivating case: remainder 4 was silently dropped
		{17, 4, 4},
		{1, 16, 1}, // shard count clamps to capacity
		{5, 8, 4},  // clamp to 5, then round down to the power of two below
		{64, 16, 16},
		{100, 3, 2},
	}
	for _, tc := range cases {
		c := NewCacheSharded(tc.maxEntries, tc.shards)
		if got := len(c.shards); got != tc.wantShards {
			t.Errorf("NewCacheSharded(%d, %d): %d shards, want %d",
				tc.maxEntries, tc.shards, got, tc.wantShards)
			continue
		}
		sum, min := 0, int(^uint(0)>>1)
		for i := range c.shards {
			sum += c.shards[i].maxEntries
			if c.shards[i].maxEntries < min {
				min = c.shards[i].maxEntries
			}
		}
		if sum != tc.maxEntries {
			t.Errorf("NewCacheSharded(%d, %d): shard bounds sum to %d, want %d",
				tc.maxEntries, tc.shards, sum, tc.maxEntries)
		}
		if min < 1 {
			t.Errorf("NewCacheSharded(%d, %d): a shard got capacity %d, want >= 1",
				tc.maxEntries, tc.shards, min)
		}
	}
}

// hashForShard crafts a bytecode hash that shardFor maps to shard index i.
func hashForShard(i uint64, salt byte) [32]byte {
	var h [32]byte
	h[0] = salt
	binary.BigEndian.PutUint64(h[24:], i)
	return h
}

// TestCacheShardedHoldsFullCapacity fills every shard to its individual bound
// and asserts the cache holds the full requested capacity with zero
// evictions — the behavioral face of the accounting fix.
func TestCacheShardedHoldsFullCapacity(t *testing.T) {
	const maxEntries, shards = 20, 16
	c := NewCacheSharded(maxEntries, shards)
	for i := range c.shards {
		s := &c.shards[i]
		for j := 0; j < s.maxEntries; j++ {
			key := reportKey{code: hashForShard(uint64(i), byte(j)), cfg: uint64(j)}
			if c.shardFor(key.code) != s {
				t.Fatalf("hashForShard(%d) landed on the wrong shard", i)
			}
			s.lock()
			s.storeReport(key, reportEntry{rep: &Report{}})
			s.mu.Unlock()
		}
	}
	st := c.Stats()
	if st.Entries != maxEntries || st.Evictions != 0 {
		t.Fatalf("after filling to bound: Entries = %d, Evictions = %d, want %d and 0",
			st.Entries, st.Evictions, maxEntries)
	}
}

// TestCacheHitMissInvariant pins hits + misses == resolved logical lookups,
// sequentially and under concurrent coalescing. With singleflight, each
// unique key records exactly one miss (the computing request); every other
// resolved request records exactly one hit.
func TestCacheHitMissInvariant(t *testing.T) {
	codes := [][]byte{
		minisol.MustCompile(minisol.VictimSource).Runtime,
		minisol.MustCompile(minisol.TaintedOwnerSource).Runtime,
		minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime,
	}
	cfg := DefaultConfig()

	c := NewCache(0)
	const rounds = 4
	for r := 0; r < rounds; r++ {
		for _, code := range codes {
			if _, err := c.AnalyzeBytecode(code, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	requests := uint64(rounds * len(codes))
	if st.Hits+st.Misses != requests || st.Misses != uint64(len(codes)) {
		t.Fatalf("sequential: Hits = %d, Misses = %d, want sum %d with %d misses",
			st.Hits, st.Misses, requests, len(codes))
	}

	c = NewCache(0)
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for _, code := range codes {
				if _, err := c.AnalyzeBytecode(code, cfg); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	st = c.Stats()
	requests = uint64(workers * len(codes))
	if st.Hits+st.Misses != requests {
		t.Fatalf("concurrent: Hits = %d, Misses = %d, want sum %d",
			st.Hits, st.Misses, requests)
	}
	if st.Misses != uint64(len(codes)) || st.Analyses != uint64(len(codes)) {
		t.Fatalf("concurrent: Misses = %d, Analyses = %d, want %d each (one computing request per key)",
			st.Misses, st.Analyses, len(codes))
	}
}

// TestCacheCancelledInflightRetryCountsOnce plants a pending computation that
// resolves as cancelled and asserts the coalesced waiter — which must retry
// and compute the report itself — records exactly one miss and zero hits.
// Before the fix, the waiter counted a hit at attach time, observed the
// cancellation, retried, and counted again: two counts for one request.
func TestCacheCancelledInflightRetryCountsOnce(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	hash := crypto.Keccak256(code)
	cfg := DefaultConfig()
	key := reportKey{code: hash, cfg: cfg.Fingerprint()}

	c := NewCache(0)
	s := c.shardFor(hash)
	fl := &inflight{done: make(chan struct{})}
	s.lock()
	s.pending[key] = fl
	s.mu.Unlock()

	result := make(chan error, 1)
	go func() {
		_, err := c.AnalyzeHashedContext(context.Background(), hash, code, cfg)
		result <- err
	}()

	// Let the waiter attach to the planted inflight, then resolve it as
	// cancelled — exactly what a deadline-killed computing request does.
	time.Sleep(20 * time.Millisecond)
	fl.err = context.Canceled
	s.lock()
	delete(s.pending, key)
	s.mu.Unlock()
	close(fl.done)

	if err := <-result; err != nil {
		t.Fatalf("retried analysis: %v", err)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Analyses != 1 {
		t.Fatalf("Hits = %d, Misses = %d, Analyses = %d, want 0/1/1 (one logical request, one count)",
			st.Hits, st.Misses, st.Analyses)
	}
}

// TestCacheWaiterOwnCancellationCountsNothing: a request that gives up on its
// own context while coalescing consumed neither a probe nor a computation and
// must leave every counter untouched.
func TestCacheWaiterOwnCancellationCountsNothing(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	hash := crypto.Keccak256(code)
	cfg := DefaultConfig()
	key := reportKey{code: hash, cfg: cfg.Fingerprint()}

	c := NewCache(0)
	s := c.shardFor(hash)
	fl := &inflight{done: make(chan struct{})} // never resolves
	s.lock()
	s.pending[key] = fl
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AnalyzeHashedContext(ctx, hash, code, cfg); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Analyses != 0 {
		t.Fatalf("Hits = %d, Misses = %d, Analyses = %d, want all zero",
			st.Hits, st.Misses, st.Analyses)
	}
}

// TestCacheDecompileSingleflight: concurrent misses under two configs share
// one program key, so the decompiler must run exactly once no matter how the
// requests interleave — the program-level mirror of the report singleflight.
// Run under -race this also exercises the progPending synchronization.
func TestCacheDecompileSingleflight(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	def := DefaultConfig()
	noGuards := DefaultConfig()
	noGuards.ModelGuards = false
	if def.Fingerprint() == noGuards.Fingerprint() {
		t.Fatal("configs must have distinct fingerprints for this test")
	}

	c := NewCache(0)
	const perConfig = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, cfg := range []Config{def, noGuards} {
		for i := 0; i < perConfig; i++ {
			wg.Add(1)
			go func(cfg Config) {
				defer wg.Done()
				<-start
				if _, err := c.AnalyzeBytecode(code, cfg); err != nil {
					t.Error(err)
				}
			}(cfg)
		}
	}
	close(start)
	wg.Wait()

	st := c.Stats()
	if st.Decompiles != 1 {
		t.Fatalf("Decompiles = %d, want 1 (two configs share one program)", st.Decompiles)
	}
	if st.Analyses != 2 || st.Misses != 2 {
		t.Fatalf("Analyses = %d, Misses = %d, want 2 each (one per config)", st.Analyses, st.Misses)
	}
	if st.Hits+st.Misses != 2*perConfig {
		t.Fatalf("Hits = %d, Misses = %d, want sum %d", st.Hits, st.Misses, 2*perConfig)
	}
	if st.FactsMisses != 1 || st.FactsHits != 1 {
		t.Fatalf("FactsMisses = %d, FactsHits = %d, want 1/1 (facts computed once, second config reuses)",
			st.FactsMisses, st.FactsHits)
	}
}

// factsTestConfigs returns distinct-fingerprint configs spanning the ablation
// space, for exercising the shared-facts path across N configs.
func factsTestConfigs(t *testing.T) []Config {
	t.Helper()
	def := DefaultConfig()
	noGuards := DefaultConfig()
	noGuards.ModelGuards = false
	noStorage := DefaultConfig()
	noStorage.ModelStorageTaint = false
	conservative := DefaultConfig()
	conservative.ConservativeStorage = true
	noInfer := DefaultConfig()
	noInfer.InferOwnerSinks = false
	cfgs := []Config{def, noGuards, noStorage, conservative, noInfer}
	seen := map[uint64]bool{}
	for _, c := range cfgs {
		fp := c.Fingerprint()
		if seen[fp] {
			t.Fatal("ablation configs must have pairwise-distinct fingerprints")
		}
		seen[fp] = true
	}
	return cfgs
}

// TestCacheFactsComputedOncePerProgram pins the shared-facts invariant:
// analyzing a corpus under N configs computes the facts stratum exactly once
// per unique program — FactsMisses == unique bytecodes regardless of config
// count — with every other analysis reusing the memo, and the reports stay
// bit-identical to the uncached pipeline.
func TestCacheFactsComputedOncePerProgram(t *testing.T) {
	codes := [][]byte{
		minisol.MustCompile(minisol.VictimSource).Runtime,
		minisol.MustCompile(minisol.TaintedOwnerSource).Runtime,
		minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime,
	}
	cfgs := factsTestConfigs(t)

	c := NewCache(0)
	for _, cfg := range cfgs {
		for i, code := range codes {
			got, err := c.AnalyzeBytecode(code, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := AnalyzeBytecode(code, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Digest() != want.Digest() {
				t.Fatalf("config %d, code %d: cached report digest diverges from uncached", i, len(cfgs))
			}
		}
	}
	st := c.Stats()
	if st.FactsMisses != uint64(len(codes)) {
		t.Fatalf("FactsMisses = %d, want %d (one facts computation per unique program, %d configs notwithstanding)",
			st.FactsMisses, len(codes), len(cfgs))
	}
	wantHits := uint64((len(cfgs) - 1) * len(codes))
	if st.FactsHits != wantHits {
		t.Fatalf("FactsHits = %d, want %d (every non-first config reuses the memo)", st.FactsHits, wantHits)
	}
	if st.Decompiles != uint64(len(codes)) {
		t.Fatalf("Decompiles = %d, want %d", st.Decompiles, len(codes))
	}
}

// TestCacheWarmDiskColdConfigFactsOnce pins the disk-tier interaction: a
// warm-disk report hit bypasses the facts layer entirely (no program in
// memory, no facts computed), and the next cold config then computes facts
// exactly once — the disk hit must not have poisoned or duplicated the
// program memo. Facts computed stays == unique programs actually analyzed.
func TestCacheWarmDiskColdConfigFactsOnce(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.ModelGuards = false
	cfgC := DefaultConfig()
	cfgC.ConservativeStorage = true

	dir := t.TempDir()
	newWarmDir(t, dir, [][]byte{code}, cfgA)

	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	c := NewCache(0)
	c.SetDiskTier(tier)

	// Warm-disk hit under cfgA: served from the tier, no decompile, no facts.
	if _, err := c.AnalyzeBytecode(code, cfgA); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.Decompiles != 0 || st.FactsMisses != 0 || st.FactsHits != 0 {
		t.Fatalf("after warm hit: DiskHits=%d Decompiles=%d FactsMisses=%d FactsHits=%d, want 1/0/0/0",
			st.DiskHits, st.Decompiles, st.FactsMisses, st.FactsHits)
	}

	// First cold config after the warm hit: one decompile, one facts
	// computation.
	if _, err := c.AnalyzeBytecode(code, cfgB); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Decompiles != 1 || st.FactsMisses != 1 {
		t.Fatalf("after first cold config: Decompiles=%d FactsMisses=%d, want 1/1", st.Decompiles, st.FactsMisses)
	}

	// Second cold config: program and facts both served from the memo.
	if _, err := c.AnalyzeBytecode(code, cfgC); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Decompiles != 1 || st.FactsMisses != 1 || st.FactsHits != 1 {
		t.Fatalf("after second cold config: Decompiles=%d FactsMisses=%d FactsHits=%d, want 1/1/1",
			st.Decompiles, st.FactsMisses, st.FactsHits)
	}
}
