package core

// This file is the persistent cache entry codec: a versioned, checksummed
// binary format for one memoized analysis outcome — a full Report or a
// deterministic negative entry — keyed by (bytecode keccak-256, config
// fingerprint, normalized decompilation limits).
//
// Layout (all integers big-endian):
//
//	magic            8 bytes  "ETHDISK1"
//	format version   u32      diskFormatVersion
//	scheme           u8 len + bytes   fingerprintScheme (ties the on-disk
//	                                  format to the fingerprint scheme: a
//	                                  scheme bump orphans old entries)
//	bytecode hash    32 bytes  key echo, verified on read
//	config fp        u64       key echo
//	limits           3 × u64   normalized MaxContexts/MaxWorklistSteps/
//	                           MaxStatements — belt-and-braces echo of what
//	                           the fingerprint already folds in
//	payload          entry kind byte + body (report or error)
//	checksum         32 bytes  keccak-256 of everything above
//
// The trailing checksum is what makes the startup scrub cheap to reason
// about: any torn write — a truncated file, a partially flushed page — fails
// the checksum and the entry is dropped, never mis-decoded.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/u256"
)

const (
	diskMagic         = "ETHDISK1"
	diskFormatVersion = uint32(1)
)

// Entry payload kinds.
const (
	entryKindReport     = byte(0) // successful analysis: serialized Report
	entryKindBudgetErr  = byte(1) // deterministic decompilation-budget failure
	entryKindGenericErr = byte(2) // other deterministic failure, message only
)

var errBadEntry = errors.New("core: malformed disk cache entry")

// encodeEntry serializes one memoized outcome. The caller guarantees
// persistable(e.err): cancellations and recovered panics never reach here.
func encodeEntry(key reportKey, limits decompiler.Limits, e reportEntry) []byte {
	b := make([]byte, 0, 256)
	b = append(b, diskMagic...)
	b = binary.BigEndian.AppendUint32(b, diskFormatVersion)
	b = append(b, byte(len(fingerprintScheme)))
	b = append(b, fingerprintScheme...)
	b = append(b, key.code[:]...)
	b = binary.BigEndian.AppendUint64(b, key.cfg)
	b = binary.BigEndian.AppendUint64(b, uint64(limits.MaxContexts))
	b = binary.BigEndian.AppendUint64(b, uint64(limits.MaxWorklistSteps))
	b = binary.BigEndian.AppendUint64(b, uint64(limits.MaxStatements))
	switch {
	case e.err == nil:
		b = append(b, entryKindReport)
		b = appendReport(b, e.rep)
	default:
		var be *decompiler.BudgetError
		if errors.As(e.err, &be) {
			b = append(b, entryKindBudgetErr)
			b = appendString(b, be.Resource)
			b = binary.BigEndian.AppendUint64(b, uint64(be.Limit))
		} else {
			b = append(b, entryKindGenericErr)
			b = appendString(b, e.err.Error())
		}
	}
	sum := crypto.Keccak256(b)
	return append(b, sum[:]...)
}

// decodeEntry parses and verifies one entry. It returns the embedded key and
// limits (callers verify them against what they asked for) and the decoded
// outcome. Any structural defect — wrong magic, unknown version, fingerprint
// scheme mismatch, failed checksum, truncation, trailing garbage — returns
// an error; the tier treats every such entry as scrub fodder.
func decodeEntry(data []byte) (reportKey, decompiler.Limits, reportEntry, error) {
	var key reportKey
	var limits decompiler.Limits
	if len(data) < len(diskMagic)+4+1+32 {
		return key, limits, reportEntry{}, errBadEntry
	}
	body, sum := data[:len(data)-32], data[len(data)-32:]
	if got := crypto.Keccak256(body); [32]byte(sum) != got {
		return key, limits, reportEntry{}, fmt.Errorf("%w: checksum mismatch", errBadEntry)
	}
	r := &entryReader{b: body}
	if string(r.take(len(diskMagic))) != diskMagic {
		return key, limits, reportEntry{}, fmt.Errorf("%w: bad magic", errBadEntry)
	}
	if v := r.u32(); v != diskFormatVersion {
		return key, limits, reportEntry{}, fmt.Errorf("%w: format version %d, want %d", errBadEntry, v, diskFormatVersion)
	}
	if scheme := r.str8(); scheme != fingerprintScheme {
		return key, limits, reportEntry{}, fmt.Errorf("%w: fingerprint scheme %q, want %q", errBadEntry, scheme, fingerprintScheme)
	}
	copy(key.code[:], r.take(32))
	key.cfg = r.u64()
	limits.MaxContexts = int(r.u64())
	limits.MaxWorklistSteps = int(r.u64())
	limits.MaxStatements = int(r.u64())
	var e reportEntry
	switch kind := r.byte(); kind {
	case entryKindReport:
		e.rep = readReport(r)
	case entryKindBudgetErr:
		e.err = &decompiler.BudgetError{Resource: r.str32(), Limit: int(r.u64())}
	case entryKindGenericErr:
		e.err = errors.New(r.str32())
	default:
		return key, limits, reportEntry{}, fmt.Errorf("%w: entry kind %d", errBadEntry, kind)
	}
	if r.failed || r.off != len(r.b) {
		return key, limits, reportEntry{}, fmt.Errorf("%w: truncated or oversized payload", errBadEntry)
	}
	return key, limits, e, nil
}

// appendReport serializes a Report, stage timings included — a disk hit
// returns the memoized breakdown of the original computation, exactly like a
// memory hit does.
func appendReport(b []byte, r *Report) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(r.PublicFunctions))
	st := r.Stats
	for _, v := range []int{
		st.Blocks, st.Statements, st.ReachableBlocks, st.TaintedVars,
		st.TaintedSlots, st.BypassedGuards, st.EffectiveGuards,
		st.FixpointPasses, st.InferredOwnerSlot,
	} {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	t := st.Timings
	for _, d := range []time.Duration{
		t.Decompile, t.Facts, t.Guards, t.Fixpoint, t.Detect,
		t.DecompileDecode, t.DecompileValueSet, t.DecompileTranslate, t.DecompileFunctions,
		t.EngineIndex, t.EngineJoin, t.EngineMerge,
	} {
		b = binary.BigEndian.AppendUint64(b, uint64(d))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Warnings)))
	for _, w := range r.Warnings {
		b = append(b, byte(w.Kind))
		b = binary.BigEndian.AppendUint64(b, uint64(w.PC))
		for i := 0; i < 4; i++ {
			b = binary.BigEndian.AppendUint64(b, w.Slot[i])
		}
		b = appendString(b, w.Message)
		b = binary.BigEndian.AppendUint32(b, uint32(len(w.Witness)))
		for _, s := range w.Witness {
			b = append(b, s.Selector[:]...)
			b = binary.BigEndian.AppendUint32(b, uint32(s.NumArgs))
		}
	}
	return b
}

func readReport(r *entryReader) *Report {
	rep := &Report{}
	rep.PublicFunctions = int(r.u64())
	st := &rep.Stats
	for _, p := range []*int{
		&st.Blocks, &st.Statements, &st.ReachableBlocks, &st.TaintedVars,
		&st.TaintedSlots, &st.BypassedGuards, &st.EffectiveGuards,
		&st.FixpointPasses, &st.InferredOwnerSlot,
	} {
		*p = int(r.u64())
	}
	t := &st.Timings
	for _, p := range []*time.Duration{
		&t.Decompile, &t.Facts, &t.Guards, &t.Fixpoint, &t.Detect,
		&t.DecompileDecode, &t.DecompileValueSet, &t.DecompileTranslate, &t.DecompileFunctions,
		&t.EngineIndex, &t.EngineJoin, &t.EngineMerge,
	} {
		*p = time.Duration(r.u64())
	}
	n := int(r.u32())
	if r.failed || n < 0 || n > r.remaining() {
		r.failed = true
		return rep
	}
	for i := 0; i < n && !r.failed; i++ {
		var w Warning
		w.Kind = VulnKind(r.byte())
		w.PC = int(r.u64())
		var slot u256.U256
		for j := 0; j < 4; j++ {
			slot[j] = r.u64()
		}
		w.Slot = slot
		w.Message = r.str32()
		steps := int(r.u32())
		if r.failed || steps < 0 || steps > r.remaining() {
			r.failed = true
			break
		}
		for j := 0; j < steps; j++ {
			var s Step
			copy(s.Selector[:], r.take(4))
			s.NumArgs = int(r.u32())
			w.Witness = append(w.Witness, s)
		}
		rep.Warnings = append(rep.Warnings, w)
	}
	return rep
}

// Digest returns a deterministic content digest of the report — the
// serialized form with the wall-clock stage timings zeroed, hashed with
// keccak-256. Two analyses of the same bytecode under the same config yield
// the same digest no matter which process, tier, or worker computed them;
// the warm-restart benchmark uses it to assert disk-served reports are
// bit-identical to freshly computed ones.
func (r *Report) Digest() [32]byte {
	cp := *r
	cp.Stats.Timings = StageTimings{}
	return crypto.Keccak256(appendReport(make([]byte, 0, 256), &cp))
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// entryReader is a bounds-checked sequential reader; any out-of-range access
// sets failed and yields zero values, so decoders can parse straight through
// and check failed once.
type entryReader struct {
	b      []byte
	off    int
	failed bool
}

func (r *entryReader) remaining() int { return len(r.b) - r.off }

func (r *entryReader) take(n int) []byte {
	if r.failed || n < 0 || r.off+n > len(r.b) {
		r.failed = true
		return make([]byte, max(n, 0))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *entryReader) byte() byte {
	return r.take(1)[0]
}

func (r *entryReader) u32() uint32 {
	return binary.BigEndian.Uint32(r.take(4))
}

func (r *entryReader) u64() uint64 {
	return binary.BigEndian.Uint64(r.take(8))
}

// str8 reads a string with a one-byte length prefix.
func (r *entryReader) str8() string {
	return string(r.take(int(r.byte())))
}

// str32 reads a string with a four-byte length prefix.
func (r *entryReader) str32() string {
	n := int(r.u32())
	if n > r.remaining() {
		r.failed = true
		return ""
	}
	return string(r.take(n))
}
