package core

import (
	"fmt"
	"runtime"
	"time"

	"ethainter/internal/datalog"
	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// engineWorkers resolves a Config.Parallelism value to a concrete engine
// worker count: non-positive means sequential except negative, which asks for
// one worker per available CPU.
func engineWorkers(parallelism int) int {
	if parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism == 0 {
		return 1
	}
	return parallelism
}

// parallelFactCutoff is the input-relation size below which the requested
// intra-fixpoint parallelism is gated down to sequential. The heuristic is
// measured, not guessed: BENCH_core.json's engine_scaling curve shows the
// parallel fixpoint at <=0.93x sequential even on a ~160K-derived-tuple
// closure — chunked delta joins never amortize the per-iteration barrier
// merge and index prebuild at that scale — and contract-sized fact sets run
// hundreds to a few thousand input tuples, an order of magnitude smaller
// still. Requests only pay off (if ever) well past tens of thousands of
// input tuples, so anything below this cutoff runs sequentially no matter
// what Config.Parallelism asks for. The gate changes scheduling only, never
// results, and Parallelism stays excluded from Config.Fingerprint.
const parallelFactCutoff = 32768

// datalogWorkers is the effective engine worker count for a run over
// inputTuples input facts: the configured parallelism, gated to sequential
// below parallelFactCutoff.
func datalogWorkers(parallelism, inputTuples int) int {
	if w := engineWorkers(parallelism); w <= 1 || inputTuples >= parallelFactCutoff {
		return w
	}
	return 1
}

// This file expresses the production analysis as declarative rules on the
// Datalog engine, in the style of the paper's Soufflé implementation
// (Section 5, Figure 5). The Go fixpoint in taint.go is the "compiled"
// equivalent; AnalyzeDatalog is the interpreted one, and the two are
// differentially tested over the corpus.
//
// Scope notes (documented divergences, none of which trigger on compiler-
// generated corpus code under the default configuration):
//   - ReachableByAttacker uses Figure 5's existential rule (a block is
//     reachable when SOME effective guard on it is bypassed), while the Go
//     fixpoint demands ALL effective guards bypassed; the two agree whenever
//     no statement carries two distinct effective guards.
//   - The StorageWrite-2 "taint everything" rule and the conservative-storage
//     ablation are not encoded.
//   - The unchecked-staticcall detector needs memory-region reasoning that
//     stays in Go.

// ProductionRules is the rule set. Input relations are produced by
// exportFacts; output relations are reach/1, anyTainted/1 and violation/2.
const ProductionRules = `
% ---------- reachability (Figure 5 skeleton) ----------
% A block is attacker-reachable if it has no effective guard...
reach(B) :- block(B), !guardedEff(B).
guardedEff(B) :- guardOf(B, C), effective(C).
% ...or if an effective guard on it has been invalidated.
reach(B) :- guardOf(B, C), effective(C), bypassed(C).

% ---------- taint seeds (TaintedFlow base case) ----------
% Attacker-supplied data read in attacker-reachable code.
taintedI(V) :- inputSrc(S, V), stmtBlock(S, B), reach(B).
% The caller's own address: attacker-chosen, but not guard-invalidating.
taintedSnd(V) :- callerSrc(S, V), stmtBlock(S, B), reach(B).

% ---------- propagation (AttackerModelInfoflow) ----------
% flow1 is the one-step information flow: operators, phis, memory cells, and
% hashed regions, as computed by the auxiliary stratum.
taintedI(Y) :- taintedI(X), flow1(X, Y).
taintedT(Y) :- taintedT(X), flow1(X, Y).
taintedSnd(Y) :- taintedSnd(X), flow1(X, Y).

% ---------- taint through storage (Guard-1: survives guards) ----------
slotTainted(Slot) :- sstoreConst(S, Slot, V), anyTainted(V), stmtBlock(S, B), reach(B).
taintedT(V) :- sloadConst(_, Slot, V), slotTainted(Slot).
elemValTainted(Base) :- sstoreElem(S, Base, V), anyTainted(V), stmtBlock(S, B), reach(B).
taintedT(V) :- sloadElem(_, Base, V), elemValTainted(Base).

% Membership control: an attacker-reachable store into a data-structure
% family whose key the attacker picks (their own sender entry or a tainted
% key) makes guards over that family bypassable — the Section 2 escalation.
elemWritable(Base) :- sstoreElem(S, Base, _), elemKeySender(S), stmtBlock(S, B), reach(B).
elemWritable(Base) :- sstoreElem(S, Base, _), elemKey(S, K), anyTainted(K), stmtBlock(S, B), reach(B).

anyTainted(V) :- taintedI(V).
anyTainted(V) :- taintedT(V).
anyTainted(V) :- taintedSnd(V).
% Taint kinds that invalidate a guard condition (sender taint does not: the
% comparison against the sender is exactly what sanitizes).
guardTaint(V) :- taintedI(V).
guardTaint(V) :- taintedT(V).

% ---------- guard invalidation (Uguard-T generalized) ----------
bypassed(C) :- cond(C), guardTaint(C).
bypassed(C) :- guardSrcConst(C, Slot), slotTainted(Slot).
bypassed(C) :- guardSrcElem(C, Base), elemWritable(Base).
bypassed(C) :- guardSrcElem(C, Base), elemValTainted(Base).

% ---------- sinks (Section 3 detectors) ----------
% Tainted-sink dual rule: storage taint always counts; input/sender taint only
% when the sink itself is attacker-reachable (Guard-2 sanitization).
sinkTaintAt(S, V) :- sinkArg(S, V), taintedT(V).
sinkTaintAt(S, V) :- sinkArg(S, V), taintedI(V), stmtBlock(S, B), reach(B).
sinkTaintAt(S, V) :- sinkArg(S, V), taintedSnd(V), stmtBlock(S, B), reach(B).

violation("accessible-selfdestruct", S) :- selfdestructAt(S, _), stmtBlock(S, B), reach(B).
violation("tainted-selfdestruct", S) :- selfdestructAt(S, V), sinkTaintAt(S, V).
violation("tainted-delegatecall", S) :- delegatecallAt(S, V), sinkTaintAt(S, V).
violation("tainted-owner", S) :- sstoreConst(S, Slot, V), ownerSlot(Slot), anyTainted(V), stmtBlock(S, B), reach(B).
`

// AnalyzeDatalog runs the declarative variant and returns the violations as
// (kind, pc) pairs. It shares the auxiliary fact computation (constants,
// memory model, storage classification, DS/DSA, guards) with Analyze — those
// are the "previous stratum" of Figure 2. The engine evaluates with
// cfg.Parallelism workers — gated to sequential below parallelFactCutoff
// input tuples, where coordination overhead always loses; the violation sets
// are identical at any setting.
func AnalyzeDatalog(prog *tac.Program, cfg Config) (map[VulnKind]map[int]bool, error) {
	out, _, err := AnalyzeDatalogTimed(prog, cfg)
	return out, err
}

// AnalyzeDatalogTimed is AnalyzeDatalog with the per-stage wall-clock
// breakdown of the run: Facts covers fact computation and export, Fixpoint
// the whole engine run, and the Engine* stages split the fixpoint into index
// builds, delta joins, and barrier merges.
func AnalyzeDatalogTimed(prog *tac.Program, cfg Config) (map[VulnKind]map[int]bool, StageTimings, error) {
	var timings StageTimings
	t0 := time.Now()
	f := computeFacts(prog)
	t1 := time.Now()
	g := computeGuards(f, cfg)
	t2 := time.Now()
	dl := datalog.NewProgram()
	if err := dl.Parse(ProductionRules); err != nil {
		return nil, timings, err
	}
	tuples, err := exportFacts(f, g, dl)
	if err != nil {
		return nil, timings, err
	}
	// Parallelism is decided after export, when the input size is known:
	// small fact sets always lose to coordination overhead (see
	// parallelFactCutoff), so they run sequentially whatever cfg asks.
	dl.SetParallelism(datalogWorkers(cfg.Parallelism, tuples))
	t3 := time.Now()
	if err := dl.Run(); err != nil {
		return nil, timings, err
	}
	t4 := time.Now()
	es := dl.EngineStats()
	timings.Facts = t1.Sub(t0) + t3.Sub(t2) // fact computation + export
	timings.Guards = t2.Sub(t1)
	timings.Fixpoint = t4.Sub(t3)
	timings.EngineIndex = es.IndexBuild
	timings.EngineJoin = es.Join
	timings.EngineMerge = es.Merge

	out := map[VulnKind]map[int]bool{}
	add := func(kind VulnKind, pc int) {
		if out[kind] == nil {
			out[kind] = map[int]bool{}
		}
		out[kind][pc] = true
	}
	kindOf := map[string]VulnKind{
		"accessible-selfdestruct": AccessibleSelfdestruct,
		"tainted-selfdestruct":    TaintedSelfdestruct,
		"tainted-delegatecall":    TaintedDelegatecall,
		"tainted-owner":           TaintedOwner,
	}
	stmtPC := map[string]int{}
	seq := 0
	prog.AllStmts(func(s *tac.Stmt) {
		stmtPC[stmtTerm(seq)] = s.PC
		seq++
	})
	for _, row := range dl.Query("violation") {
		kind, ok := kindOf[row[0]]
		if !ok {
			return nil, timings, fmt.Errorf("core: unknown violation kind %q", row[0])
		}
		pc, ok := stmtPC[row[1]]
		if !ok {
			return nil, timings, fmt.Errorf("core: unknown statement term %q", row[1])
		}
		add(kind, pc)
	}
	return out, timings, nil
}

func stmtTerm(i int) string          { return fmt.Sprintf("s%d", i) }
func varTerm(v tac.VarID) string     { return fmt.Sprintf("v%d", v) }
func blockTerm(b *tac.Block) string  { return fmt.Sprintf("b%d", b.ID) }
func slotTerm(slot u256.U256) string { return slot.Hex64() }
func condTerm(c tac.VarID) string    { return varTerm(c) }

// exportFacts encodes the program and the auxiliary relations as Datalog
// input facts, returning how many it added — the size signal the parallelism
// gate runs on.
func exportFacts(f *facts, g *guardInfo, dl *datalog.Program) (int, error) {
	var err error
	n := 0
	fact := func(rel string, terms ...string) {
		if err == nil {
			err = dl.AddFact(rel, terms...)
			n++
		}
	}

	// Blocks and guards.
	for _, b := range f.prog.Blocks {
		fact("block", blockTerm(b))
		if b.ID >= 0 && b.ID < len(g.guardsOf) {
			for _, c := range g.guardsOf[b.ID] {
				fact("guardOf", blockTerm(b), condTerm(c))
			}
		}
	}
	// g.conds is already deduplicated and sorted ascending.
	for ci, c := range g.conds {
		fact("cond", condTerm(c))
		if g.effective.get(c) {
			fact("effective", condTerm(c))
		}
		for _, src := range g.condSources(ci) {
			switch src.class.kind {
			case addrConst:
				fact("guardSrcConst", condTerm(c), slotTerm(src.class.slot))
			case addrElem:
				fact("guardSrcElem", condTerm(c), slotTerm(src.class.slot))
			}
		}
	}
	for sid, owner := range g.ownerSlot {
		if owner {
			fact("ownerSlot", slotTerm(f.slotVals[sid]))
		}
	}

	// Statements: sources, sinks, storage ops, and one-step flows.
	seq := 0
	f.prog.AllStmts(func(s *tac.Stmt) {
		id := stmtTerm(seq)
		seq++
		if s.Block != nil {
			fact("stmtBlock", id, blockTerm(s.Block))
		}
		switch s.Op {
		case tac.Calldataload, tac.Callvalue:
			fact("inputSrc", id, varTerm(s.Def))
		case tac.Caller:
			fact("callerSrc", id, varTerm(s.Def))
		case tac.Mload:
			if srcs, ok := f.memSrcAt(s); ok {
				for _, st := range srcs {
					fact("flow1", varTerm(st.Args[1]), varTerm(s.Def))
				}
			} else {
				for _, st := range f.memUnknown {
					fact("flow1", varTerm(st.Args[1]), varTerm(s.Def))
				}
			}
		case tac.Sha3:
			if words, ok := f.hashWordsAt(s); ok {
				for _, stores := range words {
					for _, st := range stores {
						fact("flow1", varTerm(st.Args[1]), varTerm(s.Def))
					}
				}
			}
		case tac.Sload:
			cls := f.addrClassAt(s)
			switch cls.kind {
			case addrConst:
				fact("sloadConst", id, slotTerm(cls.slot), varTerm(s.Def))
			case addrElem:
				fact("sloadElem", id, slotTerm(cls.slot), varTerm(s.Def))
			}
		case tac.Sstore:
			cls := f.addrClassAt(s)
			switch cls.kind {
			case addrConst:
				fact("sstoreConst", id, slotTerm(cls.slot), varTerm(s.Args[1]))
			case addrElem:
				fact("sstoreElem", id, slotTerm(cls.slot), varTerm(s.Args[1]))
				for _, k := range cls.keys {
					if f.senderDerived.get(k) {
						fact("elemKeySender", id)
					}
					fact("elemKey", id, varTerm(k))
				}
			}
		case tac.SelfdestructOp:
			fact("selfdestructAt", id, varTerm(s.Args[0]))
			fact("sinkArg", id, varTerm(s.Args[0]))
		case tac.Delegatecall, tac.Callcode:
			fact("delegatecallAt", id, varTerm(s.Args[1]))
			fact("sinkArg", id, varTerm(s.Args[1]))
		default:
			if s.Op.IsArith() && s.Def != tac.NoVar {
				for _, a := range s.Args {
					fact("flow1", varTerm(a), varTerm(s.Def))
				}
			}
		}
	})
	return n, err
}
