package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"ethainter/internal/decompiler"
)

// ErrInternal is the class of analysis failures caused by a defect in the
// analyzer itself rather than by the input or the caller's budget: a panic
// recovered at the AnalyzeBytecode* boundary. The serving layer maps it to
// 500 and counts it separately, so operators can tell "our bug" from
// "hostile input" from "client deadline" at a glance.
var ErrInternal = errors.New("core: internal analyzer error")

// PanicError wraps a panic recovered at the analysis boundary. It matches
// ErrInternal via errors.Is and carries the panic value plus the stack at
// recovery time for debugging.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: internal analyzer error: panic: %v", e.Value)
}

// Is classifies every recovered panic as ErrInternal.
func (e *PanicError) Is(target error) bool { return target == ErrInternal }

// recoverToError is deferred at the AnalyzeBytecode* boundary: it converts a
// residual panic on hostile bytecode into a *PanicError so a single
// poisonous input degrades to one failed request instead of taking down the
// process. Reaching it is always an analyzer bug — the fuzzers treat any
// PanicError as a failure — but a server must survive bugs it has not found
// yet.
func recoverToError(err *error) {
	if v := recover(); v != nil {
		*err = &PanicError{Value: v, Stack: debug.Stack()}
	}
}

// IsCancellation reports whether err is a context cancellation or deadline
// error — the class of analysis failures that reflect the caller's budget
// rather than the bytecode, and that the Cache therefore never memoizes.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsBudgetExhaustion reports whether err is a deterministic decompilation
// work-budget failure (decompiler.ErrBudgetExhausted). Unlike a
// cancellation, the same bytecode under the same Config fails identically
// every time, so the Cache memoizes these negatively.
func IsBudgetExhaustion(err error) bool {
	return errors.Is(err, decompiler.ErrBudgetExhausted)
}

// IsInternal reports whether err is a recovered analyzer panic.
func IsInternal(err error) bool {
	return errors.Is(err, ErrInternal)
}
