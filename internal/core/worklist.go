package core

import (
	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// depGraph inverts every statement's fixpoint read set: which statements must
// be re-evaluated when a variable's taint, a storage slot, a mapping family,
// or the reachability of a block changes. It is the index behind the worklist
// fixpoint — a fact change dirties exactly its dependents instead of
// triggering a whole-program re-pass.
//
// The guard-bypass sweep is not tracked here: it runs in full every round
// (guard conditions are few), and a bypass feeds back into statements through
// bypassChanged → block reachability.
type depGraph struct {
	// dirty[i] marks stmts[i] (program order, as held by analysis.stmts) for
	// re-evaluation in the current or next round.
	dirty []bool

	// varDeps lists the statements reading varTaint[v].
	varDeps map[tac.VarID][]int32
	// slotDeps lists the statements reading slotTainted[slot].
	slotDeps map[u256.U256][]int32
	// elemValDeps lists the statements reading elemValueTainted[family].
	elemValDeps map[u256.U256][]int32
	// anyDeps lists the statements reading anySlotTainted (conservative-mode
	// loads from unknown storage addresses).
	anyDeps []int32
	// allDeps lists the statements reading allTainted (every SLOAD).
	allDeps []int32
	// blockDeps lists the statements whose rules condition on reachable(b).
	blockDeps map[*tac.Block][]int32
	// condBlocks lists the blocks whose reachability an effective guard
	// condition gates.
	condBlocks map[tac.VarID][]*tac.Block
}

// buildDeps scans the program once, mirroring the read set of each stepStmt
// case.
func buildDeps(a *analysis) *depGraph {
	f := a.f
	d := &depGraph{
		dirty:       make([]bool, len(a.stmts)),
		varDeps:     map[tac.VarID][]int32{},
		slotDeps:    map[u256.U256][]int32{},
		elemValDeps: map[u256.U256][]int32{},
		blockDeps:   map[*tac.Block][]int32{},
		condBlocks:  map[tac.VarID][]*tac.Block{},
	}
	onVar := func(v tac.VarID, i int32) { d.varDeps[v] = append(d.varDeps[v], i) }
	for i, s := range a.stmts {
		idx := int32(i)
		switch s.Op {
		case tac.Calldataload, tac.Callvalue, tac.Caller:
			d.blockDeps[s.Block] = append(d.blockDeps[s.Block], idx)
		case tac.Mload:
			if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() {
				for _, st := range f.memSources(s, off.Uint64()) {
					onVar(st.Args[1], idx)
				}
			} else {
				for _, st := range f.memUnknown {
					onVar(st.Args[1], idx)
				}
			}
		case tac.Sha3:
			if words, ok := f.hashWordStores(s); ok {
				for _, stores := range words {
					for _, st := range stores {
						onVar(st.Args[1], idx)
					}
				}
			}
		case tac.Sload:
			switch cls := f.addrClass[s]; cls.kind {
			case addrConst:
				d.slotDeps[cls.slot] = append(d.slotDeps[cls.slot], idx)
			case addrElem:
				d.elemValDeps[cls.slot] = append(d.elemValDeps[cls.slot], idx)
			case addrUnknown:
				if a.cfg.ConservativeStorage {
					d.anyDeps = append(d.anyDeps, idx)
				}
			}
			d.allDeps = append(d.allDeps, idx)
		case tac.Sstore:
			if !a.cfg.ModelStorageTaint {
				break
			}
			d.blockDeps[s.Block] = append(d.blockDeps[s.Block], idx)
			onVar(s.Args[0], idx)
			onVar(s.Args[1], idx)
			if cls := f.addrClass[s]; cls.kind == addrElem {
				for _, k := range cls.keys {
					onVar(k, idx)
				}
			}
		default:
			if s.Op.IsArith() && s.Def != tac.NoVar {
				for _, arg := range s.Args {
					onVar(arg, idx)
				}
			}
		}
	}
	for b, conds := range a.g.guardsOf {
		for _, c := range conds {
			if a.g.effective[c] {
				d.condBlocks[c] = append(d.condBlocks[c], b)
			}
		}
	}
	return d
}

func (d *depGraph) markAll(ids []int32) {
	for _, i := range ids {
		d.dirty[i] = true
	}
}

func (d *depGraph) varChanged(v tac.VarID) { d.markAll(d.varDeps[v]) }

func (d *depGraph) slotChanged(slot u256.U256) {
	d.markAll(d.slotDeps[slot])
	d.markAll(d.anyDeps)
}

func (d *depGraph) elemValChanged(slot u256.U256) {
	d.markAll(d.elemValDeps[slot])
	d.markAll(d.anyDeps)
}

func (d *depGraph) allChanged() {
	d.markAll(d.allDeps)
	d.markAll(d.anyDeps)
}

func (d *depGraph) bypassChanged(cond tac.VarID) {
	for _, b := range d.condBlocks[cond] {
		d.markAll(d.blockDeps[b])
	}
}
