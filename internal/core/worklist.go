package core

import (
	"ethainter/internal/tac"
)

// curSentinel is depGraph.cur outside statement processing (guard sweep,
// round boundaries): no statement index exceeds it, so every mark defers to
// the next round.
const curSentinel = int32(1) << 30

// depGraph inverts every statement's fixpoint read set: which statements must
// be re-evaluated when a variable's taint, a storage slot, a mapping family,
// or the reachability of their block changes. It is the index behind the
// worklist fixpoint — a fact change dirties exactly its dependents instead of
// triggering a whole-program re-pass.
//
// All relations are dense — VarID, interned slot id, or Block.ID indexed —
// and the per-key dependent lists are flat-packed into one backing array by a
// counting pass. Pending statements live in an order-preserving dirty queue:
// a min-heap of statement indices for the current round plus an unordered
// next-round list, replicating the retired dirty[]-scan semantics exactly
// (see analysis.run). The whole object is pooled via analysis.pooledDeps.
//
// The guard-bypass sweep is not tracked here: it runs in full every round
// (guard conditions are few), and a bypass feeds back into statements through
// bypassChanged → block reachability.
type depGraph struct {
	// inQueue[i] marks stmts[i] pending (in heap or next); the dedup gate.
	inQueue []bool
	// heap is the min-heap of statement indices still to process this round.
	heap []int32
	// next collects indices marked at-or-before the current scan position;
	// they run next round.
	next []int32
	// cur is the index being processed; marks ≤ cur defer to the next round.
	cur int32

	// varDeps lists the statements reading varTaint[v], by VarID.
	varDeps [][]int32
	// slotDeps lists the statements reading slotTainted, by slot id.
	slotDeps [][]int32
	// elemValDeps lists the statements reading elemValueTainted, by slot id.
	elemValDeps [][]int32
	// anyDeps lists the statements reading anySlotTainted (conservative-mode
	// loads from unknown storage addresses).
	anyDeps []int32
	// allDeps lists the statements reading allTainted (every SLOAD).
	allDeps []int32
	// blockDeps lists the statements whose rules condition on reachable(b),
	// by Block.ID.
	blockDeps [][]int32
	// condBlocks lists the blocks whose reachability an effective guard
	// condition gates, by VarID.
	condBlocks [][]*tac.Block

	// Backing arenas: flat holds every dep list, condFlat every condBlocks
	// list, counts the counting-pass scratch.
	flat     []int32
	condFlat []*tac.Block
	counts   []int32
}

// scanDeps mirrors the read set of each stepStmt case, emitting one callback
// per (key, statement) edge. buildDeps runs it twice: once counting, once
// filling — the flat-packed lists need exact sizes up front.
func scanDeps(a *analysis,
	onVar func(tac.VarID, int32),
	onSlot, onElemVal func(int32, int32),
	onAny, onAll func(int32),
	onBlock func(int, int32),
) {
	f := a.f
	for i, s := range a.stmts {
		idx := int32(i)
		switch s.Op {
		case tac.Calldataload, tac.Callvalue, tac.Caller:
			if s.Block != nil {
				onBlock(s.Block.ID, idx)
			}
		case tac.Mload:
			if srcs, ok := f.memSrcAt(s); ok {
				for _, st := range srcs {
					onVar(st.Args[1], idx)
				}
			} else {
				for _, st := range f.memUnknown {
					onVar(st.Args[1], idx)
				}
			}
		case tac.Sha3:
			if words, ok := f.hashWordsAt(s); ok {
				for _, stores := range words {
					for _, st := range stores {
						onVar(st.Args[1], idx)
					}
				}
			}
		case tac.Sload:
			switch cls := f.addrClassAt(s); cls.kind {
			case addrConst:
				onSlot(cls.sid, idx)
			case addrElem:
				onElemVal(cls.sid, idx)
			case addrUnknown:
				if a.cfg.ConservativeStorage {
					onAny(idx)
				}
			}
			onAll(idx)
		case tac.Sstore:
			if !a.cfg.ModelStorageTaint {
				break
			}
			if s.Block != nil {
				onBlock(s.Block.ID, idx)
			}
			onVar(s.Args[0], idx)
			onVar(s.Args[1], idx)
			if cls := f.addrClassAt(s); cls.kind == addrElem {
				for _, k := range cls.keys {
					onVar(k, idx)
				}
			}
		default:
			if s.Op.IsArith() && s.Def != tac.NoVar {
				for _, arg := range s.Args {
					onVar(arg, idx)
				}
			}
		}
	}
}

// grownI32Slices recycles a pooled [][]int32 header array.
func grownI32Slices(buf [][]int32, n int) [][]int32 {
	if cap(buf) < n {
		return make([][]int32, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// grownBlockSlices recycles a pooled [][]*tac.Block header array.
func grownBlockSlices(buf [][]*tac.Block, n int) [][]*tac.Block {
	if cap(buf) < n {
		return make([][]*tac.Block, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// buildDeps scans the program twice — counting, then filling exact-sized
// flat-packed lists — reusing the analysis' pooled depGraph arenas.
func buildDeps(a *analysis) *depGraph {
	d := a.pooledDeps
	if d == nil {
		d = &depGraph{}
		a.pooledDeps = d
	}
	n := len(a.stmts)
	nv := len(a.varTaint)
	ns := a.f.numSlots()
	nb := len(a.g.guardsOf)

	d.cur = curSentinel
	d.inQueue = grownBools(d.inQueue, n)
	d.heap = d.heap[:0]
	d.next = d.next[:0]

	// Counting pass. One scratch buffer, partitioned per key space: vars,
	// slots (x2), blocks, conds.
	cnt := grownI32(d.counts, nv+ns+ns+nb+nv)
	d.counts = cnt
	slotOff, elemOff, blockOff, condOff := nv, nv+ns, nv+ns+ns, nv+ns+ns+nb
	total := 0
	anyCnt, allCnt := 0, 0
	scanDeps(a,
		func(v tac.VarID, _ int32) {
			if v >= 0 && int(v) < nv {
				cnt[v]++
				total++
			}
		},
		func(sid, _ int32) { cnt[slotOff+int(sid)]++; total++ },
		func(sid, _ int32) { cnt[elemOff+int(sid)]++; total++ },
		func(_ int32) { anyCnt++; total++ },
		func(_ int32) { allCnt++; total++ },
		func(bid int, _ int32) {
			if bid >= 0 && bid < nb {
				cnt[blockOff+bid]++
				total++
			}
		},
	)
	condTotal := 0
	for _, conds := range a.g.guardsOf {
		for _, c := range conds {
			if a.g.effective.get(c) {
				cnt[condOff+int(c)]++
				condTotal++
			}
		}
	}

	// Carve the flat arenas into per-key headers.
	if cap(d.flat) < total {
		d.flat = make([]int32, total)
	}
	flat := d.flat[:0]
	d.varDeps = grownI32Slices(d.varDeps, nv)
	d.slotDeps = grownI32Slices(d.slotDeps, ns)
	d.elemValDeps = grownI32Slices(d.elemValDeps, ns)
	d.blockDeps = grownI32Slices(d.blockDeps, nb)
	off := 0
	carve := func(c int) []int32 {
		seg := flat[off : off : off+c]
		off += c
		return seg
	}
	for v := 0; v < nv; v++ {
		d.varDeps[v] = carve(int(cnt[v]))
	}
	for s := 0; s < ns; s++ {
		d.slotDeps[s] = carve(int(cnt[slotOff+s]))
	}
	for s := 0; s < ns; s++ {
		d.elemValDeps[s] = carve(int(cnt[elemOff+s]))
	}
	for b := 0; b < nb; b++ {
		d.blockDeps[b] = carve(int(cnt[blockOff+b]))
	}
	d.anyDeps = carve(anyCnt)
	d.allDeps = carve(allCnt)

	// Fill pass: append into the exact-capacity headers.
	scanDeps(a,
		func(v tac.VarID, i int32) {
			if v >= 0 && int(v) < nv {
				d.varDeps[v] = append(d.varDeps[v], i)
			}
		},
		func(sid, i int32) { d.slotDeps[sid] = append(d.slotDeps[sid], i) },
		func(sid, i int32) { d.elemValDeps[sid] = append(d.elemValDeps[sid], i) },
		func(i int32) { d.anyDeps = append(d.anyDeps, i) },
		func(i int32) { d.allDeps = append(d.allDeps, i) },
		func(bid int, i int32) {
			if bid >= 0 && bid < nb {
				d.blockDeps[bid] = append(d.blockDeps[bid], i)
			}
		},
	)

	// condBlocks: invert guardsOf restricted to effective conditions.
	if cap(d.condFlat) < condTotal {
		d.condFlat = make([]*tac.Block, condTotal)
	}
	condFlat := d.condFlat[:0]
	d.condBlocks = grownBlockSlices(d.condBlocks, nv)
	coff := 0
	for c := 0; c < nv; c++ {
		n := int(cnt[condOff+c])
		d.condBlocks[c] = condFlat[coff : coff : coff+n]
		coff += n
	}
	for bid, conds := range a.g.guardsOf {
		b := blockByID(a, bid)
		for _, c := range conds {
			if a.g.effective.get(c) {
				d.condBlocks[c] = append(d.condBlocks[c], b)
			}
		}
	}
	return d
}

// blockByID resolves a Block.ID back to its block for condBlocks. Block ids
// are dense and equal to their position for decompiled programs; fall back to
// a scan otherwise.
func blockByID(a *analysis, id int) *tac.Block {
	blocks := a.f.prog.Blocks
	if id >= 0 && id < len(blocks) && blocks[id].ID == id {
		return blocks[id]
	}
	for _, b := range blocks {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// releaseRefs drops pointer references held by the pooled arenas so a parked
// depGraph does not retain a whole program.
func (d *depGraph) releaseRefs() {
	clear(d.condFlat[:cap(d.condFlat)])
}

// mark queues statement i: current round when the scan has not passed it yet
// (i > cur), next round otherwise. Already-pending statements stay put — the
// exact dirty[i]=true semantics of the retired array scan.
func (d *depGraph) mark(i int32) {
	if d.inQueue[i] {
		return
	}
	d.inQueue[i] = true
	if i > d.cur {
		d.heapPush(i)
	} else {
		d.next = append(d.next, i)
	}
}

func (d *depGraph) heapPush(i int32) {
	h := append(d.heap, i)
	j := len(h) - 1
	for j > 0 {
		p := (j - 1) / 2
		if h[p] <= h[j] {
			break
		}
		h[p], h[j] = h[j], h[p]
		j = p
	}
	d.heap = h
}

func (d *depGraph) heapPop() int32 {
	h := d.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	j := 0
	for {
		l, r := 2*j+1, 2*j+2
		m := j
		if l < len(h) && h[l] < h[m] {
			m = l
		}
		if r < len(h) && h[r] < h[m] {
			m = r
		}
		if m == j {
			break
		}
		h[j], h[m] = h[m], h[j]
		j = m
	}
	d.heap = h
	return top
}

func (d *depGraph) markAll(ids []int32) {
	for _, i := range ids {
		d.mark(i)
	}
}

func (d *depGraph) varChanged(v tac.VarID) {
	if int(v) < len(d.varDeps) {
		d.markAll(d.varDeps[v])
	}
}

func (d *depGraph) slotChanged(sid int32) {
	d.markAll(d.slotDeps[sid])
	d.markAll(d.anyDeps)
}

func (d *depGraph) elemValChanged(sid int32) {
	d.markAll(d.elemValDeps[sid])
	d.markAll(d.anyDeps)
}

func (d *depGraph) allChanged() {
	d.markAll(d.allDeps)
	d.markAll(d.anyDeps)
}

func (d *depGraph) bypassChanged(cond tac.VarID) {
	if int(cond) >= len(d.condBlocks) {
		return
	}
	for _, b := range d.condBlocks[cond] {
		if b != nil {
			d.markAll(d.blockDeps[b.ID])
		}
	}
}
