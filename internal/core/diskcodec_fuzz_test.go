package core

// Fuzz coverage for the disk-entry decoder. The decoder's inputs are not
// just local files anymore: the peer-fill protocol feeds it bytes received
// from the network, so it must never panic and never accept an entry whose
// trailing checksum doesn't match — on any input, not just torn local
// writes. The committed seed corpus (testdata/fuzz/FuzzDiskEntryDecode)
// replays on every plain `go test`; `make fuzz-smoke` runs the mutation
// engine proper.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
)

// diskEntrySeeds builds the seed inputs: the three valid entry kinds
// (report, budget error, generic error), damaged variants of the first
// (checksum flip, payload flip, truncation), and structural junk.
func diskEntrySeeds() [][]byte {
	var key reportKey
	copy(key.code[:], []byte("fuzz-seed-bytecode-hash-32-bytes"))
	key.cfg = 0xfeedface01020304
	limits := decompiler.DefaultLimits()

	rep := &Report{PublicFunctions: 2}
	rep.Stats.Blocks = 17
	rep.Warnings = []Warning{{
		Kind:    TaintedOwner,
		PC:      0x40,
		Message: "owner slot tainted",
		Witness: []Step{{Selector: [4]byte{1, 2, 3, 4}, NumArgs: 1}},
	}}

	valid := encodeEntry(key, limits, reportEntry{rep: rep})
	budget := encodeEntry(key, limits, reportEntry{err: &decompiler.BudgetError{Resource: "contexts", Limit: 6000}})
	generic := encodeEntry(key, limits, reportEntry{err: errors.New("decompiler: unresolvable jump target")})

	flipChecksum := append([]byte(nil), valid...)
	flipChecksum[len(flipChecksum)-1] ^= 0x01
	flipPayload := append([]byte(nil), valid...)
	flipPayload[len(flipPayload)/2] ^= 0x80

	return [][]byte{
		valid,
		budget,
		generic,
		flipChecksum,
		flipPayload,
		valid[:len(valid)/2],
		valid[:len(valid)-1],
		{},
		[]byte("ETHDISK1"),
		bytes.Repeat([]byte{0xff}, 64),
	}
}

// FuzzDiskEntryDecode feeds arbitrary bytes — and mutations of valid,
// bit-flipped, and truncated entries — through decodeEntry and enforces the
// trust-boundary contract:
//
//   - no input panics the decoder;
//   - an input only decodes when its trailing keccak-256 checksum verifies,
//     so a flipped or truncated entry can never yield a report;
//   - anything that decodes re-encodes canonically and round-trips.
func FuzzDiskEntryDecode(f *testing.F) {
	for _, seed := range diskEntrySeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		key, limits, e, err := decodeEntry(data)
		if err != nil {
			return
		}
		// Accepted ⇒ the checksum must actually verify: the decoder may never
		// hand out a report whose bytes don't hash to their trailer.
		if len(data) < 32 {
			t.Fatalf("decoded %d bytes, shorter than a checksum", len(data))
		}
		sum := crypto.Keccak256(data[:len(data)-32])
		if !bytes.Equal(sum[:], data[len(data)-32:]) {
			t.Fatal("decoder accepted an entry with a failing checksum")
		}
		// Exactly one of report and error is meaningful.
		if (e.rep == nil) == (e.err == nil) {
			t.Fatalf("decoded entry breaks the rep/err invariant: rep=%v err=%v", e.rep, e.err)
		}
		// Whatever decodes must re-encode and round-trip bit-for-bit — the
		// promotion path re-serializes peer-filled entries into local tiers.
		re := encodeEntry(key, limits, e)
		key2, limits2, e2, err2 := decodeEntry(re)
		if err2 != nil {
			t.Fatalf("re-encoded entry does not decode: %v", err2)
		}
		if key2 != key || limits2 != limits {
			t.Fatal("key/limits do not round-trip through re-encode")
		}
		if (e.rep == nil) != (e2.rep == nil) {
			t.Fatal("entry kind does not round-trip through re-encode")
		}
		if e.rep != nil && e.rep.Digest() != e2.rep.Digest() {
			t.Fatal("report digest does not round-trip through re-encode")
		}
		if e.err != nil && e.err.Error() != e2.err.Error() {
			t.Fatal("error text does not round-trip through re-encode")
		}
	})
}

// TestWriteDiskEntrySeedCorpus regenerates the committed seed corpus files
// from diskEntrySeeds when WRITE_FUZZ_SEEDS is set; otherwise it verifies
// the committed files are present and replayable, so the corpus cannot
// silently drift from the generator.
func TestWriteDiskEntrySeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDiskEntryDecode")
	seeds := diskEntrySeeds()
	if os.Getenv("WRITE_FUZZ_SEEDS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for i := range seeds {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("seed corpus file missing (regenerate with WRITE_FUZZ_SEEDS=1): %v", err)
		}
	}
}
