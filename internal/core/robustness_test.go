package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ethainter/internal/baselines/securify"
	"ethainter/internal/baselines/teether"
	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/decompiler"
	"ethainter/internal/evm"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

// Tools that ingest on-chain bytecode must never panic on arbitrary bytes —
// every malformed input is an error (or an empty result), not a crash. These
// properties fuzz the decompiler, the analysis, and the baselines with three
// classes of input: pure random bytes, random valid-opcode sequences, and
// random mutations of real compiled contracts.

func randomOpcodeSoup(r *rand.Rand) []byte {
	n := 1 + r.Intn(300)
	out := make([]byte, 0, n)
	for len(out) < n {
		op := evm.Op(r.Intn(256))
		out = append(out, byte(op))
		for i := 0; i < op.PushSize(); i++ {
			out = append(out, byte(r.Intn(256)))
		}
	}
	return out
}

func mutateReal(r *rand.Rand, runtime []byte) []byte {
	out := append([]byte{}, runtime...)
	for i := 0; i < 1+r.Intn(8); i++ {
		out[r.Intn(len(out))] = byte(r.Intn(256))
	}
	return out
}

func TestNoPanicsOnArbitraryBytecode(t *testing.T) {
	real := victimRuntime(t)
	teeCfg := teether.DefaultConfig()
	teeCfg.MaxPaths = 50
	teeCfg.MaxSteps = 500

	f := func(seed int64, raw []byte) bool {
		r := rand.New(rand.NewSource(seed))
		inputs := [][]byte{raw, randomOpcodeSoup(r), mutateReal(r, real)}
		for _, code := range inputs {
			// Decompiler: error or program, never panic.
			if prog, err := decompiler.Decompile(code); err == nil {
				core.Analyze(prog, core.DefaultConfig())
				if _, derr := core.AnalyzeDatalog(prog, core.DefaultConfig()); derr != nil {
					t.Logf("datalog failed where Go analysis succeeded: %v", derr)
					return false
				}
			}
			// Baselines.
			_, _ = securify.AnalyzeBytecode(code)
			teether.Analyze(code, teeCfg)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func victimRuntime(t *testing.T) []byte {
	t.Helper()
	out, err := compileVictim()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// The interpreter itself must also survive arbitrary bytecode: execution ends
// in an error or a normal halt, never a crash, and always terminates within
// the gas budget.
func TestEVMSurvivesArbitraryBytecode(t *testing.T) {
	f := func(seed int64, raw []byte) bool {
		r := rand.New(rand.NewSource(seed))
		for _, code := range [][]byte{raw, randomOpcodeSoup(r)} {
			if len(code) == 0 {
				continue
			}
			runArbitrary(code, raw)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// helpers shared by the fuzz tests

func compileVictim() ([]byte, error) {
	out, err := minisol.CompileSource(minisol.VictimSource)
	if err != nil {
		return nil, err
	}
	return out.Runtime, nil
}

func runArbitrary(code, input []byte) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1_000_000))
	addr := c.DeployRuntime(code, u256.FromUint64(100))
	c.Call(caller, addr, input, u256.Zero)
}
