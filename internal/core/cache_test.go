package core_test

import (
	"reflect"
	"sync"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/minisol"
)

// TestCacheReportsEqualFresh pins cached results to fresh analysis: for every
// corpus contract and every ablation config, the report served by the cache
// deep-equals the one computed from scratch (up to stage timings, which
// measure wall clock and differ on a hit by construction).
func TestCacheReportsEqualFresh(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(80, 7))
	cache := core.NewCache(0)
	for name, cfg := range ablationConfigs() {
		for _, c := range contracts {
			fresh, freshErr := core.AnalyzeBytecode(c.Runtime, cfg)
			cached, cachedErr := cache.AnalyzeBytecode(c.Runtime, cfg)
			if (freshErr == nil) != (cachedErr == nil) {
				t.Fatalf("%s %s#%d: fresh err %v, cached err %v", name, c.Family, c.Index, freshErr, cachedErr)
			}
			if freshErr != nil {
				continue
			}
			if !reflect.DeepEqual(stripTimings(fresh), stripTimings(cached)) {
				t.Fatalf("%s %s#%d: cached report diverges from fresh\nfresh:  %+v\ncached: %+v",
					name, c.Family, c.Index, fresh, cached)
			}
		}
	}
	if s := cache.Stats(); s.Hits == 0 {
		t.Errorf("corpus has duplicated bytecode but cache recorded no hits: %+v", s)
	}
}

// TestCacheConfigIsolation checks that configs with different fingerprints
// never share report entries: the same bytecode analyzed under default and
// noGuards configs must reflect each config's own rules, not the first
// cached answer.
func TestCacheConfigIsolation(t *testing.T) {
	compiled := minisol.MustCompile(minisol.VictimSource)
	def := core.DefaultConfig()
	noGuards := core.DefaultConfig()
	noGuards.ModelGuards = false
	if def.Fingerprint() == noGuards.Fingerprint() {
		t.Fatal("distinct configs share a fingerprint")
	}

	cache := core.NewCache(0)
	gotDef, err := cache.AnalyzeBytecode(compiled.Runtime, def)
	if err != nil {
		t.Fatal(err)
	}
	gotNG, err := cache.AnalyzeBytecode(compiled.Runtime, noGuards)
	if err != nil {
		t.Fatal(err)
	}
	wantDef, _ := core.AnalyzeBytecode(compiled.Runtime, def)
	wantNG, _ := core.AnalyzeBytecode(compiled.Runtime, noGuards)
	if !reflect.DeepEqual(stripTimings(gotDef), stripTimings(wantDef)) {
		t.Error("default-config entry corrupted by config sharing")
	}
	if !reflect.DeepEqual(stripTimings(gotNG), stripTimings(wantNG)) {
		t.Error("noGuards-config entry corrupted by config sharing")
	}
	if reflect.DeepEqual(stripTimings(gotDef), stripTimings(gotNG)) {
		t.Error("default and noGuards reports identical — configs appear to share cache entries")
	}
	if s := cache.Stats(); s.Misses != 2 || s.Hits != 0 || s.Entries != 2 {
		t.Errorf("want 2 misses / 0 hits / 2 entries, got %+v", s)
	}
}

// TestCacheCounters exercises hits, misses, negative caching, and eviction.
func TestCacheCounters(t *testing.T) {
	a := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := core.DefaultConfig()

	cache := core.NewCache(1)
	if _, err := cache.AnalyzeBytecode(a, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.AnalyzeBytecode(a, cfg); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("want 1 hit / 1 miss, got %+v", s)
	}

	// Garbage bytecode: the decompile error itself is cached.
	bad := []byte{0x56} // bare JUMP: unresolvable target
	if _, err := cache.AnalyzeBytecode(bad, cfg); err == nil {
		t.Fatal("garbage bytecode should fail")
	}
	if _, err := cache.AnalyzeBytecode(bad, cfg); err == nil {
		t.Fatal("cached failure should still fail")
	}
	s := cache.Stats()
	if s.Hits != 2 {
		t.Errorf("negative entry should hit, got %+v", s)
	}
	// Capacity 1: inserting the bad entry evicted the good one.
	if s.Evictions == 0 || s.Entries != 1 {
		t.Errorf("want eviction at capacity 1, got %+v", s)
	}
	if _, err := cache.AnalyzeBytecode(a, cfg); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 3 {
		t.Errorf("evicted entry should miss again, got %+v", s)
	}
}

// TestCacheShardedSaturation saturates an explicitly 8-sharded cache with 8
// goroutines re-sweeping a duplicated corpus: the race detector checks the
// per-shard locking, the merged Stats() view must equal the sum of the
// per-shard split, and every cached result must equal fresh analysis — the
// sharding changes lock granularity, never content.
func TestCacheShardedSaturation(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(24, 13))
	cfg := core.DefaultConfig()
	cache := core.NewCacheSharded(0, 8)
	if got := cache.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for i := range contracts {
					c := contracts[(i+g)%len(contracts)]
					cache.AnalyzeBytecode(c.Runtime, cfg)
				}
			}
		}(g)
	}
	wg.Wait()

	merged := cache.Stats()
	split := cache.ShardStats()
	if len(split) != 8 || merged.Shards != 8 {
		t.Fatalf("per-shard split has %d entries, merged reports %d shards; want 8", len(split), merged.Shards)
	}
	var sum core.CacheStats
	for _, sh := range split {
		sum.Hits += sh.Hits
		sum.Misses += sh.Misses
		sum.Evictions += sh.Evictions
		sum.Entries += sh.Entries
		sum.Contended += sh.Contended
	}
	if sum.Hits != merged.Hits || sum.Misses != merged.Misses ||
		sum.Entries != merged.Entries || sum.Contended != merged.Contended {
		t.Errorf("per-shard sums %+v diverge from merged view %+v", sum, merged)
	}
	if merged.Hits == 0 {
		t.Errorf("8 goroutines x 4 rounds over a duplicated corpus recorded no hits: %+v", merged)
	}

	for _, c := range contracts {
		fresh, err := core.AnalyzeBytecode(c.Runtime, cfg)
		if err != nil {
			continue
		}
		cached, err := cache.AnalyzeBytecode(c.Runtime, cfg)
		if err != nil {
			t.Fatalf("%s#%d: cached err %v after saturation", c.Family, c.Index, err)
		}
		if !reflect.DeepEqual(stripTimings(fresh), stripTimings(cached)) {
			t.Fatalf("%s#%d: sharded cache diverges from fresh", c.Family, c.Index)
		}
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over a small
// corpus; the race detector checks the locking, and every result must match
// the fresh analysis.
func TestCacheConcurrent(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(20, 11))
	cfg := core.DefaultConfig()
	cache := core.NewCache(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range contracts {
				c := contracts[(i+g)%len(contracts)]
				cache.AnalyzeBytecode(c.Runtime, cfg)
			}
		}(g)
	}
	wg.Wait()
	for _, c := range contracts {
		fresh, err := core.AnalyzeBytecode(c.Runtime, cfg)
		if err != nil {
			continue
		}
		cached, err := cache.AnalyzeBytecode(c.Runtime, cfg)
		if err != nil {
			t.Fatalf("%s#%d: cached err %v after concurrent fill", c.Family, c.Index, err)
		}
		if !reflect.DeepEqual(stripTimings(fresh), stripTimings(cached)) {
			t.Fatalf("%s#%d: concurrent cache diverges from fresh", c.Family, c.Index)
		}
	}
}

// TestSharedFactsConcurrentConfigs races every ablation config against one
// bytecode through one cache: all configs land on the same program key, so
// one goroutine computes the shared facts stratum inside the singleflight and
// the rest analyze concurrently on top of it. Under -race this is the proof
// that facts are safely shareable — any residual mutation of the stratum
// during guards/fixpoint is a detected data race — and every report must
// still match the uncached pipeline bit-for-bit.
func TestSharedFactsConcurrentConfigs(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(12, 20200617))
	configs := ablationConfigs()
	for _, c := range contracts {
		cache := core.NewCache(0)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for name, cfg := range configs {
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(name string, cfg core.Config) {
					defer wg.Done()
					<-start
					got, err := cache.AnalyzeBytecode(c.Runtime, cfg)
					if err != nil {
						return // decompile failures are uniform across configs
					}
					want, err := core.AnalyzeBytecode(c.Runtime, cfg)
					if err != nil {
						t.Errorf("%s %s#%d: fresh analysis failed after cached succeeded: %v", name, c.Family, c.Index, err)
						return
					}
					if !reflect.DeepEqual(stripTimings(got), stripTimings(want)) {
						t.Errorf("%s %s#%d: shared-facts report diverges from fresh", name, c.Family, c.Index)
					}
				}(name, cfg)
			}
		}
		close(start)
		wg.Wait()
		if st := cache.Stats(); st.FactsMisses > 1 {
			t.Fatalf("%s#%d: FactsMisses = %d, want at most 1 (one program, one facts computation)",
				c.Family, c.Index, st.FactsMisses)
		}
	}
}
