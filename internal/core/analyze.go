package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ethainter/internal/decompiler"
	"ethainter/internal/tac"
)

// Analyze runs the Ethainter analysis over a decompiled program using the
// worklist fixpoint.
func Analyze(prog *tac.Program, cfg Config) *Report {
	r, _ := analyze(context.Background(), prog, cfg, false)
	return r
}

// AnalyzeContext is Analyze with cancellation: the fixpoint checks ctx
// between passes and aborts with ctx.Err() once the deadline expires or the
// caller goes away. The serving layer uses it to bound per-request work.
func AnalyzeContext(ctx context.Context, prog *tac.Program, cfg Config) (*Report, error) {
	return analyze(ctx, prog, cfg, false)
}

// AnalyzeReference runs the same analysis with the pre-worklist fixpoint
// (every pass re-evaluates every statement). It exists as the differential-
// testing oracle: its reports — warnings, witnesses, and stats — must be
// identical to Analyze's up to stage timings.
func AnalyzeReference(prog *tac.Program, cfg Config) *Report {
	r, _ := analyze(context.Background(), prog, cfg, true)
	return r
}

func analyze(ctx context.Context, prog *tac.Program, cfg Config, reference bool) (*Report, error) {
	t0 := time.Now()
	f := computeFacts(prog)
	return analyzeOnFacts(ctx, f, time.Since(t0), cfg, reference)
}

// analyzeOnFacts runs the config-dependent tail of the analysis — guards,
// taint fixpoint, detectors — over precomputed (possibly cache-shared) facts.
// factsTime is whatever facts work this caller actually performed: the real
// computeFacts wall for a fresh computation, zero when the facts came out of
// the cache's program memo (mirroring how memoized decompile time is
// attributed).
func analyzeOnFacts(ctx context.Context, f *facts, factsTime time.Duration, cfg Config, reference bool) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prog := f.prog
	t1 := time.Now()
	g := computeGuards(f, cfg)
	t2 := time.Now()
	a := newAnalysis(cfg, f, g)
	a.ctx = ctx
	var runErr error
	if reference {
		runErr = a.runReference()
	} else {
		runErr = a.run()
	}
	if runErr != nil {
		a.release()
		return nil, runErr
	}
	t3 := time.Now()

	r := &Report{PublicFunctions: len(prog.Functions)}
	detect(a, r)
	t4 := time.Now()
	r.Stats.Timings.Facts = factsTime
	r.Stats.Timings.Guards = t2.Sub(t1)
	r.Stats.Timings.Fixpoint = t3.Sub(t2)
	r.Stats.Timings.Detect = t4.Sub(t3)

	// Stats.
	r.Stats.Blocks = len(prog.Blocks)
	r.Stats.Statements = len(f.stmts)
	for _, b := range prog.Blocks {
		if a.reachable(b) {
			r.Stats.ReachableBlocks++
		}
	}
	r.Stats.TaintedVars = a.taintedVarCount
	r.Stats.TaintedSlots = a.slotTaintedCount
	r.Stats.BypassedGuards = a.bypassedCount
	r.Stats.EffectiveGuards = g.numEffective
	r.Stats.FixpointPasses = a.passes
	r.Stats.InferredOwnerSlot = g.ownerSlotCount
	a.release()
	return r, nil
}

// AnalyzeBytecode decompiles and analyzes runtime bytecode under the
// config's decompilation budgets.
func AnalyzeBytecode(code []byte, cfg Config) (*Report, error) {
	return AnalyzeBytecodeContext(context.Background(), code, cfg)
}

// AnalyzeBytecodeContext is AnalyzeBytecode with cancellation and resource
// governance, end to end: the decompiler's value-set fixpoint, translation,
// and function discovery all poll ctx on a cheap stride and charge against
// cfg.DecompileLimits, and the analysis fixpoint polls ctx between passes.
// The returned error is ctx.Err() when the deadline expires or the caller
// disconnects (classify with IsCancellation), a decompiler.ErrBudgetExhausted
// wrapper when the bytecode demands more work than the budget allows
// (IsBudgetExhaustion — deterministic, cacheable), or an ErrInternal wrapper
// when a panic was recovered at this boundary (IsInternal). There is
// deliberately no pre-flight ctx check here: cancellation is enforced by the
// real polling inside the pipeline, which an already-expired context trips
// on its first stride.
func AnalyzeBytecodeContext(ctx context.Context, code []byte, cfg Config) (rep *Report, err error) {
	defer recoverToError(&err)
	t0 := time.Now()
	prog, dt, err := decompiler.DecompileTimed(ctx, code, cfg.DecompileLimits)
	if err != nil {
		if IsCancellation(err) {
			return nil, err
		}
		return nil, fmt.Errorf("ethainter: %w", err)
	}
	decompileTime := time.Since(t0)
	r, err := AnalyzeContext(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	r.Stats.Timings.setDecompile(decompileTime, dt)
	return r, nil
}

// detect runs the five vulnerability detectors of Section 3 over the fixpoint
// results.
func detect(a *analysis, r *Report) {
	type key struct {
		kind VulnKind
		pc   int
	}
	seen := map[key]bool{}
	add := func(w Warning) {
		k := key{kind: w.Kind, pc: w.PC}
		if seen[k] {
			return
		}
		seen[k] = true
		r.Warnings = append(r.Warnings, w)
	}
	f := a.f

	// finishWitness appends the sink's own invoking function.
	finishWitness := func(wit []Step, b *tac.Block) []Step {
		out := appendSteps([]Step{}, wit)
		if step, ok := f.stepFor(b); ok {
			out = appendSteps(out, []Step{step})
		}
		return out
	}
	// taintedSinkArg implements the dual rule for "tainted X" sinks: input
	// taint counts only when the sink is attacker-reachable (an effective
	// guard sanitizes it — Guard-2); storage taint always counts (Guard-1).
	taintedSinkArg := func(s *tac.Stmt, arg tac.VarID) ([]Step, bool) {
		k := a.taintOf(arg)
		if k&taintSt != 0 {
			return a.witVarOf(arg), true
		}
		if k&(taintIn|taintSender) != 0 && a.reachable(s.Block) {
			return a.witVarOf(arg), true
		}
		return nil, false
	}

	f.prog.AllStmts(func(s *tac.Stmt) {
		switch s.Op {
		case tac.SelfdestructOp:
			if a.reachable(s.Block) {
				add(Warning{
					Kind:    AccessibleSelfdestruct,
					PC:      s.PC,
					Witness: finishWitness(a.reachWitness(s.Block), s.Block),
					Message: "SELFDESTRUCT is executable by an arbitrary caller",
				})
			}
			if wit, ok := taintedSinkArg(s, s.Args[0]); ok {
				add(Warning{
					Kind:    TaintedSelfdestruct,
					PC:      s.PC,
					Witness: finishWitness(wit, s.Block),
					Message: "SELFDESTRUCT beneficiary is attacker-influenced",
				})
			}
		case tac.Delegatecall, tac.Callcode:
			if wit, ok := taintedSinkArg(s, s.Args[1]); ok {
				add(Warning{
					Kind:    TaintedDelegatecall,
					PC:      s.PC,
					Witness: finishWitness(wit, s.Block),
					Message: "DELEGATECALL target is attacker-influenced",
				})
			}
		case tac.Sstore:
			cls := f.addrClassAt(s)
			if cls.kind != addrConst || !a.g.isOwnerSlot(cls.sid) {
				return
			}
			if !a.reachable(s.Block) {
				return
			}
			if a.taintOf(s.Args[1]) == 0 {
				return
			}
			wit := appendSteps(a.reachWitness(s.Block), a.witVarOf(s.Args[1]))
			add(Warning{
				Kind:    TaintedOwner,
				PC:      s.PC,
				Slot:    cls.slot,
				Witness: finishWitness(wit, s.Block),
				Message: fmt.Sprintf("attacker-reachable tainted write to owner slot %s", cls.slot),
			})
		case tac.Staticcall:
			checkStaticcall(a, s, add)
		}
	})
	sort.Slice(r.Warnings, func(i, j int) bool {
		if r.Warnings[i].Kind != r.Warnings[j].Kind {
			return r.Warnings[i].Kind < r.Warnings[j].Kind
		}
		return r.Warnings[i].PC < r.Warnings[j].PC
	})
}

// checkStaticcall detects the 0x-exchange pattern (Section 3.5): a reachable
// STATICCALL whose output buffer overlaps its tainted input buffer, with no
// RETURNDATASIZE check between the call and the readback — so a short return
// reflects attacker input as trusted output.
func checkStaticcall(a *analysis, s *tac.Stmt, add func(Warning)) {
	f := a.f
	// Args: gas, addr, inOff, inLen, outOff, outLen.
	inOff, ok1 := f.constOf.get(s.Args[2])
	outOff, ok2 := f.constOf.get(s.Args[4])
	outLen, ok3 := f.constOf.get(s.Args[5])
	if !ok1 || !ok2 || !ok3 {
		return
	}
	if outLen.IsZero() || inOff != outOff {
		return
	}
	if !a.reachable(s.Block) {
		return
	}
	// The input region (or the callee address) must be attacker-influenced.
	influenced := a.taintOf(s.Args[1]) != 0
	var wit []Step
	if !influenced {
		if srcs, ok := f.memSrcAt(s); ok {
			for _, st := range srcs {
				if a.taintOf(st.Args[1]) != 0 {
					influenced = true
					wit = a.witVarOf(st.Args[1])
				}
			}
		}
	}
	if !influenced {
		return
	}
	// A RETURNDATASIZE in the call's block after it, or in a successor within
	// two hops, counts as the fixed pattern.
	if hasReturndatasizeAfter(s) {
		return
	}
	out := appendSteps(a.reachWitness(s.Block), wit)
	if step, okStep := f.stepFor(s.Block); okStep {
		out = appendSteps(out, []Step{step})
	}
	add(Warning{
		Kind:    UncheckedStaticcall,
		PC:      s.PC,
		Witness: out,
		Message: "STATICCALL output overlaps tainted input with no RETURNDATASIZE check",
	})
}

func hasReturndatasizeAfter(s *tac.Stmt) bool {
	for _, later := range s.Block.Stmts[s.Idx:] {
		if later.Op == tac.Returndatasize {
			return true
		}
	}
	frontier := s.Block.Succs
	for hop := 0; hop < 2; hop++ {
		var next []*tac.Block
		for _, b := range frontier {
			for _, st := range b.Stmts {
				if st.Op == tac.Returndatasize {
					return true
				}
			}
			next = append(next, b.Succs...)
		}
		frontier = next
	}
	return false
}
