package core_test

import (
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/minisol"
)

func analyzeSrc(t *testing.T, src string, cfg core.Config) *core.Report {
	t.Helper()
	out, err := minisol.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r, err := core.AnalyzeBytecode(out.Runtime, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return r
}

func kinds(r *core.Report) map[core.VulnKind]bool {
	m := map[core.VulnKind]bool{}
	for _, w := range r.Warnings {
		m[w.Kind] = true
	}
	return m
}

// The paper's Section 2 Victim: both primitive vulnerabilities must surface,
// and the accessible-selfdestruct witness must be the composite escalation
// registerSelf -> referAdmin -> kill.
func TestVictimComposite(t *testing.T) {
	r := analyzeSrc(t, minisol.VictimSource, core.DefaultConfig())
	k := kinds(r)
	if !k[core.AccessibleSelfdestruct] {
		t.Error("missing accessible selfdestruct")
	}
	if !k[core.TaintedSelfdestruct] {
		t.Error("missing tainted selfdestruct")
	}
	if k[core.TaintedDelegatecall] || k[core.UncheckedStaticcall] {
		t.Errorf("spurious warnings: %v", r.Warnings)
	}
	// Witness chain of the accessible selfdestruct.
	for _, w := range r.ByKind(core.AccessibleSelfdestruct) {
		var names []string
		for _, s := range w.Witness {
			names = append(names, selName(s))
		}
		want := []string{"registerSelf()", "referAdmin(address)", "kill()"}
		if len(names) != len(want) {
			t.Fatalf("witness = %v, want %v", names, want)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("witness = %v, want %v", names, want)
			}
		}
	}
}

// selName maps a selector back to a signature for the known test fixtures.
func selName(s core.Step) string {
	sigs := []string{
		"registerSelf()", "referUser(address)", "referAdmin(address)",
		"changeOwner(address)", "kill()", "initOwner(address)",
		"initAdmin(address)", "migrate(address)", "transfer(address,uint256)",
		"isValidSignature(address,uint256)", "settle(address,uint256)",
	}
	for _, sig := range sigs {
		if minisol.SelectorOf(sig) == s.Selector {
			return sig
		}
	}
	return s.String()
}

func TestTaintedOwnerExample(t *testing.T) {
	r := analyzeSrc(t, minisol.TaintedOwnerSource, core.DefaultConfig())
	k := kinds(r)
	if !k[core.TaintedOwner] {
		t.Error("missing tainted owner variable")
	}
	// The broken guard also exposes the selfdestruct itself.
	if !k[core.AccessibleSelfdestruct] {
		t.Error("missing accessible selfdestruct (guard is taintable)")
	}
	if !k[core.TaintedSelfdestruct] {
		t.Error("missing tainted selfdestruct (beneficiary is the tainted owner)")
	}
}

func TestTaintedSelfdestructExample(t *testing.T) {
	r := analyzeSrc(t, minisol.TaintedSelfdestructSource, core.DefaultConfig())
	k := kinds(r)
	if !k[core.TaintedSelfdestruct] {
		t.Error("missing tainted selfdestruct: initAdmin taints the beneficiary")
	}
	// The owner guard itself is intact: owner is never written post-deploy,
	// so the selfdestruct is NOT accessible.
	if k[core.AccessibleSelfdestruct] {
		t.Error("selfdestruct behind an intact owner guard must not be accessible")
	}
}

func TestAccessibleSelfdestructExample(t *testing.T) {
	r := analyzeSrc(t, minisol.AccessibleSelfdestructSource, core.DefaultConfig())
	if !kinds(r)[core.AccessibleSelfdestruct] {
		t.Error("missing accessible selfdestruct on unguarded kill()")
	}
	// The beneficiary is a clean storage constant: not a tainted selfdestruct.
	if kinds(r)[core.TaintedSelfdestruct] {
		t.Error("beneficiary is untainted; tainted selfdestruct is a false positive")
	}
}

func TestTaintedDelegatecallExample(t *testing.T) {
	r := analyzeSrc(t, minisol.TaintedDelegatecallSource, core.DefaultConfig())
	if !kinds(r)[core.TaintedDelegatecall] {
		t.Error("missing tainted delegatecall on public migrate()")
	}
}

func TestGuardedDelegatecallNotFlagged(t *testing.T) {
	src := `
contract SafeProxy {
    address owner;
    constructor() { owner = msg.sender; }
    function migrate(address delegate) public {
        require(msg.sender == owner);
        delegatecall(delegate);
    }
}`
	r := analyzeSrc(t, src, core.DefaultConfig())
	if kinds(r)[core.TaintedDelegatecall] {
		t.Error("owner-guarded delegatecall must not be flagged")
	}
}

func TestUncheckedStaticcallExample(t *testing.T) {
	r := analyzeSrc(t, minisol.UncheckedStaticcallSource, core.DefaultConfig())
	if !kinds(r)[core.UncheckedStaticcall] {
		t.Error("missing unchecked tainted staticcall")
	}
}

func TestCheckedStaticcallNotFlagged(t *testing.T) {
	src := `
contract SafeExchange {
    function isValidSignature(address wallet, uint256 hash) public returns (uint256) {
        return staticcall_checked(wallet, hash);
    }
}`
	r := analyzeSrc(t, src, core.DefaultConfig())
	if kinds(r)[core.UncheckedStaticcall] {
		t.Error("RETURNDATASIZE-checked staticcall must not be flagged")
	}
}

// The well-guarded token is the negative control: no warnings at all.
func TestSafeTokenClean(t *testing.T) {
	r := analyzeSrc(t, minisol.SafeTokenSource, core.DefaultConfig())
	if len(r.Warnings) != 0 {
		t.Errorf("safe token flagged: %v", r.Warnings)
	}
	if r.PublicFunctions != 6 {
		t.Errorf("public functions = %d, want 6", r.PublicFunctions)
	}
}

// Figure 8a: without storage modeling, composite vulnerabilities disappear.
func TestAblationNoStorage(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ModelStorageTaint = false
	r := analyzeSrc(t, minisol.VictimSource, cfg)
	k := kinds(r)
	if k[core.AccessibleSelfdestruct] || k[core.TaintedSelfdestruct] {
		t.Errorf("composite escalation needs storage modeling; got %v", r.Warnings)
	}
	// The tainted-owner example also needs storage taint.
	r2 := analyzeSrc(t, minisol.TaintedSelfdestructSource, cfg)
	if kinds(r2)[core.TaintedSelfdestruct] {
		t.Error("tainted selfdestruct requires taint through storage")
	}
}

// Figure 8b: without guard modeling, guarded sinks are flagged too (false
// positives on the safe token).
func TestAblationNoGuards(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ModelGuards = false
	r := analyzeSrc(t, minisol.SafeTokenSource, cfg)
	if !kinds(r)[core.AccessibleSelfdestruct] {
		t.Error("without guard modeling, the owner-guarded kill must be (wrongly) flagged")
	}
}

// Figure 8c: conservative storage modeling flags the safe token's
// mapping-mediated flows.
func TestAblationConservativeStorage(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ConservativeStorage = true
	r := analyzeSrc(t, minisol.SafeTokenSource, cfg)
	if len(r.Warnings) == 0 {
		t.Skip("conservative mode produced no extra warnings on this fixture")
	}
}

// A contract whose owner guard can be bought: the "ownership can be bought"
// true-positive class of Figure 6.
func TestBuyableOwnership(t *testing.T) {
	src := `
contract Buyable {
    address owner;
    uint256 price = 100;
    constructor() { owner = msg.sender; }
    function buyOwnership() public payable {
        require(msg.value >= price);
        owner = msg.sender;
    }
    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}`
	r := analyzeSrc(t, src, core.DefaultConfig())
	if !kinds(r)[core.AccessibleSelfdestruct] {
		t.Error("buyable ownership should expose the selfdestruct")
	}
}

// Inter-function flow: the tainted value takes a detour through an internal
// helper before hitting the owner slot.
func TestInterFunctionTaintFlow(t *testing.T) {
	src := `
contract Indirect {
    address owner;
    constructor() { owner = msg.sender; }
    function setOwnerInner(address o) internal {
        owner = o;
    }
    function update(address o) public {
        setOwnerInner(o);
    }
    function kill() public {
        require(msg.sender == owner);
        selfdestruct(owner);
    }
}`
	r := analyzeSrc(t, src, core.DefaultConfig())
	k := kinds(r)
	if !k[core.TaintedOwner] {
		t.Error("missing tainted owner through internal call")
	}
	if !k[core.AccessibleSelfdestruct] {
		t.Error("missing accessible selfdestruct via tainted guard")
	}
}

// Nested mapping permission structure: allowance-style escalation.
func TestNestedMappingGuard(t *testing.T) {
	src := `
contract Nested {
    mapping(address => mapping(address => bool)) perms;
    address treasury;
    constructor() { treasury = msg.sender; }
    function grant(address who) public {
        perms[msg.sender][who] = true;
    }
    function kill() public {
        require(perms[msg.sender][msg.sender]);
        selfdestruct(treasury);
    }
}`
	r := analyzeSrc(t, src, core.DefaultConfig())
	if !kinds(r)[core.AccessibleSelfdestruct] {
		t.Error("attacker controls perms membership; kill should be reachable")
	}
}

// A modifier-guarded admin structure where admins can only be added by the
// owner: no escalation path, no warnings.
func TestClosedAdminStructureClean(t *testing.T) {
	src := `
contract Closed {
    address owner;
    mapping(address => bool) admins;
    constructor() { owner = msg.sender; }
    modifier onlyOwner() { require(msg.sender == owner); _; }
    modifier onlyAdmins() { require(admins[msg.sender]); _; }
    function addAdmin(address a) public onlyOwner {
        admins[a] = true;
    }
    function kill() public onlyAdmins {
        selfdestruct(owner);
    }
}`
	r := analyzeSrc(t, src, core.DefaultConfig())
	if len(r.Warnings) != 0 {
		t.Errorf("closed admin structure flagged: %v", r.Warnings)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := analyzeSrc(t, minisol.VictimSource, core.DefaultConfig())
	if r.Stats.Blocks == 0 || r.Stats.Statements == 0 {
		t.Error("stats not populated")
	}
	if r.Stats.EffectiveGuards == 0 {
		t.Error("victim has sender-scrutinizing guards")
	}
	if r.Stats.BypassedGuards == 0 {
		t.Error("victim's guards should be bypassed by the escalation")
	}
}

func BenchmarkAnalyzeVictim(b *testing.B) {
	out := minisol.MustCompile(minisol.VictimSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeBytecode(out.Runtime, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// Unresolved storage addressing (fixed arrays): the default analysis leaves
// unresolved loads untainted (precision by under-approximation); the
// conservative ablation lets them read any tainted slot, producing the
// Figure 8c false positive.
func TestConservativeStorageAblation(t *testing.T) {
	src := `
contract BackupVault {
    address owner;
    uint256 memo;
    address[4] backups;
    constructor() { owner = msg.sender; }
    function setMemo(uint256 m) public { memo = m; }
    function setBackup(uint256 i, address who) public {
        require(msg.sender == owner);
        require(i < 4);
        backups[i] = who;
    }
    function retire(uint256 i) public {
        require(msg.sender == owner);
        require(i < 4);
        selfdestruct(backups[i]);
    }
}`
	def := analyzeSrc(t, src, core.DefaultConfig())
	if len(def.Warnings) != 0 {
		t.Errorf("default analysis should stay clean: %v", def.Warnings)
	}
	cfg := core.DefaultConfig()
	cfg.ConservativeStorage = true
	cons := analyzeSrc(t, src, cfg)
	if !kinds(cons)[core.TaintedSelfdestruct] {
		t.Errorf("conservative mode should flag the unresolved beneficiary load: %v", cons.Warnings)
	}
}
