package core_test

import (
	"fmt"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// kindsCompared are the vulnerability classes both implementations cover (the
// staticcall detector's memory-region logic stays in Go).
var kindsCompared = []core.VulnKind{
	core.AccessibleSelfdestruct,
	core.TaintedSelfdestruct,
	core.TaintedOwner,
	core.TaintedDelegatecall,
}

// engineWorkerCounts are the Datalog worker counts every differential runs
// at: sequential, the smallest genuinely parallel setting, and an
// oversubscribed one (more workers than this machine has cores).
var engineWorkerCounts = []int{1, 2, 8}

// compareImplementations runs the Go fixpoint and the Datalog rules on the
// same bytecode and requires identical (kind, pc) violation sets. The Datalog
// side runs at several worker counts: parallelism must change neither the
// rules' agreement with the Go fixpoint nor anything else observable.
func compareImplementations(t *testing.T, label string, runtime []byte) {
	t.Helper()
	prog, err := decompiler.Decompile(runtime)
	if err != nil {
		t.Fatalf("%s: decompile: %v", label, err)
	}
	cfg := core.DefaultConfig()
	goRep := core.Analyze(prog, cfg)
	for _, workers := range engineWorkerCounts {
		cfg.Parallelism = workers
		dlRep, err := core.AnalyzeDatalog(prog, cfg)
		if err != nil {
			t.Fatalf("%s: datalog (workers=%d): %v", label, workers, err)
		}
		for _, kind := range kindsCompared {
			goPCs := map[int]bool{}
			for _, w := range goRep.ByKind(kind) {
				goPCs[w.PC] = true
			}
			dlPCs := dlRep[kind]
			for pc := range goPCs {
				if !dlPCs[pc] {
					t.Errorf("%s: [%s] workers=%d pc=%d found by Go fixpoint, missed by Datalog rules", label, kind, workers, pc)
				}
			}
			for pc := range dlPCs {
				if !goPCs[pc] {
					t.Errorf("%s: [%s] workers=%d pc=%d found by Datalog rules, missed by Go fixpoint", label, kind, workers, pc)
				}
			}
		}
	}
}

// The paper fixtures: both implementations must agree statement-for-statement.
func TestDatalogMatchesFixtures(t *testing.T) {
	fixtures := map[string]string{
		"victim":       minisol.VictimSource,
		"taintedOwner": minisol.TaintedOwnerSource,
		"delegate":     minisol.TaintedDelegatecallSource,
		"killable":     minisol.AccessibleSelfdestructSource,
		"taintedSelfd": minisol.TaintedSelfdestructSource,
		"token":        minisol.SafeTokenSource,
	}
	for name, src := range fixtures {
		t.Run(name, func(t *testing.T) {
			out, err := minisol.CompileSource(src)
			if err != nil {
				t.Fatal(err)
			}
			compareImplementations(t, name, out.Runtime)
		})
	}
}

// Differential over the corpus: every compilable contract must produce
// identical violation sets from both implementations.
func TestDatalogMatchesGoOnCorpus(t *testing.T) {
	cs := corpus.Generate(corpus.Profile{
		N: 220, VulnFraction: 0.35, TrapFraction: 0.12, ExoticFraction: 0,
		SourceFraction: 1, Solc058Fraction: 1, Seed: 1234,
	})
	for _, c := range cs {
		compareImplementations(t, fmt.Sprintf("%s/%d", c.Family, c.Index), c.Runtime)
	}
}

// The Datalog route finds the composite escalation in the Victim contract.
func TestDatalogVictimComposite(t *testing.T) {
	out := minisol.MustCompile(minisol.VictimSource)
	prog, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeDatalog(prog, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res[core.AccessibleSelfdestruct]) == 0 {
		t.Error("datalog rules missed the composite accessible selfdestruct")
	}
	if len(res[core.TaintedSelfdestruct]) == 0 {
		t.Error("datalog rules missed the tainted selfdestruct")
	}
}

// TestParallelismFingerprintNeutral pins the cache contract: Parallelism is
// scheduling, not semantics, so configs differing only in it must share a
// fingerprint (and therefore cache entries), while every behavior-affecting
// field must still split it.
func TestParallelismFingerprintNeutral(t *testing.T) {
	base := core.DefaultConfig()
	want := base.Fingerprint()
	for _, workers := range []int{-1, 0, 1, 2, 64} {
		cfg := base
		cfg.Parallelism = workers
		if got := cfg.Fingerprint(); got != want {
			t.Errorf("Parallelism=%d changed the fingerprint: %x vs %x", workers, got, want)
		}
	}
	flipped := base
	flipped.ModelGuards = !flipped.ModelGuards
	if flipped.Fingerprint() == want {
		t.Error("flipping ModelGuards did not change the fingerprint")
	}
}

// TestAnalyzeDatalogTimedStages checks the engine stage breakdown surfaces
// through StageTimings: a parallel run must report fixpoint time and populate
// the engine sub-stages that refine it.
func TestAnalyzeDatalogTimedStages(t *testing.T) {
	out := minisol.MustCompile(minisol.VictimSource)
	prog, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Parallelism = 2
	res, timings, err := core.AnalyzeDatalogTimed(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[core.AccessibleSelfdestruct]) == 0 {
		t.Error("timed variant lost the composite accessible selfdestruct")
	}
	if timings.Fixpoint <= 0 {
		t.Errorf("Fixpoint stage not timed: %+v", timings)
	}
	if timings.EngineJoin <= 0 {
		t.Errorf("EngineJoin stage not timed: %+v", timings)
	}
	if sub := timings.EngineIndex + timings.EngineJoin + timings.EngineMerge; sub > timings.Total() {
		t.Errorf("engine sub-stages (%v) exceed Total (%v): sub-breakdown leaked into the top-level sum", sub, timings.Total())
	}
}

func BenchmarkAnalyzeDatalogVictim(b *testing.B) {
	out := minisol.MustCompile(minisol.VictimSource)
	prog, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeDatalog(prog, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
