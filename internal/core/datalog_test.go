package core_test

import (
	"fmt"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// kindsCompared are the vulnerability classes both implementations cover (the
// staticcall detector's memory-region logic stays in Go).
var kindsCompared = []core.VulnKind{
	core.AccessibleSelfdestruct,
	core.TaintedSelfdestruct,
	core.TaintedOwner,
	core.TaintedDelegatecall,
}

// compareImplementations runs the Go fixpoint and the Datalog rules on the
// same bytecode and requires identical (kind, pc) violation sets.
func compareImplementations(t *testing.T, label string, runtime []byte) {
	t.Helper()
	prog, err := decompiler.Decompile(runtime)
	if err != nil {
		t.Fatalf("%s: decompile: %v", label, err)
	}
	cfg := core.DefaultConfig()
	goRep := core.Analyze(prog, cfg)
	dlRep, err := core.AnalyzeDatalog(prog, cfg)
	if err != nil {
		t.Fatalf("%s: datalog: %v", label, err)
	}
	for _, kind := range kindsCompared {
		goPCs := map[int]bool{}
		for _, w := range goRep.ByKind(kind) {
			goPCs[w.PC] = true
		}
		dlPCs := dlRep[kind]
		for pc := range goPCs {
			if !dlPCs[pc] {
				t.Errorf("%s: [%s] pc=%d found by Go fixpoint, missed by Datalog rules", label, kind, pc)
			}
		}
		for pc := range dlPCs {
			if !goPCs[pc] {
				t.Errorf("%s: [%s] pc=%d found by Datalog rules, missed by Go fixpoint", label, kind, pc)
			}
		}
	}
}

// The paper fixtures: both implementations must agree statement-for-statement.
func TestDatalogMatchesFixtures(t *testing.T) {
	fixtures := map[string]string{
		"victim":       minisol.VictimSource,
		"taintedOwner": minisol.TaintedOwnerSource,
		"delegate":     minisol.TaintedDelegatecallSource,
		"killable":     minisol.AccessibleSelfdestructSource,
		"taintedSelfd": minisol.TaintedSelfdestructSource,
		"token":        minisol.SafeTokenSource,
	}
	for name, src := range fixtures {
		t.Run(name, func(t *testing.T) {
			out, err := minisol.CompileSource(src)
			if err != nil {
				t.Fatal(err)
			}
			compareImplementations(t, name, out.Runtime)
		})
	}
}

// Differential over the corpus: every compilable contract must produce
// identical violation sets from both implementations.
func TestDatalogMatchesGoOnCorpus(t *testing.T) {
	cs := corpus.Generate(corpus.Profile{
		N: 220, VulnFraction: 0.35, TrapFraction: 0.12, ExoticFraction: 0,
		SourceFraction: 1, Solc058Fraction: 1, Seed: 1234,
	})
	for _, c := range cs {
		compareImplementations(t, fmt.Sprintf("%s/%d", c.Family, c.Index), c.Runtime)
	}
}

// The Datalog route finds the composite escalation in the Victim contract.
func TestDatalogVictimComposite(t *testing.T) {
	out := minisol.MustCompile(minisol.VictimSource)
	prog, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeDatalog(prog, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res[core.AccessibleSelfdestruct]) == 0 {
		t.Error("datalog rules missed the composite accessible selfdestruct")
	}
	if len(res[core.TaintedSelfdestruct]) == 0 {
		t.Error("datalog rules missed the tainted selfdestruct")
	}
}

func BenchmarkAnalyzeDatalogVictim(b *testing.B) {
	out := minisol.MustCompile(minisol.VictimSource)
	prog, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeDatalog(prog, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
