package core

// This file is the persistent tier below the in-memory cache shards: a
// hash-keyed, one-file-per-key store (fanned out over 256 directories by the
// first byte of the bytecode hash) holding serialized Reports and
// deterministic negative entries. It is what turns a process restart from
// "re-analyze the world" into "re-open the world": the paper's deployment
// story is whole-chain analysis over ~240K unique contracts, and durable
// content-addressed results are how Gigahorse-style pipelines amortize that
// cost across runs.
//
// Write protocol (crash-safe): serialize, write to <final>.tmp, fsync the
// file, rename over the final name, fsync the directory. A crash at any
// point leaves either the old state, a stray .tmp (removed by the next
// scrub), or the complete new entry — never a half-entry under the final
// name. The trailing checksum inside each entry catches whatever a
// filesystem still manages to tear.
//
// Startup scrub: Open walks the store and drops every .tmp leftover and
// every entry that fails validation — bad magic, unknown format version,
// fingerprint-scheme mismatch, failed checksum, truncated payload. Version
// and scheme mismatches are expected after an upgrade (the format version is
// tied to the fingerprint scheme); dropping them re-computes those entries
// rather than mis-decoding them.

import (
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"ethainter/internal/decompiler"
)

// diskEntryExt is the filename suffix of a committed entry; temp files add
// ".tmp" on top and are never read as entries.
const diskEntryExt = ".ent"

// diskQueueDepth bounds the write-behind queue. Puts beyond it block the
// computing goroutine — backpressure, not loss: a dropped write would turn
// the next restart's "zero analyses" warm start into silent recomputation.
const diskQueueDepth = 256

// DiskTierStats is a snapshot of the tier-level counters. The read-side
// hit/miss split lives on the cache shards (CacheStats.DiskHits/DiskMisses);
// these cover the write and scrub side, which has no per-shard structure.
type DiskTierStats struct {
	// Entries is the live committed entry count: entries that survived the
	// startup scrub plus new writes since.
	Entries int64 `json:"entries"`
	// Writes counts entries durably committed (fsync + rename completed).
	Writes uint64 `json:"writes"`
	// WriteErrors counts write-behind attempts that failed; the entry simply
	// stays memory-only and the next restart recomputes it.
	WriteErrors uint64 `json:"write_errors"`
	// Scrubbed counts entries dropped as torn, stale-format, or mismatched —
	// at startup or lazily when a read trips over one.
	Scrubbed uint64 `json:"scrubbed"`
}

// DiskTier is the durable cache tier. One tier owns one directory; a single
// process (and within it, a single writer goroutine) writes at a time —
// concurrent readers are safe, concurrent writers from multiple processes
// are not supported (the scrub would race their temp files).
//
// Get is synchronous (one file read); Put is write-behind through a bounded
// queue drained by a dedicated writer goroutine. Close flushes the queue and
// must be called before discarding the tier, or entries computed near
// shutdown may not persist.
type DiskTier struct {
	dir string

	entries     atomic.Int64
	writes      atomic.Uint64
	writeErrors atomic.Uint64
	scrubbed    atomic.Uint64

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	queue  chan diskWrite
	done   chan struct{}
}

type diskWrite struct {
	path string
	data []byte
}

// OpenDiskTier opens (creating if needed) the persistent tier rooted at dir,
// scrubbing torn and version-mismatched entries before returning. The
// returned tier is ready to attach to a Cache via SetDiskTier.
func OpenDiskTier(dir string) (*DiskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: opening disk cache tier: %w", err)
	}
	t := &DiskTier{
		dir:   dir,
		queue: make(chan diskWrite, diskQueueDepth),
		done:  make(chan struct{}),
	}
	if err := t.scrub(); err != nil {
		return nil, fmt.Errorf("core: scrubbing disk cache tier: %w", err)
	}
	go t.writer()
	return t, nil
}

// Dir returns the tier's root directory.
func (t *DiskTier) Dir() string { return t.dir }

// Stats returns a snapshot of the tier-level counters. Valid after Close.
func (t *DiskTier) Stats() DiskTierStats {
	return DiskTierStats{
		Entries:     t.entries.Load(),
		Writes:      t.writes.Load(),
		WriteErrors: t.writeErrors.Load(),
		Scrubbed:    t.scrubbed.Load(),
	}
}

// Close drains the write-behind queue and stops the writer. Puts arriving
// after Close are dropped (counted as write errors). Idempotent.
func (t *DiskTier) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return nil
	}
	t.closed = true
	close(t.queue)
	t.mu.Unlock()
	<-t.done
	return nil
}

// scrub walks the store once at startup: stray temp files are removed, and
// every committed entry is fully validated (header, version, fingerprint
// scheme, checksum, payload decode) — the invalid ones deleted and counted.
// Intact entries are counted into the live-entry gauge and left untouched.
func (t *DiskTier) scrub() error {
	return filepath.WalkDir(t.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if filepath.Ext(path) == ".tmp" {
			os.Remove(path)
			t.scrubbed.Add(1)
			return nil
		}
		if filepath.Ext(path) != diskEntryExt {
			return nil // not ours; leave foreign files alone
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			os.Remove(path)
			t.scrubbed.Add(1)
			return nil
		}
		if _, _, _, derr := decodeEntry(data); derr != nil {
			os.Remove(path)
			t.scrubbed.Add(1)
			return nil
		}
		t.entries.Add(1)
		return nil
	})
}

// pathFor maps a report key to its entry file: fanned out by the first hash
// byte so no single directory collects the whole chain, named by the full
// bytecode hash plus the config fingerprint so distinct configs never alias.
func (t *DiskTier) pathFor(key reportKey) string {
	return filepath.Join(t.dir,
		hex.EncodeToString(key.code[:1]),
		hex.EncodeToString(key.code[:])+"-"+fmt.Sprintf("%016x", key.cfg)+diskEntryExt)
}

// get reads one entry, fully validating it. A missing file is a plain miss;
// a present-but-invalid file (torn write that survived a crash, stale
// format, or — never expected — a key echo that disagrees with the filename)
// is lazily scrubbed and reported as a miss so the caller recomputes.
func (t *DiskTier) get(key reportKey, limits decompiler.Limits) (reportEntry, bool) {
	path := t.pathFor(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return reportEntry{}, false
	}
	gotKey, gotLimits, e, derr := decodeEntry(data)
	if derr != nil || gotKey != key || gotLimits != limits {
		os.Remove(path)
		t.scrubbed.Add(1)
		t.entries.Add(-1)
		return reportEntry{}, false
	}
	return e, true
}

// put serializes the entry on the caller's goroutine (the outcome is
// immutable, so this races with nothing) and hands the durable write to the
// writer. Blocks only when the queue is full — backpressure over loss.
func (t *DiskTier) put(key reportKey, limits decompiler.Limits, e reportEntry) {
	w := diskWrite{path: t.pathFor(key), data: encodeEntry(key, limits, e)}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		t.writeErrors.Add(1)
		return
	}
	t.queue <- w
}

// writer drains the write-behind queue until Close, committing each entry
// with the crash-safe temp + fsync + rename protocol.
func (t *DiskTier) writer() {
	defer close(t.done)
	for w := range t.queue {
		if err := t.commit(w); err != nil {
			t.writeErrors.Add(1)
		} else {
			t.writes.Add(1)
		}
	}
}

// commit durably writes one entry. Failures leave no temp debris behind
// (best effort) and never corrupt an existing committed entry: the final
// name only ever changes via an atomic rename of a fully synced file.
func (t *DiskTier) commit(w diskWrite) error {
	dir := filepath.Dir(w.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	_, statErr := os.Lstat(w.path)
	existed := statErr == nil

	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(w.data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself: fsync the containing directory. Failure
	// here is tolerable (the entry is still visible; a crash may lose it,
	// and the next cold run recomputes), so it is not an error.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	if !existed {
		t.entries.Add(1)
	}
	return nil
}
