package core

// This file is the persistent tier below the in-memory cache shards: a
// hash-keyed, one-file-per-key store (fanned out over 256 directories by the
// first byte of the bytecode hash) holding serialized Reports and
// deterministic negative entries. It is what turns a process restart from
// "re-analyze the world" into "re-open the world": the paper's deployment
// story is whole-chain analysis over ~240K unique contracts, and durable
// content-addressed results are how Gigahorse-style pipelines amortize that
// cost across runs.
//
// Write protocol (crash-safe): serialize, write to a uniquely-named temp file
// next to the final name, fsync the file, rename over the final name, fsync
// the directory. A crash at any point leaves either the old state, a stray
// temp file (removed by the next scrub), or the complete new entry — never a
// half-entry under the final name. The trailing checksum inside each entry
// catches whatever a filesystem still manages to tear.
//
// Multi-writer: several processes may share one directory. Entries are
// content-addressed and the codec is deterministic, so two writers racing on
// one key rename byte-identical files — last-writer-wins is a no-op. Temp
// names embed the pid plus a process-local sequence number, so concurrent
// commits never collide on a temp file. The entry/byte gauges are therefore
// only ever estimates between scrubs: a foreign writer adds files this
// process never counts, a foreign eviction removes files it still counts.
// Every scrub and every eviction sweep recounts the directory from scratch
// (Store, not Add), and the incremental decrements in between are clamped at
// zero — the gauges drift, they never go negative, and they re-converge on
// the next sweep.
//
// Startup scrub: Open walks the store and drops every temp-file leftover and
// every entry that fails validation — bad magic, unknown format version,
// fingerprint-scheme mismatch, failed checksum, truncated payload. Version
// and scheme mismatches are expected after an upgrade (the format version is
// tied to the fingerprint scheme); dropping them re-computes those entries
// rather than mis-decoding them. Removing another live writer's in-flight
// temp file here is possible but harmless: its rename fails, the write is
// counted as a WriteError, and the entry is simply recomputed next restart.
//
// Size budget: an optional byte budget (OpenDiskTierBudget) caps the store.
// When a commit pushes the total past the budget, the writer goroutine
// sweeps the directory oldest-first (modification time, then path) down to
// a low-water mark below the budget — hysteresis, so one sweep buys many
// writes before the next. The scrub applies the same policy at startup.

import (
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ethainter/internal/decompiler"
)

// diskEntryExt is the filename suffix of a committed entry; temp files use
// ".tmp" and are never read as entries.
const diskEntryExt = ".ent"

// diskQueueDepth bounds the write-behind queue. Puts beyond it block the
// computing goroutine — backpressure, not loss: a dropped write would turn
// the next restart's "zero analyses" warm start into silent recomputation.
const diskQueueDepth = 256

// diskTmpSeq distinguishes concurrent commits inside one process; the pid in
// the temp name distinguishes processes sharing the directory.
var diskTmpSeq atomic.Uint64

// DiskTierStats is a snapshot of the tier-level counters. The read-side
// hit/miss split lives on the cache shards (CacheStats.DiskHits/DiskMisses);
// these cover the write and scrub side, which has no per-shard structure.
type DiskTierStats struct {
	// Entries is the live committed entry count as of the last recount,
	// adjusted by this process's writes and lazy scrubs since. Exact for a
	// single writer; an estimate (never negative) when the directory is
	// shared.
	Entries int64 `json:"entries"`
	// Bytes is the committed entry bytes under the same accounting.
	Bytes int64 `json:"bytes"`
	// Writes counts entries durably committed (fsync + rename completed).
	Writes uint64 `json:"writes"`
	// WriteErrors counts write-behind attempts that failed; the entry simply
	// stays memory-only and the next restart recomputes it.
	WriteErrors uint64 `json:"write_errors"`
	// Scrubbed counts entries dropped as torn, stale-format, or mismatched —
	// at startup or lazily when a read trips over one.
	Scrubbed uint64 `json:"scrubbed"`
	// Evictions counts intact entries removed oldest-first to keep the store
	// under its byte budget.
	Evictions uint64 `json:"evictions"`
}

// DiskTier is the durable cache tier. One tier owns one directory, with one
// writer goroutine per process; multiple processes may share the directory —
// the rename commit is last-writer-wins idempotent and the counters recount
// on every sweep (see the file comment for the exact guarantees).
//
// Get is synchronous (one file read); Put is write-behind through a bounded
// queue drained by the writer goroutine. Close flushes the queue and must be
// called before discarding the tier, or entries computed near shutdown may
// not persist.
type DiskTier struct {
	dir      string
	maxBytes int64 // 0 = unbounded

	entries     atomic.Int64
	bytes       atomic.Int64
	writes      atomic.Uint64
	writeErrors atomic.Uint64
	scrubbed    atomic.Uint64
	evictions   atomic.Uint64

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	queue  chan diskWrite
	done   chan struct{}
}

type diskWrite struct {
	path string
	data []byte
}

// OpenDiskTier opens (creating if needed) the persistent tier rooted at dir
// with no size budget, scrubbing torn and version-mismatched entries before
// returning. The returned tier is ready to attach to a Cache via SetDiskTier.
func OpenDiskTier(dir string) (*DiskTier, error) {
	return OpenDiskTierBudget(dir, 0)
}

// OpenDiskTierBudget is OpenDiskTier with a byte budget: when maxBytes > 0,
// the store is kept under it by evicting intact entries oldest-first (the
// -cache-max-disk-bytes flag on the daemons). maxBytes <= 0 means unbounded.
func OpenDiskTierBudget(dir string, maxBytes int64) (*DiskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: opening disk cache tier: %w", err)
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	t := &DiskTier{
		dir:      dir,
		maxBytes: maxBytes,
		queue:    make(chan diskWrite, diskQueueDepth),
		done:     make(chan struct{}),
	}
	if err := t.scrub(); err != nil {
		return nil, fmt.Errorf("core: scrubbing disk cache tier: %w", err)
	}
	go t.writer()
	return t, nil
}

// Dir returns the tier's root directory.
func (t *DiskTier) Dir() string { return t.dir }

// Stats returns a snapshot of the tier-level counters. Valid after Close.
func (t *DiskTier) Stats() DiskTierStats {
	return DiskTierStats{
		Entries:     t.entries.Load(),
		Bytes:       t.bytes.Load(),
		Writes:      t.writes.Load(),
		WriteErrors: t.writeErrors.Load(),
		Scrubbed:    t.scrubbed.Load(),
		Evictions:   t.evictions.Load(),
	}
}

// Close drains the write-behind queue and stops the writer. Puts arriving
// after Close are dropped (counted as write errors). Idempotent.
func (t *DiskTier) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return nil
	}
	t.closed = true
	close(t.queue)
	t.mu.Unlock()
	<-t.done
	return nil
}

// diskFile is one committed entry seen by a directory sweep.
type diskFile struct {
	path  string
	size  int64
	mtime int64 // UnixNano; eviction order is oldest-first, path tiebreak
}

// sweep walks the store once, removing temp leftovers and invalid entries
// (counted as scrubbed), and returns the surviving intact entries.
func (t *DiskTier) sweep() ([]diskFile, error) {
	var files []diskFile
	err := filepath.WalkDir(t.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A file deleted under the walk by a concurrent scrub or eviction
			// is not our problem; skip it rather than aborting the sweep.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		if filepath.Ext(path) == ".tmp" {
			os.Remove(path)
			t.scrubbed.Add(1)
			return nil
		}
		if filepath.Ext(path) != diskEntryExt {
			return nil // not ours; leave foreign files alone
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				return nil // lost a race with a concurrent remover
			}
			os.Remove(path)
			t.scrubbed.Add(1)
			return nil
		}
		if _, _, _, derr := decodeEntry(data); derr != nil {
			os.Remove(path)
			t.scrubbed.Add(1)
			return nil
		}
		info, ierr := d.Info()
		var mtime int64
		if ierr == nil {
			mtime = info.ModTime().UnixNano()
		}
		files = append(files, diskFile{path: path, size: int64(len(data)), mtime: mtime})
		return nil
	})
	return files, err
}

// scrub recounts the store from scratch — stray temp files removed, every
// committed entry fully validated (header, version, fingerprint scheme,
// checksum, payload decode), invalid ones deleted and counted — applies the
// byte budget, and Stores the resulting entry/byte totals, replacing
// whatever the incremental gauges had drifted to.
func (t *DiskTier) scrub() error {
	files, err := t.sweep()
	if err != nil {
		return err
	}
	files = t.evictToBudget(files)
	var total int64
	for _, f := range files {
		total += f.size
	}
	t.entries.Store(int64(len(files)))
	t.bytes.Store(total)
	return nil
}

// diskLowWaterNum/Den set the eviction target below the budget (9/10): a
// sweep frees a tranche of headroom instead of one entry's worth, so the
// full-directory walk amortizes over many subsequent writes.
const (
	diskLowWaterNum = 9
	diskLowWaterDen = 10
)

// evictToBudget removes intact entries oldest-first until the total is at or
// under the low-water mark, returning the survivors. No-op without a budget
// or under it.
func (t *DiskTier) evictToBudget(files []diskFile) []diskFile {
	if t.maxBytes <= 0 {
		return files
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	if total <= t.maxBytes {
		return files
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].path < files[j].path
	})
	target := t.maxBytes * diskLowWaterNum / diskLowWaterDen
	i := 0
	for ; i < len(files) && total > target; i++ {
		os.Remove(files[i].path)
		t.evictions.Add(1)
		total -= files[i].size
	}
	return files[i:]
}

// pathFor maps a report key to its entry file: fanned out by the first hash
// byte so no single directory collects the whole chain, named by the full
// bytecode hash plus the config fingerprint so distinct configs never alias.
func (t *DiskTier) pathFor(key reportKey) string {
	return filepath.Join(t.dir,
		hex.EncodeToString(key.code[:1]),
		hex.EncodeToString(key.code[:])+"-"+fmt.Sprintf("%016x", key.cfg)+diskEntryExt)
}

// dropCounted adjusts the gauges for one lazily-scrubbed or foreign-removed
// entry, clamped at zero — a foreign writer may have deleted entries this
// process counted, and the gauges must drift, not underflow.
func (t *DiskTier) dropCounted(size int64) {
	addClamped(&t.entries, -1)
	addClamped(&t.bytes, -size)
}

// addClamped is an atomic add that floors the result at zero.
func addClamped(v *atomic.Int64, delta int64) {
	for {
		cur := v.Load()
		next := cur + delta
		if next < 0 {
			next = 0
		}
		if v.CompareAndSwap(cur, next) {
			return
		}
	}
}

// get reads one entry, fully validating it. A missing file is a plain miss;
// a present-but-invalid file (torn write that survived a crash, stale
// format, or — never expected — a key echo that disagrees with the filename)
// is lazily scrubbed and reported as a miss so the caller recomputes.
func (t *DiskTier) get(key reportKey, limits decompiler.Limits) (reportEntry, bool) {
	path := t.pathFor(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return reportEntry{}, false
	}
	gotKey, gotLimits, e, derr := decodeEntry(data)
	if derr != nil || gotKey != key || gotLimits != limits {
		os.Remove(path)
		t.scrubbed.Add(1)
		t.dropCounted(int64(len(data)))
		return reportEntry{}, false
	}
	e.limits = gotLimits
	return e, true
}

// getRaw reads one entry's serialized bytes, validating structure and key
// echo but not the caller's limits — the peer-fill serving path, where the
// requesting replica re-verifies everything (checksum included) itself.
// Invalid files are lazily scrubbed exactly as in get.
func (t *DiskTier) getRaw(key reportKey) ([]byte, bool) {
	path := t.pathFor(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	gotKey, _, _, derr := decodeEntry(data)
	if derr != nil || gotKey != key {
		os.Remove(path)
		t.scrubbed.Add(1)
		t.dropCounted(int64(len(data)))
		return nil, false
	}
	return data, true
}

// put serializes the entry on the caller's goroutine (the outcome is
// immutable, so this races with nothing) and hands the durable write to the
// writer. Blocks only when the queue is full — backpressure over loss.
func (t *DiskTier) put(key reportKey, limits decompiler.Limits, e reportEntry) {
	w := diskWrite{path: t.pathFor(key), data: encodeEntry(key, limits, e)}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		t.writeErrors.Add(1)
		return
	}
	t.queue <- w
}

// writer drains the write-behind queue until Close, committing each entry
// with the crash-safe temp + fsync + rename protocol and running the
// eviction sweep whenever a commit pushes the store past its budget.
func (t *DiskTier) writer() {
	defer close(t.done)
	for w := range t.queue {
		if err := t.commit(w); err != nil {
			t.writeErrors.Add(1)
			continue
		}
		t.writes.Add(1)
		if t.maxBytes > 0 && t.bytes.Load() > t.maxBytes {
			// Over budget: full recount + oldest-first eviction down to the
			// low-water mark. Runs on this goroutine — commits queue behind
			// it, which is the backpressure we want while over budget — and
			// doubles as the drift-healing recount for shared directories.
			if files, err := t.sweep(); err == nil {
				files = t.evictToBudget(files)
				var total int64
				for _, f := range files {
					total += f.size
				}
				t.entries.Store(int64(len(files)))
				t.bytes.Store(total)
			}
		}
	}
}

// commit durably writes one entry. Failures leave no temp debris behind
// (best effort) and never corrupt an existing committed entry: the final
// name only ever changes via an atomic rename of a fully synced file, and
// temp names are unique per (process, commit) so concurrent writers sharing
// the directory never clobber each other mid-write.
func (t *DiskTier) commit(w diskWrite) error {
	dir := filepath.Dir(w.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var oldSize int64
	info, statErr := os.Lstat(w.path)
	existed := statErr == nil
	if existed {
		oldSize = info.Size()
	}

	tmp := fmt.Sprintf("%s.%d-%d.tmp", w.path, os.Getpid(), diskTmpSeq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(w.data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself: fsync the containing directory. Failure
	// here is tolerable (the entry is still visible; a crash may lose it,
	// and the next cold run recomputes), so it is not an error.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	if !existed {
		t.entries.Add(1)
	}
	addClamped(&t.bytes, int64(len(w.data))-oldSize)
	return nil
}
