package core_test

import (
	"reflect"
	"runtime"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/decompiler"
)

// ablationConfigs covers the default configuration and every Figure 8
// variant, so the worklist fixpoint is differentially pinned to the reference
// under each rule set.
func ablationConfigs() map[string]core.Config {
	noGuards := core.DefaultConfig()
	noGuards.ModelGuards = false
	noStorage := core.DefaultConfig()
	noStorage.ModelStorageTaint = false
	conservative := core.DefaultConfig()
	conservative.ConservativeStorage = true
	noOwner := core.DefaultConfig()
	noOwner.InferOwnerSinks = false
	return map[string]core.Config{
		"default":      core.DefaultConfig(),
		"noGuards":     noGuards,
		"noStorage":    noStorage,
		"conservative": conservative,
		"noOwnerSinks": noOwner,
	}
}

// stripTimings clears the stage timing fields, the only part of a report the
// two fixpoints are allowed to differ on.
func stripTimings(r *core.Report) core.Report {
	out := *r
	out.Stats.Timings = core.StageTimings{}
	return out
}

// TestWorklistMatchesReferenceCorpus requires the worklist fixpoint to
// reproduce the reference (global re-pass) fixpoint bit-for-bit — warnings,
// witness chains, and stats including the pass count — over the full default
// corpus and every ablation config.
func TestWorklistMatchesReferenceCorpus(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(200, 20200615))
	configs := ablationConfigs()
	// Parallelism is fingerprint-neutral scheduling: the report must match the
	// oracle at any worker count, so each pair is checked sequentially, at two
	// workers, and at one worker per core.
	workerCounts := []int{1, 2, runtime.NumCPU()}
	compared := 0
	for _, c := range contracts {
		prog, err := decompiler.Decompile(c.Runtime)
		if err != nil {
			continue // exotic contracts; decompile failures count as timeouts
		}
		for name, cfg := range configs {
			want := stripTimings(core.AnalyzeReference(prog, cfg))
			for _, workers := range workerCounts {
				cfg.Parallelism = workers
				got := stripTimings(core.Analyze(prog, cfg))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s #%d [%s] workers=%d: worklist report diverges from reference\nworklist:  %+v\nreference: %+v",
						c.Family, c.Index, name, workers, got, want)
				}
			}
			compared++
		}
	}
	if compared == 0 {
		t.Fatal("no contracts compared")
	}
	t.Logf("compared %d (contract, config) pairs", compared)
}
