// Package core implements the Ethainter analysis — the paper's primary
// contribution — over the decompiled 3-address representation (package tac).
//
// The analysis mirrors the Figure 5 skeleton: StaticallyGuardedStatement is
// computed from dominators over require-style branches; ReachableByAttacker,
// TaintedFlow, and the attacker-model information flow are mutually recursive
// and run to fixpoint; guards sanitize input taint only when they scrutinize
// msg.sender (directly or through sender-keyed storage data structures, the
// DS/DSA relations of Figure 4); taint that reaches persistent storage
// survives guards (Guard-1); and owner-variable sinks are inferred per
// Section 4.5. Every derived fact carries a witness — the ordered list of
// public entry points whose invocation establishes it — which Ethainter-Kill
// replays as a concrete multi-transaction exploit.
package core

import (
	"fmt"
	"time"

	"ethainter/internal/decompiler"
	"ethainter/internal/u256"
)

// Config selects the analysis variants of Section 6.4 (Figure 8).
type Config struct {
	// ModelGuards enables guard modeling. Disabling it reproduces the
	// "No Guard Model" ablation (Figure 8b): every guard is treated as
	// non-sanitizing, collapsing precision.
	ModelGuards bool
	// ModelStorageTaint enables taint propagation through persistent storage
	// and thus across transactions. Disabling it reproduces "No Storage
	// Modeling" (Figure 8a): composite vulnerabilities disappear,
	// collapsing completeness.
	ModelStorageTaint bool
	// ConservativeStorage treats stores to statically unknown storage
	// addresses as writing every location and loads from unknown addresses
	// as reading any tainted one — the Securify-style modeling of
	// Figure 8c. Off by default (the paper's deliberate precision choice).
	ConservativeStorage bool
	// InferOwnerSinks enables the Section 4.5 owner-variable sink inference
	// driving the "tainted owner variable" vulnerability.
	InferOwnerSinks bool
	// Parallelism is the Datalog engine worker count for the declarative
	// analysis path (AnalyzeDatalog): 0 or 1 evaluates sequentially, larger
	// values fan every fixpoint iteration across that many workers, and
	// negative values resolve to GOMAXPROCS. Reports are bit-identical at
	// any setting — the engine's least fixpoint is unique and its merge
	// order deterministic — so this knob is deliberately excluded from
	// Fingerprint and cache entries are shared across settings.
	Parallelism int
	// DecompileLimits is the decompilation work budget: max (block, depth)
	// contexts, max value-set worklist steps, and max translated statements.
	// The zero value selects the decompiler defaults (which reproduce the
	// historical constants exactly). Unlike Parallelism, the limits change
	// outcomes — a contract near a budget decompiles under one setting and
	// fails under another — so they ARE folded into Fingerprint and cache
	// entries never alias across budgets.
	DecompileLimits decompiler.Limits
}

// DefaultConfig is the production Ethainter configuration.
func DefaultConfig() Config {
	return Config{
		ModelGuards:       true,
		ModelStorageTaint: true,
		InferOwnerSinks:   true,
	}
}

// VulnKind enumerates the five vulnerability classes of Section 3.
type VulnKind int

// Vulnerability kinds.
const (
	AccessibleSelfdestruct VulnKind = iota
	TaintedSelfdestruct
	TaintedOwner
	UncheckedStaticcall
	TaintedDelegatecall
	NumVulnKinds // bound for iteration
)

func (k VulnKind) String() string {
	switch k {
	case AccessibleSelfdestruct:
		return "accessible selfdestruct"
	case TaintedSelfdestruct:
		return "tainted selfdestruct"
	case TaintedOwner:
		return "tainted owner variable"
	case UncheckedStaticcall:
		return "unchecked tainted staticcall"
	case TaintedDelegatecall:
		return "tainted delegatecall"
	}
	return fmt.Sprintf("vuln(%d)", int(k))
}

// Step is one transaction of a composite attack: a public function selector
// plus the number of word arguments its call site loads.
type Step struct {
	Selector [4]byte
	NumArgs  int
}

func (s Step) String() string { return fmt.Sprintf("0x%x/%d", s.Selector, s.NumArgs) }

// Warning is one flagged vulnerability.
type Warning struct {
	Kind VulnKind
	// PC is the bytecode offset of the sink (or the tainted write for
	// TaintedOwner).
	PC int
	// Slot is the storage slot for TaintedOwner warnings.
	Slot u256.U256
	// Witness is the escalation chain: public functions to invoke, in order,
	// to reach the sink (the final sink-invoking step included when known).
	Witness []Step
	// Message is a human-readable explanation.
	Message string
}

// Report is the analysis output for one contract.
type Report struct {
	Warnings []Warning
	// PublicFunctions is the number of dispatcher entries discovered.
	PublicFunctions int
	// Stats carries fixpoint sizes for debugging and the efficiency tables.
	Stats Stats
}

// Stats summarizes fixpoint magnitudes.
type Stats struct {
	Blocks            int
	Statements        int
	ReachableBlocks   int
	TaintedVars       int
	TaintedSlots      int
	BypassedGuards    int
	EffectiveGuards   int
	FixpointPasses    int
	InferredOwnerSlot int
	// Timings is the per-stage wall-clock breakdown of the analysis that
	// produced this report. Excluded from differential report comparisons.
	Timings StageTimings
}

// StageTimings is the per-stage wall-clock breakdown of one analysis. The
// Decompile* stages refine Decompile (bytecode decode, value-set fixpoint,
// TAC translation, function discovery); the Engine* stages refine Fixpoint
// when the Datalog engine ran the fixpoint (AnalyzeDatalog): index builds,
// delta joins, and barrier merges. The compiled Go fixpoint leaves the
// Engine* stages zero, and a cache hit leaves the Decompile* stages zero.
type StageTimings struct {
	Decompile time.Duration `json:"decompile_ns"`
	Facts     time.Duration `json:"facts_ns"`
	Guards    time.Duration `json:"guards_ns"`
	Fixpoint  time.Duration `json:"fixpoint_ns"`
	Detect    time.Duration `json:"detect_ns"`

	DecompileDecode    time.Duration `json:"decompile_decode_ns,omitempty"`
	DecompileValueSet  time.Duration `json:"decompile_valueset_ns,omitempty"`
	DecompileTranslate time.Duration `json:"decompile_translate_ns,omitempty"`
	DecompileFunctions time.Duration `json:"decompile_functions_ns,omitempty"`

	EngineIndex time.Duration `json:"engine_index_ns,omitempty"`
	EngineJoin  time.Duration `json:"engine_join_ns,omitempty"`
	EngineMerge time.Duration `json:"engine_merge_ns,omitempty"`
}

// Total sums the top-level stage timings. The Decompile* and Engine* stages
// are sub-breakdowns of Decompile and Fixpoint and are deliberately not
// re-added.
func (t StageTimings) Total() time.Duration {
	return t.Decompile + t.Facts + t.Guards + t.Fixpoint + t.Detect
}

// Add accumulates another breakdown into this one.
func (t *StageTimings) Add(o StageTimings) {
	t.Decompile += o.Decompile
	t.Facts += o.Facts
	t.Guards += o.Guards
	t.Fixpoint += o.Fixpoint
	t.Detect += o.Detect
	t.DecompileDecode += o.DecompileDecode
	t.DecompileValueSet += o.DecompileValueSet
	t.DecompileTranslate += o.DecompileTranslate
	t.DecompileFunctions += o.DecompileFunctions
	t.EngineIndex += o.EngineIndex
	t.EngineJoin += o.EngineJoin
	t.EngineMerge += o.EngineMerge
}

// setDecompile records the decompile stage total and its sub-breakdown.
func (t *StageTimings) setDecompile(total time.Duration, d decompiler.Timings) {
	t.Decompile = total
	t.DecompileDecode = d.Decode
	t.DecompileValueSet = d.ValueSet
	t.DecompileTranslate = d.Translate
	t.DecompileFunctions = d.Functions
}

// Has reports whether the report contains a warning of the given kind.
func (r *Report) Has(kind VulnKind) bool {
	for _, w := range r.Warnings {
		if w.Kind == kind {
			return true
		}
	}
	return false
}

// ByKind returns the warnings of one kind.
func (r *Report) ByKind(kind VulnKind) []Warning {
	var out []Warning
	for _, w := range r.Warnings {
		if w.Kind == kind {
			out = append(out, w)
		}
	}
	return out
}
