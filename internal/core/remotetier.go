package core

// This file is the remote peer-fill tier: the cross-replica extension of the
// cache hierarchy. On a local memory+disk miss, the cache asks each
// configured peer replica — over the same HTTP surface that serves analysis
// requests — for its serialized entry, verifies it end to end, and installs
// it locally. Entries are content-addressed by (bytecode keccak-256, config
// fingerprint), so there is nothing to invalidate and no coherence protocol
// to run: any intact entry a peer holds for the key is *the* answer, no
// matter which replica computed it or when.
//
// The protocol is one GET per probe:
//
//	GET /cache/{bytecodeHash}/{configFingerprint}
//	200 -> the peer's ETHDISK1 entry bytes, exactly as the disk tier stores
//	       them; 404 -> the peer doesn't have it; anything else -> error.
//
// Trust model: peers are replicas, not authorities. The client re-verifies
// everything the disk tier verifies on a local read — trailing keccak-256
// checksum, magic, format version, the ethainter-config-v2 fingerprint
// scheme, and the (hash, fingerprint, limits) key echo against what it asked
// for — before the entry is allowed into the local tiers. A corrupt,
// truncated, or mismatched response is counted in PeerErrors and treated as
// a miss on that peer.
//
// Failure model: fail-open, always. A peer being down, slow, or wrong must
// never fail an analysis or stall it beyond the probe timeout — every probe
// carries a per-request deadline, and any failure just falls through to the
// next peer and finally to local compute.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"ethainter/internal/decompiler"
)

// DefaultPeerTimeout bounds one peer probe (connect + request + body) when
// the caller doesn't set one: long enough for a LAN round trip serving a
// few-KiB entry, short against the ~300ms cold analysis it tries to avoid.
const DefaultPeerTimeout = 250 * time.Millisecond

// maxPeerEntryBytes bounds a peer response body. Real entries are a few
// hundred bytes to a few KiB; the bound keeps a misbehaving peer from
// feeding a filler stream into memory. Oversized responses are PeerErrors.
const maxPeerEntryBytes = 4 << 20

// RemoteTierStats is a snapshot of the peer-probe counters.
type RemoteTierStats struct {
	// Hits counts probes a peer answered with a verified entry; Misses
	// counts probes no configured peer could answer (one per probe, not per
	// peer). Hits + Misses is the number of resolved remote probes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Errors counts per-peer failures: transport errors and timeouts,
	// unexpected HTTP statuses, oversized bodies, and entries that failed
	// checksum/scheme/key verification. A probe can count several (one bad
	// peer each) and still end in a Hit from a later peer.
	Errors uint64 `json:"errors"`
	// FillBytes totals the verified entry bytes installed from peers.
	FillBytes uint64 `json:"fill_bytes"`
}

// RemoteTier probes peer replicas for cache entries over HTTP. It is
// fill-only (put is a no-op — peers pull from each other, nobody pushes),
// safe for concurrent use, and strictly fail-open: every failure mode
// degrades to a miss. Attach with Cache.SetRemoteTier.
type RemoteTier struct {
	peers   []string
	timeout time.Duration
	client  *http.Client

	hits      atomic.Uint64
	misses    atomic.Uint64
	errors    atomic.Uint64
	fillBytes atomic.Uint64
}

// NewRemoteTier returns a tier probing the given peer base URLs in order
// (e.g. "http://replica-2:8545"; a bare host:port gets http://). timeout <= 0
// selects DefaultPeerTimeout. Returns nil when peers is empty — attaching a
// nil *RemoteTier is the same as attaching none.
func NewRemoteTier(peers []string, timeout time.Duration) *RemoteTier {
	var clean []string
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		clean = append(clean, strings.TrimRight(p, "/"))
	}
	if len(clean) == 0 {
		return nil
	}
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &RemoteTier{
		peers:   clean,
		timeout: timeout,
		// A dedicated client so per-host idle pooling is tuned for a small,
		// fixed peer set and CloseIdleConnections on Close affects nobody
		// else. The per-probe deadline lives on the request context, not
		// here: it must cover the body read too.
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}},
	}
}

// Peers returns the normalized peer base URLs.
func (t *RemoteTier) Peers() []string { return t.peers }

// Stats returns a snapshot of the probe counters.
func (t *RemoteTier) Stats() RemoteTierStats {
	return RemoteTierStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Errors:    t.errors.Load(),
		FillBytes: t.fillBytes.Load(),
	}
}

// PeerCachePath is the request path for one cache entry — shared by this
// client and the server handler so the two can never drift.
func PeerCachePath(hash [32]byte, fp uint64) string {
	return fmt.Sprintf("/cache/%x/%016x", hash, fp)
}

// get probes the peers in order, returning the first fully verified entry.
// Total added latency is bounded by len(peers) probe timeouts; any single
// peer contributes at most one timeout before the probe moves on.
func (t *RemoteTier) get(key reportKey, limits decompiler.Limits) (reportEntry, bool) {
	path := PeerCachePath(key.code, key.cfg)
	for _, peer := range t.peers {
		data, ok := t.fetch(peer+path, key, limits)
		if !ok {
			continue
		}
		// Re-decode for the caller. fetch already verified the bytes, so
		// this cannot fail — but decode defensively anyway; the function
		// boundary is the trust boundary.
		gotKey, gotLimits, e, err := decodeEntry(data)
		if err != nil || gotKey != key || gotLimits != limits {
			t.errors.Add(1)
			continue
		}
		e.limits = gotLimits
		t.hits.Add(1)
		t.fillBytes.Add(uint64(len(data)))
		return e, true
	}
	t.misses.Add(1)
	return reportEntry{}, false
}

// fetch performs one bounded probe against one peer, returning the verified
// entry bytes. Every failure — transport, timeout, status, size, checksum,
// scheme, key echo — counts one error and reports a miss; a clean 404 counts
// nothing (the peer simply doesn't have the entry).
func (t *RemoteTier) fetch(url string, key reportKey, limits decompiler.Limits) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), t.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.errors.Add(1)
		return nil, false
	}
	resp, err := t.client.Do(req)
	if err != nil {
		t.errors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		t.errors.Add(1)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes+1))
	if err != nil || len(data) > maxPeerEntryBytes {
		t.errors.Add(1)
		return nil, false
	}
	gotKey, gotLimits, _, derr := decodeEntry(data)
	if derr != nil || gotKey != key || gotLimits != limits {
		t.errors.Add(1)
		return nil, false
	}
	return data, true
}

// put is a no-op: the peer-fill protocol is pull-only. A replica's own
// computed results reach peers when the peers ask for them.
func (t *RemoteTier) put(reportKey, decompiler.Limits, reportEntry) {}

// Close releases idle peer connections. Safe to call at any time;
// in-flight probes complete normally.
func (t *RemoteTier) Close() error {
	t.client.CloseIdleConnections()
	return nil
}
