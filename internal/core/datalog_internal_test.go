package core

import (
	"runtime"
	"testing"
)

// TestDatalogWorkersGate pins the parallelism heuristic: intra-fixpoint
// workers are granted only when the input fact set is large enough to
// amortize chunking and barrier merges (see parallelFactCutoff); below that,
// any requested parallelism runs sequentially.
func TestDatalogWorkersGate(t *testing.T) {
	cases := []struct {
		parallelism, tuples, want int
	}{
		{0, parallelFactCutoff * 2, 1}, // sequential stays sequential at any size
		{1, parallelFactCutoff * 2, 1},
		{4, parallelFactCutoff - 1, 1}, // contract-sized relations: gated off
		{4, parallelFactCutoff, 4},     // at the cutoff: granted as requested
		{-1, 100, 1},                   // per-core request, tiny input: gated off
	}
	for _, c := range cases {
		if got := datalogWorkers(c.parallelism, c.tuples); got != c.want {
			t.Errorf("datalogWorkers(%d, %d) = %d, want %d", c.parallelism, c.tuples, got, c.want)
		}
	}
	if got, want := datalogWorkers(-1, parallelFactCutoff), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("datalogWorkers(-1, cutoff) = %d, want one per core (%d)", got, want)
	}
}
