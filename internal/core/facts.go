package core

import (
	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// facts holds the taint-independent auxiliary relations — the "previous
// stratum" of Figure 2: constant values, the local memory model, storage
// address classification, and sender-derivation (DS/DSA).
type facts struct {
	prog *tac.Program
	dom  *tac.Dominators

	// constOf holds variables resolved to constants (intra-procedural
	// constant propagation; phi of equal constants folds).
	constOf constTab

	// memWrites lists MSTOREs by constant word offset; memUnknown lists
	// MSTOREs whose offset is not constant.
	memWrites  map[uint64][]*tac.Stmt
	memUnknown []*tac.Stmt
	// memSrcMemo and hashMemo cache memSources / hashWordStores results;
	// both are pure functions of the (static) memory model, and the fixpoint
	// re-asks them every time a load or hash statement is re-evaluated.
	memSrcMemo map[memSrcKey][]*tac.Stmt
	hashMemo   map[*tac.Stmt]hashWordsMemo

	// addrClass classifies each SLOAD/SSTORE address expression.
	addrClass map[*tac.Stmt]addrClass

	// senderDerived marks variables whose value derives from CALLER,
	// including through sender-keyed data structure loads (DS), and dsaVar
	// marks storage addresses keyed by the sender (DSA).
	senderDerived boolTab
	dsaVar        boolTab

	// funcsOf maps blocks to the public functions they belong to (a block
	// shared between functions maps to several).
	funcsOf map[*tac.Block][]int
	// numArgs estimates, per public function, the number of calldata word
	// arguments (from the maximum constant CALLDATALOAD offset).
	numArgs []int
}

// constTab is a dense map from variable id to resolved constant, replacing a
// map[tac.VarID]u256.U256 on the computeFacts hot path: SSA variable ids are
// small and dense, so a pair of slices indexed by id turns every lookup into
// an array load. Sized from Program.NumVars up front; set grows defensively
// for hand-built programs that never filled NumVars in.
type constTab struct {
	has  []bool
	vals []u256.U256
}

func newConstTab(n int) constTab {
	return constTab{has: make([]bool, n), vals: make([]u256.U256, n)}
}

func (t *constTab) get(v tac.VarID) (u256.U256, bool) {
	if v < 0 || int(v) >= len(t.has) || !t.has[v] {
		return u256.Zero, false
	}
	return t.vals[v], true
}

func (t *constTab) set(v tac.VarID, c u256.U256) {
	if int(v) >= len(t.has) {
		has := make([]bool, int(v)+1)
		vals := make([]u256.U256, int(v)+1)
		copy(has, t.has)
		copy(vals, t.vals)
		t.has, t.vals = has, vals
	}
	t.has[v] = true
	t.vals[v] = c
}

// boolTab is a dense variable-id set with the same growth discipline.
type boolTab []bool

func (t boolTab) get(v tac.VarID) bool {
	return v >= 0 && int(v) < len(t) && t[v]
}

func (t *boolTab) set(v tac.VarID) {
	if int(v) >= len(*t) {
		grown := make([]bool, int(v)+1)
		copy(grown, *t)
		*t = grown
	}
	(*t)[v] = true
}

// addrKind classifies a storage address.
type addrKind int

const (
	addrUnknown addrKind = iota
	addrConst            // a statically known slot
	addrElem             // keccak-addressed element of a mapping family
)

// addrClass describes one storage address expression.
type addrClass struct {
	kind addrKind
	slot u256.U256   // addrConst: the slot; addrElem: the base slot
	keys []tac.VarID // addrElem: key variables, outermost first
}

func computeFacts(prog *tac.Program) *facts {
	f := &facts{
		prog:          prog,
		dom:           tac.ComputeDominators(prog),
		constOf:       newConstTab(prog.NumVars),
		memWrites:     map[uint64][]*tac.Stmt{},
		memSrcMemo:    map[memSrcKey][]*tac.Stmt{},
		hashMemo:      map[*tac.Stmt]hashWordsMemo{},
		addrClass:     map[*tac.Stmt]addrClass{},
		senderDerived: make(boolTab, prog.NumVars),
		dsaVar:        make(boolTab, prog.NumVars),
		funcsOf:       map[*tac.Block][]int{},
	}
	f.propagateConstants()
	f.indexMemory()
	f.classifyStorage()
	f.computeSenderDerivation()
	f.attributeFunctions()
	return f
}

// propagateConstants folds constants through pure ops and phis of equal
// constants, iterating to fixpoint (the CFG is small).
func (f *facts) propagateConstants() {
	for changed := true; changed; {
		changed = false
		f.prog.AllStmts(func(s *tac.Stmt) {
			if s.Def == tac.NoVar {
				return
			}
			if _, done := f.constOf.get(s.Def); done {
				return
			}
			switch s.Op {
			case tac.Const:
				f.constOf.set(s.Def, s.Val)
				changed = true
			case tac.Phi:
				if len(s.Args) == 0 {
					return
				}
				first, ok := f.constOf.get(s.Args[0])
				if !ok {
					return
				}
				for _, a := range s.Args[1:] {
					v, ok := f.constOf.get(a)
					if !ok || v != first {
						return
					}
				}
				f.constOf.set(s.Def, first)
				changed = true
			default:
				if !s.Op.IsArith() || len(s.Args) != 2 {
					return
				}
				a, okA := f.constOf.get(s.Args[0])
				b, okB := f.constOf.get(s.Args[1])
				if !okA || !okB {
					return
				}
				if v, ok := foldConst(s.Op, a, b); ok {
					f.constOf.set(s.Def, v)
					changed = true
				}
			}
		})
	}
}

func foldConst(op tac.OpKind, a, b u256.U256) (u256.U256, bool) {
	switch op {
	case tac.Add:
		return a.Add(b), true
	case tac.Sub:
		return a.Sub(b), true
	case tac.Mul:
		return a.Mul(b), true
	case tac.Div:
		return a.Div(b), true
	case tac.And:
		return a.And(b), true
	case tac.Or:
		return a.Or(b), true
	case tac.Xor:
		return a.Xor(b), true
	case tac.Shl:
		if !a.IsUint64() || a.Uint64() > 255 {
			return u256.Zero, true
		}
		return b.Shl(uint(a.Uint64())), true
	case tac.Shr:
		if !a.IsUint64() || a.Uint64() > 255 {
			return u256.Zero, true
		}
		return b.Shr(uint(a.Uint64())), true
	case tac.Eq:
		if a == b {
			return u256.One, true
		}
		return u256.Zero, true
	case tac.Iszero:
		// Unary, handled here defensively (Args len check prevents arrival).
		return u256.Zero, false
	}
	return u256.Zero, false
}

// indexMemory groups MSTOREs by constant offset.
func (f *facts) indexMemory() {
	f.prog.AllStmts(func(s *tac.Stmt) {
		if s.Op != tac.Mstore && s.Op != tac.Mstore8 {
			return
		}
		if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() {
			f.memWrites[off.Uint64()] = append(f.memWrites[off.Uint64()], s)
		} else {
			f.memUnknown = append(f.memUnknown, s)
		}
	})
}

// memSrcKey identifies one memoized memSources query.
type memSrcKey struct {
	at  *tac.Stmt
	off uint64
}

// hashWordsMemo is one memoized hashWordStores result.
type hashWordsMemo struct {
	words [][]*tac.Stmt
	ok    bool
}

// memSources returns the MSTORE statements an MLOAD (or hash word read) at
// the given offset may observe: same-block latest store first if present,
// otherwise every store to that offset plus unknown-offset stores. Results
// are memoized (the model is static); callers must not mutate them.
func (f *facts) memSources(at *tac.Stmt, off uint64) []*tac.Stmt {
	key := memSrcKey{at: at, off: off}
	if out, ok := f.memSrcMemo[key]; ok {
		return out
	}
	// Prefer the nearest preceding store in the same block (the precise,
	// "local" modeling the paper describes).
	var latest *tac.Stmt
	for _, w := range f.memWrites[off] {
		if w.Block == at.Block && w.Idx < at.Idx {
			if latest == nil || w.Idx > latest.Idx {
				latest = w
			}
		}
	}
	var out []*tac.Stmt
	if latest != nil {
		out = []*tac.Stmt{latest}
	} else {
		out = append([]*tac.Stmt{}, f.memWrites[off]...)
		out = append(out, f.memUnknown...)
	}
	f.memSrcMemo[key] = out
	return out
}

// hashWordStores resolves the MSTOREs feeding a SHA3(off, len) when both are
// constants: one store set per 32-byte word of the hashed region. Results are
// memoized; callers must not mutate them.
func (f *facts) hashWordStores(s *tac.Stmt) ([][]*tac.Stmt, bool) {
	if m, ok := f.hashMemo[s]; ok {
		return m.words, m.ok
	}
	words, ok := f.hashWordStoresUncached(s)
	f.hashMemo[s] = hashWordsMemo{words: words, ok: ok}
	return words, ok
}

func (f *facts) hashWordStoresUncached(s *tac.Stmt) ([][]*tac.Stmt, bool) {
	off, okOff := f.constOf.get(s.Args[0])
	length, okLen := f.constOf.get(s.Args[1])
	if !okOff || !okLen || !off.IsUint64() || !length.IsUint64() {
		return nil, false
	}
	n := length.Uint64()
	if n == 0 || n > 32*8 || n%32 != 0 {
		return nil, false
	}
	var words [][]*tac.Stmt
	for w := uint64(0); w < n/32; w++ {
		words = append(words, f.memSources(s, off.Uint64()+32*w))
	}
	return words, true
}

// classifyStorage resolves the address operand of every SLOAD/SSTORE into a
// constant slot, a mapping-element address (keccak of key ++ base), or
// unknown.
func (f *facts) classifyStorage() {
	f.prog.AllStmts(func(s *tac.Stmt) {
		if s.Op != tac.Sload && s.Op != tac.Sstore {
			return
		}
		f.addrClass[s] = f.classifyAddr(s.Args[0])
	})
}

// classifyAddr resolves a storage address variable.
func (f *facts) classifyAddr(v tac.VarID) addrClass {
	return f.classifyAddrRec(v, nil)
}

// classifyAddrRec is classifyAddr with cycle detection: hostile bytecode can
// tie a SHA3's slot word (through memory) or a phi chain back to the variable
// being classified, and the recursion must bottom out as addrUnknown instead
// of overflowing the stack — a stack overflow is a fatal runtime error the
// analysis boundary's recover cannot convert.
func (f *facts) classifyAddrRec(v tac.VarID, seen map[tac.VarID]bool) addrClass {
	if seen[v] {
		return addrClass{kind: addrUnknown}
	}
	if c, ok := f.constOf.get(v); ok {
		return addrClass{kind: addrConst, slot: c}
	}
	def := f.prog.DefSite(v)
	if def == nil {
		return addrClass{kind: addrUnknown}
	}
	if seen == nil {
		seen = map[tac.VarID]bool{}
	}
	seen[v] = true
	switch def.Op {
	case tac.Sha3:
		// The Solidity mapping layout: SHA3 over [key (32) ++ slotWord (32)].
		words, ok := f.hashWordStores(def)
		if !ok || len(words) != 2 {
			return addrClass{kind: addrUnknown}
		}
		keyStores, slotStores := words[0], words[1]
		if len(keyStores) != 1 || len(slotStores) != 1 {
			return addrClass{kind: addrUnknown}
		}
		keyVar := keyStores[0].Args[1]
		slotVar := slotStores[0].Args[1]
		if base, ok := f.constOf.get(slotVar); ok {
			return addrClass{kind: addrElem, slot: base, keys: []tac.VarID{keyVar}}
		}
		// Nested mapping: the slot word is itself an element address.
		inner := f.classifyAddrRec(slotVar, seen)
		if inner.kind == addrElem {
			keys := append(append([]tac.VarID{}, inner.keys...), keyVar)
			return addrClass{kind: addrElem, slot: inner.slot, keys: keys}
		}
		return addrClass{kind: addrUnknown}
	case tac.Phi:
		// A phi of classifications that agree (same const, or same family).
		var agg *addrClass
		for _, a := range def.Args {
			if a == v {
				continue
			}
			c := f.classifyAddrRec(a, seen)
			if agg == nil {
				cc := c
				agg = &cc
				continue
			}
			if c.kind != agg.kind || c.slot != agg.slot {
				return addrClass{kind: addrUnknown}
			}
		}
		if agg != nil {
			return *agg
		}
	}
	return addrClass{kind: addrUnknown}
}

// computeSenderDerivation computes, to fixpoint:
//   - dsaVar: storage addresses keyed (transitively) by the caller — SHA3
//     over a region containing a sender-derived word, plus arithmetic on such
//     addresses (Figure 4's DSA);
//   - senderDerived: CALLER results, values loaded through DSA addresses
//     (Figure 4's DS), and anything computed from them.
func (f *facts) computeSenderDerivation() {
	for changed := true; changed; {
		changed = false
		f.prog.AllStmts(func(s *tac.Stmt) {
			if s.Def == tac.NoVar {
				return
			}
			switch s.Op {
			case tac.Caller:
				if !f.senderDerived.get(s.Def) {
					f.senderDerived.set(s.Def)
					changed = true
				}
			case tac.Sha3:
				if f.dsaVar.get(s.Def) {
					return
				}
				words, ok := f.hashWordStores(s)
				if !ok {
					return
				}
				for _, stores := range words {
					for _, st := range stores {
						val := st.Args[1]
						if f.senderDerived.get(val) || f.dsaVar.get(val) {
							f.dsaVar.set(s.Def)
							changed = true
							return
						}
					}
				}
			case tac.Sload:
				if !f.senderDerived.get(s.Def) && f.dsaVar.get(s.Args[0]) {
					f.senderDerived.set(s.Def)
					changed = true
				}
			case tac.Mload:
				// Sender values round-tripping through memory cells.
				if f.senderDerived.get(s.Def) {
					return
				}
				if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() {
					for _, st := range f.memSources(s, off.Uint64()) {
						if f.senderDerived.get(st.Args[1]) {
							f.senderDerived.set(s.Def)
							changed = true
							return
						}
					}
				}
			default:
				if !s.Op.IsArith() {
					return
				}
				for _, a := range s.Args {
					if f.senderDerived.get(a) && !f.senderDerived.get(s.Def) {
						f.senderDerived.set(s.Def)
						changed = true
					}
					if f.dsaVar.get(a) && !f.dsaVar.get(s.Def) {
						f.dsaVar.set(s.Def)
						changed = true
					}
				}
			}
		})
	}
}

// attributeFunctions assigns blocks to the public functions that can reach
// them (forward CFG walk from each entry) and estimates argument counts.
func (f *facts) attributeFunctions() {
	f.numArgs = make([]int, len(f.prog.Functions))
	for idx, fn := range f.prog.Functions {
		seen := map[*tac.Block]bool{}
		stack := []*tac.Block{fn.Entry}
		maxArg := 0
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[b] {
				continue
			}
			seen[b] = true
			f.funcsOf[b] = append(f.funcsOf[b], idx)
			for _, s := range b.Stmts {
				if s.Op == tac.Calldataload {
					if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() && off.Uint64() >= 4 {
						arg := int(off.Uint64()-4)/32 + 1
						if arg > maxArg {
							maxArg = arg
						}
					}
				}
			}
			stack = append(stack, b.Succs...)
		}
		f.numArgs[idx] = maxArg
	}
}

// stepFor builds the witness step invoking the function that owns the block
// (first owner wins; ok=false for dispatcher-only blocks).
func (f *facts) stepFor(b *tac.Block) (Step, bool) {
	owners := f.funcsOf[b]
	if len(owners) == 0 {
		return Step{}, false
	}
	fn := f.prog.Functions[owners[0]]
	return Step{Selector: fn.SelectorBytes(), NumArgs: f.numArgs[owners[0]]}, true
}
