package core

import (
	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// facts holds the taint-independent auxiliary relations — the "previous
// stratum" of Figure 2: constant values, the local memory model, storage
// address classification, and sender-derivation (DS/DSA).
//
// All relations are fully precomputed by computeFacts and addressed by dense
// indices (Stmt.GIdx, Block.ID, VarID, or interned slot id) instead of
// map[*tac.Stmt]/map[u256.U256] hashing. After computeFacts returns, a facts
// value is strictly immutable: the cache shares one instance across
// concurrently running per-config analyses (guards + fixpoint re-run per
// config, facts do not).
type facts struct {
	prog *tac.Program
	dom  *tac.Dominators

	// stmts is the dense statement table in Stmt.GIdx order (program order,
	// phis first per block) — the iteration order of both fixpoint drivers.
	stmts []*tac.Stmt

	// constOf holds variables resolved to constants (intra-procedural
	// constant propagation; phi of equal constants folds).
	constOf constTab

	// memWrites lists MSTOREs by constant word offset; memUnknown lists
	// MSTOREs whose offset is not constant. memWrites is only consulted while
	// building the per-statement memory-source tables below.
	memWrites  map[uint64][]*tac.Stmt
	memUnknown []*tac.Stmt

	// memSrcOf[g] lists the MSTOREs the statement with GIdx g may observe at
	// its (constant) queried offset: the MLOAD address, or a STATICCALL's
	// input-buffer offset. memSrcConst[g] records that the offset was a
	// constant uint64 — false means the statement falls back to the
	// unknown-offset handling (memUnknown for loads, nothing for staticcalls).
	memSrcOf    [][]*tac.Stmt
	memSrcConst []bool

	// hashWordsOf[g]/hashOK[g] hold the SHA3 word-store resolution for the
	// statement with GIdx g: one store set per 32-byte word of the hashed
	// region when offset and length are constants of modeled shape.
	hashWordsOf [][][]*tac.Stmt
	hashOK      []bool

	// addrClassOf[g] classifies the address expression of the SLOAD/SSTORE
	// with GIdx g; the zero value (addrUnknown) for every other statement.
	addrClassOf []addrClass

	// slotIDs interns every distinct storage slot (constant slots and
	// mapping-family bases) into a small dense id, assigned in classification
	// order; slotVals is the inverse table. Analysis state and guard relations
	// index by slot id instead of hashing 32-byte values.
	slotIDs  map[u256.U256]int32
	slotVals []u256.U256

	// senderDerived marks variables whose value derives from CALLER,
	// including through sender-keyed data structure loads (DS), and dsaVar
	// marks storage addresses keyed by the sender (DSA).
	senderDerived boolTab
	dsaVar        boolTab

	// funcsOf lists, per Block.ID, the public functions the block belongs to
	// (a block shared between functions lists several).
	funcsOf [][]int32
	// numArgs estimates, per public function, the number of calldata word
	// arguments (from the maximum constant CALLDATALOAD offset).
	numArgs []int
}

// constTab is a dense map from variable id to resolved constant, replacing a
// map[tac.VarID]u256.U256 on the computeFacts hot path: SSA variable ids are
// small and dense, so a pair of slices indexed by id turns every lookup into
// an array load. Sized from Program.NumVars up front; set grows geometrically
// for hand-built programs that never filled NumVars in.
type constTab struct {
	has  []bool
	vals []u256.U256
}

func newConstTab(n int) constTab {
	return constTab{has: make([]bool, n), vals: make([]u256.U256, n)}
}

func (t *constTab) get(v tac.VarID) (u256.U256, bool) {
	if v < 0 || int(v) >= len(t.has) || !t.has[v] {
		return u256.Zero, false
	}
	return t.vals[v], true
}

func (t *constTab) set(v tac.VarID, c u256.U256) {
	if int(v) >= len(t.has) {
		n := int(v) + 1
		if d := 2 * len(t.has); d > n {
			n = d
		}
		has := make([]bool, n)
		vals := make([]u256.U256, n)
		copy(has, t.has)
		copy(vals, t.vals)
		t.has, t.vals = has, vals
	}
	t.has[v] = true
	t.vals[v] = c
}

// boolTab is a dense variable-id set with the same geometric growth
// discipline.
type boolTab []bool

func (t boolTab) get(v tac.VarID) bool {
	return v >= 0 && int(v) < len(t) && t[v]
}

func (t *boolTab) set(v tac.VarID) {
	if int(v) >= len(*t) {
		n := int(v) + 1
		if d := 2 * len(*t); d > n {
			n = d
		}
		grown := make([]bool, n)
		copy(grown, *t)
		*t = grown
	}
	(*t)[v] = true
}

// addrKind classifies a storage address.
type addrKind int

const (
	addrUnknown addrKind = iota
	addrConst            // a statically known slot
	addrElem             // keccak-addressed element of a mapping family
)

// addrClass describes one storage address expression.
type addrClass struct {
	kind addrKind
	slot u256.U256   // addrConst: the slot; addrElem: the base slot
	sid  int32       // interned id of slot; -1 when kind is addrUnknown
	keys []tac.VarID // addrElem: key variables, outermost first
}

func computeFacts(prog *tac.Program) *facts {
	if prog.NumStmts() == 0 && len(prog.Blocks) > 0 {
		// Hand-built programs (tests) may not have indexed; the decompiler
		// always has. BuildIndex assigns the GIdx table everything below
		// addresses by.
		prog.BuildIndex()
	}
	f := &facts{
		prog:          prog,
		dom:           tac.ComputeDominators(prog),
		constOf:       newConstTab(prog.NumVars),
		memWrites:     map[uint64][]*tac.Stmt{},
		slotIDs:       map[u256.U256]int32{},
		senderDerived: make(boolTab, prog.NumVars),
		dsaVar:        make(boolTab, prog.NumVars),
	}
	n := prog.NumStmts()
	f.stmts = make([]*tac.Stmt, 0, n)
	prog.AllStmts(func(s *tac.Stmt) { f.stmts = append(f.stmts, s) })
	f.memSrcOf = make([][]*tac.Stmt, n)
	f.memSrcConst = make([]bool, n)
	f.hashWordsOf = make([][][]*tac.Stmt, n)
	f.hashOK = make([]bool, n)
	f.addrClassOf = make([]addrClass, n)

	f.propagateConstants()
	f.indexMemory()
	f.precomputeMemoryModel()
	f.classifyStorage()
	f.computeSenderDerivation()
	f.attributeFunctions()
	return f
}

// internSlot returns the dense id of a storage slot, assigning the next id on
// first sight. Only computeFacts calls it; ids are fixed afterwards.
func (f *facts) internSlot(slot u256.U256) int32 {
	if id, ok := f.slotIDs[slot]; ok {
		return id
	}
	id := int32(len(f.slotVals))
	f.slotIDs[slot] = id
	f.slotVals = append(f.slotVals, slot)
	return id
}

// numSlots is the interned-slot count; analysis state sized by it.
func (f *facts) numSlots() int { return len(f.slotVals) }

// propagateConstants folds constants through pure ops and phis of equal
// constants, iterating to fixpoint (the CFG is small).
func (f *facts) propagateConstants() {
	for changed := true; changed; {
		changed = false
		for _, s := range f.stmts {
			if s.Def == tac.NoVar {
				continue
			}
			if _, done := f.constOf.get(s.Def); done {
				continue
			}
			switch s.Op {
			case tac.Const:
				f.constOf.set(s.Def, s.Val)
				changed = true
			case tac.Phi:
				if len(s.Args) == 0 {
					continue
				}
				first, ok := f.constOf.get(s.Args[0])
				if !ok {
					continue
				}
				agree := true
				for _, a := range s.Args[1:] {
					v, ok := f.constOf.get(a)
					if !ok || v != first {
						agree = false
						break
					}
				}
				if !agree {
					continue
				}
				f.constOf.set(s.Def, first)
				changed = true
			default:
				if !s.Op.IsArith() || len(s.Args) != 2 {
					continue
				}
				a, okA := f.constOf.get(s.Args[0])
				b, okB := f.constOf.get(s.Args[1])
				if !okA || !okB {
					continue
				}
				if v, ok := foldConst(s.Op, a, b); ok {
					f.constOf.set(s.Def, v)
					changed = true
				}
			}
		}
	}
}

func foldConst(op tac.OpKind, a, b u256.U256) (u256.U256, bool) {
	switch op {
	case tac.Add:
		return a.Add(b), true
	case tac.Sub:
		return a.Sub(b), true
	case tac.Mul:
		return a.Mul(b), true
	case tac.Div:
		return a.Div(b), true
	case tac.And:
		return a.And(b), true
	case tac.Or:
		return a.Or(b), true
	case tac.Xor:
		return a.Xor(b), true
	case tac.Shl:
		if !a.IsUint64() || a.Uint64() > 255 {
			return u256.Zero, true
		}
		return b.Shl(uint(a.Uint64())), true
	case tac.Shr:
		if !a.IsUint64() || a.Uint64() > 255 {
			return u256.Zero, true
		}
		return b.Shr(uint(a.Uint64())), true
	case tac.Eq:
		if a == b {
			return u256.One, true
		}
		return u256.Zero, true
	case tac.Iszero:
		// Unary, handled here defensively (Args len check prevents arrival).
		return u256.Zero, false
	}
	return u256.Zero, false
}

// indexMemory groups MSTOREs by constant offset.
func (f *facts) indexMemory() {
	for _, s := range f.stmts {
		if s.Op != tac.Mstore && s.Op != tac.Mstore8 {
			continue
		}
		if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() {
			f.memWrites[off.Uint64()] = append(f.memWrites[off.Uint64()], s)
		} else {
			f.memUnknown = append(f.memUnknown, s)
		}
	}
}

// precomputeMemoryModel resolves every memory-source and hash-word query up
// front: MLOADs and STATICCALLs ask memSources at one constant offset each,
// SHA3s ask one store set per hashed word. The former lazily-memoized maps
// become per-statement slices, and — crucially for the shared-facts cache —
// no query path mutates facts at analysis time.
func (f *facts) precomputeMemoryModel() {
	for _, s := range f.stmts {
		switch s.Op {
		case tac.Mload:
			if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() {
				f.memSrcConst[s.GIdx] = true
				f.memSrcOf[s.GIdx] = f.memSourcesAt(s, off.Uint64())
			}
		case tac.Staticcall:
			// Args: gas, addr, inOff, inLen, outOff, outLen.
			if off, ok := f.constOf.get(s.Args[2]); ok && off.IsUint64() {
				f.memSrcConst[s.GIdx] = true
				f.memSrcOf[s.GIdx] = f.memSourcesAt(s, off.Uint64())
			}
		case tac.Sha3:
			words, ok := f.hashWordStoresAt(s)
			f.hashWordsOf[s.GIdx] = words
			f.hashOK[s.GIdx] = ok
		}
	}
}

// memSourcesAt returns the MSTORE statements a read at the given offset may
// observe: same-block latest store first if present, otherwise every store to
// that offset plus unknown-offset stores. Build-time only; results live in
// memSrcOf/hashWordsOf and must not be mutated.
func (f *facts) memSourcesAt(at *tac.Stmt, off uint64) []*tac.Stmt {
	// Prefer the nearest preceding store in the same block (the precise,
	// "local" modeling the paper describes).
	var latest *tac.Stmt
	for _, w := range f.memWrites[off] {
		if w.Block == at.Block && w.Idx < at.Idx {
			if latest == nil || w.Idx > latest.Idx {
				latest = w
			}
		}
	}
	if latest != nil {
		return []*tac.Stmt{latest}
	}
	out := append([]*tac.Stmt{}, f.memWrites[off]...)
	return append(out, f.memUnknown...)
}

// memSrcAt returns the precomputed memory sources of an MLOAD or STATICCALL
// statement; ok is false when its queried offset was not a constant uint64.
func (f *facts) memSrcAt(s *tac.Stmt) ([]*tac.Stmt, bool) {
	return f.memSrcOf[s.GIdx], f.memSrcConst[s.GIdx]
}

// hashWordsAt returns the precomputed SHA3 word-store resolution.
func (f *facts) hashWordsAt(s *tac.Stmt) ([][]*tac.Stmt, bool) {
	return f.hashWordsOf[s.GIdx], f.hashOK[s.GIdx]
}

// hashWordStoresAt resolves the MSTOREs feeding a SHA3(off, len) when both
// are constants: one store set per 32-byte word of the hashed region.
func (f *facts) hashWordStoresAt(s *tac.Stmt) ([][]*tac.Stmt, bool) {
	off, okOff := f.constOf.get(s.Args[0])
	length, okLen := f.constOf.get(s.Args[1])
	if !okOff || !okLen || !off.IsUint64() || !length.IsUint64() {
		return nil, false
	}
	n := length.Uint64()
	if n == 0 || n > 32*8 || n%32 != 0 {
		return nil, false
	}
	var words [][]*tac.Stmt
	for w := uint64(0); w < n/32; w++ {
		words = append(words, f.memSourcesAt(s, off.Uint64()+32*w))
	}
	return words, true
}

// classifyStorage resolves the address operand of every SLOAD/SSTORE into a
// constant slot, a mapping-element address (keccak of key ++ base), or
// unknown, interning the slot of every resolved class.
func (f *facts) classifyStorage() {
	for _, s := range f.stmts {
		if s.Op != tac.Sload && s.Op != tac.Sstore {
			continue
		}
		c := f.classifyAddr(s.Args[0])
		if c.kind == addrUnknown {
			c.sid = -1
		} else {
			c.sid = f.internSlot(c.slot)
		}
		f.addrClassOf[s.GIdx] = c
	}
}

// addrClassAt returns the storage-address classification of an SLOAD/SSTORE.
func (f *facts) addrClassAt(s *tac.Stmt) addrClass {
	return f.addrClassOf[s.GIdx]
}

// classifyAddr resolves a storage address variable.
func (f *facts) classifyAddr(v tac.VarID) addrClass {
	return f.classifyAddrRec(v, nil)
}

// classifyAddrRec is classifyAddr with cycle detection: hostile bytecode can
// tie a SHA3's slot word (through memory) or a phi chain back to the variable
// being classified, and the recursion must bottom out as addrUnknown instead
// of overflowing the stack — a stack overflow is a fatal runtime error the
// analysis boundary's recover cannot convert.
func (f *facts) classifyAddrRec(v tac.VarID, seen map[tac.VarID]bool) addrClass {
	if seen[v] {
		return addrClass{kind: addrUnknown}
	}
	if c, ok := f.constOf.get(v); ok {
		return addrClass{kind: addrConst, slot: c}
	}
	def := f.prog.DefSite(v)
	if def == nil {
		return addrClass{kind: addrUnknown}
	}
	if seen == nil {
		seen = map[tac.VarID]bool{}
	}
	seen[v] = true
	switch def.Op {
	case tac.Sha3:
		// The Solidity mapping layout: SHA3 over [key (32) ++ slotWord (32)].
		words, ok := f.hashWordsAt(def)
		if !ok || len(words) != 2 {
			return addrClass{kind: addrUnknown}
		}
		keyStores, slotStores := words[0], words[1]
		if len(keyStores) != 1 || len(slotStores) != 1 {
			return addrClass{kind: addrUnknown}
		}
		keyVar := keyStores[0].Args[1]
		slotVar := slotStores[0].Args[1]
		if base, ok := f.constOf.get(slotVar); ok {
			return addrClass{kind: addrElem, slot: base, keys: []tac.VarID{keyVar}}
		}
		// Nested mapping: the slot word is itself an element address.
		inner := f.classifyAddrRec(slotVar, seen)
		if inner.kind == addrElem {
			keys := append(append([]tac.VarID{}, inner.keys...), keyVar)
			return addrClass{kind: addrElem, slot: inner.slot, keys: keys}
		}
		return addrClass{kind: addrUnknown}
	case tac.Phi:
		// A phi of classifications that agree (same const, or same family).
		var agg *addrClass
		for _, a := range def.Args {
			if a == v {
				continue
			}
			c := f.classifyAddrRec(a, seen)
			if agg == nil {
				cc := c
				agg = &cc
				continue
			}
			if c.kind != agg.kind || c.slot != agg.slot {
				return addrClass{kind: addrUnknown}
			}
		}
		if agg != nil {
			return *agg
		}
	}
	return addrClass{kind: addrUnknown}
}

// computeSenderDerivation computes, to fixpoint:
//   - dsaVar: storage addresses keyed (transitively) by the caller — SHA3
//     over a region containing a sender-derived word, plus arithmetic on such
//     addresses (Figure 4's DSA);
//   - senderDerived: CALLER results, values loaded through DSA addresses
//     (Figure 4's DS), and anything computed from them.
func (f *facts) computeSenderDerivation() {
	for changed := true; changed; {
		changed = false
		for _, s := range f.stmts {
			if s.Def == tac.NoVar {
				continue
			}
			switch s.Op {
			case tac.Caller:
				if !f.senderDerived.get(s.Def) {
					f.senderDerived.set(s.Def)
					changed = true
				}
			case tac.Sha3:
				if f.dsaVar.get(s.Def) {
					continue
				}
				words, ok := f.hashWordsAt(s)
				if !ok {
					continue
				}
			sha3Words:
				for _, stores := range words {
					for _, st := range stores {
						val := st.Args[1]
						if f.senderDerived.get(val) || f.dsaVar.get(val) {
							f.dsaVar.set(s.Def)
							changed = true
							break sha3Words
						}
					}
				}
			case tac.Sload:
				if !f.senderDerived.get(s.Def) && f.dsaVar.get(s.Args[0]) {
					f.senderDerived.set(s.Def)
					changed = true
				}
			case tac.Mload:
				// Sender values round-tripping through memory cells.
				if f.senderDerived.get(s.Def) {
					continue
				}
				if srcs, ok := f.memSrcAt(s); ok {
					for _, st := range srcs {
						if f.senderDerived.get(st.Args[1]) {
							f.senderDerived.set(s.Def)
							changed = true
							break
						}
					}
				}
			default:
				if !s.Op.IsArith() {
					continue
				}
				for _, a := range s.Args {
					if f.senderDerived.get(a) && !f.senderDerived.get(s.Def) {
						f.senderDerived.set(s.Def)
						changed = true
					}
					if f.dsaVar.get(a) && !f.dsaVar.get(s.Def) {
						f.dsaVar.set(s.Def)
						changed = true
					}
				}
			}
		}
	}
}

// attributeFunctions assigns blocks to the public functions that can reach
// them (forward CFG walk from each entry) and estimates argument counts. The
// per-function visited set is one epoch-stamped array instead of a fresh map
// per function.
func (f *facts) attributeFunctions() {
	maxID := -1
	for _, b := range f.prog.Blocks {
		if b.ID > maxID {
			maxID = b.ID
		}
		for _, s := range b.Succs {
			if s.ID > maxID {
				maxID = s.ID
			}
		}
	}
	for _, fn := range f.prog.Functions {
		if fn.Entry.ID > maxID {
			maxID = fn.Entry.ID
		}
	}
	f.funcsOf = make([][]int32, maxID+1)
	f.numArgs = make([]int, len(f.prog.Functions))
	visited := make([]int32, maxID+1)
	for i := range visited {
		visited[i] = -1
	}
	var stack []*tac.Block
	for idx, fn := range f.prog.Functions {
		epoch := int32(idx)
		stack = append(stack[:0], fn.Entry)
		maxArg := 0
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[b.ID] == epoch {
				continue
			}
			visited[b.ID] = epoch
			f.funcsOf[b.ID] = append(f.funcsOf[b.ID], int32(idx))
			for _, s := range b.Stmts {
				if s.Op == tac.Calldataload {
					if off, ok := f.constOf.get(s.Args[0]); ok && off.IsUint64() && off.Uint64() >= 4 {
						arg := int(off.Uint64()-4)/32 + 1
						if arg > maxArg {
							maxArg = arg
						}
					}
				}
			}
			stack = append(stack, b.Succs...)
		}
		f.numArgs[idx] = maxArg
	}
}

// stepFor builds the witness step invoking the function that owns the block
// (first owner wins; ok=false for dispatcher-only blocks).
func (f *facts) stepFor(b *tac.Block) (Step, bool) {
	if b.ID < 0 || b.ID >= len(f.funcsOf) {
		return Step{}, false
	}
	owners := f.funcsOf[b.ID]
	if len(owners) == 0 {
		return Step{}, false
	}
	fn := f.prog.Functions[owners[0]]
	return Step{Selector: fn.SelectorBytes(), NumArgs: f.numArgs[owners[0]]}, true
}
