package core_test

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// FuzzAnalyzeBytecode mutates full runtime bytecodes through the entire
// pipeline — decompile, facts, guards, fixpoint, detect — under tight work
// budgets and a hard deadline. It enforces the boundary contract the server
// depends on:
//
//   - exactly one of (report, error) is set;
//   - no input produces an internal (recovered-panic) error;
//   - every non-cancellation failure is deterministic, so the negative cache
//     cannot memoize an error that a retry would not reproduce.
//
// The committed seed corpus (testdata/fuzz/FuzzAnalyzeBytecode) holds
// synthetic-corpus contracts plus the adversarial ctx-explosion inputs, so
// plain `go test` already replays the interesting shapes; `make fuzz-smoke`
// runs the mutation engine proper.
func FuzzAnalyzeBytecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x60})                               // truncated PUSH1
	f.Add([]byte{0x5b, 0x56})                         // JUMPDEST; JUMP (dynamic)
	f.Add(minisol.MustCompile(minisol.VictimSource).Runtime)
	for _, c := range corpus.Generate(corpus.DefaultProfile(4, 20200615)) {
		f.Add(c.Runtime)
	}

	// Tight budgets keep the worst mutants to milliseconds; the deadline is a
	// backstop that should never fire (a firing deadline is a missed
	// cancellation poll, which the determinism check below would flag).
	limits := decompiler.Limits{MaxContexts: 500, MaxWorklistSteps: 20000, MaxStatements: 50000}

	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 24576 {
			t.Skip("beyond the EIP-170 deployed-code cap")
		}
		cfg := core.DefaultConfig()
		cfg.DecompileLimits = limits
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()

		rep, err := core.AnalyzeBytecodeContext(ctx, code, cfg)
		if (rep == nil) == (err == nil) {
			t.Fatalf("report/error invariant broken: rep=%v err=%v", rep, err)
		}
		if err == nil {
			return
		}
		if core.IsInternal(err) {
			t.Fatalf("recovered panic escaped the analyzer: %v", err)
		}
		if core.IsCancellation(err) {
			return // the backstop fired; nothing deterministic to check
		}
		rep2, err2 := core.AnalyzeBytecodeContext(context.Background(), code, cfg)
		if rep2 != nil || err2 == nil || err2.Error() != err.Error() {
			t.Fatalf("non-cancellation error not deterministic: %q then (%v, %v)", err, rep2, err2)
		}
	})
}

// FuzzFixpointEquivalence differentially pins the dirty-queue worklist
// fixpoint to the reference (global re-pass) fixpoint on mutated bytecodes:
// for every decompilable input and every ablation config, the two must
// produce bit-identical reports — warnings, full witness chains, and stats
// including the fixpoint pass count. This is the fuzz-shaped sibling of
// TestWorklistMatchesReferenceCorpus: the corpus test pins the equivalence on
// realistic contracts, the fuzzer hunts for degenerate CFG/phi shapes the
// generator never emits. The committed seed corpus
// (testdata/fuzz/FuzzFixpointEquivalence) replays synthetic-corpus contracts
// under plain `go test`.
func FuzzFixpointEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x5b, 0x34, 0x15, 0x60, 0x00, 0x57, 0xff}) // guarded SELFDESTRUCT skeleton
	f.Add(minisol.MustCompile(minisol.VictimSource).Runtime)
	f.Add(minisol.MustCompile(minisol.TaintedOwnerSource).Runtime)
	for _, c := range corpus.Generate(corpus.DefaultProfile(4, 20200616)) {
		f.Add(c.Runtime)
	}

	limits := decompiler.Limits{MaxContexts: 500, MaxWorklistSteps: 20000, MaxStatements: 50000}
	configs := ablationConfigs()
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)

	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 24576 {
			t.Skip("beyond the EIP-170 deployed-code cap")
		}
		prog, err := decompiler.DecompileContext(context.Background(), code, limits)
		if err != nil {
			return // not decompilable; FuzzAnalyzeBytecode owns the error contract
		}
		for _, name := range names {
			cfg := configs[name]
			want := stripTimings(core.AnalyzeReference(prog, cfg))
			got := stripTimings(core.Analyze(prog, cfg))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("[%s] worklist report diverges from reference\nworklist:  %+v\nreference: %+v",
					name, got, want)
			}
		}
	})
}
