package core

// White-box tests for the remote peer-fill tier and the multi-writer disk
// tier: peer entries are verified end to end before installation, every
// failure mode (down peer, corrupt entry, truncated body, wrong status)
// degrades to local compute with the rejection counted, and two tier handles
// sharing one directory never corrupt each other's files or drive the
// counters negative. These serve entries straight from Cache.EntryBytes over
// httptest servers — the same bytes the production /cache handler ships.

import (
	"encoding/hex"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// parsePeerKey decodes the {hash}/{fp} path components of a peer cache
// request the way the production handler does.
func parsePeerKey(r *http.Request) (hash [32]byte, fp uint64, ok bool) {
	hb, err := hex.DecodeString(r.PathValue("hash"))
	if err != nil || len(hb) != 32 {
		return hash, 0, false
	}
	copy(hash[:], hb)
	fp, err = strconv.ParseUint(r.PathValue("fp"), 16, 64)
	return hash, fp, err == nil
}

// peerCacheServer serves src's cache entries the way a replica's /cache
// endpoint does: parse the key out of the PeerCachePath shape, ship the
// serialized entry bytes, 404 on a miss.
func peerCacheServer(t *testing.T, src *Cache) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cache/{hash}/{fp}", func(w http.ResponseWriter, r *http.Request) {
		hash, fp, ok := parsePeerKey(r)
		if !ok {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		data, ok := src.EntryBytes(hash, fp)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(data)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// unreachableAddr returns a loopback address that refuses connections: bind
// an ephemeral port, then close it before anyone dials.
func unreachableAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRemoteTierPeerFill: a cold replica with only a remote tier serves an
// analysis entirely from its peer — zero local analyses, zero decompiles,
// one verified peer hit, bit-identical report. Deterministic failures
// peer-fill the same way.
func TestRemoteTierPeerFill(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := DefaultConfig()

	source := NewCache(0)
	wantRep, err := source.AnalyzeBytecode(code, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := peerCacheServer(t, source)

	remote := NewRemoteTier([]string{srv.URL}, time.Second)
	defer remote.Close()
	c := NewCache(0)
	c.SetRemoteTier(remote)
	rep, err := c.AnalyzeBytecode(code, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest() != wantRep.Digest() {
		t.Fatal("peer-filled report diverges from the peer's own")
	}
	st := c.Stats()
	if st.Analyses != 0 || st.Decompiles != 0 {
		t.Fatalf("stats = %+v, want the analysis served by the peer", st)
	}
	if st.PeerHits != 1 || st.PeerErrors != 0 || st.PeerFillBytes == 0 {
		t.Fatalf("stats = %+v, want exactly one verified peer fill", st)
	}

	// A deterministic failure peer-fills too: negative entries are entries.
	tight := cfg
	tight.DecompileLimits = decompiler.Limits{MaxWorklistSteps: 1}
	if _, err := source.AnalyzeBytecode(code, tight); !IsBudgetExhaustion(err) {
		t.Fatalf("source: err = %v, want budget exhaustion", err)
	}
	if _, err := c.AnalyzeBytecode(code, tight); !IsBudgetExhaustion(err) {
		t.Fatalf("filled: err = %v, want budget exhaustion", err)
	}
	if st := c.Stats(); st.Analyses != 0 || st.PeerHits != 2 {
		t.Fatalf("stats = %+v, want the failure peer-filled as well", st)
	}
}

// TestRemoteTierFailureInjection is the fail-open contract: with one peer
// refusing connections and one feeding corrupt and truncated entries, every
// analysis still completes via local compute, every rejected response is
// counted in PeerErrors, nothing corrupt is ever installed, and the added
// latency stays bounded by the probe timeouts.
func TestRemoteTierFailureInjection(t *testing.T) {
	var codes [][]byte
	for _, src := range []string{
		minisol.VictimSource,
		minisol.TaintedOwnerSource,
		minisol.AccessibleSelfdestructSource,
	} {
		codes = append(codes, minisol.MustCompile(src).Runtime)
	}
	cfg := DefaultConfig()

	source := NewCache(0)
	for _, code := range codes {
		if _, err := source.AnalyzeBytecode(code, cfg); err != nil {
			t.Fatal(err)
		}
	}
	// The hostile peer serves real entries with the last checksum byte
	// flipped for even requests and the body cut in half for odd ones: both
	// must fail verification client-side.
	var requests atomic.Int64
	hostileMux := http.NewServeMux()
	hostileMux.HandleFunc("GET /cache/{hash}/{fp}", func(w http.ResponseWriter, r *http.Request) {
		hash, fp, ok := parsePeerKey(r)
		if !ok {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		data, ok := source.EntryBytes(hash, fp)
		if !ok {
			http.NotFound(w, r)
			return
		}
		if requests.Add(1)%2 == 0 {
			corrupt := append([]byte(nil), data...)
			corrupt[len(corrupt)-1] ^= 0xff
			w.Write(corrupt)
			return
		}
		w.Write(data[:len(data)/2])
	})
	hostile := httptest.NewServer(hostileMux)
	defer hostile.Close()

	timeout := 200 * time.Millisecond
	remote := NewRemoteTier([]string{unreachableAddr(t), hostile.URL}, timeout)
	defer remote.Close()
	c := NewCache(0)
	c.SetRemoteTier(remote)

	start := time.Now()
	for i, code := range codes {
		rep, err := c.AnalyzeBytecode(code, cfg)
		if err != nil {
			t.Fatalf("analysis %d under hostile peers: %v", i, err)
		}
		want, _ := source.AnalyzeBytecode(code, cfg)
		if rep.Digest() != want.Digest() {
			t.Fatalf("analysis %d diverges under hostile peers", i)
		}
	}
	elapsed := time.Since(start)

	st := c.Stats()
	if st.Analyses != uint64(len(codes)) {
		t.Fatalf("stats = %+v, want every analysis computed locally", st)
	}
	if st.PeerHits != 0 || st.PeerFillBytes != 0 {
		t.Fatalf("stats = %+v, want no corrupt entry accepted", st)
	}
	if st.PeerErrors < uint64(len(codes)) {
		t.Fatalf("stats = %+v, want at least one counted rejection per probe", st)
	}
	// Bound: each analysis performs at most two probes (Lookup + compute
	// path), each bounded by two peers' timeouts, plus the local compute
	// itself. Generous headroom for CI; catches an unbounded retry/hang.
	if limit := time.Duration(len(codes))*4*timeout + 10*time.Second; elapsed > limit {
		t.Fatalf("hostile peers stalled analysis: %v elapsed, limit %v", elapsed, limit)
	}
}

// TestRemoteTierPromotesToDisk: a peer-filled entry is installed into the
// local disk tier, so the fill survives a restart — the replica only ever
// pays the network once per key.
func TestRemoteTierPromotesToDisk(t *testing.T) {
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	cfg := DefaultConfig()
	source := NewCache(0)
	if _, err := source.AnalyzeBytecode(code, cfg); err != nil {
		t.Fatal(err)
	}
	srv := peerCacheServer(t, source)

	dir := t.TempDir()
	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemoteTier([]string{srv.URL}, time.Second)
	defer remote.Close()
	c := NewCache(0)
	c.SetDiskTier(tier)
	c.SetRemoteTier(remote)
	if _, err := c.AnalyzeBytecode(code, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.PeerHits != 1 || st.Analyses != 0 {
		t.Fatalf("stats = %+v, want the entry peer-filled", st)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with no peers: the promoted entry serves from disk alone.
	tier2, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	if st := tier2.Stats(); st.Entries != 1 {
		t.Fatalf("reopened tier stats = %+v, want the promoted entry on disk", st)
	}
	c2 := NewCache(0)
	c2.SetDiskTier(tier2)
	if _, err := c2.AnalyzeBytecode(code, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Analyses != 0 || st.DiskHits != 1 {
		t.Fatalf("restart stats = %+v, want the fill served from disk", st)
	}
}

// TestDiskTierMultiWriterCounters: two tier handles over one directory — the
// shared -cache-dir deployment — each persist their own work, a reopen
// recounts the union exactly, and foreign deletions can only drift the
// gauges toward zero, never below it.
func TestDiskTierMultiWriterCounters(t *testing.T) {
	dir := t.TempDir()
	var codes [][]byte
	for _, src := range []string{
		minisol.VictimSource,
		minisol.TaintedOwnerSource,
		minisol.AccessibleSelfdestructSource,
	} {
		codes = append(codes, minisol.MustCompile(src).Runtime)
	}
	cfg := DefaultConfig()

	t1, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := NewCache(0), NewCache(0)
	c1.SetDiskTier(t1)
	c2.SetDiskTier(t2)

	// Writer 1 takes the first two codes, writer 2 the last two: one key is
	// written by both (last-writer-wins on byte-identical files).
	for _, code := range codes[:2] {
		if _, err := c1.AnalyzeBytecode(code, cfg); err != nil {
			t.Fatal(err)
		}
	}
	for _, code := range codes[1:] {
		if _, err := c2.AnalyzeBytecode(code, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Close(); err != nil {
		t.Fatal(err)
	}
	if files := entryFiles(t, dir); len(files) != len(codes) {
		t.Fatalf("%d entry files after two writers, want %d", len(files), len(codes))
	}

	// A fresh handle recounts the union exactly.
	t3, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := t3.Stats(); st.Entries != int64(len(codes)) || st.Bytes <= 0 {
		t.Fatalf("recount stats = %+v, want %d entries", st, len(codes))
	}

	// Simulate a foreign eviction: delete every entry behind t3's back, then
	// make t3 discover each via its read path. The gauges must clamp at
	// zero even though t3 double-counts discoveries it never wrote.
	for _, f := range entryFiles(t, dir) {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	lim := cfg.DecompileLimits.Normalized()
	for _, code := range codes {
		key := reportKey{code: crypto.Keccak256(code), cfg: cfg.Fingerprint()}
		if _, ok := t3.get(key, lim); ok {
			t.Fatal("deleted entry served as a hit")
		}
	}
	st := t3.Stats()
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("stats went negative under foreign deletions: %+v", st)
	}
	if err := t3.Close(); err != nil {
		t.Fatal(err)
	}

	// And the next recount converges back to the truth: an empty store.
	t4, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer t4.Close()
	if st := t4.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-deletion recount = %+v, want an empty store", st)
	}
}

// TestDiskTierBudgetEviction: a byte budget evicts intact entries oldest
// first down to the low-water mark, both at scrub time and when the writer
// crosses the budget mid-run, and the byte gauge converges to the truth.
func TestDiskTierBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	tier, err := OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic entries with distinct keys and a fat payload so a small
	// budget is meaningful.
	limits := decompiler.DefaultLimits()
	mkKey := func(i byte) reportKey {
		var key reportKey
		key.code[0] = i
		key.cfg = 42
		return key
	}
	entry := reportEntry{err: &decompiler.BudgetError{Resource: "contexts", Limit: 6000}}
	const n = 8
	for i := byte(0); i < n; i++ {
		tier.put(mkKey(i), limits, entry)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	total := tier.Stats().Bytes
	if total <= 0 {
		t.Fatalf("stats = %+v, want bytes accounted", tier.Stats())
	}
	// Age the first half so eviction order is deterministic.
	files := entryFiles(t, dir)
	if len(files) != n {
		t.Fatalf("%d entry files, want %d", len(files), n)
	}
	old := time.Now().Add(-time.Hour)
	for i := byte(0); i < n/2; i++ {
		if err := os.Chtimes(tier.pathFor(mkKey(i)), old, old); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen with a budget of half the store: the scrub must evict down to
	// the low-water mark, oldest entries first.
	budget := total / 2
	t2, err := OpenDiskTierBudget(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	st := t2.Stats()
	if st.Bytes > budget {
		t.Fatalf("stats = %+v, want the store under its %d-byte budget", st, budget)
	}
	if st.Evictions == 0 || st.Scrubbed != 0 {
		t.Fatalf("stats = %+v, want evictions (not scrubs) to have shrunk the store", st)
	}
	for i := byte(0); i < n/2; i++ {
		if _, err := os.Lstat(t2.pathFor(mkKey(i))); !os.IsNotExist(err) {
			t.Fatalf("aged entry %d survived eviction under newer ones", i)
		}
	}
	survivors := entryFiles(t, dir)
	if len(survivors) == 0 || len(survivors) >= n {
		t.Fatalf("%d survivors of %d, want a proper subset", len(survivors), n)
	}

	// Writer-side eviction: push the store back over budget and let the
	// write-behind sweep bring it down again.
	for i := byte(n); i < 2*n; i++ {
		t2.put(mkKey(i), limits, entry)
	}
	if err := t2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := t2.Stats(); st.Bytes > budget {
		t.Fatalf("stats = %+v, want the writer sweep to hold the %d-byte budget", st, budget)
	}
}
