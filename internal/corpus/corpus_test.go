package corpus_test

import (
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/decompiler"
	"ethainter/internal/kill"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

func TestGenerateDeterministic(t *testing.T) {
	p := corpus.DefaultProfile(50, 7)
	a := corpus.Generate(p)
	b := corpus.Generate(p)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].Family != b[i].Family || string(a[i].Runtime) != string(b[i].Runtime) {
			t.Fatalf("instance %d differs between runs", i)
		}
	}
}

func TestEveryTemplateCompilesAndDecompiles(t *testing.T) {
	// A large-enough sample hits every family with both guard styles.
	cs := corpus.Generate(corpus.Profile{
		N: 300, VulnFraction: 0.4, TrapFraction: 0.2, ExoticFraction: 0.05,
		SourceFraction: 0.5, Solc058Fraction: 0.2, Seed: 42,
	})
	families := map[string]int{}
	for _, c := range cs {
		families[c.Family]++
		if c.Exotic {
			if _, err := decompiler.Decompile(c.Runtime); err == nil {
				t.Errorf("exotic contract %d unexpectedly decompiled", c.Index)
			}
			continue
		}
		if _, err := decompiler.Decompile(c.Runtime); err != nil {
			t.Errorf("%s/%d failed to decompile: %v", c.Family, c.Index, err)
		}
	}
	if len(families) < 15 {
		t.Errorf("only %d families sampled; want broad coverage", len(families))
	}
}

// Ground truth sanity: the analysis must flag every vulnerable family for at
// least one of its labeled kinds, and the labeled-killable families must be
// destroyable end to end.
func TestGroundTruthConsistency(t *testing.T) {
	cs := corpus.Generate(corpus.Profile{
		N: 150, VulnFraction: 0.9, TrapFraction: 0.0, ExoticFraction: 0.0,
		SourceFraction: 1, Solc058Fraction: 1, Seed: 11,
	})
	cfg := core.DefaultConfig()
	seenFamily := map[string]bool{}
	for _, c := range cs {
		if !c.Vulnerable() || seenFamily[c.Family] {
			continue
		}
		seenFamily[c.Family] = true
		rep, err := core.AnalyzeBytecode(c.Runtime, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.Family, err)
		}
		hit := false
		for k := range c.Truth {
			if rep.Has(k) {
				hit = true
			}
		}
		if !hit {
			t.Errorf("%s: analysis missed all labeled kinds %v; got %v", c.Family, c.Truth, rep.Warnings)
		}
		if c.Killable {
			ch := chain.New()
			deployer := ch.NewAccount(u256.FromUint64(1_000_000))
			r := ch.Deploy(deployer, c.Compiled.Deploy, u256.Zero)
			if r.Err != nil {
				t.Fatalf("%s: deploy: %v", c.Family, r.Err)
			}
			res := kill.New(ch).Exploit(r.Created, rep)
			if !res.Destroyed {
				t.Errorf("%s: labeled killable but not destroyed (attempts %d)", c.Family, res.Attempts)
			}
		}
	}
	if len(seenFamily) < 8 {
		t.Errorf("only %d vulnerable families checked", len(seenFamily))
	}
}

// Trap families must be flagged by the analysis (they are designed FPs) while
// carrying no ground-truth vulnerability.
func TestTrapsAreFalsePositives(t *testing.T) {
	cs := corpus.Generate(corpus.Profile{
		N: 200, VulnFraction: 0, TrapFraction: 1.0, ExoticFraction: 0,
		SourceFraction: 1, Solc058Fraction: 1, Seed: 3,
	})
	cfg := core.DefaultConfig()
	flaggedPerFamily := map[string]bool{}
	for _, c := range cs {
		if c.Vulnerable() {
			t.Fatalf("trap %s labeled vulnerable", c.Family)
		}
		rep, err := core.AnalyzeBytecode(c.Runtime, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Warnings) > 0 {
			flaggedPerFamily[c.Family] = true
		}
	}
	for _, fam := range []string{"trapRevokeOnly", "trapThreshold", "trapScratch"} {
		if !flaggedPerFamily[fam] {
			t.Errorf("%s: expected the analysis to (falsely) flag this family", fam)
		}
	}
	// Killing a trap must fail: the flag is not exploitable.
	for _, c := range cs[:20] {
		rep, _ := core.AnalyzeBytecode(c.Runtime, cfg)
		ch := chain.New()
		deployer := ch.NewAccount(u256.FromUint64(1_000_000))
		r := ch.Deploy(deployer, c.Compiled.Deploy, u256.Zero)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if res := kill.New(ch).Exploit(r.Created, rep); res.Destroyed {
			t.Errorf("%s: trap was actually destroyed — it is not a false positive", c.Family)
		}
	}
}

// Benign families stay clean under the default analysis.
func TestBenignFamiliesClean(t *testing.T) {
	cs := corpus.Generate(corpus.Profile{
		N: 150, VulnFraction: 0, TrapFraction: 0, ExoticFraction: 0,
		SourceFraction: 1, Solc058Fraction: 1, Seed: 23,
	})
	cfg := core.DefaultConfig()
	for _, c := range cs {
		rep, err := core.AnalyzeBytecode(c.Runtime, cfg)
		if err != nil {
			t.Fatalf("%s/%d: %v", c.Family, c.Index, err)
		}
		if len(rep.Warnings) != 0 {
			t.Errorf("%s/%d flagged: %v", c.Family, c.Index, rep.Warnings)
		}
	}
}

func TestSourceFlagsRoughlyMatchProfile(t *testing.T) {
	p := corpus.DefaultProfile(1000, 5)
	cs := corpus.Generate(p)
	src, solc := 0, 0
	for _, c := range cs {
		if c.HasVerifiedSource {
			src++
		}
		if c.Solc058 {
			solc++
		}
	}
	if src < 250 || src > 450 {
		t.Errorf("source-available = %d/1000, profile wants ~350", src)
	}
	if solc < 40 || solc > 180 {
		t.Errorf("solc-0.5.8 = %d/1000, profile wants ~100", solc)
	}
	// All Solc058 contracts must actually parse for Securify2's front-end.
	for _, c := range cs {
		if c.Solc058 && c.Source != "" {
			if _, err := minisol.Parse(c.Source); err != nil {
				t.Fatalf("unparseable source in corpus: %v", err)
			}
		}
	}
}
