package corpus

import (
	"fmt"
	"math/rand"

	"ethainter/internal/core"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

// Contract is one corpus entry: compiled code, ground truth, and the
// metadata the experiments condition on.
type Contract struct {
	// Family names the generating template.
	Family string
	// Index is the instance number within the run.
	Index int
	// Source is the mini-Solidity source ("" for exotic raw bytecode).
	Source string
	// Compiled holds the compilation output (nil for exotic contracts).
	Compiled *minisol.Compiled
	// Runtime is the runtime bytecode (always set).
	Runtime []byte
	// Truth is the set of genuinely exploitable vulnerability kinds.
	Truth map[core.VulnKind]bool
	// Killable marks contracts Ethainter-Kill should be able to destroy.
	Killable bool
	// Balance is the simulated ETH (wei) the deployed instance holds.
	Balance u256.U256
	// HasVerifiedSource mirrors Etherscan source availability.
	HasVerifiedSource bool
	// Solc058 mirrors compiler-version compatibility with Securify2.
	Solc058 bool
	// Exotic marks decompiler-hostile raw bytecode.
	Exotic bool
}

// Vulnerable reports whether the contract has any true vulnerability.
func (c *Contract) Vulnerable() bool { return len(c.Truth) > 0 }

// Profile parameterizes corpus generation.
type Profile struct {
	// N is the number of contracts.
	N int
	// VulnFraction is the share drawn from vulnerable families (the mainnet
	// base rate is low; experiments use 0.03-0.15).
	VulnFraction float64
	// TrapFraction is the share drawn from false-positive trap families.
	TrapFraction float64
	// ExoticFraction is the share of decompiler-hostile bytecode (the ~2%
	// decompilation failures of Section 6).
	ExoticFraction float64
	// SourceFraction is the share with verified source on the explorer.
	SourceFraction float64
	// Solc058Fraction is the share of source-available contracts whose
	// source compiles with Solidity 0.5.8+ (the Securify2 universe).
	Solc058Fraction float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultProfile mirrors the paper's population shape at configurable scale.
func DefaultProfile(n int, seed int64) Profile {
	return Profile{
		N:               n,
		VulnFraction:    0.06,
		TrapFraction:    0.02,
		ExoticFraction:  0.02,
		SourceFraction:  0.35,
		Solc058Fraction: 0.10,
		Seed:            seed,
	}
}

// Generate builds the corpus. Compilation failures in templates are bugs and
// panic; the exotic family is intentionally uncompilable-by-design and is
// emitted as raw bytecode.
func Generate(p Profile) []*Contract {
	r := rand.New(rand.NewSource(p.Seed))
	all := templates()
	var benign, vuln, trap, exotic []template
	for _, t := range all {
		switch {
		case t.exotic:
			exotic = append(exotic, t)
		case t.vulnerable:
			vuln = append(vuln, t)
		case len(t.name) > 4 && t.name[:4] == "trap":
			trap = append(trap, t)
		default:
			benign = append(benign, t)
		}
	}
	var out []*Contract
	for i := 0; i < p.N; i++ {
		roll := r.Float64()
		var tpl template
		switch {
		case roll < p.ExoticFraction:
			tpl = exotic[r.Intn(len(exotic))]
		case roll < p.ExoticFraction+p.VulnFraction:
			tpl = vuln[r.Intn(len(vuln))]
		case roll < p.ExoticFraction+p.VulnFraction+p.TrapFraction:
			tpl = trap[r.Intn(len(trap))]
		default:
			tpl = benign[r.Intn(len(benign))]
		}
		out = append(out, instantiate(tpl, i, r, p))
	}
	return out
}

func instantiate(tpl template, idx int, r *rand.Rand, p Profile) *Contract {
	c := &Contract{
		Family: tpl.name,
		Index:  idx,
		Truth:  map[core.VulnKind]bool{},
	}
	g := &gen{r: r, suffix: fmt.Sprintf("_%d", idx)}
	if tpl.exotic {
		c.Exotic = true
		c.Runtime = tpl.renderRaw(g)
		for _, k := range tpl.truth {
			c.Truth[k] = true
		}
		c.Balance = drawBalance(r, tpl.vulnerable)
		return c
	}
	c.Source = tpl.render(g)
	compiled, err := minisol.CompileSource(c.Source)
	if err != nil {
		panic(fmt.Sprintf("corpus: template %s produced uncompilable source: %v\n%s", tpl.name, err, c.Source))
	}
	c.Compiled = compiled
	c.Runtime = compiled.Runtime
	for _, k := range tpl.truth {
		c.Truth[k] = true
	}
	c.Killable = tpl.killable
	c.HasVerifiedSource = r.Float64() < p.SourceFraction
	if c.HasVerifiedSource {
		c.Solc058 = r.Float64() < p.Solc058Fraction/maxf(p.SourceFraction, 0.01)
	}
	// Balance: heavy-tailed, strongly biased toward non-vulnerable contracts
	// (Section 6.2: "the fact that a contract contains substantial ETH is
	// typically strong evidence that it is not exploitable").
	c.Balance = drawBalance(r, tpl.vulnerable)
	return c
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// drawBalance samples a heavy-tailed wei balance.
func drawBalance(r *rand.Rand, vulnerable bool) u256.U256 {
	roll := r.Float64()
	switch {
	case vulnerable:
		// Mostly dust; the occasional honeypot-scale outlier.
		if roll < 0.85 {
			return u256.FromUint64(uint64(r.Intn(1000)))
		}
		return u256.FromUint64(uint64(1+r.Intn(50)) * 1_000)
	case roll < 0.60:
		return u256.Zero
	case roll < 0.95:
		return u256.FromUint64(uint64(r.Intn(100_000)))
	default:
		return u256.FromUint64(uint64(1+r.Intn(500)) * 1_000_000)
	}
}
