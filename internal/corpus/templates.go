// Package corpus generates the synthetic contract population standing in for
// the paper's blockchain snapshots (the 240K-unique-contract mainnet set of
// Section 6.2 and the Ropsten block range of Section 6.1).
//
// Contracts are drawn from ~20 template families — benign DeFi-era shapes
// (tokens, banks, registries, crowdsales, wallets), the five vulnerability
// classes of Section 3 (including the paper's own running examples), and
// "trap" families engineered to reproduce the false-positive causes listed in
// Figure 6 (imprecise data-structure inference, complex path conditions,
// inter-function flow). Identifier renaming, declaration-order shuffling,
// guard-style variation, and filler members make instances lexically diverse
// while preserving each family's ground truth.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"ethainter/internal/core"
	"ethainter/internal/evm"
)

// template produces one source instance plus its ground truth.
type template struct {
	// name identifies the family.
	name string
	// vulnerable marks families with at least one real end-to-end
	// vulnerability.
	vulnerable bool
	// exotic families emit raw bytecode instead of source (decompiler-hostile).
	exotic bool
	// truth lists the end-to-end exploitable vulnerabilities, by kind.
	truth []core.VulnKind
	// killable marks families Ethainter-Kill can actually destroy.
	killable bool
	// render produces a source instance (ignored for exotic).
	render func(g *gen) string
	// renderRaw produces runtime bytecode for exotic families.
	renderRaw func(g *gen) []byte
}

// gen carries per-instance randomization.
type gen struct {
	r      *rand.Rand
	suffix string
}

func (g *gen) id(base string) string { return base + g.suffix }

// pick returns one of the options.
func (g *gen) pick(options ...string) string { return options[g.r.Intn(len(options))] }

// amount returns a random round number.
func (g *gen) amount() int { return (1 + g.r.Intn(99)) * 100 }

// ownerGuard renders an owner check in one of the common styles. The
// modifier/require split exercises both compilation paths.
func (g *gen) ownerGuard(ownerVar string) (decl, use, inline string) {
	if g.r.Intn(2) == 0 {
		name := g.id("onlyOwner")
		return fmt.Sprintf("modifier %s() { require(msg.sender == %s); _; }", name, ownerVar),
			name, ""
	}
	return "", "", fmt.Sprintf("require(msg.sender == %s);", ownerVar)
}

// fillerMembers renders harmless extra state and getters for lexical volume.
func (g *gen) fillerMembers() string {
	var b strings.Builder
	n := g.r.Intn(3)
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("%s%d", g.id("meta"), i)
		fmt.Fprintf(&b, "    uint256 %s;\n", v)
		fmt.Fprintf(&b, "    function get%s%d() public view returns (uint256) { return %s; }\n", g.id("Meta"), i, v)
	}
	return b.String()
}

// templates returns the full family list.
func templates() []template {
	return []template{
		// --- benign families ---
		{name: "token", render: renderToken},
		{name: "bank", render: renderBank},
		{name: "registry", render: renderRegistry},
		{name: "crowdsale", render: renderCrowdsale},
		{name: "vault", render: renderVault},
		{name: "airdrop", render: renderAirdrop},
		{name: "voting", render: renderVoting},
		{name: "escrow", render: renderEscrow},
		{name: "closedAdmin", render: renderClosedAdmin},
		{name: "pausable", render: renderPausable},
		{name: "sweeper", render: renderSweeper},
		{name: "upgradeProxy", render: renderUpgradeProxy},
		{name: "guardedExchange", render: renderGuardedExchange},
		{name: "backupVault", render: renderBackupVault},
		{name: "slotBoard", render: renderSlotBoard},
		{name: "timelock", render: renderTimelock},
		{name: "auction", render: renderAuction},
		{name: "nameRegistry", render: renderNameRegistry},

		// --- vulnerable families (Section 3 + Section 2) ---
		{name: "victimComposite", vulnerable: true, killable: true,
			truth:  []core.VulnKind{core.AccessibleSelfdestruct, core.TaintedSelfdestruct, core.TaintedOwner},
			render: renderVictim},
		{name: "taintedOwner", vulnerable: true, killable: true,
			truth:  []core.VulnKind{core.TaintedOwner, core.AccessibleSelfdestruct, core.TaintedSelfdestruct},
			render: renderInitOwner},
		{name: "accessibleKill", vulnerable: true, killable: true,
			truth:  []core.VulnKind{core.AccessibleSelfdestruct},
			render: renderAccessibleKill},
		{name: "taintedBeneficiary", vulnerable: true,
			truth:  []core.VulnKind{core.TaintedSelfdestruct},
			render: renderTaintedBeneficiary},
		{name: "openDelegate", vulnerable: true,
			truth:  []core.VulnKind{core.TaintedDelegatecall},
			render: renderOpenDelegate},
		{name: "zeroExchange", vulnerable: true,
			truth:  []core.VulnKind{core.UncheckedStaticcall},
			render: renderZeroExchange},
		{name: "buyableOwner", vulnerable: true, killable: true,
			truth:  []core.VulnKind{core.AccessibleSelfdestruct, core.TaintedOwner},
			render: renderBuyableOwner},
		{name: "parityWallet", vulnerable: true, killable: true,
			truth:  []core.VulnKind{core.TaintedOwner, core.AccessibleSelfdestruct, core.TaintedSelfdestruct},
			render: renderParityWallet},
		{name: "openMint", vulnerable: true,
			truth:  []core.VulnKind{core.TaintedOwner},
			render: renderOpenMint},
		{name: "paramKill", vulnerable: true, killable: true,
			truth:  []core.VulnKind{core.AccessibleSelfdestruct, core.TaintedSelfdestruct},
			render: renderParamKill},
		{name: "deepChain", vulnerable: true, killable: true,
			truth:  []core.VulnKind{core.AccessibleSelfdestruct, core.TaintedSelfdestruct, core.TaintedOwner},
			render: renderDeepChain},

		// --- trap families: expected analysis false positives (Figure 6) ---
		{name: "trapRevokeOnly", render: renderTrapRevokeOnly},
		{name: "trapThreshold", render: renderTrapThreshold},
		{name: "trapScratch", render: renderTrapScratch},

		// --- decompiler-hostile raw bytecode ---
		{name: "exoticJump", exotic: true, renderRaw: renderExoticJump},
		// vsaBuster is genuinely destroyable, but the 20-way return-address
		// fan-out exceeds the decompiler's bounded value sets: Ethainter
		// fails to lift it while per-path symbolic execution (teEther)
		// resolves each return concretely — the honest mechanism behind the
		// paper's non-overlap between the two tools.
		{name: "vsaBuster", exotic: true, vulnerable: true,
			truth:     []core.VulnKind{core.AccessibleSelfdestruct},
			renderRaw: renderVSABuster},
	}
}

// renderExoticJump emits a runtime whose first jump target is computed from
// calldata — valid on-chain, unresolvable for the value-set decompiler.
func renderExoticJump(g *gen) []byte {
	pad := make([]byte, g.r.Intn(16))
	code := append([]byte{}, evm.MustAssemble(`
		PUSH1 0x00
		CALLDATALOAD
		PUSH1 0xff
		AND
		JUMP
	`)...)
	// A spray of JUMPDESTs so some calldata values actually execute.
	for i := 0; i < 24; i++ {
		code = append(code, byte(evm.JUMPDEST), byte(evm.STOP))
	}
	return append(code, pad...)
}

// renderVSABuster emits a dispatcher with 20 call sites sharing one
// subroutine. Each call site pushes its own return address; the subroutine's
// return JUMP therefore carries a 20-constant value set — beyond the
// decompiler's per-slot bound — while every concrete execution (and every
// symbolically explored path) is straightforward. Every branch ends in an
// unguarded SELFDESTRUCT(CALLER).
func renderVSABuster(g *gen) []byte {
	const sites = 20
	var b strings.Builder
	b.WriteString(`
		PUSH1 0x00
		CALLDATALOAD
		PUSH1 0xf8
		SHR
	`)
	for i := 0; i < sites; i++ {
		fmt.Fprintf(&b, `
		DUP1
		PUSH1 %d
		EQ
		PUSH @site%d
		JUMPI
		`, i, i)
	}
	b.WriteString("\nSTOP\n")
	for i := 0; i < sites; i++ {
		fmt.Fprintf(&b, `
	site%d:
		POP
		PUSH @ret%d
		PUSH @sub
		JUMP
	ret%d:
		CALLER
		SELFDESTRUCT
		`, i, i, i)
	}
	b.WriteString(`
	sub:
		JUMP
	`)
	return evm.MustAssemble(b.String())
}

// --- benign renderers ---

func renderToken(g *gen) string {
	guardDecl, guardUse, inline := g.ownerGuard(g.id("owner"))
	body := fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s;
    mapping(address => uint256) %s;
    mapping(address => mapping(address => uint256)) %s;
%s
    constructor() {
        %s = msg.sender;
        %s = %d;
        %s[msg.sender] = %d;
    }
    %s
    function transfer(address to, uint256 value) public returns (bool) {
        require(%s[msg.sender] >= value);
        %s[msg.sender] -= value;
        %s[to] += value;
        return true;
    }
    function approve(address spender, uint256 value) public returns (bool) {
        %s[msg.sender][spender] = value;
        return true;
    }
    function transferFrom(address from, address to, uint256 value) public returns (bool) {
        require(%s[from] >= value);
        require(%s[from][msg.sender] >= value);
        %s[from][msg.sender] -= value;
        %s[from] -= value;
        %s[to] += value;
        return true;
    }
    function balanceOf(address who) public view returns (uint256) { return %s[who]; }
    function mint(address to, uint256 value) public %s {
        %s
        %s += value;
        %s[to] += value;
    }
    function transferOwnership(address newOwner) public %s {
        %s
        %s = newOwner;
    }
}`,
		g.id("Token"), g.id("owner"), g.id("supply"), g.id("balances"), g.id("allowed"),
		g.fillerMembers(),
		g.id("owner"), g.id("supply"), g.amount()*1000, g.id("balances"), g.amount()*1000,
		guardDecl,
		g.id("balances"), g.id("balances"), g.id("balances"),
		g.id("allowed"),
		g.id("balances"), g.id("allowed"), g.id("allowed"), g.id("balances"), g.id("balances"),
		g.id("balances"),
		guardUse, inline,
		g.id("supply"), g.id("balances"),
		guardUse, inline, g.id("owner"))
	return body
}

func renderBank(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    mapping(address => uint256) %s;
%s
    function deposit() public payable {
        %s[msg.sender] += msg.value;
    }
    function withdraw(uint256 amount) public {
        require(%s[msg.sender] >= amount);
        %s[msg.sender] -= amount;
        send(msg.sender, amount);
    }
    function balanceOf(address who) public view returns (uint256) { return %s[who]; }
}`, g.id("Bank"), g.id("deposits"), g.fillerMembers(),
		g.id("deposits"), g.id("deposits"), g.id("deposits"), g.id("deposits"))
}

func renderRegistry(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    mapping(address => uint256) %s;
    mapping(address => bool) %s;
    function claim(uint256 tag) public {
        require(!%s[msg.sender]);
        %s[msg.sender] = tag;
        %s[msg.sender] = true;
    }
    function tagOf(address who) public view returns (uint256) { return %s[who]; }
}`, g.id("Registry"), g.id("tags"), g.id("claimed"),
		g.id("claimed"), g.id("tags"), g.id("claimed"), g.id("tags"))
}

func renderCrowdsale(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s;
    uint256 %s = %d;
    mapping(address => uint256) %s;
    constructor() { %s = msg.sender; }
    function contribute() public payable {
        require(%s + msg.value <= %s);
        %s += msg.value;
        %s[msg.sender] += msg.value;
    }
    function collect() public {
        require(msg.sender == %s);
        send(%s, balance(this));
    }
}`, g.id("Crowdsale"), g.id("beneficiary"), g.id("raised"), g.id("cap"), g.amount()*100,
		g.id("contributions"), g.id("beneficiary"),
		g.id("raised"), g.id("cap"), g.id("raised"), g.id("contributions"),
		g.id("beneficiary"), g.id("beneficiary"))
}

func renderVault(g *gen) string {
	guardDecl, guardUse, inline := g.ownerGuard(g.id("owner"))
	return fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s;
    constructor() { %s = msg.sender; }
    %s
    function lock(uint256 until) public %s {
        %s
        %s = until;
    }
    function drain(address to, uint256 amount) public %s {
        %s
        require(block.timestamp > %s);
        send(to, amount);
    }
    function transferOwnership(address newOwner) public %s {
        %s
        %s = newOwner;
    }
    function kill() public %s {
        %s
        selfdestruct(%s);
    }
}`, g.id("Vault"), g.id("owner"), g.id("lockedUntil"), g.id("owner"),
		guardDecl, guardUse, inline, g.id("lockedUntil"),
		guardUse, inline, g.id("lockedUntil"),
		guardUse, inline, g.id("owner"),
		guardUse, inline, g.id("owner"))
}

func renderAirdrop(g *gen) string {
	guardDecl, guardUse, inline := g.ownerGuard(g.id("admin"))
	return fmt.Sprintf(`
contract %s {
    address %s;
    mapping(address => uint256) %s;
    constructor() { %s = msg.sender; }
    %s
    function fund(address who, uint256 amount) public %s {
        %s
        %s[who] += amount;
    }
    function fundBatch(address who, uint256 n) public %s {
        %s
        require(n < 64);
        uint256 i = 0;
        while (i < n) {
            %s[who] += 1;
            i += 1;
        }
    }
    function redeem() public {
        uint256 due = %s[msg.sender];
        %s[msg.sender] = 0;
        send(msg.sender, due);
    }
}`, g.id("Airdrop"), g.id("admin"), g.id("grants"), g.id("admin"),
		guardDecl, guardUse, inline, g.id("grants"),
		guardUse, inline, g.id("grants"),
		g.id("grants"), g.id("grants"))
}

func renderVoting(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    mapping(uint256 => uint256) %s;
    mapping(address => bool) %s;
    function vote(uint256 option) public {
        require(!%s[msg.sender]);
        require(option < 4);
        %s[msg.sender] = true;
        %s[option] += 1;
    }
    function tally(uint256 option) public view returns (uint256) { return %s[option]; }
    function total() public view returns (uint256) {
        uint256 sum = 0;
        uint256 i = 0;
        while (i < 4) {
            sum += %s[i];
            i += 1;
        }
        return sum;
    }
}`, g.id("Voting"), g.id("votes"), g.id("voted"),
		g.id("voted"), g.id("voted"), g.id("votes"), g.id("votes"),
		g.id("votes"))
}

func renderEscrow(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    address %s;
    uint256 %s;
    constructor() { %s = msg.sender; }
    function fund(address payee) public payable {
        require(msg.sender == %s);
        %s = payee;
        %s += msg.value;
    }
    function release() public {
        require(msg.sender == %s);
        uint256 amount = %s;
        %s = 0;
        send(%s, amount);
    }
}`, g.id("Escrow"), g.id("payer"), g.id("payee"), g.id("held"), g.id("payer"),
		g.id("payer"), g.id("payee"), g.id("held"),
		g.id("payer"), g.id("held"), g.id("held"), g.id("payee"))
}

func renderClosedAdmin(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    mapping(address => bool) %s;
    constructor() { %s = msg.sender; %s[msg.sender] = true; }
    modifier %s() { require(msg.sender == %s); _; }
    modifier %s() { require(%s[msg.sender]); _; }
    function addAdmin(address a) public %s { %s[a] = true; }
    function removeAdmin(address a) public %s { %s[a] = false; }
    function kill() public %s { selfdestruct(%s); }
}`, g.id("Managed"), g.id("root"), g.id("admins"), g.id("root"), g.id("admins"),
		g.id("onlyRoot"), g.id("root"), g.id("onlyAdmins"), g.id("admins"),
		g.id("onlyRoot"), g.id("admins"), g.id("onlyRoot"), g.id("admins"),
		g.id("onlyAdmins"), g.id("root"))
}

func renderPausable(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    bool %s;
    mapping(address => uint256) %s;
    constructor() { %s = msg.sender; }
    function pause() public { require(msg.sender == %s); %s = true; }
    function unpause() public { require(msg.sender == %s); %s = false; }
    function put() public payable {
        require(!%s);
        %s[msg.sender] += msg.value;
    }
    function take(uint256 amount) public {
        require(!%s);
        require(%s[msg.sender] >= amount);
        %s[msg.sender] -= amount;
        send(msg.sender, amount);
    }
}`, g.id("Pausable"), g.id("owner"), g.id("paused"), g.id("holdings"), g.id("owner"),
		g.id("owner"), g.id("paused"), g.id("owner"), g.id("paused"),
		g.id("paused"), g.id("holdings"),
		g.id("paused"), g.id("holdings"), g.id("holdings"))
}

// renderSweeper is the pattern Section 6.4 singles out: "oftentimes contracts
// are designed to take an address as a parameter to the public function that
// calls selfdestruct, to transfer the remaining balance of the contract to
// this address". With guard modeling this is safe (the function is
// owner-guarded); without it, the parameter beneficiary makes it a massive
// tainted-selfdestruct false positive — the Figure 8b blow-up.
func renderSweeper(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    constructor() { %s = msg.sender; }
    function sweep(address to) public {
        require(msg.sender == %s);
        send(to, balance(this));
    }
    function destroy(address to) public {
        require(msg.sender == %s);
        selfdestruct(to);
    }
}`, g.id("Sweeper"), g.id("owner"), g.id("owner"),
		g.id("owner"), g.id("owner"))
}

// renderUpgradeProxy is an owner-guarded upgradeable proxy. Benign: the
// implementation address is set only behind the owner guard. Under the
// Figure 8b ablation the delegatecall gets (wrongly) flagged; for the
// Securify2 comparison its state-variable delegatecall is a source-level
// false positive (the guard-insensitive UnrestrictedDelegateCall pattern).
func renderUpgradeProxy(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    address %s;
    constructor() { %s = msg.sender; }
    function upgrade(address impl) public {
        require(msg.sender == %s);
        %s = impl;
    }
    function run() public {
        delegatecall(%s);
    }
    function transferOwnership(address newOwner) public {
        require(msg.sender == %s);
        %s = newOwner;
    }
}`, g.id("Proxy"), g.id("owner"), g.id("impl"), g.id("owner"),
		g.id("owner"), g.id("impl"),
		g.id("impl"),
		g.id("owner"), g.id("owner"))
}

// renderGuardedExchange uses the buggy 0x staticcall pattern, but only behind
// an owner guard — safe in practice, flagged only under the no-guards
// ablation.
func renderGuardedExchange(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    mapping(address => bool) %s;
    constructor() { %s = msg.sender; }
    function adminSettle(address wallet, uint256 hash) public {
        require(msg.sender == %s);
        require(staticcall_unchecked(wallet, hash) == 1);
        %s[wallet] = true;
    }
}`, g.id("DarkPool"), g.id("operator"), g.id("cleared"), g.id("operator"),
		g.id("operator"), g.id("cleared"))
}

// renderBackupVault keeps beneficiary addresses in a fixed array — a storage
// region addressed by baseSlot + index, which the analysis cannot resolve to
// a data structure. Benign in the default analysis (the unresolved load is
// left untainted — the paper's deliberate under-approximation); a false
// positive under the Figure 8c conservative-storage ablation, where an
// unresolved load may read any tainted slot (here: the harmless public memo).
func renderBackupVault(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s;
    address[4] %s;
    constructor() { %s = msg.sender; }
    function setMemo(uint256 m) public {
        %s = m;
    }
    function setBackup(uint256 i, address who) public {
        require(msg.sender == %s);
        require(i < 4);
        %s[i] = who;
    }
    function retire(uint256 i) public {
        require(msg.sender == %s);
        require(i < 4);
        selfdestruct(%s[i]);
    }
}`, g.id("BackupVault"), g.id("owner"), g.id("memo"), g.id("backups"), g.id("owner"),
		g.id("memo"),
		g.id("owner"), g.id("backups"),
		g.id("owner"), g.id("backups"))
}

// renderSlotBoard writes constant values into a bounds-checked fixed array —
// unresolved store addresses with untainted values, exercising the
// default-vs-conservative split on the write side.
func renderSlotBoard(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    uint256[8] %s;
    mapping(address => bool) %s;
    function claim(uint256 i) public {
        require(i < 8);
        require(%s[i] == 0);
        require(!%s[msg.sender]);
        %s[i] = 1;
        %s[msg.sender] = true;
    }
    function taken(uint256 i) public view returns (uint256) {
        require(i < 8);
        return %s[i];
    }
}`, g.id("SlotBoard"), g.id("board"), g.id("played"),
		g.id("board"), g.id("played"), g.id("board"), g.id("played"),
		g.id("board"))
}

// --- vulnerable renderers ---

// renderParamKill is the simplest single-transaction tainted selfdestruct:
// the beneficiary is a public parameter, no guard at all. (The bulk of the
// paper's directly-exploitable population.)
func renderParamKill(g *gen) string {
	return fmt.Sprintf(`
contract %s {
%s
    function cleanup(address refund) public {
        selfdestruct(refund);
    }
}`, g.id("Disposable"), g.fillerMembers())
}

func renderVictim(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    mapping(address => bool) %s;
    mapping(address => bool) %s;
    address %s;
%s
    constructor() {
        %s = msg.sender;
        %s[msg.sender] = true;
    }
    modifier %s() { require(%s[msg.sender]); _; }
    modifier %s() { require(%s[msg.sender]); _; }
    function registerSelf() public { %s[msg.sender] = true; }
    function referUser(address user) public %s { %s[user] = true; }
    function referAdmin(address adm) public %s { %s[adm] = true; }
    function changeOwner(address o) public %s { %s = o; }
    function kill() public %s { selfdestruct(%s); }
}`, g.id("Victim"), g.id("admins"), g.id("users"), g.id("owner"), g.fillerMembers(),
		g.id("owner"), g.id("admins"),
		g.id("onlyAdmins"), g.id("admins"), g.id("onlyUsers"), g.id("users"),
		g.id("users"),
		g.id("onlyUsers"), g.id("users"),
		g.id("onlyUsers"), g.id("admins"), // the copy-paste bug
		g.id("onlyAdmins"), g.id("owner"),
		g.id("onlyAdmins"), g.id("owner"))
}

func renderInitOwner(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
%s
    function initOwner(address newOwner) public {
        %s = newOwner;
    }
    function kill() public {
        if (msg.sender == %s) {
            selfdestruct(%s);
        }
    }
}`, g.id("Ownable"), g.id("owner"), g.fillerMembers(),
		g.id("owner"), g.id("owner"), g.id("owner"))
}

func renderAccessibleKill(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
%s
    constructor() { %s = msg.sender; }
    function ping() public view returns (address) { return %s; }
    function kill() public {
        selfdestruct(%s);
    }
}`, g.id("Killable"), g.id("beneficiary"), g.fillerMembers(),
		g.id("beneficiary"), g.id("beneficiary"), g.id("beneficiary"))
}

func renderTaintedBeneficiary(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    address %s;
    constructor() { %s = msg.sender; }
    function initAdmin(address admin) public {
        %s = admin;
    }
    function kill() public {
        if (msg.sender == %s) {
            selfdestruct(%s);
        }
    }
}`, g.id("AdminPay"), g.id("owner"), g.id("administrator"), g.id("owner"),
		g.id("administrator"), g.id("owner"), g.id("administrator"))
}

func renderOpenDelegate(g *gen) string {
	return fmt.Sprintf(`
contract %s {
%s
    function migrate(address delegate) public {
        delegatecall(delegate);
    }
    function version() public view returns (uint256) { return %d; }
}`, g.id("Migrator"), g.fillerMembers(), 1+g.r.Intn(9))
}

func renderZeroExchange(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    mapping(address => bool) %s;
    function isValidSignature(address wallet, uint256 hash) public returns (uint256) {
        uint256 ok = staticcall_unchecked(wallet, hash);
        return ok;
    }
    function settle(address wallet, uint256 hash) public {
        require(staticcall_unchecked(wallet, hash) == 1);
        %s[msg.sender] = true;
    }
}`, g.id("Exchange"), g.id("settled"), g.id("settled"))
}

func renderBuyableOwner(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s = %d;
    constructor() { %s = msg.sender; }
    function buyOwnership() public payable {
        require(msg.value >= %s);
        %s = msg.sender;
    }
    function kill() public {
        require(msg.sender == %s);
        selfdestruct(%s);
    }
}`, g.id("KingOfHill"), g.id("owner"), g.id("price"), g.amount(),
		g.id("owner"), g.id("price"), g.id("owner"), g.id("owner"), g.id("owner"))
}

// renderParityWallet models the Parity hack shape: an initWallet intended to
// run once from the constructor is left publicly callable, reinitializing the
// owner before the guarded kill.
func renderParityWallet(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s;
    bool %s;
    function initWallet(address ownerIn, uint256 limit) public {
        %s = ownerIn;
        %s = limit;
        %s = true;
    }
    function execute(address to, uint256 amount) public {
        require(msg.sender == %s);
        require(amount <= %s);
        send(to, amount);
    }
    function kill() public {
        require(msg.sender == %s);
        selfdestruct(%s);
    }
}`, g.id("Wallet"), g.id("walletOwner"), g.id("dailyLimit"), g.id("initialized"),
		g.id("walletOwner"), g.id("dailyLimit"), g.id("initialized"),
		g.id("walletOwner"), g.id("dailyLimit"),
		g.id("walletOwner"), g.id("walletOwner"))
}

// renderOpenMint is a tainted-owner-variable case without selfdestruct: the
// supply controller can be replaced by anyone, diluting the token (the ERC20
// value-manipulation the paper motivates in Section 3.1).
func renderOpenMint(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s;
    mapping(address => uint256) %s;
    function setController(address c) public {
        %s = c;
    }
    function mint(address to, uint256 value) public {
        require(msg.sender == %s);
        %s += value;
        %s[to] += value;
    }
    function balanceOf(address who) public view returns (uint256) { return %s[who]; }
}`, g.id("MintableToken"), g.id("controller"), g.id("supply"), g.id("holdings"),
		g.id("controller"), g.id("controller"), g.id("supply"), g.id("holdings"), g.id("holdings"))
}

// renderTimelock is a benign two-role vault with a time delay.
func renderTimelock(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    uint256 %s;
    uint256 %s;
    address %s;
    constructor() { %s = msg.sender; }
    function queue(address to, uint256 amount) public {
        require(msg.sender == %s);
        %s = to;
        %s = amount;
        %s = block.timestamp + %d;
    }
    function execute() public {
        require(msg.sender == %s);
        require(block.timestamp >= %s);
        require(%s > 0);
        uint256 amount = %s;
        %s = 0;
        send(%s, amount);
    }
}`, g.id("Timelock"), g.id("admin"), g.id("eta"), g.id("pendingAmount"), g.id("pendingTo"),
		g.id("admin"),
		g.id("admin"), g.id("pendingTo"), g.id("pendingAmount"), g.id("eta"), 3600*(1+g.r.Intn(48)),
		g.id("admin"), g.id("eta"), g.id("pendingAmount"), g.id("pendingAmount"),
		g.id("pendingAmount"), g.id("pendingTo"))
}

// renderAuction is a benign highest-bidder auction with refunds.
func renderAuction(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    address %s;
    uint256 %s;
    mapping(address => uint256) %s;
    constructor() { %s = msg.sender; }
    function bid() public payable {
        require(msg.value > %s);
        if (%s != address(0)) {
            %s[%s] += %s;
        }
        %s = msg.sender;
        %s = msg.value;
    }
    function refund() public {
        uint256 due = %s[msg.sender];
        require(due > 0);
        %s[msg.sender] = 0;
        send(msg.sender, due);
    }
    function settle() public {
        require(msg.sender == %s);
        send(%s, %s);
    }
}`, g.id("Auction"), g.id("seller"), g.id("highBidder"), g.id("highBid"), g.id("refunds"),
		g.id("seller"),
		g.id("highBid"), g.id("highBidder"),
		g.id("refunds"), g.id("highBidder"), g.id("highBid"),
		g.id("highBidder"), g.id("highBid"),
		g.id("refunds"), g.id("refunds"),
		g.id("seller"), g.id("seller"), g.id("highBid"))
}

// renderNameRegistry is a benign first-come registry with owner transfer of
// individual entries (sender-keyed writes only).
func renderNameRegistry(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    mapping(uint256 => address) %s;
    mapping(address => uint256) %s;
    function register(uint256 nameHash) public {
        require(%s[nameHash] == address(0));
        %s[nameHash] = msg.sender;
        %s[msg.sender] = nameHash;
    }
    function release(uint256 nameHash) public {
        require(%s[nameHash] == msg.sender);
        %s[nameHash] = address(0);
        %s[msg.sender] = 0;
    }
    function ownerOf(uint256 nameHash) public view returns (address) {
        return %s[nameHash];
    }
}`, g.id("Names"), g.id("owners"), g.id("names"),
		g.id("owners"), g.id("owners"), g.id("names"),
		g.id("owners"), g.id("owners"), g.id("names"),
		g.id("owners"))
}

// renderDeepChain escalates through three privilege tiers before the owner
// write — a five-transaction composite (register -> promote2 -> promote3 ->
// setOwner -> kill) far beyond any bounded symbolic search.
func renderDeepChain(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    mapping(address => bool) %s;
    mapping(address => bool) %s;
    mapping(address => bool) %s;
    address %s;
    constructor() { %s = msg.sender; }
    function enroll() public { %s[msg.sender] = true; }
    function promote2(address a) public {
        require(%s[msg.sender]);
        %s[a] = true;
    }
    function promote3(address a) public {
        require(%s[msg.sender]);
        %s[a] = true;
    }
    function setOwner(address a) public {
        require(%s[msg.sender]);
        %s = a;
    }
    function kill() public {
        require(msg.sender == %s);
        selfdestruct(%s);
    }
}`, g.id("Hierarchy"), g.id("tier1"), g.id("tier2"), g.id("tier3"), g.id("owner"),
		g.id("owner"),
		g.id("tier1"),
		g.id("tier1"), g.id("tier2"),
		g.id("tier2"), g.id("tier3"),
		g.id("tier3"), g.id("owner"),
		g.id("owner"), g.id("owner"))
}

// --- trap renderers: engineered analysis false positives ---

// renderTrapRevokeOnly: the public function can only REMOVE the caller from
// the admin set, but a membership-granularity analysis sees an
// attacker-reachable write into the guard's data structure — Figure 6's
// "imprecise data structure inference" false positive.
func renderTrapRevokeOnly(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    mapping(address => bool) %s;
    constructor() { %s = msg.sender; %s[msg.sender] = true; }
    function renounce() public {
        %s[msg.sender] = false;
    }
    function addAdmin(address a) public {
        require(msg.sender == %s);
        %s[a] = true;
    }
    function kill() public {
        require(%s[msg.sender]);
        selfdestruct(%s);
    }
}`, g.id("Renounceable"), g.id("root"), g.id("admins"), g.id("root"), g.id("admins"),
		g.id("admins"),
		g.id("root"), g.id("admins"),
		g.id("admins"), g.id("root"))
}

// renderTrapThreshold: membership value is capped at 1 but the guard demands
// at least 2 — satisfiable only with value reasoning the analysis lacks
// (Figure 6's "complex path condition" false positive).
func renderTrapThreshold(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    mapping(address => uint256) %s;
    constructor() { %s = msg.sender; %s[msg.sender] = 2; }
    function enroll() public {
        %s[msg.sender] = 1;
    }
    function kill() public {
        require(%s[msg.sender] >= 2);
        selfdestruct(%s);
    }
}`, g.id("Quorum"), g.id("root"), g.id("weight"), g.id("root"), g.id("weight"),
		g.id("weight"),
		g.id("weight"), g.id("root"))
}

// renderTrapScratch: an internal helper shared by a public logger and an
// owner-guarded rotation. The helper's parameter cell receives taint from the
// public call site; flow-insensitive inter-procedural merging leaks it into
// the guarded path's owner write, which only ever re-assigns owner := owner —
// Figure 6's "bug in inter-function flow" false positive.
func renderTrapScratch(g *gen) string {
	return fmt.Sprintf(`
contract %s {
    address %s;
    address %s;
    constructor() { %s = msg.sender; }
    function echo(address v) internal returns (address) {
        return v;
    }
    function audit(address x) public {
        %s = echo(x);
    }
    function rotate() public {
        %s = echo(%s);
    }
    function kill() public {
        require(msg.sender == %s);
        selfdestruct(%s);
    }
}`, g.id("Auditor"), g.id("owner"), g.id("lastSeen"), g.id("owner"),
		g.id("lastSeen"),
		g.id("owner"), g.id("owner"),
		g.id("owner"), g.id("owner"))
}
