package datalog

// Parallel semi-naive evaluation: each fixpoint iteration reads a frozen
// snapshot of every relation, fans the per-rule delta row ranges across a
// bounded worker pool, and merges the workers' private tuple buffers into the
// global arenas at a barrier. Results are bit-identical to the sequential
// engine at any worker count because a stratum's least fixpoint is unique and
// the merge order is deterministic (task index, then derivation order within
// a task) — see DESIGN.md §8 for the full argument.
//
// Workers never mutate shared state: the access path of every atom is planned
// statically per join order, the indices those paths need are built before
// the join phase (in parallel, one build per missing index), and all scratch
// (environments, head buffers, output buffers, dedup sets) is pooled with
// sync.Pool so repeated Run calls — one per analyzed contract in a sweep —
// allocate nothing on the steady state.

import (
	"sync"
	"sync/atomic"
	"time"
)

// EngineStats is the per-stage breakdown of one Run call.
type EngineStats struct {
	// Parallelism is the effective worker count (1 = sequential).
	Parallelism int
	// Strata evaluated and total fixpoint iterations across them.
	Strata     int
	Iterations int
	// Tasks is the number of (rule, delta chunk) units evaluated. Zero in
	// sequential mode, where rules fire inline.
	Tasks int
	// IndexBuild is time spent materializing single- and two-column indices
	// before join phases. Sequential evaluation builds indices lazily inside
	// joins, so there it is folded into Join.
	IndexBuild time.Duration
	// Join is time spent enumerating rule bodies (the delta joins).
	Join time.Duration
	// Merge is time spent deduplicating worker buffers into the global tuple
	// sets at iteration barriers. Zero in sequential mode (inline inserts).
	Merge time.Duration
}

// SetParallelism sets the worker count for subsequent Run calls: values of
// one or less evaluate sequentially; larger values evaluate every fixpoint
// iteration with up to n workers. The derived tuple sets are identical at any
// setting; only row insertion order (invisible through Query/Has/Count) and
// wall-clock change.
func (p *Program) SetParallelism(n int) { p.parallelism = n }

// EngineStats returns the stage breakdown of the most recent Run call.
func (p *Program) EngineStats() EngineStats { return p.stats }

// access is one atom's statically planned access path: the index (if any) it
// probes given the variables bound by earlier atoms in the join order.
type access struct {
	kind accessKind
	pos  [2]uint8 // bound columns for single/pair access
}

type accessKind uint8

const (
	accessScan   accessKind = iota // no bound column: full arena scan
	accessSingle                   // one bound column: single-column index
	accessPair                     // two bound columns: composite index
	accessProbe                    // fully bound negated atom: membership probe
)

// planFor returns the cached join order for deltaAtom together with the
// access plan of each atom in that order. The plan replays orderFor's
// boundness walk, so it agrees exactly with what selectCandidates would pick
// dynamically — the property that lets workers read prebuilt indices without
// ever triggering a lazy build.
func (c *compiledRule) planFor(deltaAtom int) ([]int, []access) {
	order := c.orderFor(deltaAtom)
	cacheIdx := deltaAtom + 1
	if c.plans == nil {
		c.plans = make([][]access, len(c.body)+1)
	}
	if c.plans[cacheIdx] != nil {
		return order, c.plans[cacheIdx]
	}
	bound := make([]bool, c.nVars)
	plan := make([]access, len(order))
	for oi, ai := range order {
		a := &c.body[ai]
		var pos [2]uint8
		nb := 0
		fullyBound := true
		for k, arg := range a.args {
			isBound := arg.slot == slotConst || (arg.slot >= 0 && bound[arg.slot])
			if !isBound {
				fullyBound = false
				continue
			}
			if nb < 2 {
				pos[nb] = uint8(k)
				nb++
			}
		}
		switch {
		case a.neg && fullyBound:
			plan[oi] = access{kind: accessProbe}
		case nb == 0:
			plan[oi] = access{kind: accessScan}
		case nb == 1:
			plan[oi] = access{kind: accessSingle, pos: pos}
		default:
			plan[oi] = access{kind: accessPair, pos: pos}
		}
		if !a.neg {
			for _, arg := range a.args {
				if arg.slot >= 0 {
					bound[arg.slot] = true
				}
			}
		}
	}
	c.plans[cacheIdx] = plan
	return order, plan
}

// evalTask is one unit of parallel work: a rule fired with its first-ordered
// atom (the delta atom, or the naive pass's scan atom) restricted to the row
// range [lo, hi). Derived head tuples land in the private out buffer.
type evalTask struct {
	rule       *Rule
	order      []int
	plan       []access
	restricted bool
	lo, hi     int
	out        []Term
	buf        *outBuf // pool token: returned (with the grown out) at merge
}

// scratch is one worker's private evaluation state, pooled across Run calls.
type scratch struct {
	env   []Term
	head  []Term
	probe []Term
	// seen dedups derived tuples within one task (head arity ≤ 4 only; wider
	// heads rely on the merge dedup alone).
	seen map[[4]int32]struct{}
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{seen: make(map[[4]int32]struct{})}
}}

// outBuf wraps a pooled flat tuple buffer.
type outBuf struct{ data []Term }

var outBufPool = sync.Pool{New: func() any { return new(outBuf) }}

// evalStratumParallel runs the stratum to fixpoint with the worker pool.
// Every iteration is: plan tasks → build missing indices → parallel join into
// private buffers → barrier → deterministic merge.
func (p *Program) evalStratumParallel(rules []*Rule, workers int) {
	base := map[*Relation]int{}
	for _, r := range rules {
		rel := r.c.head.rel
		if _, ok := base[rel]; !ok {
			base[rel] = rel.Len()
		}
	}
	lo := map[*Relation]int{}
	hi := map[*Relation]int{}
	naive := true
	for {
		prev := map[*Relation]int{}
		for rel := range base {
			prev[rel] = rel.Len()
		}
		var tasks []*evalTask
		if naive {
			tasks = p.naiveTasks(rules, workers)
			naive = false
		} else {
			tasks = p.deltaTasks(rules, lo, hi, workers)
		}
		if len(tasks) == 0 {
			break
		}
		t0 := time.Now()
		p.prebuildIndices(tasks, workers)
		t1 := time.Now()
		runTasks(p, tasks, workers)
		t2 := time.Now()
		p.mergeTasks(tasks)
		t3 := time.Now()
		p.stats.IndexBuild += t1.Sub(t0)
		p.stats.Join += t2.Sub(t1)
		p.stats.Merge += t3.Sub(t2)
		p.stats.Iterations++
		p.stats.Tasks += len(tasks)

		grown := false
		for rel := range base {
			lo[rel], hi[rel] = prev[rel], rel.Len()
			if lo[rel] < hi[rel] {
				grown = true
			}
		}
		if !grown {
			break
		}
	}
}

// chunkSize picks the delta partition granularity: enough chunks to keep the
// pool busy, but never chunks so small the scheduling overhead dominates. It
// depends only on (n, workers), keeping task decomposition deterministic.
func chunkSize(n, workers int) int {
	chunks := workers * 2
	size := (n + chunks - 1) / chunks
	if size < 16 {
		size = 16
	}
	return size
}

// naiveTasks plans the first (all-facts) pass: one task per rule, chunked by
// the first-ordered atom's row range when that atom is a full scan.
func (p *Program) naiveTasks(rules []*Rule, workers int) []*evalTask {
	var tasks []*evalTask
	for _, r := range rules {
		order, plan := r.c.planFor(-1)
		if len(order) > 0 && plan[0].kind == accessScan {
			// An empty scan relation yields no chunks — and the rule cannot
			// fire this pass, matching the sequential engine.
			n := r.c.body[order[0]].rel.Len()
			size := chunkSize(n, workers)
			for start := 0; start < n; start += size {
				end := start + size
				if end > n {
					end = n
				}
				tasks = append(tasks, newTask(r, order, plan, true, start, end))
			}
		} else {
			tasks = append(tasks, newTask(r, order, plan, false, 0, 0))
		}
	}
	return tasks
}

// deltaTasks plans one semi-naive iteration: for every rule and every
// positive body atom whose relation grew last iteration, fire the rule with
// that atom restricted to chunks of the delta range.
func (p *Program) deltaTasks(rules []*Rule, lo, hi map[*Relation]int, workers int) []*evalTask {
	var tasks []*evalTask
	for _, r := range rules {
		for i := range r.c.body {
			a := &r.c.body[i]
			if a.neg {
				continue
			}
			l, h := lo[a.rel], hi[a.rel]
			if l >= h {
				continue
			}
			order, plan := r.c.planFor(i)
			size := chunkSize(h-l, workers)
			for start := l; start < h; start += size {
				end := start + size
				if end > h {
					end = h
				}
				tasks = append(tasks, newTask(r, order, plan, true, start, end))
			}
		}
	}
	return tasks
}

func newTask(r *Rule, order []int, plan []access, restricted bool, lo, hi int) *evalTask {
	buf := outBufPool.Get().(*outBuf)
	return &evalTask{rule: r, order: order, plan: plan, restricted: restricted, lo: lo, hi: hi, out: buf.data[:0], buf: buf}
}

// indexReq identifies one index a join phase needs: a single-column index on
// pos[0], or (pair) a composite index on (pos[0], pos[1]).
type indexReq struct {
	rel  *Relation
	pair bool
	pos  [2]uint8
}

// prebuildIndices materializes every index the tasks' access plans will
// probe, building the missing ones in parallel. Workers then only ever read
// index maps, so the join phase is data-race free by construction.
func (p *Program) prebuildIndices(tasks []*evalTask, workers int) {
	seen := map[indexReq]bool{}
	var reqs []indexReq
	for _, t := range tasks {
		for oi, acc := range t.plan {
			atom := &t.rule.c.body[t.order[oi]]
			var req indexReq
			switch acc.kind {
			case accessSingle:
				req = indexReq{rel: atom.rel, pos: [2]uint8{acc.pos[0], 0}}
			case accessPair:
				req = indexReq{rel: atom.rel, pair: true, pos: acc.pos}
			default:
				continue
			}
			if seen[req] {
				continue
			}
			seen[req] = true
			if req.pair {
				if req.rel.comps != nil {
					if _, ok := req.rel.comps[req.pos]; ok {
						continue
					}
				}
			} else {
				if req.rel.indices != nil && req.rel.indices[req.pos[0]] != nil {
					continue
				}
			}
			reqs = append(reqs, req)
		}
	}
	if len(reqs) == 0 {
		return
	}
	// Allocate the holders single-threaded; fill the distinct slots in
	// parallel; publish after the barrier.
	for _, req := range reqs {
		if req.pair && req.rel.comps == nil {
			req.rel.comps = map[[2]uint8]map[uint64][]int32{}
		}
		if !req.pair && req.rel.indices == nil {
			req.rel.indices = make([]map[Term][]int32, req.rel.Arity)
		}
	}
	singles := make([]map[Term][]int32, len(reqs))
	pairs := make([]map[uint64][]int32, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	n := workers
	if n > len(reqs) {
		n = len(reqs)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				req := reqs[i]
				set := req.rel.set
				if req.pair {
					idx := map[uint64][]int32{}
					p1, p2 := int(req.pos[0]), int(req.pos[1])
					for id := int32(0); int(id) < set.n; id++ {
						row := set.row(id)
						k := pairKey(row[p1], row[p2])
						idx[k] = append(idx[k], id)
					}
					pairs[i] = idx
				} else {
					idx := map[Term][]int32{}
					pos := int(req.pos[0])
					for id := int32(0); int(id) < set.n; id++ {
						t := set.row(id)[pos]
						idx[t] = append(idx[t], id)
					}
					singles[i] = idx
				}
			}
		}()
	}
	wg.Wait()
	for i, req := range reqs {
		if req.pair {
			req.rel.comps[req.pos] = pairs[i]
		} else {
			req.rel.indices[req.pos[0]] = singles[i]
		}
	}
}

// runTasks drains the task list with up to `workers` pooled goroutines.
func runTasks(p *Program, tasks []*evalTask, workers int) {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		sc := scratchPool.Get().(*scratch)
		for _, t := range tasks {
			p.runTask(t, sc)
		}
		scratchPool.Put(sc)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := scratchPool.Get().(*scratch)
			defer scratchPool.Put(sc)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				p.runTask(tasks[i], sc)
			}
		}()
	}
	wg.Wait()
}

// mergeTasks folds every task's private buffer into the global tuple sets in
// task order. Insertion dedups; together with the deterministic task
// decomposition this makes row ids reproducible run-to-run.
func (p *Program) mergeTasks(tasks []*evalTask) {
	for _, t := range tasks {
		rel := t.rule.c.head.rel
		ar := rel.Arity
		for off := 0; off+ar <= len(t.out); off += ar {
			rel.insert(t.out[off : off+ar])
		}
		// Recycle the grown buffer: every Get in newTask is matched by
		// exactly one Put here.
		t.buf.data = t.out[:0]
		outBufPool.Put(t.buf)
		t.out, t.buf = nil, nil
	}
}

// runTask enumerates all substitutions of the task's rule with the restricted
// first atom, appending new head tuples (pre-filtered against the frozen
// global set and deduplicated task-locally) to the private buffer.
func (p *Program) runTask(t *evalTask, sc *scratch) {
	c := t.rule.c
	order, plan := t.order, t.plan
	if cap(sc.env) < c.nVars {
		sc.env = make([]Term, c.nVars)
	}
	env := sc.env[:c.nVars]
	for i := range env {
		env[i] = -1
	}
	headArity := len(c.head.args)
	if cap(sc.head) < headArity {
		sc.head = make([]Term, headArity)
	}
	localDedup := headArity <= 4
	if localDedup && len(sc.seen) > 0 {
		clear(sc.seen)
	}
	headRel := c.head.rel

	var solve func(oi int)
	solve = func(oi int) {
		if oi == len(order) {
			tuple := sc.head[:headArity]
			for k, a := range c.head.args {
				if a.slot >= 0 {
					tuple[k] = env[a.slot]
				} else {
					tuple[k] = a.konst
				}
			}
			if headRel.set.has(tuple) {
				return
			}
			if localDedup {
				k := pack4(tuple)
				if _, dup := sc.seen[k]; dup {
					return
				}
				sc.seen[k] = struct{}{}
			}
			t.out = append(t.out, tuple...)
			return
		}
		ai := order[oi]
		atom := &c.body[ai]
		acc := plan[oi]
		if atom.neg {
			if !negMatchPlanned(atom, acc, env, sc) {
				solve(oi + 1)
			}
			return
		}
		candidates, scanTo := plannedCandidates(atom, acc, env)
		restricted := t.restricted && oi == 0
		match := func(id int32) {
			if restricted && (int(id) < t.lo || int(id) >= t.hi) {
				return
			}
			row := atom.rel.set.row(id)
			var boundSlots [8]int32
			extra := boundSlots[:0]
			ok := true
			for k, a := range atom.args {
				switch {
				case a.slot == slotConst:
					ok = row[k] == a.konst
				case a.slot == slotWild:
					// wildcard
				default:
					if v := env[a.slot]; v >= 0 {
						ok = v == row[k]
					} else {
						env[a.slot] = row[k]
						extra = append(extra, a.slot)
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				solve(oi + 1)
			}
			for _, s := range extra {
				env[s] = -1
			}
		}
		if candidates != nil {
			for _, id := range candidates {
				match(id)
			}
		} else {
			from, to := 0, scanTo
			if restricted {
				from, to = t.lo, t.hi
			}
			for id := from; id < to; id++ {
				match(int32(id))
			}
		}
	}
	solve(0)
}

// plannedCandidates is selectCandidates with the access path fixed at plan
// time: a pure read of prebuilt index maps, safe under concurrency.
func plannedCandidates(atom *catom, acc access, env []Term) ([]int32, int) {
	switch acc.kind {
	case accessSingle:
		pos := int(acc.pos[0])
		return atom.rel.indices[pos][plannedValue(atom, pos, env)], 0
	case accessPair:
		p1, p2 := int(acc.pos[0]), int(acc.pos[1])
		k := pairKey(plannedValue(atom, p1, env), plannedValue(atom, p2, env))
		return atom.rel.comps[acc.pos][k], 0
	default:
		return nil, atom.rel.Len()
	}
}

// plannedValue resolves the bound value of column k (a constant or a bound
// environment slot — the planner guarantees one of the two).
func plannedValue(atom *catom, k int, env []Term) Term {
	if a := atom.args[k]; a.slot == slotConst {
		return a.konst
	}
	return env[atom.args[k].slot]
}

// negMatchPlanned is negMatch with the access path fixed at plan time.
func negMatchPlanned(atom *catom, acc access, env []Term, sc *scratch) bool {
	if acc.kind == accessProbe {
		if cap(sc.probe) < len(atom.args) {
			sc.probe = make([]Term, 0, len(atom.args))
		}
		probe := sc.probe[:0]
		for _, a := range atom.args {
			if a.slot >= 0 {
				probe = append(probe, env[a.slot])
			} else {
				probe = append(probe, a.konst)
			}
		}
		sc.probe = probe
		return atom.rel.Has(probe)
	}
	candidates, scanTo := plannedCandidates(atom, acc, env)
	check := func(id int32) bool {
		row := atom.rel.set.row(id)
		for k, a := range atom.args {
			switch {
			case a.slot == slotConst:
				if row[k] != a.konst {
					return false
				}
			case a.slot >= 0 && env[a.slot] >= 0:
				if row[k] != env[a.slot] {
					return false
				}
			}
		}
		return true
	}
	if candidates != nil {
		for _, id := range candidates {
			if check(id) {
				return true
			}
		}
		return false
	}
	for id := 0; id < scanTo; id++ {
		if check(int32(id)) {
			return true
		}
	}
	return false
}
