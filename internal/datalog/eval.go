package datalog

import (
	"fmt"
	"sort"
)

// Run stratifies the program and evaluates every stratum to fixpoint with
// semi-naive iteration. It returns an error if negation occurs inside a
// recursive cycle (the program is not stratifiable).
func (p *Program) Run() error {
	strata, err := p.stratify()
	if err != nil {
		return err
	}
	for _, stratum := range strata {
		p.evalStratum(stratum)
	}
	return nil
}

// stratify groups rules into evaluation strata. Relations are partitioned
// into strongly connected components of the dependency graph; a negative
// dependency inside an SCC is an error. Strata are SCCs in topological order.
func (p *Program) stratify() ([][]*Rule, error) {
	// Dependency edges: head depends on each body relation.
	type dep struct {
		to  string
		neg bool
	}
	deps := map[string][]dep{}
	for _, r := range p.rules {
		for _, a := range r.Body {
			deps[r.Head.Rel] = append(deps[r.Head.Rel], dep{to: a.Rel, neg: a.Neg})
		}
	}
	// Tarjan SCC over all relations.
	var names []string
	for name := range p.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	counter := 0
	nComps := 0
	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, d := range deps[v] {
			w := d.to
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComps
				if w == v {
					break
				}
			}
			nComps++
		}
	}
	for _, name := range names {
		if _, seen := index[name]; !seen {
			strongConnect(name)
		}
	}
	// Negative edge within one SCC => unstratifiable.
	for from, ds := range deps {
		for _, d := range ds {
			if d.neg && comp[from] == comp[d.to] {
				return nil, fmt.Errorf("datalog: not stratifiable: %s depends negatively on %s within a cycle", from, d.to)
			}
		}
	}
	// Stratum number per component: longest-path layering so every dependency
	// (and strictly every negative dependency) is in an earlier-or-equal
	// stratum. Tarjan emits components in reverse topological order, so a
	// simple pass assigning stratum = max(dep strata (+1 if crossing
	// components)) converges by processing components in emission order.
	compStratum := make([]int, nComps)
	changed := true
	for changed {
		changed = false
		for from, ds := range deps {
			for _, d := range ds {
				want := compStratum[comp[d.to]]
				if comp[d.to] != comp[from] {
					want++
				}
				if compStratum[comp[from]] < want {
					compStratum[comp[from]] = want
					changed = true
				}
			}
		}
	}
	// Group rules by their head's stratum, ordered.
	maxStratum := 0
	for _, s := range compStratum {
		if s > maxStratum {
			maxStratum = s
		}
	}
	out := make([][]*Rule, maxStratum+1)
	for _, r := range p.rules {
		s := compStratum[comp[r.Head.Rel]]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// evalStratum runs the stratum's rules to fixpoint. The first pass is naive
// (all facts); subsequent passes are semi-naive, re-firing only rules whose
// positive body atoms can match a tuple derived in the previous pass.
func (p *Program) evalStratum(rules []*Rule) {
	// delta: tuples derived in the previous iteration, per relation.
	delta := map[string]map[string]bool{}
	mark := func(rel string, tuple []Term, into map[string]map[string]bool) {
		if into[rel] == nil {
			into[rel] = map[string]bool{}
		}
		into[rel][key(tuple)] = true
	}
	// First pass: evaluate every rule against all current facts.
	next := map[string]map[string]bool{}
	for _, r := range rules {
		p.fireRule(r, nil, func(tuple []Term) {
			if p.rels[r.Head.Rel].insert(tuple) {
				mark(r.Head.Rel, tuple, next)
			}
		})
	}
	for len(next) > 0 {
		delta, next = next, map[string]map[string]bool{}
		for _, r := range rules {
			// Semi-naive: fire once per positive atom that has a delta.
			for i, a := range r.Body {
				if a.Neg || delta[a.Rel] == nil {
					continue
				}
				p.fireRule(r, &seminaive{atomIdx: i, delta: delta[a.Rel]}, func(tuple []Term) {
					if p.rels[r.Head.Rel].insert(tuple) {
						mark(r.Head.Rel, tuple, next)
					}
				})
			}
		}
	}
}

// seminaive restricts one body atom to the delta set.
type seminaive struct {
	atomIdx int
	delta   map[string]bool
}

// fireRule enumerates all substitutions satisfying the rule body and emits
// the corresponding head tuples.
func (p *Program) fireRule(r *Rule, sn *seminaive, emit func([]Term)) {
	env := map[string]Term{}
	var solve func(i int)
	solve = func(i int) {
		if i == len(r.Body) {
			tuple := make([]Term, len(r.Head.Args))
			for k, arg := range r.Head.Args {
				if arg.IsVar {
					tuple[k] = env[arg.Var]
				} else {
					tuple[k] = arg.Const
				}
			}
			emit(tuple)
			return
		}
		atom := r.Body[i]
		rel := p.rels[atom.Rel]
		if atom.Neg {
			tuple := make([]Term, len(atom.Args))
			for k, arg := range atom.Args {
				if arg.IsVar {
					tuple[k] = env[arg.Var]
				} else {
					tuple[k] = arg.Const
				}
			}
			if !rel.Has(tuple) {
				solve(i + 1)
			}
			return
		}
		// Choose candidates: a bound column's index if available.
		candidates := rel.tuples
		for pos, arg := range atom.Args {
			var bound Term
			ok := false
			if !arg.IsVar {
				bound, ok = arg.Const, true
			} else if arg.Var != "_" {
				bound, ok = envLookup(env, arg.Var)
			}
			if ok {
				candidates = rel.index(pos)[bound]
				break
			}
		}
		for _, tuple := range candidates {
			if sn != nil && i == sn.atomIdx && !sn.delta[key(tuple)] {
				continue
			}
			var bound []string
			match := true
			for k, arg := range atom.Args {
				switch {
				case !arg.IsVar:
					if tuple[k] != arg.Const {
						match = false
					}
				case arg.Var == "_":
					// wildcard
				default:
					if v, ok := env[arg.Var]; ok {
						if v != tuple[k] {
							match = false
						}
					} else {
						env[arg.Var] = tuple[k]
						bound = append(bound, arg.Var)
					}
				}
				if !match {
					break
				}
			}
			if match {
				solve(i + 1)
			}
			for _, v := range bound {
				delete(env, v)
			}
		}
	}
	solve(0)
}

func envLookup(env map[string]Term, v string) (Term, bool) {
	t, ok := env[v]
	return t, ok
}
