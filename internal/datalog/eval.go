package datalog

import (
	"fmt"
	"sort"
	"time"
)

// Run stratifies the program and evaluates every stratum to fixpoint with
// semi-naive iteration — sequentially, or with the worker pool configured via
// SetParallelism (the derived tuple sets are identical either way). It
// returns an error if negation occurs inside a recursive cycle (the program
// is not stratifiable).
func (p *Program) Run() error {
	strata, err := p.stratify()
	if err != nil {
		return err
	}
	workers := p.parallelism
	if workers < 1 {
		workers = 1
	}
	p.stats = EngineStats{Parallelism: workers, Strata: len(strata)}
	for _, stratum := range strata {
		if workers > 1 {
			p.evalStratumParallel(stratum, workers)
		} else {
			start := time.Now()
			p.evalStratum(stratum)
			// Sequential evaluation interleaves lazy index builds and inline
			// inserts with the joins, so the whole stratum lands in Join.
			p.stats.Join += time.Since(start)
		}
	}
	return nil
}

// stratify groups rules into evaluation strata. Relations are partitioned
// into strongly connected components of the dependency graph; a negative
// dependency inside an SCC is an error. Strata are SCCs in topological order.
func (p *Program) stratify() ([][]*Rule, error) {
	// Dependency edges: head depends on each body relation.
	type dep struct {
		to  string
		neg bool
	}
	deps := map[string][]dep{}
	for _, r := range p.rules {
		for _, a := range r.Body {
			deps[r.Head.Rel] = append(deps[r.Head.Rel], dep{to: a.Rel, neg: a.Neg})
		}
	}
	// Tarjan SCC over all relations.
	var names []string
	for name := range p.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	counter := 0
	nComps := 0
	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, d := range deps[v] {
			w := d.to
			if _, seen := index[w]; !seen {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComps
				if w == v {
					break
				}
			}
			nComps++
		}
	}
	for _, name := range names {
		if _, seen := index[name]; !seen {
			strongConnect(name)
		}
	}
	// Negative edge within one SCC => unstratifiable.
	for from, ds := range deps {
		for _, d := range ds {
			if d.neg && comp[from] == comp[d.to] {
				return nil, fmt.Errorf("datalog: not stratifiable: %s depends negatively on %s within a cycle", from, d.to)
			}
		}
	}
	// Stratum number per component: longest-path layering so every dependency
	// (and strictly every negative dependency) is in an earlier-or-equal
	// stratum. Tarjan emits components in reverse topological order, so a
	// simple pass assigning stratum = max(dep strata (+1 if crossing
	// components)) converges by processing components in emission order.
	compStratum := make([]int, nComps)
	changed := true
	for changed {
		changed = false
		for from, ds := range deps {
			for _, d := range ds {
				want := compStratum[comp[d.to]]
				if comp[d.to] != comp[from] {
					want++
				}
				if compStratum[comp[from]] < want {
					compStratum[comp[from]] = want
					changed = true
				}
			}
		}
	}
	// Group rules by their head's stratum, ordered.
	maxStratum := 0
	for _, s := range compStratum {
		if s > maxStratum {
			maxStratum = s
		}
	}
	out := make([][]*Rule, maxStratum+1)
	for _, r := range p.rules {
		s := compStratum[comp[r.Head.Rel]]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// evalStratum runs the stratum's rules to fixpoint. The first pass is naive
// (all facts); subsequent passes are semi-naive. Because relations are
// append-only arenas with dense row ids, the delta derived by one pass is
// simply the row range [lo, hi) that grew during it — no tuples are copied or
// re-marked between iterations.
func (p *Program) evalStratum(rules []*Rule) {
	// Head relations of this stratum are the only ones that can grow.
	base := map[*Relation]int{}
	for _, r := range rules {
		rel := r.c.head.rel
		if _, ok := base[rel]; !ok {
			base[rel] = rel.Len()
		}
	}
	// First pass: evaluate every rule against all current facts.
	p.stats.Iterations++
	for _, r := range rules {
		p.fireRule(r, -1, 0, 0)
	}
	// Delta per relation: rows derived in the previous pass.
	lo := map[*Relation]int{}
	hi := map[*Relation]int{}
	for rel, b := range base {
		lo[rel], hi[rel] = b, rel.Len()
	}
	for {
		p.stats.Iterations++
		cur := map[*Relation]int{}
		for rel := range base {
			cur[rel] = rel.Len()
		}
		for _, r := range rules {
			// Semi-naive: fire once per positive atom with a non-empty delta.
			for i := range r.c.body {
				a := &r.c.body[i]
				if a.neg {
					continue
				}
				l, h := lo[a.rel], hi[a.rel]
				if l >= h {
					continue
				}
				p.fireRule(r, i, l, h)
			}
		}
		grown := false
		for rel := range base {
			lo[rel], hi[rel] = cur[rel], rel.Len()
			if lo[rel] < hi[rel] {
				grown = true
			}
		}
		if !grown {
			break
		}
	}
}

// compiledRule is the slot-indexed form of a rule: variables are numbered
// into env slots, constants are pre-interned, and relations are resolved to
// pointers. Join orders are planned lazily per delta atom.
type compiledRule struct {
	nVars int
	head  catom
	body  []catom
	// orders[i+1] caches the planned join order with body atom i as the
	// semi-naive delta atom; orders[0] is the naive-pass order.
	orders [][]int
	// plans caches the static access path of every atom per order (same
	// indexing as orders); computed by planFor for parallel evaluation.
	plans [][]access
}

type catom struct {
	rel  *Relation
	neg  bool
	args []carg
}

const (
	slotWild  = -1 // wildcard argument
	slotConst = -2 // constant argument (konst holds the term)
)

// carg is one compiled argument: a variable slot, or slotWild/slotConst.
type carg struct {
	slot  int32
	konst Term
}

func (p *Program) compileRule(rule *Rule) *compiledRule {
	slots := map[string]int32{}
	compileAtom := func(a Atom) catom {
		rel := p.rels[a.Rel]
		out := catom{rel: rel, neg: a.Neg, args: make([]carg, len(a.Args))}
		for i, arg := range a.Args {
			switch {
			case !arg.IsVar:
				out.args[i] = carg{slot: slotConst, konst: arg.Const}
			case arg.Var == "_":
				out.args[i] = carg{slot: slotWild}
			default:
				s, ok := slots[arg.Var]
				if !ok {
					s = int32(len(slots))
					slots[arg.Var] = s
				}
				out.args[i] = carg{slot: s}
			}
		}
		return out
	}
	c := &compiledRule{body: make([]catom, 0, len(rule.Body))}
	for _, a := range rule.Body {
		c.body = append(c.body, compileAtom(a))
	}
	// Head last so body-bound slots are already numbered (safety guarantees
	// every head variable occurs in the body).
	c.head = compileAtom(rule.Head)
	c.nVars = len(slots)
	return c
}

// orderFor plans the join order: the delta atom (if any) first, then greedily
// the atom with the most bound arguments — the bound-variable-count heuristic
// standing in for Soufflé's automatic index selection. Negated atoms are
// scheduled as soon as they are fully bound, to prune early.
func (c *compiledRule) orderFor(deltaAtom int) []int {
	cacheIdx := deltaAtom + 1
	if c.orders == nil {
		c.orders = make([][]int, len(c.body)+1)
	}
	if c.orders[cacheIdx] != nil {
		return c.orders[cacheIdx]
	}
	order := make([]int, 0, len(c.body))
	bound := make([]bool, c.nVars)
	placed := make([]bool, len(c.body))
	place := func(ai int) {
		for _, a := range c.body[ai].args {
			if a.slot >= 0 {
				bound[a.slot] = true
			}
		}
		placed[ai] = true
		order = append(order, ai)
	}
	if deltaAtom >= 0 {
		place(deltaAtom)
	}
	for len(order) < len(c.body) {
		best, bestScore := -1, -1
		for ai := range c.body {
			if placed[ai] {
				continue
			}
			a := &c.body[ai]
			nb, free := 0, 0
			for _, arg := range a.args {
				switch {
				case arg.slot == slotConst:
					nb++
				case arg.slot >= 0 && bound[arg.slot]:
					nb++
				case arg.slot >= 0:
					free++
				}
			}
			score := nb
			if a.neg {
				if free > 0 {
					continue // a negated atom waits until fully bound
				}
				score = len(a.args) + 1 // then filters as early as possible
			}
			if score > bestScore {
				best, bestScore = ai, score
			}
		}
		place(best)
	}
	c.orders[cacheIdx] = order
	return order
}

// fireRule enumerates all substitutions satisfying the rule body and inserts
// the corresponding head tuples. deltaAtom (when ≥ 0) restricts that body
// atom's candidates to the row range [deltaLo, deltaHi) of its relation.
func (p *Program) fireRule(r *Rule, deltaAtom, deltaLo, deltaHi int) {
	c := r.c
	order := c.orderFor(deltaAtom)
	if cap(p.env) < c.nVars {
		p.env = make([]Term, c.nVars)
	}
	env := p.env[:c.nVars]
	for i := range env {
		env[i] = -1
	}
	if cap(p.headBuf) < len(c.head.args) {
		p.headBuf = make([]Term, len(c.head.args))
	}

	var solve func(oi int)
	solve = func(oi int) {
		if oi == len(order) {
			tuple := p.headBuf[:len(c.head.args)]
			for k, a := range c.head.args {
				if a.slot >= 0 {
					tuple[k] = env[a.slot]
				} else {
					tuple[k] = a.konst
				}
			}
			c.head.rel.insert(tuple)
			return
		}
		ai := order[oi]
		atom := &c.body[ai]
		if atom.neg {
			if !p.negMatch(atom, env) {
				solve(oi + 1)
			}
			return
		}
		candidates, scanTo := p.selectCandidates(atom, env)
		isDelta := ai == deltaAtom
		match := func(id int32) {
			if isDelta && (int(id) < deltaLo || int(id) >= deltaHi) {
				return
			}
			row := atom.rel.set.row(id)
			var boundSlots [8]int32
			extra := boundSlots[:0]
			ok := true
			for k, a := range atom.args {
				switch {
				case a.slot == slotConst:
					ok = row[k] == a.konst
				case a.slot == slotWild:
					// wildcard
				default:
					if v := env[a.slot]; v >= 0 {
						ok = v == row[k]
					} else {
						env[a.slot] = row[k]
						extra = append(extra, a.slot)
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				solve(oi + 1)
			}
			for _, s := range extra {
				env[s] = -1
			}
		}
		if candidates != nil {
			for _, id := range candidates {
				match(id)
			}
		} else {
			// Full scan; the delta restriction shrinks it to the new rows.
			from, to := 0, scanTo
			if isDelta {
				from, to = deltaLo, deltaHi
			}
			for id := from; id < to; id++ {
				match(int32(id))
			}
		}
	}
	solve(0)
}

// selectCandidates picks the access path for a positive atom given the bound
// environment: a two-column composite index when ≥ 2 columns are bound, a
// single-column index for one, or a full scan (candidates nil, scan bound
// returned) when none are.
func (p *Program) selectCandidates(atom *catom, env []Term) ([]int32, int) {
	var pos [2]int
	var val [2]Term
	nb := 0
	for k, a := range atom.args {
		var v Term
		switch {
		case a.slot == slotConst:
			v = a.konst
		case a.slot >= 0 && env[a.slot] >= 0:
			v = env[a.slot]
		default:
			continue
		}
		if nb < 2 {
			pos[nb], val[nb] = k, v
			nb++
		}
	}
	switch nb {
	case 0:
		return nil, atom.rel.Len()
	case 1:
		return atom.rel.index(pos[0])[val[0]], 0
	default:
		return atom.rel.compIndex(pos[0], pos[1])[pairKey(val[0], val[1])], 0
	}
}

// negMatch reports whether any tuple matches the negated atom under env.
// Fully bound atoms are a hashed membership probe; atoms with wildcards (or,
// defensively, unbound variables) fall back to candidate enumeration — an
// existential check, where the previous engine probed a zero term.
func (p *Program) negMatch(atom *catom, env []Term) bool {
	fullyBound := true
	for _, a := range atom.args {
		if a.slot == slotWild || (a.slot >= 0 && env[a.slot] < 0) {
			fullyBound = false
			break
		}
	}
	if fullyBound {
		var buf [8]Term
		probe := buf[:0]
		if len(atom.args) > len(buf) {
			probe = make([]Term, 0, len(atom.args))
		}
		for _, a := range atom.args {
			if a.slot >= 0 {
				probe = append(probe, env[a.slot])
			} else {
				probe = append(probe, a.konst)
			}
		}
		return atom.rel.Has(probe)
	}
	candidates, scanTo := p.selectCandidates(atom, env)
	check := func(id int32) bool {
		row := atom.rel.set.row(id)
		for k, a := range atom.args {
			switch {
			case a.slot == slotConst:
				if row[k] != a.konst {
					return false
				}
			case a.slot >= 0 && env[a.slot] >= 0:
				if row[k] != env[a.slot] {
					return false
				}
			}
		}
		return true
	}
	if candidates != nil {
		for _, id := range candidates {
			if check(id) {
				return true
			}
		}
		return false
	}
	for id := 0; id < scanTo; id++ {
		if check(int32(id)) {
			return true
		}
	}
	return false
}
