package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse adds rules written in conventional Datalog syntax:
//
//	path(X, Y) :- edge(X, Y).
//	path(X, Z) :- path(X, Y), edge(Y, Z).
//	reachable(S) :- statement(S), !guarded(S, _).
//	fact("a", "b").
//
// Identifiers starting with an uppercase letter are variables; `_` is a
// wildcard; quoted strings, bare lowercase identifiers in argument position,
// and numbers are constants. `%` starts a line comment.
func (p *Program) Parse(src string) error {
	toks, err := tokenizeRules(src)
	if err != nil {
		return err
	}
	pos := 0
	peek := func() ruleTok {
		if pos < len(toks) {
			return toks[pos]
		}
		return ruleTok{kind: tokEnd}
	}
	next := func() ruleTok {
		t := peek()
		if t.kind != tokEnd {
			pos++
		}
		return t
	}
	expect := func(kind int, what string) (ruleTok, error) {
		t := next()
		if t.kind != kind {
			return t, fmt.Errorf("datalog: line %d: expected %s, found %q", t.line, what, t.text)
		}
		return t, nil
	}
	parseAtom := func() (Atom, error) {
		var a Atom
		t := peek()
		if t.kind == tokBang {
			next()
			a.Neg = true
		}
		name, err := expect(tokIdent, "relation name")
		if err != nil {
			return a, err
		}
		a.Rel = name.text
		if _, err := expect(tokLParen, "'('"); err != nil {
			return a, err
		}
		for peek().kind != tokRParen {
			if len(a.Args) > 0 {
				if _, err := expect(tokComma, "','"); err != nil {
					return a, err
				}
			}
			arg := next()
			switch arg.kind {
			case tokIdent:
				first := rune(arg.text[0])
				if arg.text == "_" || unicode.IsUpper(first) {
					a.Args = append(a.Args, Arg{IsVar: true, Var: arg.text})
				} else {
					a.Args = append(a.Args, Arg{Const: p.Terms.Intern(arg.text)})
				}
			case tokString, tokNumber:
				a.Args = append(a.Args, Arg{Const: p.Terms.Intern(arg.text)})
			default:
				return a, fmt.Errorf("datalog: line %d: expected an argument, found %q", arg.line, arg.text)
			}
		}
		next() // ')'
		return a, nil
	}

	for peek().kind != tokEnd {
		head, err := parseAtom()
		if err != nil {
			return err
		}
		if head.Neg {
			return fmt.Errorf("datalog: negated head in rule for %s", head.Rel)
		}
		rule := &Rule{Head: head}
		if peek().kind == tokTurnstile {
			next()
			for {
				atom, err := parseAtom()
				if err != nil {
					return err
				}
				rule.Body = append(rule.Body, atom)
				if peek().kind == tokComma {
					next()
					continue
				}
				break
			}
		}
		if _, err := expect(tokDot, "'.'"); err != nil {
			return err
		}
		if err := p.AddRule(rule); err != nil {
			return err
		}
	}
	return nil
}

// MustParse is Parse that panics on error; for rule sets embedded in code.
func (p *Program) MustParse(src string) {
	if err := p.Parse(src); err != nil {
		panic(err)
	}
}

const (
	tokEnd = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokBang
	tokTurnstile
)

type ruleTok struct {
	kind int
	text string
	line int
}

func tokenizeRules(src string) ([]ruleTok, error) {
	var out []ruleTok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(':
			out = append(out, ruleTok{tokLParen, "(", line})
			i++
		case c == ')':
			out = append(out, ruleTok{tokRParen, ")", line})
			i++
		case c == ',':
			out = append(out, ruleTok{tokComma, ",", line})
			i++
		case c == '.':
			out = append(out, ruleTok{tokDot, ".", line})
			i++
		case c == '!':
			out = append(out, ruleTok{tokBang, "!", line})
			i++
		case c == ':' && i+1 < len(src) && src[i+1] == '-':
			out = append(out, ruleTok{tokTurnstile, ":-", line})
			i += 2
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("datalog: line %d: unterminated string", line)
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("datalog: line %d: unterminated string", line)
			}
			out = append(out, ruleTok{tokString, src[i+1 : j], line})
			i = j + 1
		case isRuleIdent(c) || c == '_':
			j := i
			for j < len(src) && (isRuleIdent(src[j]) || src[j] == '_' || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			out = append(out, ruleTok{tokIdent, src[i:j], line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && ((src[j] >= '0' && src[j] <= '9') || src[j] == 'x' ||
				(src[j] >= 'a' && src[j] <= 'f') || (src[j] >= 'A' && src[j] <= 'F')) {
				j++
			}
			out = append(out, ruleTok{tokNumber, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("datalog: line %d: unexpected character %q", line, string(c))
		}
	}
	return out, nil
}

func isRuleIdent(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '$'
}

// DumpRelation renders a relation for debugging.
func (p *Program) DumpRelation(rel string) string {
	var b strings.Builder
	for _, row := range p.Query(rel) {
		fmt.Fprintf(&b, "%s(%s)\n", rel, strings.Join(row, ", "))
	}
	return b.String()
}
