package datalog

import (
	"fmt"
	"testing"
)

// FuzzMergeDedup drives the parallel engine's buffer-then-merge protocol
// against the same naive oracle: tuples accumulate in per-task flat buffers
// (pre-filtered against the frozen global set and deduplicated task-locally,
// exactly as runTask does), then barrier-merge into the global set in task
// order. The global set must always equal the set of merged tuples, and the
// final merge must land exactly on the oracle regardless of how duplicates
// were spread across buffers.
func FuzzMergeDedup(f *testing.F) {
	f.Add([]byte{1, 0, 1, 2, 3, 0, 1, 2, 3, 2, 0, 0, 0, 0, 5, 1, 2, 3})
	f.Add([]byte{4, 0, 9, 9, 9, 3, 9, 9, 9, 2, 0, 0, 0, 0, 9, 9, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		const arity = 3
		numBufs := int(data[0])%4 + 1
		data = data[1:]

		global := newTupleSet(arity)
		bufs := make([][]Term, numBufs)
		seens := make([]map[[4]int32]struct{}, numBufs)
		for i := range seens {
			seens[i] = map[[4]int32]struct{}{}
		}
		merged := map[string]bool{} // oracle for the global set
		pending := map[string]bool{}

		key := func(tuple []Term) string { return fmt.Sprint(tuple) }
		barrier := func() {
			for i := range bufs {
				for off := 0; off+arity <= len(bufs[i]); off += arity {
					global.insert(bufs[i][off : off+arity])
				}
				bufs[i] = bufs[i][:0]
				clear(seens[i])
			}
			for k := range pending {
				merged[k] = true
				delete(pending, k)
			}
			if global.n != len(merged) {
				t.Fatalf("after barrier: global has %d rows, oracle %d", global.n, len(merged))
			}
		}

		tuple := make([]Term, arity)
		for len(data) >= 1+arity {
			op := data[0]
			for i := 0; i < arity; i++ {
				tuple[i] = Term(data[1+i])
			}
			data = data[1+arity:]
			switch op % 3 {
			case 0, 1: // buffered emit into task (op/3)%numBufs — runTask's filter
				b := int(op/3) % numBufs
				if global.has(tuple) {
					continue
				}
				k4 := pack4(tuple)
				if _, dup := seens[b][k4]; dup {
					continue
				}
				seens[b][k4] = struct{}{}
				bufs[b] = append(bufs[b], tuple...)
				pending[key(tuple)] = true
			case 2: // iteration barrier
				barrier()
			}
		}
		barrier()

		for id := int32(0); id < int32(global.n); id++ {
			if !merged[key(global.row(id))] {
				t.Fatalf("arena row %d = %v not in oracle", id, global.row(id))
			}
		}
	})
}

// FuzzTupleSet drives interleaved insert/has against a naive map-of-strings
// oracle. The byte stream decodes to operations: each op consumes one opcode
// byte (even = insert, odd = has) and `arity` term bytes. Three set variants
// run in lockstep — packed (arity clamped ≤ 4), wide FNV-hashed (arity ≥ 5),
// and wide with a degenerate constant hash — so both key paths and the
// collision-resolution path are covered with identical semantics.
func FuzzTupleSet(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 1, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 2, 0, 0, 1, 1, 0, 0, 0, 3, 0, 0, 1})
	f.Add([]byte{0, 255, 255, 255, 0, 255, 255, 254, 1, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		// First byte selects arity 1..6, covering both representations.
		arity := int(data[0])%6 + 1
		data = data[1:]

		sets := []*tupleSet{newTupleSet(arity)}
		if arity > 4 {
			collider := newTupleSet(arity)
			collider.hash = func([]Term) uint64 { return 42 }
			sets = append(sets, collider)
		}
		oracle := map[string]bool{}
		oracleKey := func(tuple []Term) string { return fmt.Sprint(tuple) }

		tuple := make([]Term, arity)
		for len(data) >= 1+arity {
			op := data[0]
			for i := 0; i < arity; i++ {
				// Terms are interner indices: non-negative by construction.
				tuple[i] = Term(data[1+i])
			}
			data = data[1+arity:]

			key := oracleKey(tuple)
			if op%2 == 0 {
				_, wantNew := oracle[key]
				wantNew = !wantNew
				oracle[key] = true
				for si, s := range sets {
					if _, gotNew := s.insert(tuple); gotNew != wantNew {
						t.Fatalf("set %d: insert(%v) new = %v, oracle says %v", si, tuple, gotNew, wantNew)
					}
				}
			} else {
				want := oracle[key]
				for si, s := range sets {
					if got := s.has(tuple); got != want {
						t.Fatalf("set %d: has(%v) = %v, oracle says %v", si, tuple, got, want)
					}
				}
			}
		}

		// Final agreement: every set holds exactly the oracle's tuples, and the
		// arena reproduces each inserted row.
		for si, s := range sets {
			if s.n != len(oracle) {
				t.Fatalf("set %d: %d rows, oracle has %d", si, s.n, len(oracle))
			}
			for id := int32(0); id < int32(s.n); id++ {
				if !oracle[oracleKey(s.row(id))] {
					t.Fatalf("set %d: arena row %d = %v not in oracle", si, id, s.row(id))
				}
				if !s.has(s.row(id)) {
					t.Fatalf("set %d: arena row %d = %v fails has", si, id, s.row(id))
				}
			}
		}
	})
}
