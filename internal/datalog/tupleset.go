package datalog

// tupleSet stores fixed-arity tuples in one flat row-major arena with hashed,
// allocation-free membership tests. Tuples of arity ≤ 4 pack directly into a
// [4]int32 map key (terms are non-negative, so -1 padding never collides);
// wider tuples hash with FNV-1a into buckets of row ids and are compared
// against the arena on collision.
//
// Rows are append-only and identified by dense int32 ids in insertion order —
// the property the semi-naive evaluator exploits to represent deltas as plain
// [lo, hi) row ranges instead of copied tuple sets.
type tupleSet struct {
	arity int
	n     int
	// flat is the arena: row i occupies flat[i*arity : (i+1)*arity].
	flat []Term

	small map[[4]int32]int32 // arity ≤ 4: packed tuple → row id
	wide  map[uint64][]int32 // arity > 4: hash bucket → candidate row ids

	// hash computes the bucket key for wide tuples. Tests swap in degenerate
	// functions to force collisions.
	hash func([]Term) uint64
}

func newTupleSet(arity int) *tupleSet {
	s := &tupleSet{arity: arity, hash: fnvTerms}
	if arity <= 4 {
		s.small = map[[4]int32]int32{}
	} else {
		s.wide = map[uint64][]int32{}
	}
	return s
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvTerms is FNV-1a over the 32-bit term values.
func fnvTerms(tuple []Term) uint64 {
	h := uint64(fnvOffset64)
	for _, t := range tuple {
		v := uint32(t)
		h = (h ^ uint64(v&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>8)&0xff)) * fnvPrime64
		h = (h ^ uint64((v>>16)&0xff)) * fnvPrime64
		h = (h ^ uint64(v>>24)) * fnvPrime64
	}
	return h
}

func pack4(tuple []Term) [4]int32 {
	k := [4]int32{-1, -1, -1, -1}
	for i, t := range tuple {
		k[i] = int32(t)
	}
	return k
}

// row returns the arena slice of row id (aliasing the arena; callers must not
// mutate or retain it across inserts).
func (s *tupleSet) row(id int32) []Term {
	base := int(id) * s.arity
	return s.flat[base : base+s.arity : base+s.arity]
}

// insert adds the tuple if absent, returning its row id and whether it was new.
func (s *tupleSet) insert(tuple []Term) (int32, bool) {
	if s.small != nil {
		k := pack4(tuple)
		if id, ok := s.small[k]; ok {
			return id, false
		}
		id := int32(s.n)
		s.small[k] = id
		s.flat = append(s.flat, tuple...)
		s.n++
		return id, true
	}
	h := s.hash(tuple)
	for _, id := range s.wide[h] {
		if termsEqual(s.row(id), tuple) {
			return id, false
		}
	}
	id := int32(s.n)
	s.wide[h] = append(s.wide[h], id)
	s.flat = append(s.flat, tuple...)
	s.n++
	return id, true
}

// has reports membership without inserting.
func (s *tupleSet) has(tuple []Term) bool {
	if s.small != nil {
		_, ok := s.small[pack4(tuple)]
		return ok
	}
	h := s.hash(tuple)
	for _, id := range s.wide[h] {
		if termsEqual(s.row(id), tuple) {
			return true
		}
	}
	return false
}

func termsEqual(a, b []Term) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
