package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransitiveClosure(t *testing.T) {
	p := NewProgram()
	p.MustParse(`
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y), edge(Y, Z).
	`)
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"x", "y"}}
	for _, e := range edges {
		if err := p.AddFact("edge", e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}, {"x", "y"}}
	if got := p.Count("path"); got != len(want) {
		t.Fatalf("path count = %d, want %d\n%s", got, len(want), p.DumpRelation("path"))
	}
	for _, w := range want {
		if !p.Has("path", w[0], w[1]) {
			t.Errorf("missing path(%s, %s)", w[0], w[1])
		}
	}
	if p.Has("path", "a", "x") {
		t.Error("spurious path(a, x)")
	}
}

// Transitive closure against a reference Floyd-Warshall on random graphs.
func TestTransitiveClosureRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		p := NewProgram()
		p.MustParse(`
			path(X, Y) :- edge(X, Y).
			path(X, Z) :- path(X, Y), edge(Y, Z).
		`)
		for k := 0; k < n*2; k++ {
			i, j := r.Intn(n), r.Intn(n)
			adj[i][j] = true
			p.AddFact("edge", fmt.Sprint(i), fmt.Sprint(j))
		}
		if err := p.Run(); err != nil {
			t.Log(err)
			return false
		}
		// Floyd-Warshall reachability.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool{}, adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if p.Has("path", fmt.Sprint(i), fmt.Sprint(j)) != reach[i][j] {
					t.Logf("seed %d: path(%d,%d) mismatch", seed, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNegationStratified(t *testing.T) {
	p := NewProgram()
	p.MustParse(`
		node(X) :- edge(X, _).
		node(Y) :- edge(_, Y).
		hasOut(X) :- edge(X, _).
		sink(X) :- node(X), !hasOut(X).
	`)
	p.AddFact("edge", "a", "b")
	p.AddFact("edge", "b", "c")
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Has("sink", "c") {
		t.Error("c should be a sink")
	}
	if p.Has("sink", "a") || p.Has("sink", "b") {
		t.Error("a/b are not sinks")
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	p := NewProgram()
	p.MustParse(`
		win(X) :- move(X, Y), !win(Y).
	`)
	p.AddFact("move", "a", "b")
	if err := p.Run(); err == nil {
		t.Fatal("win-move is not stratifiable; Run must fail")
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	p := NewProgram()
	if err := p.Parse(`bad(X) :- other(Y).`); err == nil {
		t.Fatal("head variable unbound in body must be rejected")
	}
	p2 := NewProgram()
	if err := p2.Parse(`ok(X) :- rel(X), !neg(Z).`); err == nil {
		t.Fatal("negated atom with free variable must be rejected")
	}
}

func TestConstantsInRules(t *testing.T) {
	p := NewProgram()
	p.MustParse(`
		special(X) :- kind(X, "admin").
		boot("init").
	`)
	p.AddFact("kind", "u1", "admin")
	p.AddFact("kind", "u2", "user")
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Has("special", "u1") || p.Has("special", "u2") {
		t.Error("constant matching failed")
	}
	if !p.Has("boot", "init") {
		t.Error("fact-rule failed")
	}
}

func TestWildcards(t *testing.T) {
	p := NewProgram()
	p.MustParse(`used(X) :- pair(X, _).`)
	p.AddFact("pair", "a", "1")
	p.AddFact("pair", "a", "2")
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Count("used") != 1 || !p.Has("used", "a") {
		t.Errorf("wildcard projection wrong: %s", p.DumpRelation("used"))
	}
}

func TestMutualRecursion(t *testing.T) {
	p := NewProgram()
	p.MustParse(`
		even(X) :- zero(X).
		even(Y) :- odd(X), succ(X, Y).
		odd(Y) :- even(X), succ(X, Y).
	`)
	p.AddFact("zero", "0")
	for i := 0; i < 9; i++ {
		p.AddFact("succ", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 9; i++ {
		wantEven := i%2 == 0
		if p.Has("even", fmt.Sprint(i)) != wantEven {
			t.Errorf("even(%d) = %v, want %v", i, !wantEven, wantEven)
		}
		if p.Has("odd", fmt.Sprint(i)) == wantEven {
			t.Errorf("odd(%d) wrong", i)
		}
	}
}

func TestArityMismatchRejected(t *testing.T) {
	p := NewProgram()
	p.MustParse(`r(X, Y) :- s(X, Y).`)
	if err := p.Parse(`t(X) :- r(X).`); err == nil {
		t.Fatal("arity conflict must be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`missing dot(X) :- a(X)`,
		`!neg(X) :- a(X).`,
		`bad syntax here.`,
		`unclosed(X :- a(X).`,
		`str("unterminated) :- a(X).`,
	} {
		p := NewProgram()
		if err := p.Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSemiNaiveMatchesNaiveOnChains(t *testing.T) {
	// A long chain stresses iteration count: path over 200 nodes.
	p := NewProgram()
	p.MustParse(`
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y), edge(Y, Z).
	`)
	const n = 200
	for i := 0; i < n; i++ {
		p.AddFact("edge", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Count("path"), (n+1)*n/2; got != want {
		t.Fatalf("path count = %d, want %d", got, want)
	}
}

func BenchmarkTransitiveClosureChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewProgram()
		p.MustParse(`
			path(X, Y) :- edge(X, Y).
			path(X, Z) :- path(X, Y), edge(Y, Z).
		`)
		for j := 0; j < 100; j++ {
			p.AddFact("edge", fmt.Sprint(j), fmt.Sprint(j+1))
		}
		if err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
