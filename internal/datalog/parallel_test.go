package datalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// buildLadder constructs the join-heavy chain-TC program of the benchmarks: a
// ladder graph where every node has two successors, closed transitively, plus
// a cycle-membership rule.
func buildLadder(n int) *Program {
	p := NewProgram()
	p.MustParse(`
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y), edge(Y, Z).
		meet(X) :- path(X, Y), path(Y, X).
	`)
	for j := 0; j < n; j++ {
		p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+1)%n))
		p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+7)%n))
	}
	return p
}

// queryAll snapshots every relation's sorted tuples.
func queryAll(p *Program, rels ...string) map[string][][]string {
	out := map[string][][]string{}
	for _, r := range rels {
		out[r] = p.Query(r)
	}
	return out
}

// TestParallelMatchesSequential pins the parallel evaluator to the sequential
// one: identical tuple sets at 1, 2, and 8 workers on the chain-TC workload.
// Run under -race this is also the engine's data-race stress test.
func TestParallelMatchesSequential(t *testing.T) {
	const n = 60
	ref := buildLadder(n)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := queryAll(ref, "path", "meet")
	if len(want["path"]) == 0 {
		t.Fatal("empty reference closure")
	}
	for _, workers := range []int{1, 2, 8} {
		p := buildLadder(n)
		p.SetParallelism(workers)
		if err := p.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := queryAll(p, "path", "meet")
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: tuple sets diverge from sequential (path %d vs %d, meet %d vs %d)",
				workers, len(got["path"]), len(want["path"]), len(got["meet"]), len(want["meet"]))
		}
		st := p.EngineStats()
		if workers > 1 && st.Tasks == 0 {
			t.Fatalf("workers=%d: no parallel tasks recorded: %+v", workers, st)
		}
		if workers > 1 && st.Join == 0 {
			t.Fatalf("workers=%d: join stage not timed: %+v", workers, st)
		}
	}
}

// TestParallelStratifiedNegation covers negation through the parallel path:
// the planner must schedule negated atoms fully bound and the membership
// probes must agree with the sequential engine.
func TestParallelStratifiedNegation(t *testing.T) {
	build := func() *Program {
		p := NewProgram()
		p.MustParse(`
			node(X) :- edge(X, _).
			node(Y) :- edge(_, Y).
			hasOut(X) :- edge(X, _).
			sink(X) :- node(X), !hasOut(X).
			reach(X) :- root(X).
			reach(Y) :- reach(X), edge(X, Y).
			unreached(X) :- node(X), !reach(X).
		`)
		p.AddFact("root", "a")
		for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"d", "e"}, {"e", "d"}} {
			p.AddFact("edge", e[0], e[1])
		}
		return p
	}
	ref := build()
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := queryAll(ref, "sink", "reach", "unreached")
	for _, workers := range []int{2, 8} {
		p := build()
		p.SetParallelism(workers)
		if err := p.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := queryAll(p, "sink", "reach", "unreached"); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: negation results diverge\ngot:  %v\nwant: %v", workers, got, want)
		}
	}
}

// TestParallelMatchesSequentialRandom differentially fuzzes the parallel
// engine against the sequential one on random graphs and worker counts.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		edges := make([][2]string, 0, n*3)
		for k := 0; k < n*3; k++ {
			edges = append(edges, [2]string{fmt.Sprint(r.Intn(n)), fmt.Sprint(r.Intn(n))})
		}
		build := func() *Program {
			p := NewProgram()
			p.MustParse(`
				path(X, Y) :- edge(X, Y).
				path(X, Z) :- path(X, Y), edge(Y, Z).
				looped(X) :- path(X, X).
				acyclic(X) :- path(X, _), !looped(X).
			`)
			for _, e := range edges {
				p.AddFact("edge", e[0], e[1])
			}
			return p
		}
		ref := build()
		if err := ref.Run(); err != nil {
			t.Log(err)
			return false
		}
		want := queryAll(ref, "path", "looped", "acyclic")
		workers := 2 + r.Intn(7)
		p := build()
		p.SetParallelism(workers)
		if err := p.Run(); err != nil {
			t.Log(err)
			return false
		}
		if got := queryAll(p, "path", "looped", "acyclic"); !reflect.DeepEqual(got, want) {
			t.Logf("seed %d workers %d: diverged", seed, workers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParallelDeterministicRowIDs requires the merge to be deterministic: two
// runs at the same worker count must produce identical row-id orderings, not
// just identical sets.
func TestParallelDeterministicRowIDs(t *testing.T) {
	dump := func(workers int) string {
		p := buildLadder(40)
		p.SetParallelism(workers)
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return p.DumpRelation("path")
	}
	for _, workers := range []int{2, 4} {
		a, b := dump(workers), dump(workers)
		if a != b {
			t.Fatalf("workers=%d: two runs produced different row orderings", workers)
		}
	}
}

// TestParallelFactsAndConstants exercises fact rules (empty bodies) and
// constant-bound first atoms, the non-chunked task shapes.
func TestParallelFactsAndConstants(t *testing.T) {
	build := func() *Program {
		p := NewProgram()
		p.MustParse(`
			boot("init").
			special(X) :- kind(X, "admin").
			chain(X, Y) :- special(X), link(X, Y).
		`)
		p.AddFact("kind", "u1", "admin")
		p.AddFact("kind", "u2", "user")
		p.AddFact("kind", "u3", "admin")
		p.AddFact("link", "u1", "u3")
		p.AddFact("link", "u2", "u3")
		return p
	}
	ref := build()
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := queryAll(ref, "boot", "special", "chain")
	p := build()
	p.SetParallelism(4)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got := queryAll(p, "boot", "special", "chain"); !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel facts/constants diverge\ngot:  %v\nwant: %v", got, want)
	}
}

func BenchmarkParallelTransitiveClosureChain(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := buildLadder(100)
				p.SetParallelism(workers)
				if err := p.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
