// Package datalog implements a small stratified Datalog engine: interned
// terms, relations with lazily built single-column indices, rules with
// negation, stratification with negative-cycle detection, and semi-naive
// fixpoint evaluation.
//
// It stands in for the paper's Soufflé back-end. The abstract information
// flow model of Section 4 (package abstract) runs its Figure 3 / Figure 4
// rules on this engine verbatim, and the engine is differentially tested
// against the hand-written fixpoint implementation.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is an interned constant.
type Term int32

// Interner maps strings to Terms and back.
type Interner struct {
	toID  map[string]Term
	toStr []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{toID: map[string]Term{}}
}

// Intern returns the Term for s, creating it if needed.
func (in *Interner) Intern(s string) Term {
	if t, ok := in.toID[s]; ok {
		return t
	}
	t := Term(len(in.toStr))
	in.toID[s] = t
	in.toStr = append(in.toStr, s)
	return t
}

// Lookup returns the Term for s if it exists.
func (in *Interner) Lookup(s string) (Term, bool) {
	t, ok := in.toID[s]
	return t, ok
}

// String returns the string for t.
func (in *Interner) String(t Term) string { return in.toStr[t] }

// Relation is a set of tuples of fixed arity.
type Relation struct {
	Name  string
	Arity int

	tuples  [][]Term
	present map[string]bool
	// indices[pos][term] lists tuples whose pos-th column is term.
	indices []map[Term][][]Term
}

func newRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, present: map[string]bool{}}
}

func key(tuple []Term) string {
	var b strings.Builder
	for _, t := range tuple {
		fmt.Fprintf(&b, "%d,", t)
	}
	return b.String()
}

// insert adds the tuple, reporting whether it was new.
func (r *Relation) insert(tuple []Term) bool {
	k := key(tuple)
	if r.present[k] {
		return false
	}
	r.present[k] = true
	cp := append([]Term{}, tuple...)
	r.tuples = append(r.tuples, cp)
	for pos, idx := range r.indices {
		if idx != nil {
			idx[cp[pos]] = append(idx[cp[pos]], cp)
		}
	}
	return true
}

// Has reports membership.
func (r *Relation) Has(tuple []Term) bool { return r.present[key(tuple)] }

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.tuples) }

// index returns (building if needed) the index on column pos.
func (r *Relation) index(pos int) map[Term][][]Term {
	if r.indices == nil {
		r.indices = make([]map[Term][][]Term, r.Arity)
	}
	if r.indices[pos] == nil {
		idx := map[Term][][]Term{}
		for _, t := range r.tuples {
			idx[t[pos]] = append(idx[t[pos]], t)
		}
		r.indices[pos] = idx
	}
	return r.indices[pos]
}

// Arg is one argument of an atom: a variable name or a constant term.
type Arg struct {
	IsVar bool
	Var   string
	Const Term
}

// Atom is one literal in a rule.
type Atom struct {
	Rel  string
	Neg  bool
	Args []Arg
}

// Rule is Head :- Body. Facts are rules with an empty body and constant head.
type Rule struct {
	Head Atom
	Body []Atom
}

// Program holds relations and rules.
type Program struct {
	Terms *Interner
	rels  map[string]*Relation
	rules []*Rule
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Terms: NewInterner(), rels: map[string]*Relation{}}
}

// Relation declares (or returns) a relation with the given arity.
func (p *Program) Relation(name string, arity int) (*Relation, error) {
	if r, ok := p.rels[name]; ok {
		if r.Arity != arity {
			return nil, fmt.Errorf("datalog: relation %s redeclared with arity %d (was %d)", name, arity, r.Arity)
		}
		return r, nil
	}
	r := newRelation(name, arity)
	p.rels[name] = r
	return r, nil
}

// AddFact inserts a ground fact.
func (p *Program) AddFact(rel string, terms ...string) error {
	r, err := p.Relation(rel, len(terms))
	if err != nil {
		return err
	}
	tuple := make([]Term, len(terms))
	for i, s := range terms {
		tuple[i] = p.Terms.Intern(s)
	}
	r.insert(tuple)
	return nil
}

// AddRule registers a rule after validating it: every head variable and every
// variable in a negated atom must appear in a positive body atom (range
// restriction / safety).
func (p *Program) AddRule(rule *Rule) error {
	positive := map[string]bool{}
	for _, a := range rule.Body {
		if a.Neg {
			continue
		}
		for _, arg := range a.Args {
			if arg.IsVar {
				positive[arg.Var] = true
			}
		}
	}
	check := func(a Atom, what string) error {
		for _, arg := range a.Args {
			if arg.IsVar && arg.Var != "_" && !positive[arg.Var] {
				return fmt.Errorf("datalog: unsafe rule: variable %s in %s not bound by a positive body atom", arg.Var, what)
			}
		}
		return nil
	}
	if err := check(rule.Head, "head "+rule.Head.Rel); err != nil {
		return err
	}
	if rule.Head.Rel == "" {
		return fmt.Errorf("datalog: empty head relation")
	}
	for _, a := range rule.Body {
		if a.Neg {
			if err := check(a, "negated "+a.Rel); err != nil {
				return err
			}
		}
	}
	// Declare relations implicitly.
	if _, err := p.Relation(rule.Head.Rel, len(rule.Head.Args)); err != nil {
		return err
	}
	for _, a := range rule.Body {
		if _, err := p.Relation(a.Rel, len(a.Args)); err != nil {
			return err
		}
	}
	p.rules = append(p.rules, rule)
	return nil
}

// Query returns all tuples of a relation as strings, sorted.
func (p *Program) Query(rel string) [][]string {
	r := p.rels[rel]
	if r == nil {
		return nil
	}
	out := make([][]string, 0, len(r.tuples))
	for _, t := range r.tuples {
		row := make([]string, len(t))
		for i, term := range t {
			row[i] = p.Terms.String(term)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Has reports whether the fact holds (false for unknown terms or relations).
func (p *Program) Has(rel string, terms ...string) bool {
	r := p.rels[rel]
	if r == nil || r.Arity != len(terms) {
		return false
	}
	tuple := make([]Term, len(terms))
	for i, s := range terms {
		t, ok := p.Terms.Lookup(s)
		if !ok {
			return false
		}
		tuple[i] = t
	}
	return r.Has(tuple)
}

// Count returns the number of tuples in a relation.
func (p *Program) Count(rel string) int {
	if r := p.rels[rel]; r != nil {
		return r.Len()
	}
	return 0
}
