// Package datalog implements a small stratified Datalog engine: interned
// terms, relations stored in flat arenas with hashed tuple sets, lazily built
// single- and two-column indices, rules with negation, stratification with
// negative-cycle detection, and semi-naive fixpoint evaluation driven by a
// bound-variable join planner.
//
// It stands in for the paper's Soufflé back-end. The abstract information
// flow model of Section 4 (package abstract) runs its Figure 3 / Figure 4
// rules on this engine verbatim, and the engine is differentially tested
// against the hand-written fixpoint implementation.
package datalog

import (
	"fmt"
	"sort"
)

// Term is an interned constant.
type Term int32

// Interner maps strings to Terms and back.
type Interner struct {
	toID  map[string]Term
	toStr []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{toID: map[string]Term{}}
}

// Intern returns the Term for s, creating it if needed.
func (in *Interner) Intern(s string) Term {
	if t, ok := in.toID[s]; ok {
		return t
	}
	t := Term(len(in.toStr))
	in.toID[s] = t
	in.toStr = append(in.toStr, s)
	return t
}

// Lookup returns the Term for s if it exists.
func (in *Interner) Lookup(s string) (Term, bool) {
	t, ok := in.toID[s]
	return t, ok
}

// String returns the string for t, or a "term#N" placeholder for terms this
// interner never produced (the defensive path hit when callers mix interners).
func (in *Interner) String(t Term) string {
	if t < 0 || int(t) >= len(in.toStr) {
		return fmt.Sprintf("term#%d", t)
	}
	return in.toStr[t]
}

// Relation is a set of tuples of fixed arity, stored in a flat arena with a
// hashed membership set.
type Relation struct {
	Name  string
	Arity int

	set *tupleSet
	// indices[pos] maps a term to the row ids whose pos-th column holds it.
	indices []map[Term][]int32
	// comps holds lazily built two-column composite indices, keyed by column
	// pair, mapping the packed column values to row ids.
	comps map[[2]uint8]map[uint64][]int32
}

func newRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, set: newTupleSet(arity)}
}

// insert adds the tuple, reporting whether it was new.
func (r *Relation) insert(tuple []Term) bool {
	id, added := r.set.insert(tuple)
	if !added {
		return false
	}
	row := r.set.row(id)
	for pos, idx := range r.indices {
		if idx != nil {
			idx[row[pos]] = append(idx[row[pos]], id)
		}
	}
	for cols, comp := range r.comps {
		k := pairKey(row[cols[0]], row[cols[1]])
		comp[k] = append(comp[k], id)
	}
	return true
}

// Has reports membership.
func (r *Relation) Has(tuple []Term) bool { return r.set.has(tuple) }

// Len returns the tuple count.
func (r *Relation) Len() int { return r.set.n }

// index returns (building if needed) the single-column index on pos.
func (r *Relation) index(pos int) map[Term][]int32 {
	if r.indices == nil {
		r.indices = make([]map[Term][]int32, r.Arity)
	}
	if r.indices[pos] == nil {
		idx := map[Term][]int32{}
		for id := int32(0); int(id) < r.set.n; id++ {
			t := r.set.row(id)[pos]
			idx[t] = append(idx[t], id)
		}
		r.indices[pos] = idx
	}
	return r.indices[pos]
}

func pairKey(a, b Term) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// compIndex returns (building if needed) the composite index on (p1, p2).
func (r *Relation) compIndex(p1, p2 int) map[uint64][]int32 {
	cols := [2]uint8{uint8(p1), uint8(p2)}
	if r.comps == nil {
		r.comps = map[[2]uint8]map[uint64][]int32{}
	}
	if idx, ok := r.comps[cols]; ok {
		return idx
	}
	idx := map[uint64][]int32{}
	for id := int32(0); int(id) < r.set.n; id++ {
		row := r.set.row(id)
		k := pairKey(row[p1], row[p2])
		idx[k] = append(idx[k], id)
	}
	r.comps[cols] = idx
	return idx
}

// Arg is one argument of an atom: a variable name or a constant term.
type Arg struct {
	IsVar bool
	Var   string
	Const Term
}

// Atom is one literal in a rule.
type Atom struct {
	Rel  string
	Neg  bool
	Args []Arg
}

// Rule is Head :- Body. Facts are rules with an empty body and constant head.
type Rule struct {
	Head Atom
	Body []Atom

	c *compiledRule // filled by AddRule
}

// Program holds relations and rules.
type Program struct {
	Terms *Interner
	rels  map[string]*Relation
	rules []*Rule

	// parallelism is the Run worker count (≤ 1 evaluates sequentially); see
	// SetParallelism. A Program still serves one Run at a time — parallelism
	// is inside the fixpoint, not across calls.
	parallelism int
	// stats is the stage breakdown of the most recent Run.
	stats EngineStats

	// Evaluation scratch for the sequential path (parallel workers use the
	// pooled scratch of parallel.go instead).
	env     []Term
	headBuf []Term
	factBuf []Term
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Terms: NewInterner(), rels: map[string]*Relation{}}
}

// Relation declares (or returns) a relation with the given arity.
func (p *Program) Relation(name string, arity int) (*Relation, error) {
	if r, ok := p.rels[name]; ok {
		if r.Arity != arity {
			return nil, fmt.Errorf("datalog: relation %s redeclared with arity %d (was %d)", name, arity, r.Arity)
		}
		return r, nil
	}
	r := newRelation(name, arity)
	p.rels[name] = r
	return r, nil
}

// AddFact inserts a ground fact.
func (p *Program) AddFact(rel string, terms ...string) error {
	r, err := p.Relation(rel, len(terms))
	if err != nil {
		return err
	}
	if cap(p.factBuf) < len(terms) {
		p.factBuf = make([]Term, len(terms))
	}
	tuple := p.factBuf[:len(terms)]
	for i, s := range terms {
		tuple[i] = p.Terms.Intern(s)
	}
	r.insert(tuple)
	return nil
}

// AddRule registers a rule after validating it: every head variable and every
// variable in a negated atom must appear in a positive body atom (range
// restriction / safety). The rule is compiled to slot-indexed form.
func (p *Program) AddRule(rule *Rule) error {
	positive := map[string]bool{}
	for _, a := range rule.Body {
		if a.Neg {
			continue
		}
		for _, arg := range a.Args {
			if arg.IsVar {
				positive[arg.Var] = true
			}
		}
	}
	check := func(a Atom, what string) error {
		for _, arg := range a.Args {
			if arg.IsVar && arg.Var != "_" && !positive[arg.Var] {
				return fmt.Errorf("datalog: unsafe rule: variable %s in %s not bound by a positive body atom", arg.Var, what)
			}
		}
		return nil
	}
	if err := check(rule.Head, "head "+rule.Head.Rel); err != nil {
		return err
	}
	if rule.Head.Rel == "" {
		return fmt.Errorf("datalog: empty head relation")
	}
	for _, a := range rule.Body {
		if a.Neg {
			if err := check(a, "negated "+a.Rel); err != nil {
				return err
			}
		}
	}
	// Declare relations implicitly.
	if _, err := p.Relation(rule.Head.Rel, len(rule.Head.Args)); err != nil {
		return err
	}
	for _, a := range rule.Body {
		if _, err := p.Relation(a.Rel, len(a.Args)); err != nil {
			return err
		}
	}
	rule.c = p.compileRule(rule)
	p.rules = append(p.rules, rule)
	return nil
}

// Query returns all tuples of a relation as strings, sorted.
func (p *Program) Query(rel string) [][]string {
	r := p.rels[rel]
	if r == nil {
		return nil
	}
	out := make([][]string, 0, r.Len())
	for id := int32(0); int(id) < r.Len(); id++ {
		t := r.set.row(id)
		row := make([]string, len(t))
		for i, term := range t {
			row[i] = p.Terms.String(term)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// Has reports whether the fact holds (false for unknown terms or relations).
func (p *Program) Has(rel string, terms ...string) bool {
	r := p.rels[rel]
	if r == nil || r.Arity != len(terms) {
		return false
	}
	tuple := make([]Term, len(terms))
	for i, s := range terms {
		t, ok := p.Terms.Lookup(s)
		if !ok {
			return false
		}
		tuple[i] = t
	}
	return r.Has(tuple)
}

// Count returns the number of tuples in a relation.
func (p *Program) Count(rel string) int {
	if r := p.rels[rel]; r != nil {
		return r.Len()
	}
	return 0
}
