package decompiler

import (
	"sort"

	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// This file is the hash-consed abstract-value representation of the
// optimized decompiler. Every distinct bounded constant set exists exactly
// once per run as an *aval, so state comparison in propagate is pointer
// equality per slot, joins short-circuit on identical operands, and repeated
// constant folds over the same operand pair hit a memo instead of recomputing
// the product. The lattice semantics — sorted dedup'd sets, widening to ⊤
// past maxConstSet, the foldBinary product pre-check — replicate the
// reference path's absVal exactly; only the representation differs.

// aval is an interned abstract stack value: ⊤ or a sorted, deduplicated
// constant set with len <= maxConstSet and a precomputed hash.
type aval struct {
	top    bool
	consts []u256.U256
	hash   uint64
}

// avalTop is the unique ⊤ value; pointer comparison against it is the top
// test everywhere in the fast path.
var avalTop = &aval{top: true, hash: 0x746f70} // arbitrary, never bucketed

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func hashConsts(consts []u256.U256) uint64 {
	h := uint64(fnvOffset)
	for _, c := range consts {
		for _, w := range c {
			h ^= w
			h *= fnvPrime
		}
	}
	return h
}

// foldKey memoizes foldBinary over interned operands: identical pointers
// mean identical sets, so (op, a, b) fully determines the result.
type foldKey struct {
	op   evm.Op
	a, b *aval
}

// interner hash-conses avals for one decompilation run. It is not safe for
// concurrent use; each run owns one (see scratch / scratchPool). The interner
// itself is reused across runs: reset memclrs the open-addressed tables and
// rewinds the chunked slabs that back aval structs and their constant sets,
// so a warm corpus sweep interns with near-zero steady-state allocation.
// Open addressing (linear probing, power-of-two sizing) replaces Go maps here
// because a table wipe is a pointer memclr instead of a bucket walk, and the
// per-run wipe was a measurable slice of decompile time.
type interner struct {
	// hash-cons table: slot -> interned value, probed linearly on aval.hash.
	table []*aval
	mask  uint64
	live  int

	// fold memo: parallel key/value arrays probed on a mix of the operand
	// hashes and the opcode. A nil value marks an empty slot.
	foldKeys []foldKey
	foldVals []*aval
	foldMask uint64
	foldLive int

	merge []u256.U256  // scratch for join/fold set construction
	one   [1]u256.U256 // scratch for singleton interning (the PUSH hot path)

	// Chunked slabs: avals and const sets are handed out from fixed-capacity
	// chunks so outstanding pointers never move, and reset rewinds the chunks
	// in place. Nothing interned outlives a run (states, stacks, and memos are
	// all cleared), so rewinding cannot create dangling references.
	avalChunks  [][]aval
	avalChunk   int
	constChunks [][]u256.U256
	constChunk  int
}

const (
	internChunk      = 1024
	internTableMin   = 1024    // initial slots; must be a power of two
	internMaxRetain  = 1 << 16 // tables larger than this are dropped on reset
	internChunkLimit = 32      // slab chunks retained across runs
)

// reset readies the interner for a new run, retaining table memory and slab
// chunks for reuse. After an outsized (hostile) run the retention caps drop
// everything instead, so one adversarial input cannot pin megabytes in the
// scratch pool forever.
func (in *interner) reset() {
	if in.table == nil || len(in.table) > internMaxRetain {
		in.table = make([]*aval, internTableMin)
	} else {
		clear(in.table)
	}
	in.mask = uint64(len(in.table) - 1)
	in.live = 0
	if in.foldVals == nil || len(in.foldVals) > internMaxRetain {
		in.foldKeys = make([]foldKey, internTableMin)
		in.foldVals = make([]*aval, internTableMin)
	} else {
		clear(in.foldKeys)
		clear(in.foldVals)
	}
	in.foldMask = uint64(len(in.foldVals) - 1)
	in.foldLive = 0
	// Dropping both slabs together keeps every retained aval's consts header
	// pointing at retained memory — a partial drop could pin freed chunks
	// through stale headers.
	if len(in.avalChunks) > internChunkLimit || len(in.constChunks) > internChunkLimit {
		in.avalChunks, in.constChunks = nil, nil
	}
	for i := range in.avalChunks {
		in.avalChunks[i] = in.avalChunks[i][:0]
	}
	in.avalChunk = 0
	for i := range in.constChunks {
		in.constChunks[i] = in.constChunks[i][:0]
	}
	in.constChunk = 0
}

// allocAval hands out one aval slot from the chunked slab.
func (in *interner) allocAval() *aval {
	for {
		if in.avalChunk == len(in.avalChunks) {
			in.avalChunks = append(in.avalChunks, make([]aval, 0, internChunk))
		}
		c := in.avalChunks[in.avalChunk]
		if len(c) < cap(c) {
			c = c[: len(c)+1 : cap(c)]
			in.avalChunks[in.avalChunk] = c
			return &c[len(c)-1]
		}
		in.avalChunk++
	}
}

// allocConsts hands out a contiguous []u256.U256 of length n (n is at most
// maxConstSet, far below internChunk, so a fresh chunk always fits it).
func (in *interner) allocConsts(n int) []u256.U256 {
	for {
		if in.constChunk == len(in.constChunks) {
			in.constChunks = append(in.constChunks, make([]u256.U256, 0, internChunk))
		}
		c := in.constChunks[in.constChunk]
		if len(c)+n <= cap(c) {
			off := len(c)
			in.constChunks[in.constChunk] = c[: off+n : cap(c)]
			return c[off : off+n : off+n]
		}
		in.constChunk++
	}
}

// intern returns the canonical *aval for the sorted, deduplicated set in
// consts, copying the slice only when inserting a new entry — callers may
// pass reusable scratch.
func (in *interner) intern(consts []u256.U256) *aval {
	h := hashConsts(consts)
	i := h & in.mask
	for {
		v := in.table[i]
		if v == nil {
			break
		}
		if v.hash == h && len(v.consts) == len(consts) {
			same := true
			for j := range consts {
				if v.consts[j] != consts[j] {
					same = false
					break
				}
			}
			if same {
				return v
			}
		}
		i = (i + 1) & in.mask
	}
	cp := in.allocConsts(len(consts))
	copy(cp, consts)
	v := in.allocAval()
	*v = aval{consts: cp, hash: h}
	in.table[i] = v
	in.live++
	if uint64(in.live)*4 > uint64(len(in.table))*3 {
		in.growTable()
	}
	return v
}

// growTable doubles the hash-cons table and reinserts every live entry.
func (in *interner) growTable() {
	old := in.table
	in.table = make([]*aval, len(old)*2)
	in.mask = uint64(len(in.table) - 1)
	for _, v := range old {
		if v == nil {
			continue
		}
		i := v.hash & in.mask
		for in.table[i] != nil {
			i = (i + 1) & in.mask
		}
		in.table[i] = v
	}
}

// constOf returns the interned singleton {c} — the PUSH hot path.
func (in *interner) constOf(c u256.U256) *aval {
	in.one[0] = c
	return in.intern(in.one[:1])
}

// join returns the interned least upper bound of a and b. Identical pointers
// and ⊤ short-circuit; otherwise a linear sorted merge-union, returning a or
// b unchanged when one subsumes the other (so unchanged propagate slots keep
// their pointer and the caller's change detection stays a pointer compare).
func (in *interner) join(a, b *aval) *aval {
	if a == b {
		return a
	}
	if a.top || b.top {
		return avalTop
	}
	out := in.merge[:0]
	i, j := 0, 0
	for i < len(a.consts) && j < len(b.consts) {
		switch c := a.consts[i].Cmp(b.consts[j]); {
		case c < 0:
			out = append(out, a.consts[i])
			i++
		case c > 0:
			out = append(out, b.consts[j])
			j++
		default:
			out = append(out, a.consts[i])
			i++
			j++
		}
	}
	out = append(out, a.consts[i:]...)
	out = append(out, b.consts[j:]...)
	in.merge = out[:0]
	if len(out) > maxConstSet {
		return avalTop
	}
	// Subsumption: the union equals whichever input already held every
	// element (sets are canonical, so equal length means equal set).
	if len(out) == len(a.consts) {
		return a
	}
	if len(out) == len(b.consts) {
		return b
	}
	return in.intern(out)
}

// fold replicates the reference foldBinary over interned values: ⊤ operands
// and unfoldable opcodes yield ⊤, an operand-count product above maxConstSet
// widens to ⊤ before any arithmetic, and otherwise the result is the sorted
// dedup'd product set. Results are memoized per (op, a, b).
func (in *interner) fold(op evm.Op, a, b *aval) *aval {
	if a.top || b.top {
		return avalTop
	}
	f, ok := foldFunc(op)
	if !ok {
		return avalTop
	}
	k := foldKey{op: op, a: a, b: b}
	h := (a.hash ^ b.hash*fnvPrime ^ uint64(op)) * fnvPrime
	i := h & in.foldMask
	for {
		v := in.foldVals[i]
		if v == nil {
			break
		}
		if in.foldKeys[i] == k {
			return v
		}
		i = (i + 1) & in.foldMask
	}
	v := in.foldSlow(f, a, b)
	// foldSlow interns (and may grow the cons table) but never touches the
	// fold memo, so slot i is still the right insertion point.
	in.foldKeys[i] = k
	in.foldVals[i] = v
	in.foldLive++
	if uint64(in.foldLive)*4 > uint64(len(in.foldVals))*3 {
		in.growFold()
	}
	return v
}

// growFold doubles the fold memo and reinserts every live entry.
func (in *interner) growFold() {
	oldK, oldV := in.foldKeys, in.foldVals
	in.foldKeys = make([]foldKey, len(oldK)*2)
	in.foldVals = make([]*aval, len(oldV)*2)
	in.foldMask = uint64(len(in.foldVals) - 1)
	for j, v := range oldV {
		if v == nil {
			continue
		}
		k := oldK[j]
		h := (k.a.hash ^ k.b.hash*fnvPrime ^ uint64(k.op)) * fnvPrime
		i := h & in.foldMask
		for in.foldVals[i] != nil {
			i = (i + 1) & in.foldMask
		}
		in.foldKeys[i] = k
		in.foldVals[i] = v
	}
}

func (in *interner) foldSlow(f func(x, y u256.U256) u256.U256, a, b *aval) *aval {
	if len(a.consts)*len(b.consts) > maxConstSet {
		return avalTop
	}
	out := in.merge[:0]
	for _, x := range a.consts {
		for _, y := range b.consts {
			out = append(out, f(x, y))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cmp(out[j]) < 0 })
	dedup := out[:0]
	for i, c := range out {
		if i == 0 || c != out[i-1] {
			dedup = append(dedup, c)
		}
	}
	in.merge = out[:0]
	// The product pre-check bounds the raw product at maxConstSet, so the
	// deduplicated set can never widen here — mirroring the reference, where
	// joinVals over <= maxConstSet singletons cannot reach ⊤.
	return in.intern(dedup)
}
