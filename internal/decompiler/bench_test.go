package decompiler_test

import (
	"context"
	"testing"

	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// BenchmarkDecompile measures the optimized path on a realistic compiled
// contract; BenchmarkDecompileReference is the same input through the oracle,
// so the ratio between them is the interning/dense-table/priority-worklist
// win in isolation.
func BenchmarkDecompile(b *testing.B) {
	code := minisol.MustCompile(minisol.SafeTokenSource).Runtime
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decompiler.DecompileContext(ctx, code, decompiler.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompileReference(b *testing.B) {
	code := minisol.MustCompile(minisol.SafeTokenSource).Runtime
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decompiler.DecompileReference(ctx, code, decompiler.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompileHostile runs the adversarial ctx-explosion corpus to its
// deterministic budget failure — the worst-case path a hostile request pays
// before the negative cache absorbs repeats.
func BenchmarkDecompileHostile(b *testing.B) {
	ctx := context.Background()
	for name, code := range hostileInputs(b) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := decompiler.DecompileContext(ctx, code, decompiler.Limits{}); err == nil {
					b.Fatal("hostile input unexpectedly decompiled")
				}
			}
		})
	}
}
