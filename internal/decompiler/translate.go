package decompiler

import (
	"fmt"
	"slices"
	"sort"

	"ethainter/internal/evm"
	"ethainter/internal/tac"
)

// This file is the translation phase of the optimized decompiler. It emits
// the same tac.Program as the reference translator — block ids, variable ids,
// statement order, edge order, phi arguments, everything — but allocates
// statements and argument slices from chunked arenas instead of one heap
// object per statement, and replays decoded instructions from the dense
// table. Identical output follows from identical ordering decisions: blocks
// are created in (pc, depth) order, phi variables are allocated block by
// block before any statement variables, and blocks are emitted in that same
// order, exactly as in the reference.

// stmtChunk sizes the translation arenas. The slabs become part of the
// returned program's backing memory, so they are not pooled.
const stmtChunk = 512

type fastTranslator struct {
	r       *fastResolver
	prog    *tac.Program
	byCtx   []*tac.Block  // ctx id -> block
	exits   [][]tac.VarID // ctx id -> exit variable stack
	nextVar tac.VarID
	stmts   []tac.Stmt  // current statement slab
	ptrs    []*tac.Stmt // current statement-pointer slab (Phis/Stmts backing)
	vars    []tac.VarID // current variable-id slab (Args/exits backing)
	varStk  []tac.VarID // reusable symbolic stack

	// Index bookkeeping, maintained as statements are emitted so the program's
	// def/use index is installed via BuildIndexPrepared instead of re-walking
	// every statement three times. defs[v] is the statement defining v — valid
	// because fresh() is monotonic and every allocated variable is defined by
	// exactly one phi or statement. useCnt[v] counts argument occurrences.
	defs     []*tac.Stmt
	useCnt   []int32
	totalUse int
}

func (t *fastTranslator) fresh() tac.VarID {
	v := t.nextVar
	t.nextVar++
	return v
}

// newStmt hands out one statement from the current slab. The slot is extended
// by reslicing, not append(…, tac.Stmt{}): chunks come zeroed from make and
// are never reused, so the append would redundantly zero-write a pointer-laden
// struct (write-barrier traffic) that the caller immediately overwrites.
func (t *fastTranslator) newStmt() *tac.Stmt {
	if len(t.stmts) == cap(t.stmts) {
		t.stmts = make([]tac.Stmt, 0, stmtChunk)
	}
	t.stmts = t.stmts[: len(t.stmts)+1 : cap(t.stmts)]
	return &t.stmts[len(t.stmts)-1]
}

// allocPtrs hands out a zeroed []*tac.Stmt of length n with no spare
// capacity, so append semantics match a fresh allocation.
func (t *fastTranslator) allocPtrs(n int) []*tac.Stmt {
	if n == 0 {
		return nil
	}
	if len(t.ptrs)+n > cap(t.ptrs) {
		t.ptrs = make([]*tac.Stmt, 0, max(stmtChunk, n))
	}
	off := len(t.ptrs)
	t.ptrs = t.ptrs[: off+n : cap(t.ptrs)]
	s := t.ptrs[off : off+n : off+n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// emptyVars matches the reference translator's make([]tac.VarID, 0) for
// zero-operand value ops: non-nil, empty, allocation-free.
var emptyVars = []tac.VarID{}

// allocVars hands out a []tac.VarID of length n with no spare capacity.
func (t *fastTranslator) allocVars(n int) []tac.VarID {
	if n == 0 {
		return emptyVars
	}
	if len(t.vars)+n > cap(t.vars) {
		t.vars = make([]tac.VarID, 0, max(stmtChunk, n))
	}
	off := len(t.vars)
	t.vars = t.vars[: off+n : cap(t.vars)]
	return t.vars[off : off+n : off+n]
}

// ctxEdge is one (from, to) context edge recorded during translation wiring.
type ctxEdge struct{ from, to int32 }

// sortedCtxIDs returns the context ids ordered by (pc, depth) — the reference
// translator's key sort; (pc, depth) pairs are unique, so no tie-break is
// needed. When every pc and depth fits in 16 bits (always, for real
// contracts) the sort runs over packed integer keys with no comparison
// closure; the returned slice is scratch, consumed within the run.
func (r *fastResolver) sortedCtxIDs() []int32 {
	sc := r.sc
	n := len(r.keys)
	packable := true
	for i := range r.keys {
		if r.keys[i].pc >= 1<<16 || r.keys[i].depth >= 1<<16 {
			packable = false
			break
		}
	}
	ord := sc.ord[:0]
	if cap(ord) < n {
		ord = make([]int32, 0, n)
	}
	if packable {
		keys := sc.sortKeys[:0]
		if cap(keys) < n {
			keys = make([]uint64, 0, n)
		}
		for i := range r.keys {
			k := &r.keys[i]
			keys = append(keys, uint64(k.pc)<<48|uint64(k.depth)<<32|uint64(uint32(i)))
		}
		slices.Sort(keys)
		for _, k := range keys {
			ord = append(ord, int32(uint32(k)))
		}
		sc.sortKeys = keys[:0]
	} else {
		for i := 0; i < n; i++ {
			ord = append(ord, int32(i))
		}
		sort.Slice(ord, func(i, j int) bool {
			a, b := r.keys[ord[i]], r.keys[ord[j]]
			if a.pc != b.pc {
				return a.pc < b.pc
			}
			return a.depth < b.depth
		})
	}
	sc.ord = ord[:0]
	return ord
}

func (r *fastResolver) translate() (*tac.Program, error) {
	sc := r.sc
	n := len(r.keys)
	// byCtx and exits are scratch-backed: every slot is assigned before any
	// read (all blocks are created, then all blocks are emitted), and release
	// clears them so pooled scratches do not pin a returned program.
	if cap(sc.byCtx) < n {
		sc.byCtx = make([]*tac.Block, n)
	} else {
		sc.byCtx = sc.byCtx[:n]
	}
	if cap(sc.exits) < n {
		sc.exits = make([][]tac.VarID, n)
	} else {
		sc.exits = sc.exits[:n]
	}
	t := &fastTranslator{
		r:     r,
		prog:  &tac.Program{},
		byCtx: sc.byCtx,
		exits: sc.exits,
	}
	ord := r.sortedCtxIDs()
	t.prog.Blocks = make([]*tac.Block, 0, len(ord))
	blockArena := make([]tac.Block, len(ord))
	// Exact-capacity def/use bookkeeping: every phi (one per entry-stack slot)
	// and at most one statement per decoded instruction can define a variable,
	// so presizing kills the append-grow chains in the emit hot loop.
	capVars := 0
	for _, id := range ord {
		k := r.keys[id]
		capVars += k.depth + int(r.ct.blocks[r.ct.idxByPC[k.pc]].count)
	}
	t.defs = make([]*tac.Stmt, 0, capVars)
	t.useCnt = make([]int32, 0, capVars)
	// capVars also bounds the statement count (phis + at most one statement
	// per instruction) and is exactly the pointer-slab demand (every phi and
	// statement slot), so one right-sized slab each replaces the fixed-size
	// chunk chain — roughly a third of the bytes the old chunking allocated
	// per program went unused past the final slab's high-water mark.
	t.stmts = make([]tac.Stmt, 0, capVars)
	t.ptrs = make([]*tac.Stmt, 0, capVars)
	t.vars = make([]tac.VarID, 0, capVars)
	for i, id := range ord {
		k := r.keys[id]
		b := &blockArena[i]
		b.ID, b.PC, b.Depth = i, k.pc, k.depth
		// One phi per entry stack slot; slot 0 is the bottom. Phis count
		// against the statement budget: deep-stack hostile contexts can
		// demand orders of magnitude more phis than real statements.
		if err := r.budget.chargeStmts(k.depth); err != nil {
			return nil, err
		}
		if k.depth > 0 {
			b.Phis = t.allocPtrs(k.depth)
			for s := 0; s < k.depth; s++ {
				phi := t.newStmt()
				phi.Op, phi.Def, phi.PC, phi.Block = tac.Phi, t.fresh(), k.pc, b
				b.Phis[s] = phi
				t.defs = append(t.defs, phi)
				t.useCnt = append(t.useCnt, 0)
			}
		}
		t.byCtx[id] = b
		t.prog.Blocks = append(t.prog.Blocks, b)
	}
	t.prog.Entry = t.byCtx[r.ctxOf[ctxKey{pc: 0, depth: 0}]]
	// Emit statements per block, in the same (pc, depth) order.
	edges := sc.edges[:0]
	for _, id := range ord {
		succs, err := t.emitBlock(id)
		if err != nil {
			return nil, err
		}
		if err := r.budget.chargeStmts(len(t.byCtx[id].Stmts)); err != nil {
			return nil, err
		}
		for _, s := range succs {
			edges = append(edges, ctxEdge{from: id, to: r.ctxOf[s]})
		}
	}
	sc.edges = edges[:0]
	// Wire edges and phi arguments (dedup parallel edges, first-seen order).
	if sc.edgeSeen == nil {
		sc.edgeSeen = make(map[ctxEdge]bool, 64)
	} else {
		clear(sc.edgeSeen)
	}
	seen := sc.edgeSeen
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		from, to := t.byCtx[e.from], t.byCtx[e.to]
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
		exit := t.exits[e.from]
		for s, phi := range to.Phis {
			phi.Args = append(phi.Args, exit[s])
			if exit[s] >= 0 {
				t.useCnt[exit[s]]++
				t.totalUse++
			}
		}
	}
	t.prog.NumVars = int(t.nextVar)
	if len(t.defs) == int(t.nextVar) {
		t.prog.BuildIndexPrepared(t.defs, t.useCnt, t.totalUse)
	} else {
		// Unreachable when every fresh() is paired with a def, but a full
		// rebuild is always correct — never install a short table.
		t.prog.BuildIndex()
	}
	return t.prog, nil
}

// emitBlock symbolically executes the decoded block over a stack of SSA
// variables, appending arena-allocated statements, and returns successor
// contexts (scratch-backed; consumed by the caller before the next call).
// It mirrors the reference emitBlock decision for decision.
func (t *fastTranslator) emitBlock(id int32) ([]ctxKey, error) {
	r := t.r
	key := r.keys[id]
	blk := r.ct.block(key.pc)
	b := t.byCtx[id]
	stack := t.varStk[:0]
	for _, phi := range b.Phis {
		stack = append(stack, phi.Def)
	}
	defer func() { t.varStk = stack[:0] }()
	// Track abstract values alongside for jump resolution, mirroring phase 1
	// (using the joined entry state so targets match the recorded edges).
	abs := append(r.sc.stack[:0], r.states[id]...)
	defer func() { r.sc.stack = abs[:0] }()
	succs := r.sc.succs[:0]
	defer func() { r.sc.succs = succs[:0] }()

	popVar := func() (tac.VarID, *aval, error) {
		if len(stack) == 0 {
			return tac.NoVar, avalTop, fmt.Errorf("%w: at pc %d", ErrStackUnderflow, key.pc)
		}
		v, a := stack[len(stack)-1], abs[len(abs)-1]
		stack = stack[:len(stack)-1]
		abs = abs[:len(abs)-1]
		return v, a, nil
	}
	emit := func(op tac.OpKind, def tac.VarID, pc int, args []tac.VarID) *tac.Stmt {
		s := t.newStmt()
		s.Op, s.Def, s.Args, s.PC, s.Block, s.Idx = op, def, args, pc, b, len(b.Stmts)
		b.Stmts = append(b.Stmts, s)
		if def != tac.NoVar {
			t.defs = append(t.defs, s)
			t.useCnt = append(t.useCnt, 0)
		}
		for _, a := range args {
			if a >= 0 {
				t.useCnt[a]++
				t.totalUse++
			}
		}
		return s
	}
	finish := func(sk []ctxKey) []ctxKey {
		ex := t.allocVars(len(stack))
		copy(ex, stack)
		t.exits[id] = ex
		return sk
	}

	if b.Stmts == nil && blk.count > 0 {
		// Exact-capacity pointer backing: each instruction emits at most one
		// statement.
		b.Stmts = t.allocPtrs(int(blk.count))[:0]
	}
	instrs := r.ct.instrs[blk.first : blk.first+blk.count]
	for ii := range instrs {
		ins := &instrs[ii]
		op := ins.Op
		switch {
		case !op.Defined():
			emit(tac.Invalid, tac.NoVar, ins.PC, nil)
			return finish(nil), nil
		case op.IsPush():
			def := t.fresh()
			s := emit(tac.Const, def, ins.PC, nil)
			s.Val = ins.Arg
			stack = append(stack, def)
			abs = append(abs, r.ct.pushConst[blk.first+int32(ii)])
		case op.IsDup():
			n := int(op-evm.DUP1) + 1
			if len(stack) < n {
				return nil, fmt.Errorf("%w: DUP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			stack = append(stack, stack[len(stack)-n])
			abs = append(abs, abs[len(abs)-n])
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if len(stack) < n+1 {
				return nil, fmt.Errorf("%w: SWAP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			top := len(stack) - 1
			stack[top], stack[top-n] = stack[top-n], stack[top]
			abs[top], abs[top-n] = abs[top-n], abs[top]
		case op == evm.POP:
			if _, _, err := popVar(); err != nil {
				return nil, err
			}
		case op == evm.JUMPDEST:
			// no statement
		case op == evm.JUMP:
			tv, ta, err := popVar()
			if err != nil {
				return nil, err
			}
			args := t.allocVars(1)
			args[0] = tv
			emit(tac.Jump, tac.NoVar, ins.PC, args)
			tgts, err := r.jumpTargets(ta, ins.PC)
			if err != nil {
				return nil, err
			}
			for _, tg := range tgts {
				succs = append(succs, ctxKey{pc: tg, depth: len(stack)})
			}
			return finish(succs), nil
		case op == evm.JUMPI:
			tv, ta, err := popVar()
			if err != nil {
				return nil, err
			}
			cv, _, err := popVar()
			if err != nil {
				return nil, err
			}
			args := t.allocVars(2)
			args[0], args[1] = tv, cv
			emit(tac.Jumpi, tac.NoVar, ins.PC, args)
			tgts, err := r.jumpTargets(ta, ins.PC)
			if err != nil {
				return nil, err
			}
			for _, tg := range tgts {
				succs = append(succs, ctxKey{pc: tg, depth: len(stack)})
			}
			if blk.fallsThrough {
				succs = append(succs, ctxKey{pc: blk.nextPC, depth: len(stack)})
			}
			return finish(succs), nil
		default:
			kind, ok := opKindOf(op)
			if !ok {
				return nil, fmt.Errorf("decompiler: unmapped opcode %s at pc %d", op, ins.PC)
			}
			pops := op.Pops()
			args := t.allocVars(pops)
			var a0, a1 *aval
			for i := 0; i < pops; i++ {
				v, a, err := popVar()
				if err != nil {
					return nil, err
				}
				args[i] = v
				if i == 0 {
					a0 = a
				} else if i == 1 {
					a1 = a
				}
			}
			var def tac.VarID = tac.NoVar
			if op.Pushes() > 0 {
				def = t.fresh()
			}
			emit(kind, def, ins.PC, args)
			if def != tac.NoVar {
				stack = append(stack, def)
				if pops == 2 {
					abs = append(abs, r.in.fold(op, a0, a1))
				} else {
					abs = append(abs, avalTop)
				}
			}
			if kind.IsTerminator() {
				return finish(nil), nil
			}
		}
	}
	if blk.fallsThrough {
		return finish([]ctxKey{{pc: blk.nextPC, depth: len(stack)}}), nil
	}
	return finish(nil), nil
}
