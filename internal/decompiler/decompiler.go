// Package decompiler lifts EVM bytecode to the SSA 3-address representation
// of package tac, standing in for the paper's Gigahorse toolchain.
//
// The pipeline is:
//
//  1. Disassemble and split into raw basic blocks (leaders are offset 0,
//     JUMPDESTs, and fallthrough points after branches).
//  2. Resolve jump targets with a context-sensitive value-set analysis: each
//     analysis context is a (block offset, entry stack depth) pair, and each
//     abstract stack slot holds a bounded set of constants or ⊤. This is what
//     lets compiler-generated internal calls (push return address, jump,
//     return via a computed jump) produce a precise, depth-consistent CFG —
//     the same role Gigahorse's context-sensitive CFG construction plays.
//  3. Translate each context to a tac.Block by symbolic stack execution,
//     introducing one phi per entry stack slot and a fresh SSA variable per
//     value-producing instruction; wire CFG edges and phi arguments.
//  4. Discover public functions from the 4-byte-selector dispatch pattern
//     (SHR/DIV of CALLDATALOAD(0) compared against constants feeding JUMPIs).
//
// Two implementations of phases 1–3 coexist. The production path (decode.go,
// intern.go, fixpoint.go, translate.go) decodes the bytecode once into a
// dense index-addressed block table, hash-conses abstract values through a
// per-run interner so joins are pointer comparisons, and drives the fixpoint
// with a reverse-post-order priority worklist. The reference path
// (reference.go) keeps the original map-based implementation as a
// differential oracle; the two are bit-identical on every input where both
// succeed (see the equivalence sweep and FuzzDecompileEquivalence).
//
// Bytecode that defeats the value-set analysis (unresolvable jump targets,
// operand-stack underflow, context explosion) fails to decompile; the
// evaluation counts such contracts the way the paper counts decompilation
// timeouts.
package decompiler

import (
	"context"
	"errors"
	"time"

	"ethainter/internal/evm"
	"ethainter/internal/tac"
)

// maxConstSet bounds the constants tracked per abstract stack slot; past it a
// slot widens to ⊤. Unlike the work budgets of Limits it changes *what* the
// analysis derives, not how long it runs, so it stays a fixed constant.
const maxConstSet = 16

// Decompilation failure classes.
var (
	ErrUnresolvedJump   = errors.New("decompiler: unresolved jump target")
	ErrStackUnderflow   = errors.New("decompiler: operand stack underflow")
	ErrContextExplosion = errors.New("decompiler: context explosion")
	ErrEmptyCode        = errors.New("decompiler: empty code")
)

// Timings is the per-phase wall-clock breakdown of one decompilation,
// reported by DecompileTimed. Decode covers disassembly and block-table
// construction, ValueSet the context-sensitive fixpoint, Translate the TAC
// emission (including phi/edge wiring), Functions the selector-dispatch
// function discovery. On failure the phases that ran are still populated.
type Timings struct {
	Decode    time.Duration
	ValueSet  time.Duration
	Translate time.Duration
	Functions time.Duration
}

// Decompile lifts runtime bytecode into a tac.Program under the default work
// budgets and no cancellation — the historical entry point, byte-for-byte
// equivalent to DecompileContext(context.Background(), code, Limits{}).
func Decompile(code []byte) (*tac.Program, error) {
	return DecompileContext(context.Background(), code, Limits{})
}

// DecompileContext lifts runtime bytecode into a tac.Program, polling ctx on
// a cheap stride and charging every phase — the context-sensitive value-set
// fixpoint, the translation to TAC, and function discovery — against the
// given work budget. A cancelled or expired ctx surfaces as ctx.Err() within
// microseconds of the poll stride; an exhausted budget surfaces as a
// *BudgetError wrapping ErrBudgetExhausted, which is deterministic for the
// (bytecode, limits) pair and therefore safe for callers to memoize.
func DecompileContext(ctx context.Context, code []byte, limits Limits) (*tac.Program, error) {
	prog, _, err := DecompileTimed(ctx, code, limits)
	return prog, err
}

// DecompileTimed is DecompileContext plus the per-phase timing breakdown. It
// runs the optimized path: dense decoded block table, interned abstract
// values, reverse-post-order priority worklist, pooled scratch.
func DecompileTimed(ctx context.Context, code []byte, limits Limits) (*tac.Program, Timings, error) {
	var tm Timings
	sc := scratchPool.Get().(*scratch)
	sc.acquire()
	var r *fastResolver
	defer func() {
		if r != nil {
			r.persist()
		}
		sc.release()
		scratchPool.Put(sc)
	}()

	start := time.Now()
	ct, err := decodeCode(code, sc)
	tm.Decode = time.Since(start)
	if err != nil {
		return nil, tm, err
	}

	start = time.Now()
	r = newFastResolver(ct, sc, newBudget(ctx, limits))
	err = r.fixpoint()
	tm.ValueSet = time.Since(start)
	if err != nil {
		return nil, tm, err
	}

	start = time.Now()
	prog, err := r.translate()
	tm.Translate = time.Since(start)
	if err != nil {
		return nil, tm, err
	}

	start = time.Now()
	err = discoverFunctions(r.budget, prog)
	tm.Functions = time.Since(start)
	if err != nil {
		return nil, tm, err
	}
	return prog, tm, nil
}

// opKindOf maps EVM opcodes to TAC operation kinds (stack-shuffling and
// control opcodes are handled separately).
func opKindOf(op evm.Op) (tac.OpKind, bool) {
	switch op {
	case evm.STOP:
		return tac.Stop, true
	case evm.ADD:
		return tac.Add, true
	case evm.MUL:
		return tac.Mul, true
	case evm.SUB:
		return tac.Sub, true
	case evm.DIV:
		return tac.Div, true
	case evm.SDIV:
		return tac.Sdiv, true
	case evm.MOD:
		return tac.Mod, true
	case evm.SMOD:
		return tac.Smod, true
	case evm.ADDMOD:
		return tac.Addmod, true
	case evm.MULMOD:
		return tac.Mulmod, true
	case evm.EXP:
		return tac.Exp, true
	case evm.SIGNEXTEND:
		return tac.Signextend, true
	case evm.LT:
		return tac.Lt, true
	case evm.GT:
		return tac.Gt, true
	case evm.SLT:
		return tac.Slt, true
	case evm.SGT:
		return tac.Sgt, true
	case evm.EQ:
		return tac.Eq, true
	case evm.ISZERO:
		return tac.Iszero, true
	case evm.AND:
		return tac.And, true
	case evm.OR:
		return tac.Or, true
	case evm.XOR:
		return tac.Xor, true
	case evm.NOT:
		return tac.Not, true
	case evm.BYTE:
		return tac.Byte, true
	case evm.SHL:
		return tac.Shl, true
	case evm.SHR:
		return tac.Shr, true
	case evm.SAR:
		return tac.Sar, true
	case evm.SHA3:
		return tac.Sha3, true
	case evm.ADDRESS:
		return tac.Address, true
	case evm.BALANCE:
		return tac.Balance, true
	case evm.ORIGIN:
		return tac.Origin, true
	case evm.CALLER:
		return tac.Caller, true
	case evm.CALLVALUE:
		return tac.Callvalue, true
	case evm.CALLDATALOAD:
		return tac.Calldataload, true
	case evm.CALLDATASIZE:
		return tac.Calldatasize, true
	case evm.CALLDATACOPY:
		return tac.Calldatacopy, true
	case evm.CODESIZE:
		return tac.Codesize, true
	case evm.CODECOPY:
		return tac.Codecopy, true
	case evm.GASPRICE:
		return tac.Gasprice, true
	case evm.EXTCODESIZE:
		return tac.Extcodesize, true
	case evm.EXTCODECOPY:
		return tac.Extcodecopy, true
	case evm.RETURNDATASIZE:
		return tac.Returndatasize, true
	case evm.RETURNDATACOPY:
		return tac.Returndatacopy, true
	case evm.EXTCODEHASH:
		return tac.Extcodehash, true
	case evm.BLOCKHASH:
		return tac.Blockhash, true
	case evm.COINBASE:
		return tac.Coinbase, true
	case evm.TIMESTAMP:
		return tac.Timestamp, true
	case evm.NUMBER:
		return tac.Number, true
	case evm.DIFFICULTY:
		return tac.Difficulty, true
	case evm.GASLIMIT:
		return tac.Gaslimit, true
	case evm.CHAINID:
		return tac.Chainid, true
	case evm.SELFBALANCE:
		return tac.Selfbalance, true
	case evm.MLOAD:
		return tac.Mload, true
	case evm.MSTORE:
		return tac.Mstore, true
	case evm.MSTORE8:
		return tac.Mstore8, true
	case evm.SLOAD:
		return tac.Sload, true
	case evm.SSTORE:
		return tac.Sstore, true
	case evm.PC:
		return tac.Pc, true
	case evm.MSIZE:
		return tac.Msize, true
	case evm.GAS:
		return tac.Gas, true
	case evm.CREATE:
		return tac.Create, true
	case evm.CREATE2:
		return tac.Create2, true
	case evm.CALL:
		return tac.CallOp, true
	case evm.CALLCODE:
		return tac.Callcode, true
	case evm.DELEGATECALL:
		return tac.Delegatecall, true
	case evm.STATICCALL:
		return tac.Staticcall, true
	case evm.RETURN:
		return tac.ReturnOp, true
	case evm.REVERT:
		return tac.RevertOp, true
	case evm.INVALID:
		return tac.Invalid, true
	case evm.SELFDESTRUCT:
		return tac.SelfdestructOp, true
	}
	if op.IsLog() {
		return tac.Log, true
	}
	return 0, false
}
