package decompiler

import (
	"context"
	"errors"
	"fmt"
)

// Default work budgets. MaxContexts keeps its historical value (the old
// hard-coded constant), so the default Limits reproduce the pre-budget
// decompiler bit-for-bit on every input that ever decompiled successfully.
// The step and statement defaults are sized two orders of magnitude above
// anything the synthetic corpus produces: a legitimate contract never grazes
// them, while hostile bytecode that drives the value-set fixpoint into
// repeated widening is cut off deterministically instead of burning seconds
// of CPU per request.
const (
	DefaultMaxContexts      = 6000    // (block, depth) specializations per contract
	DefaultMaxWorklistSteps = 1 << 21 // block simulations in the value-set fixpoint
	DefaultMaxStatements    = 1 << 20 // TAC statements emitted by translation
)

// Limits is the decompilation work budget. Every phase of DecompileContext
// charges against it: the context-sensitive value-set fixpoint against
// MaxContexts and MaxWorklistSteps, the translation phase against
// MaxStatements. A zero or negative field selects its default, so the zero
// value means "default budgets" and Limits composes cleanly as a config
// field. Exhausting any budget returns a *BudgetError wrapping
// ErrBudgetExhausted — a deterministic property of the bytecode (given the
// limits), unlike a context cancellation, and therefore safe to cache
// negatively.
type Limits struct {
	// MaxContexts bounds (block, entry-depth) specializations — the old
	// package-level maxContexts constant made configurable.
	MaxContexts int
	// MaxWorklistSteps bounds block simulations in the value-set fixpoint.
	// Hostile bytecode can re-simulate the same few contexts thousands of
	// times while constant sets widen; this cap bounds that CPU regardless
	// of how few contexts exist.
	MaxWorklistSteps int
	// MaxStatements bounds TAC statements emitted during translation.
	MaxStatements int
}

// DefaultLimits returns the production budgets.
func DefaultLimits() Limits {
	return Limits{
		MaxContexts:      DefaultMaxContexts,
		MaxWorklistSteps: DefaultMaxWorklistSteps,
		MaxStatements:    DefaultMaxStatements,
	}
}

// Normalized resolves zero/negative fields to their defaults. Callers that
// fingerprint or compare Limits must normalize first so that the zero value
// and explicit defaults are interchangeable.
func (l Limits) Normalized() Limits {
	if l.MaxContexts <= 0 {
		l.MaxContexts = DefaultMaxContexts
	}
	if l.MaxWorklistSteps <= 0 {
		l.MaxWorklistSteps = DefaultMaxWorklistSteps
	}
	if l.MaxStatements <= 0 {
		l.MaxStatements = DefaultMaxStatements
	}
	return l
}

// ErrBudgetExhausted is the class of deterministic resource-budget failures:
// the bytecode demanded more work than the configured Limits allow. Unlike a
// context cancellation, re-running the same bytecode under the same limits
// fails identically, so callers may memoize this error.
var ErrBudgetExhausted = errors.New("decompiler: work budget exhausted")

// BudgetError reports which budget a decompilation exhausted. It matches
// ErrBudgetExhausted via errors.Is; the contexts resource additionally
// matches the legacy ErrContextExplosion.
type BudgetError struct {
	Resource string // "contexts", "worklist steps", or "statements"
	Limit    int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("decompiler: %s budget exhausted (limit %d)", e.Resource, e.Limit)
}

// Is classifies the error: every BudgetError is an ErrBudgetExhausted, and
// the contexts budget keeps matching ErrContextExplosion for callers that
// predate configurable limits.
func (e *BudgetError) Is(target error) bool {
	if target == ErrBudgetExhausted {
		return true
	}
	return e.Resource == "contexts" && target == ErrContextExplosion
}

// budget is the charging state threaded through one decompilation: the
// normalized limits, monotone work counters, and the cancellation context,
// polled on a cheap stride so a deadline aborts within microseconds of
// expiring even mid-fixpoint.
type budget struct {
	ctx    context.Context
	limits Limits
	steps  int // worklist block simulations
	stmts  int // translated TAC statements
}

// pollStride is how many work units pass between context polls. Each unit
// (one block simulation, one emitted statement) costs microseconds at most,
// so a stride of 32 keeps cancellation latency far below any realistic
// deadline while making the poll itself unmeasurable.
const pollStride = 32

func newBudget(ctx context.Context, limits Limits) *budget {
	if ctx == nil {
		ctx = context.Background()
	}
	return &budget{ctx: ctx, limits: limits.Normalized()}
}

// chargeStep charges one value-set fixpoint iteration, polling the context
// on the stride.
func (b *budget) chargeStep() error {
	if b.steps%pollStride == 0 {
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	b.steps++
	if b.steps > b.limits.MaxWorklistSteps {
		return &BudgetError{Resource: "worklist steps", Limit: b.limits.MaxWorklistSteps}
	}
	return nil
}

// chargeStmts charges n translated statements, polling the context once.
func (b *budget) chargeStmts(n int) error {
	if err := b.ctx.Err(); err != nil {
		return err
	}
	b.stmts += n
	if b.stmts > b.limits.MaxStatements {
		return &BudgetError{Resource: "statements", Limit: b.limits.MaxStatements}
	}
	return nil
}
