package decompiler_test

import (
	"context"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ethainter/internal/corpus"
	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// The optimized decompiler (dense tables, interned values, RPO priority
// worklist) must be bit-identical to the retained reference path on every
// input where both succeed: identical block ids, variable ids, statement
// order, edges, phi arguments, and discovered functions. These tests enforce
// that across the full synthetic corpus, the hand-written fixtures, and the
// adversarial hostile inputs, at both default and tight budgets.

// hostileInputs loads the committed ctx-explosion bytecodes.
func hostileInputs(t testing.TB) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "hostile", "*.hex"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("hostile corpus missing: %v (%d files)", err, len(paths))
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		code, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		out[filepath.Base(p)] = code
	}
	return out
}

// checkEquivalent decompiles code with both paths under the same limits and
// enforces the equivalence contract. The worklist-steps budget is the one
// deliberately path-dependent resource (the priority worklist needs fewer
// steps than the reference FIFO to reach the same fixpoint), so outcomes are
// not compared when either path exhausts it; the contexts and statements
// budgets are confluent — the context set and emitted statements are
// properties of the least fixpoint, not the visit order — and must agree.
func checkEquivalent(t *testing.T, code []byte, limits decompiler.Limits) {
	t.Helper()
	ctx := context.Background()
	fast, fastErr := decompiler.DecompileContext(ctx, code, limits)
	ref, refErr := decompiler.DecompileReference(ctx, code, limits)

	if stepsExhausted(fastErr) || stepsExhausted(refErr) {
		return
	}
	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("success disagreement: fast err=%v, reference err=%v", fastErr, refErr)
	}
	if fastErr != nil {
		// Both failed. Error classes may differ (visit order decides which
		// defect surfaces first), but budget exhaustion is confluent, so the
		// class must agree when either path reports it.
		if errors.Is(fastErr, decompiler.ErrBudgetExhausted) != errors.Is(refErr, decompiler.ErrBudgetExhausted) {
			t.Fatalf("budget-class disagreement: fast err=%v, reference err=%v", fastErr, refErr)
		}
		return
	}
	if fc, rc := fast.Canonical(), ref.Canonical(); fc != rc {
		t.Fatalf("programs differ:\n--- fast ---\n%s\n--- reference ---\n%s", head(fc, rc), head(rc, fc))
	}
}

// head trims a canonical dump to the first divergent region for readable
// failures.
func head(s, other string) string {
	i := 0
	for i < len(s) && i < len(other) && s[i] == other[i] {
		i++
	}
	start := i - 200
	if start < 0 {
		start = 0
	}
	end := i + 200
	if end > len(s) {
		end = len(s)
	}
	return s[start:end]
}

func stepsExhausted(err error) bool {
	var be *decompiler.BudgetError
	return errors.As(err, &be) && be.Resource == "worklist steps"
}

// TestDecompileEquivalenceSweep decompiles every unique corpus contract plus
// the hand-written fixtures with both paths, at default and tight limits.
func TestDecompileEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	seen := map[string]bool{}
	var codes [][]byte
	add := func(code []byte) {
		if len(code) == 0 || seen[string(code)] {
			return
		}
		seen[string(code)] = true
		codes = append(codes, code)
	}
	for _, src := range []string{minisol.VictimSource, minisol.SafeTokenSource} {
		add(minisol.MustCompile(src).Runtime)
	}
	for _, c := range corpus.Generate(corpus.DefaultProfile(300, 20200615)) {
		add(c.Runtime)
	}
	tight := decompiler.Limits{MaxContexts: 40, MaxWorklistSteps: 4000, MaxStatements: 2000}
	t.Logf("sweeping %d unique bytecodes", len(codes))
	for _, code := range codes {
		checkEquivalent(t, code, decompiler.Limits{})
		checkEquivalent(t, code, tight)
	}
}

// TestDecompileEquivalenceHostile pins the adversarial inputs: both paths
// must fail at default limits, and the production path must keep reporting
// the contexts budget — the class the negative cache and the /statsz failure
// taxonomy key on.
func TestDecompileEquivalenceHostile(t *testing.T) {
	for name, code := range hostileInputs(t) {
		t.Run(name, func(t *testing.T) {
			checkEquivalent(t, code, decompiler.Limits{})
			_, err := decompiler.DecompileContext(context.Background(), code, decompiler.Limits{})
			var be *decompiler.BudgetError
			if !errors.As(err, &be) || be.Resource != "contexts" {
				t.Fatalf("want contexts budget exhaustion, got %v", err)
			}
		})
	}
}

// TestDecompileTimedPhases sanity-checks the sub-stage breakdown: phases that
// ran must be populated and the entry points must agree with each other.
func TestDecompileTimedPhases(t *testing.T) {
	code := minisol.MustCompile(minisol.SafeTokenSource).Runtime
	prog, tm, err := decompiler.DecompileTimed(context.Background(), code, decompiler.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil || len(prog.Blocks) == 0 {
		t.Fatal("empty program")
	}
	if tm.Decode <= 0 || tm.ValueSet <= 0 || tm.Translate <= 0 || tm.Functions < 0 {
		t.Fatalf("unpopulated phase timings: %+v", tm)
	}
	prog2, err := decompiler.Decompile(code)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Canonical() != prog2.Canonical() {
		t.Fatal("DecompileTimed and Decompile disagree")
	}
}

// FuzzDecompileEquivalence is the differential fuzzer between the optimized
// and reference decompilers, sharing seeds with FuzzAnalyzeBytecode's shapes:
// empty, truncated-PUSH, dynamic-jump, real compiled contracts, and the
// hostile corpus. The optimized path must also be self-deterministic — the
// property the content-addressed cache relies on.
func FuzzDecompileEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x60})       // truncated PUSH1
	f.Add([]byte{0x5b, 0x56}) // JUMPDEST; JUMP (dynamic)
	f.Add(minisol.MustCompile(minisol.VictimSource).Runtime)
	f.Add(minisol.MustCompile(minisol.SafeTokenSource).Runtime)
	for _, c := range corpus.Generate(corpus.DefaultProfile(4, 20200615)) {
		f.Add(c.Runtime)
	}
	for _, code := range hostileInputs(f) {
		f.Add(code)
	}
	limits := decompiler.Limits{MaxContexts: 500, MaxWorklistSteps: 20000, MaxStatements: 50000}
	f.Fuzz(func(t *testing.T, code []byte) {
		if len(code) > 24576 {
			t.Skip("beyond the EIP-170 deployed-code cap")
		}
		checkEquivalent(t, code, limits)
		// Self-determinism of the optimized path.
		ctx := context.Background()
		p1, err1 := decompiler.DecompileContext(ctx, code, limits)
		p2, err2 := decompiler.DecompileContext(ctx, code, limits)
		switch {
		case (err1 == nil) != (err2 == nil):
			t.Fatalf("nondeterministic outcome: %v vs %v", err1, err2)
		case err1 != nil:
			if err1.Error() != err2.Error() {
				t.Fatalf("nondeterministic error: %q vs %q", err1, err2)
			}
		case p1.Canonical() != p2.Canonical():
			t.Fatal("nondeterministic program")
		}
	})
}
