package decompiler_test

import (
	"errors"
	"testing"

	"ethainter/internal/decompiler"
	"ethainter/internal/evm"
	"ethainter/internal/minisol"
	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

func decompileSource(t *testing.T, src string) *tac.Program {
	t.Helper()
	out, err := minisol.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		t.Fatalf("decompile: %v", err)
	}
	return prog
}

// checkSSAInvariants verifies structural well-formedness: unique defs, uses
// dominated by defs at the block level for straight-line code, phi arity
// matching predecessor count, terminators only at block ends.
func checkSSAInvariants(t *testing.T, p *tac.Program) {
	t.Helper()
	defs := map[tac.VarID]*tac.Stmt{}
	p.AllStmts(func(s *tac.Stmt) {
		if s.Def != tac.NoVar {
			if prev, dup := defs[s.Def]; dup {
				t.Errorf("v%d defined twice: %s and %s", s.Def, prev, s)
			}
			defs[s.Def] = s
		}
	})
	p.AllStmts(func(s *tac.Stmt) {
		for _, a := range s.Args {
			if defs[a] == nil {
				t.Errorf("use of undefined v%d in %s", a, s)
			}
		}
	})
	for _, b := range p.Blocks {
		for _, phi := range b.Phis {
			if len(phi.Args) != len(b.Preds) && len(b.Preds) > 0 {
				t.Errorf("%s: phi arity %d != %d preds", b.Label(), len(phi.Args), len(b.Preds))
			}
		}
		for i, s := range b.Stmts {
			if s.Op.IsTerminator() && i != len(b.Stmts)-1 {
				t.Errorf("%s: terminator %s mid-block", b.Label(), s)
			}
		}
		for _, succ := range b.Succs {
			found := false
			for _, pred := range succ.Preds {
				if pred == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %s -> %s not mirrored in preds", b.Label(), succ.Label())
			}
		}
	}
}

func countOps(p *tac.Program, kind tac.OpKind) int {
	n := 0
	p.AllStmts(func(s *tac.Stmt) {
		if s.Op == kind {
			n++
		}
	})
	return n
}

func TestDecompileVictim(t *testing.T) {
	prog := decompileSource(t, minisol.VictimSource)
	checkSSAInvariants(t, prog)

	// All five public functions must be discovered with correct selectors.
	want := []string{"registerSelf()", "referUser(address)", "referAdmin(address)", "changeOwner(address)", "kill()"}
	if len(prog.Functions) != len(want) {
		t.Fatalf("found %d public functions, want %d", len(prog.Functions), len(want))
	}
	bySel := map[[4]byte]bool{}
	for _, f := range prog.Functions {
		bySel[f.SelectorBytes()] = true
	}
	for _, sig := range want {
		if !bySel[minisol.SelectorOf(sig)] {
			t.Errorf("selector of %s not discovered", sig)
		}
	}
	// The contract contains exactly one SELFDESTRUCT, guarded storage ops,
	// and sender-keyed hashing.
	if n := countOps(prog, tac.SelfdestructOp); n != 1 {
		t.Errorf("SELFDESTRUCT count = %d, want 1", n)
	}
	if countOps(prog, tac.Sha3) == 0 {
		t.Error("expected SHA3 operations for mapping access")
	}
	if countOps(prog, tac.Caller) == 0 {
		t.Error("expected CALLER operations")
	}
	if countOps(prog, tac.Sstore) == 0 || countOps(prog, tac.Sload) == 0 {
		t.Error("expected storage operations")
	}
}

func TestDecompileAllFixtures(t *testing.T) {
	fixtures := map[string]string{
		"victim":       minisol.VictimSource,
		"taintedOwner": minisol.TaintedOwnerSource,
		"delegatecall": minisol.TaintedDelegatecallSource,
		"killable":     minisol.AccessibleSelfdestructSource,
		"taintedSelfd": minisol.TaintedSelfdestructSource,
		"staticcall":   minisol.UncheckedStaticcallSource,
		"token":        minisol.SafeTokenSource,
	}
	for name, src := range fixtures {
		t.Run(name, func(t *testing.T) {
			prog := decompileSource(t, src)
			checkSSAInvariants(t, prog)
			if len(prog.Functions) == 0 {
				t.Error("no public functions discovered")
			}
		})
	}
}

// Internal calls create (block, depth) contexts; the same function body
// called from two different call sites must decompile (the depth-specialized
// contexts keep stack access consistent).
func TestDecompileInternalCallContexts(t *testing.T) {
	src := `
contract C {
    uint256 a;
    function helper(uint256 x) internal returns (uint256) { return x + 1; }
    function deep(uint256 x) internal returns (uint256) { return helper(x) * 2; }
    function f() public returns (uint256) { return helper(10); }
    function g() public returns (uint256) { return deep(20); }
}`
	prog := decompileSource(t, src)
	checkSSAInvariants(t, prog)
	if len(prog.Functions) != 2 {
		t.Fatalf("functions = %d, want 2", len(prog.Functions))
	}
	// helper is reachable at two stack depths (from f at depth 1, via deep at
	// depth 2), so some pc must appear with two Depth values.
	depths := map[int]map[int]bool{}
	for _, b := range prog.Blocks {
		if depths[b.PC] == nil {
			depths[b.PC] = map[int]bool{}
		}
		depths[b.PC][b.Depth] = true
	}
	multi := false
	for _, d := range depths {
		if len(d) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("expected depth-specialized contexts for the shared helper")
	}
}

func TestDecompileLoop(t *testing.T) {
	src := `
contract L {
    function sum(uint256 n) public returns (uint256) {
        uint256 acc = 0;
        uint256 i = 0;
        while (i < n) { acc += i; i += 1; }
        return acc;
    }
}`
	prog := decompileSource(t, src)
	checkSSAInvariants(t, prog)
	// The loop head must have two predecessors (entry and back edge).
	hasLoopHead := false
	for _, b := range prog.Blocks {
		if len(b.Preds) >= 2 {
			hasLoopHead = true
		}
	}
	if !hasLoopHead {
		t.Error("no block with 2+ predecessors; loop CFG missing")
	}
}

func TestDecompileErrors(t *testing.T) {
	if _, err := decompiler.Decompile(nil); !errors.Is(err, decompiler.ErrEmptyCode) {
		t.Errorf("empty code: %v", err)
	}
	// Jump to a computed (unresolvable) target.
	bad := evm.MustAssemble(`
		PUSH1 0x00
		CALLDATALOAD
		JUMP
	`)
	if _, err := decompiler.Decompile(bad); !errors.Is(err, decompiler.ErrUnresolvedJump) {
		t.Errorf("computed jump: %v", err)
	}
	// Stack underflow.
	if _, err := decompiler.Decompile([]byte{byte(evm.ADD)}); !errors.Is(err, decompiler.ErrStackUnderflow) {
		t.Errorf("underflow: %v", err)
	}
	// Jump to a non-JUMPDEST.
	notDest := evm.MustAssemble(`
		PUSH1 0x03
		JUMP
		STOP
	`)
	if _, err := decompiler.Decompile(notDest); !errors.Is(err, decompiler.ErrUnresolvedJump) {
		t.Errorf("bad dest: %v", err)
	}
}

func TestDecompileHandAssembledReturnJump(t *testing.T) {
	// A hand-rolled internal call: push return address, jump to sub, sub
	// jumps back through the stack — the value-set analysis must resolve it.
	code := evm.MustAssemble(`
		PUSH @after
		PUSH @sub
		JUMP
	after:
		STOP
	sub:
		JUMP
	`)
	prog, err := decompiler.Decompile(code)
	if err != nil {
		t.Fatalf("decompile: %v", err)
	}
	checkSSAInvariants(t, prog)
	if countOps(prog, tac.Stop) != 1 {
		t.Error("missing STOP in translated program")
	}
}

func TestDecompileDeterministic(t *testing.T) {
	out := minisol.MustCompile(minisol.SafeTokenSource)
	a, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("decompilation is not deterministic")
	}
}

func TestConstantsSurviveTranslation(t *testing.T) {
	// PUSH values must appear as Const statements with the right value.
	code := evm.MustAssemble(`
		PUSH2 0xbeef
		PUSH1 0x2a
		ADD
		POP
		STOP
	`)
	prog, err := decompiler.Decompile(code)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]bool{}
	prog.AllStmts(func(s *tac.Stmt) {
		if s.Op == tac.Const {
			vals[s.Val.String()] = true
		}
	})
	if !vals[u256.FromUint64(0xbeef).String()] || !vals[u256.FromUint64(0x2a).String()] {
		t.Errorf("constants lost: %v", vals)
	}
}

func BenchmarkDecompileToken(b *testing.B) {
	out := minisol.MustCompile(minisol.SafeTokenSource)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decompiler.Decompile(out.Runtime); err != nil {
			b.Fatal(err)
		}
	}
}
