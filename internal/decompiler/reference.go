package decompiler

import (
	"context"
	"fmt"
	"sort"

	"ethainter/internal/evm"
	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// This file retains the original map-based decompiler as the differential-
// testing oracle for the optimized path (decode.go / intern.go / fixpoint.go /
// translate.go), in the spirit of core.AnalyzeReference: slower, simpler, and
// bit-for-bit equivalent. The equivalence sweep and FuzzDecompileEquivalence
// hold the optimized path to this implementation's output — same blocks, same
// variable ids, same public functions.

// DecompileReference lifts runtime bytecode with the original (pre-interning,
// map-keyed, FIFO-worklist) decompiler. It exists purely as the differential
// oracle: production callers use DecompileContext, which must produce a
// bit-identical tac.Program whenever both paths succeed.
func DecompileReference(ctx context.Context, code []byte, limits Limits) (*tac.Program, error) {
	raw, err := splitBlocks(code)
	if err != nil {
		return nil, err
	}
	r := &resolver{
		code:   code,
		raw:    raw,
		dests:  evm.JumpDests(code),
		states: map[ctxKey][]absVal{},
		preds:  map[ctxKey]map[ctxKey]bool{},
		budget: newBudget(ctx, limits),
	}
	if err := r.fixpoint(); err != nil {
		return nil, err
	}
	prog, err := r.translate()
	if err != nil {
		return nil, err
	}
	if err := discoverFunctions(r.budget, prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// --- abstract values: bounded constant sets (reference representation) ---

type absVal struct {
	top    bool
	consts []u256.U256 // sorted, deduplicated, len <= maxConstSet
}

var topVal = absVal{top: true}

func constVal(c u256.U256) absVal { return absVal{consts: []u256.U256{c}} }

func joinVals(a, b absVal) absVal {
	if a.top || b.top {
		return topVal
	}
	merged := append(append([]u256.U256{}, a.consts...), b.consts...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Cmp(merged[j]) < 0 })
	out := merged[:0]
	for i, c := range merged {
		if i == 0 || c != merged[i-1] {
			out = append(out, c)
		}
	}
	if len(out) > maxConstSet {
		return topVal
	}
	return absVal{consts: out}
}

func (v absVal) equal(o absVal) bool {
	if v.top != o.top || len(v.consts) != len(o.consts) {
		return false
	}
	for i := range v.consts {
		if v.consts[i] != o.consts[i] {
			return false
		}
	}
	return true
}

// foldBinary folds constant sets through the few operators that commonly
// compute jump targets or dispatch values. Everything else yields ⊤.
func foldBinary(op evm.Op, a, b absVal) absVal {
	if a.top || b.top {
		return topVal
	}
	f, ok := foldFunc(op)
	if !ok {
		return topVal
	}
	if len(a.consts)*len(b.consts) > maxConstSet {
		return topVal
	}
	out := absVal{}
	for _, x := range a.consts {
		for _, y := range b.consts {
			out = joinVals(out, constVal(f(x, y)))
		}
	}
	return out
}

// foldFunc maps a foldable binary opcode to its concrete function; shared
// between the reference and optimized paths so their arithmetic can never
// diverge.
func foldFunc(op evm.Op) (func(x, y u256.U256) u256.U256, bool) {
	switch op {
	case evm.ADD:
		return u256.U256.Add, true
	case evm.SUB:
		return func(x, y u256.U256) u256.U256 { return x.Sub(y) }, true
	case evm.MUL:
		return u256.U256.Mul, true
	case evm.DIV:
		return u256.U256.Div, true
	case evm.AND:
		return u256.U256.And, true
	case evm.OR:
		return u256.U256.Or, true
	case evm.SHL:
		return func(x, y u256.U256) u256.U256 {
			if !x.IsUint64() || x.Uint64() > 255 {
				return u256.Zero
			}
			return y.Shl(uint(x.Uint64()))
		}, true
	case evm.SHR:
		return func(x, y u256.U256) u256.U256 {
			if !x.IsUint64() || x.Uint64() > 255 {
				return u256.Zero
			}
			return y.Shr(uint(x.Uint64()))
		}, true
	case evm.EXP:
		return u256.U256.Exp, true
	}
	return nil, false
}

// --- raw blocks (reference representation) ---

type rawBlock struct {
	pc     int
	instrs []evm.Instruction
	// fallsThrough is true when control can continue to the next leader.
	fallsThrough bool
	nextPC       int // leader after the block (valid when fallsThrough)
}

func splitBlocks(code []byte) (map[int]*rawBlock, error) {
	if len(code) == 0 {
		return nil, ErrEmptyCode
	}
	instrs := evm.Disassemble(code)
	leaders := map[int]bool{0: true}
	for i, ins := range instrs {
		if ins.Op == evm.JUMPDEST {
			leaders[ins.PC] = true
		}
		if ins.Op == evm.JUMPI || ins.Op.IsTerminator() || !ins.Op.Defined() {
			if i+1 < len(instrs) {
				leaders[instrs[i+1].PC] = true
			}
		}
	}
	blocks := map[int]*rawBlock{}
	var cur *rawBlock
	for i, ins := range instrs {
		if leaders[ins.PC] {
			cur = &rawBlock{pc: ins.PC}
			blocks[ins.PC] = cur
		}
		cur.instrs = append(cur.instrs, ins)
		last := i == len(instrs)-1
		endsBlock := ins.Op == evm.JUMPI || ins.Op.IsTerminator() || !ins.Op.Defined() ||
			last || leaders[instrs[min(i+1, len(instrs)-1)].PC]
		if endsBlock {
			cur.fallsThrough = !ins.Op.IsTerminator() && ins.Op.Defined() && !last
			if cur.fallsThrough {
				cur.nextPC = instrs[i+1].PC
			}
			cur = nil
		}
	}
	return blocks, nil
}

// --- phase 1: context-sensitive reachability and jump resolution ---

type ctxKey struct {
	pc    int
	depth int
}

type resolver struct {
	code     []byte
	raw      map[int]*rawBlock
	dests    map[int]bool
	states   map[ctxKey][]absVal
	preds    map[ctxKey]map[ctxKey]bool
	worklist []ctxKey
	budget   *budget
}

func (r *resolver) fixpoint() error {
	entry := ctxKey{pc: 0, depth: 0}
	r.states[entry] = nil
	r.worklist = append(r.worklist, entry)
	for len(r.worklist) > 0 {
		if err := r.budget.chargeStep(); err != nil {
			return err
		}
		key := r.worklist[len(r.worklist)-1]
		r.worklist = r.worklist[:len(r.worklist)-1]
		succs, exit, err := r.simulate(key, r.states[key])
		if err != nil {
			return err
		}
		for _, succ := range succs {
			if err := r.propagate(key, succ, exit); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *resolver) propagate(from, to ctxKey, exit []absVal) error {
	if r.preds[to] == nil {
		r.preds[to] = map[ctxKey]bool{}
	}
	r.preds[to][from] = true
	old, seen := r.states[to]
	if !seen {
		if len(r.states) >= r.budget.limits.MaxContexts {
			return &BudgetError{Resource: "contexts", Limit: r.budget.limits.MaxContexts}
		}
		cp := append([]absVal{}, exit...)
		r.states[to] = cp
		r.worklist = append(r.worklist, to)
		return nil
	}
	changed := false
	joined := make([]absVal, len(old))
	for i := range old {
		joined[i] = joinVals(old[i], exit[i])
		if !joined[i].equal(old[i]) {
			changed = true
		}
	}
	if changed {
		r.states[to] = joined
		r.worklist = append(r.worklist, to)
	}
	return nil
}

// simulate runs the abstract stack machine over the block, returning the
// successor contexts and the exit stack.
func (r *resolver) simulate(key ctxKey, entry []absVal) (succs []ctxKey, exit []absVal, err error) {
	blk := r.raw[key.pc]
	if blk == nil {
		return nil, nil, fmt.Errorf("decompiler: jump into the middle of an instruction at %d", key.pc)
	}
	stack := append([]absVal{}, entry...)
	pop := func() (absVal, error) {
		if len(stack) == 0 {
			return topVal, fmt.Errorf("%w: at pc %d", ErrStackUnderflow, key.pc)
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	for _, ins := range blk.instrs {
		op := ins.Op
		switch {
		case !op.Defined():
			return nil, stack, nil // behaves as INVALID: no successors
		case op.IsPush():
			stack = append(stack, constVal(ins.Arg))
		case op.IsDup():
			n := int(op-evm.DUP1) + 1
			if len(stack) < n {
				return nil, nil, fmt.Errorf("%w: DUP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			stack = append(stack, stack[len(stack)-n])
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if len(stack) < n+1 {
				return nil, nil, fmt.Errorf("%w: SWAP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			top := len(stack) - 1
			stack[top], stack[top-n] = stack[top-n], stack[top]
		case op == evm.JUMP:
			target, err := pop()
			if err != nil {
				return nil, nil, err
			}
			tgts, err := r.jumpTargets(target, ins.PC)
			if err != nil {
				return nil, nil, err
			}
			for _, t := range tgts {
				succs = append(succs, ctxKey{pc: t, depth: len(stack)})
			}
			return succs, stack, nil
		case op == evm.JUMPI:
			target, err := pop()
			if err != nil {
				return nil, nil, err
			}
			if _, err := pop(); err != nil { // condition
				return nil, nil, err
			}
			tgts, err := r.jumpTargets(target, ins.PC)
			if err != nil {
				return nil, nil, err
			}
			for _, t := range tgts {
				succs = append(succs, ctxKey{pc: t, depth: len(stack)})
			}
			if blk.fallsThrough {
				succs = append(succs, ctxKey{pc: blk.nextPC, depth: len(stack)})
			}
			return succs, stack, nil
		case op.IsTerminator():
			// STOP, RETURN, REVERT, INVALID, SELFDESTRUCT: consume operands,
			// no successors.
			for i := 0; i < op.Pops(); i++ {
				if _, err := pop(); err != nil {
					return nil, nil, err
				}
			}
			return nil, stack, nil
		case op == evm.JUMPDEST:
			// no effect
		default:
			pops := op.Pops()
			args := make([]absVal, pops)
			for i := 0; i < pops; i++ {
				a, err := pop()
				if err != nil {
					return nil, nil, err
				}
				args[i] = a
			}
			if op.Pushes() > 0 {
				if pops == 2 {
					stack = append(stack, foldBinary(op, args[0], args[1]))
				} else {
					stack = append(stack, topVal)
				}
			}
		}
	}
	if blk.fallsThrough {
		succs = append(succs, ctxKey{pc: blk.nextPC, depth: len(stack)})
	}
	return succs, stack, nil
}

func (r *resolver) jumpTargets(v absVal, pc int) ([]int, error) {
	if v.top {
		return nil, fmt.Errorf("%w: at pc %d", ErrUnresolvedJump, pc)
	}
	var out []int
	for _, c := range v.consts {
		if !c.IsUint64() || !r.dests[int(c.Uint64())] {
			return nil, fmt.Errorf("%w: pc %d targets invalid destination %s", ErrUnresolvedJump, pc, c)
		}
		out = append(out, int(c.Uint64()))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: pc %d has no feasible target", ErrUnresolvedJump, pc)
	}
	return out, nil
}

// --- phase 2: translation to TAC ---

type translator struct {
	r       *resolver
	prog    *tac.Program
	blocks  map[ctxKey]*tac.Block
	exits   map[ctxKey][]tac.VarID // exit variable stacks
	nextVar tac.VarID
}

func (r *resolver) translate() (*tac.Program, error) {
	t := &translator{
		r:      r,
		prog:   &tac.Program{},
		blocks: map[ctxKey]*tac.Block{},
		exits:  map[ctxKey][]tac.VarID{},
	}
	// Deterministic order: by pc, then depth.
	keys := make([]ctxKey, 0, len(r.states))
	for k := range r.states {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pc != keys[j].pc {
			return keys[i].pc < keys[j].pc
		}
		return keys[i].depth < keys[j].depth
	})
	for i, k := range keys {
		b := &tac.Block{ID: i, PC: k.pc, Depth: k.depth}
		// One phi per entry stack slot; slot 0 is the bottom. Phis count
		// against the statement budget: deep-stack hostile contexts can
		// demand orders of magnitude more phis than real statements.
		if err := r.budget.chargeStmts(k.depth); err != nil {
			return nil, err
		}
		for s := 0; s < k.depth; s++ {
			phi := &tac.Stmt{Op: tac.Phi, Def: t.fresh(), PC: k.pc, Block: b}
			b.Phis = append(b.Phis, phi)
		}
		t.blocks[k] = b
		t.prog.Blocks = append(t.prog.Blocks, b)
	}
	t.prog.Entry = t.blocks[ctxKey{pc: 0, depth: 0}]
	// Emit statements per block.
	type edge struct {
		from, to ctxKey
	}
	var edges []edge
	for _, k := range keys {
		succs, err := t.emitBlock(k)
		if err != nil {
			return nil, err
		}
		if err := r.budget.chargeStmts(len(t.blocks[k].Stmts)); err != nil {
			return nil, err
		}
		for _, s := range succs {
			edges = append(edges, edge{from: k, to: s})
		}
	}
	// Wire edges and phi arguments (dedup parallel edges).
	seen := map[edge]bool{}
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		from, to := t.blocks[e.from], t.blocks[e.to]
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
		exit := t.exits[e.from]
		for s, phi := range to.Phis {
			phi.Args = append(phi.Args, exit[s])
		}
	}
	t.prog.NumVars = int(t.nextVar)
	t.prog.BuildIndex()
	return t.prog, nil
}

func (t *translator) fresh() tac.VarID {
	v := t.nextVar
	t.nextVar++
	return v
}

// emitBlock symbolically executes the block's instructions over a stack of
// SSA variables, appending statements, and returns successor contexts. The
// final variable stack is recorded for phi wiring.
func (t *translator) emitBlock(key ctxKey) ([]ctxKey, error) {
	blk := t.r.raw[key.pc]
	b := t.blocks[key]
	stack := make([]tac.VarID, key.depth)
	for i, phi := range b.Phis {
		stack[i] = phi.Def
	}
	// Track abstract values alongside for jump resolution, mirroring phase 1
	// (using the joined entry state so targets match the recorded edges).
	abs := append([]absVal{}, t.r.states[key]...)

	popVar := func() (tac.VarID, absVal, error) {
		if len(stack) == 0 {
			return tac.NoVar, topVal, fmt.Errorf("%w: at pc %d", ErrStackUnderflow, key.pc)
		}
		v, a := stack[len(stack)-1], abs[len(abs)-1]
		stack = stack[:len(stack)-1]
		abs = abs[:len(abs)-1]
		return v, a, nil
	}
	emit := func(op tac.OpKind, def tac.VarID, pc int, args ...tac.VarID) *tac.Stmt {
		s := &tac.Stmt{Op: op, Def: def, Args: args, PC: pc, Block: b, Idx: len(b.Stmts)}
		b.Stmts = append(b.Stmts, s)
		return s
	}
	finish := func(succs []ctxKey) []ctxKey {
		t.exits[key] = append([]tac.VarID{}, stack...)
		return succs
	}

	for _, ins := range blk.instrs {
		op := ins.Op
		switch {
		case !op.Defined():
			emit(tac.Invalid, tac.NoVar, ins.PC)
			return finish(nil), nil
		case op.IsPush():
			def := t.fresh()
			s := emit(tac.Const, def, ins.PC)
			s.Val = ins.Arg
			stack = append(stack, def)
			abs = append(abs, constVal(ins.Arg))
		case op.IsDup():
			n := int(op-evm.DUP1) + 1
			if len(stack) < n {
				return nil, fmt.Errorf("%w: DUP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			stack = append(stack, stack[len(stack)-n])
			abs = append(abs, abs[len(abs)-n])
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if len(stack) < n+1 {
				return nil, fmt.Errorf("%w: SWAP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			top := len(stack) - 1
			stack[top], stack[top-n] = stack[top-n], stack[top]
			abs[top], abs[top-n] = abs[top-n], abs[top]
		case op == evm.POP:
			if _, _, err := popVar(); err != nil {
				return nil, err
			}
		case op == evm.JUMPDEST:
			// no statement
		case op == evm.JUMP:
			tv, ta, err := popVar()
			if err != nil {
				return nil, err
			}
			emit(tac.Jump, tac.NoVar, ins.PC, tv)
			tgts, err := t.r.jumpTargets(ta, ins.PC)
			if err != nil {
				return nil, err
			}
			var succs []ctxKey
			for _, tg := range tgts {
				succs = append(succs, ctxKey{pc: tg, depth: len(stack)})
			}
			return finish(succs), nil
		case op == evm.JUMPI:
			tv, ta, err := popVar()
			if err != nil {
				return nil, err
			}
			cv, _, err := popVar()
			if err != nil {
				return nil, err
			}
			emit(tac.Jumpi, tac.NoVar, ins.PC, tv, cv)
			tgts, err := t.r.jumpTargets(ta, ins.PC)
			if err != nil {
				return nil, err
			}
			var succs []ctxKey
			for _, tg := range tgts {
				succs = append(succs, ctxKey{pc: tg, depth: len(stack)})
			}
			if blk.fallsThrough {
				succs = append(succs, ctxKey{pc: blk.nextPC, depth: len(stack)})
			}
			return finish(succs), nil
		default:
			kind, ok := opKindOf(op)
			if !ok {
				return nil, fmt.Errorf("decompiler: unmapped opcode %s at pc %d", op, ins.PC)
			}
			pops := op.Pops()
			args := make([]tac.VarID, pops)
			absArgs := make([]absVal, pops)
			for i := 0; i < pops; i++ {
				v, a, err := popVar()
				if err != nil {
					return nil, err
				}
				args[i] = v
				absArgs[i] = a
			}
			var def tac.VarID = tac.NoVar
			if op.Pushes() > 0 {
				def = t.fresh()
			}
			emit(kind, def, ins.PC, args...)
			if def != tac.NoVar {
				stack = append(stack, def)
				if pops == 2 {
					abs = append(abs, foldBinary(op, absArgs[0], absArgs[1]))
				} else {
					abs = append(abs, topVal)
				}
			}
			if kind.IsTerminator() {
				return finish(nil), nil
			}
		}
	}
	if blk.fallsThrough {
		return finish([]ctxKey{{pc: blk.nextPC, depth: len(stack)}}), nil
	}
	return finish(nil), nil
}
