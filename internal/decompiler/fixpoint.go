package decompiler

import (
	"fmt"
	"sync"

	"ethainter/internal/evm"
	"ethainter/internal/tac"
)

// This file is the value-set fixpoint of the optimized decompiler. Contexts
// are dense int32 ids (keys/states are slices, with one map from ctxKey to
// id), abstract states are slices of interned *aval so joins detect change by
// pointer comparison, and the worklist is a binary min-heap ordered by the
// block's reverse-post-order rank (then entry depth, then id) with membership
// bits so a context is never queued twice. The computed least fixpoint — and
// therefore the translated program — is identical to the reference path's
// FIFO fixpoint: joins are monotone, so the final states and the discovered
// context set do not depend on visit order; ordering only changes how many
// re-simulations it takes to get there.

type fastResolver struct {
	ct     *codeTable
	in     *interner
	budget *budget

	keys   []ctxKey  // ctx id -> (pc, depth)
	states [][]*aval // ctx id -> entry state, len == depth
	rpoOf  []int32   // ctx id -> block rpo rank (heap primary key)
	ctxOf  map[ctxKey]int32

	heap   []int32 // min-heap of ctx ids
	inHeap []bool

	sc *scratch
}

// scratch is the pooled per-run working set: the interner, the decoded code
// table, the resolver's flat context arrays, and every reusable buffer the
// fixpoint and translator thrash. Nothing in it outlives a run (the returned
// program references only translator arenas), so a corpus sweep amortizes
// nearly all decompilation allocations after warm-up.
type scratch struct {
	in *interner
	ct codeTable

	// decode buffers
	leader []bool
	post   []int32
	dfs    []rpoFrame

	// resolver context arrays
	keys    []ctxKey
	states  [][]*aval
	rpoOf   []int32
	heap    []int32
	inHeap  []bool
	avalBuf []*aval // slab backing the per-context entry states
	ctxOf   map[ctxKey]int32

	// simulation / translation buffers
	stack    []*aval
	succs    []ctxKey
	targets  []int
	ord      []int32
	sortKeys []uint64
	byCtx    []*tac.Block
	exits    [][]tac.VarID
	edges    []ctxEdge
	edgeSeen map[ctxEdge]bool
}

var scratchPool = sync.Pool{
	New: func() any { return &scratch{} },
}

// acquire readies the scratch for a run. The interner is reused across runs
// (allocated once per scratch); release leaves it reset, so acquire only has
// to initialize a brand-new one — resetting in both places would memclr the
// hash tables twice per run.
func (sc *scratch) acquire() {
	if sc.in == nil {
		sc.in = new(interner)
		sc.in.reset()
	}
}

// release drops every per-run reference that must not pin memory while the
// scratch sits in the pool: the state/stack buffers hold *aval pointers, and
// the context map holds a run's worth of keys. The interner's reset rewinds
// its (capped) slabs and memclrs its tables so pooled scratches do not pin a
// dead run's avals and the next acquire finds it ready.
func (sc *scratch) release() {
	sc.in.reset()
	clear(sc.states)
	// allocAvals only ever writes [0:len), and Put-time slots past len are nil
	// by induction, so a len-bounded clear is enough (cap can be much larger).
	clear(sc.avalBuf)
	sc.avalBuf = sc.avalBuf[:0]
	// pushConst may point into slab chunks that reset just dropped; clear it so
	// a pooled scratch cannot pin a hostile run's memory.
	clear(sc.ct.pushConst)
	clear(sc.stack[:cap(sc.stack)])
	sc.stack = sc.stack[:0]
	clear(sc.byCtx[:cap(sc.byCtx)])
	sc.byCtx = sc.byCtx[:0]
	clear(sc.exits[:cap(sc.exits)])
	sc.exits = sc.exits[:0]
	const maxRetainCtx = 1 << 15
	if len(sc.ctxOf) > maxRetainCtx {
		sc.ctxOf = nil
	} else {
		clear(sc.ctxOf)
	}
}

// allocAvals hands out a zeroed []*aval of length n from the state slab.
func (sc *scratch) allocAvals(n int) []*aval {
	if len(sc.avalBuf)+n > cap(sc.avalBuf) {
		sc.avalBuf = make([]*aval, 0, max(4096, n))
	}
	off := len(sc.avalBuf)
	sc.avalBuf = sc.avalBuf[: off+n : cap(sc.avalBuf)]
	return sc.avalBuf[off : off+n : off+n]
}

func newFastResolver(ct *codeTable, sc *scratch, b *budget) *fastResolver {
	if sc.ctxOf == nil {
		sc.ctxOf = make(map[ctxKey]int32, 64)
	}
	return &fastResolver{
		ct:     ct,
		in:     sc.in,
		budget: b,
		keys:   sc.keys[:0],
		states: sc.states[:0],
		rpoOf:  sc.rpoOf[:0],
		heap:   sc.heap[:0],
		inHeap: sc.inHeap[:0],
		ctxOf:  sc.ctxOf,
		sc:     sc,
	}
}

// persist hands the (possibly grown) context arrays back to the scratch so
// the next run reuses their capacity.
func (r *fastResolver) persist() {
	r.sc.keys = r.keys[:0]
	r.sc.states = r.states
	r.sc.rpoOf = r.rpoOf[:0]
	r.sc.heap = r.heap[:0]
	r.sc.inHeap = r.inHeap[:0]
}

// --- worklist heap: min by (block rpo, depth, id) ---

func (r *fastResolver) less(a, b int32) bool {
	if r.rpoOf[a] != r.rpoOf[b] {
		return r.rpoOf[a] < r.rpoOf[b]
	}
	ka, kb := r.keys[a], r.keys[b]
	if ka.depth != kb.depth {
		return ka.depth < kb.depth
	}
	return a < b
}

func (r *fastResolver) push(id int32) {
	r.inHeap[id] = true
	r.heap = append(r.heap, id)
	i := len(r.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !r.less(r.heap[i], r.heap[p]) {
			break
		}
		r.heap[i], r.heap[p] = r.heap[p], r.heap[i]
		i = p
	}
}

func (r *fastResolver) pop() int32 {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		small := i
		if l < last && r.less(r.heap[l], r.heap[small]) {
			small = l
		}
		if rt < last && r.less(r.heap[rt], r.heap[small]) {
			small = rt
		}
		if small == i {
			break
		}
		r.heap[i], r.heap[small] = r.heap[small], r.heap[i]
		i = small
	}
	r.inHeap[top] = false
	return top
}

// newCtx registers a context and returns its id, enforcing MaxContexts with
// the same threshold check as the reference path.
func (r *fastResolver) newCtx(k ctxKey, state []*aval) (int32, error) {
	if len(r.keys) >= r.budget.limits.MaxContexts {
		return -1, &BudgetError{Resource: "contexts", Limit: r.budget.limits.MaxContexts}
	}
	id := int32(len(r.keys))
	cp := r.sc.allocAvals(len(state))
	copy(cp, state)
	r.keys = append(r.keys, k)
	r.states = append(r.states, cp)
	rpo := int32(0)
	if b := r.ct.block(k.pc); b != nil {
		rpo = b.rpo
	}
	r.rpoOf = append(r.rpoOf, rpo)
	r.inHeap = append(r.inHeap, false)
	r.ctxOf[k] = id
	return id, nil
}

func (r *fastResolver) fixpoint() error {
	id, err := r.newCtx(ctxKey{pc: 0, depth: 0}, nil)
	if err != nil {
		return err
	}
	r.push(id)
	for len(r.heap) > 0 {
		if err := r.budget.chargeStep(); err != nil {
			return err
		}
		id := r.pop()
		succs, exit, err := r.simulate(r.keys[id], r.states[id])
		if err != nil {
			return err
		}
		for _, succ := range succs {
			if err := r.propagate(succ, exit); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *fastResolver) propagate(to ctxKey, exit []*aval) error {
	id, seen := r.ctxOf[to]
	if !seen {
		id, err := r.newCtx(to, exit)
		if err != nil {
			return err
		}
		r.push(id)
		return nil
	}
	old := r.states[id]
	changed := false
	for i := range old {
		if nv := r.in.join(old[i], exit[i]); nv != old[i] {
			old[i] = nv
			changed = true
		}
	}
	if changed && !r.inHeap[id] {
		r.push(id)
	}
	return nil
}

// simulate runs the abstract stack machine over the decoded block, returning
// successor contexts and the exit stack (both backed by reusable scratch;
// callers must not retain them across simulations). The instruction handling,
// error conditions, and error strings mirror the reference simulate exactly.
func (r *fastResolver) simulate(key ctxKey, entry []*aval) (succs []ctxKey, exit []*aval, err error) {
	blk := r.ct.block(key.pc)
	if blk == nil {
		return nil, nil, fmt.Errorf("decompiler: jump into the middle of an instruction at %d", key.pc)
	}
	stack := append(r.sc.stack[:0], entry...)
	defer func() { r.sc.stack = stack[:0] }()
	succs = r.sc.succs[:0]
	defer func() { r.sc.succs = succs[:0] }()

	pop := func() (*aval, error) {
		if len(stack) == 0 {
			return avalTop, fmt.Errorf("%w: at pc %d", ErrStackUnderflow, key.pc)
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	instrs := r.ct.instrs[blk.first : blk.first+blk.count]
	for ii := range instrs {
		ins := &instrs[ii]
		op := ins.Op
		switch {
		case !op.Defined():
			return nil, stack, nil // behaves as INVALID: no successors
		case op.IsPush():
			stack = append(stack, r.ct.pushConst[blk.first+int32(ii)])
		case op.IsDup():
			n := int(op-evm.DUP1) + 1
			if len(stack) < n {
				return nil, nil, fmt.Errorf("%w: DUP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			stack = append(stack, stack[len(stack)-n])
		case op.IsSwap():
			n := int(op-evm.SWAP1) + 1
			if len(stack) < n+1 {
				return nil, nil, fmt.Errorf("%w: SWAP%d at pc %d", ErrStackUnderflow, n, ins.PC)
			}
			top := len(stack) - 1
			stack[top], stack[top-n] = stack[top-n], stack[top]
		case op == evm.JUMP || op == evm.JUMPI:
			target, err := pop()
			if err != nil {
				return nil, nil, err
			}
			if op == evm.JUMPI {
				if _, err := pop(); err != nil { // condition
					return nil, nil, err
				}
			}
			tgts, err := r.jumpTargets(target, ins.PC)
			if err != nil {
				return nil, nil, err
			}
			for _, t := range tgts {
				succs = append(succs, ctxKey{pc: t, depth: len(stack)})
			}
			if op == evm.JUMPI && blk.fallsThrough {
				succs = append(succs, ctxKey{pc: blk.nextPC, depth: len(stack)})
			}
			return succs, stack, nil
		case op.IsTerminator():
			// STOP, RETURN, REVERT, INVALID, SELFDESTRUCT: consume operands,
			// no successors.
			for i := 0; i < op.Pops(); i++ {
				if _, err := pop(); err != nil {
					return nil, nil, err
				}
			}
			return nil, stack, nil
		case op == evm.JUMPDEST:
			// no effect
		default:
			pops := op.Pops()
			var a0, a1 *aval
			for i := 0; i < pops; i++ {
				a, err := pop()
				if err != nil {
					return nil, nil, err
				}
				if i == 0 {
					a0 = a
				} else if i == 1 {
					a1 = a
				}
			}
			if op.Pushes() > 0 {
				if pops == 2 {
					stack = append(stack, r.in.fold(op, a0, a1))
				} else {
					stack = append(stack, avalTop)
				}
			}
		}
	}
	if blk.fallsThrough {
		succs = append(succs, ctxKey{pc: blk.nextPC, depth: len(stack)})
	}
	return succs, stack, nil
}

// jumpTargets resolves an interned jump-target value against the JUMPDEST
// table, with the reference path's exact error strings. The returned slice
// is scratch; callers consume it before the next call.
func (r *fastResolver) jumpTargets(v *aval, pc int) ([]int, error) {
	if v.top {
		return nil, fmt.Errorf("%w: at pc %d", ErrUnresolvedJump, pc)
	}
	out := r.sc.targets[:0]
	defer func() { r.sc.targets = out[:0] }()
	for _, c := range v.consts {
		if !c.IsUint64() || c.Uint64() >= uint64(len(r.ct.isDest)) || !r.ct.isDest[c.Uint64()] {
			return nil, fmt.Errorf("%w: pc %d targets invalid destination %s", ErrUnresolvedJump, pc, c)
		}
		out = append(out, int(c.Uint64()))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: pc %d has no feasible target", ErrUnresolvedJump, pc)
	}
	return out, nil
}
