package decompiler

import (
	"ethainter/internal/evm"
)

// This file is the decode phase of the optimized decompiler: the bytecode is
// disassembled exactly once into a flat instruction slice, split into basic
// blocks held in a dense index-addressed table (a slice keyed by block index
// rather than the reference path's map[int]*rawBlock), and ranked in an
// approximate reverse post order that the priority worklist in fixpoint.go
// uses to visit predecessors before successors. All buffers live in the
// pooled scratch — a corpus sweep re-decodes every contract with near-zero
// steady-state allocation.

// denseBlock is one basic block of the decoded table. Its instructions are
// the half-open range [first, first+count) of codeTable.instrs, so simulation
// replays decoded ops with no per-context slicing or map lookups.
type denseBlock struct {
	pc           int   // byte offset of the leader
	first, count int32 // instruction range in codeTable.instrs
	fallsThrough bool  // control can continue to the next leader
	nextPC       int   // leader after the block (valid when fallsThrough)
	rpo          int32 // approximate reverse-post-order rank (see computeRPO)
}

// codeTable is the per-bytecode decoded program: every datum the fixpoint
// and translator need, computed once up front and addressed by index.
type codeTable struct {
	instrs  []evm.Instruction
	blocks  []denseBlock // ordered by pc
	idxByPC []int32      // code offset -> block index, -1 if not a leader
	isDest  []bool       // code offset -> valid JUMPDEST

	// pushConst[i] is the interned singleton for instrs[i].Arg when instrs[i]
	// is a PUSH, nil otherwise. Interning each PUSH once at decode time turns
	// the hottest simulate/translate case into a plain load — the same PUSH is
	// replayed once per visiting context, and re-hashing its 256-bit argument
	// every replay was a measurable slice of the fixpoint.
	pushConst []*aval
}

// block returns the block led by pc, or nil — the dense equivalent of the
// reference path's raw-map lookup.
func (ct *codeTable) block(pc int) *denseBlock {
	if pc < 0 || pc >= len(ct.idxByPC) || ct.idxByPC[pc] < 0 {
		return nil
	}
	return &ct.blocks[ct.idxByPC[pc]]
}

// resizeBools returns b resized to n with all elements false.
func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// decodeCode disassembles code and builds the dense block table in sc. The
// leader and block-end rules replicate splitBlocks exactly: leaders are
// offset 0, JUMPDESTs, and the instruction after a JUMPI, terminator, or
// undefined opcode; a block falls through unless it ends in a terminator, an
// undefined opcode, or the end of the code. (The fallthrough flag is set even
// for JUMP-ending blocks — simulation returns at the JUMP before consulting
// it, exactly as in the reference path.)
func decodeCode(code []byte, sc *scratch) (*codeTable, error) {
	if len(code) == 0 {
		return nil, ErrEmptyCode
	}
	ct := &sc.ct
	ct.instrs = evm.DisassembleInto(ct.instrs, code)
	instrs := ct.instrs
	sc.leader = resizeBools(sc.leader, len(code))
	ct.isDest = resizeBools(ct.isDest, len(code))
	leader, isDest := sc.leader, ct.isDest
	if cap(ct.pushConst) < len(instrs) {
		ct.pushConst = make([]*aval, len(instrs))
	} else {
		ct.pushConst = ct.pushConst[:len(instrs)]
	}
	leader[0] = true
	nBlocks := 1
	for i := range instrs {
		ins := &instrs[i]
		// Every slot is written (nil for non-PUSH), so stale pointers from the
		// previous run never survive a decode.
		if ins.Op.IsPush() {
			ct.pushConst[i] = sc.in.constOf(ins.Arg)
		} else {
			ct.pushConst[i] = nil
		}
		if ins.Op == evm.JUMPDEST {
			isDest[ins.PC] = true
			if !leader[ins.PC] {
				leader[ins.PC] = true
				nBlocks++
			}
		}
		if ins.Op == evm.JUMPI || ins.Op.IsTerminator() || !ins.Op.Defined() {
			if i+1 < len(instrs) && !leader[instrs[i+1].PC] {
				leader[instrs[i+1].PC] = true
				nBlocks++
			}
		}
	}
	if cap(ct.blocks) < nBlocks {
		ct.blocks = make([]denseBlock, 0, nBlocks)
	} else {
		ct.blocks = ct.blocks[:0]
	}
	if cap(ct.idxByPC) < len(code) {
		ct.idxByPC = make([]int32, len(code))
	} else {
		ct.idxByPC = ct.idxByPC[:len(code)]
	}
	for i := range ct.idxByPC {
		ct.idxByPC[i] = -1
	}
	cur := int32(-1)
	for i := range instrs {
		ins := &instrs[i]
		if leader[ins.PC] {
			ct.blocks = append(ct.blocks, denseBlock{pc: ins.PC, first: int32(i)})
			cur = int32(len(ct.blocks) - 1)
			ct.idxByPC[ins.PC] = cur
		}
		b := &ct.blocks[cur]
		b.count++
		last := i == len(instrs)-1
		if !last && !leader[instrs[i+1].PC] {
			continue
		}
		b.fallsThrough = !ins.Op.IsTerminator() && ins.Op.Defined() && !last
		if b.fallsThrough {
			b.nextPC = instrs[i+1].PC
		}
	}
	computeRPO(ct, sc)
	return ct, nil
}

// staticSuccs returns up to two statically evident successors of block bi:
// the fallthrough block and, for a trailing `PUSH const; JUMP/JUMPI`, the
// pushed destination. This is only an ordering heuristic for the priority
// worklist — the fixpoint discovers the true context-sensitive edges — so it
// can safely miss computed jumps.
func staticSuccs(ct *codeTable, bi int32) (s0, s1 int32) {
	s0, s1 = -1, -1
	b := &ct.blocks[bi]
	last := &ct.instrs[b.first+b.count-1]
	if (last.Op == evm.JUMP || last.Op == evm.JUMPI) && b.count >= 2 {
		prev := &ct.instrs[b.first+b.count-2]
		if prev.Op.IsPush() && prev.Arg.IsUint64() {
			if t := prev.Arg.Uint64(); t < uint64(len(ct.idxByPC)) {
				s0 = ct.idxByPC[t]
			}
		}
	}
	if b.fallsThrough && last.Op != evm.JUMP {
		if s0 < 0 {
			s0 = ct.idxByPC[b.nextPC]
		} else {
			s1 = ct.idxByPC[b.nextPC]
		}
	}
	return s0, s1
}

// rpoFrame is one iterative-DFS frame of computeRPO.
type rpoFrame struct {
	b      int32
	s0, s1 int32
	stage  int8
}

// computeRPO ranks blocks in reverse post order of the static successor
// graph rooted at block 0 (iterative DFS); blocks the static approximation
// does not reach are ranked after, in table order. The worklist pops lowest
// rank first, so loop headers and early dispatch blocks stabilize before the
// code they dominate, cutting redundant re-simulation.
func computeRPO(ct *codeTable, sc *scratch) {
	n := len(ct.blocks)
	// Reuse the leader buffer (its job is done) as the visited set.
	visited := resizeBools(sc.leader, n)
	sc.leader = visited
	post := sc.post[:0]
	stack := sc.dfs[:0]
	defer func() {
		sc.post = post[:0]
		sc.dfs = stack[:0]
	}()
	s0, s1 := staticSuccs(ct, 0)
	visited[0] = true
	stack = append(stack, rpoFrame{b: 0, s0: s0, s1: s1})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		var next int32 = -1
		for next < 0 && f.stage < 2 {
			if f.stage == 0 {
				next = f.s0
			} else {
				next = f.s1
			}
			f.stage++
		}
		if next >= 0 && !visited[next] {
			visited[next] = true
			c0, c1 := staticSuccs(ct, next)
			stack = append(stack, rpoFrame{b: next, s0: c0, s1: c1})
			continue
		}
		if f.stage >= 2 {
			post = append(post, f.b)
			stack = stack[:len(stack)-1]
		}
	}
	rank := int32(0)
	for i := len(post) - 1; i >= 0; i-- {
		ct.blocks[post[i]].rpo = rank
		rank++
	}
	for i := range ct.blocks {
		if !visited[i] {
			ct.blocks[i].rpo = rank
			rank++
		}
	}
}
