package decompiler_test

import (
	"context"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ethainter/internal/decompiler"
	"ethainter/internal/minisol"
)

// hostileCorpus loads every committed adversarial bytecode from
// testdata/hostile, keyed by file name.
func hostileCorpus(t *testing.T) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "hostile", "*.hex"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("hostile corpus missing: paths=%v err=%v", paths, err)
	}
	out := map[string][]byte{}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		code, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		out[filepath.Base(p)] = code
	}
	return out
}

func TestLimitsNormalized(t *testing.T) {
	if got := (decompiler.Limits{}).Normalized(); got != decompiler.DefaultLimits() {
		t.Errorf("zero value normalizes to %+v, want defaults %+v", got, decompiler.DefaultLimits())
	}
	explicit := decompiler.Limits{MaxContexts: 7, MaxWorklistSteps: 8, MaxStatements: 9}
	if got := explicit.Normalized(); got != explicit {
		t.Errorf("explicit limits changed by Normalized: %+v", got)
	}
	partial := decompiler.Limits{MaxContexts: 7, MaxWorklistSteps: -1}
	want := decompiler.Limits{MaxContexts: 7, MaxWorklistSteps: decompiler.DefaultMaxWorklistSteps, MaxStatements: decompiler.DefaultMaxStatements}
	if got := partial.Normalized(); got != want {
		t.Errorf("partial limits: got %+v, want %+v", got, want)
	}
	// The default contexts budget is the pre-budget hard-coded constant; the
	// differential guarantee (default budgets == seed behavior) depends on it.
	if decompiler.DefaultMaxContexts != 6000 {
		t.Errorf("DefaultMaxContexts = %d, want the historical 6000", decompiler.DefaultMaxContexts)
	}
}

func TestBudgetErrorClassification(t *testing.T) {
	ctxErr := &decompiler.BudgetError{Resource: "contexts", Limit: 6000}
	if !errors.Is(ctxErr, decompiler.ErrBudgetExhausted) {
		t.Error("contexts BudgetError does not match ErrBudgetExhausted")
	}
	if !errors.Is(ctxErr, decompiler.ErrContextExplosion) {
		t.Error("contexts BudgetError lost compatibility with ErrContextExplosion")
	}
	stepErr := &decompiler.BudgetError{Resource: "worklist steps", Limit: 10}
	if !errors.Is(stepErr, decompiler.ErrBudgetExhausted) {
		t.Error("steps BudgetError does not match ErrBudgetExhausted")
	}
	if errors.Is(stepErr, decompiler.ErrContextExplosion) {
		t.Error("steps BudgetError must not masquerade as a context explosion")
	}
	if !strings.Contains(stepErr.Error(), "worklist steps budget exhausted (limit 10)") {
		t.Errorf("unexpected message: %q", stepErr.Error())
	}
}

// TestTinyBudgets drives a legitimate contract into each budget separately and
// checks the error names the exhausted resource.
func TestTinyBudgets(t *testing.T) {
	out, err := minisol.CompileSource(minisol.VictimSource)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		limits   decompiler.Limits
		resource string
	}{
		{"contexts", decompiler.Limits{MaxContexts: 1}, "contexts"},
		{"steps", decompiler.Limits{MaxWorklistSteps: 1}, "worklist steps"},
		{"statements", decompiler.Limits{MaxStatements: 1}, "statements"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := decompiler.DecompileContext(context.Background(), out.Runtime, c.limits)
			if prog != nil || !errors.Is(err, decompiler.ErrBudgetExhausted) {
				t.Fatalf("got (%v, %v), want budget exhaustion", prog, err)
			}
			var be *decompiler.BudgetError
			if !errors.As(err, &be) || be.Resource != c.resource {
				t.Errorf("error %v does not name resource %q", err, c.resource)
			}
		})
	}
}

// TestDefaultBudgetsMatchDecompile pins the differential guarantee: with
// default budgets, DecompileContext produces the same program as the
// budget-free entry point.
func TestDefaultBudgetsMatchDecompile(t *testing.T) {
	out, err := minisol.CompileSource(minisol.VictimSource)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := decompiler.Decompile(out.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := decompiler.DecompileContext(context.Background(), out.Runtime, decompiler.DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != budgeted.String() {
		t.Error("default budgets changed the decompiled program")
	}
}

// TestHostileCorpusStaysHostile pins the adversarial corpus: every committed
// bytecode must exhaust a work budget under default limits — deterministically
// and with an identical error across runs, because budget errors are
// negatively cached. If one of these starts decompiling cleanly, the
// decompiler got more robust; regenerate the corpus rather than weakening the
// test.
//
// Regeneration probe: take corpus.Generate(corpus.DefaultProfile(400,
// 20200615)), mutate 1–8 random bytes of each runtime over a few thousand
// seeds, decompile each mutant with default budgets under a multi-second
// deadline, and keep the slowest inputs that end in ErrBudgetExhausted.
func TestHostileCorpusStaysHostile(t *testing.T) {
	// The worst case burns ~2.7s before exhausting its budget; keep the
	// cheap determinism re-run to the faster files.
	rerun := map[string]bool{"ctx-explosion-356b.hex": true, "ctx-explosion-312b-2.hex": true}
	for name, code := range hostileCorpus(t) {
		code := code
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog, err := decompiler.DecompileContext(context.Background(), code, decompiler.Limits{})
			if prog != nil || !errors.Is(err, decompiler.ErrBudgetExhausted) {
				t.Fatalf("no longer hostile: got (%v, %v), want budget exhaustion", prog, err)
			}
			if !rerun[name] {
				return
			}
			_, err2 := decompiler.DecompileContext(context.Background(), code, decompiler.Limits{})
			if err2 == nil || err.Error() != err2.Error() {
				t.Errorf("budget error not deterministic: %q vs %q", err, err2)
			}
		})
	}
}

// TestHostileDeadlineHonored is the decompiler half of the serving-latency
// contract: a 50ms deadline on the worst-case hostile input must abort the
// fixpoint within a small multiple of the deadline, returning the context's
// error rather than a budget error. The budgets are raised far past what the
// deadline allows so the test measures poll latency, not a race between the
// deadline and the (machine-speed-dependent) time to budget exhaustion —
// with default limits the optimized fixpoint can exhaust the contexts budget
// in tens of milliseconds, right at the deadline.
func TestHostileDeadlineHonored(t *testing.T) {
	code := hostileCorpus(t)["ctx-explosion-312b.hex"]
	if code == nil {
		t.Fatal("worst-case hostile input missing")
	}
	const deadline = 50 * time.Millisecond
	unbounded := decompiler.Limits{MaxContexts: 1 << 30, MaxWorklistSteps: 1 << 40, MaxStatements: 1 << 40}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	prog, err := decompiler.DecompileContext(ctx, code, unbounded)
	elapsed := time.Since(start)
	if prog != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got (%v, %v), want deadline exceeded", prog, err)
	}
	if elapsed > 2*deadline {
		t.Errorf("deadline overshoot: returned after %v, want <= %v", elapsed, 2*deadline)
	}
}

// TestPreCancelledContext: a context cancelled before the call aborts before
// any fixpoint work.
func TestPreCancelledContext(t *testing.T) {
	out, err := minisol.CompileSource(minisol.VictimSource)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog, derr := decompiler.DecompileContext(ctx, out.Runtime, decompiler.Limits{})
	if prog != nil || !errors.Is(derr, context.Canceled) {
		t.Errorf("got (%v, %v), want context.Canceled", prog, derr)
	}
}
