package decompiler

import (
	"sort"

	"ethainter/internal/tac"
	"ethainter/internal/u256"
)

// discoverFunctions finds public entry points by recognizing the standard
// Solidity dispatch pattern: the 4-byte selector is extracted from
// CALLDATALOAD(0) with SHR 224 (or DIV 2^224 in older compilers) and compared
// against constants, each match jumping to a function body. The pass is
// linear in (budget-bounded) statements, but it still polls the budget's
// context on a stride so an expired deadline aborts here too instead of
// finishing a pass the caller no longer wants.
func discoverFunctions(b *budget, p *tac.Program) error {
	var pollCount int
	var pollErr error
	poll := func() bool {
		pollCount++
		if pollErr == nil && pollCount%1024 == 0 {
			pollErr = b.ctx.Err()
		}
		return pollErr == nil
	}

	selectorVars := findSelectorVars(p)
	if len(selectorVars) == 0 {
		return b.ctx.Err()
	}
	// A variable "carries the selector" if it is one of the extraction
	// results or a phi fed (transitively) by one.
	memoized := map[tac.VarID]bool{}
	var reaches func(v tac.VarID) bool
	reaches = func(v tac.VarID) bool {
		if selectorVars[v] {
			return true
		}
		if done, ok := memoized[v]; ok {
			return done
		}
		memoized[v] = false // cycle guard
		def := p.DefSite(v)
		if def != nil && def.Op == tac.Phi {
			for _, a := range def.Args {
				if reaches(a) {
					memoized[v] = true
					return true
				}
			}
		}
		return false
	}

	type entry struct {
		selector u256.U256
		block    *tac.Block
	}
	var found []entry
	seen := map[int]bool{} // dedupe per target pc
	p.AllStmts(func(s *tac.Stmt) {
		if !poll() || s.Op != tac.Jumpi {
			return
		}
		condDef := p.DefSite(s.Args[1])
		if condDef == nil || condDef.Op != tac.Eq {
			return
		}
		var c *tac.Stmt
		var other tac.VarID
		if d := p.DefSite(condDef.Args[0]); d != nil && d.Op == tac.Const {
			c, other = d, condDef.Args[1]
		} else if d := p.DefSite(condDef.Args[1]); d != nil && d.Op == tac.Const {
			c, other = d, condDef.Args[0]
		} else {
			return
		}
		if c.Val.BitLen() > 32 || !reaches(other) {
			return
		}
		// The JUMPI's jump successors (same pc as the const target) are the
		// function entry. Successors that are the fallthrough have the pc of
		// the next dispatcher block; disambiguate via the target constant.
		targetDef := p.DefSite(s.Args[0])
		if targetDef == nil || targetDef.Op != tac.Const || !targetDef.Val.IsUint64() {
			return
		}
		targetPC := int(targetDef.Val.Uint64())
		for _, succ := range s.Block.Succs {
			if succ.PC == targetPC && !seen[succ.PC] {
				seen[succ.PC] = true
				found = append(found, entry{selector: c.Val, block: succ})
			}
		}
	})
	if pollErr != nil {
		return pollErr
	}
	sort.Slice(found, func(i, j int) bool { return found[i].selector.Cmp(found[j].selector) < 0 })
	for _, f := range found {
		p.Functions = append(p.Functions, &tac.PublicFunction{Selector: f.selector, Entry: f.block})
	}
	return nil
}

// findSelectorVars locates variables that hold CALLDATALOAD(0) >> 224 (or the
// equivalent division by 2^224).
func findSelectorVars(p *tac.Program) map[tac.VarID]bool {
	shift224 := u256.FromUint64(0xe0)
	pow224 := u256.One.Shl(224)
	out := map[tac.VarID]bool{}
	isCD0 := func(v tac.VarID) bool {
		d := p.DefSite(v)
		if d == nil || d.Op != tac.Calldataload {
			return false
		}
		off := p.DefSite(d.Args[0])
		return off != nil && off.Op == tac.Const && off.Val.IsZero()
	}
	constEq := func(v tac.VarID, want u256.U256) bool {
		d := p.DefSite(v)
		return d != nil && d.Op == tac.Const && d.Val == want
	}
	p.AllStmts(func(s *tac.Stmt) {
		switch s.Op {
		case tac.Shr: // SHR(shift, value)
			if constEq(s.Args[0], shift224) && isCD0(s.Args[1]) {
				out[s.Def] = true
			}
		case tac.Div: // DIV(numerator, denominator)
			if isCD0(s.Args[0]) && constEq(s.Args[1], pow224) {
				out[s.Def] = true
			}
		}
	})
	return out
}
