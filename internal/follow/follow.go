// Package follow is the chain-follow ingestion loop: the component that
// turns the one-shot analyzer into the continuously operating service the
// paper deploys (Section 7 — analyzing all of mainnet as it grows, results
// "updated in quasi-real time").
//
// A Follower polls a block source from a cursor, detects contract creations
// in the receipts (outer creations, inner CREATE/CREATE2 frames, and direct
// runtime installs — the chain settles all three into Receipt.Creations),
// pushes each new runtime bytecode through the shared scheduler/cache path,
// and maintains a live, mutex-guarded findings index served over HTTP as
// GET /findings.
//
// Deduplication happens at three layers, cheapest first: the follower
// coalesces repeat bytecode it has already seen (one launch per unique
// keccak, every later install attaches to the outcome), the scheduler
// coalesces concurrent in-flight work across serving surfaces, and the cache
// memoizes across time — including the -cache-dir disk tier, so a restarted
// follower re-indexes a whole chain without performing a single new analysis.
//
// The PR 4 cancellation/budget contract holds under sustained load:
// deterministic failures (budget exhaustion, undecompilable bytecode) are
// recorded in the index and never retried hot, while cancellations (graceful
// drain mid-follow) are dropped from both the index and the coalescing map —
// they say nothing about the bytecode and must not poison later retries.
package follow

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/crypto"
	"ethainter/internal/evm"
	"ethainter/internal/sched"
)

// Source is the block feed a Follower cursors over. *chain.Chain implements
// it; tests may substitute a replayable fixture. Implementations must be
// safe for concurrent use with whatever goroutine applies transactions.
type Source interface {
	// Head returns the number of the last completed block (0 = empty chain).
	Head() uint64
	// ReceiptsFrom returns up to max receipts from blocks >= from, in block
	// order (all of them when max <= 0). Returned receipts are immutable.
	ReceiptsFrom(from uint64, max int) []*chain.Receipt
}

// Options configures a Follower.
type Options struct {
	// Source is the block feed. Required.
	Source Source
	// Scheduler runs the analyses (sharing its cache's memoization and disk
	// tier). Required.
	Scheduler *sched.Scheduler
	// Config is the analysis configuration.
	Config core.Config
	// BatchReceipts bounds receipts ingested per poll step (default 256).
	BatchReceipts int
	// StartBlock is the initial cursor (default 0 = genesis).
	StartBlock uint64
}

// DefaultPoll is the Run poll interval when none is given.
const DefaultPoll = 50 * time.Millisecond

// outcome is the analysis result of one unique bytecode; every install of
// that bytecode attaches to it. done is closed exactly once, after rep/err
// are set.
type outcome struct {
	done chan struct{}
	rep  *core.Report
	err  error
}

// Follower ingests a chain and maintains the findings index. Create with
// New; drive with Run (daemon) or CatchUp (one-shot). All exported methods
// are safe for concurrent use.
type Follower struct {
	src   Source
	sch   *sched.Scheduler
	cfg   core.Config
	batch int

	// wg tracks in-flight analysis and resolution goroutines; Run and
	// CatchUp wait on it so a drained follower leaves nothing running.
	wg sync.WaitGroup

	mu       sync.Mutex
	cursor   uint64
	entries  map[evm.Address]*entry
	outcomes map[[32]byte]*outcome

	head      atomic.Uint64
	blocks    atomic.Uint64
	receipts  atomic.Uint64
	creations atomic.Uint64
	launched  atomic.Uint64
	coalesced atomic.Uint64
	analyzed  atomic.Uint64
	failed    atomic.Uint64
	budget    atomic.Uint64
	cancelled atomic.Uint64
	findings  atomic.Uint64
	inFlight  atomic.Int64

	// gen counts index mutations; the Digest memo is keyed by it, so an
	// unchanged index serves a cached digest — the GET /findings ETag fast
	// path costs no re-serialization while nothing settles.
	gen       atomic.Uint64
	digestMu  sync.Mutex
	digestGen uint64
	digestSet bool
	digestVal [32]byte
}

// New returns a follower over the given source and scheduler. It does not
// start polling; call Run or CatchUp.
func New(o Options) *Follower {
	if o.Source == nil {
		panic("follow: Options.Source is required")
	}
	if o.Scheduler == nil {
		panic("follow: Options.Scheduler is required")
	}
	batch := o.BatchReceipts
	if batch <= 0 {
		batch = 256
	}
	f := &Follower{
		src:      o.Source,
		sch:      o.Scheduler,
		cfg:      o.Config,
		batch:    batch,
		entries:  map[evm.Address]*entry{},
		outcomes: map[[32]byte]*outcome{},
	}
	f.cursor = o.StartBlock
	return f
}

// Step ingests at most one batch of receipts, returning whether the cursor
// advanced. Analyses launch asynchronously; Step does not wait for them.
// Steps must not run concurrently with each other (Run and CatchUp serialize
// them); concurrent readers of the index and stats are fine.
func (f *Follower) Step(ctx context.Context) bool {
	head := f.src.Head()
	f.head.Store(head)
	f.mu.Lock()
	cur := f.cursor
	f.mu.Unlock()
	if cur > head {
		return false
	}
	rcs := f.src.ReceiptsFrom(cur, f.batch)
	// When the batch filled, later blocks may remain unread: advance only
	// past the last block actually seen. An undersized batch read
	// everything up to the head observed above.
	next := head + 1
	if len(rcs) == f.batch {
		next = rcs[len(rcs)-1].Block + 1
	}
	for _, r := range rcs {
		f.receipts.Add(1)
		for _, cr := range r.Creations {
			f.ingest(ctx, r.Block, cr)
		}
	}
	f.blocks.Add(next - cur)
	f.mu.Lock()
	f.cursor = next
	f.mu.Unlock()
	return true
}

// ingest routes one contract creation into the index: first install of a
// bytecode launches an analysis, repeats coalesce onto the existing outcome
// (in-flight or resolved — deterministic failures are never retried hot).
func (f *Follower) ingest(ctx context.Context, block uint64, cr chain.Creation) {
	f.creations.Add(1)
	if len(cr.Code) == 0 {
		return
	}
	hash := crypto.Keccak256(cr.Code)
	e := &entry{addr: cr.Address, block: block, hash: hash}

	f.mu.Lock()
	oc := f.outcomes[hash]
	if oc == nil {
		oc = &outcome{done: make(chan struct{})}
		f.outcomes[hash] = oc
		f.launched.Add(1)
		f.inFlight.Add(1)
		f.wg.Add(1)
		go f.compute(ctx, hash, cr.Code, oc)
	} else {
		f.coalesced.Add(1)
	}
	f.entries[e.addr] = e
	f.mu.Unlock()

	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		<-oc.done
		f.resolve(e, oc)
	}()
}

// compute runs one unique analysis through the scheduler. A cancelled
// analysis is forgotten (removed from the coalescing map) so a later ingest
// retries under a live context — deterministic failures stay memoized.
func (f *Follower) compute(ctx context.Context, hash [32]byte, code []byte, oc *outcome) {
	defer f.wg.Done()
	defer f.inFlight.Add(-1)
	oc.rep, oc.err = f.sch.Do(ctx, code, f.cfg)
	close(oc.done)
	if oc.err != nil && core.IsCancellation(oc.err) {
		f.mu.Lock()
		if f.outcomes[hash] == oc {
			delete(f.outcomes, hash)
		}
		f.mu.Unlock()
	}
}

// resolve records one install's outcome in the index. Cancellations drop the
// pending entry entirely: a drained follower's index holds only settled
// truth, and a restarted follower re-discovers the contract from its cursor.
func (f *Follower) resolve(e *entry, oc *outcome) {
	f.mu.Lock()
	defer f.mu.Unlock()
	defer f.gen.Add(1) // any resolution may change the settled index
	if oc.err != nil {
		if core.IsCancellation(oc.err) {
			if f.entries[e.addr] == e {
				delete(f.entries, e.addr)
			}
			f.cancelled.Add(1)
			return
		}
		e.status = statusFailed
		e.errText = oc.err.Error()
		e.budget = core.IsBudgetExhaustion(oc.err)
		f.failed.Add(1)
		if e.budget {
			f.budget.Add(1)
		}
		return
	}
	e.status = statusAnalyzed
	e.report = oc.rep
	f.analyzed.Add(1)
	f.findings.Add(uint64(len(oc.rep.Warnings)))
}

// CatchUp ingests until the cursor passes the source head, then waits for
// every launched analysis to resolve. Returns ctx.Err() when interrupted.
func (f *Follower) CatchUp(ctx context.Context) error {
	for f.Step(ctx) {
		if ctx.Err() != nil {
			break
		}
	}
	f.wg.Wait()
	return ctx.Err()
}

// Run follows the source until ctx is cancelled, polling every poll interval
// (DefaultPoll when <= 0), then drains: in-flight analyses resolve — the
// cancelled ones dropped from the index, never recorded as failures — before
// Run returns with ctx.Err().
func (f *Follower) Run(ctx context.Context, poll time.Duration) error {
	if poll <= 0 {
		poll = DefaultPoll
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		for f.Step(ctx) {
			if ctx.Err() != nil {
				break
			}
		}
		select {
		case <-ctx.Done():
			f.wg.Wait()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Stats is a snapshot of the follow-loop counters, exposed on /statsz.
type Stats struct {
	// Cursor is the next block the follower will read; Head the source head
	// at the last poll; Lag how many completed blocks remain unread.
	Cursor uint64 `json:"cursor"`
	Head   uint64 `json:"head"`
	Lag    uint64 `json:"lag"`
	// Blocks/Receipts/Creations count what the loop has seen.
	Blocks    uint64 `json:"blocks_seen"`
	Receipts  uint64 `json:"receipts_seen"`
	Creations uint64 `json:"creations_seen"`
	// Launched counts unique-bytecode analyses started; Coalesced installs
	// that attached to an existing outcome instead.
	Launched  uint64 `json:"analyses_launched"`
	Coalesced uint64 `json:"analyses_coalesced"`
	InFlight  int64  `json:"in_flight"`
	// Entries is the index size; Analyzed/Failed/BudgetFailed its settled
	// split; Cancelled counts drained analyses (never indexed).
	Entries      uint64 `json:"entries"`
	Analyzed     uint64 `json:"analyzed"`
	Failed       uint64 `json:"failed"`
	BudgetFailed uint64 `json:"budget_failed"`
	Cancelled    uint64 `json:"cancelled"`
	// Findings is the total warning count across analyzed entries.
	Findings uint64 `json:"findings"`
}

// Stats returns a snapshot of the counters.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	cursor := f.cursor
	entries := uint64(len(f.entries))
	f.mu.Unlock()
	head := f.head.Load()
	s := Stats{
		Cursor:       cursor,
		Head:         head,
		Blocks:       f.blocks.Load(),
		Receipts:     f.receipts.Load(),
		Creations:    f.creations.Load(),
		Launched:     f.launched.Load(),
		Coalesced:    f.coalesced.Load(),
		InFlight:     f.inFlight.Load(),
		Entries:      entries,
		Analyzed:     f.analyzed.Load(),
		Failed:       f.failed.Load(),
		BudgetFailed: f.budget.Load(),
		Cancelled:    f.cancelled.Load(),
		Findings:     f.findings.Load(),
	}
	if head+1 > cursor {
		s.Lag = head + 1 - cursor
	}
	return s
}
