package follow

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"ethainter/internal/core"
	"ethainter/internal/crypto"
	"ethainter/internal/evm"
)

// entry is one indexed contract. Guarded by Follower.mu; status is "" while
// the analysis is pending and the entry is invisible to snapshots.
type entry struct {
	addr    evm.Address
	block   uint64
	hash    [32]byte
	status  string
	errText string
	budget  bool
	report  *core.Report // shared, immutable
}

// Entry statuses.
const (
	statusAnalyzed = "analyzed"
	statusFailed   = "failed"
)

// Warning is the wire form of one indexed warning.
type Warning struct {
	Kind    string   `json:"kind"`
	PC      int      `json:"pc"`
	Message string   `json:"message"`
	Slot    string   `json:"slot,omitempty"`
	Witness []string `json:"witness,omitempty"`
}

// Entry is the wire form of one indexed contract.
type Entry struct {
	Address  string `json:"address"`
	Block    uint64 `json:"block"`
	CodeHash string `json:"codeHash"`
	// Status is "analyzed" or "failed"; failed entries carry Error (and
	// Budget when the failure was deterministic budget exhaustion — these
	// are settled outcomes, never retried hot).
	Status          string    `json:"status"`
	Error           string    `json:"error,omitempty"`
	Budget          bool      `json:"budget,omitempty"`
	PublicFunctions int       `json:"publicFunctions,omitempty"`
	Warnings        []Warning `json:"warnings,omitempty"`
}

// Filter selects index entries for Snapshot. The zero value matches every
// settled entry.
type Filter struct {
	// Kind restricts to entries with at least one warning of the named
	// vulnerability class (core.VulnKind.String() form).
	Kind string
	// Address restricts to one contract (0x-prefixed hex, case-insensitive).
	Address string
	// FromBlock/ToBlock bound the install block (ToBlock 0 = unbounded).
	FromBlock uint64
	ToBlock   uint64
	// WithFindings restricts to entries with at least one warning.
	WithFindings bool
}

// KnownKind reports whether kind names a vulnerability class.
func KnownKind(kind string) bool {
	for k := core.VulnKind(0); k < core.NumVulnKinds; k++ {
		if k.String() == kind {
			return true
		}
	}
	return false
}

// Snapshot renders the settled index entries matching the filter, sorted by
// (block, address) — the GET /findings payload.
func (f *Follower) Snapshot(filter Filter) []Entry {
	wantAddr := strings.TrimPrefix(strings.ToLower(filter.Address), "0x")
	f.mu.Lock()
	matched := make([]*entry, 0, len(f.entries))
	for _, e := range f.entries {
		if e.status == "" {
			continue
		}
		if e.block < filter.FromBlock || (filter.ToBlock > 0 && e.block > filter.ToBlock) {
			continue
		}
		if wantAddr != "" && hex.EncodeToString(e.addr[:]) != wantAddr {
			continue
		}
		if filter.WithFindings && (e.report == nil || len(e.report.Warnings) == 0) {
			continue
		}
		if filter.Kind != "" && !hasKind(e.report, filter.Kind) {
			continue
		}
		matched = append(matched, e)
	}
	f.mu.Unlock()

	sort.Slice(matched, func(i, j int) bool {
		if matched[i].block != matched[j].block {
			return matched[i].block < matched[j].block
		}
		return bytes.Compare(matched[i].addr[:], matched[j].addr[:]) < 0
	})
	out := make([]Entry, 0, len(matched))
	for _, e := range matched {
		out = append(out, renderEntry(e))
	}
	return out
}

func hasKind(rep *core.Report, kind string) bool {
	if rep == nil {
		return false
	}
	for _, w := range rep.Warnings {
		if w.Kind.String() == kind {
			return true
		}
	}
	return false
}

func renderEntry(e *entry) Entry {
	out := Entry{
		Address:  e.addr.String(),
		Block:    e.block,
		CodeHash: "0x" + hex.EncodeToString(e.hash[:]),
		Status:   e.status,
		Error:    e.errText,
		Budget:   e.budget,
	}
	if e.report != nil {
		out.PublicFunctions = e.report.PublicFunctions
		for _, w := range e.report.Warnings {
			wj := Warning{Kind: w.Kind.String(), PC: w.PC, Message: w.Message}
			if w.Kind == core.TaintedOwner {
				wj.Slot = w.Slot.String()
			}
			for _, step := range w.Witness {
				wj.Witness = append(wj.Witness, fmt.Sprintf("0x%x", step.Selector))
			}
			out.Warnings = append(out.Warnings, wj)
		}
	}
	return out
}

// Digest returns a keccak-256 over the canonical serialization of every
// settled index entry — two follows that indexed the same chain to the same
// conclusions produce identical digests, regardless of analysis order or
// cache temperature. Pending entries are excluded; call after CatchUp (or a
// drain) for a stable value.
//
// The digest is memoized per index generation: while nothing settles,
// repeated calls (every /findings request computes one for its ETag) return
// the cached value without re-serializing the index. The generation is read
// before the snapshot, so a concurrent settle at worst tags the memo one
// generation too old — an extra recompute later, never a stale digest.
func (f *Follower) Digest() [32]byte {
	gen := f.gen.Load()
	f.digestMu.Lock()
	if f.digestSet && f.digestGen == gen {
		v := f.digestVal
		f.digestMu.Unlock()
		return v
	}
	f.digestMu.Unlock()

	var buf bytes.Buffer
	for _, e := range f.Snapshot(Filter{}) {
		fmt.Fprintf(&buf, "%s|%d|%s|%s|%s|%d\n", e.Address, e.Block, e.CodeHash, e.Status, e.Error, e.PublicFunctions)
		for _, w := range e.Warnings {
			fmt.Fprintf(&buf, "  %s|%d|%s|%s|%s\n", w.Kind, w.PC, w.Slot, w.Message, strings.Join(w.Witness, ","))
		}
	}
	v := crypto.Keccak256(buf.Bytes())

	f.digestMu.Lock()
	if !f.digestSet || f.digestGen <= gen {
		f.digestGen, f.digestVal, f.digestSet = gen, v, true
	}
	f.digestMu.Unlock()
	return v
}
