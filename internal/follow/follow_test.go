package follow_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/follow"
	"ethainter/internal/minisol"
	"ethainter/internal/sched"
	"ethainter/internal/u256"
)

// The chain simulator must satisfy the follower's source interface.
var _ follow.Source = (*chain.Chain)(nil)

func newFollower(t *testing.T, ch *chain.Chain, opts follow.Options) (*follow.Follower, *core.Cache) {
	t.Helper()
	cache := core.NewCacheSharded(0, 4)
	sc := sched.New(cache, 4)
	t.Cleanup(sc.Close)
	opts.Source = ch
	opts.Scheduler = sc
	if opts.Config == (core.Config{}) {
		opts.Config = core.DefaultConfig()
	}
	return follow.New(opts), cache
}

// TestCatchUpIndexesDeployments: deploy N contracts (with repeats), then catch
// up from genesis. Every install lands in the index, exactly one analysis
// launches per unique bytecode, and the cache performed exactly that much work.
func TestCatchUpIndexesDeployments(t *testing.T) {
	ch := chain.New()
	killable := minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime
	safe := minisol.MustCompile(minisol.SafeTokenSource).Runtime
	victim := minisol.MustCompile(minisol.VictimSource).Runtime
	installs := [][]byte{killable, safe, victim, killable, safe, killable}
	unique := map[string]bool{}
	for _, code := range installs {
		ch.DeployRuntime(code, u256.Zero)
		unique[string(code)] = true
	}

	f, cache := newFollower(t, ch, follow.Options{})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch up: %v", err)
	}

	s := f.Stats()
	if s.Entries != uint64(len(installs)) {
		t.Errorf("entries = %d, want %d", s.Entries, len(installs))
	}
	if s.Creations != uint64(len(installs)) {
		t.Errorf("creations = %d, want %d", s.Creations, len(installs))
	}
	if s.Launched != uint64(len(unique)) {
		t.Errorf("launched = %d, want %d unique", s.Launched, len(unique))
	}
	if want := uint64(len(installs) - len(unique)); s.Coalesced != want {
		t.Errorf("coalesced = %d, want %d", s.Coalesced, want)
	}
	if s.Analyzed != s.Entries || s.Failed != 0 {
		t.Errorf("analyzed/failed = %d/%d, want %d/0", s.Analyzed, s.Failed, s.Entries)
	}
	if s.Findings == 0 {
		t.Error("expected findings from the killable/victim contracts")
	}
	if s.Lag != 0 || s.InFlight != 0 {
		t.Errorf("after catch-up: lag = %d, in-flight = %d", s.Lag, s.InFlight)
	}
	if cs := cache.Stats(); cs.Analyses != uint64(len(unique)) {
		t.Errorf("cache analyses = %d, want %d", cs.Analyses, len(unique))
	}

	// A second catch-up over the same ground is a no-op: the cursor is past
	// the head.
	if f.Step(context.Background()) {
		t.Error("step past head should not advance")
	}
}

// TestCatchUpIndexesDeployedCreations: creations made by running init code
// through Deploy (not just direct runtime installs) are picked up too.
func TestCatchUpIndexesDeployedCreations(t *testing.T) {
	ch := chain.New()
	from := ch.NewAccount(u256.FromUint64(1000))
	compiled := minisol.MustCompile(minisol.AccessibleSelfdestructSource)
	r := ch.Deploy(from, compiled.Deploy, u256.Zero)
	if r.Err != nil {
		t.Fatalf("deploy: %v", r.Err)
	}

	f, _ := newFollower(t, ch, follow.Options{})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch up: %v", err)
	}
	got := f.Snapshot(follow.Filter{})
	if len(got) != 1 {
		t.Fatalf("indexed %d entries, want 1", len(got))
	}
	if got[0].Address != r.Created.String() {
		t.Errorf("indexed %s, want %s", got[0].Address, r.Created)
	}
	if got[0].Status != "analyzed" || len(got[0].Warnings) == 0 {
		t.Errorf("entry = %+v, want analyzed with warnings", got[0])
	}
}

// TestLiveFollowConcurrentDeploys: the follower daemon polls while another
// goroutine keeps deploying — every install is eventually indexed, and the
// drain on cancel leaves nothing in flight. Exercises the chain's reader/
// applier locking under -race.
func TestLiveFollowConcurrentDeploys(t *testing.T) {
	ch := chain.New()
	f, _ := newFollower(t, ch, follow.Options{BatchReceipts: 3})

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(ctx, time.Millisecond) }()

	const n = 20
	contracts := corpus.Generate(corpus.DefaultProfile(n, 7))
	go func() {
		for _, c := range contracts {
			ch.DeployRuntime(c.Runtime, u256.Zero)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	deadline := time.After(30 * time.Second)
	for {
		s := f.Stats()
		if s.Creations == n && s.InFlight == 0 && s.Analyzed+s.Failed == s.Entries && s.Entries == n {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("follower never caught up: %+v", f.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	if err := <-runDone; err != context.Canceled {
		t.Errorf("run returned %v, want context.Canceled", err)
	}
}

// TestWarmRestartReanalyzesNothing: a follower restarted from genesis against
// the same -cache-dir disk tier rebuilds an identical index without a single
// new analysis or decompilation — the acceptance criterion for warm restarts.
func TestWarmRestartReanalyzesNothing(t *testing.T) {
	ch := chain.New()
	contracts := corpus.Generate(corpus.DefaultProfile(25, 3))
	for _, c := range contracts {
		ch.DeployRuntime(c.Runtime, u256.Zero)
	}
	dir := t.TempDir()
	cfg := core.DefaultConfig()

	// Cold process: follow the whole chain into the tier and flush it.
	tier, err := core.OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldCache := core.NewCacheSharded(0, 4)
	coldCache.SetDiskTier(tier)
	coldSched := sched.New(coldCache, 4)
	cold := follow.New(follow.Options{Source: ch, Scheduler: coldSched, Config: cfg})
	if err := cold.CatchUp(context.Background()); err != nil {
		t.Fatalf("cold catch up: %v", err)
	}
	coldSched.Close()
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	coldStats := cold.Stats()
	if coldStats.Launched == 0 || coldCache.Stats().Analyses == 0 {
		t.Fatalf("cold run did no work: %+v", coldStats)
	}

	// Warm process: fresh cache, fresh scheduler, fresh follower, same dir.
	tier2, err := core.OpenDiskTier(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	warmCache := core.NewCacheSharded(0, 4)
	warmCache.SetDiskTier(tier2)
	warmSched := sched.New(warmCache, 4)
	defer warmSched.Close()
	warm := follow.New(follow.Options{Source: ch, Scheduler: warmSched, Config: cfg})
	if err := warm.CatchUp(context.Background()); err != nil {
		t.Fatalf("warm catch up: %v", err)
	}

	if cs := warmCache.Stats(); cs.Analyses != 0 || cs.Decompiles != 0 {
		t.Errorf("warm restart did work: analyses = %d, decompiles = %d", cs.Analyses, cs.Decompiles)
	}
	warmStats := warm.Stats()
	if warmStats.Entries != coldStats.Entries || warmStats.Findings != coldStats.Findings {
		t.Errorf("warm index diverges: %+v vs cold %+v", warmStats, coldStats)
	}
	if warm.Digest() != cold.Digest() {
		t.Error("warm index digest diverges from cold")
	}
}

// TestSnapshotFilters: the /findings query dimensions — vulnerability class,
// address, block range, findings-only — select the right entries.
func TestSnapshotFilters(t *testing.T) {
	ch := chain.New()
	killable := ch.DeployRuntime(minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime, u256.Zero) // block 1
	safe := ch.DeployRuntime(minisol.MustCompile(minisol.SafeTokenSource).Runtime, u256.Zero)                  // block 2
	owner := ch.DeployRuntime(minisol.MustCompile(minisol.TaintedOwnerSource).Runtime, u256.Zero)              // block 3

	f, _ := newFollower(t, ch, follow.Options{})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch up: %v", err)
	}

	all := f.Snapshot(follow.Filter{})
	if len(all) != 3 {
		t.Fatalf("unfiltered snapshot has %d entries, want 3", len(all))
	}
	// Sorted by block: install order.
	for i, want := range []string{killable.String(), safe.String(), owner.String()} {
		if all[i].Address != want {
			t.Errorf("entry %d = %s, want %s", i, all[i].Address, want)
		}
	}

	byKind := f.Snapshot(follow.Filter{Kind: "tainted owner variable"})
	if len(byKind) != 1 || byKind[0].Address != owner.String() {
		t.Errorf("kind filter: %+v, want only %s", byKind, owner)
	}
	if !follow.KnownKind("tainted owner variable") || follow.KnownKind("no such kind") {
		t.Error("KnownKind misclassifies")
	}

	byAddr := f.Snapshot(follow.Filter{Address: strings.ToUpper(safe.String())})
	if len(byAddr) != 1 || byAddr[0].Address != safe.String() {
		t.Errorf("address filter (case-insensitive): %+v, want only %s", byAddr, safe)
	}

	byBlock := f.Snapshot(follow.Filter{FromBlock: 2, ToBlock: 2})
	if len(byBlock) != 1 || byBlock[0].Address != safe.String() {
		t.Errorf("block filter: %+v, want only block 2", byBlock)
	}

	flagged := f.Snapshot(follow.Filter{WithFindings: true})
	for _, e := range flagged {
		if len(e.Warnings) == 0 {
			t.Errorf("findings-only snapshot includes warning-free %s", e.Address)
		}
		if e.Address == safe.String() {
			t.Error("findings-only snapshot includes the safe token")
		}
	}
	if len(flagged) != 2 {
		t.Errorf("findings-only snapshot has %d entries, want 2", len(flagged))
	}
}

// TestBudgetFailureSettles: an analysis that exhausts its work budget is
// recorded as a deterministic failure — indexed, counted, and never retried
// hot (the second install of the same bytecode coalesces onto the outcome).
func TestBudgetFailureSettles(t *testing.T) {
	ch := chain.New()
	code := minisol.MustCompile(minisol.VictimSource).Runtime
	ch.DeployRuntime(code, u256.Zero)
	ch.DeployRuntime(code, u256.Zero)

	cfg := core.DefaultConfig()
	cfg.DecompileLimits = decompiler.Limits{MaxWorklistSteps: 1}
	f, cache := newFollower(t, ch, follow.Options{Config: cfg})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch up: %v", err)
	}

	s := f.Stats()
	if s.Launched != 1 || s.Coalesced != 1 {
		t.Errorf("launched/coalesced = %d/%d, want 1/1", s.Launched, s.Coalesced)
	}
	if s.Failed != 2 || s.BudgetFailed != 2 || s.Analyzed != 0 {
		t.Errorf("failed/budget/analyzed = %d/%d/%d, want 2/2/0", s.Failed, s.BudgetFailed, s.Analyzed)
	}
	if cs := cache.Stats(); cs.Analyses != 1 {
		t.Errorf("cache analyses = %d, want 1 (deterministic failure memoized)", cs.Analyses)
	}
	for _, e := range f.Snapshot(follow.Filter{}) {
		if e.Status != "failed" || !e.Budget || e.Error == "" {
			t.Errorf("entry %+v, want settled budget failure", e)
		}
	}
}

// TestDrainDropsCancelledAnalyses: following under an already-cancelled
// context ingests the creations but resolves every analysis as a
// cancellation — dropped from the index, not recorded as failures, so a
// restarted follower re-discovers them cleanly.
func TestDrainDropsCancelledAnalyses(t *testing.T) {
	ch := chain.New()
	code := minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime
	ch.DeployRuntime(code, u256.Zero)
	ch.DeployRuntime(code, u256.Zero)

	f, cache := newFollower(t, ch, follow.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.CatchUp(ctx); err != context.Canceled {
		t.Fatalf("catch up under cancelled ctx returned %v", err)
	}

	s := f.Stats()
	if s.Cancelled != 2 || s.Entries != 0 || s.Failed != 0 {
		t.Errorf("cancelled/entries/failed = %d/%d/%d, want 2/0/0", s.Cancelled, s.Entries, s.Failed)
	}
	if cs := cache.Stats(); cs.Analyses != 0 {
		t.Errorf("cancelled run performed %d analyses", cs.Analyses)
	}
	if len(f.Snapshot(follow.Filter{})) != 0 {
		t.Error("cancelled analyses leaked into the index")
	}

	// A fresh catch-up under a live context analyzes it for real.
	f2 := follow.New(follow.Options{Source: ch, Scheduler: mustSched(t, cache), Config: core.DefaultConfig()})
	if err := f2.CatchUp(context.Background()); err != nil {
		t.Fatalf("retry catch up: %v", err)
	}
	if s := f2.Stats(); s.Analyzed != 2 {
		t.Errorf("retry analyzed = %d, want 2", s.Analyzed)
	}
}

func mustSched(t *testing.T, cache *core.Cache) *sched.Scheduler {
	t.Helper()
	sc := sched.New(cache, 2)
	t.Cleanup(sc.Close)
	return sc
}

// TestEmptyCreationsSkipped: a receipt stream with no creations (plain calls,
// failed deploys) indexes nothing but still advances the cursor.
func TestEmptyCreationsSkipped(t *testing.T) {
	ch := chain.New()
	from := ch.NewAccount(u256.FromUint64(1000))
	target := ch.DeployRuntime(minisol.MustCompile(minisol.SafeTokenSource).Runtime, u256.Zero)
	ch.Call(from, target, []byte{0xde, 0xad, 0xbe, 0xef}, u256.Zero)
	ch.Call(from, target, nil, u256.Zero)

	f, _ := newFollower(t, ch, follow.Options{})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch up: %v", err)
	}
	s := f.Stats()
	if s.Entries != 1 || s.Creations != 1 {
		t.Errorf("entries/creations = %d/%d, want 1/1", s.Entries, s.Creations)
	}
	if s.Receipts != 3 {
		t.Errorf("receipts = %d, want 3", s.Receipts)
	}
	if s.Cursor != ch.Head()+1 {
		t.Errorf("cursor = %d, want %d", s.Cursor, ch.Head()+1)
	}
}

// TestDigestIgnoresIndexingOrder: two followers over the same chain with
// different batch sizes (hence different ingestion interleavings) settle on
// the same digest.
func TestDigestIgnoresIndexingOrder(t *testing.T) {
	ch := chain.New()
	contracts := corpus.Generate(corpus.DefaultProfile(15, 9))
	for _, c := range contracts {
		ch.DeployRuntime(c.Runtime, u256.Zero)
	}
	a, _ := newFollower(t, ch, follow.Options{BatchReceipts: 1})
	b, _ := newFollower(t, ch, follow.Options{BatchReceipts: 100})
	if err := a.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := b.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("digest depends on batch size")
	}
	if a.Digest() == crypto.Keccak256(nil) && len(contracts) > 0 {
		t.Error("digest of a populated index equals the empty digest")
	}
}

// TestStartBlockSkipsHistory: a follower started mid-chain only indexes
// creations from its start block onward.
func TestStartBlockSkipsHistory(t *testing.T) {
	ch := chain.New()
	ch.DeployRuntime(minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime, u256.Zero) // block 1
	late := ch.DeployRuntime(minisol.MustCompile(minisol.SafeTokenSource).Runtime, u256.Zero)      // block 2

	f, _ := newFollower(t, ch, follow.Options{StartBlock: 2})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := f.Snapshot(follow.Filter{})
	if len(got) != 1 || got[0].Address != late.String() {
		t.Errorf("snapshot = %+v, want only the block-2 install", got)
	}
}
