package kill_test

import (
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/evm"
	"ethainter/internal/kill"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

func deployAndAnalyze(t *testing.T, src string) (*chain.Chain, evm.Address, *core.Report) {
	t.Helper()
	out, err := minisol.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	c := chain.New()
	deployer := c.NewAccount(u256.FromUint64(1_000_000))
	r := c.Deploy(deployer, out.Deploy, u256.Zero)
	if r.Err != nil {
		t.Fatalf("deploy: %v", r.Err)
	}
	rep, err := core.AnalyzeBytecode(out.Runtime, core.DefaultConfig())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return c, r.Created, rep
}

// The full paper pipeline on the Section 2 Victim: Ethainter flags it,
// Ethainter-Kill replays the composite witness and destroys it — and the
// primary chain stays untouched (attacks run on a fork).
func TestKillVictimEndToEnd(t *testing.T) {
	c, victim, rep := deployAndAnalyze(t, minisol.VictimSource)
	c.State.AddBalance(victim, u256.FromUint64(7777))
	c.State.Finalize()

	k := kill.New(c)
	res := k.Exploit(victim, rep)
	if !res.Pinpointed {
		t.Fatal("analysis should pinpoint the entry chain")
	}
	if !res.Destroyed {
		t.Fatalf("victim should be destroyed (%d attempts)", res.Attempts)
	}
	if len(res.Steps) != 3 {
		t.Errorf("expected the 3-step escalation, got %v", res.Steps)
	}
	if c.IsDestroyed(victim) {
		t.Error("primary chain must not be mutated by kill attempts")
	}
}

func TestKillInitOwner(t *testing.T) {
	c, target, rep := deployAndAnalyze(t, minisol.TaintedOwnerSource)
	res := kill.New(c).Exploit(target, rep)
	if !res.Destroyed {
		t.Fatalf("initOwner contract should be destroyed; attempts=%d", res.Attempts)
	}
}

func TestKillUnguarded(t *testing.T) {
	c, target, rep := deployAndAnalyze(t, minisol.AccessibleSelfdestructSource)
	res := kill.New(c).Exploit(target, rep)
	if !res.Destroyed {
		t.Fatal("unguarded kill() should be destroyed in one step")
	}
	if len(res.Steps) != 1 {
		t.Errorf("steps = %v, want a single kill()", res.Steps)
	}
}

// The attacker profits: the victim's balance lands in the attacker account
// when the escalation also captures ownership.
func TestKillProfit(t *testing.T) {
	c, victim, rep := deployAndAnalyze(t, minisol.VictimSource)
	c.State.AddBalance(victim, u256.FromUint64(5000))
	c.State.Finalize()
	res := kill.New(c).Exploit(victim, rep)
	if !res.Destroyed {
		t.Fatal("not destroyed")
	}
	// The 3-step witness sends funds to the pre-attack owner, not the
	// attacker; profit is only guaranteed with the changeOwner step. Either
	// way the destruction itself must be confirmed; profit is informational.
	_ = res.Profit
}

// A safe contract yields no killable plan at all.
func TestKillSafeTokenNothingToDo(t *testing.T) {
	c, token, rep := deployAndAnalyze(t, minisol.SafeTokenSource)
	res := kill.New(c).Exploit(token, rep)
	if res.Pinpointed || res.Destroyed {
		t.Fatalf("safe token must not be exploitable: %+v", res)
	}
	if c.IsDestroyed(token) {
		t.Fatal("token destroyed?!")
	}
}

// Sweep aggregates across a mixed population.
func TestKillSweep(t *testing.T) {
	c := chain.New()
	deployer := c.NewAccount(u256.FromUint64(1_000_000))
	reports := map[evm.Address]*core.Report{}
	for _, src := range []string{
		minisol.VictimSource,
		minisol.AccessibleSelfdestructSource,
		minisol.SafeTokenSource,
	} {
		out, err := minisol.CompileSource(src)
		if err != nil {
			t.Fatal(err)
		}
		r := c.Deploy(deployer, out.Deploy, u256.Zero)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		rep, err := core.AnalyzeBytecode(out.Runtime, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		reports[r.Created] = rep
	}
	stats := kill.New(c).Sweep(reports)
	if stats.Flagged != 2 {
		t.Errorf("flagged = %d, want 2", stats.Flagged)
	}
	if stats.Destroyed != 2 {
		t.Errorf("destroyed = %d, want 2", stats.Destroyed)
	}
	if stats.Pinpointed != 2 {
		t.Errorf("pinpointed = %d, want 2", stats.Pinpointed)
	}
}
