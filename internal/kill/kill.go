// Package kill implements Ethainter-Kill (Section 6.1): a fully automated
// exploit tool that reads Ethainter's output, connects to the chain,
// replays the analysis' witness chain as a sequence of transactions with
// generated parameters, and confirms destruction from the exact VM
// instruction trace.
package kill

import (
	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// Result records one exploit attempt.
type Result struct {
	Contract evm.Address
	// Pinpointed reports whether the analysis provided a public entry chain
	// to the flagged statement (the paper's 3,003-of-4,800).
	Pinpointed bool
	// Destroyed reports whether a SELFDESTRUCT on the target was confirmed
	// in the instruction trace of a successful attempt.
	Destroyed bool
	// Steps is the transaction sequence of the successful attempt.
	Steps []core.Step
	// Attempts counts tried transaction sequences.
	Attempts int
	// Profit is the balance gained by the attacker account, if any.
	Profit u256.U256
}

// Killer attacks flagged contracts on forks of the given chain.
type Killer struct {
	Chain *chain.Chain
	// Funds is the balance given to the attacker account on each fork.
	Funds u256.U256
	// MaxAttempts bounds the argument variants tried per contract.
	MaxAttempts int
}

// New returns a Killer with sensible defaults.
func New(c *chain.Chain) *Killer {
	return &Killer{Chain: c, Funds: u256.FromUint64(1_000_000), MaxAttempts: 6}
}

// killable are the vulnerability kinds Ethainter-Kill knows how to exploit —
// per the paper, "accessible selfdestruct" and, to a lesser extent, "tainted
// selfdestruct".
func killable(k core.VulnKind) bool {
	return k == core.AccessibleSelfdestruct || k == core.TaintedSelfdestruct
}

// Exploit attempts to destroy the target using the report's witness chains.
// All attempts run on private forks; the primary chain is never mutated.
func (k *Killer) Exploit(target evm.Address, report *core.Report) *Result {
	res := &Result{Contract: target}
	// Collect candidate witness chains, accessible-selfdestruct first (they
	// are the directly destroying ones).
	var plans [][]core.Step
	for _, kind := range []core.VulnKind{core.AccessibleSelfdestruct, core.TaintedSelfdestruct} {
		for _, w := range report.ByKind(kind) {
			if killable(w.Kind) && len(w.Witness) > 0 {
				plans = append(plans, w.Witness)
			}
		}
	}
	if len(plans) == 0 {
		return res
	}
	res.Pinpointed = true

	maxAttempts := k.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 6
	}
	for _, plan := range plans {
		for _, variant := range argVariants() {
			if res.Attempts >= maxAttempts {
				return res
			}
			res.Attempts++
			if steps, profit, ok := k.try(target, plan, variant); ok {
				res.Destroyed = true
				res.Steps = steps
				res.Profit = profit
				return res
			}
		}
	}
	return res
}

// argVariant generates the word arguments for a step.
type argVariant struct {
	name  string
	value u256.U256 // msg.value attached to each call
	arg   func(attacker evm.Address, i int) u256.U256
}

func argVariants() []argVariant {
	return []argVariant{
		{name: "attacker-args", arg: func(a evm.Address, _ int) u256.U256 { return a.Word() }},
		{name: "attacker-args+value", value: u256.FromUint64(10_000),
			arg: func(a evm.Address, _ int) u256.U256 { return a.Word() }},
		{name: "one-args", arg: func(evm.Address, int) u256.U256 { return u256.One }},
	}
}

// try replays the plan on a fork, returning success when the trace shows a
// SELFDESTRUCT executing on the target.
func (k *Killer) try(target evm.Address, plan []core.Step, v argVariant) ([]core.Step, u256.U256, bool) {
	fork := k.Chain.Fork()
	attacker := fork.NewAccount(k.Funds)
	before := k.Funds
	for _, step := range plan {
		data := make([]byte, 4+32*step.NumArgs)
		copy(data, step.Selector[:])
		for i := 0; i < step.NumArgs; i++ {
			w := v.arg(attacker, i).Bytes32()
			copy(data[4+32*i:], w[:])
		}
		// Per-step value fallback: a payable step may need the variant's
		// value while a non-payable step rejects any value — try the
		// variant's choice first, then the alternative.
		values := []u256.U256{v.value}
		if !v.value.IsZero() {
			values = append(values, u256.Zero)
		} else {
			values = append(values, u256.FromUint64(10_000))
		}
		var r *chain.Receipt
		for _, val := range values {
			r = fork.Call(attacker, target, data, val)
			if r.Err == nil {
				break
			}
		}
		if r.Err != nil {
			// Leave failed intermediate steps behind; a later step might
			// still land.
			continue
		}
		for _, d := range r.Destroyed {
			if d == target {
				profit := fork.State.GetBalance(attacker).Sub(before)
				return plan, profit, true
			}
		}
	}
	return nil, u256.Zero, false
}

// Sweep exploits every flagged contract in the map, returning per-contract
// results plus aggregate counts — the Experiment 1 pipeline.
func (k *Killer) Sweep(reports map[evm.Address]*core.Report) *SweepStats {
	stats := &SweepStats{Results: map[evm.Address]*Result{}}
	for addr, rep := range reports {
		flagged := false
		for _, w := range rep.Warnings {
			if killable(w.Kind) {
				flagged = true
			}
		}
		if !flagged {
			continue
		}
		stats.Flagged++
		res := k.Exploit(addr, rep)
		stats.Results[addr] = res
		if res.Pinpointed {
			stats.Pinpointed++
		}
		if res.Destroyed {
			stats.Destroyed++
		}
	}
	return stats
}

// SweepStats aggregates a kill sweep.
type SweepStats struct {
	Flagged    int
	Pinpointed int
	Destroyed  int
	Results    map[evm.Address]*Result
}
