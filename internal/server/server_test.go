package server_test

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/minisol"
	"ethainter/internal/server"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(core.DefaultConfig()).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := buf.WriteString(readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		sb.Write(b[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestAnalyzeSourceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := post(t, ts, "/analyze", minisol.VictimSource)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep server.ReportJSON
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.PublicFunctions != 5 {
		t.Errorf("publicFunctions = %d", rep.PublicFunctions)
	}
	kinds := map[string]bool{}
	for _, w := range rep.Warnings {
		kinds[w.Kind] = true
		if w.Kind == "accessible selfdestruct" && len(w.Witness) != 3 {
			t.Errorf("composite witness = %v", w.Witness)
		}
	}
	if !kinds["accessible selfdestruct"] || !kinds["tainted selfdestruct"] {
		t.Errorf("missing composite kinds: %v", kinds)
	}
}

func TestAnalyzeHexEndpoint(t *testing.T) {
	ts := newTestServer(t)
	compiled := minisol.MustCompile(minisol.AccessibleSelfdestructSource)
	resp, body := post(t, ts, "/analyze", "0x"+hex.EncodeToString(compiled.Runtime))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep server.ReportJSON
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Warnings) == 0 {
		t.Error("no warnings for the unguarded kill")
	}
}

func TestCompileEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := post(t, ts, "/compile", minisol.SafeTokenSource)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out server.CompileJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.Runtime, "0x") || len(out.ABI) != 6 {
		t.Errorf("unexpected compile output: runtime prefix %q, abi %d", out.Runtime[:4], len(out.ABI))
	}
	for _, fn := range out.ABI {
		if fn.Name == "kill" && fn.Selector != "0x41c0e1b5" {
			t.Errorf("kill selector = %s", fn.Selector)
		}
	}
}

func TestExploitEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := post(t, ts, "/exploit", minisol.VictimSource)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out server.ExploitJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Pinpointed || !out.Destroyed {
		t.Fatalf("victim should be destroyed: %+v", out)
	}
	if len(out.Steps) != 3 {
		t.Errorf("steps = %v, want the 3-step escalation", out.Steps)
	}
	if out.ProfitWei == "0" {
		t.Log("note: 3-step witness sends funds to the pre-attack owner; profit may be zero")
	}
}

func TestErrorHandling(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		path, body string
		wantStatus int
	}{
		{"/analyze", "", http.StatusBadRequest},
		{"/analyze", "contract X {", http.StatusBadRequest},
		{"/analyze", "0xzz", http.StatusBadRequest},
		{"/compile", "not a contract", http.StatusBadRequest},
		{"/exploit", "contract X {}", http.StatusOK}, // nothing to exploit, still a report
	}
	for _, c := range cases {
		resp, body := post(t, ts, c.path, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("POST %s %q: status %d want %d (%s)", c.path, c.body, resp.StatusCode, c.wantStatus, body)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze: status %d", resp.StatusCode)
	}
	// Undecompilable bytecode is a 422, not a 500.
	resp2, body := post(t, ts, "/analyze", "0x60003556") // PUSH1 0; CALLDATALOAD; JUMP
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("undecompilable bytecode: status %d (%s)", resp2.StatusCode, body)
	}
}

func TestIndexAndHealth(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, resp); !strings.Contains(got, "/analyze") {
		t.Errorf("index missing usage text: %q", got)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: %d", resp.StatusCode)
	}
}
