package server

import "errors"

var (
	errSaturated   = errors.New("server saturated: too many in-flight requests")
	errGetRequired = errors.New("GET required")
)

// limiter bounds concurrently-served analysis requests with a semaphore.
// Acquisition never blocks: when the server is saturated the request is shed
// immediately with 503 + Retry-After, the backpressure mode appropriate for a
// bulk-analysis clientele that can simply resubmit (the alternative —
// queueing — only moves the timeout somewhere less observable). A nil sem
// admits everything (MaxInFlight <= 0); a nil *limiter marks a route that is
// not an analysis endpoint at all (no limiting, no in-flight gauge).
type limiter struct {
	sem chan struct{}
}

// newLimiter returns a limiter admitting n concurrent requests; n <= 0 is
// unlimited (but the route still counts toward the in-flight gauge).
func newLimiter(n int) *limiter {
	if n <= 0 {
		return &limiter{}
	}
	return &limiter{sem: make(chan struct{}, n)}
}

// tryAcquire claims a slot without blocking. Nil limiters and unlimited
// limiters always admit.
func (l *limiter) tryAcquire() bool {
	if l == nil || l.sem == nil {
		return true
	}
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// release frees a slot claimed by tryAcquire.
func (l *limiter) release() {
	if l != nil && l.sem != nil {
		<-l.sem
	}
}
