package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/follow"
	"ethainter/internal/minisol"
	"ethainter/internal/sched"
	"ethainter/internal/server"
	"ethainter/internal/u256"
)

// getWithETag performs GET /findings+query with an optional If-None-Match
// header and returns the status and the ETag response header.
func getWithETag(t *testing.T, ts *httptest.Server, query, ifNoneMatch string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/findings"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("ETag")
}

// TestFindingsETag pins the conditional-GET contract on /findings: a tag is
// always served, presenting it back yields a body-free 304, and a new
// settle invalidates it — the next conditional GET is a full 200 under a
// fresh tag. Stale and unrelated tags never shortcut to 304.
func TestFindingsETag(t *testing.T) {
	ch := chain.New()
	ch.DeployRuntime(minisol.MustCompile(minisol.TaintedOwnerSource).Runtime, u256.Zero)
	srv := server.New(core.DefaultConfig())
	sc := sched.New(srv.Cache(), 2)
	t.Cleanup(sc.Close)
	srv.UseScheduler(sc)
	f := follow.New(follow.Options{Source: ch, Scheduler: sc, Config: core.DefaultConfig()})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch up: %v", err)
	}
	srv.Follow = f
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status, tag := getWithETag(t, ts, "", "")
	if status != http.StatusOK || tag == "" {
		t.Fatalf("unconditional GET = %d, ETag %q; want 200 with a tag", status, tag)
	}

	// Matching tag => 304; so do a tag list and a wildcard.
	if s, _ := getWithETag(t, ts, "", tag); s != http.StatusNotModified {
		t.Errorf("If-None-Match exact = %d, want 304", s)
	}
	if s, _ := getWithETag(t, ts, "", `"bogus", `+tag); s != http.StatusNotModified {
		t.Errorf("If-None-Match list = %d, want 304", s)
	}
	if s, _ := getWithETag(t, ts, "", "*"); s != http.StatusNotModified {
		t.Errorf("If-None-Match wildcard = %d, want 304", s)
	}
	// Non-matching tag => full response, same tag.
	if s, got := getWithETag(t, ts, "", `"something-else"`); s != http.StatusOK || got != tag {
		t.Errorf("stale tag GET = %d, ETag %q; want 200 with %q", s, got, tag)
	}
	// The tag is filter-independent: a filtered view serves the index tag.
	if s, got := getWithETag(t, ts, "?findings=1", tag); s != http.StatusNotModified || got != tag {
		t.Errorf("filtered conditional GET = %d, ETag %q; want 304 with %q", s, got, tag)
	}

	// A new settle must invalidate: deploy one more contract, catch up, and
	// the previously-fresh tag now misses into a 200 under a new tag.
	ch.DeployRuntime(minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime, u256.Zero)
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("second catch up: %v", err)
	}
	status, tag2 := getWithETag(t, ts, "", tag)
	if status != http.StatusOK {
		t.Fatalf("conditional GET after settle = %d, want 200 (tag must be invalidated)", status)
	}
	if tag2 == tag || tag2 == "" {
		t.Fatalf("ETag after settle = %q, want a fresh tag != %q", tag2, tag)
	}
	if s, _ := getWithETag(t, ts, "", tag2); s != http.StatusNotModified {
		t.Errorf("fresh tag after settle = %d, want 304", s)
	}
}
