package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/follow"
	"ethainter/internal/minisol"
	"ethainter/internal/sched"
	"ethainter/internal/server"
	"ethainter/internal/u256"
)

// newFollowServer builds a server with an attached, caught-up follower over a
// three-contract chain, sharing one scheduler between the HTTP surface and
// the follow loop.
func newFollowServer(t *testing.T) (*httptest.Server, *follow.Follower, []string) {
	t.Helper()
	ch := chain.New()
	addrs := []string{
		ch.DeployRuntime(minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime, u256.Zero).String(), // block 1
		ch.DeployRuntime(minisol.MustCompile(minisol.SafeTokenSource).Runtime, u256.Zero).String(),              // block 2
		ch.DeployRuntime(minisol.MustCompile(minisol.TaintedOwnerSource).Runtime, u256.Zero).String(),           // block 3
	}
	srv := server.New(core.DefaultConfig())
	sc := sched.New(srv.Cache(), 2)
	t.Cleanup(sc.Close)
	srv.UseScheduler(sc)
	f := follow.New(follow.Options{Source: ch, Scheduler: sc, Config: core.DefaultConfig()})
	if err := f.CatchUp(context.Background()); err != nil {
		t.Fatalf("catch up: %v", err)
	}
	srv.Follow = f
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, f, addrs
}

func getFindings(t *testing.T, ts *httptest.Server, query string) (int, server.FindingsJSON) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/findings" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var out server.FindingsJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return resp.StatusCode, out
}

func TestFindingsEndpoint(t *testing.T) {
	ts, _, addrs := newFollowServer(t)

	status, all := getFindings(t, ts, "")
	if status != http.StatusOK || all.Count != 3 || len(all.Entries) != 3 {
		t.Fatalf("GET /findings = %d, count %d", status, all.Count)
	}
	for i, want := range addrs {
		if all.Entries[i].Address != want {
			t.Errorf("entry %d = %s, want %s (block order)", i, all.Entries[i].Address, want)
		}
	}

	status, byKind := getFindings(t, ts, "?kind=tainted+owner+variable")
	if status != http.StatusOK || byKind.Count != 1 || byKind.Entries[0].Address != addrs[2] {
		t.Errorf("kind filter = %d, %+v", status, byKind)
	}

	status, byAddr := getFindings(t, ts, "?address="+addrs[1])
	if status != http.StatusOK || byAddr.Count != 1 || byAddr.Entries[0].Address != addrs[1] {
		t.Errorf("address filter = %d, %+v", status, byAddr)
	}

	status, byBlock := getFindings(t, ts, "?from=2&to=3")
	if status != http.StatusOK || byBlock.Count != 2 {
		t.Errorf("block filter = %d, count %d, want 2", status, byBlock.Count)
	}

	status, flagged := getFindings(t, ts, "?findings=1")
	if status != http.StatusOK || flagged.Count != 2 {
		t.Errorf("findings filter = %d, count %d, want 2", status, flagged.Count)
	}
	for _, e := range flagged.Entries {
		if len(e.Warnings) == 0 {
			t.Errorf("findings-only entry %s has no warnings", e.Address)
		}
	}
}

func TestFindingsEndpointErrors(t *testing.T) {
	ts, _, _ := newFollowServer(t)

	if status, _ := getFindings(t, ts, "?kind=nonsense"); status != http.StatusBadRequest {
		t.Errorf("unknown kind = %d, want 400", status)
	}
	if status, _ := getFindings(t, ts, "?from=abc"); status != http.StatusBadRequest {
		t.Errorf("bad block = %d, want 400", status)
	}
	resp, err := http.Post(ts.URL+"/findings", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /findings = %d, want 405", resp.StatusCode)
	}

	// A server without a follower 404s instead of panicking.
	bare := httptest.NewServer(server.New(core.DefaultConfig()).Handler())
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/findings")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /findings without follower = %d, want 404", resp.StatusCode)
	}
}

func TestStatszFollowSection(t *testing.T) {
	ts, f, _ := newFollowServer(t)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.StatszJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Follow == nil {
		t.Fatal("/statsz has no follow section despite an attached follower")
	}
	want := f.Stats()
	if out.Follow.Entries != want.Entries || out.Follow.Launched != want.Launched {
		t.Errorf("follow section %+v, want %+v", out.Follow, want)
	}
	if out.Follow.Lag != 0 || out.Follow.Cursor != want.Cursor {
		t.Errorf("caught-up follower: lag %d, cursor %d", out.Follow.Lag, out.Follow.Cursor)
	}

	// Without a follower, the section is omitted entirely.
	bare := httptest.NewServer(server.New(core.DefaultConfig()).Handler())
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, present := m["follow"]; present {
		t.Error("/statsz carries a follow section without a follower")
	}
}
