package server_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/crypto"
	"ethainter/internal/minisol"
	"ethainter/internal/server"
)

// TestPeerCacheEndpoint exercises GET /cache/{hash}/{fp} end to end: a held
// entry round-trips byte-for-byte at the path core.PeerCachePath emits, a
// key this replica doesn't hold is a clean 404, and malformed components
// are 400s rather than lookups.
func TestPeerCacheEndpoint(t *testing.T) {
	cfg := core.DefaultConfig()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code := minisol.MustCompile(minisol.VictimSource).Runtime
	if _, err := srv.Cache().AnalyzeBytecode(code, cfg); err != nil {
		t.Fatalf("seeding cache: %v", err)
	}
	hash := crypto.Keccak256(code)
	fp := cfg.Fingerprint()

	resp, err := http.Get(ts.URL + core.PeerCachePath(hash, fp))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET held entry = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q, want application/octet-stream", ct)
	}
	want, ok := srv.Cache().EntryBytes(hash, fp)
	if !ok || !bytes.Equal(body, want) {
		t.Fatalf("served %d bytes, want the %d EntryBytes bytes exactly", len(body), len(want))
	}

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := status(core.PeerCachePath(hash, fp+1)); s != http.StatusNotFound {
		t.Errorf("unheld fingerprint = %d, want 404", s)
	}
	var missing [32]byte
	if s := status(core.PeerCachePath(missing, fp)); s != http.StatusNotFound {
		t.Errorf("unheld hash = %d, want 404", s)
	}
	if s := status("/cache/deadbeef/0000000000000000"); s != http.StatusBadRequest {
		t.Errorf("short hash = %d, want 400", s)
	}
	if s := status("/cache/" + strings.Repeat("zz", 32) + "/0000000000000000"); s != http.StatusBadRequest {
		t.Errorf("non-hex hash = %d, want 400", s)
	}
	if s := status("/cache/" + strings.Repeat("ab", 32) + "/nothex"); s != http.StatusBadRequest {
		t.Errorf("non-hex fingerprint = %d, want 400", s)
	}
}
