// Package server exposes the analyzer as an HTTP service — the reproduction's
// analog of the paper's live deployment at contract-library.com, where
// Ethainter results are "updated in quasi-real time". Endpoints accept
// bytecode or mini-Solidity source and return JSON reports; an exploit
// endpoint runs the full Ethainter-Kill pipeline on an ephemeral testbed.
//
// The serving path is production-shaped: analysis requests share one
// content-addressed, sharded core.Cache (repeat bytecode is served from
// memory, the dominant real-world workload per Section 6), /batch plans its
// inputs through a server-wide sched.Scheduler (unique (bytecode, config)
// pairs analyzed exactly once over a bounded pool, duplicates fanned out —
// including across concurrent requests), every analysis runs under the
// request context plus an optional per-request deadline, an in-flight
// limiter sheds load with 503 when saturated, and /statsz exposes cache,
// scheduler, and shard counters, per-endpoint request/error counts, an
// in-flight gauge, and latency histograms.
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/follow"
	"ethainter/internal/kill"
	"ethainter/internal/minisol"
	"ethainter/internal/sched"
	"ethainter/internal/u256"
)

// Server handles analysis requests. All analysis endpoints share one
// core.Cache, so repeated submissions of identical bytecode cost one lookup —
// the unique-contract deduplication that makes the paper's quasi-real-time
// deployment affordable.
type Server struct {
	cfg   core.Config
	cache *core.Cache

	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Timeout bounds each analysis request (and each whole /batch call);
	// zero means no per-request deadline. Expired deadlines surface as 504.
	Timeout time.Duration
	// MaxInFlight bounds concurrently-served analysis requests; excess
	// requests are shed with 503. Zero or negative means unlimited.
	MaxInFlight int
	// SweepWorkers bounds the server-wide sweep scheduler's analysis pool,
	// shared by every /batch request (non-positive selects one worker per
	// CPU). Set it before the first request: the scheduler is created
	// lazily on first use and the pool size is fixed from then on.
	SweepWorkers int
	// MaxBatchItems bounds the number of inputs one /batch call may carry
	// (default defaultMaxBatchItems).
	MaxBatchItems int
	// Logger, when non-nil, receives one structured access-log record per
	// request (method, route, status, duration, bytes, encode errors).
	Logger *slog.Logger
	// Follow, when non-nil, is the chain follower whose live findings index
	// backs GET /findings and whose loop counters appear on /statsz. Set it
	// before serving.
	Follow *follow.Follower

	metrics *metrics

	schedOnce sync.Once
	sched     *sched.Scheduler
}

// New returns a server analyzing with the given configuration and a fresh
// default-capacity cache.
func New(cfg core.Config) *Server {
	return NewWithCache(cfg, core.NewCache(0))
}

// NewWithCache returns a server sharing the given analysis cache — use it to
// share one cache across several serving surfaces or to bound its capacity.
func NewWithCache(cfg core.Config, cache *core.Cache) *Server {
	if cache == nil {
		cache = core.NewCache(0)
	}
	return &Server{
		cfg:          cfg,
		cache:        cache,
		MaxBodyBytes: 1 << 20,
		metrics:      newMetrics(),
	}
}

// Cache returns the shared analysis cache (for stats inspection and tests).
func (s *Server) Cache() *core.Cache { return s.cache }

// scheduler returns the server-wide sweep scheduler, creating it (and its
// worker pool) on first use. One scheduler serves every /batch request for
// the server's lifetime, so identical bytecode in concurrent batches
// coalesces onto one computation across request boundaries.
func (s *Server) scheduler() *sched.Scheduler {
	s.schedOnce.Do(func() {
		s.sched = sched.New(s.cache, s.SweepWorkers)
	})
	return s.sched
}

// UseScheduler installs an externally-owned scheduler as the server-wide
// sweep scheduler, so a process embedding both the HTTP surface and a chain
// follower coalesces identical bytecode across the two. Call before the first
// request; a later call (or one after the lazy default was created) is a
// no-op. The caller keeps ownership and closes the scheduler itself.
func (s *Server) UseScheduler(sc *sched.Scheduler) {
	s.schedOnce.Do(func() { s.sched = sc })
}

// SchedStats returns a snapshot of the sweep scheduler's counters (creating
// the scheduler if no request has yet) — the /statsz source and test hook.
func (s *Server) SchedStats() sched.Stats { return s.scheduler().Stats() }

// Handler returns the HTTP routing table with per-endpoint instrumentation:
// analysis endpoints run behind the in-flight limiter; every endpoint is
// metered and access-logged.
func (s *Server) Handler() http.Handler {
	lim := newLimiter(s.MaxInFlight)
	mux := http.NewServeMux()
	mux.Handle("/healthz", s.instrument("/healthz", nil, s.handleHealth))
	mux.Handle("/statsz", s.instrument("/statsz", nil, s.handleStatsz))
	mux.Handle("/analyze", s.instrument("/analyze", lim, s.handleAnalyze))
	mux.Handle("/compile", s.instrument("/compile", lim, s.handleCompile))
	mux.Handle("/exploit", s.instrument("/exploit", lim, s.handleExploit))
	mux.Handle("/batch", s.instrument("/batch", lim, s.handleBatch))
	mux.Handle("/findings", s.instrument("/findings", nil, s.handleFindings))
	// Peer-fill: replicas configured with -cache-peers fetch entries here on
	// local cache misses. Outside the in-flight limiter — serving a cached
	// entry is a map lookup or one file read, and shedding it would force the
	// peer to recompute, the exact work the protocol exists to avoid.
	mux.Handle("GET /cache/{hash}/{fp}", s.instrument("/cache", nil, s.handlePeerCache))
	mux.Handle("/", s.instrument("/", nil, s.handleIndex))
	return mux
}

// WarningJSON is the wire form of one warning.
type WarningJSON struct {
	Kind    string   `json:"kind"`
	PC      int      `json:"pc"`
	Message string   `json:"message"`
	Slot    string   `json:"slot,omitempty"`
	Witness []string `json:"witness,omitempty"`
}

// ReportJSON is the wire form of an analysis report.
type ReportJSON struct {
	PublicFunctions int           `json:"publicFunctions"`
	Warnings        []WarningJSON `json:"warnings"`
}

func reportToJSON(rep *core.Report) ReportJSON {
	out := ReportJSON{PublicFunctions: rep.PublicFunctions, Warnings: []WarningJSON{}}
	for _, w := range rep.Warnings {
		wj := WarningJSON{Kind: w.Kind.String(), PC: w.PC, Message: w.Message}
		if w.Kind == core.TaintedOwner {
			wj.Slot = w.Slot.String()
		}
		for _, step := range w.Witness {
			wj.Witness = append(wj.Witness, fmt.Sprintf("0x%x", step.Selector))
		}
		out.Warnings = append(out.Warnings, wj)
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `ethainter analysis service

POST /analyze   hex runtime bytecode (or mini-Solidity source) -> JSON report
POST /batch     JSON array of inputs -> per-item JSON reports
POST /compile   mini-Solidity source -> JSON {runtime, deploy, abi}
POST /exploit   mini-Solidity source -> deploy + analyze + Ethainter-Kill
GET  /healthz
GET  /statsz    cache, request, and latency counters
`)
}

// requestContext derives the analysis context: the request's own context
// (cancelled on client disconnect) plus the per-request deadline when one is
// configured.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.Timeout)
	}
	return r.Context(), func() {}
}

// writeAnalysisError maps an analysis failure to a status: expired deadlines
// are 504 (the server gave up), client disconnects 503 (logged, though the
// client is gone), recovered analyzer panics 500 (our defect, not the
// client's), anything else — including deterministic decompilation-budget
// exhaustion — a 422 on the bytecode itself.
func writeAnalysisError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, errors.New("analysis deadline exceeded"))
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, errors.New("analysis cancelled"))
	case core.IsInternal(err):
		writeError(w, http.StatusInternalServerError, errors.New("internal analyzer error"))
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// classifyFailure buckets a failed analysis for the /statsz error taxonomy.
func classifyFailure(err error) failureClass {
	switch {
	case core.IsCancellation(err):
		return failCancel
	case core.IsBudgetExhaustion(err):
		return failBudget
	case core.IsInternal(err):
		return failPanic
	default:
		return failAnalysis
	}
}

// readBody loads the bounded request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err != nil {
		// Only an exceeded body bound is 413; any other read failure (short
		// write, aborted upload) is the client's malformed request.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		}
		return nil, false
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty body"))
		return nil, false
	}
	return body, true
}

// decodeInput interprets the body as hex bytecode when it is 0x-prefixed or
// looks like bare hex, otherwise compiles it as mini-Solidity source. A
// 0x-prefixed body is always bytecode: odd length or a stray non-hex rune is
// reported as invalid hex, never silently fed to the source compiler.
func decodeInput(body []byte) (runtime []byte, compiled *minisol.Compiled, err error) {
	text := strings.TrimSpace(string(body))
	if rest, ok := strings.CutPrefix(text, "0x"); ok {
		if len(rest) == 0 {
			return nil, nil, errors.New("invalid hex bytecode: empty after 0x prefix")
		}
		code, err := hex.DecodeString(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("invalid hex bytecode: %w", err)
		}
		return code, nil, nil
	}
	if isHexString(text) {
		code, err := hex.DecodeString(text)
		if err != nil {
			return nil, nil, fmt.Errorf("invalid hex bytecode: %w", err)
		}
		return code, nil, nil
	}
	compiled, err = minisol.CompileSource(text)
	if err != nil {
		return nil, nil, err
	}
	return compiled.Runtime, compiled, nil
}

func isHexString(s string) bool {
	if len(s) == 0 || len(s)%2 != 0 {
		return false
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdefABCDEF", c) {
			return false
		}
	}
	return true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	runtime, _, err := decodeInput(body)
	if err != nil {
		s.metrics.recordFailure("/analyze", failDecode)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	rep, err := s.cache.AnalyzeBytecodeContext(ctx, runtime, s.cfg)
	if err != nil {
		s.metrics.recordFailure("/analyze", classifyFailure(err))
		writeAnalysisError(w, err)
		return
	}
	s.metrics.recordStages(rep.Stats.Timings)
	writeJSON(w, http.StatusOK, reportToJSON(rep))
}

// CompileJSON is the wire form of a compilation result.
type CompileJSON struct {
	Runtime string    `json:"runtime"`
	Deploy  string    `json:"deploy"`
	ABI     []ABIJSON `json:"abi"`
}

// ABIJSON is one public function.
type ABIJSON struct {
	Name     string `json:"name"`
	Sig      string `json:"sig"`
	Selector string `json:"selector"`
	Payable  bool   `json:"payable"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	compiled, err := minisol.CompileSource(string(body))
	if err != nil {
		s.metrics.recordFailure("/compile", failDecode)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := CompileJSON{
		Runtime: "0x" + hex.EncodeToString(compiled.Runtime),
		Deploy:  "0x" + hex.EncodeToString(compiled.Deploy),
		ABI:     []ABIJSON{},
	}
	for _, fn := range compiled.ABI {
		out.ABI = append(out.ABI, ABIJSON{
			Name:     fn.Name,
			Sig:      fn.Sig,
			Selector: fmt.Sprintf("0x%x", fn.Selector),
			Payable:  fn.Payable,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ExploitJSON is the wire form of an Ethainter-Kill run.
type ExploitJSON struct {
	Report     ReportJSON `json:"report"`
	Pinpointed bool       `json:"pinpointed"`
	Destroyed  bool       `json:"destroyed"`
	Attempts   int        `json:"attempts"`
	Steps      []string   `json:"steps,omitempty"`
	ProfitWei  string     `json:"profitWei"`
}

func (s *Server) handleExploit(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	compiled, err := minisol.CompileSource(string(body))
	if err != nil {
		s.metrics.recordFailure("/exploit", failDecode)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	rep, err := s.cache.AnalyzeBytecodeContext(ctx, compiled.Runtime, s.cfg)
	if err != nil {
		s.metrics.recordFailure("/exploit", classifyFailure(err))
		writeAnalysisError(w, err)
		return
	}
	s.metrics.recordStages(rep.Stats.Timings)
	// Ephemeral testbed: deploy, fund, attack a fork.
	c := chain.New()
	deployer := c.NewAccount(u256.MustHex("0xffffffffffff"))
	receipt := c.Deploy(deployer, compiled.Deploy, u256.Zero)
	if receipt.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("deploy failed: %w", receipt.Err))
		return
	}
	c.State.AddBalance(receipt.Created, u256.FromUint64(1_000_000))
	c.State.Finalize()
	res := kill.New(c).Exploit(receipt.Created, rep)
	out := ExploitJSON{
		Report:     reportToJSON(rep),
		Pinpointed: res.Pinpointed,
		Destroyed:  res.Destroyed,
		Attempts:   res.Attempts,
		ProfitWei:  res.Profit.Dec(),
	}
	for _, step := range res.Steps {
		out.Steps = append(out.Steps, fmt.Sprintf("0x%x", step.Selector))
	}
	writeJSON(w, http.StatusOK, out)
}

// encodeErrorNoter is implemented by the access-log response recorder; when
// writeJSON fails to encode mid-response, the failure lands in the access log
// instead of being discarded.
type encodeErrorNoter interface {
	noteEncodeError(error)
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		if n, ok := w.(encodeErrorNoter); ok {
			n.noteEncodeError(err)
		}
		return err
	}
	return nil
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
