// Package server exposes the analyzer as an HTTP service — the reproduction's
// analog of the paper's live deployment at contract-library.com, where
// Ethainter results are "updated in quasi-real time". Endpoints accept
// bytecode or mini-Solidity source and return JSON reports; an exploit
// endpoint runs the full Ethainter-Kill pipeline on an ephemeral testbed.
package server

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/kill"
	"ethainter/internal/minisol"
	"ethainter/internal/u256"
)

// Server handles analysis requests. It is stateless per request; the zero
// cost of our analysis makes per-request work practical, like the paper's
// quasi-real-time deployment.
type Server struct {
	cfg core.Config
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
}

// New returns a server analyzing with the given configuration.
func New(cfg core.Config) *Server {
	return &Server{cfg: cfg, MaxBodyBytes: 1 << 20}
}

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/exploit", s.handleExploit)
	mux.HandleFunc("/", s.handleIndex)
	return mux
}

// WarningJSON is the wire form of one warning.
type WarningJSON struct {
	Kind    string   `json:"kind"`
	PC      int      `json:"pc"`
	Message string   `json:"message"`
	Slot    string   `json:"slot,omitempty"`
	Witness []string `json:"witness,omitempty"`
}

// ReportJSON is the wire form of an analysis report.
type ReportJSON struct {
	PublicFunctions int           `json:"publicFunctions"`
	Warnings        []WarningJSON `json:"warnings"`
}

func reportToJSON(rep *core.Report) ReportJSON {
	out := ReportJSON{PublicFunctions: rep.PublicFunctions, Warnings: []WarningJSON{}}
	for _, w := range rep.Warnings {
		wj := WarningJSON{Kind: w.Kind.String(), PC: w.PC, Message: w.Message}
		if w.Kind == core.TaintedOwner {
			wj.Slot = w.Slot.String()
		}
		for _, step := range w.Witness {
			wj.Witness = append(wj.Witness, fmt.Sprintf("0x%x", step.Selector))
		}
		out.Warnings = append(out.Warnings, wj)
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `ethainter analysis service

POST /analyze   hex runtime bytecode (or mini-Solidity source) -> JSON report
POST /compile   mini-Solidity source -> JSON {runtime, deploy, abi}
POST /exploit   mini-Solidity source -> deploy + analyze + Ethainter-Kill
GET  /healthz
`)
}

// readBody loads the bounded request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return nil, false
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty body"))
		return nil, false
	}
	return body, true
}

// decodeInput interprets the body as hex bytecode when it looks like hex,
// otherwise compiles it as source.
func decodeInput(body []byte) (runtime []byte, compiled *minisol.Compiled, err error) {
	text := strings.TrimSpace(string(body))
	hexText := strings.TrimPrefix(text, "0x")
	if isHexString(hexText) {
		code, err := hex.DecodeString(hexText)
		if err != nil {
			return nil, nil, err
		}
		return code, nil, nil
	}
	compiled, err = minisol.CompileSource(text)
	if err != nil {
		return nil, nil, err
	}
	return compiled.Runtime, compiled, nil
}

func isHexString(s string) bool {
	if len(s) == 0 || len(s)%2 != 0 {
		return false
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdefABCDEF", c) {
			return false
		}
	}
	return true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	runtime, _, err := decodeInput(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := core.AnalyzeBytecode(runtime, s.cfg)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, reportToJSON(rep))
}

// CompileJSON is the wire form of a compilation result.
type CompileJSON struct {
	Runtime string    `json:"runtime"`
	Deploy  string    `json:"deploy"`
	ABI     []ABIJSON `json:"abi"`
}

// ABIJSON is one public function.
type ABIJSON struct {
	Name     string `json:"name"`
	Sig      string `json:"sig"`
	Selector string `json:"selector"`
	Payable  bool   `json:"payable"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	compiled, err := minisol.CompileSource(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := CompileJSON{
		Runtime: "0x" + hex.EncodeToString(compiled.Runtime),
		Deploy:  "0x" + hex.EncodeToString(compiled.Deploy),
		ABI:     []ABIJSON{},
	}
	for _, fn := range compiled.ABI {
		out.ABI = append(out.ABI, ABIJSON{
			Name:     fn.Name,
			Sig:      fn.Sig,
			Selector: fmt.Sprintf("0x%x", fn.Selector),
			Payable:  fn.Payable,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ExploitJSON is the wire form of an Ethainter-Kill run.
type ExploitJSON struct {
	Report     ReportJSON `json:"report"`
	Pinpointed bool       `json:"pinpointed"`
	Destroyed  bool       `json:"destroyed"`
	Attempts   int        `json:"attempts"`
	Steps      []string   `json:"steps,omitempty"`
	ProfitWei  string     `json:"profitWei"`
}

func (s *Server) handleExploit(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	compiled, err := minisol.CompileSource(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := core.AnalyzeBytecode(compiled.Runtime, s.cfg)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Ephemeral testbed: deploy, fund, attack a fork.
	c := chain.New()
	deployer := c.NewAccount(u256.MustHex("0xffffffffffff"))
	receipt := c.Deploy(deployer, compiled.Deploy, u256.Zero)
	if receipt.Err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("deploy failed: %w", receipt.Err))
		return
	}
	c.State.AddBalance(receipt.Created, u256.FromUint64(1_000_000))
	c.State.Finalize()
	res := kill.New(c).Exploit(receipt.Created, rep)
	out := ExploitJSON{
		Report:     reportToJSON(rep),
		Pinpointed: res.Pinpointed,
		Destroyed:  res.Destroyed,
		Attempts:   res.Attempts,
		ProfitWei:  res.Profit.Dec(),
	}
	for _, step := range res.Steps {
		out.Steps = append(out.Steps, fmt.Sprintf("0x%x", step.Selector))
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
