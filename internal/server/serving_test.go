package server_test

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/minisol"
	"ethainter/internal/server"
)

// newServer returns the server value itself (for field configuration and
// cache inspection) alongside a test HTTP server around its handler.
func newServer(t *testing.T, mutate func(*server.Server)) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(core.DefaultConfig())
	if mutate != nil {
		mutate(srv)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func killableHex(t *testing.T) string {
	t.Helper()
	return "0x" + hex.EncodeToString(minisol.MustCompile(minisol.AccessibleSelfdestructSource).Runtime)
}

// TestDecodeInputStatuses is the table-driven pin for the decode bugfixes: a
// 0x-prefixed body is always treated as hex bytecode — odd length or a stray
// non-hex rune gets a clear 400, never a baffling mini-Solidity compile
// error — while bare hex and source bodies keep working.
func TestDecodeInputStatuses(t *testing.T) {
	_, ts := newServer(t, nil)
	compiled := minisol.MustCompile(minisol.AccessibleSelfdestructSource)
	bare := hex.EncodeToString(compiled.Runtime)

	cases := []struct {
		name, body  string
		wantStatus  int
		wantMessage string
	}{
		{"prefixed hex", "0x" + bare, http.StatusOK, ""},
		{"bare hex", bare, http.StatusOK, ""},
		{"odd-length 0x body", "0x" + bare[:len(bare)-1], http.StatusBadRequest, "invalid hex bytecode"},
		{"non-hex rune after 0x", "0xzz", http.StatusBadRequest, "invalid hex bytecode"},
		{"0x then source-ish text", "0xcontract X {}", http.StatusBadRequest, "invalid hex bytecode"},
		{"bare 0x", "0x", http.StatusBadRequest, "invalid hex bytecode"},
		{"source body", minisol.AccessibleSelfdestructSource, http.StatusOK, ""},
		{"broken source", "contract X {", http.StatusBadRequest, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts, "/analyze", c.body)
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status = %d want %d (%s)", resp.StatusCode, c.wantStatus, body)
			}
			if c.wantMessage != "" && !strings.Contains(string(body), c.wantMessage) {
				t.Errorf("body %q does not mention %q", body, c.wantMessage)
			}
		})
	}
}

// TestMethodNotAllowedHeader pins the Allow header on 405 responses.
func TestMethodNotAllowedHeader(t *testing.T) {
	_, ts := newServer(t, nil)
	for _, path := range []string{"/analyze", "/compile", "/exploit", "/batch"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("GET %s: Allow = %q, want %q", path, allow, http.MethodPost)
		}
	}
	// /statsz is GET-only and advertises that.
	resp, err := http.Post(ts.URL+"/statsz", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodGet {
		t.Errorf("POST /statsz: status %d Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestBodyReadStatuses pins 413-vs-400: only an exceeded MaxBodyBytes bound
// is 413; any other body-read failure is the client's 400.
func TestBodyReadStatuses(t *testing.T) {
	srv, ts := newServer(t, func(s *server.Server) { s.MaxBodyBytes = 16 })
	resp, body := post(t, ts, "/analyze", strings.Repeat("a", 64))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d (%s)", resp.StatusCode, body)
	}

	// A body reader that fails mid-read is not a 413 — exercised directly
	// against the handler, since a real client cannot easily truncate.
	req := httptest.NewRequest(http.MethodPost, "/analyze", failingReader{})
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusBadRequest {
		t.Errorf("failing body read: status %d, want 400 (%s)", rw.Code, rw.Body)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("connection torn down") }

// TestBatchEndpoint runs a mixed batch: valid bytecode (twice — the duplicate
// must be served from the shared cache), source, and one invalid input that
// fails alone without failing its siblings.
func TestBatchEndpoint(t *testing.T) {
	srv, ts := newServer(t, nil)
	hexBody := killableHex(t)
	inputs := []string{hexBody, minisol.VictimSource, "0xzz", hexBody}
	payload, err := json.Marshal(inputs)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts, "/batch", string(payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out server.BatchJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != len(inputs) || out.Failed != 1 {
		t.Fatalf("items = %d failed = %d, want %d/1 (%s)", len(out.Items), out.Failed, len(inputs), body)
	}
	for i, item := range out.Items {
		if item.Index != i {
			t.Errorf("item %d: index %d out of order", i, item.Index)
		}
	}
	for _, i := range []int{0, 1, 3} {
		if out.Items[i].Report == nil || out.Items[i].Error != "" {
			t.Errorf("item %d: want a report, got error %q", i, out.Items[i].Error)
		}
	}
	if out.Items[0].Report != nil && len(out.Items[0].Report.Warnings) == 0 {
		t.Error("Killable bytecode produced no warnings")
	}
	if !strings.Contains(out.Items[2].Error, "invalid hex bytecode") {
		t.Errorf("item 2 error = %q", out.Items[2].Error)
	}
	// The duplicate input never costs a second analysis: the scheduler's
	// dedup plan coalesces it before dispatch (or, failing that, the cache
	// serves it as a hit).
	cs, ss := srv.Cache().Stats(), srv.SchedStats()
	if cs.Hits+ss.Coalesced+ss.CacheHits < 1 {
		t.Errorf("duplicate batch input was neither coalesced nor a cache hit: cache %+v sched %+v", cs, ss)
	}
	if ss.Unique != 2 {
		t.Errorf("scheduler unique work = %d, want 2 (duplicate planned away)", ss.Unique)
	}
}

// TestBatchRejectsMalformed pins the request-level 400s of /batch.
func TestBatchRejectsMalformed(t *testing.T) {
	_, ts := newServer(t, func(s *server.Server) { s.MaxBatchItems = 2 })
	cases := []struct {
		name, body  string
		wantMessage string
	}{
		{"not json", "contract X {}", "JSON array"},
		{"empty array", "[]", "empty batch"},
		{"oversized batch", `["a","b","c"]`, "batch too large"},
	}
	for _, c := range cases {
		resp, body := post(t, ts, "/batch", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", c.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), c.wantMessage) {
			t.Errorf("%s: body %q does not mention %q", c.name, body, c.wantMessage)
		}
	}
}

// TestRequestTimeout pins deadline enforcement: with an immediately-expiring
// per-request budget the handler returns 504 without running the analysis to
// convergence, both on /analyze and per-item within /batch.
func TestRequestTimeout(t *testing.T) {
	_, ts := newServer(t, func(s *server.Server) { s.Timeout = time.Nanosecond })
	resp, body := post(t, ts, "/analyze", killableHex(t))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("/analyze under 1ns deadline: status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("timeout body %q does not mention the deadline", body)
	}

	payload := `["` + killableHex(t) + `"]`
	resp, body = post(t, ts, "/batch", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/batch under deadline: status %d (%s)", resp.StatusCode, body)
	}
	var out server.BatchJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != 1 || !strings.Contains(out.Items[0].Error, "deadline") {
		t.Errorf("batch item under expired deadline = %+v, want a per-item deadline error", out.Items[0])
	}
}

// TestStatszCounters drives repeat traffic and checks the observability
// surface: the cache hit counter rises on the repeated /analyze, request
// counts and latency histograms accumulate per endpoint, and errors are
// tallied separately.
func TestStatszCounters(t *testing.T) {
	_, ts := newServer(t, nil)
	hexBody := killableHex(t)
	for i := 0; i < 3; i++ {
		if resp, body := post(t, ts, "/analyze", hexBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if resp, _ := post(t, ts, "/analyze", "0xzz"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad analyze: status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statsz: status %d (%s)", resp.StatusCode, body)
	}
	var stats server.StatszJSON
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("decoding statsz: %v (%s)", err, body)
	}
	if stats.Cache.Hits < 2 {
		t.Errorf("cache hits = %d, want >= 2 from repeated /analyze", stats.Cache.Hits)
	}
	if stats.Cache.Misses < 1 || stats.Cache.HitRate <= 0 {
		t.Errorf("cache counters look dead: %+v", stats.Cache)
	}
	ep, ok := stats.Endpoints["/analyze"]
	if !ok {
		t.Fatalf("no /analyze endpoint entry: %v", stats.Endpoints)
	}
	if ep.Count != 4 || ep.Errors != 1 {
		t.Errorf("/analyze counters = %d requests / %d errors, want 4/1", ep.Count, ep.Errors)
	}
	if ep.Latency.Count != 4 || len(ep.Latency.Buckets) == 0 {
		t.Errorf("/analyze latency histogram = %+v, want 4 observations", ep.Latency)
	}
	var bucketSum uint64
	for _, b := range ep.Latency.Buckets {
		bucketSum += b.Count
	}
	if bucketSum+ep.Latency.OverMax != ep.Latency.Count {
		t.Errorf("histogram buckets sum to %d (+%d overflow), want %d",
			bucketSum, ep.Latency.OverMax, ep.Latency.Count)
	}
	if stats.InFlight != 0 {
		t.Errorf("inFlight = %d with no outstanding requests", stats.InFlight)
	}
	if stats.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", stats.UptimeSeconds)
	}
	// The stage accumulator covers the three successful analyses (cache hits
	// contribute the memoized breakdown) and shows real analysis time.
	if stats.Stages.Reports != 3 {
		t.Errorf("stage accumulator covers %d reports, want 3", stats.Stages.Reports)
	}
	if stats.Stages.Total() <= 0 {
		t.Errorf("stage timings sum to %v, want > 0: %+v", stats.Stages.Total(), stats.Stages)
	}
	if stats.Stages.Decompile <= 0 || stats.Stages.Fixpoint <= 0 {
		t.Errorf("decompile/fixpoint stages not populated: %+v", stats.Stages.StageTimings)
	}
	// The decompile sub-breakdown rides along for fresh analyses (cache hits
	// legitimately contribute zero, but at least one analysis here was fresh).
	if stats.Stages.DecompileValueSet <= 0 || stats.Stages.DecompileTranslate <= 0 {
		t.Errorf("decompile sub-stages not populated: %+v", stats.Stages.StageTimings)
	}
}

// TestRepeatAnalyzeServedFromCache is the acceptance pin: a repeated /analyze
// of identical bytecode is a cache hit observable via the stats counters.
func TestRepeatAnalyzeServedFromCache(t *testing.T) {
	srv, ts := newServer(t, nil)
	hexBody := killableHex(t)
	var first, second []byte
	for i := 0; i < 2; i++ {
		resp, body := post(t, ts, "/analyze", hexBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			first = body
		} else {
			second = body
		}
	}
	if string(first) != string(second) {
		t.Error("cached response differs from fresh response")
	}
	s := srv.Cache().Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want exactly 1 hit and 1 miss", s)
	}
}

// TestExploitSharesCache pins that /exploit analyses go through the same
// shared cache as /analyze.
func TestExploitSharesCache(t *testing.T) {
	srv, ts := newServer(t, nil)
	compiled := minisol.MustCompile(minisol.VictimSource)
	if resp, _ := post(t, ts, "/analyze", "0x"+hex.EncodeToString(compiled.Runtime)); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d", resp.StatusCode)
	}
	if resp, body := post(t, ts, "/exploit", minisol.VictimSource); resp.StatusCode != http.StatusOK {
		t.Fatalf("exploit: %d (%s)", resp.StatusCode, body)
	}
	if s := srv.Cache().Stats(); s.Hits != 1 {
		t.Errorf("exploit after analyze of the same runtime: stats %+v, want 1 hit", s)
	}
}

var _ io.Reader = failingReader{}
