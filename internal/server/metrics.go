package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/follow"
	"ethainter/internal/sched"
)

// numLatencyBuckets is the bucket count of the latency histogram (excluding
// the +Inf overflow bucket).
const numLatencyBuckets = 15

// latencyBuckets are the upper bounds of the request-latency histogram,
// spanning cache-hit lookups (sub-millisecond) through full Ethainter-Kill
// exploit runs (seconds).
var latencyBuckets = [numLatencyBuckets]time.Duration{
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram; counts[len(latencyBuckets)]
// is the +Inf overflow bucket.
type histogram struct {
	counts [numLatencyBuckets + 1]uint64
	sum    time.Duration
	total  uint64
}

func (h *histogram) observe(d time.Duration) {
	i := sort.Search(len(latencyBuckets), func(i int) bool { return d <= latencyBuckets[i] })
	h.counts[i]++
	h.sum += d
	h.total++
}

// failureClass buckets one failed analysis by cause — the error taxonomy of
// /statsz. Operators read it to tell hostile-input load (budget) from client
// impatience (cancellation) from analyzer defects (panic) from plain bad
// requests (decode).
type failureClass int

const (
	failDecode   failureClass = iota // undecodable input: bad hex, broken source
	failBudget                       // decompilation work budget exhausted (deterministic)
	failCancel                       // request deadline expired or client disconnected
	failPanic                        // analyzer panic recovered at the boundary
	failAnalysis                     // any other analysis failure (unresolved jumps, ...)
	numFailureClasses
)

// endpointStats are the per-route counters.
type endpointStats struct {
	count    uint64
	errors   uint64 // responses with status >= 400
	failures [numFailureClasses]uint64
	latency  histogram
}

// metrics aggregates the serving counters exposed on /statsz. Safe for
// concurrent use.
type metrics struct {
	start    time.Time
	inFlight atomic.Int64
	rejected atomic.Uint64 // requests shed by the in-flight limiter

	mu        sync.Mutex
	endpoints map[string]*endpointStats
	// stages sums the per-stage analysis breakdown of every report served,
	// over stageReports reports. A cache hit contributes the memoized
	// breakdown of the original computation, so the sums measure the analysis
	// cost represented by the traffic, not CPU burned by this process.
	stages       core.StageTimings
	stageReports uint64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: map[string]*endpointStats{}}
}

// recordStages accumulates one served report's stage breakdown.
func (m *metrics) recordStages(t core.StageTimings) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stages.Add(t)
	m.stageReports++
}

// observe records one finished request on its route.
func (m *metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.endpoint(route)
	es.count++
	if status >= 400 {
		es.errors++
	}
	es.latency.observe(d)
}

// recordFailure tallies one classified failure on a route. /batch records one
// per failed item, so its failure counts can exceed its request count.
func (m *metrics) recordFailure(route string, class failureClass) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.endpoint(route).failures[class]++
}

// endpoint returns the route's counters, creating them on first use. Callers
// hold m.mu.
func (m *metrics) endpoint(route string) *endpointStats {
	es := m.endpoints[route]
	if es == nil {
		es = &endpointStats{}
		m.endpoints[route] = es
	}
	return es
}

// BucketJSON is one histogram bucket: the count of requests at or under LeMs
// milliseconds (cumulative counts are left to the consumer).
type BucketJSON struct {
	LeMs  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// LatencyJSON is the wire form of one latency histogram.
type LatencyJSON struct {
	Count   uint64       `json:"count"`
	SumMs   float64      `json:"sum_ms"`
	MeanMs  float64      `json:"mean_ms"`
	Buckets []BucketJSON `json:"buckets"`
	OverMax uint64       `json:"over_max"`
}

// FailuresJSON is the wire form of one route's error taxonomy: failed
// analyses bucketed by cause. Decode is malformed input, DecompileBudget the
// deterministic work-budget exhaustion hostile bytecode trips, Cancellation
// an expired deadline or dropped client, InternalPanic a recovered analyzer
// defect, and Analysis everything else (unresolved jumps, stack underflow).
type FailuresJSON struct {
	Decode          uint64 `json:"decode"`
	DecompileBudget uint64 `json:"decompile_budget"`
	Cancellation    uint64 `json:"cancellation"`
	InternalPanic   uint64 `json:"internal_panic"`
	Analysis        uint64 `json:"analysis"`
}

// EndpointJSON is the wire form of one route's counters.
type EndpointJSON struct {
	Count    uint64       `json:"count"`
	Errors   uint64       `json:"errors"`
	Failures FailuresJSON `json:"failures"`
	Latency  LatencyJSON  `json:"latency"`
}

// CacheJSON is the wire form of the shared analysis cache's counters: the
// merged view plus the per-shard hit/miss split (one entry per shard, in
// shard order), so operators can spot skewed key distributions. When the
// server runs with -cache-dir, the embedded CacheStats also carries the disk
// tier's counters — per-shard disk hits/misses and the merged-view write,
// write-error, scrub, and live-entry totals.
type CacheJSON struct {
	core.CacheStats
	HitRate  float64           `json:"hitRate"`
	PerShard []core.CacheStats `json:"per_shard,omitempty"`
}

// StagesJSON is the wire form of the accumulated analysis stage breakdown:
// nanoseconds summed per stage over Reports served reports. The engine_*
// fields refine fixpoint_ns and stay zero unless requests ran through the
// Datalog engine.
type StagesJSON struct {
	Reports uint64 `json:"reports"`
	core.StageTimings
}

// StatszJSON is the /statsz response body. Sched carries the sweep
// scheduler's counters: submitted/coalesced/unique-work request counts, the
// cache fast-path hits, and the in-flight gauge of unique computations.
// Follow, present when a chain follower is attached, carries the follow-loop
// counters: cursor/head/lag, blocks and creations seen, analyses launched vs
// coalesced, and the settled index split.
type StatszJSON struct {
	UptimeSeconds float64                 `json:"uptime_s"`
	Cache         CacheJSON               `json:"cache"`
	Sched         sched.Stats             `json:"sched"`
	Follow        *follow.Stats           `json:"follow,omitempty"`
	InFlight      int64                   `json:"inFlight"`
	Rejected      uint64                  `json:"rejected"`
	Stages        StagesJSON              `json:"stages"`
	Endpoints     map[string]EndpointJSON `json:"endpoints"`
}

// snapshot renders the counters for /statsz.
func (m *metrics) snapshot(cache *core.Cache, schedStats sched.Stats, fol *follow.Follower) StatszJSON {
	out := StatszJSON{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Sched:         schedStats,
		InFlight:      m.inFlight.Load(),
		Rejected:      m.rejected.Load(),
		Endpoints:     map[string]EndpointJSON{},
	}
	if fol != nil {
		fs := fol.Stats()
		out.Follow = &fs
	}
	cs := cache.Stats()
	out.Cache = CacheJSON{CacheStats: cs, HitRate: cs.HitRate(), PerShard: cache.ShardStats()}

	m.mu.Lock()
	defer m.mu.Unlock()
	out.Stages = StagesJSON{Reports: m.stageReports, StageTimings: m.stages}
	for route, es := range m.endpoints {
		lj := LatencyJSON{
			Count:   es.latency.total,
			SumMs:   float64(es.latency.sum) / float64(time.Millisecond),
			OverMax: es.latency.counts[len(latencyBuckets)],
		}
		if es.latency.total > 0 {
			lj.MeanMs = lj.SumMs / float64(es.latency.total)
		}
		for i, le := range latencyBuckets {
			lj.Buckets = append(lj.Buckets, BucketJSON{
				LeMs:  float64(le) / float64(time.Millisecond),
				Count: es.latency.counts[i],
			})
		}
		out.Endpoints[route] = EndpointJSON{
			Count:  es.count,
			Errors: es.errors,
			Failures: FailuresJSON{
				Decode:          es.failures[failDecode],
				DecompileBudget: es.failures[failBudget],
				Cancellation:    es.failures[failCancel],
				InternalPanic:   es.failures[failPanic],
				Analysis:        es.failures[failAnalysis],
			},
			Latency: lj,
		}
	}
	return out
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errGetRequired)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache, s.SchedStats(), s.Follow))
}
