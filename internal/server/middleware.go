package server

import (
	"net/http"
	"time"
)

// responseRecorder captures the status code, byte count, and any JSON-encode
// failure of one response for the metrics and the access log.
type responseRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
	encodeErr   error
}

func (r *responseRecorder) WriteHeader(status int) {
	if !r.wroteHeader {
		r.status = status
		r.wroteHeader = true
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	if !r.wroteHeader {
		r.wroteHeader = true
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

func (r *responseRecorder) noteEncodeError(err error) {
	if r.encodeErr == nil {
		r.encodeErr = err
	}
}

// instrument wraps a handler with the serving middleware stack: in-flight
// limiting and the in-flight gauge (analysis routes, lim non-nil), per-route
// request/error/latency metrics, and structured access logging. Shed
// requests are metered and logged like any other response.
func (s *Server) instrument(route string, lim *limiter, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &responseRecorder{ResponseWriter: w, status: http.StatusOK}
		if !lim.tryAcquire() {
			s.metrics.rejected.Add(1)
			rec.Header().Set("Retry-After", "1")
			writeError(rec, http.StatusServiceUnavailable, errSaturated)
		} else {
			if lim != nil {
				s.metrics.inFlight.Add(1)
			}
			func() {
				defer func() {
					if lim != nil {
						s.metrics.inFlight.Add(-1)
					}
					lim.release()
				}()
				next(rec, r)
			}()
		}
		elapsed := time.Since(t0)
		s.metrics.observe(route, rec.status, elapsed)
		if s.Logger != nil {
			attrs := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(elapsed) / float64(time.Millisecond),
				"remote", r.RemoteAddr,
			}
			if rec.encodeErr != nil {
				attrs = append(attrs, "encode_error", rec.encodeErr.Error())
			}
			s.Logger.Info("request", attrs...)
		}
	})
}
