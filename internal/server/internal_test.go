package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/decompiler"
)

// TestLimiterShedsWhenSaturated drives the in-flight limiter to saturation
// deterministically: one request parks inside the handler, the next is shed
// with 503 + Retry-After, and a request after release is admitted again.
// Run under -race in CI: the limiter, gauge, and counters are all concurrent.
func TestLimiterShedsWhenSaturated(t *testing.T) {
	s := New(core.DefaultConfig())
	s.MaxInFlight = 1
	lim := newLimiter(1)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	blocking := s.instrument("/block", lim, func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release // closed once; re-entries pass straight through
		writeJSON(w, http.StatusOK, map[string]string{"status": "done"})
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rw := httptest.NewRecorder()
		blocking.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/block", nil))
	}()
	<-entered

	if got := s.metrics.inFlight.Load(); got != 1 {
		t.Errorf("inFlight gauge = %d with one parked request", got)
	}
	rw := httptest.NewRecorder()
	blocking.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/block", nil))
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d, want 503", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	var payload map[string]string
	if err := json.Unmarshal(rw.Body.Bytes(), &payload); err != nil || !strings.Contains(payload["error"], "saturated") {
		t.Errorf("503 body = %q", rw.Body)
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(release)
	wg.Wait()
	rw = httptest.NewRecorder()
	// The limiter slot is free again; this request must be admitted. Reuse
	// the handler but pre-close release so it returns immediately.
	blocking.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/block", nil))
	if rw.Code != http.StatusOK {
		t.Errorf("post-release request: status %d, want 200", rw.Code)
	}
	if got := s.metrics.inFlight.Load(); got != 0 {
		t.Errorf("inFlight gauge = %d after drain", got)
	}
}

// TestWriteJSONPropagatesEncodeError pins the bugfix that encoder failures
// are surfaced: writeJSON returns the error and notes it on the response
// recorder, from where the access log picks it up.
func TestWriteJSONPropagatesEncodeError(t *testing.T) {
	rec := &responseRecorder{ResponseWriter: httptest.NewRecorder(), status: http.StatusOK}
	if err := writeJSON(rec, http.StatusOK, math.NaN()); err == nil {
		t.Fatal("encoding NaN did not fail")
	}
	if rec.encodeErr == nil {
		t.Fatal("encode error was not noted on the recorder")
	}

	// End to end: a handler whose response cannot be encoded lands the
	// failure in the structured access log.
	var buf bytes.Buffer
	s := New(core.DefaultConfig())
	s.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	h := s.instrument("/nan", nil, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, math.Inf(1))
	})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/nan", nil))
	if !strings.Contains(buf.String(), "encode_error") {
		t.Errorf("access log missing encode_error: %q", buf.String())
	}
}

// TestAccessLogFields pins the structured access-log record shape.
func TestAccessLogFields(t *testing.T) {
	var buf bytes.Buffer
	s := New(core.DefaultConfig())
	s.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	s.Handler().ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not one JSON record: %v (%q)", err, buf.String())
	}
	for _, key := range []string{"method", "path", "route", "status", "bytes", "duration_ms", "remote"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("access log record missing %q: %v", key, rec)
		}
	}
	if rec["status"] != float64(http.StatusOK) || rec["route"] != "/healthz" {
		t.Errorf("unexpected access log record: %v", rec)
	}
}

// TestFailureClassification pins the error-taxonomy mapping both ways: the
// failure class each analysis error lands in on /statsz, and the HTTP status
// writeAnalysisError assigns it. A recovered analyzer panic is the one class
// that cannot be provoked end to end without an analyzer bug, so the mapping
// is pinned here directly.
func TestFailureClassification(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantClass  failureClass
		wantStatus int
	}{
		{"deadline", context.DeadlineExceeded, failCancel, http.StatusGatewayTimeout},
		{"cancel", context.Canceled, failCancel, http.StatusServiceUnavailable},
		{"budget", &decompiler.BudgetError{Resource: "contexts", Limit: 1}, failBudget, http.StatusUnprocessableEntity},
		{"panic", &core.PanicError{Value: "index out of range"}, failPanic, http.StatusInternalServerError},
		{"other", errors.New("unresolved jump target"), failAnalysis, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := classifyFailure(c.err); got != c.wantClass {
				t.Errorf("classifyFailure(%v) = %d, want %d", c.err, got, c.wantClass)
			}
			rw := httptest.NewRecorder()
			writeAnalysisError(rw, c.err)
			if rw.Code != c.wantStatus {
				t.Errorf("writeAnalysisError(%v) status = %d, want %d", c.err, rw.Code, c.wantStatus)
			}
		})
	}
	// The 500 body must not leak the panic value to clients.
	rw := httptest.NewRecorder()
	writeAnalysisError(rw, &core.PanicError{Value: "secret internal state"})
	if strings.Contains(rw.Body.String(), "secret") {
		t.Errorf("500 body leaks the panic value: %s", rw.Body)
	}
}

// TestHistogramBuckets pins the bucket search: observations land in the
// first bucket whose bound is >= the sample, overflow in the +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(latencyBuckets[0] / 2)
	h.observe(latencyBuckets[3])
	h.observe(latencyBuckets[numLatencyBuckets-1] * 2)
	if h.counts[0] != 1 || h.counts[3] != 1 || h.counts[numLatencyBuckets] != 1 {
		t.Errorf("bucket counts = %v", h.counts)
	}
	if h.total != 3 {
		t.Errorf("total = %d", h.total)
	}
}
