package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ethainter/internal/follow"
)

// FindingsJSON is the GET /findings response body: the settled entries of the
// attached follower's index matching the query, sorted by (block, address).
type FindingsJSON struct {
	Count   int            `json:"count"`
	Entries []follow.Entry `json:"entries"`
}

// handleFindings serves the live findings index of the attached chain
// follower. Query parameters: kind (vulnerability class name), address
// (0x-prefixed contract address), from/to (install block range, inclusive),
// findings=1 (entries with at least one warning only).
func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errGetRequired)
		return
	}
	if s.Follow == nil {
		writeError(w, http.StatusNotFound, errors.New("no chain follower attached to this server"))
		return
	}
	q := r.URL.Query()
	var f follow.Filter
	if kind := q.Get("kind"); kind != "" {
		if !follow.KnownKind(kind) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown vulnerability kind %q", kind))
			return
		}
		f.Kind = kind
	}
	f.Address = q.Get("address")
	var err error
	if f.FromBlock, err = blockParam(q.Get("from")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if f.ToBlock, err = blockParam(q.Get("to")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	f.WithFindings = q.Get("findings") == "1" || q.Get("findings") == "true"

	entries := s.Follow.Snapshot(f)
	if entries == nil {
		entries = []follow.Entry{}
	}
	writeJSON(w, http.StatusOK, FindingsJSON{Count: len(entries), Entries: entries})
}

// blockParam parses one optional block-number query parameter.
func blockParam(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid block number %q", s)
	}
	return n, nil
}
