package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ethainter/internal/follow"
)

// FindingsJSON is the GET /findings response body: the settled entries of the
// attached follower's index matching the query, sorted by (block, address).
type FindingsJSON struct {
	Count   int            `json:"count"`
	Entries []follow.Entry `json:"entries"`
}

// handleFindings serves the live findings index of the attached chain
// follower. Query parameters: kind (vulnerability class name), address
// (0x-prefixed contract address), from/to (install block range, inclusive),
// findings=1 (entries with at least one warning only).
func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errGetRequired)
		return
	}
	if s.Follow == nil {
		writeError(w, http.StatusNotFound, errors.New("no chain follower attached to this server"))
		return
	}
	q := r.URL.Query()
	var f follow.Filter
	if kind := q.Get("kind"); kind != "" {
		if !follow.KnownKind(kind) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown vulnerability kind %q", kind))
			return
		}
		f.Kind = kind
	}
	f.Address = q.Get("address")
	var err error
	if f.FromBlock, err = blockParam(q.Get("from")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if f.ToBlock, err = blockParam(q.Get("to")); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	f.WithFindings = q.Get("findings") == "1" || q.Get("findings") == "true"

	// Conditional GET on the index digest: the ETag covers the whole settled
	// index, so it is conservative for filtered views — any settle refreshes
	// every filter's tag, never the reverse — and distinct filters live at
	// distinct URLs, so caches never cross-serve them. Pollers that present
	// the tag back via If-None-Match pay zero body bytes while nothing new
	// settles; the digest itself is memoized per index generation, so the
	// fast path costs no re-serialization either.
	etag := fmt.Sprintf(`"0x%x"`, s.Follow.Digest())
	w.Header().Set("ETag", etag)
	if ifNoneMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	entries := s.Follow.Snapshot(f)
	if entries == nil {
		entries = []follow.Entry{}
	}
	writeJSON(w, http.StatusOK, FindingsJSON{Count: len(entries), Entries: entries})
}

// ifNoneMatch reports whether the If-None-Match header value matches the
// entity tag: "*", the exact tag, or any member of a comma-separated list
// (weak-comparison W/ prefixes tolerated — the digest tag is content-exact,
// so weak and strong comparison coincide here).
func ifNoneMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// blockParam parses one optional block-number query parameter.
func blockParam(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid block number %q", s)
	}
	return n, nil
}
