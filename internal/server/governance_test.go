package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/decompiler"
	"ethainter/internal/server"
)

// hostileHex loads one adversarial bytecode from the decompiler's committed
// corpus as a 0x-prefixed /analyze body.
func hostileHex(t *testing.T, name string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "decompiler", "testdata", "hostile", name))
	if err != nil {
		t.Fatalf("hostile corpus: %v", err)
	}
	return "0x" + strings.TrimSpace(string(raw))
}

func getStats(t *testing.T, ts *httptest.Server) server.StatszJSON {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatszJSON
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	return stats
}

// TestBatchShortCircuitAfterDeadline pins the /batch bugfix: once the shared
// request deadline expires, remaining items are short-circuited before decode
// and the scheduler refuses dead-context submissions, so every remaining item
// gets a per-item deadline error and no analysis is launched against the dead
// context — the cache records zero lookups.
func TestBatchShortCircuitAfterDeadline(t *testing.T) {
	srv, ts := newServer(t, func(s *server.Server) {
		s.Timeout = time.Nanosecond
		s.SweepWorkers = 2
	})
	inputs := make([]string, 8)
	for i := range inputs {
		inputs[i] = killableHex(t)
	}
	payload, err := json.Marshal(inputs)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts, "/batch", string(payload))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out server.BatchJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Failed != len(inputs) {
		t.Fatalf("failed = %d, want all %d items (%s)", out.Failed, len(inputs), body)
	}
	for _, item := range out.Items {
		if item.Report != nil || !strings.Contains(item.Error, "deadline") {
			t.Errorf("item %d = %+v, want a deadline error", item.Index, item)
		}
	}
	// The short-circuit must fire before decode and analysis: nothing reached
	// the cache.
	if s := srv.Cache().Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("cache touched despite expired deadline: %+v", s)
	}
	stats := getStats(t, ts)
	if got := stats.Endpoints["/batch"].Failures.Cancellation; got != uint64(len(inputs)) {
		t.Errorf("/batch cancellation failures = %d, want %d", got, len(inputs))
	}
}

// TestStatszSchedCounters pins the scheduler/shard observability of /statsz:
// a duplicated /batch moves the submitted/unique/coalesced counters, the
// in-flight gauge settles back to zero, and the cache section carries a
// per-shard split that sums to the merged view.
func TestStatszSchedCounters(t *testing.T) {
	_, ts := newServer(t, nil)
	dup := killableHex(t)
	payload, err := json.Marshal([]string{dup, dup, dup})
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := post(t, ts, "/batch", string(payload)); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d (%s)", resp.StatusCode, body)
	}

	stats := getStats(t, ts)
	if stats.Sched.Submitted != 3 || stats.Sched.Unique != 1 || stats.Sched.Coalesced != 2 {
		t.Errorf("sched counters = %+v, want 3 submitted / 1 unique / 2 coalesced", stats.Sched)
	}
	if stats.Sched.InFlight != 0 {
		t.Errorf("sched in-flight gauge = %d after batch drained", stats.Sched.InFlight)
	}
	if stats.Sched.Workers <= 0 {
		t.Errorf("sched workers = %d, want a positive pool size", stats.Sched.Workers)
	}
	if len(stats.Cache.PerShard) != stats.Cache.Shards || stats.Cache.Shards <= 0 {
		t.Fatalf("per-shard split has %d entries, shard count %d", len(stats.Cache.PerShard), stats.Cache.Shards)
	}
	var hits, misses uint64
	for _, sh := range stats.Cache.PerShard {
		hits += sh.Hits
		misses += sh.Misses
	}
	if hits != stats.Cache.Hits || misses != stats.Cache.Misses {
		t.Errorf("per-shard sums (%d hits, %d misses) diverge from merged view (%d, %d)",
			hits, misses, stats.Cache.Hits, stats.Cache.Misses)
	}
}

// TestStatszFailureTaxonomy drives one request into each failure class and
// checks the per-endpoint counters that separate hostile input from client
// impatience from malformed requests.
func TestStatszFailureTaxonomy(t *testing.T) {
	t.Run("decode", func(t *testing.T) {
		_, ts := newServer(t, nil)
		if resp, _ := post(t, ts, "/analyze", "0xzz"); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if got := getStats(t, ts).Endpoints["/analyze"].Failures.Decode; got != 1 {
			t.Errorf("decode failures = %d, want 1", got)
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		_, ts := newServer(t, func(s *server.Server) { s.Timeout = time.Nanosecond })
		if resp, _ := post(t, ts, "/analyze", killableHex(t)); resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", resp.StatusCode)
		}
		f := getStats(t, ts).Endpoints["/analyze"].Failures
		if f.Cancellation != 1 || f.DecompileBudget != 0 {
			t.Errorf("failures = %+v, want exactly 1 cancellation", f)
		}
	})

	t.Run("budget", func(t *testing.T) {
		// A tight step budget turns the hostile input into a fast,
		// deterministic 422 — and the second identical request must be served
		// from the negative cache while still counting as a budget failure.
		cfg := core.DefaultConfig()
		cfg.DecompileLimits = decompiler.Limits{MaxWorklistSteps: 2000}
		srv := server.New(cfg)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)

		body := hostileHex(t, "ctx-explosion-356b.hex")
		for i := 0; i < 2; i++ {
			resp, rbody := post(t, ts, "/analyze", body)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("request %d: status %d, want 422 (%s)", i, resp.StatusCode, rbody)
			}
			if !strings.Contains(string(rbody), "budget exhausted") {
				t.Errorf("request %d body %q does not name the budget", i, rbody)
			}
		}
		if s := srv.Cache().Stats(); s.Hits != 1 || s.Misses != 1 {
			t.Errorf("stats = %+v, want the second 422 served as a negative cache hit", s)
		}
		f := getStats(t, ts).Endpoints["/analyze"].Failures
		if f.DecompileBudget != 2 || f.Cancellation != 0 {
			t.Errorf("failures = %+v, want 2 budget / 0 cancellation", f)
		}
	})
}

// TestHostileAnalyzeTimesOutAndFreesWorker is the serving half of the
// resource-governance contract: the worst-case hostile bytecode under a 50ms
// per-request deadline gets a prompt 504 — and the in-flight slot it held is
// released, so the server (capped at one concurrent analysis) immediately
// serves a normal request afterwards.
func TestHostileAnalyzeTimesOutAndFreesWorker(t *testing.T) {
	const deadline = 50 * time.Millisecond
	_, ts := newServer(t, func(s *server.Server) {
		s.Timeout = deadline
		s.MaxInFlight = 1
	})

	start := time.Now()
	resp, body := post(t, ts, "/analyze", hostileHex(t, "ctx-explosion-312b.hex"))
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("hostile analyze: status %d, want 504 (%s)", resp.StatusCode, body)
	}
	// The decompiler aborts within 2x the deadline (pinned by the core-level
	// regression test); allow generous HTTP slack on top.
	if elapsed > 10*deadline {
		t.Errorf("504 took %v, want well under %v", elapsed, 10*deadline)
	}

	// The slot is free: a legitimate request is admitted and completes.
	resp, body = post(t, ts, "/analyze", killableHex(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up analyze: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	stats := getStats(t, ts)
	if stats.InFlight != 0 {
		t.Errorf("inFlight = %d after requests drained", stats.InFlight)
	}
	if f := stats.Endpoints["/analyze"].Failures; f.Cancellation != 1 {
		t.Errorf("failures = %+v, want 1 cancellation from the hostile 504", f)
	}
}
