package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// defaultMaxBatchItems bounds the number of inputs one /batch call may
// carry; override via Server.MaxBatchItems.
const defaultMaxBatchItems = 256

// BatchItemJSON is one per-input result of a /batch call: exactly one of
// Report and Error is set.
type BatchItemJSON struct {
	Index  int         `json:"index"`
	Report *ReportJSON `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// BatchJSON is the /batch response: per-item results in input order. A batch
// is 200 as long as the request itself was well-formed; individual inputs
// fail individually (Failed counts them).
type BatchJSON struct {
	Items  []BatchItemJSON `json:"items"`
	Failed int             `json:"failed"`
}

func (s *Server) maxBatchItems() int {
	if s.MaxBatchItems > 0 {
		return s.MaxBatchItems
	}
	return defaultMaxBatchItems
}

// handleBatch analyzes a JSON array of inputs (each hex bytecode or
// mini-Solidity source, same as /analyze) through the server-wide sweep
// scheduler. All items share the request's deadline; duplicated bytecode —
// the dominant bulk workload per Section 6 — is planned down to one analysis
// per unique (bytecode, config) pair before any work is dispatched, and
// identical bytecode in concurrent batches coalesces onto one computation
// because every request shares the same scheduler.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var inputs []string
	if err := json.Unmarshal(body, &inputs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch body must be a JSON array of strings: %w", err))
		return
	}
	if len(inputs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if max := s.maxBatchItems(); len(inputs) > max {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch too large: %d items (max %d)", len(inputs), max))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	// Decode phase: items that fail to decode (or arrive after the shared
	// deadline) resolve here; the rest are collected for the sweep. The
	// deadline check precedes decode so an expired batch costs neither
	// decode work nor cache traffic.
	items := make([]BatchItemJSON, len(inputs))
	codes := make([][]byte, 0, len(inputs))
	codeIdx := make([]int, 0, len(inputs))
	for i, input := range inputs {
		if err := ctx.Err(); err != nil {
			items[i] = BatchItemJSON{Index: i, Error: err.Error()}
			s.metrics.recordFailure("/batch", failCancel)
			continue
		}
		if strings.TrimSpace(input) == "" {
			items[i] = BatchItemJSON{Index: i, Error: "empty input"}
			s.metrics.recordFailure("/batch", failDecode)
			continue
		}
		runtime, _, err := decodeInput([]byte(input))
		if err != nil {
			items[i] = BatchItemJSON{Index: i, Error: err.Error()}
			s.metrics.recordFailure("/batch", failDecode)
			continue
		}
		codes = append(codes, runtime)
		codeIdx = append(codeIdx, i)
	}

	if len(codes) > 0 {
		for j, res := range s.scheduler().Sweep(ctx, codes, s.cfg, nil) {
			i := codeIdx[j]
			if res.Err != nil {
				items[i] = BatchItemJSON{Index: i, Error: res.Err.Error()}
				s.metrics.recordFailure("/batch", classifyFailure(res.Err))
				continue
			}
			s.metrics.recordStages(res.Report.Stats.Timings)
			rj := reportToJSON(res.Report)
			items[i] = BatchItemJSON{Index: i, Report: &rj}
		}
	}

	out := BatchJSON{Items: items}
	for _, it := range items {
		if it.Error != "" {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}
