package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Defaults for the /batch endpoint; override via Server.BatchWorkers and
// Server.MaxBatchItems.
const (
	defaultBatchWorkers  = 8
	defaultMaxBatchItems = 256
)

// BatchItemJSON is one per-input result of a /batch call: exactly one of
// Report and Error is set.
type BatchItemJSON struct {
	Index  int         `json:"index"`
	Report *ReportJSON `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// BatchJSON is the /batch response: per-item results in input order. A batch
// is 200 as long as the request itself was well-formed; individual inputs
// fail individually (Failed counts them).
type BatchJSON struct {
	Items  []BatchItemJSON `json:"items"`
	Failed int             `json:"failed"`
}

func (s *Server) batchWorkers() int {
	if s.BatchWorkers > 0 {
		return s.BatchWorkers
	}
	return defaultBatchWorkers
}

func (s *Server) maxBatchItems() int {
	if s.MaxBatchItems > 0 {
		return s.MaxBatchItems
	}
	return defaultMaxBatchItems
}

// handleBatch analyzes a JSON array of inputs (each hex bytecode or
// mini-Solidity source, same as /analyze) over a bounded worker pool. All
// items share the request's deadline and the server-wide cache, so a batch
// of largely-duplicated bytecode — the dominant bulk workload per Section 6 —
// costs one analysis per distinct contract; duplicates within one batch
// coalesce through the cache's singleflight even when analyzed concurrently.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var inputs []string
	if err := json.Unmarshal(body, &inputs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch body must be a JSON array of strings: %w", err))
		return
	}
	if len(inputs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if max := s.maxBatchItems(); len(inputs) > max {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch too large: %d items (max %d)", len(inputs), max))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	items := make([]BatchItemJSON, len(inputs))
	workers := s.batchWorkers()
	if workers > len(inputs) {
		workers = len(inputs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// The shared deadline may have expired while this item sat
				// queued behind slow siblings; starting a full analysis
				// against a dead context would only burn a pool worker, so
				// short-circuit it to a per-item deadline error.
				if err := ctx.Err(); err != nil {
					items[i] = BatchItemJSON{Index: i, Error: err.Error()}
					s.metrics.recordFailure("/batch", failCancel)
					continue
				}
				items[i] = s.analyzeBatchItem(ctx, i, inputs[i])
			}
		}()
	}
	// The feed loop itself also stops dispatching once the shared deadline is
	// gone — without this select, every remaining item would still be handed
	// to a worker after expiry.
feed:
	for i := range inputs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	// Items never dispatched (the feed loop broke out) carry neither a report
	// nor an error; fill them with the shared context's error.
	if err := ctx.Err(); err != nil {
		for i := range items {
			if items[i].Report == nil && items[i].Error == "" {
				items[i] = BatchItemJSON{Index: i, Error: err.Error()}
				s.metrics.recordFailure("/batch", failCancel)
			}
		}
	}

	out := BatchJSON{Items: items}
	for _, it := range items {
		if it.Error != "" {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// analyzeBatchItem runs one batch input through decode + cached analysis,
// folding every failure into the item's Error field so one bad input cannot
// fail its siblings.
func (s *Server) analyzeBatchItem(ctx context.Context, i int, input string) BatchItemJSON {
	if strings.TrimSpace(input) == "" {
		s.metrics.recordFailure("/batch", failDecode)
		return BatchItemJSON{Index: i, Error: "empty input"}
	}
	runtime, _, err := decodeInput([]byte(input))
	if err != nil {
		s.metrics.recordFailure("/batch", failDecode)
		return BatchItemJSON{Index: i, Error: err.Error()}
	}
	rep, err := s.cache.AnalyzeBytecodeContext(ctx, runtime, s.cfg)
	if err != nil {
		s.metrics.recordFailure("/batch", classifyFailure(err))
		return BatchItemJSON{Index: i, Error: err.Error()}
	}
	s.metrics.recordStages(rep.Stats.Timings)
	rj := reportToJSON(rep)
	return BatchItemJSON{Index: i, Report: &rj}
}
