package server

// The peer-fill serving side of the cross-replica cache protocol: GET
// /cache/{hash}/{fp} returns the serialized, checksummed persistent-format
// entry for one (bytecode keccak-256, config fingerprint) from this
// replica's cache — memory first, disk tier second, never its own peers (a
// replica serves only what it holds, so mutually-configured peers cannot
// proxy-loop a miss). The requesting replica re-verifies the entry end to
// end (core.RemoteTier), so this handler ships bytes, not trust.

import (
	"encoding/hex"
	"errors"
	"net/http"
	"strconv"
)

// handlePeerCache serves one cache entry to a peer replica. The hash is 64
// hex chars (no 0x prefix), the fingerprint 16 — exactly what
// core.PeerCachePath emits. Malformed components are 400; an entry this
// replica doesn't hold is 404, which the peer treats as a plain miss.
func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	hb, err := hex.DecodeString(r.PathValue("hash"))
	if err != nil || len(hb) != 32 {
		writeError(w, http.StatusBadRequest, errors.New("bad bytecode hash: want 64 hex characters"))
		return
	}
	fp, err := strconv.ParseUint(r.PathValue("fp"), 16, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New("bad config fingerprint: want hex u64"))
		return
	}
	data, ok := s.cache.EntryBytes([32]byte(hb), fp)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no cache entry for this key"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}
