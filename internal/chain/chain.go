package chain

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// DefaultGas is the gas budget given to each transaction. Generous enough for
// any corpus contract, small enough to kill runaway loops quickly.
const DefaultGas = 2_000_000

// Receipt records the outcome of one applied transaction. Receipts are
// immutable once returned: the chain appends each to its receipt log, and
// block followers read them concurrently with later transactions.
type Receipt struct {
	From      evm.Address
	To        evm.Address // zero for creation
	Created   evm.Address // non-zero for successful creation
	Output    []byte
	GasUsed   uint64
	Err       error
	Trace     []TraceEntry
	Destroyed []evm.Address // contracts whose self-destruction finalized in this tx
	// Block and Time identify the block the transaction landed in (every
	// transaction gets its own block on this chain).
	Block uint64
	Time  uint64
	// Creations lists every contract-code install that survived to the end
	// of the transaction: the outer creation, inner CREATE/CREATE2 frames,
	// and direct DeployRuntime installs. Reverted creations and contracts
	// destroyed within the same transaction are excluded.
	Creations []Creation
}

// Succeeded reports whether the transaction completed without error.
func (r *Receipt) Succeeded() bool { return r.Err == nil }

// Creation is one finalized contract-code install observed by a transaction.
type Creation struct {
	Address evm.Address
	Code    []byte
}

// TraceEntry is one executed instruction, as recorded by the tracer.
type TraceEntry struct {
	Depth    int
	Contract evm.Address
	PC       int
	Op       evm.Op
}

// tracer accumulates the instruction trace, the contracts on which
// SELFDESTRUCT executed, and the contracts created — all recorded at
// execution time, so entries from inner frames that later revert are still
// present and must be filtered against final state in finish.
type tracer struct {
	entries   []TraceEntry
	destroyed []evm.Address
	created   []Creation
	limit     int
}

func (t *tracer) OnOp(depth int, contract evm.Address, pc int, op evm.Op) {
	if len(t.entries) < t.limit {
		t.entries = append(t.entries, TraceEntry{Depth: depth, Contract: contract, PC: pc, Op: op})
	}
	if op == evm.SELFDESTRUCT {
		t.destroyed = append(t.destroyed, contract)
	}
}

func (t *tracer) OnCreate(_ int, _, created evm.Address, _ []byte) {
	t.created = append(t.created, Creation{Address: created})
}

// Chain is a single-node blockchain simulator: a world state plus a block
// counter and an append-only receipt log. Every transaction gets its own
// "block" for simplicity.
//
// Concurrency: one goroutine applies transactions; any number may
// concurrently read the log through Head and ReceiptsFrom (the mutex guards
// the log and block counter, and receipts are immutable once appended).
type Chain struct {
	State   *State
	block   evm.BlockContext
	nextKey uint64

	mu  sync.RWMutex
	log []*Receipt
}

// New returns a chain with an empty state at block 1.
func New() *Chain {
	return &Chain{
		State: NewState(),
		block: evm.BlockContext{
			Number:    1,
			Timestamp: 1_500_000_000,
			GasLimit:  10_000_000,
			ChainID:   3, // Ropsten
		},
	}
}

// NewAccount creates a fresh externally-owned account with the given balance
// and returns its address. Addresses are deterministic per chain instance.
func (c *Chain) NewAccount(balance u256.U256) evm.Address {
	c.nextKey++
	var a evm.Address
	k := c.nextKey
	for i := 0; i < 8; i++ {
		a[19-i] = byte(k >> (8 * i))
	}
	a[0] = 0xee // mark EOAs for readability in traces
	c.State.CreateAccount(a)
	if !balance.IsZero() {
		c.State.AddBalance(a, balance)
	}
	return a
}

// evmFor builds a fresh interpreter for one transaction.
func (c *Chain) evmFor(origin evm.Address, t *tracer) *evm.EVM {
	e := evm.New(c.State, c.block)
	e.Origin = origin
	if t != nil {
		e.Tracer = t
	}
	return e
}

// Deploy applies a contract-creation transaction running initCode. On success
// the receipt's Created field holds the new contract address.
func (c *Chain) Deploy(from evm.Address, initCode []byte, value u256.U256) *Receipt {
	tr := &tracer{limit: 1 << 16}
	e := c.evmFor(from, tr)
	addr, out, gasLeft, err := e.Create(from, initCode, value, DefaultGas)
	r := &Receipt{From: from, Output: out, GasUsed: DefaultGas - gasLeft, Err: err, Trace: tr.entries}
	if err == nil {
		r.Created = addr
	}
	c.finish(r, tr, err)
	return r
}

// DeployRuntime installs runtime code directly at a fresh address without
// running a constructor — convenient for corpus deployment where constructor
// effects are applied via SetState. The install is a real transaction: it
// advances the block and records a receipt, so block followers observe it.
func (c *Chain) DeployRuntime(runtime []byte, balance u256.U256) evm.Address {
	return c.DeployRuntimeTx(runtime, balance).Created
}

// DeployRuntimeTx is DeployRuntime returning the full receipt.
func (c *Chain) DeployRuntimeTx(runtime []byte, balance u256.U256) *Receipt {
	c.nextKey++
	var a evm.Address
	k := c.nextKey
	for i := 0; i < 8; i++ {
		a[19-i] = byte(k >> (8 * i))
	}
	a[0] = 0xcc // mark contracts
	c.State.CreateAccount(a)
	c.State.SetCode(a, runtime)
	if !balance.IsZero() {
		c.State.AddBalance(a, balance)
	}
	r := &Receipt{Created: a}
	c.finish(r, &tracer{}, nil)
	return r
}

// Call applies a message-call transaction.
func (c *Chain) Call(from, to evm.Address, input []byte, value u256.U256) *Receipt {
	tr := &tracer{limit: 1 << 16}
	e := c.evmFor(from, tr)
	out, gasLeft, err := e.Call(from, to, input, value, DefaultGas)
	r := &Receipt{From: from, To: to, Output: out, GasUsed: DefaultGas - gasLeft, Err: err, Trace: tr.entries}
	c.finish(r, tr, err)
	return r
}

// finish seals one transaction: stamps the receipt with its block, settles
// the tracer's execution-time records against final state, finalizes the
// world state, and appends the receipt to the log under the new block number.
func (c *Chain) finish(r *Receipt, tr *tracer, err error) {
	r.Block = c.block.Number
	r.Time = c.block.Timestamp
	if err == nil {
		r.Destroyed = c.finalizedDestructions(tr.destroyed)
		r.Creations = c.finalizedCreations(r.Created, tr.created)
	}
	// On error the EVM already reverted state; Finalize drops any journal
	// remnants either way and erases self-destructed accounts.
	c.State.Finalize()
	c.mu.Lock()
	c.block.Number++
	c.block.Timestamp += 15
	c.log = append(c.log, r)
	c.mu.Unlock()
}

// finalizedDestructions settles the tracer's SELFDESTRUCT records against
// final state. The tracer records at execution time, but State.Suicide is
// journal-reverted: an inner frame can execute SELFDESTRUCT and then be
// unwound by a reverting caller while the outer transaction still succeeds.
// Receipt.Destroyed feeds Ethainter-Kill's trace-based exploit confirmation,
// so an unfiltered record is a false confirmation. Runs before Finalize and
// dedupes (a contract can self-destruct more than once in one transaction —
// its code is only erased at finalization).
func (c *Chain) finalizedDestructions(candidates []evm.Address) []evm.Address {
	if len(candidates) == 0 {
		return nil
	}
	var out []evm.Address
	seen := make(map[evm.Address]bool, len(candidates))
	for _, a := range candidates {
		if seen[a] || !c.State.HasSuicided(a) {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

// finalizedCreations settles creation records against final state: a
// creation whose enclosing frame reverted was journal-deleted (or had its
// code install undone) and is dropped, as is a contract created and
// destroyed within the same transaction. The surviving runtime code is
// captured here, before Finalize erases self-destructed accounts, so block
// followers never need to read chain state.
func (c *Chain) finalizedCreations(outer evm.Address, traced []Creation) []Creation {
	var zero evm.Address
	cands := traced
	if outer != zero {
		// Deploy's outer creation also fires the tracer's OnCreate;
		// DeployRuntime runs no EVM and registers its install here.
		cands = append(cands, Creation{Address: outer})
	}
	if len(cands) == 0 {
		return nil
	}
	var out []Creation
	seen := make(map[evm.Address]bool, len(cands))
	for _, cr := range cands {
		if seen[cr.Address] {
			continue
		}
		seen[cr.Address] = true
		code := c.State.GetCode(cr.Address)
		if len(code) == 0 || c.State.HasSuicided(cr.Address) {
			continue
		}
		out = append(out, Creation{Address: cr.Address, Code: code})
	}
	return out
}

// Head returns the number of the last completed block — zero when no
// transaction has been applied yet. Safe for concurrent use with appliers.
func (c *Chain) Head() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.block.Number - 1
}

// ReceiptsFrom returns up to max receipts from blocks numbered >= from, in
// block order (all of them when max <= 0). The returned receipts are shared
// and must not be mutated. Safe for concurrent use with appliers — the
// cursor interface block followers poll.
func (c *Chain) ReceiptsFrom(from uint64, max int) []*Receipt {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i := sort.Search(len(c.log), func(i int) bool { return c.log[i].Block >= from })
	rest := c.log[i:]
	if max > 0 && len(rest) > max {
		rest = rest[:max]
	}
	if len(rest) == 0 {
		return nil
	}
	return append([]*Receipt(nil), rest...)
}

// CallView runs a call and reverts all its state effects, returning only the
// output — an eth_call equivalent.
func (c *Chain) CallView(from, to evm.Address, input []byte) ([]byte, error) {
	snap := c.State.Snapshot()
	e := c.evmFor(from, nil)
	out, _, err := e.Call(from, to, input, u256.Zero, DefaultGas)
	c.State.RevertToSnapshot(snap)
	return out, err
}

// IsDestroyed reports whether the contract's code has been removed by a
// finalized SELFDESTRUCT.
func (c *Chain) IsDestroyed(a evm.Address) bool {
	return c.State.HasSuicided(a) && len(c.State.GetCode(a)) == 0
}

// ErrNoCode is returned by RequireCode for addresses without code.
var ErrNoCode = errors.New("chain: account has no code")

// RequireCode returns the code at addr or ErrNoCode.
func (c *Chain) RequireCode(a evm.Address) ([]byte, error) {
	code := c.State.GetCode(a)
	if len(code) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCode, a)
	}
	return code, nil
}

// Fork returns an independent copy of the chain (state deep-copied, receipt
// log snapshotted), sharing nothing mutable with the original — the "private
// fork" Ethainter-Kill attacks.
func (c *Chain) Fork() *Chain {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return &Chain{
		State:   c.State.Copy(),
		block:   c.block,
		nextKey: c.nextKey,
		log:     append([]*Receipt(nil), c.log...),
	}
}
