package chain

import (
	"errors"
	"fmt"

	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// DefaultGas is the gas budget given to each transaction. Generous enough for
// any corpus contract, small enough to kill runaway loops quickly.
const DefaultGas = 2_000_000

// Receipt records the outcome of one applied transaction.
type Receipt struct {
	From      evm.Address
	To        evm.Address // zero for creation
	Created   evm.Address // non-zero for successful creation
	Output    []byte
	GasUsed   uint64
	Err       error
	Trace     []TraceEntry
	Destroyed []evm.Address // contracts that self-destructed in this tx
}

// Succeeded reports whether the transaction completed without error.
func (r *Receipt) Succeeded() bool { return r.Err == nil }

// TraceEntry is one executed instruction, as recorded by the tracer.
type TraceEntry struct {
	Depth    int
	Contract evm.Address
	PC       int
	Op       evm.Op
}

// tracer accumulates the instruction trace and the set of contracts on which
// SELFDESTRUCT actually executed — the paper's Ethainter-Kill verifies
// destruction "by analyzing the exact VM instruction trace".
type tracer struct {
	entries   []TraceEntry
	destroyed []evm.Address
	limit     int
}

func (t *tracer) OnOp(depth int, contract evm.Address, pc int, op evm.Op) {
	if len(t.entries) < t.limit {
		t.entries = append(t.entries, TraceEntry{Depth: depth, Contract: contract, PC: pc, Op: op})
	}
	if op == evm.SELFDESTRUCT {
		t.destroyed = append(t.destroyed, contract)
	}
}

// Chain is a single-node blockchain simulator: a world state plus a block
// counter. Every transaction gets its own "block" for simplicity.
type Chain struct {
	State   *State
	block   evm.BlockContext
	nextKey uint64
}

// New returns a chain with an empty state at block 1.
func New() *Chain {
	return &Chain{
		State: NewState(),
		block: evm.BlockContext{
			Number:    1,
			Timestamp: 1_500_000_000,
			GasLimit:  10_000_000,
			ChainID:   3, // Ropsten
		},
	}
}

// NewAccount creates a fresh externally-owned account with the given balance
// and returns its address. Addresses are deterministic per chain instance.
func (c *Chain) NewAccount(balance u256.U256) evm.Address {
	c.nextKey++
	var a evm.Address
	k := c.nextKey
	for i := 0; i < 8; i++ {
		a[19-i] = byte(k >> (8 * i))
	}
	a[0] = 0xee // mark EOAs for readability in traces
	c.State.CreateAccount(a)
	if !balance.IsZero() {
		c.State.AddBalance(a, balance)
	}
	return a
}

// evmFor builds a fresh interpreter for one transaction.
func (c *Chain) evmFor(origin evm.Address, t *tracer) *evm.EVM {
	e := evm.New(c.State, c.block)
	e.Origin = origin
	if t != nil {
		e.Tracer = t
	}
	return e
}

// Deploy applies a contract-creation transaction running initCode. On success
// the receipt's Created field holds the new contract address.
func (c *Chain) Deploy(from evm.Address, initCode []byte, value u256.U256) *Receipt {
	tr := &tracer{limit: 1 << 16}
	e := c.evmFor(from, tr)
	addr, out, gasLeft, err := e.Create(from, initCode, value, DefaultGas)
	r := &Receipt{From: from, Output: out, GasUsed: DefaultGas - gasLeft, Err: err, Trace: tr.entries}
	if err == nil {
		r.Created = addr
	}
	c.finish(r, tr, err)
	return r
}

// DeployRuntime installs runtime code directly at a fresh address without
// running a constructor — convenient for corpus deployment where constructor
// effects are applied via SetState.
func (c *Chain) DeployRuntime(runtime []byte, balance u256.U256) evm.Address {
	c.nextKey++
	var a evm.Address
	k := c.nextKey
	for i := 0; i < 8; i++ {
		a[19-i] = byte(k >> (8 * i))
	}
	a[0] = 0xcc // mark contracts
	c.State.CreateAccount(a)
	c.State.SetCode(a, runtime)
	if !balance.IsZero() {
		c.State.AddBalance(a, balance)
	}
	c.State.Finalize()
	return a
}

// Call applies a message-call transaction.
func (c *Chain) Call(from, to evm.Address, input []byte, value u256.U256) *Receipt {
	tr := &tracer{limit: 1 << 16}
	e := c.evmFor(from, tr)
	out, gasLeft, err := e.Call(from, to, input, value, DefaultGas)
	r := &Receipt{From: from, To: to, Output: out, GasUsed: DefaultGas - gasLeft, Err: err, Trace: tr.entries}
	c.finish(r, tr, err)
	return r
}

func (c *Chain) finish(r *Receipt, tr *tracer, err error) {
	c.block.Number++
	c.block.Timestamp += 15
	if err != nil {
		// The EVM already reverted state; drop any journal remnants.
		c.State.Finalize()
		return
	}
	r.Destroyed = tr.destroyed
	c.State.Finalize()
}

// CallView runs a call and reverts all its state effects, returning only the
// output — an eth_call equivalent.
func (c *Chain) CallView(from, to evm.Address, input []byte) ([]byte, error) {
	snap := c.State.Snapshot()
	e := c.evmFor(from, nil)
	out, _, err := e.Call(from, to, input, u256.Zero, DefaultGas)
	c.State.RevertToSnapshot(snap)
	return out, err
}

// IsDestroyed reports whether the contract's code has been removed by a
// finalized SELFDESTRUCT.
func (c *Chain) IsDestroyed(a evm.Address) bool {
	return c.State.HasSuicided(a) && len(c.State.GetCode(a)) == 0
}

// ErrNoCode is returned by RequireCode for addresses without code.
var ErrNoCode = errors.New("chain: account has no code")

// RequireCode returns the code at addr or ErrNoCode.
func (c *Chain) RequireCode(a evm.Address) ([]byte, error) {
	code := c.State.GetCode(a)
	if len(code) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCode, a)
	}
	return code, nil
}

// Fork returns an independent copy of the chain (state deep-copied), sharing
// nothing with the original — the "private fork" Ethainter-Kill attacks.
func (c *Chain) Fork() *Chain {
	return &Chain{State: c.State.Copy(), block: c.block, nextKey: c.nextKey}
}
