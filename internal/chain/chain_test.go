package chain

import (
	"testing"

	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

func TestSnapshotRevertRestoresEverything(t *testing.T) {
	s := NewState()
	var a, b evm.Address
	a[19], b[19] = 1, 2
	s.CreateAccount(a)
	s.AddBalance(a, u256.FromUint64(100))
	s.SetState(a, u256.One, u256.FromUint64(7))
	s.Finalize()

	snap := s.Snapshot()
	s.AddBalance(a, u256.FromUint64(50))
	s.SubBalance(a, u256.FromUint64(20))
	s.SetState(a, u256.One, u256.FromUint64(9))
	s.SetState(a, u256.FromUint64(2), u256.FromUint64(3))
	s.SetCode(b, []byte{1, 2, 3})
	s.SetNonce(b, 5)
	s.Suicide(a, b)
	s.RevertToSnapshot(snap)

	if got := s.GetBalance(a); got != u256.FromUint64(100) {
		t.Errorf("balance = %s", got)
	}
	if got := s.GetState(a, u256.One); got != u256.FromUint64(7) {
		t.Errorf("slot1 = %s", got)
	}
	if got := s.GetState(a, u256.FromUint64(2)); !got.IsZero() {
		t.Errorf("slot2 = %s", got)
	}
	if s.Exists(b) {
		t.Error("account b should have been journal-deleted")
	}
	if s.HasSuicided(a) {
		t.Error("suicide should have been reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := NewState()
	var a evm.Address
	a[19] = 1
	s.CreateAccount(a)
	outer := s.Snapshot()
	s.SetState(a, u256.Zero, u256.One)
	inner := s.Snapshot()
	s.SetState(a, u256.Zero, u256.FromUint64(2))
	s.RevertToSnapshot(inner)
	if got := s.GetState(a, u256.Zero); got != u256.One {
		t.Fatalf("after inner revert: %s", got)
	}
	s.RevertToSnapshot(outer)
	if got := s.GetState(a, u256.Zero); !got.IsZero() {
		t.Fatalf("after outer revert: %s", got)
	}
}

func TestFinalizeErasesSuicidedContracts(t *testing.T) {
	s := NewState()
	var a, b evm.Address
	a[19], b[19] = 1, 2
	s.CreateAccount(a)
	s.SetCode(a, []byte{0x00})
	s.SetState(a, u256.Zero, u256.One)
	s.AddBalance(a, u256.FromUint64(9))
	s.Finalize()

	s.Suicide(a, b)
	s.Finalize()
	if len(s.GetCode(a)) != 0 {
		t.Error("code should be erased")
	}
	if !s.GetState(a, u256.Zero).IsZero() {
		t.Error("storage should be erased")
	}
	if got := s.GetBalance(b); got != u256.FromUint64(9) {
		t.Errorf("beneficiary balance = %s", got)
	}
}

func TestChainAccountsAreDistinctAndFunded(t *testing.T) {
	c := New()
	a := c.NewAccount(u256.FromUint64(10))
	b := c.NewAccount(u256.FromUint64(20))
	if a == b {
		t.Fatal("accounts collide")
	}
	if c.State.GetBalance(a) != u256.FromUint64(10) || c.State.GetBalance(b) != u256.FromUint64(20) {
		t.Fatal("balances wrong")
	}
}

func TestCallViewDoesNotPersist(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(100))
	code := evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		SSTORE
		STOP
	`)
	addr := c.DeployRuntime(code, u256.Zero)
	if _, err := c.CallView(caller, addr, nil); err != nil {
		t.Fatalf("view: %v", err)
	}
	if !c.State.GetState(addr, u256.Zero).IsZero() {
		t.Fatal("view call persisted state")
	}
}

func TestFailedTxLeavesNoResidue(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(100))
	code := evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		SSTORE
		INVALID
	`)
	addr := c.DeployRuntime(code, u256.Zero)
	r := c.Call(caller, addr, nil, u256.Zero)
	if r.Err == nil {
		t.Fatal("expected failure")
	}
	if !c.State.GetState(addr, u256.Zero).IsZero() {
		t.Fatal("failed tx left storage residue")
	}
}

func TestRequireCode(t *testing.T) {
	c := New()
	eoa := c.NewAccount(u256.Zero)
	if _, err := c.RequireCode(eoa); err == nil {
		t.Fatal("expected ErrNoCode")
	}
	addr := c.DeployRuntime([]byte{byte(evm.STOP)}, u256.Zero)
	if _, err := c.RequireCode(addr); err != nil {
		t.Fatal(err)
	}
}

func TestForkIsolation(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(1000))
	code := evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		SSTORE
		STOP
	`)
	addr := c.DeployRuntime(code, u256.FromUint64(77))

	fork := c.Fork()
	// Mutations on the fork (storage, balances, destruction) stay there.
	if r := fork.Call(caller, addr, nil, u256.Zero); r.Err != nil {
		t.Fatalf("fork call: %v", r.Err)
	}
	fork.State.AddBalance(caller, u256.FromUint64(5))
	fork.State.Suicide(addr, caller)
	fork.State.Finalize()

	if !c.State.GetState(addr, u256.Zero).IsZero() {
		t.Error("primary storage mutated through the fork")
	}
	if got := c.State.GetBalance(caller); got != u256.FromUint64(1000) {
		t.Errorf("primary balance mutated: %s", got)
	}
	if c.IsDestroyed(addr) {
		t.Error("primary contract destroyed through the fork")
	}
	if !fork.IsDestroyed(addr) {
		t.Error("fork should see its own destruction")
	}
	// New accounts on the fork do not collide with later primary accounts.
	fa := fork.NewAccount(u256.Zero)
	ca := c.NewAccount(u256.Zero)
	if fa != ca {
		// Address sequences are deterministic per chain; after the fork they
		// advance independently, and the first new address is the same on
		// both — that is fine because the two states are disjoint worlds.
		t.Logf("fork address %s, primary address %s", fa, ca)
	}
}

func TestForkPreservesExistingState(t *testing.T) {
	c := New()
	a := c.NewAccount(u256.FromUint64(123))
	c.State.SetState(a, u256.One, u256.FromUint64(9))
	c.State.SetCode(a, []byte{1, 2})
	c.State.SetNonce(a, 4)
	c.State.Finalize()
	fork := c.Fork()
	if fork.State.GetBalance(a) != u256.FromUint64(123) ||
		fork.State.GetState(a, u256.One) != u256.FromUint64(9) ||
		fork.State.GetNonce(a) != 4 || len(fork.State.GetCode(a)) != 2 {
		t.Error("fork lost account state")
	}
	// Deep copy: mutating the fork's code slice must not alias.
	fork.State.GetCode(a)[0] = 0xff
	if c.State.GetCode(a)[0] == 0xff {
		t.Error("code slices aliased between fork and primary")
	}
}
