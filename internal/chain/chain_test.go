package chain

import (
	"testing"

	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

func TestSnapshotRevertRestoresEverything(t *testing.T) {
	s := NewState()
	var a, b evm.Address
	a[19], b[19] = 1, 2
	s.CreateAccount(a)
	s.AddBalance(a, u256.FromUint64(100))
	s.SetState(a, u256.One, u256.FromUint64(7))
	s.Finalize()

	snap := s.Snapshot()
	s.AddBalance(a, u256.FromUint64(50))
	s.SubBalance(a, u256.FromUint64(20))
	s.SetState(a, u256.One, u256.FromUint64(9))
	s.SetState(a, u256.FromUint64(2), u256.FromUint64(3))
	s.SetCode(b, []byte{1, 2, 3})
	s.SetNonce(b, 5)
	s.Suicide(a, b)
	s.RevertToSnapshot(snap)

	if got := s.GetBalance(a); got != u256.FromUint64(100) {
		t.Errorf("balance = %s", got)
	}
	if got := s.GetState(a, u256.One); got != u256.FromUint64(7) {
		t.Errorf("slot1 = %s", got)
	}
	if got := s.GetState(a, u256.FromUint64(2)); !got.IsZero() {
		t.Errorf("slot2 = %s", got)
	}
	if s.Exists(b) {
		t.Error("account b should have been journal-deleted")
	}
	if s.HasSuicided(a) {
		t.Error("suicide should have been reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := NewState()
	var a evm.Address
	a[19] = 1
	s.CreateAccount(a)
	outer := s.Snapshot()
	s.SetState(a, u256.Zero, u256.One)
	inner := s.Snapshot()
	s.SetState(a, u256.Zero, u256.FromUint64(2))
	s.RevertToSnapshot(inner)
	if got := s.GetState(a, u256.Zero); got != u256.One {
		t.Fatalf("after inner revert: %s", got)
	}
	s.RevertToSnapshot(outer)
	if got := s.GetState(a, u256.Zero); !got.IsZero() {
		t.Fatalf("after outer revert: %s", got)
	}
}

func TestFinalizeErasesSuicidedContracts(t *testing.T) {
	s := NewState()
	var a, b evm.Address
	a[19], b[19] = 1, 2
	s.CreateAccount(a)
	s.SetCode(a, []byte{0x00})
	s.SetState(a, u256.Zero, u256.One)
	s.AddBalance(a, u256.FromUint64(9))
	s.Finalize()

	s.Suicide(a, b)
	s.Finalize()
	if len(s.GetCode(a)) != 0 {
		t.Error("code should be erased")
	}
	if !s.GetState(a, u256.Zero).IsZero() {
		t.Error("storage should be erased")
	}
	if got := s.GetBalance(b); got != u256.FromUint64(9) {
		t.Errorf("beneficiary balance = %s", got)
	}
}

func TestChainAccountsAreDistinctAndFunded(t *testing.T) {
	c := New()
	a := c.NewAccount(u256.FromUint64(10))
	b := c.NewAccount(u256.FromUint64(20))
	if a == b {
		t.Fatal("accounts collide")
	}
	if c.State.GetBalance(a) != u256.FromUint64(10) || c.State.GetBalance(b) != u256.FromUint64(20) {
		t.Fatal("balances wrong")
	}
}

func TestCallViewDoesNotPersist(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(100))
	code := evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		SSTORE
		STOP
	`)
	addr := c.DeployRuntime(code, u256.Zero)
	if _, err := c.CallView(caller, addr, nil); err != nil {
		t.Fatalf("view: %v", err)
	}
	if !c.State.GetState(addr, u256.Zero).IsZero() {
		t.Fatal("view call persisted state")
	}
}

func TestFailedTxLeavesNoResidue(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(100))
	code := evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		SSTORE
		INVALID
	`)
	addr := c.DeployRuntime(code, u256.Zero)
	r := c.Call(caller, addr, nil, u256.Zero)
	if r.Err == nil {
		t.Fatal("expected failure")
	}
	if !c.State.GetState(addr, u256.Zero).IsZero() {
		t.Fatal("failed tx left storage residue")
	}
}

func TestRequireCode(t *testing.T) {
	c := New()
	eoa := c.NewAccount(u256.Zero)
	if _, err := c.RequireCode(eoa); err == nil {
		t.Fatal("expected ErrNoCode")
	}
	addr := c.DeployRuntime([]byte{byte(evm.STOP)}, u256.Zero)
	if _, err := c.RequireCode(addr); err != nil {
		t.Fatal(err)
	}
}

func TestForkIsolation(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(1000))
	code := evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		SSTORE
		STOP
	`)
	addr := c.DeployRuntime(code, u256.FromUint64(77))

	fork := c.Fork()
	// Mutations on the fork (storage, balances, destruction) stay there.
	if r := fork.Call(caller, addr, nil, u256.Zero); r.Err != nil {
		t.Fatalf("fork call: %v", r.Err)
	}
	fork.State.AddBalance(caller, u256.FromUint64(5))
	fork.State.Suicide(addr, caller)
	fork.State.Finalize()

	if !c.State.GetState(addr, u256.Zero).IsZero() {
		t.Error("primary storage mutated through the fork")
	}
	if got := c.State.GetBalance(caller); got != u256.FromUint64(1000) {
		t.Errorf("primary balance mutated: %s", got)
	}
	if c.IsDestroyed(addr) {
		t.Error("primary contract destroyed through the fork")
	}
	if !fork.IsDestroyed(addr) {
		t.Error("fork should see its own destruction")
	}
	// New accounts on the fork do not collide with later primary accounts.
	fa := fork.NewAccount(u256.Zero)
	ca := c.NewAccount(u256.Zero)
	if fa != ca {
		// Address sequences are deterministic per chain; after the fork they
		// advance independently, and the first new address is the same on
		// both — that is fine because the two states are disjoint worlds.
		t.Logf("fork address %s, primary address %s", fa, ca)
	}
}

func TestForkPreservesExistingState(t *testing.T) {
	c := New()
	a := c.NewAccount(u256.FromUint64(123))
	c.State.SetState(a, u256.One, u256.FromUint64(9))
	c.State.SetCode(a, []byte{1, 2})
	c.State.SetNonce(a, 4)
	c.State.Finalize()
	fork := c.Fork()
	if fork.State.GetBalance(a) != u256.FromUint64(123) ||
		fork.State.GetState(a, u256.One) != u256.FromUint64(9) ||
		fork.State.GetNonce(a) != 4 || len(fork.State.GetCode(a)) != 2 {
		t.Error("fork lost account state")
	}
	// Deep copy: mutating the fork's code slice must not alias.
	fork.State.GetCode(a)[0] = 0xff
	if c.State.GetCode(a)[0] == 0xff {
		t.Error("code slices aliased between fork and primary")
	}
}

// callAsm assembles a CALL to target forwarding no input and all gas, leaving
// the success flag on the stack.
func callAsm(target evm.Address) string {
	return `
		PUSH1 0x00     ; outLen
		PUSH1 0x00     ; outOff
		PUSH1 0x00     ; inLen
		PUSH1 0x00     ; inOff
		PUSH1 0x00     ; value
		PUSH20 ` + target.Word().String() + `
		GAS
		CALL
	`
}

// TestRevertedInnerSelfdestructNotInReceipt is the regression test for the
// false-exploit-confirmation bug: an inner frame executes SELFDESTRUCT, a
// caller above it reverts (journal-undoing the suicide), and the outer
// transaction still succeeds. The tracer recorded the SELFDESTRUCT at
// execution time, so an unfiltered Receipt.Destroyed would report a
// destruction that never finalized.
func TestRevertedInnerSelfdestructNotInReceipt(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(1000))
	// victim self-destructs to its caller.
	victim := c.DeployRuntime(evm.MustAssemble(`
		CALLER
		SELFDESTRUCT
	`), u256.Zero)
	// mid calls victim (the SELFDESTRUCT executes and is traced), then
	// reverts — undoing the suicide.
	mid := c.DeployRuntime(evm.MustAssemble(callAsm(victim)+`
		POP
		PUSH1 0x00
		PUSH1 0x00
		REVERT
	`), u256.Zero)
	// outer calls mid, ignores the failure, and succeeds.
	outer := c.DeployRuntime(evm.MustAssemble(callAsm(mid)+`
		POP
		STOP
	`), u256.Zero)

	r := c.Call(caller, outer, nil, u256.Zero)
	if r.Err != nil {
		t.Fatalf("outer tx should succeed: %v", r.Err)
	}
	sawSelfdestruct := false
	for _, e := range r.Trace {
		if e.Op == evm.SELFDESTRUCT {
			sawSelfdestruct = true
		}
	}
	if !sawSelfdestruct {
		t.Fatal("test is vacuous: no SELFDESTRUCT executed in the trace")
	}
	if len(r.Destroyed) != 0 {
		t.Fatalf("Destroyed = %v, want empty: the suicide was reverted", r.Destroyed)
	}
	if c.IsDestroyed(victim) {
		t.Fatal("victim must survive the reverted inner frame")
	}
	// And the victim is still callable: a real destruction finalizes next tx.
	r2 := c.Call(caller, victim, nil, u256.Zero)
	if r2.Err != nil {
		t.Fatalf("victim call: %v", r2.Err)
	}
	if len(r2.Destroyed) != 1 || r2.Destroyed[0] != victim {
		t.Fatalf("finalized destruction missing: %v", r2.Destroyed)
	}
}

// TestSelfdestructDeduped: a contract destroyed twice within one transaction
// (its code is only erased at finalization) appears once in the receipt.
func TestSelfdestructDeduped(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(1000))
	victim := c.DeployRuntime(evm.MustAssemble(`
		CALLER
		SELFDESTRUCT
	`), u256.Zero)
	double := c.DeployRuntime(evm.MustAssemble(callAsm(victim)+`
		POP
	`+callAsm(victim)+`
		POP
		STOP
	`), u256.Zero)
	r := c.Call(caller, double, nil, u256.Zero)
	if r.Err != nil {
		t.Fatalf("call: %v", r.Err)
	}
	if len(r.Destroyed) != 1 || r.Destroyed[0] != victim {
		t.Fatalf("Destroyed = %v, want exactly [%s]", r.Destroyed, victim)
	}
}

func TestDeployRuntimeIsARealTransaction(t *testing.T) {
	c := New()
	if c.Head() != 0 {
		t.Fatalf("fresh chain head = %d", c.Head())
	}
	code := []byte{byte(evm.STOP)}
	r := c.DeployRuntimeTx(code, u256.FromUint64(5))
	if r.Block != 1 || c.Head() != 1 {
		t.Fatalf("install block = %d, head = %d, want 1/1", r.Block, c.Head())
	}
	if len(r.Creations) != 1 || r.Creations[0].Address != r.Created {
		t.Fatalf("Creations = %v", r.Creations)
	}
	if string(r.Creations[0].Code) != string(code) {
		t.Fatalf("creation code = %x", r.Creations[0].Code)
	}
	// The next real tx gets its own block.
	caller := c.NewAccount(u256.FromUint64(100))
	r2 := c.Call(caller, r.Created, nil, u256.Zero)
	if r2.Block != 2 {
		t.Fatalf("next tx block = %d, want 2", r2.Block)
	}
}

func TestDeployRecordsCreation(t *testing.T) {
	c := New()
	deployer := c.NewAccount(u256.FromUint64(1000))
	// Init code returning a 1-byte STOP runtime (memory is zero-filled).
	r := c.Deploy(deployer, evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		RETURN
	`), u256.Zero)
	if r.Err != nil {
		t.Fatalf("deploy: %v", r.Err)
	}
	if len(r.Creations) != 1 || r.Creations[0].Address != r.Created {
		t.Fatalf("Creations = %v, Created = %s", r.Creations, r.Created)
	}
	if len(r.Creations[0].Code) != 1 || r.Creations[0].Code[0] != byte(evm.STOP) {
		t.Fatalf("creation code = %x", r.Creations[0].Code)
	}
}

// TestInnerCreateRecorded: a CREATE executed inside a message call shows up
// in the receipt's Creations; one inside a reverted frame does not.
func TestInnerCreateRecorded(t *testing.T) {
	c := New()
	caller := c.NewAccount(u256.FromUint64(1000))
	// Factory stores the 5-byte init code 6001 6000 f3 (PUSH1 1, PUSH1 0,
	// RETURN — yields a 1-byte STOP runtime) and CREATEs it.
	factoryAsm := `
		PUSH5 0x60016000f3
		PUSH1 0x00
		MSTORE
		PUSH1 0x05     ; size
		PUSH1 0x1b     ; offset 27 (right-aligned in the word)
		PUSH1 0x00     ; value
		CREATE
		POP
	`
	factory := c.DeployRuntime(evm.MustAssemble(factoryAsm+"STOP"), u256.Zero)
	r := c.Call(caller, factory, nil, u256.Zero)
	if r.Err != nil {
		t.Fatalf("factory call: %v", r.Err)
	}
	if len(r.Creations) != 1 {
		t.Fatalf("Creations = %v, want one inner create", r.Creations)
	}
	child := r.Creations[0]
	if len(child.Code) != 1 || child.Code[0] != byte(evm.STOP) {
		t.Fatalf("child code = %x", child.Code)
	}
	if len(c.State.GetCode(child.Address)) != 1 {
		t.Fatal("child code not installed on chain")
	}

	// Same factory behind a reverting proxy: the create is unwound and must
	// not be reported.
	reverter := c.DeployRuntime(evm.MustAssemble(factoryAsm+`
		PUSH1 0x00
		PUSH1 0x00
		REVERT
	`), u256.Zero)
	outer := c.DeployRuntime(evm.MustAssemble(callAsm(reverter)+`
		POP
		STOP
	`), u256.Zero)
	r2 := c.Call(caller, outer, nil, u256.Zero)
	if r2.Err != nil {
		t.Fatalf("outer call: %v", r2.Err)
	}
	if len(r2.Creations) != 0 {
		t.Fatalf("Creations = %v, want none: the create was reverted", r2.Creations)
	}
}

func TestReceiptLogCursor(t *testing.T) {
	c := New()
	var want []evm.Address
	for i := 0; i < 5; i++ {
		want = append(want, c.DeployRuntime([]byte{byte(evm.STOP)}, u256.Zero))
	}
	if c.Head() != 5 {
		t.Fatalf("head = %d, want 5", c.Head())
	}
	// Page through with max 2.
	var got []evm.Address
	cursor := uint64(0)
	for {
		rcs := c.ReceiptsFrom(cursor, 2)
		if len(rcs) == 0 {
			break
		}
		for _, r := range rcs {
			got = append(got, r.Created)
		}
		cursor = rcs[len(rcs)-1].Block + 1
	}
	if len(got) != len(want) {
		t.Fatalf("paged %d receipts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("receipt %d: got %s want %s", i, got[i], want[i])
		}
	}
	// A cursor past the head returns nothing.
	if rcs := c.ReceiptsFrom(6, 0); len(rcs) != 0 {
		t.Fatalf("past-head cursor returned %d receipts", len(rcs))
	}
	// Failed transactions are in the log too (their block advanced).
	caller := c.NewAccount(u256.FromUint64(10))
	bad := c.DeployRuntime(evm.MustAssemble("INVALID"), u256.Zero)
	r := c.Call(caller, bad, nil, u256.Zero)
	if r.Err == nil {
		t.Fatal("expected failure")
	}
	rcs := c.ReceiptsFrom(r.Block, 0)
	if len(rcs) != 1 || rcs[0].Err == nil {
		t.Fatalf("failed tx missing from log: %v", rcs)
	}
}
