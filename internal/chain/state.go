// Package chain implements an in-process blockchain state simulator: a
// journaled StateDB for the EVM interpreter plus a transaction-level Chain
// wrapper. It stands in for the paper's geth node / private Ropsten fork:
// contracts are deployed into it, attack transactions are applied to it, and
// per-transaction instruction traces confirm whether a SELFDESTRUCT executed.
package chain

import (
	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// account is the full state of one address.
type account struct {
	balance  u256.U256
	nonce    uint64
	code     []byte
	storage  map[u256.U256]u256.U256
	suicided bool
}

// journalEntry undoes one state mutation.
type journalEntry func(s *State)

// State is a journaled implementation of evm.StateDB. Snapshots are journal
// positions; reverting replays undo entries back to the mark.
type State struct {
	accounts map[evm.Address]*account
	journal  []journalEntry
}

// NewState returns an empty world state.
func NewState() *State {
	return &State{accounts: make(map[evm.Address]*account)}
}

func (s *State) getOrCreate(a evm.Address) *account {
	acc := s.accounts[a]
	if acc == nil {
		acc = &account{storage: make(map[u256.U256]u256.U256)}
		s.accounts[a] = acc
		s.journal = append(s.journal, func(s *State) { delete(s.accounts, a) })
	}
	return acc
}

// Exists reports whether the account has been created.
func (s *State) Exists(a evm.Address) bool { return s.accounts[a] != nil }

// CreateAccount ensures an account exists.
func (s *State) CreateAccount(a evm.Address) { s.getOrCreate(a) }

// GetBalance returns the account balance (zero for absent accounts).
func (s *State) GetBalance(a evm.Address) u256.U256 {
	if acc := s.accounts[a]; acc != nil {
		return acc.balance
	}
	return u256.Zero
}

// AddBalance credits the account, creating it if needed.
func (s *State) AddBalance(a evm.Address, v u256.U256) {
	acc := s.getOrCreate(a)
	prev := acc.balance
	s.journal = append(s.journal, func(s *State) { s.accounts[a].balance = prev })
	acc.balance = acc.balance.Add(v)
}

// SubBalance debits the account. Callers check sufficiency first.
func (s *State) SubBalance(a evm.Address, v u256.U256) {
	acc := s.getOrCreate(a)
	prev := acc.balance
	s.journal = append(s.journal, func(s *State) { s.accounts[a].balance = prev })
	acc.balance = acc.balance.Sub(v)
}

// GetNonce returns the account nonce.
func (s *State) GetNonce(a evm.Address) uint64 {
	if acc := s.accounts[a]; acc != nil {
		return acc.nonce
	}
	return 0
}

// SetNonce sets the account nonce.
func (s *State) SetNonce(a evm.Address, n uint64) {
	acc := s.getOrCreate(a)
	prev := acc.nonce
	s.journal = append(s.journal, func(s *State) { s.accounts[a].nonce = prev })
	acc.nonce = n
}

// GetCode returns the account code (nil for absent or code-less accounts).
func (s *State) GetCode(a evm.Address) []byte {
	if acc := s.accounts[a]; acc != nil {
		return acc.code
	}
	return nil
}

// SetCode installs account code.
func (s *State) SetCode(a evm.Address, code []byte) {
	acc := s.getOrCreate(a)
	prev := acc.code
	s.journal = append(s.journal, func(s *State) { s.accounts[a].code = prev })
	acc.code = code
}

// GetState reads a storage slot.
func (s *State) GetState(a evm.Address, key u256.U256) u256.U256 {
	if acc := s.accounts[a]; acc != nil {
		return acc.storage[key]
	}
	return u256.Zero
}

// SetState writes a storage slot.
func (s *State) SetState(a evm.Address, key, val u256.U256) {
	acc := s.getOrCreate(a)
	prev, had := acc.storage[key]
	s.journal = append(s.journal, func(s *State) {
		if had {
			s.accounts[a].storage[key] = prev
		} else {
			delete(s.accounts[a].storage, key)
		}
	})
	acc.storage[key] = val
}

// Suicide marks the account self-destructed and moves its balance to the
// beneficiary. Code removal happens when the enclosing transaction finalizes.
func (s *State) Suicide(a, beneficiary evm.Address) {
	acc := s.getOrCreate(a)
	bal := acc.balance
	prevSuicided := acc.suicided
	s.journal = append(s.journal, func(s *State) { s.accounts[a].suicided = prevSuicided })
	acc.suicided = true
	if !bal.IsZero() {
		s.SubBalance(a, bal)
		s.AddBalance(beneficiary, bal)
	}
}

// HasSuicided reports whether the account self-destructed in this transaction
// (or a previous finalized one).
func (s *State) HasSuicided(a evm.Address) bool {
	if acc := s.accounts[a]; acc != nil {
		return acc.suicided
	}
	return false
}

// Snapshot returns a revert mark.
func (s *State) Snapshot() int { return len(s.journal) }

// RevertToSnapshot undoes every mutation after the mark.
func (s *State) RevertToSnapshot(mark int) {
	for i := len(s.journal) - 1; i >= mark; i-- {
		s.journal[i](s)
	}
	s.journal = s.journal[:mark]
}

// Finalize commits the current transaction: clears the journal and erases the
// code and storage of self-destructed accounts (on-chain semantics: the
// account is gone after the transaction).
func (s *State) Finalize() {
	s.journal = s.journal[:0]
	for _, acc := range s.accounts {
		if acc.suicided && acc.code != nil {
			acc.code = nil
			acc.storage = make(map[u256.U256]u256.U256)
		}
	}
}

// Accounts returns all known addresses, in no particular order.
func (s *State) Accounts() []evm.Address {
	out := make([]evm.Address, 0, len(s.accounts))
	for a := range s.accounts {
		out = append(out, a)
	}
	return out
}

// Copy returns a deep copy of the state with an empty journal — a private
// fork. Ethainter-Kill runs exploit attempts against forks so failed attempts
// leave the primary state untouched.
func (s *State) Copy() *State {
	out := NewState()
	for addr, acc := range s.accounts {
		cp := &account{
			balance:  acc.balance,
			nonce:    acc.nonce,
			suicided: acc.suicided,
			storage:  make(map[u256.U256]u256.U256, len(acc.storage)),
		}
		if acc.code != nil {
			cp.code = append([]byte{}, acc.code...)
		}
		for k, v := range acc.storage {
			cp.storage[k] = v
		}
		out.accounts[addr] = cp
	}
	return out
}
