package bench

import (
	"strings"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

// Small corpora keep unit tests fast; the cmd/ethainter-bench tool runs the
// paper-scale sweeps.
const (
	testN    = 250
	testSeed = 99
)

func TestBuildDataset(t *testing.T) {
	d := Build(corpus.DefaultProfile(testN, testSeed), core.DefaultConfig(), 4)
	if len(d.Entries) != testN {
		t.Fatalf("entries = %d", len(d.Entries))
	}
	// Exotic contracts fail; everything else analyzes.
	for _, e := range d.Entries {
		if e.Contract.Exotic && e.Err == nil {
			t.Error("exotic contract should fail analysis")
		}
		if !e.Contract.Exotic && e.Err != nil {
			t.Errorf("%s/%d failed: %v", e.Contract.Family, e.Contract.Index, e.Err)
		}
	}
	if d.Failed() == 0 {
		t.Error("expected some decompilation failures from the exotic family")
	}
}

func TestExp1Shape(t *testing.T) {
	r := Exp1(testN, testSeed, 4)
	if r.Flagged == 0 {
		t.Fatal("no contracts flagged")
	}
	if r.Destroyed == 0 {
		t.Fatal("Ethainter-Kill destroyed nothing")
	}
	if r.Destroyed > r.Flagged || r.Pinpointed > r.Flagged {
		t.Fatalf("inconsistent counts: %+v", r)
	}
	// Shape: a small fraction of the population is flagged, and a
	// substantial fraction of warnings is actually destroyed (paper: 16.7%
	// as a lower bound).
	if r.FlagRate > 0.25 {
		t.Errorf("flag rate %.2f implausibly high", r.FlagRate)
	}
	if r.KillRate < 0.15 {
		t.Errorf("kill rate %.2f below the paper's lower bound shape", r.KillRate)
	}
	if !strings.Contains(r.Render(), "destroyed") {
		t.Error("render missing content")
	}
}

func TestTable2Shape(t *testing.T) {
	r := Table2(600, testSeed, 4)
	// Accessible selfdestruct should be the most-flagged kind (as in the
	// paper: 1.2% vs 0.17%/0.04%), and staticcall the rarest or near it.
	acc := r.Flagged[core.AccessibleSelfdestruct]
	if acc == 0 {
		t.Fatal("no accessible selfdestruct flags")
	}
	if r.Flagged[core.UncheckedStaticcall] > acc {
		t.Error("staticcall should be rarer than accessible selfdestruct")
	}
	for _, k := range AllKinds() {
		if r.Flagged[k] > r.Total/4 {
			t.Errorf("%s flag rate implausibly high: %d/%d", k, r.Flagged[k], r.Total)
		}
	}
	_ = r.Render()
}

func TestFig6PrecisionBand(t *testing.T) {
	r := Fig6(800, testSeed, 40, 4)
	if r.TotalSeen == 0 {
		t.Fatal("no inspected warnings")
	}
	precision := float64(r.TotalTP) / float64(r.TotalSeen)
	// The trap families must pull precision below 100%, but the analysis
	// should stay in the paper's high-precision band.
	if precision < 0.5 || precision > 0.99 {
		t.Errorf("precision %.2f outside the plausible band (paper: 0.825); per kind: %v", precision, r.PerKind)
	}
	_ = r.Render()
}

func TestSecurifyCmpShape(t *testing.T) {
	r := SecurifyCmp(400, testSeed, 200, 4)
	if r.Sampled == 0 {
		t.Fatal("nothing sampled")
	}
	secRate := float64(r.FlaggedCompat) / float64(r.Sampled)
	ethRate := float64(r.EthainterFlagged) / float64(r.Sampled)
	if secRate < 2*ethRate {
		t.Errorf("Securify flag rate %.2f should dwarf Ethainter's %.2f", secRate, ethRate)
	}
	// Securify's end-to-end precision must be far below Ethainter's.
	secPrec := float64(r.TruePositives) / float64(maxInt(r.Inspected, 1))
	ethPrec := float64(r.EthainterTP) / float64(maxInt(r.EthainterFlagged, 1))
	if secPrec > ethPrec/2 {
		t.Errorf("Securify precision %.2f vs Ethainter %.2f: contrast lost", secPrec, ethPrec)
	}
	_ = r.Render()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(1200, testSeed, 4)
	if r.Universe == 0 {
		t.Fatal("empty universe")
	}
	// Securify2's unrestricted write must report far more than Ethainter's
	// tainted owner; Ethainter must find at least as many real selfdestructs.
	if r.S2OwnerWrite[0] <= r.EthOwner[0] {
		t.Errorf("UnrestrictedWrite (%d) should dwarf tainted owner (%d)", r.S2OwnerWrite[0], r.EthOwner[0])
	}
	if r.EthSelfdestruct[1] < r.S2Selfdestruct[1] {
		t.Errorf("Ethainter TPs (%d) should cover at least Securify2's (%d)", r.EthSelfdestruct[1], r.S2Selfdestruct[1])
	}
	// Securify2 must find zero true delegatecall vulnerabilities (assembly).
	if r.S2Delegatecall[1] != 0 {
		t.Errorf("Securify2 delegatecall TPs = %d, want 0", r.S2Delegatecall[1])
	}
	_ = r.Render()
}

func TestTeetherCmpShape(t *testing.T) {
	r := TeetherCmp(250, testSeed, 4)
	if r.EthainterFlagged == 0 {
		t.Fatal("Ethainter flagged nothing")
	}
	if r.TeetherFlagged >= r.EthainterFlagged {
		t.Errorf("teEther (%d) should flag fewer than Ethainter (%d)", r.TeetherFlagged, r.EthainterFlagged)
	}
	// The reverse sample shows teEther's completeness gap: a clear majority
	// of Ethainter's composite findings are not reproduced (the gap is
	// starker in the paper, whose contracts are two orders of magnitude
	// larger; see EXPERIMENTS.md).
	if r.ReverseSampled > 0 && r.ReverseFound*3 > r.ReverseSampled*2 {
		t.Errorf("teEther found %d/%d of Ethainter's flags; expected a wide gap", r.ReverseFound, r.ReverseSampled)
	}
	_ = r.Render()
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(500, testSeed, 4)
	check := func(k core.VulnKind) {
		def := r.Default[k]
		if def == 0 {
			t.Errorf("%s: no default reports", k)
			return
		}
		if r.NoStorage[k] > def {
			t.Errorf("%s: no-storage (%d) should not exceed default (%d)", k, r.NoStorage[k], def)
		}
		if r.NoGuards[k] < def {
			t.Errorf("%s: no-guards (%d) should be at least default (%d)", k, r.NoGuards[k], def)
		}
		if r.Conservative[k] < def {
			t.Errorf("%s: conservative (%d) should be at least default (%d)", k, r.Conservative[k], def)
		}
	}
	check(core.TaintedSelfdestruct)
	check(core.TaintedOwner)
	// The blow-up under no-guards must be most pronounced for the
	// selfdestruct kinds, as in Figure 8b.
	if r.Default[core.TaintedSelfdestruct] > 0 &&
		r.NoGuards[core.TaintedSelfdestruct] < 2*r.Default[core.TaintedSelfdestruct] {
		t.Errorf("no-guards tainted selfdestruct ratio too small: %d -> %d",
			r.Default[core.TaintedSelfdestruct], r.NoGuards[core.TaintedSelfdestruct])
	}
	// 8a must remove composite findings: tainted selfdestruct shrinks.
	if r.NoStorage[core.TaintedSelfdestruct] >= r.Default[core.TaintedSelfdestruct] &&
		r.Default[core.TaintedSelfdestruct] > 0 {
		t.Errorf("no-storage should shrink tainted selfdestruct: %d -> %d",
			r.Default[core.TaintedSelfdestruct], r.NoStorage[core.TaintedSelfdestruct])
	}
	_ = r.Render()
}

func TestRQ2Runs(t *testing.T) {
	r := RQ2(120, testSeed, 4)
	if r.PerContract <= 0 || r.PerSecond <= 0 {
		t.Fatalf("timing not captured: %+v", r)
	}
	if r.SecurifyRatio <= 0 || r.TeetherRatio <= 0 {
		t.Fatalf("baseline ratios missing: %+v", r)
	}
	// Symbolic execution must be the most expensive approach.
	if r.TeetherRatio < 1 {
		t.Errorf("teether ratio %.2f: symbolic execution should cost more than static analysis", r.TeetherRatio)
	}
	_ = r.Render()
}

// TestWarmRestartContract runs the cold→warm double start at unit scale and
// pins the same invariants bench_compare enforces on the full corpus: the
// warm pass does zero pipeline work, reproduces the cold counts, and yields
// a bit-identical result digest.
func TestWarmRestartContract(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(testN, testSeed))
	wr, err := WarmRestart(contracts, core.DefaultConfig(), 4, 0, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, warm := wr.Cold, wr.Warm
	if cold.Analyzed+cold.Failed != testN {
		t.Fatalf("cold pass covered %d contracts, want %d", cold.Analyzed+cold.Failed, testN)
	}
	if cold.Analyses == 0 || cold.DiskWrites == 0 {
		t.Fatalf("cold pass stats = %+v, want analyses performed and persisted", cold)
	}
	if warm.Analyses != 0 || warm.Decompiles != 0 || warm.UniqueWork != 0 {
		t.Fatalf("warm pass did work: %+v, want everything served from disk", warm)
	}
	if warm.Analyzed != cold.Analyzed || warm.Failed != cold.Failed || warm.Warnings != cold.Warnings {
		t.Fatalf("warm counts %d/%d/%d diverge from cold %d/%d/%d",
			warm.Analyzed, warm.Failed, warm.Warnings, cold.Analyzed, cold.Failed, cold.Warnings)
	}
	if warm.Digest == "" || warm.Digest != cold.Digest {
		t.Fatalf("warm digest %q != cold digest %q", warm.Digest, cold.Digest)
	}
	if warm.DiskHits != cold.DiskMisses {
		t.Fatalf("warm served %d from disk, cold established %d entries' worth of misses",
			warm.DiskHits, cold.DiskMisses)
	}
}

// TestReplicaSweepContract runs the two-replica experiment at unit scale and
// pins the same invariants bench_compare enforces on the full corpus: the
// warm passes do zero pipeline work, every peer fill is accounted for
// exactly, and each warm digest is bit-identical to the other replica's cold
// digest.
func TestReplicaSweepContract(t *testing.T) {
	contracts := corpus.Generate(corpus.DefaultProfile(testN, testSeed))
	rs, err := ReplicaSweep(contracts, core.DefaultConfig(), 4, 0, t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.HalfA+rs.HalfB != testN {
		t.Fatalf("halves %d+%d don't cover the corpus of %d", rs.HalfA, rs.HalfB, testN)
	}
	if rs.SharedUnique == 0 {
		t.Fatalf("corpus split shares no bytecodes; the cross-fill path went unexercised")
	}
	for name, p := range map[string]ReplicaSweepRun{
		"cold A": rs.ColdA, "cold B": rs.ColdB, "warm A": rs.WarmA, "warm B": rs.WarmB,
	} {
		if p.PeerErrors != 0 {
			t.Errorf("%s: %d peer errors on healthy loopback replicas", name, p.PeerErrors)
		}
	}
	// Cold A runs against an empty peer; cold B peer-fills exactly the
	// bytecodes the halves share.
	if rs.ColdA.PeerHits != 0 {
		t.Errorf("cold A peer hits = %d, want 0 (peer was empty)", rs.ColdA.PeerHits)
	}
	if rs.ColdA.Analyses != uint64(rs.UniqueA) {
		t.Errorf("cold A analyses = %d, want one per unique bytecode (%d)", rs.ColdA.Analyses, rs.UniqueA)
	}
	if rs.ColdB.PeerHits != uint64(rs.SharedUnique) {
		t.Errorf("cold B peer hits = %d, want the shared uniques (%d)", rs.ColdB.PeerHits, rs.SharedUnique)
	}
	if rs.ColdB.Analyses != uint64(rs.UniqueB-rs.SharedUnique) {
		t.Errorf("cold B analyses = %d, want %d", rs.ColdB.Analyses, rs.UniqueB-rs.SharedUnique)
	}
	// The warm passes must be pure peer-fill + local reuse: zero pipeline
	// work, and peer hits covering exactly the uniques the replica lacked.
	for name, p := range map[string]ReplicaSweepRun{"warm A": rs.WarmA, "warm B": rs.WarmB} {
		if p.Analyses != 0 || p.Decompiles != 0 || p.UniqueWork != 0 {
			t.Errorf("%s did pipeline work: %+v", name, p)
		}
	}
	if want := uint64(rs.UniqueB - rs.SharedUnique); rs.WarmA.PeerHits != want {
		t.Errorf("warm A peer hits = %d, want %d", rs.WarmA.PeerHits, want)
	}
	if want := uint64(rs.UniqueA - rs.SharedUnique); rs.WarmB.PeerHits != want {
		t.Errorf("warm B peer hits = %d, want %d", rs.WarmB.PeerHits, want)
	}
	if rs.WarmA.PeerHits > 0 && rs.WarmA.PeerFillBytes == 0 {
		t.Errorf("warm A filled %d entries but counted no bytes", rs.WarmA.PeerHits)
	}
	// Each warm digest reproduces the other replica's cold digest over the
	// same half, bit for bit.
	if rs.WarmA.Digest == "" || rs.WarmA.Digest != rs.ColdB.Digest {
		t.Errorf("warm A digest %q != cold B digest %q", rs.WarmA.Digest, rs.ColdB.Digest)
	}
	if rs.WarmB.Digest == "" || rs.WarmB.Digest != rs.ColdA.Digest {
		t.Errorf("warm B digest %q != cold A digest %q", rs.WarmB.Digest, rs.ColdA.Digest)
	}
	if rs.WarmA.Analyzed != rs.ColdB.Analyzed || rs.WarmA.Failed != rs.ColdB.Failed {
		t.Errorf("warm A counts %d/%d diverge from cold B %d/%d",
			rs.WarmA.Analyzed, rs.WarmA.Failed, rs.ColdB.Analyzed, rs.ColdB.Failed)
	}
}
