package bench

import (
	"fmt"
	"sort"
	"time"

	"ethainter/internal/baselines/securify"
	"ethainter/internal/baselines/teether"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

// RQ2Result reproduces Section 6.3: analysis efficiency. The paper reports
// 240K contracts / 38 MLoC in 6 hours on 45 workers, < 5 s average per
// contract including decompilation, ~5x faster than Securify, and far faster
// than symbolic execution.
type RQ2Result struct {
	Contracts int
	Workers   int

	Wall          time.Duration
	PerContract   time.Duration // mean, includes decompilation
	P50, P95      time.Duration
	PerSecond     float64
	SpeedupVsSeq  float64
	SecurifyRatio float64 // securify mean time / ethainter mean time
	TeetherRatio  float64 // teether mean time / ethainter mean time
}

// RQ2 times the full pipeline at two concurrency levels and the baselines on
// a subsample.
func RQ2(n int, seed int64, workers int) *RQ2Result {
	p := corpus.DefaultProfile(n, seed)
	contracts := corpus.Generate(p)

	seq := analyzeAll(contracts, core.DefaultConfig(), 1)
	par := analyzeAll(contracts, core.DefaultConfig(), workers)

	out := &RQ2Result{Contracts: n, Workers: par.Workers, Wall: par.Wall}
	var times []time.Duration
	var total time.Duration
	for _, e := range par.Entries {
		times = append(times, e.Elapsed)
		total += e.Elapsed
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(times) > 0 {
		out.PerContract = total / time.Duration(len(times))
		out.P50 = times[len(times)/2]
		out.P95 = times[len(times)*95/100]
	}
	if par.Wall > 0 {
		out.PerSecond = float64(n) / par.Wall.Seconds()
	}
	if par.Wall > 0 && seq.Wall > 0 {
		out.SpeedupVsSeq = seq.Wall.Seconds() / par.Wall.Seconds()
	}

	// Baseline cost on a subsample (relative means).
	sub := contracts
	if len(sub) > 150 {
		sub = sub[:150]
	}
	var ethMean, secMean, teeMean time.Duration
	teeCfg := teether.DefaultConfig()
	teeCfg.Deadline = 500 * time.Millisecond
	for _, c := range sub {
		t0 := time.Now()
		_, _ = core.AnalyzeBytecode(c.Runtime, core.DefaultConfig())
		ethMean += time.Since(t0)
		t0 = time.Now()
		_, _ = securify.AnalyzeBytecode(c.Runtime)
		secMean += time.Since(t0)
		t0 = time.Now()
		teether.Analyze(c.Runtime, teeCfg)
		teeMean += time.Since(t0)
	}
	if ethMean > 0 {
		out.SecurifyRatio = float64(secMean) / float64(ethMean)
		out.TeetherRatio = float64(teeMean) / float64(ethMean)
	}
	return out
}

// Render prints the efficiency table.
func (r *RQ2Result) Render() string {
	t := &table{
		title:   "Section 6.3 (RQ2): analysis efficiency",
		headers: []string{"metric", "measured", "paper"},
	}
	t.add("contracts analyzed", fmt.Sprintf("%d", r.Contracts), "240,000")
	t.add("workers", fmt.Sprintf("%d", r.Workers), "45")
	t.add("wall-clock", r.Wall.Round(time.Millisecond).String(), "6 h")
	t.add("mean per contract (incl. decompile)", r.PerContract.Round(time.Microsecond).String(), "< 5 s")
	t.add("p50 / p95 per contract",
		fmt.Sprintf("%s / %s", r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond)), "-")
	t.add("contracts per second", fmt.Sprintf("%.1f", r.PerSecond), "~11")
	t.add("parallel speedup vs 1 worker", fmt.Sprintf("%.2fx", r.SpeedupVsSeq), "-")
	t.add("Securify mean cost vs Ethainter", fmt.Sprintf("%.2fx", r.SecurifyRatio), "> 5x slower")
	t.add("symbolic execution (teEther) cost", fmt.Sprintf("%.2fx", r.TeetherRatio), "orders of magnitude (350 s avg for Oyente-class)")
	return t.String()
}
