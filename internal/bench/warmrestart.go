package bench

// Cold-vs-warm process-start benchmark for the persistent cache tier. Two
// "processes" — a fresh cache + scheduler + tier handle each — sweep the same
// corpus against the same directory. The cold pass computes and persists
// everything; the warm pass must perform zero analyses and zero
// decompilations, serving every unique group from disk on the scheduler's
// Lookup fast path, and its result digest must be bit-identical to the cold
// pass's. bench_compare enforces exactly that from the emitted
// `warm_restart` section of BENCH_core.json.

import (
	"context"
	"encoding/hex"
	"os"
	"path/filepath"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/crypto"
	"ethainter/internal/sched"
)

// WarmRestartRun is one process start over the corpus: its wall clock,
// per-result counts, and the cache/scheduler counters that prove where the
// work happened. Digest is a keccak-256 over every per-index outcome in
// corpus order (report content with timings zeroed, or the error text), so
// cold and warm runs are comparable bit-for-bit.
type WarmRestartRun struct {
	WallNS   int64 `json:"wall_ns"`
	Analyzed int   `json:"analyzed"`
	Failed   int   `json:"failed"`
	Warnings int   `json:"warnings"`
	// Analyses/Decompiles count pipeline work actually performed — both must
	// be zero on the warm run.
	Analyses   uint64 `json:"analyses"`
	Decompiles uint64 `json:"decompiles"`
	// MemoryHits/MemoryMisses are the in-memory tier's counters; DiskHits/
	// DiskMisses the persistent tier's read-side split; DiskWrites/
	// DiskScrubbed its write/scrub side (final, after the tier flushed).
	MemoryHits   uint64 `json:"memory_hits"`
	MemoryMisses uint64 `json:"memory_misses"`
	DiskHits     uint64 `json:"disk_hits"`
	DiskMisses   uint64 `json:"disk_misses"`
	DiskWrites   uint64 `json:"disk_writes"`
	DiskScrubbed uint64 `json:"disk_scrubbed"`
	// UniqueWork counts analyses the scheduler dispatched to its pool — zero
	// on the warm run, where the Lookup fast path serves everything.
	UniqueWork uint64 `json:"unique_work"`
	Digest     string `json:"digest"`
}

// WarmRestartResult is the cold→warm double start over one directory.
type WarmRestartResult struct {
	Cold WarmRestartRun `json:"cold"`
	Warm WarmRestartRun `json:"warm"`
}

// WarmRestart runs the cold→warm double start. dir must start empty (or not
// exist): the cold pass populates it, the warm pass re-opens it. maxBytes
// budgets the tier (0 = unbounded); a budget that evicts mid-run breaks the
// zero-work warm invariant, so baselines always pass 0.
func WarmRestart(contracts []*corpus.Contract, cfg core.Config, workers, cacheShards int, dir string, maxBytes int64) (*WarmRestartResult, error) {
	out := &WarmRestartResult{}
	var err error
	if out.Cold, err = warmRestartPass("warm_restart(cold)", contracts, cfg, workers, cacheShards, dir, maxBytes); err != nil {
		return nil, err
	}
	if out.Warm, err = warmRestartPass("warm_restart(warm)", contracts, cfg, workers, cacheShards, dir, maxBytes); err != nil {
		return nil, err
	}
	return out, nil
}

// warmRestartPass is one simulated process start: open the tier, sweep the
// corpus through a fresh scheduler, close the scheduler, then close the tier
// so the write-behind queue is flushed before the counters are read.
func warmRestartPass(label string, contracts []*corpus.Contract, cfg core.Config, workers, cacheShards int, dir string, maxBytes int64) (WarmRestartRun, error) {
	var run WarmRestartRun
	tier, err := core.OpenDiskTierBudget(dir, maxBytes)
	if err != nil {
		return run, err
	}
	cache := core.NewCacheSharded(0, cacheShards)
	cache.SetDiskTier(tier)
	s := sched.New(cache, workers)

	codes := make([][]byte, len(contracts))
	for i, c := range contracts {
		codes[i] = c.Runtime
	}
	prog := newProgress(label, len(contracts))
	start := time.Now()
	results := s.Sweep(context.Background(), codes, cfg, func(int, sched.Result) { prog.step() })
	run.WallNS = int64(time.Since(start))
	prog.finish()
	run.UniqueWork = s.Stats().Unique
	s.Close()
	if err := tier.Close(); err != nil {
		return run, err
	}

	// Counters only after the tier drained: DiskWrites must be final.
	cs := cache.Stats()
	run.Analyses = cs.Analyses
	run.Decompiles = cs.Decompiles
	run.MemoryHits = cs.Hits
	run.MemoryMisses = cs.Misses
	run.DiskHits = cs.DiskHits
	run.DiskMisses = cs.DiskMisses
	run.DiskWrites = cs.DiskWrites
	run.DiskScrubbed = cs.DiskScrubbed

	run.Analyzed, run.Failed, run.Warnings, run.Digest = digestResults(results)
	return run, nil
}

// digestResults folds per-index sweep outcomes, in input order, into counts
// and a canonical digest: keccak-256 over a tagged concatenation of report
// digests (timings zeroed) and error texts. Two sweeps over the same inputs
// agree bit-for-bit exactly when every outcome does.
func digestResults(results []sched.Result) (analyzed, failed, warnings int, digest string) {
	var buf []byte
	for _, res := range results {
		if res.Err != nil {
			failed++
			buf = append(buf, 1)
			buf = append(buf, res.Err.Error()...)
			continue
		}
		analyzed++
		warnings += len(res.Report.Warnings)
		d := res.Report.Digest()
		buf = append(buf, 0)
		buf = append(buf, d[:]...)
	}
	sum := crypto.Keccak256(buf)
	return analyzed, failed, warnings, hex.EncodeToString(sum[:])
}

// benchDir resolves where a double-start benchmark keeps its persistent
// state: a throwaway temp directory by default (removed by cleanup), or
// <cacheDir>/<name> when the caller pinned one — wiped first, because the
// cold passes must be cold.
func benchDir(cacheDir, name string) (dir string, cleanup func(), err error) {
	if cacheDir == "" {
		dir, err = os.MkdirTemp("", "ethainter-"+name+"-")
		if err != nil {
			return "", nil, err
		}
		return dir, func() { os.RemoveAll(dir) }, nil
	}
	dir = filepath.Join(cacheDir, name)
	if err := os.RemoveAll(dir); err != nil {
		return "", nil, err
	}
	return dir, func() {}, nil
}
