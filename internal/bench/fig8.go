package bench

import (
	"fmt"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

// Fig8Result reproduces Figure 8: report counts per vulnerability under the
// three design-decision ablations, normalized to the default analysis.
type Fig8Result struct {
	Total   int
	Default map[core.VulnKind]int
	// NoStorage is Figure 8a (completeness drop: ratios < 1).
	NoStorage map[core.VulnKind]int
	// NoGuards is Figure 8b (precision drop: ratios >> 1).
	NoGuards map[core.VulnKind]int
	// Conservative is Figure 8c (precision drop).
	Conservative map[core.VulnKind]int
}

// Fig8 runs the four configurations on one corpus.
func Fig8(n int, seed int64, workers int) *Fig8Result {
	p := corpus.DefaultProfile(n, seed)
	p.VulnFraction = 0.08
	p.TrapFraction = 0.03
	contracts := corpus.Generate(p)

	count := func(cfg core.Config) map[core.VulnKind]int {
		d := analyzeAll(contracts, cfg, workers)
		out := map[core.VulnKind]int{}
		for _, e := range d.Entries {
			for _, k := range AllKinds() {
				if e.flaggedFor(k) {
					out[k]++
				}
			}
		}
		return out
	}
	def := core.DefaultConfig()
	noStorage := def
	noStorage.ModelStorageTaint = false
	noGuards := def
	noGuards.ModelGuards = false
	conservative := def
	conservative.ConservativeStorage = true

	return &Fig8Result{
		Total:        n,
		Default:      count(def),
		NoStorage:    count(noStorage),
		NoGuards:     count(noGuards),
		Conservative: count(conservative),
	}
}

// fig8Paper holds the paper's reported ratios for the four charted kinds.
var fig8Paper = map[core.VulnKind][3]string{
	core.TaintedSelfdestruct: {"0.44", "21.31", "21.00"},
	core.TaintedOwner:        {"0.75", "26.34", "2.51"},
	core.UncheckedStaticcall: {"0.75", "3.50", "3.08"},
	core.TaintedDelegatecall: {"0.69", "2.00", "1.13"},
}

// Render prints the ablation ratios.
func (r *Fig8Result) Render() string {
	t := &table{
		title: "Figure 8: design-decision ablations (report ratio vs default)",
		headers: []string{
			"vulnerability", "default#",
			"8a no-storage", "paper", "8b no-guards", "paper", "8c conservative", "paper",
		},
	}
	for _, k := range []core.VulnKind{
		core.TaintedSelfdestruct, core.TaintedOwner,
		core.UncheckedStaticcall, core.TaintedDelegatecall,
	} {
		paper := fig8Paper[k]
		t.add(k.String(),
			fmt.Sprintf("%d", r.Default[k]),
			ratio(r.NoStorage[k], r.Default[k]), paper[0],
			ratio(r.NoGuards[k], r.Default[k]), paper[1],
			ratio(r.Conservative[k], r.Default[k]), paper[2],
		)
	}
	t.add("accessible selfdestruct",
		fmt.Sprintf("%d", r.Default[core.AccessibleSelfdestruct]),
		ratio(r.NoStorage[core.AccessibleSelfdestruct], r.Default[core.AccessibleSelfdestruct]), "-",
		ratio(r.NoGuards[core.AccessibleSelfdestruct], r.Default[core.AccessibleSelfdestruct]), "-",
		ratio(r.Conservative[core.AccessibleSelfdestruct], r.Default[core.AccessibleSelfdestruct]), "-",
	)
	t.note("8a drops taint-through-storage (completeness: ratios < 1)")
	t.note("8b drops guard modeling (precision: ratios > 1, largest for tainted selfdestruct/owner)")
	t.note("8c models unknown storage conservatively (precision: ratios > 1)")
	return t.String()
}
