package bench

// Two-replica cache-sharing benchmark for the peer-fill protocol. Two
// replicas — each a full serving stack: persistent disk tier, sharded cache,
// real HTTP server on a loopback port — are cross-wired as each other's cache
// peers. Each replica cold-analyzes half the corpus, then sweeps the OTHER
// half: every unique group of that second pass must be served over the
// peer-fill protocol (or from entries the replica already holds), performing
// zero analyses and zero decompilations, with a result digest bit-identical
// to the other replica's cold pass. bench_compare enforces exactly that from
// the emitted `replica_sweep` section of BENCH_core.json.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/crypto"
	"ethainter/internal/sched"
	"ethainter/internal/server"
)

// ReplicaSweepRun is one pass of one replica over one half of the corpus:
// wall clock, per-result counts, the pass's share of the replica's cache
// counters (before/after snapshot difference — the cache persists across both
// of a replica's passes, the way a process's does), and the digest over the
// half in input order (same formula as warm_restart, so digests are
// comparable across replicas bit-for-bit).
type ReplicaSweepRun struct {
	WallNS   int64 `json:"wall_ns"`
	Analyzed int   `json:"analyzed"`
	Failed   int   `json:"failed"`
	Warnings int   `json:"warnings"`
	// Analyses/Decompiles count pipeline work performed during this pass —
	// both must be zero on the warm passes.
	Analyses   uint64 `json:"analyses"`
	Decompiles uint64 `json:"decompiles"`
	// MemoryHits/DiskHits locate local serving; PeerHits counts entries
	// filled from the other replica (PeerMisses its clean all-miss probes,
	// PeerErrors its failed ones — always zero on healthy loopback).
	MemoryHits    uint64 `json:"memory_hits"`
	DiskHits      uint64 `json:"disk_hits"`
	PeerHits      uint64 `json:"peer_hits"`
	PeerMisses    uint64 `json:"peer_misses"`
	PeerErrors    uint64 `json:"peer_errors"`
	PeerFillBytes uint64 `json:"peer_fill_bytes"`
	// UniqueWork counts analyses the scheduler dispatched to its pool — zero
	// on the warm passes, where the Lookup fast path serves everything.
	UniqueWork uint64 `json:"unique_work"`
	Digest     string `json:"digest"`
}

// ReplicaSweepResult is the four-pass, two-replica experiment: A and B each
// analyze their own half cold, then each sweeps the other half warm over the
// peer-fill protocol.
type ReplicaSweepResult struct {
	// HalfA/HalfB are the contract counts of the two halves; UniqueA/UniqueB
	// their unique-bytecode counts; SharedUnique the bytecodes present in
	// both halves (the synthetic corpus duplicates across the split, so the
	// second cold pass already peer-fills the shared ones).
	HalfA         int   `json:"half_a"`
	HalfB         int   `json:"half_b"`
	UniqueA       int   `json:"unique_a"`
	UniqueB       int   `json:"unique_b"`
	SharedUnique  int   `json:"shared_unique"`
	PeerTimeoutNS int64 `json:"peer_timeout_ns"`

	ColdA ReplicaSweepRun `json:"cold_a"`
	ColdB ReplicaSweepRun `json:"cold_b"`
	WarmA ReplicaSweepRun `json:"warm_a"`
	WarmB ReplicaSweepRun `json:"warm_b"`
}

// replica is one simulated serving process: its own cache directory, disk
// tier, sharded cache, and HTTP server listening on a loopback port; after
// cross-wiring, a remote tier pointed at the other replica.
type replica struct {
	tier   *core.DiskTier
	cache  *core.Cache
	remote *core.RemoteTier
	ln     net.Listener
	srv    *http.Server
}

// startReplica boots one replica and begins serving its cache (including the
// peer-fill endpoint) on 127.0.0.1:0.
func startReplica(dir string, cfg core.Config, cacheShards int, maxBytes int64) (*replica, error) {
	tier, err := core.OpenDiskTierBudget(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	cache := core.NewCacheSharded(0, cacheShards)
	cache.SetDiskTier(tier)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tier.Close()
		return nil, err
	}
	srv := &http.Server{Handler: server.NewWithCache(cfg, cache).Handler()}
	go srv.Serve(ln)
	return &replica{tier: tier, cache: cache, ln: ln, srv: srv}, nil
}

// addr is the replica's peer address, as another replica's -cache-peers
// entry would name it.
func (r *replica) addr() string { return r.ln.Addr().String() }

func (r *replica) stop() {
	r.srv.Close()
	if r.remote != nil {
		r.remote.Close()
	}
	r.tier.Close()
}

// ReplicaSweep runs the four-pass experiment. dir must start empty; each
// replica keeps its tier under its own subdirectory. maxBytes budgets the
// tiers (0 = unbounded; a budget that evicts mid-run breaks the zero-work
// invariants). peerTimeout bounds each peer probe (0 = DefaultPeerTimeout).
func ReplicaSweep(contracts []*corpus.Contract, cfg core.Config, workers, cacheShards int, dir string, maxBytes int64, peerTimeout time.Duration) (*ReplicaSweepResult, error) {
	if peerTimeout <= 0 {
		peerTimeout = core.DefaultPeerTimeout
	}
	half := len(contracts) / 2
	halfA, halfB := contracts[:half], contracts[half:]

	uniq := func(cs []*corpus.Contract) map[[32]byte]bool {
		m := map[[32]byte]bool{}
		for _, c := range cs {
			m[crypto.Keccak256(c.Runtime)] = true
		}
		return m
	}
	ua, ub := uniq(halfA), uniq(halfB)
	shared := 0
	for h := range ua {
		if ub[h] {
			shared++
		}
	}

	ra, err := startReplica(dir+"/replica_a", cfg, cacheShards, maxBytes)
	if err != nil {
		return nil, fmt.Errorf("replica A: %w", err)
	}
	defer ra.stop()
	rb, err := startReplica(dir+"/replica_b", cfg, cacheShards, maxBytes)
	if err != nil {
		return nil, fmt.Errorf("replica B: %w", err)
	}
	defer rb.stop()

	// Cross-wire after both replicas serve and before any analysis, so even
	// the cold passes run with a live (mostly-missing) peer — the production
	// shape, and what makes ColdB's shared-bytecode peer fills possible.
	ra.remote = core.NewRemoteTier([]string{rb.addr()}, peerTimeout)
	ra.cache.SetRemoteTier(ra.remote)
	rb.remote = core.NewRemoteTier([]string{ra.addr()}, peerTimeout)
	rb.cache.SetRemoteTier(rb.remote)

	res := &ReplicaSweepResult{
		HalfA:         len(halfA),
		HalfB:         len(halfB),
		UniqueA:       len(ua),
		UniqueB:       len(ub),
		SharedUnique:  shared,
		PeerTimeoutNS: int64(peerTimeout),
	}
	res.ColdA = replicaPass("replica_sweep(cold A)", ra, halfA, cfg, workers)
	res.ColdB = replicaPass("replica_sweep(cold B)", rb, halfB, cfg, workers)
	res.WarmA = replicaPass("replica_sweep(warm A<-B)", ra, halfB, cfg, workers)
	res.WarmB = replicaPass("replica_sweep(warm B<-A)", rb, halfA, cfg, workers)
	return res, nil
}

// replicaPass sweeps one half through a fresh scheduler over the replica's
// long-lived cache. Counters are reported as the difference of Stats
// snapshots taken around the pass, attributing exactly this pass's work; the
// peer-fill serving side reads entries memory-first, so the pass needs no
// tier flush before its peer can serve what it computed.
func replicaPass(label string, r *replica, contracts []*corpus.Contract, cfg core.Config, workers int) ReplicaSweepRun {
	var run ReplicaSweepRun
	before := r.cache.Stats()
	s := sched.New(r.cache, workers)
	codes := make([][]byte, len(contracts))
	for i, c := range contracts {
		codes[i] = c.Runtime
	}
	prog := newProgress(label, len(contracts))
	start := time.Now()
	results := s.Sweep(context.Background(), codes, cfg, func(int, sched.Result) { prog.step() })
	run.WallNS = int64(time.Since(start))
	prog.finish()
	run.UniqueWork = s.Stats().Unique
	s.Close()

	after := r.cache.Stats()
	run.Analyses = after.Analyses - before.Analyses
	run.Decompiles = after.Decompiles - before.Decompiles
	run.MemoryHits = after.Hits - before.Hits
	run.DiskHits = after.DiskHits - before.DiskHits
	run.PeerHits = after.PeerHits - before.PeerHits
	run.PeerMisses = after.PeerMisses - before.PeerMisses
	run.PeerErrors = after.PeerErrors - before.PeerErrors
	run.PeerFillBytes = after.PeerFillBytes - before.PeerFillBytes
	run.Analyzed, run.Failed, run.Warnings, run.Digest = digestResults(results)
	return run
}
