package bench

import (
	"fmt"

	"ethainter/internal/chain"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/evm"
	"ethainter/internal/kill"
	"ethainter/internal/u256"
)

// Exp1Result reproduces Section 6.1: the automated end-to-end exploit sweep
// over a testnet population (paper: 4,800/882,000 flagged = 0.54%; 3,003
// pinpointed; 805 destroyed = 16.7% of warnings).
type Exp1Result struct {
	Total      int
	Flagged    int
	Pinpointed int
	Destroyed  int
	FlagRate   float64
	KillRate   float64 // destroyed / flagged
}

// Exp1 deploys a low-vulnerability-rate population on the chain simulator,
// analyzes every contract, and lets Ethainter-Kill loose on the flagged ones.
func Exp1(n int, seed int64, workers int) *Exp1Result {
	p := corpus.DefaultProfile(n, seed)
	p.VulnFraction = 0.008 // testnet-like base rate
	p.TrapFraction = 0.016
	contracts := corpus.Generate(p)
	d := analyzeAll(contracts, core.DefaultConfig(), workers)

	// Deploy everything on the "Ropsten fork".
	ch := chain.New()
	deployer := ch.NewAccount(u256.MustHex("0xffffffffffffffff"))
	reports := map[evm.Address]*core.Report{}
	for _, e := range d.Entries {
		if e.Err != nil {
			continue
		}
		var addr evm.Address
		if e.Contract.Compiled != nil {
			r := ch.Deploy(deployer, e.Contract.Compiled.Deploy, u256.Zero)
			if r.Err != nil {
				continue
			}
			addr = r.Created
		} else {
			addr = ch.DeployRuntime(e.Contract.Runtime, u256.Zero)
		}
		if !e.Contract.Balance.IsZero() {
			ch.State.AddBalance(addr, e.Contract.Balance)
			ch.State.Finalize()
		}
		reports[addr] = e.Report
	}
	stats := kill.New(ch).Sweep(reports)
	out := &Exp1Result{
		Total:      n,
		Flagged:    stats.Flagged,
		Pinpointed: stats.Pinpointed,
		Destroyed:  stats.Destroyed,
	}
	if n > 0 {
		out.FlagRate = float64(stats.Flagged) / float64(n)
	}
	if stats.Flagged > 0 {
		out.KillRate = float64(stats.Destroyed) / float64(stats.Flagged)
	}
	return out
}

// Render prints the Experiment 1 table next to the paper's numbers.
func (r *Exp1Result) Render() string {
	t := &table{
		title:   "Experiment 1 (Section 6.1): automated end-to-end exploits",
		headers: []string{"metric", "measured", "paper"},
	}
	t.add("contracts scanned", fmt.Sprintf("%d", r.Total), "882,000")
	t.add("flagged (selfdestruct kinds)", fmt.Sprintf("%d (%.2f%%)", r.Flagged, 100*r.FlagRate), "4,800 (0.54%)")
	t.add("pinpointed entry points", fmt.Sprintf("%d", r.Pinpointed), "3,003")
	t.add("destroyed by Ethainter-Kill", fmt.Sprintf("%d (%.1f%% of warnings)", r.Destroyed, 100*r.KillRate), "805 (16.7%)")
	t.note("destruction rate is a lower bound on true-positive rate, as in the paper")
	return t.String()
}
