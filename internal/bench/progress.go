package bench

import (
	"fmt"
	"io"
	"sync"
)

// progressOut is where sweep progress goes; nil (the default) disables it so
// tests and JSON consumers get clean output. cmd/ethainter-bench points it at
// stderr under -progress.
var (
	progressMu  sync.Mutex
	progressOut io.Writer
)

// SetProgressOutput routes sweep progress lines to w (nil disables). Multiple
// concurrent sweeps share the writer; every redraw is serialized.
func SetProgressOutput(w io.Writer) {
	progressMu.Lock()
	defer progressMu.Unlock()
	progressOut = w
}

func progressOutput() io.Writer {
	progressMu.Lock()
	defer progressMu.Unlock()
	return progressOut
}

// progress redraws one carriage-return-terminated counter line as concurrent
// sweep workers report completions. All updates funnel through one mutex and
// each redraw is a single Write call, so multi-worker sweeps cannot
// interleave partial lines — the bug this type exists to prevent. A nil
// *progress is a no-op, so call sites never branch on whether progress is on.
type progress struct {
	mu     sync.Mutex
	w      io.Writer
	label  string
	done   int
	total  int
	stride int // redraw every stride completions (and on the last)
}

// newProgress starts a progress line over total units; returns nil (silent)
// when the package-level output is unset or total is zero.
func newProgress(label string, total int) *progress {
	w := progressOutput()
	if w == nil || total <= 0 {
		return nil
	}
	return &progress{w: w, label: label, total: total, stride: max(1, total/100)}
}

// step records one completed unit and redraws the line at stride boundaries.
func (p *progress) step() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.done%p.stride == 0 || p.done == p.total {
		fmt.Fprintf(p.w, "\r%s: %d/%d", p.label, p.done, p.total)
	}
}

// finish terminates the line so subsequent output starts on a fresh one.
func (p *progress) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "\r%s: %d/%d done\n", p.label, p.done, p.total)
}
