// Package bench implements the evaluation harness: one runner per table and
// figure in the paper's Section 6, over the synthetic corpus of package
// corpus. Each runner returns a structured result and renders a table in the
// shape of the paper's, so EXPERIMENTS.md can juxtapose paper-reported and
// measured values.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/u256"
)

// Entry is one analyzed corpus contract.
type Entry struct {
	Contract *corpus.Contract
	Report   *core.Report // nil when analysis failed
	Err      error
	Elapsed  time.Duration
}

// Dataset is an analyzed corpus.
type Dataset struct {
	Entries []Entry
	// Workers used for the parallel sweep.
	Workers int
	// Wall is the total wall-clock analysis time.
	Wall time.Duration
}

// Failed counts decompile/analysis failures (the paper's timeouts).
func (d *Dataset) Failed() int {
	n := 0
	for _, e := range d.Entries {
		if e.Err != nil {
			n++
		}
	}
	return n
}

// Build generates the corpus and analyzes every contract with the given
// config, using the worker count of the paper's setup scaled to this machine.
func Build(p corpus.Profile, cfg core.Config, workers int) *Dataset {
	contracts := corpus.Generate(p)
	return analyzeAll(contracts, cfg, workers)
}

func analyzeAll(contracts []*corpus.Contract, cfg core.Config, workers int) *Dataset {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d := &Dataset{Entries: make([]Entry, len(contracts)), Workers: workers}
	prog := newProgress("analyze", len(contracts))
	start := time.Now()
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := contracts[i]
				t0 := time.Now()
				rep, err := core.AnalyzeBytecode(c.Runtime, cfg)
				d.Entries[i] = Entry{Contract: c, Report: rep, Err: err, Elapsed: time.Since(t0)}
				prog.step()
			}
		}()
	}
	for i := range contracts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	prog.finish()
	d.Wall = time.Since(start)
	return d
}

// AllKinds lists the five vulnerability classes in the paper's table order.
func AllKinds() []core.VulnKind {
	return []core.VulnKind{
		core.AccessibleSelfdestruct,
		core.TaintedSelfdestruct,
		core.TaintedOwner,
		core.UncheckedStaticcall,
		core.TaintedDelegatecall,
	}
}

// flaggedFor reports whether the entry was flagged for the kind.
func (e Entry) flaggedFor(k core.VulnKind) bool {
	return e.Report != nil && e.Report.Has(k)
}

// flaggedAny reports whether the entry carries any warning.
func (e Entry) flaggedAny() bool {
	return e.Report != nil && len(e.Report.Warnings) > 0
}

// truePositiveFor compares a flag against ground truth.
func (e Entry) truePositiveFor(k core.VulnKind) bool {
	return e.Contract.Truth[k]
}

// --- table rendering helpers ---

type table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}

func ratio(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(num)/float64(den))
}

func sumWei(ws []u256.U256) string {
	total := u256.Zero
	for _, w := range ws {
		total = total.Add(w)
	}
	if total.IsUint64() {
		return fmt.Sprintf("%d", total.Uint64())
	}
	return total.String()
}

// sortedKinds gives deterministic iteration for maps keyed by kind.
func sortedKinds(m map[core.VulnKind]int) []core.VulnKind {
	var ks []core.VulnKind
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
