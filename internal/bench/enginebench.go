package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"ethainter/internal/datalog"
)

// engineScalingN is the ladder size of the scaling workload — the same
// join-heavy chain transitive closure as BenchmarkDatalogFixpoint, scaled up
// so per-iteration delta ranges are wide enough to chunk across workers.
const engineScalingN = 400

// EngineScalingPoint is one worker count on the Datalog fixpoint scaling
// curve: best-of-three wall clock plus the engine's own stage attribution.
type EngineScalingPoint struct {
	Workers    int   `json:"workers"`
	WallNS     int64 `json:"wall_ns"`
	IndexNS    int64 `json:"index_ns"`
	JoinNS     int64 `json:"join_ns"`
	MergeNS    int64 `json:"merge_ns"`
	Iterations int   `json:"iterations"`
	Tasks      int   `json:"tasks"`
	Tuples     int   `json:"tuples"`
	// Speedup is sequential wall / this wall (1.0 for the workers=1 point).
	Speedup float64 `json:"speedup"`
}

// scalingWorkerCounts picks the curve's x axis: sequential, 2, 4, one worker
// per core, and the explicitly requested parallelism, deduplicated and
// sorted. On a single-core machine the curve still runs (documenting the
// coordination overhead) — the speedup column is only meaningful with cores
// to spread across.
func scalingWorkerCounts(parallelism int) []int {
	want := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	if parallelism > 1 {
		want = append(want, parallelism)
	}
	seen := map[int]bool{}
	out := make([]int, 0, len(want))
	for _, w := range want {
		if w >= 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}

// engineLadder builds the scaling workload: a ladder graph (two successors
// per node) closed transitively, plus a cycle-membership rule.
func engineLadder(n int) *datalog.Program {
	p := datalog.NewProgram()
	p.MustParse(`
		path(X, Y) :- edge(X, Y).
		path(X, Z) :- path(X, Y), edge(Y, Z).
		meet(X) :- path(X, Y), path(Y, X).
	`)
	for j := 0; j < n; j++ {
		p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+1)%n))
		p.AddFact("edge", fmt.Sprint(j), fmt.Sprint((j+7)%n))
	}
	return p
}

// EngineScaling runs the fixpoint at each worker count (best of three runs
// per point, fresh program each run so arenas and indices are cold) and
// reports the curve. The derived tuple counts must be identical at every
// point — the parallel engine is exact, not approximate — and are included so
// bench_compare can assert that.
func EngineScaling(n int, workerCounts []int) []EngineScalingPoint {
	out := make([]EngineScalingPoint, 0, len(workerCounts))
	var seqWall int64
	for _, workers := range workerCounts {
		var best EngineScalingPoint
		for rep := 0; rep < 3; rep++ {
			p := engineLadder(n)
			p.SetParallelism(workers)
			start := time.Now()
			if err := p.Run(); err != nil {
				panic(fmt.Sprintf("bench: engine scaling run failed: %v", err))
			}
			wall := int64(time.Since(start))
			if rep == 0 || wall < best.WallNS {
				st := p.EngineStats()
				best = EngineScalingPoint{
					Workers:    workers,
					WallNS:     wall,
					IndexNS:    int64(st.IndexBuild),
					JoinNS:     int64(st.Join),
					MergeNS:    int64(st.Merge),
					Iterations: st.Iterations,
					Tasks:      st.Tasks,
					Tuples:     p.Count("path") + p.Count("meet"),
				}
			}
		}
		if workers == 1 {
			seqWall = best.WallNS
		}
		if seqWall > 0 && best.WallNS > 0 {
			best.Speedup = float64(seqWall) / float64(best.WallNS)
		}
		out = append(out, best)
	}
	return out
}
