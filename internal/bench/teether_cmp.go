package bench

import (
	"fmt"
	"sort"
	"time"

	"ethainter/internal/baselines/teether"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

// TeetherResult reproduces the Section 6.2 teEther comparison: overlap on
// accessible selfdestruct, the reverse sample (teEther on Ethainter-flagged
// contracts), and the completeness ratio.
type TeetherResult struct {
	Total            int
	TeetherFlagged   int
	OverlapEthainter int // teether-flagged also flagged by Ethainter
	EthainterFlagged int

	// Reverse sample: teEther on up to 20 Ethainter-flagged contracts.
	ReverseSampled  int
	ReverseFound    int
	ReverseMissed   int
	ReverseTimeouts int
}

// TeetherCmp runs both tools on the same population.
func TeetherCmp(n int, seed int64, workers int) *TeetherResult {
	return teetherCmpWithDeadline(n, seed, workers, 500*time.Millisecond)
}

func teetherCmpWithDeadline(n int, seed int64, workers int, deadline time.Duration) *TeetherResult {
	p := corpus.DefaultProfile(n, seed)
	p.VulnFraction = 0.12
	// Decompiler-hostile-but-executable contracts (vsaBuster) are where
	// symbolic execution finds what the static pipeline cannot lift — the
	// population behind the paper's ~23% teEther-only findings.
	p.ExoticFraction = 0.03
	d := Build(p, core.DefaultConfig(), workers)
	cfg := teether.DefaultConfig()
	cfg.Deadline = deadline // the 120 s cutoff, scaled to corpus contract size

	out := &TeetherResult{Total: n}
	var ethFlagged []Entry
	for _, e := range d.Entries {
		teeRes := teether.Analyze(e.Contract.Runtime, cfg)
		teeHit := teether.Flagged(teeRes, teether.AccessibleSelfdestruct) ||
			teether.Flagged(teeRes, teether.TaintedSelfdestruct)
		ethHit := e.flaggedFor(core.AccessibleSelfdestruct) || e.flaggedFor(core.TaintedSelfdestruct)
		if teeHit {
			out.TeetherFlagged++
			if ethHit {
				out.OverlapEthainter++
			}
		}
		if ethHit {
			out.EthainterFlagged++
			ethFlagged = append(ethFlagged, e)
		}
	}
	// Reverse sample: the paper hand-checked 20 Ethainter-flagged contracts,
	// drawn from the warnings exercising Ethainter's distinctive machinery.
	// Bias the sample toward composite findings (multi-transaction
	// witnesses) the same way, falling back to the rest.
	chainLen := func(e Entry) int {
		longest := 0
		for _, w := range e.Report.Warnings {
			if len(w.Witness) > longest {
				longest = len(w.Witness)
			}
		}
		return longest
	}
	ordered := append([]Entry{}, ethFlagged...)
	sort.SliceStable(ordered, func(i, j int) bool { return chainLen(ordered[i]) > chainLen(ordered[j]) })
	for _, e := range ordered {
		if out.ReverseSampled >= 20 {
			break
		}
		out.ReverseSampled++
		res := teether.Analyze(e.Contract.Runtime, cfg)
		switch {
		case len(res.Findings) > 0:
			out.ReverseFound++
		case res.TimedOut:
			out.ReverseTimeouts++
		default:
			out.ReverseMissed++
		}
	}
	return out
}

// Render prints the comparison.
func (r *TeetherResult) Render() string {
	t := &table{
		title:   "Section 6.2: comparison with teEther (static vs symbolic execution)",
		headers: []string{"metric", "measured", "paper"},
	}
	t.add("teEther flags (selfdestruct kinds)", fmt.Sprintf("%d", r.TeetherFlagged), "463")
	t.add("of those, also flagged by Ethainter", fmt.Sprintf("%d (%s)", r.OverlapEthainter, pct(r.OverlapEthainter, r.TeetherFlagged)), "358 (77%)")
	t.add("Ethainter flags", fmt.Sprintf("%d (%sx teEther)", r.EthainterFlagged, ratio(r.EthainterFlagged, r.TeetherFlagged)), ">2,800 (>6x)")
	t.add("reverse sample: teEther finds", fmt.Sprintf("%d/%d", r.ReverseFound, r.ReverseSampled), "0/20")
	t.add("reverse sample: missed", fmt.Sprintf("%d", r.ReverseMissed), "13")
	t.add("reverse sample: timeouts/errors", fmt.Sprintf("%d", r.ReverseTimeouts), "5+2")
	return t.String()
}
