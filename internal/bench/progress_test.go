package bench

import (
	"regexp"
	"sync"
	"testing"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

// writeRecorder captures every individual Write call, so a test can assert
// each one is a complete progress line — a torn line would surface as a
// fragmentary write.
type writeRecorder struct {
	mu     sync.Mutex
	writes []string
}

func (r *writeRecorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writes = append(r.writes, string(p))
	return len(p), nil
}

// TestProgressWritesAreWholeLines drives a real multi-worker sweep through
// the progress writer and checks that every single Write is one whole
// "\rlabel: d/t" redraw: concurrent workers must never interleave fragments,
// which is exactly what corrupted multi-worker bench output before writes
// were serialized.
func TestProgressWritesAreWholeLines(t *testing.T) {
	rec := &writeRecorder{}
	SetProgressOutput(rec)
	defer SetProgressOutput(nil)

	contracts := corpus.Generate(corpus.DefaultProfile(40, 7))
	d := analyzeAll(contracts, core.DefaultConfig(), 8)
	if len(d.Entries) != 40 {
		t.Fatalf("analyzed %d entries, want 40", len(d.Entries))
	}

	line := regexp.MustCompile(`^\ranalyze: \d+/40( done\n)?$`)
	if len(rec.writes) == 0 {
		t.Fatal("progress produced no writes")
	}
	for i, w := range rec.writes {
		if !line.MatchString(w) {
			t.Fatalf("write %d is not one whole progress line: %q", i, w)
		}
	}
	last := rec.writes[len(rec.writes)-1]
	if last != "\ranalyze: 40/40 done\n" {
		t.Errorf("final write = %q, want the finished line", last)
	}
}

// TestProgressDisabled pins the default: with no output configured the sweep
// writes nothing and the nil *progress path is exercised end to end.
func TestProgressDisabled(t *testing.T) {
	SetProgressOutput(nil)
	if p := newProgress("x", 10); p != nil {
		t.Fatalf("newProgress with no output = %v, want nil", p)
	}
	// nil receiver methods must be safe.
	var p *progress
	p.step()
	p.finish()
}
