package bench

import (
	"fmt"
	"sync"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/crypto"
)

// ConfigSweepPoint is one configuration's pass over the corpus through the
// shared cache. The first point pays for decompilation and the facts stratum;
// every later point reanalyzes on the shared facts and runs only the
// config-dependent guards + taint fixpoint per unique bytecode — Speedup is
// the first point's wall over this point's wall.
type ConfigSweepPoint struct {
	Config   string `json:"config"`
	WallNS   int64  `json:"wall_ns"`
	Analyzed int    `json:"analyzed"`
	Failed   int    `json:"failed"`
	Warnings int    `json:"warnings"`
	// FactsComputed/FactsHits are this pass's deltas of the cache's
	// FactsMisses/FactsHits counters: the first pass computes facts once per
	// unique decompilable bytecode, every later pass must compute zero.
	FactsComputed uint64  `json:"facts_computed"`
	FactsHits     uint64  `json:"facts_hits"`
	Speedup       float64 `json:"speedup"`
}

// ConfigSweepResult is the shared-facts reanalysis experiment: the corpus
// analyzed under the default config and every Figure 8 ablation variant
// through ONE cache. The invariant bench_compare enforces: no matter how many
// configs run, the facts stratum is computed exactly once per unique
// decompilable bytecode — FactsComputed == UniqueOK, and every pass after the
// first computes zero.
type ConfigSweepResult struct {
	// UniqueOK counts unique bytecodes that decompiled successfully — the
	// population that has a facts stratum at all.
	UniqueOK int `json:"unique_ok"`
	// FactsComputed is the cache's final FactsMisses: total facts strata
	// computed across every config.
	FactsComputed uint64 `json:"facts_computed"`
	// FactsHits is the cache's final FactsHits: analyses that reused a
	// memoized stratum.
	FactsHits uint64 `json:"facts_hits"`
	// ReanalysisSpeedup is the first config's wall over the mean wall of the
	// subsequent configs — the headline gain of sharing facts.
	ReanalysisSpeedup float64            `json:"reanalysis_speedup"`
	Configs           []ConfigSweepPoint `json:"configs"`
}

// configSweepVariants is the ordered config list: default first (it pays the
// cold facts cost), then the Figure 8 ablation variants.
func configSweepVariants() []struct {
	name string
	cfg  core.Config
} {
	noGuards := core.DefaultConfig()
	noGuards.ModelGuards = false
	noStorage := core.DefaultConfig()
	noStorage.ModelStorageTaint = false
	conservative := core.DefaultConfig()
	conservative.ConservativeStorage = true
	noOwner := core.DefaultConfig()
	noOwner.InferOwnerSinks = false
	return []struct {
		name string
		cfg  core.Config
	}{
		{"default", core.DefaultConfig()},
		{"noGuards", noGuards},
		{"noStorage", noStorage},
		{"conservative", conservative},
		{"noOwnerSinks", noOwner},
	}
}

// ConfigSweep runs the corpus under every variant through one shared cache.
// base contributes the decompilation budget and parallelism, which every
// variant inherits (they are fingerprint-relevant, so varying them would
// defeat the program sharing being measured).
func ConfigSweep(contracts []*corpus.Contract, base core.Config, workers, cacheShards int) *ConfigSweepResult {
	cache := core.NewCacheSharded(0, cacheShards)
	variants := configSweepVariants()
	out := &ConfigSweepResult{Configs: make([]ConfigSweepPoint, 0, len(variants))}

	var prev core.CacheStats
	uniqueOK := map[[32]byte]bool{}
	for vi, v := range variants {
		cfg := v.cfg
		cfg.Parallelism = base.Parallelism
		cfg.DecompileLimits = base.DecompileLimits

		errs := make([]error, len(contracts))
		reports := make([]*core.Report, len(contracts))
		prog := newProgress(fmt.Sprintf("config_sweep(%s)", v.name), len(contracts))
		start := time.Now()
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					reports[i], errs[i] = cache.AnalyzeBytecode(contracts[i].Runtime, cfg)
					prog.step()
				}
			}()
		}
		for i := range contracts {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		p := ConfigSweepPoint{Config: v.name, WallNS: int64(time.Since(start))}
		prog.finish()

		for i, rep := range reports {
			if errs[i] != nil {
				p.Failed++
				continue
			}
			p.Analyzed++
			p.Warnings += len(rep.Warnings)
			if vi == 0 {
				uniqueOK[crypto.Keccak256(contracts[i].Runtime)] = true
			}
		}
		st := cache.Stats()
		p.FactsComputed = st.FactsMisses - prev.FactsMisses
		p.FactsHits = st.FactsHits - prev.FactsHits
		prev = st
		if first := out.Configs; len(first) > 0 && p.WallNS > 0 {
			p.Speedup = float64(first[0].WallNS) / float64(p.WallNS)
		} else {
			p.Speedup = 1
		}
		out.Configs = append(out.Configs, p)
	}

	st := cache.Stats()
	out.UniqueOK = len(uniqueOK)
	out.FactsComputed = st.FactsMisses
	out.FactsHits = st.FactsHits
	if len(out.Configs) > 1 {
		var sum int64
		for _, p := range out.Configs[1:] {
			sum += p.WallNS
		}
		if mean := float64(sum) / float64(len(out.Configs)-1); mean > 0 {
			out.ReanalysisSpeedup = float64(out.Configs[0].WallNS) / mean
		}
	}
	return out
}
