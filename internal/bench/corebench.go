package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/crypto"
	"ethainter/internal/decompiler"
	"ethainter/internal/sched"
)

// StageNS is a per-stage wall-clock breakdown in nanoseconds, summed over a
// sweep. Cached sweeps attribute each stage once per unique (bytecode, config)
// pair — a hit costs a lookup, not a re-analysis.
type StageNS struct {
	Decompile int64 `json:"decompile_ns"`
	Facts     int64 `json:"facts_ns"`
	Guards    int64 `json:"guards_ns"`
	Fixpoint  int64 `json:"fixpoint_ns"`
	Detect    int64 `json:"detect_ns"`

	// The decompile sub-stages refine Decompile: bytecode decode, value-set
	// fixpoint, TAC translation, and function discovery.
	DecompileDecode    int64 `json:"decompile_decode_ns,omitempty"`
	DecompileValueSet  int64 `json:"decompile_valueset_ns,omitempty"`
	DecompileTranslate int64 `json:"decompile_translate_ns,omitempty"`
	DecompileFunctions int64 `json:"decompile_functions_ns,omitempty"`

	// The engine sub-stages refine Fixpoint when the Datalog engine ran it;
	// the compiled Go fixpoint leaves them zero.
	EngineIndex int64 `json:"engine_index_ns,omitempty"`
	EngineJoin  int64 `json:"engine_join_ns,omitempty"`
	EngineMerge int64 `json:"engine_merge_ns,omitempty"`
}

func (s *StageNS) add(t core.StageTimings) {
	s.Decompile += int64(t.Decompile)
	s.Facts += int64(t.Facts)
	s.Guards += int64(t.Guards)
	s.Fixpoint += int64(t.Fixpoint)
	s.Detect += int64(t.Detect)
	s.DecompileDecode += int64(t.DecompileDecode)
	s.DecompileValueSet += int64(t.DecompileValueSet)
	s.DecompileTranslate += int64(t.DecompileTranslate)
	s.DecompileFunctions += int64(t.DecompileFunctions)
	s.EngineIndex += int64(t.EngineIndex)
	s.EngineJoin += int64(t.EngineJoin)
	s.EngineMerge += int64(t.EngineMerge)
}

func (s StageNS) total() int64 {
	return s.Decompile + s.Facts + s.Guards + s.Fixpoint + s.Detect
}

// SweepResult is one pass over the corpus. Sched is populated when the pass
// ran through the sweep scheduler: its unique_work/coalesced counts verify
// that the sweep performed exactly one analysis per unique bytecode with the
// remainder served by fan-out.
type SweepResult struct {
	WallNS   int64           `json:"wall_ns"`
	Analyzed int             `json:"analyzed"`
	Failed   int             `json:"failed"`
	Warnings int             `json:"warnings"`
	Stages   StageNS         `json:"stage_ns"`
	Cache    core.CacheStats `json:"cache,omitzero"`
	Sched    sched.Stats     `json:"sched,omitzero"`
}

// CoreBenchResult is the core performance experiment: the same corpus swept
// without and with the content-addressed cache, with per-stage attribution.
type CoreBenchResult struct {
	Name            string `json:"name"`
	N               int    `json:"n"`
	Seed            int64  `json:"seed"`
	Workers         int    `json:"workers"`
	Parallelism     int    `json:"parallelism"`
	UniqueBytecodes int    `json:"unique_bytecodes"`
	// GoMaxProcs and NumCPU pin the machine shape the numbers were taken on;
	// comparisons across different CPU counts are apples-to-oranges for
	// wall-clock, and bench_compare skips those checks when they differ.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// CacheShards is the shard count of the sweep caches (0 = default).
	CacheShards int         `json:"cache_shards,omitempty"`
	Uncached    SweepResult `json:"uncached"`
	Cached      SweepResult `json:"cached"`
	Speedup     float64     `json:"speedup"`
	// EngineScaling is the Datalog fixpoint scaling curve: the same
	// transitive-closure workload at increasing intra-fixpoint worker counts.
	EngineScaling []EngineScalingPoint `json:"engine_scaling"`
	// SweepScaling is the headline curve: the full corpus swept through the
	// dedup-aware scheduler at increasing cross-contract worker counts, each
	// point on a fresh cold cache so every point does identical unique work.
	SweepScaling []SweepScalingPoint `json:"sweep_scaling"`
	// WarmRestart is the cold→warm double process start over the persistent
	// cache tier: the warm run must perform zero analyses and zero
	// decompilations with a result digest bit-identical to the cold run's
	// (bench_compare enforces it). Nil when the double start failed.
	WarmRestart *WarmRestartResult `json:"warm_restart,omitempty"`
	// ReplicaSweep is the two-replica cache-sharing benchmark: each replica
	// cold-analyzes half the corpus, then sweeps the other half served
	// entirely over the peer-fill protocol — zero analyses, zero
	// decompilations, digests bit-identical to the cold passes
	// (bench_compare enforces it). Nil when the double boot failed.
	ReplicaSweep *ReplicaSweepResult `json:"replica_sweep,omitempty"`
	// ConfigSweep is the shared-facts reanalysis experiment: every ablation
	// config over one cache, facts computed exactly once per unique bytecode
	// (bench_compare enforces it). Nil in baselines that predate the section.
	ConfigSweep *ConfigSweepResult `json:"config_sweep,omitempty"`
}

// SweepScalingPoint is one worker count on the cross-contract sweep curve.
// The analysis is deterministic, so Analyzed/Failed/Warnings/UniqueWork must
// be bit-identical at every worker count (bench_compare enforces it); only
// the wall may move.
type SweepScalingPoint struct {
	Workers  int   `json:"workers"`
	WallNS   int64 `json:"wall_ns"`
	Analyzed int   `json:"analyzed"`
	Failed   int   `json:"failed"`
	Warnings int   `json:"warnings"`
	// UniqueWork counts analyses actually dispatched (one per unique
	// bytecode); Coalesced counts requests served by fan-out instead.
	UniqueWork uint64 `json:"unique_work"`
	Coalesced  uint64 `json:"coalesced"`
	CacheHits  uint64 `json:"cache_hits"`
	// ShardContended counts cache shard-lock acquisitions that had to block.
	ShardContended uint64 `json:"shard_contended"`
	// Speedup is the 1-worker wall / this wall (1.0 for the workers=1 point).
	Speedup float64 `json:"speedup"`
}

// CoreOptions parameterizes the core experiment. The zero value of every
// field is a sensible default; callers set only what they pin.
type CoreOptions struct {
	// N and Seed shape the synthetic corpus (DefaultProfile).
	N    int
	Seed int64
	// Workers is the cross-contract pool size (<= 0 = one per core);
	// Parallelism the intra-fixpoint Datalog worker count.
	Workers     int
	Parallelism int
	// SweepWorkers shapes the sweep_scaling curve's x axis (see
	// sweepScalingWorkerCounts); CacheShards sizes the sweep caches (0 =
	// default).
	SweepWorkers int
	CacheShards  int
	// CacheDir pins where the warm-restart and replica-sweep double starts
	// keep their persistent tiers ("" = throwaway temp directories).
	CacheDir string
	// MaxDiskBytes caps those persistent tiers' on-disk size (0 = unbounded).
	// Budgets small enough to evict mid-benchmark will break the zero-work
	// warm-pass invariants bench_compare enforces — use for ad-hoc
	// measurement, not the committed baseline.
	MaxDiskBytes int64
	// Peers attaches a remote peer-fill tier to the headline cached sweep,
	// probing live replicas at these addresses on local misses. Warm peers
	// change the sweep's dedup invariants, so this too is for ad-hoc
	// measurement only; the replica_sweep section always wires its own two
	// loopback replicas regardless.
	Peers       []string
	PeerTimeout time.Duration
	// Limits is the decompilation work budget (zero value = defaults).
	Limits decompiler.Limits
}

// CoreBench generates the default corpus profile and sweeps it twice with the
// production config: once analyzing every contract from scratch, once through
// the dedup-aware sweep scheduler over a sharded core.Cache. The synthetic
// corpus reuses bytecodes across contracts the way the chain does (the paper
// dedups ~2.5M deployed contracts down to ~240K unique ones), so the
// scheduler's planned dedup — exactly one analysis per unique bytecode, the
// rest fanned out — is the headline mechanism, and the sweep_scaling curve
// (the scheduled sweep at increasing worker counts) the headline number.
func CoreBench(o CoreOptions) *CoreBenchResult {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	contracts := corpus.Generate(corpus.DefaultProfile(o.N, o.Seed))
	cfg := core.DefaultConfig()
	cfg.Parallelism = o.Parallelism
	cfg.DecompileLimits = o.Limits

	unique := map[[32]byte]bool{}
	for _, c := range contracts {
		unique[crypto.Keccak256(c.Runtime)] = true
	}

	res := &CoreBenchResult{
		Name:            "core",
		N:               o.N,
		Seed:            o.Seed,
		Workers:         workers,
		Parallelism:     o.Parallelism,
		UniqueBytecodes: len(unique),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		CacheShards:     o.CacheShards,
	}
	res.Uncached = sweep(contracts, cfg, workers, nil)
	res.Cached = sweepScheduled("sweep(cached)", contracts, cfg, workers, o.CacheShards, o.Peers, o.PeerTimeout)
	if res.Cached.WallNS > 0 {
		res.Speedup = float64(res.Uncached.WallNS) / float64(res.Cached.WallNS)
	}
	res.EngineScaling = EngineScaling(engineScalingN, scalingWorkerCounts(o.Parallelism))
	res.SweepScaling = SweepScaling(contracts, cfg, sweepScalingWorkerCounts(o.SweepWorkers), o.CacheShards)
	res.ConfigSweep = ConfigSweep(contracts, cfg, workers, o.CacheShards)
	if dir, cleanup, err := benchDir(o.CacheDir, "warm_restart"); err != nil {
		fmt.Fprintf(os.Stderr, "warm_restart: %v\n", err)
	} else {
		res.WarmRestart, err = WarmRestart(contracts, cfg, workers, o.CacheShards, dir, o.MaxDiskBytes)
		cleanup()
		if err != nil {
			fmt.Fprintf(os.Stderr, "warm_restart: %v\n", err)
		}
	}
	if dir, cleanup, err := benchDir(o.CacheDir, "replica_sweep"); err != nil {
		fmt.Fprintf(os.Stderr, "replica_sweep: %v\n", err)
	} else {
		res.ReplicaSweep, err = ReplicaSweep(contracts, cfg, workers, o.CacheShards, dir, o.MaxDiskBytes, o.PeerTimeout)
		cleanup()
		if err != nil {
			fmt.Fprintf(os.Stderr, "replica_sweep: %v\n", err)
		}
	}
	return res
}

// sweepScalingWorkerCounts picks the sweep curve's x axis: {1, 2, 4, 8} by
// default (the ISSUE's headline shape), or {1, requested} when an explicit
// sweep worker count is given — CI uses that to run a cheap two-point curve.
func sweepScalingWorkerCounts(sweepWorkers int) []int {
	if sweepWorkers > 0 {
		if sweepWorkers == 1 {
			return []int{1}
		}
		return []int{1, sweepWorkers}
	}
	return []int{1, 2, 4, 8}
}

// SweepScaling sweeps the corpus through the scheduler once per worker count,
// each point on a fresh cold cache so every point performs identical unique
// work. Counts must be bit-identical across points — the scheduler changes
// only who computes what when, never the result.
func SweepScaling(contracts []*corpus.Contract, cfg core.Config, workerCounts []int, cacheShards int) []SweepScalingPoint {
	out := make([]SweepScalingPoint, 0, len(workerCounts))
	var baseWall int64
	for _, workers := range workerCounts {
		r := sweepScheduled(fmt.Sprintf("sweep_scaling(workers=%d)", workers), contracts, cfg, workers, cacheShards, nil, 0)
		p := SweepScalingPoint{
			Workers:        workers,
			WallNS:         r.WallNS,
			Analyzed:       r.Analyzed,
			Failed:         r.Failed,
			Warnings:       r.Warnings,
			UniqueWork:     r.Sched.Unique,
			Coalesced:      r.Sched.Coalesced,
			CacheHits:      r.Sched.CacheHits,
			ShardContended: r.Cache.Contended,
		}
		if workers == workerCounts[0] {
			baseWall = p.WallNS
		}
		if baseWall > 0 && p.WallNS > 0 {
			p.Speedup = float64(baseWall) / float64(p.WallNS)
		}
		out = append(out, p)
	}
	return out
}

// sweepScheduled analyzes every contract through a fresh scheduler over a
// fresh sharded cache — the same code path /batch serves. Stage times are
// summed per distinct report, so fanned-out (shared) reports are attributed
// once, matching the work actually done. When peers is non-empty a remote
// peer-fill tier is attached, so local misses probe live replicas the way a
// serving process with -cache-peers would.
func sweepScheduled(label string, contracts []*corpus.Contract, cfg core.Config, workers, cacheShards int, peers []string, peerTimeout time.Duration) SweepResult {
	codes := make([][]byte, len(contracts))
	for i, c := range contracts {
		codes[i] = c.Runtime
	}
	cache := core.NewCacheSharded(0, cacheShards)
	if remote := core.NewRemoteTier(peers, peerTimeout); remote != nil {
		cache.SetRemoteTier(remote)
		defer remote.Close()
	}
	s := sched.New(cache, workers)
	defer s.Close()

	prog := newProgress(label, len(contracts))
	start := time.Now()
	results := s.Sweep(context.Background(), codes, cfg, func(int, sched.Result) { prog.step() })
	out := SweepResult{WallNS: int64(time.Since(start))}
	prog.finish()

	seen := map[*core.Report]bool{}
	for _, res := range results {
		if res.Err != nil {
			out.Failed++
			continue
		}
		out.Analyzed++
		out.Warnings += len(res.Report.Warnings)
		if seen[res.Report] {
			continue
		}
		seen[res.Report] = true
		out.Stages.add(res.Report.Stats.Timings)
	}
	out.Cache = cache.Stats()
	out.Sched = s.Stats()
	return out
}

// sweep analyzes every contract, through the cache when one is given. Stage
// times are summed per distinct report, so shared (cached) reports are
// attributed once — matching the work actually done.
func sweep(contracts []*corpus.Contract, cfg core.Config, workers int, cache *core.Cache) SweepResult {
	reports := make([]*core.Report, len(contracts))
	errs := make([]error, len(contracts))

	label := "sweep(uncached)"
	if cache != nil {
		label = "sweep(cached)"
	}
	prog := newProgress(label, len(contracts))
	start := time.Now()
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if cache != nil {
					reports[i], errs[i] = cache.AnalyzeBytecode(contracts[i].Runtime, cfg)
				} else {
					reports[i], errs[i] = core.AnalyzeBytecode(contracts[i].Runtime, cfg)
				}
				prog.step()
			}
		}()
	}
	for i := range contracts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	prog.finish()

	out := SweepResult{WallNS: int64(time.Since(start))}
	seen := map[*core.Report]bool{}
	for i, rep := range reports {
		if errs[i] != nil {
			out.Failed++
			continue
		}
		out.Analyzed++
		out.Warnings += len(rep.Warnings)
		if seen[rep] {
			continue
		}
		seen[rep] = true
		out.Stages.add(rep.Stats.Timings)
	}
	return out
}

// Render draws the core performance table.
func (r *CoreBenchResult) Render() string {
	t := &table{
		title:   "Core performance: per-stage timings and analysis cache",
		headers: []string{"sweep", "wall", "decompile", "facts", "guards", "fixpoint", "detect", "analyzed", "failed"},
	}
	row := func(name string, s SweepResult) {
		t.add(name,
			fmtNS(s.WallNS),
			fmtNS(s.Stages.Decompile),
			fmtNS(s.Stages.Facts),
			fmtNS(s.Stages.Guards),
			fmtNS(s.Stages.Fixpoint),
			fmtNS(s.Stages.Detect),
			fmt.Sprintf("%d", s.Analyzed),
			fmt.Sprintf("%d", s.Failed),
		)
	}
	row("uncached", r.Uncached)
	row("cached", r.Cached)
	cs := r.Cached.Cache
	t.note("corpus: %d contracts, %d unique bytecodes (%.1f%% duplication), seed %d, %d workers",
		r.N, r.UniqueBytecodes, 100*(1-float64(r.UniqueBytecodes)/float64(max(r.N, 1))), r.Seed, r.Workers)
	t.note("cache: %d hits / %d misses (%.1f%% hit rate), %d evictions, %d entries, %d shards",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions, cs.Entries, cs.Shards)
	t.note("scheduler: %d unique analyses, %d requests coalesced by fan-out, %d fast-path hits",
		r.Cached.Sched.Unique, r.Cached.Sched.Coalesced, r.Cached.Sched.CacheHits)
	t.note("cached sweep speedup: %.2fx wall clock", r.Speedup)
	if tot := r.Uncached.Stages.total(); tot > 0 {
		t.note("uncached stage split: decompile %.0f%%, facts %.0f%%, guards %.0f%%, fixpoint %.0f%%, detect %.0f%%",
			100*float64(r.Uncached.Stages.Decompile)/float64(tot),
			100*float64(r.Uncached.Stages.Facts)/float64(tot),
			100*float64(r.Uncached.Stages.Guards)/float64(tot),
			100*float64(r.Uncached.Stages.Fixpoint)/float64(tot),
			100*float64(r.Uncached.Stages.Detect)/float64(tot))
	}
	if s := r.Uncached.Stages; s.Decompile > 0 {
		t.note("uncached decompile split: decode %s, value-set %s, translate %s, functions %s",
			fmtNS(s.DecompileDecode), fmtNS(s.DecompileValueSet), fmtNS(s.DecompileTranslate), fmtNS(s.DecompileFunctions))
	}
	for _, p := range r.EngineScaling {
		t.note("engine scaling: %d worker(s): wall %s (index %s, join %s, merge %s), %d tuples, %.2fx",
			p.Workers, fmtNS(p.WallNS), fmtNS(p.IndexNS), fmtNS(p.JoinNS), fmtNS(p.MergeNS), p.Tuples, p.Speedup)
	}
	for _, p := range r.SweepScaling {
		t.note("sweep scaling: %d worker(s): wall %s, %d analyzed / %d failed / %d warnings, %d unique + %d coalesced, %d contended, %.2fx",
			p.Workers, fmtNS(p.WallNS), p.Analyzed, p.Failed, p.Warnings, p.UniqueWork, p.Coalesced, p.ShardContended, p.Speedup)
	}
	if sw := r.ConfigSweep; sw != nil {
		for _, p := range sw.Configs {
			t.note("config sweep: %-12s wall %s, %d analyzed / %d failed / %d warnings, %d facts computed + %d reused, %.2fx",
				p.Config, fmtNS(p.WallNS), p.Analyzed, p.Failed, p.Warnings, p.FactsComputed, p.FactsHits, p.Speedup)
		}
		t.note("config sweep: %d unique decompilable bytecodes, %d facts computed total, %d reuses, reanalysis speedup %.2fx",
			sw.UniqueOK, sw.FactsComputed, sw.FactsHits, sw.ReanalysisSpeedup)
	}
	if wr := r.WarmRestart; wr != nil {
		t.note("warm restart: cold %s (%d analyses, %d decompiles, %d disk writes) -> warm %s (%d analyses, %d decompiles, %d disk hits)",
			fmtNS(wr.Cold.WallNS), wr.Cold.Analyses, wr.Cold.Decompiles, wr.Cold.DiskWrites,
			fmtNS(wr.Warm.WallNS), wr.Warm.Analyses, wr.Warm.Decompiles, wr.Warm.DiskHits)
		if wr.Cold.WallNS > 0 && wr.Warm.WallNS > 0 {
			t.note("warm restart speedup: %.2fx wall clock, digests %s",
				float64(wr.Cold.WallNS)/float64(wr.Warm.WallNS),
				map[bool]string{true: "identical", false: "DIVERGENT"}[wr.Cold.Digest == wr.Warm.Digest])
		}
	}
	if rs := r.ReplicaSweep; rs != nil {
		t.note("replica sweep: halves %d+%d contracts, %d+%d unique (%d shared), peer timeout %s",
			rs.HalfA, rs.HalfB, rs.UniqueA, rs.UniqueB, rs.SharedUnique, fmtNS(rs.PeerTimeoutNS))
		rrow := func(name string, p ReplicaSweepRun) {
			t.note("replica sweep %-12s wall %s, %d analyses, %d decompiles, %d peer hits (%s filled), %d peer errors",
				name+":", fmtNS(p.WallNS), p.Analyses, p.Decompiles, p.PeerHits, fmtBytes(int64(p.PeerFillBytes)), p.PeerErrors)
		}
		rrow("cold A", rs.ColdA)
		rrow("cold B", rs.ColdB)
		rrow("warm A<-B", rs.WarmA)
		rrow("warm B<-A", rs.WarmB)
		t.note("replica sweep digests: A<-B %s, B<-A %s",
			map[bool]string{true: "identical", false: "DIVERGENT"}[rs.WarmA.Digest == rs.ColdB.Digest],
			map[bool]string{true: "identical", false: "DIVERGENT"}[rs.WarmB.Digest == rs.ColdA.Digest])
	}
	return t.String()
}

// JSON serializes the result for BENCH_core.json.
func (r *CoreBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}
