package bench

import (
	"errors"
	"fmt"

	"ethainter/internal/baselines/securify2"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
)

// Fig7Result reproduces Figure 7: Ethainter vs Securify2 on the universe of
// source-available, compiler-compatible contracts.
type Fig7Result struct {
	Universe int

	S2NoFacts  int // excluded before the universe, like the paper's 1,182
	S2Timeouts int
	EthTimeout int

	// Reports and true positives per category.
	S2Selfdestruct  [2]int // {reports, TP}
	EthSelfdestruct [2]int
	S2OwnerWrite    [2]int // UnrestrictedWrite vs tainted owner
	EthOwner        [2]int
	S2Delegatecall  [2]int
	EthDelegatecall [2]int
}

// Fig7 runs both tools over the Securify2-compatible subset.
func Fig7(n int, seed int64, workers int) *Fig7Result {
	p := corpus.DefaultProfile(n, seed)
	p.VulnFraction = 0.10
	p.TrapFraction = 0.04
	d := Build(p, core.DefaultConfig(), workers)
	out := &Fig7Result{}
	for _, e := range d.Entries {
		c := e.Contract
		if !c.HasVerifiedSource || !c.Solc058 || c.Source == "" {
			continue
		}
		vs, err := securify2.Analyze(c.Source)
		if errors.Is(err, securify2.ErrNoFacts) {
			out.S2NoFacts++
			continue // excluded from the universe, as in the paper
		}
		out.Universe++
		if err != nil {
			out.S2Timeouts++
		} else if s2SimulatedTimeout(c) {
			// Securify2's 120 s timeouts hit ~7% of its universe; the
			// simulator has no 100x-slow contracts, so the rate is imposed
			// deterministically per contract.
			out.S2Timeouts++
			vs = nil
		}
		if e.Err != nil {
			out.EthTimeout++
		}

		count := func(cell *[2]int, flagged bool, truth bool) {
			if flagged {
				cell[0]++
				if truth {
					cell[1]++
				}
			}
		}
		count(&out.S2Selfdestruct, securify2.Flagged(vs, securify2.UnrestrictedSelfdestruct), c.Truth[core.AccessibleSelfdestruct])
		count(&out.S2OwnerWrite, securify2.Flagged(vs, securify2.UnrestrictedWrite), c.Truth[core.TaintedOwner])
		count(&out.S2Delegatecall, securify2.Flagged(vs, securify2.UnrestrictedDelegateCall), c.Truth[core.TaintedDelegatecall])

		count(&out.EthSelfdestruct, e.flaggedFor(core.AccessibleSelfdestruct), c.Truth[core.AccessibleSelfdestruct])
		count(&out.EthOwner, e.flaggedFor(core.TaintedOwner), c.Truth[core.TaintedOwner])
		count(&out.EthDelegatecall, e.flaggedFor(core.TaintedDelegatecall), c.Truth[core.TaintedDelegatecall])
	}
	return out
}

// s2SimulatedTimeout imposes a deterministic ~7% timeout rate.
func s2SimulatedTimeout(c *corpus.Contract) bool {
	return (uint32(c.Index)*2654435761)%100 < 7
}

// Render prints the Figure 7 table.
func (r *Fig7Result) Render() string {
	t := &table{
		title:   "Figure 7: Securify2 vs Ethainter over the source universe",
		headers: []string{"row", "Securify2", "Ethainter", "paper (S2 vs Eth)"},
	}
	cell := func(c [2]int) string { return fmt.Sprintf("%d (TP %d/%d)", c[0], c[1], c[0]) }
	t.add("universe", fmt.Sprintf("%d", r.Universe), fmt.Sprintf("%d", r.Universe), "6,094")
	t.add("timeouts", fmt.Sprintf("%d", r.S2Timeouts), fmt.Sprintf("%d", r.EthTimeout), "441 vs 117")
	t.add("accessible selfdestruct", cell(r.S2Selfdestruct), cell(r.EthSelfdestruct), "5 (5/5) vs 15 (11/15)")
	t.add("tainted owner / unr. write", cell(r.S2OwnerWrite), cell(r.EthOwner), "3,502 (0/10 sampled) vs 161 (6/10 sampled)")
	t.add("tainted delegatecall", cell(r.S2Delegatecall), cell(r.EthDelegatecall), "3 (0/3) vs 21 (15/21)")
	t.note("contracts whose source defeats fact extraction (excluded pre-universe, paper: 1,182): %d", r.S2NoFacts)
	return t.String()
}
