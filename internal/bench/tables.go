package bench

import (
	"fmt"
	"math/rand"

	"ethainter/internal/baselines/securify"
	"ethainter/internal/core"
	"ethainter/internal/corpus"
	"ethainter/internal/u256"
)

// Table2Result reproduces the Section 6.2 flag-rate table: per-vulnerability
// percentage of unique contracts flagged and the ETH held by flagged
// contracts.
type Table2Result struct {
	Total   int
	Flagged map[core.VulnKind]int
	EthHeld map[core.VulnKind]u256.U256
}

// Table2 runs the mainnet-shaped sweep.
func Table2(n int, seed int64, workers int) *Table2Result {
	d := Build(corpus.DefaultProfile(n, seed), core.DefaultConfig(), workers)
	out := &Table2Result{
		Total:   n,
		Flagged: map[core.VulnKind]int{},
		EthHeld: map[core.VulnKind]u256.U256{},
	}
	for _, e := range d.Entries {
		for _, k := range AllKinds() {
			if e.flaggedFor(k) {
				out.Flagged[k]++
				out.EthHeld[k] = out.EthHeld[k].Add(e.Contract.Balance)
			}
		}
	}
	return out
}

// paperTable2 holds the paper's reported values for juxtaposition.
var paperTable2 = map[core.VulnKind]string{
	core.AccessibleSelfdestruct: "1.20%",
	core.TaintedSelfdestruct:    "0.17%",
	core.TaintedOwner:           "1.33%",
	core.UncheckedStaticcall:    "0.04%",
	core.TaintedDelegatecall:    "0.17%",
}

// Render prints the flag-rate table.
func (r *Table2Result) Render() string {
	t := &table{
		title:   "Section 6.2 table: flagged unique contracts per vulnerability",
		headers: []string{"vulnerability", "measured", "paper", "wei held (sim)"},
	}
	for _, k := range AllKinds() {
		held := "0"
		if v, ok := r.EthHeld[k]; ok {
			held = sumWei([]u256.U256{v})
		}
		t.add(k.String(), pct(r.Flagged[k], r.Total), paperTable2[k], held)
	}
	return t.String()
}

// Fig6Result reproduces the Figure 6 inspection: precision per vulnerability
// kind over a random sample of flagged, source-available contracts. Ground
// truth replaces manual inspection.
type Fig6Result struct {
	SampleSize int
	PerKind    map[core.VulnKind][2]int // {true positives, inspected}
	TotalTP    int
	TotalSeen  int
}

// Fig6 samples flagged contracts like the paper: random over flagged,
// source-verified contracts until the sample covers every flagged category.
func Fig6(n int, seed int64, sample int, workers int) *Fig6Result {
	p := corpus.DefaultProfile(n, seed)
	p.VulnFraction = 0.10 // inspection needs enough flagged contracts
	p.TrapFraction = 0.02
	d := Build(p, core.DefaultConfig(), workers)

	var flagged []Entry
	for _, e := range d.Entries {
		if e.flaggedAny() && e.Contract.HasVerifiedSource {
			flagged = append(flagged, e)
		}
	}
	r := rand.New(rand.NewSource(seed * 31))
	r.Shuffle(len(flagged), func(i, j int) { flagged[i], flagged[j] = flagged[j], flagged[i] })
	if sample > len(flagged) {
		sample = len(flagged)
	}
	out := &Fig6Result{SampleSize: sample, PerKind: map[core.VulnKind][2]int{}}
	for _, e := range flagged[:sample] {
		for _, k := range AllKinds() {
			if !e.flaggedFor(k) {
				continue
			}
			cell := out.PerKind[k]
			cell[1]++
			out.TotalSeen++
			if e.truePositiveFor(k) {
				cell[0]++
				out.TotalTP++
			}
			out.PerKind[k] = cell
		}
	}
	return out
}

// paperFig6 holds Figure 6's per-kind inspection outcomes.
var paperFig6 = map[core.VulnKind]string{
	core.AccessibleSelfdestruct: "10/10",
	core.TaintedSelfdestruct:    "6/6",
	core.TaintedOwner:           "15/21",
	core.TaintedDelegatecall:    "1/1",
	core.UncheckedStaticcall:    "1/2",
}

// Render prints the inspection summary.
func (r *Fig6Result) Render() string {
	t := &table{
		title:   "Figure 6: inspected warnings (ground truth in place of manual inspection)",
		headers: []string{"vulnerability", "measured TP", "paper TP"},
	}
	for _, k := range AllKinds() {
		cell := r.PerKind[k]
		t.add(k.String(), fmt.Sprintf("%d/%d", cell[0], cell[1]), paperFig6[k])
	}
	t.add("TOTAL precision",
		fmt.Sprintf("%s (%d/%d)", pct(r.TotalTP, r.TotalSeen), r.TotalTP, r.TotalSeen),
		"82.5% (33/40)")
	return t.String()
}

// SecurifyResult reproduces the Securify comparison of Section 6.2: flag
// rates over a sample and end-to-end precision of sampled violations.
type SecurifyResult struct {
	Sampled          int
	FlaggedCompat    int // flagged for the comparable violations
	FlaggedAny       int
	Inspected        int
	TruePositives    int
	EthainterFlagged int // same-universe Ethainter flags, for contrast
	EthainterTP      int
	Errors           int
}

// SecurifyCmp runs Securify over a corpus sample (the paper used 2K).
func SecurifyCmp(n int, seed int64, sample int, workers int) *SecurifyResult {
	p := corpus.DefaultProfile(n, seed)
	d := Build(p, core.DefaultConfig(), workers)
	out := &SecurifyResult{}
	r := rand.New(rand.NewSource(seed * 17))
	idx := r.Perm(len(d.Entries))
	for _, i := range idx {
		if out.Sampled >= sample {
			break
		}
		e := d.Entries[i]
		out.Sampled++
		vs, err := securify.AnalyzeBytecode(e.Contract.Runtime)
		if err != nil {
			out.Errors++
			continue
		}
		comparable := securify.Flagged(vs, securify.UnrestrictedWrite) ||
			securify.Flagged(vs, securify.MissingInputValidation)
		if comparable {
			out.FlaggedCompat++
			out.Inspected++
			if e.Contract.Vulnerable() {
				out.TruePositives++
			}
		}
		if len(vs) > 0 {
			out.FlaggedAny++
		}
		if e.flaggedAny() {
			out.EthainterFlagged++
			if e.Contract.Vulnerable() {
				out.EthainterTP++
			}
		}
	}
	return out
}

// Render prints the Securify comparison.
func (r *SecurifyResult) Render() string {
	t := &table{
		title:   "Section 6.2: comparison with Securify",
		headers: []string{"metric", "measured", "paper"},
	}
	t.add("sampled contracts", fmt.Sprintf("%d", r.Sampled), "2,000")
	t.add("flagged (comparable violations)", pct(r.FlaggedCompat, r.Sampled), "39.2%")
	t.add("flagged (any violation)", pct(r.FlaggedAny, r.Sampled), "75%")
	t.add("end-to-end precision of flags", pct(r.TruePositives, r.Inspected), "0% (0/40)")
	t.add("Ethainter flags on same sample", pct(r.EthainterFlagged, r.Sampled), "-")
	t.add("Ethainter precision on same sample", pct(r.EthainterTP, r.EthainterFlagged), "82.5%")
	t.note("a Securify flag counts as a true positive if the contract has any real vulnerability")
	return t.String()
}
