package abstract

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The Section 3.1 "tainted owner variable" scenario in the abstract language:
//
//	initOwner:  in := INPUT(); SSTORE(in, slotOwnerAddr)   (public setter)
//	kill:       SLOAD(slotOwnerAddr, o); p := (sender = o)
//	            g := GUARD(p, in2); SINK(g)
func taintedOwnerProgram() *Program {
	return &Program{
		Instrs: []Instr{
			Input("in"),
			SStore("in", "ownerAddr"), // ownerAddr holds constant slot 0
			SLoad("slot0var", "o"),
			Eq("p", Sender, "o"),
			Input("in2"),
			Guard("g", "p", "in2"),
			Sink("g"),
		},
		ConstValue:      map[string]string{"ownerAddr": "s0", "slot0var": "s0"},
		StorageAlias:    map[string]string{"o": "s0"},
		InferOwnerSinks: true,
	}
}

func TestTaintedOwnerScenario(t *testing.T) {
	p := taintedOwnerProgram()
	r := Analyze(p)
	// Transaction 1 taints slot s0 (StorageWrite-1).
	if !r.TaintedSlots["s0"] {
		t.Fatal("slot s0 should be tainted by the public setter")
	}
	// The owner variable read back is storage-tainted (StorageLoad).
	if !r.StorageTainted["o"] {
		t.Fatal("o should carry storage taint")
	}
	// The guard comparing sender to the tainted owner fails to sanitize
	// (Uguard-T), so input taint reaches the sink (Guard-2 + Violation).
	if !r.NonSanitizing["p"] {
		t.Fatal("p should be non-sanitizing: it compares against tainted storage")
	}
	if !r.InputTainted["g"] {
		t.Fatal("taint should pass the broken guard")
	}
	if !r.Violations["g"] {
		t.Fatal("violation should be reported at the sink")
	}
	// The owner variable itself is an inferred sink (Section 4.5) and is
	// tainted, so it is a violation too.
	if !r.InferredSinks["o"] {
		t.Fatal("o should be an inferred owner sink")
	}
	if !r.Violations["o"] {
		t.Fatal("tainted owner variable should be a violation")
	}
}

// An effective guard: the owner slot is never written from input, so the
// sender comparison sanitizes and no violation is reported.
func TestEffectiveGuardSanitizes(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			SLoad("slot0var", "o"),
			Eq("p", Sender, "o"),
			Input("in"),
			Guard("g", "p", "in"),
			Sink("g"),
		},
		ConstValue:   map[string]string{"slot0var": "s0"},
		StorageAlias: map[string]string{"o": "s0"},
	}
	r := Analyze(p)
	if r.NonSanitizing["p"] {
		t.Fatal("p compares sender to clean storage: it sanitizes")
	}
	if r.Tainted("g") {
		t.Fatal("guarded value must not be tainted")
	}
	if len(r.Violations) != 0 {
		t.Fatalf("no violations expected, got %v", r.Violations)
	}
}

// Storage taint penetrates guards (Guard-1): even a perfect guard cannot
// sanitize a value that took the storage route.
func TestStorageTaintPenetratesGuards(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			Input("in"),
			SStore("in", "addr"), // taints slot s1
			SLoad("addr2", "loaded"),
			SLoad("slot0var", "o"),
			Eq("p", Sender, "o"),
			Guard("g", "p", "loaded"),
			Sink("g"),
		},
		ConstValue:   map[string]string{"addr": "s1", "addr2": "s1", "slot0var": "s0"},
		StorageAlias: map[string]string{"o": "s0"},
	}
	r := Analyze(p)
	if !r.StorageTainted["loaded"] {
		t.Fatal("loaded should be storage-tainted")
	}
	if !r.StorageTainted["g"] {
		t.Fatal("storage taint must pass even a sanitizing guard")
	}
	if !r.Violations["g"] {
		t.Fatal("violation expected at sink")
	}
}

// A guard comparing two non-sender values is non-sanitizing (Uguard-NDS).
func TestNonSenderGuardDoesNotSanitize(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			Input("a"),
			Input("b"),
			Eq("p", "a", "b"), // no sender involved
			Input("in"),
			Guard("g", "p", "in"),
			Sink("g"),
		},
	}
	r := Analyze(p)
	if !r.NonSanitizing["p"] {
		t.Fatal("non-sender guard should be non-sanitizing")
	}
	if !r.Violations["g"] {
		t.Fatal("violation expected")
	}
}

// A guard that looks the caller up in a sender-keyed data structure
// sanitizes: DS/DSA (Figure 4) recognize hash-based lookups.
func TestDataStructureLookupGuardSanitizes(t *testing.T) {
	// h := HASH(sender); v := SLOAD(h); p := (v = allowedFlag); GUARD(p, in).
	p := &Program{
		Instrs: []Instr{
			Hash("h", Sender),
			SLoad("h", "v"),
			Op("flag", "one", "one"),
			Eq("p", "v", "flag"),
			Input("in"),
			Guard("g", "p", "in"),
			Sink("g"),
		},
	}
	r := Analyze(p)
	if !r.DSA["h"] {
		t.Fatal("HASH(sender) should be a sender-keyed address")
	}
	if !r.DS["v"] {
		t.Fatal("load through a DSA address should be DS")
	}
	if r.NonSanitizing["p"] {
		t.Fatal("sender-keyed lookup guard should sanitize")
	}
	if len(r.Violations) != 0 {
		t.Fatalf("no violations expected, got %v", r.Violations)
	}
}

// Nested data structures: hashes of hashes plus address arithmetic stay DSA
// (rules DSA-Lookup, DS-AddrOp).
func TestNestedDataStructures(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			Hash("h1", Sender),
			Hash("h2", "h1"),
			Op("h3", "h2", "one"), // address arithmetic
			SLoad("h3", "elem"),
			Eq("p", "elem", "x"),
		},
	}
	r := Analyze(p)
	for _, v := range []string{"h1", "h2", "h3"} {
		if !r.DSA[v] {
			t.Errorf("%s should be DSA", v)
		}
	}
	if !r.DS["elem"] {
		t.Error("elem should be DS")
	}
	if r.NonSanitizing["p"] {
		t.Error("guard over a data-structure element must not be Uguard-NDS")
	}
}

// StorageWrite-2: a tainted value stored at a tainted address taints every
// statically known slot.
func TestTaintedAddressTaintsAllSlots(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			Input("val"),
			Input("addr"),
			SStore("val", "addr"),
			SLoad("s0var", "a"),
			SLoad("s1var", "b"),
			Sink("a"),
		},
		ConstValue: map[string]string{"s0var": "s0", "s1var": "s1"},
	}
	r := Analyze(p)
	if !r.TaintedSlots["s0"] || !r.TaintedSlots["s1"] {
		t.Fatalf("all known slots should be tainted: %v", r.TaintedSlots)
	}
	if !r.Violations["a"] {
		t.Fatal("violation expected via arbitrary-write")
	}
}

// No rule taints the result of HASH in the formal model.
func TestHashDoesNotPropagateTaint(t *testing.T) {
	p := &Program{
		Instrs: []Instr{
			Input("in"),
			Hash("h", "in"),
			Sink("h"),
		},
	}
	r := Analyze(p)
	if r.Tainted("h") || len(r.Violations) != 0 {
		t.Fatal("Figure 3 has no HASH taint rule; the model must not invent one")
	}
}

// --- differential testing: direct fixpoint vs Datalog engine ---

func randomProgram(r *rand.Rand) *Program {
	nVars := 3 + r.Intn(8)
	vars := make([]string, nVars)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	pick := func() string {
		if r.Intn(8) == 0 {
			return Sender
		}
		return vars[r.Intn(nVars)]
	}
	nSlots := 1 + r.Intn(3)
	slot := func() string { return fmt.Sprintf("s%d", r.Intn(nSlots)) }

	p := &Program{
		ConstValue:      map[string]string{},
		StorageAlias:    map[string]string{},
		InferOwnerSinks: r.Intn(2) == 0,
	}
	defSeq := 0
	def := func() string {
		defSeq++
		return fmt.Sprintf("d%d", defSeq) // unique defs keep the program SSA
	}
	n := 3 + r.Intn(15)
	for i := 0; i < n; i++ {
		switch r.Intn(8) {
		case 0:
			p.Instrs = append(p.Instrs, Input(def()))
		case 1:
			p.Instrs = append(p.Instrs, Op(def(), pick(), pick()))
		case 2:
			p.Instrs = append(p.Instrs, Eq(def(), pick(), pick()))
		case 3:
			p.Instrs = append(p.Instrs, Hash(def(), pick()))
		case 4:
			p.Instrs = append(p.Instrs, Guard(def(), pick(), pick()))
		case 5:
			from, to := pick(), pick()
			p.Instrs = append(p.Instrs, SStore(from, to))
			if r.Intn(2) == 0 {
				p.ConstValue[to] = slot()
			}
		case 6:
			from, to := pick(), def()
			p.Instrs = append(p.Instrs, SLoad(from, to))
			if r.Intn(2) == 0 {
				p.ConstValue[from] = slot()
			}
			if r.Intn(2) == 0 {
				p.StorageAlias[to] = slot()
			}
		case 7:
			p.Instrs = append(p.Instrs, Sink(pick()))
		}
	}
	// Some uses reference vars never defined (free variables) — that is fine:
	// both implementations treat them as untainted unknowns.
	return p
}

func TestDirectMatchesDatalog(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProgram(r)
		direct := Analyze(p)
		viaDatalog, err := AnalyzeDatalog(p)
		if err != nil {
			t.Logf("seed %d: datalog error: %v", seed, err)
			return false
		}
		type pair struct {
			name string
			a, b map[string]bool
		}
		for _, c := range []pair{
			{"InputTainted", direct.InputTainted, viaDatalog.InputTainted},
			{"StorageTainted", direct.StorageTainted, viaDatalog.StorageTainted},
			{"TaintedSlots", direct.TaintedSlots, viaDatalog.TaintedSlots},
			{"NonSanitizing", direct.NonSanitizing, viaDatalog.NonSanitizing},
			{"DS", direct.DS, viaDatalog.DS},
			{"DSA", direct.DSA, viaDatalog.DSA},
			{"Violations", direct.Violations, viaDatalog.Violations},
			{"InferredSinks", direct.InferredSinks, viaDatalog.InferredSinks},
		} {
			if !sameSet(c.a, c.b) {
				t.Logf("seed %d: %s mismatch:\ndirect:  %v\ndatalog: %v\nprogram: %v",
					seed, c.name, c.a, c.b, p.Instrs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func sameSet(a, b map[string]bool) bool {
	na, nb := map[string]bool{}, map[string]bool{}
	for k, v := range a {
		if v {
			na[k] = true
		}
	}
	for k, v := range b {
		if v {
			nb[k] = true
		}
	}
	return reflect.DeepEqual(na, nb)
}

func TestDatalogScenario(t *testing.T) {
	r, err := AnalyzeDatalog(taintedOwnerProgram())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violations["g"] || !r.Violations["o"] {
		t.Fatalf("datalog route should find both violations: %v", r.Violations)
	}
}

func BenchmarkAnalyzeDirect(b *testing.B) {
	p := taintedOwnerProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(p)
	}
}

func BenchmarkAnalyzeDatalog(b *testing.B) {
	p := taintedOwnerProgram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeDatalog(p); err != nil {
			b.Fatal(err)
		}
	}
}
