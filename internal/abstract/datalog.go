package abstract

import (
	"fmt"

	"ethainter/internal/datalog"
)

// Rules is the Figure 3 / Figure 4 rule set as literal Datalog, in the style
// of the paper's Soufflé implementation. Input relations: op/3, eq/3,
// input/1, hash/2, guard/3, sstore/2, sload/2, sink/1, constval/2, alias/2,
// sender/1, inferSinks/0-ish flag fact.
const Rules = `
% ---- Figure 4: sender-keyed data structures (taint-independent stratum) ----
ds(S) :- sender(S).
dsa(X) :- hash(X, Y), ds(Y).
dsa(X) :- hash(X, Y), dsa(Y).
dsa(X) :- op2(X, Y, _), dsa(Y).
dsa(X) :- op2(X, _, Z), dsa(Z).
ds(Y)  :- sload(X, Y), dsa(X).

% op2 covers both plain operations and equality comparisons.
op2(X, Y, Z) :- op(X, Y, Z).
op2(X, Y, Z) :- eq(X, Y, Z).

% ---- Figure 3: information flow ----
% LoadInput
inTaint(X) :- input(X).
% Operation-1 / Operation-2 (taint kinds preserved)
inTaint(X) :- op2(X, Y, _), inTaint(Y).
inTaint(X) :- op2(X, _, Z), inTaint(Z).
stTaint(X) :- op2(X, Y, _), stTaint(Y).
stTaint(X) :- op2(X, _, Z), stTaint(Z).
% Guard-1: storage taint penetrates guards.
stTaint(X) :- guard(X, _, Y), stTaint(Y).
% Guard-2: input taint penetrates only non-sanitizing guards.
inTaint(X) :- guard(X, P, Y), inTaint(Y), nonSan(P).
% StorageWrite-1
taintedSlot(V) :- sstore(F, T), anyTaint(F), constval(T, V).
% StorageWrite-2: tainted value at tainted address taints every known slot.
taintedSlot(V) :- sstore(F, T), anyTaint(F), anyTaint(T), slotU(V).
% StorageLoad
stTaint(T) :- sload(F, T), constval(F, V), taintedSlot(V).
% Violation
violation(X) :- sink(X), anyTaint(X).
% Uguard-T: guard compares sender against a tainted storage value.
nonSan(P) :- eq(P, S, Z), sender(S), alias(Z, V), taintedSlot(V).
nonSan(P) :- eq(P, Z, S), sender(S), alias(Z, V), taintedSlot(V).
% Uguard-NDS: guard does not scrutinize the caller at all.
nonSan(P) :- eq(P, Y, Z), !ds(Y), !ds(Z).

anyTaint(X) :- inTaint(X).
anyTaint(X) :- stTaint(X).
slotU(V) :- constval(_, V).
slotU(V) :- alias(_, V).

% ---- Section 4.5: inferred owner-variable sinks ----
inferredSink(Z) :- wantInference(_), guard(_, P, X), anyTaint(X), eqSender(P, Z), alias(Z, _).
eqSender(P, Z) :- eq(P, S, Z), sender(S).
eqSender(P, Z) :- eq(P, Z, S), sender(S).
violation(Z) :- inferredSink(Z), anyTaint(Z).
`

// AnalyzeDatalog runs the same analysis through the Datalog engine, returning
// a Result that must agree with Analyze.
func AnalyzeDatalog(p *Program) (*Result, error) {
	dl := datalog.NewProgram()
	if err := dl.Parse(Rules); err != nil {
		return nil, err
	}
	if err := dl.AddFact("sender", Sender); err != nil {
		return nil, err
	}
	if p.InferOwnerSinks {
		if err := dl.AddFact("wantInference", "on"); err != nil {
			return nil, err
		}
	}
	for i, ins := range p.Instrs {
		var err error
		switch ins.Kind {
		case OpI:
			err = dl.AddFact("op", ins.X, ins.Y, ins.Z)
		case EqI:
			err = dl.AddFact("eq", ins.X, ins.Y, ins.Z)
		case InputI:
			err = dl.AddFact("input", ins.X)
		case HashI:
			err = dl.AddFact("hash", ins.X, ins.Y)
		case GuardI:
			err = dl.AddFact("guard", ins.X, ins.P, ins.Y)
		case SStoreI:
			err = dl.AddFact("sstore", ins.Y, ins.Z)
		case SLoadI:
			err = dl.AddFact("sload", ins.Y, ins.Z)
		case SinkI:
			err = dl.AddFact("sink", ins.Y)
		default:
			err = fmt.Errorf("abstract: unknown instruction kind at %d", i)
		}
		if err != nil {
			return nil, err
		}
	}
	for x, v := range p.ConstValue {
		if err := dl.AddFact("constval", x, v); err != nil {
			return nil, err
		}
	}
	for x, v := range p.StorageAlias {
		if err := dl.AddFact("alias", x, v); err != nil {
			return nil, err
		}
	}
	// Declare every input relation even if empty, so rules referencing them
	// resolve (Parse declares them implicitly; facts may be absent).
	if err := dl.Run(); err != nil {
		return nil, err
	}
	collect := func(rel string) map[string]bool {
		out := map[string]bool{}
		for _, row := range dl.Query(rel) {
			out[row[0]] = true
		}
		return out
	}
	return &Result{
		InputTainted:   collect("inTaint"),
		StorageTainted: collect("stTaint"),
		TaintedSlots:   collect("taintedSlot"),
		NonSanitizing:  collect("nonSan"),
		DS:             collect("ds"),
		DSA:            collect("dsa"),
		Violations:     collect("violation"),
		InferredSinks:  collect("inferredSink"),
	}, nil
}
