// Package abstract implements the paper's Section 4 formalism: the abstract
// input language of Figure 1, the analysis relations of Figure 2, and the
// inference rules of Figures 3 and 4, plus the inferred-sink rule of
// Section 4.5.
//
// The model is implemented twice — as a direct worklist fixpoint (Analyze)
// and as literal Datalog rules on the engine in package datalog
// (AnalyzeDatalog) — and the two are differentially tested on random
// programs. The production bytecode analysis in package core follows the same
// rules on the decompiled IR.
package abstract

import "fmt"

// Sender is the reserved variable naming the contract caller.
const Sender = "sender"

// InstrKind enumerates the abstract instructions of Figure 1.
type InstrKind int

// Instruction kinds.
const (
	OpI     InstrKind = iota // X := OP(Y, Z)
	EqI                      // X := (Y = Z), an OP that guard rules inspect
	InputI                   // X := INPUT()
	HashI                    // X := HASH(Y)
	GuardI                   // X := GUARD(P, Y)
	SStoreI                  // SSTORE(Y, Z): from local Y to storage address Z
	SLoadI                   // SLOAD(Y, Z): from storage address Y to local Z
	SinkI                    // SINK(Y)
)

// Instr is one abstract instruction. Field roles by kind:
//
//	OpI/EqI:  X := OP(Y, Z)
//	InputI:   X := INPUT()
//	HashI:    X := HASH(Y)
//	GuardI:   X := GUARD(P, Y)
//	SStoreI:  SSTORE(from=Y, to=Z)
//	SLoadI:   SLOAD(from=Y, to=Z)
//	SinkI:    SINK(Y)
type Instr struct {
	Kind InstrKind
	X    string
	Y    string
	Z    string
	P    string
}

func (i Instr) String() string {
	switch i.Kind {
	case OpI:
		return fmt.Sprintf("%s := OP(%s, %s)", i.X, i.Y, i.Z)
	case EqI:
		return fmt.Sprintf("%s := (%s = %s)", i.X, i.Y, i.Z)
	case InputI:
		return fmt.Sprintf("%s := INPUT()", i.X)
	case HashI:
		return fmt.Sprintf("%s := HASH(%s)", i.X, i.Y)
	case GuardI:
		return fmt.Sprintf("%s := GUARD(%s, %s)", i.X, i.P, i.Y)
	case SStoreI:
		return fmt.Sprintf("SSTORE(%s, %s)", i.Y, i.Z)
	case SLoadI:
		return fmt.Sprintf("SLOAD(%s, %s)", i.Y, i.Z)
	case SinkI:
		return fmt.Sprintf("SINK(%s)", i.Y)
	}
	return "?"
}

// Constructors for readability in tests and fixtures.

// Op builds x := OP(y, z).
func Op(x, y, z string) Instr { return Instr{Kind: OpI, X: x, Y: y, Z: z} }

// Eq builds x := (y = z).
func Eq(x, y, z string) Instr { return Instr{Kind: EqI, X: x, Y: y, Z: z} }

// Input builds x := INPUT().
func Input(x string) Instr { return Instr{Kind: InputI, X: x} }

// Hash builds x := HASH(y).
func Hash(x, y string) Instr { return Instr{Kind: HashI, X: x, Y: y} }

// Guard builds x := GUARD(p, y).
func Guard(x, p, y string) Instr { return Instr{Kind: GuardI, X: x, P: p, Y: y} }

// SStore builds SSTORE(from, to).
func SStore(from, to string) Instr { return Instr{Kind: SStoreI, Y: from, Z: to} }

// SLoad builds SLOAD(from, to).
func SLoad(from, to string) Instr { return Instr{Kind: SLoadI, Y: from, Z: to} }

// Sink builds SINK(x).
func Sink(x string) Instr { return Instr{Kind: SinkI, Y: x} }

// Program is an abstract program plus the auxiliary input relations computed
// "in a previous stratum" per Figure 2: ConstValue (C(x) = v) and
// StorageAliasVar (x ~ S(v)).
type Program struct {
	Instrs []Instr
	// ConstValue maps a variable to the constant storage address it holds.
	ConstValue map[string]string
	// StorageAlias maps a variable to the storage slot it was loaded from.
	StorageAlias map[string]string
	// InferOwnerSinks enables the Section 4.5 rule deriving SINK(z) for
	// storage-loaded variables that guard tainted values against sender.
	InferOwnerSinks bool
}

// Result holds the computed relations of Figure 2.
type Result struct {
	InputTainted   map[string]bool // ↓I x
	StorageTainted map[string]bool // ↓T x
	TaintedSlots   map[string]bool // ↓T S(v)
	NonSanitizing  map[string]bool // ↛ p
	DS             map[string]bool // DS(x)
	DSA            map[string]bool // DSA(x)
	Violations     map[string]bool // SINK operands (incl. inferred) that are tainted
	InferredSinks  map[string]bool // Section 4.5 owner-variable sinks
}

// Tainted reports whether x carries either taint kind.
func (r *Result) Tainted(x string) bool {
	return r.InputTainted[x] || r.StorageTainted[x]
}

// SlotUniverse returns every storage slot name mentioned in the auxiliary
// relations — the "statically-known storage locations that arise in the
// analysis" that rule StorageWrite-2 taints wholesale.
func (p *Program) SlotUniverse() map[string]bool {
	u := map[string]bool{}
	for _, v := range p.ConstValue {
		u[v] = true
	}
	for _, v := range p.StorageAlias {
		u[v] = true
	}
	return u
}
