package abstract

// Analyze runs the Figure 3 / Figure 4 rules to fixpoint with a direct
// worklist-free iteration (programs here are tiny; simple re-iteration until
// stable is clearest and matches the monotonicity argument of Section 4.2).
func Analyze(p *Program) *Result {
	r := &Result{
		InputTainted:   map[string]bool{},
		StorageTainted: map[string]bool{},
		TaintedSlots:   map[string]bool{},
		NonSanitizing:  map[string]bool{},
		DS:             map[string]bool{},
		DSA:            map[string]bool{},
		Violations:     map[string]bool{},
		InferredSinks:  map[string]bool{},
	}
	computeDS(p, r)

	universe := p.SlotUniverse()
	allSlotsTainted := false

	add := func(m map[string]bool, k string) bool {
		if m[k] {
			return false
		}
		m[k] = true
		return true
	}

	// The four relations of Figure 3 grow monotonically in mutual recursion;
	// iterate all rules until nothing changes.
	for changed := true; changed; {
		changed = false
		mark := func(ok bool) {
			if ok {
				changed = true
			}
		}
		for _, ins := range p.Instrs {
			switch ins.Kind {
			case InputI: // LoadInput
				mark(add(r.InputTainted, ins.X))
			case OpI, EqI: // Operation-1, Operation-2 (matching taint kinds)
				if r.InputTainted[ins.Y] || r.InputTainted[ins.Z] {
					mark(add(r.InputTainted, ins.X))
				}
				if r.StorageTainted[ins.Y] || r.StorageTainted[ins.Z] {
					mark(add(r.StorageTainted, ins.X))
				}
				// Uguard-T: p := (sender = z), z ~ S(v), ↓T S(v).
				if ins.Kind == EqI {
					for _, pair := range [][2]string{{ins.Y, ins.Z}, {ins.Z, ins.Y}} {
						if pair[0] == Sender {
							if v, ok := p.StorageAlias[pair[1]]; ok && r.TaintedSlots[v] {
								mark(add(r.NonSanitizing, ins.X))
							}
						}
					}
					// Uguard-NDS: neither side involves sender data.
					if !r.DS[ins.Y] && !r.DS[ins.Z] {
						mark(add(r.NonSanitizing, ins.X))
					}
				}
			case GuardI:
				// Guard-1: storage taint passes through guards.
				if r.StorageTainted[ins.Y] {
					mark(add(r.StorageTainted, ins.X))
				}
				// Guard-2: input taint passes only through non-sanitizing guards.
				if r.InputTainted[ins.Y] && r.NonSanitizing[ins.P] {
					mark(add(r.InputTainted, ins.X))
				}
				// Section 4.5 inferred sinks: GUARD(sender = z, x) with
				// tainted x and storage-resident z makes z itself a sink.
				if p.InferOwnerSinks && r.Tainted(ins.Y) {
					if def := findEqDef(p, ins.P); def != nil {
						for _, pair := range [][2]string{{def.Y, def.Z}, {def.Z, def.Y}} {
							if pair[0] == Sender {
								if _, ok := p.StorageAlias[pair[1]]; ok {
									mark(add(r.InferredSinks, pair[1]))
								}
							}
						}
					}
				}
			case SStoreI:
				if r.Tainted(ins.Y) {
					// StorageWrite-1: taint into a known location.
					if v, ok := p.ConstValue[ins.Z]; ok {
						mark(add(r.TaintedSlots, v))
					}
					// StorageWrite-2: tainted address taints every known slot.
					if r.Tainted(ins.Z) && !allSlotsTainted {
						allSlotsTainted = true
						for v := range universe {
							mark(add(r.TaintedSlots, v))
						}
					}
				}
			case SLoadI: // StorageLoad
				if v, ok := p.ConstValue[ins.Y]; ok && r.TaintedSlots[v] {
					mark(add(r.StorageTainted, ins.Z))
				}
			case SinkI: // Violation
				if r.Tainted(ins.Y) {
					mark(add(r.Violations, ins.Y))
				}
			case HashI:
				// No taint rule for HASH in Figure 3 (it only feeds DS/DSA).
			}
		}
		// Violations through inferred sinks.
		for z := range r.InferredSinks {
			if r.Tainted(z) {
				mark(add(r.Violations, z))
			}
		}
	}
	return r
}

// computeDS evaluates the Figure 4 rules. They are independent of taint
// propagation and complete before the main analysis (an earlier stratum).
func computeDS(p *Program, r *Result) {
	r.DS[Sender] = true // DS-SenderKey
	for changed := true; changed; {
		changed = false
		for _, ins := range p.Instrs {
			switch ins.Kind {
			case HashI:
				// DS-Lookup and DSA-Lookup.
				if (r.DS[ins.Y] || r.DSA[ins.Y]) && !r.DSA[ins.X] {
					r.DSA[ins.X] = true
					changed = true
				}
			case OpI, EqI:
				// DS-AddrOp-1 and DS-AddrOp-2.
				if (r.DSA[ins.Y] || r.DSA[ins.Z]) && !r.DSA[ins.X] {
					r.DSA[ins.X] = true
					changed = true
				}
			case SLoadI:
				// DSA-Load: dereferencing a sender-keyed address yields
				// sender-keyed data.
				if r.DSA[ins.Y] && !r.DS[ins.Z] {
					r.DS[ins.Z] = true
					changed = true
				}
			}
		}
	}
}

// findEqDef returns the equality instruction defining p, if any.
func findEqDef(p *Program, name string) *Instr {
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		if ins.Kind == EqI && ins.X == name {
			return ins
		}
	}
	return nil
}
