// Package evm implements the Ethereum Virtual Machine substrate used by
// Ethainter: an opcode table, a disassembler, a two-pass assembler, and a
// complete interpreter with call frames, revert snapshots and trace hooks.
//
// The instruction set targets the Istanbul fork (the era the paper's snapshot
// was taken), including SHL/SHR/SAR, CREATE2, EXTCODEHASH, RETURNDATASIZE /
// RETURNDATACOPY, STATICCALL and SELFBALANCE.
package evm

import "fmt"

// Op is a single EVM opcode byte.
type Op byte

// Opcode values. Names follow the Yellow Paper.
const (
	STOP       Op = 0x00
	ADD        Op = 0x01
	MUL        Op = 0x02
	SUB        Op = 0x03
	DIV        Op = 0x04
	SDIV       Op = 0x05
	MOD        Op = 0x06
	SMOD       Op = 0x07
	ADDMOD     Op = 0x08
	MULMOD     Op = 0x09
	EXP        Op = 0x0a
	SIGNEXTEND Op = 0x0b

	LT     Op = 0x10
	GT     Op = 0x11
	SLT    Op = 0x12
	SGT    Op = 0x13
	EQ     Op = 0x14
	ISZERO Op = 0x15
	AND    Op = 0x16
	OR     Op = 0x17
	XOR    Op = 0x18
	NOT    Op = 0x19
	BYTE   Op = 0x1a
	SHL    Op = 0x1b
	SHR    Op = 0x1c
	SAR    Op = 0x1d

	SHA3 Op = 0x20

	ADDRESS        Op = 0x30
	BALANCE        Op = 0x31
	ORIGIN         Op = 0x32
	CALLER         Op = 0x33
	CALLVALUE      Op = 0x34
	CALLDATALOAD   Op = 0x35
	CALLDATASIZE   Op = 0x36
	CALLDATACOPY   Op = 0x37
	CODESIZE       Op = 0x38
	CODECOPY       Op = 0x39
	GASPRICE       Op = 0x3a
	EXTCODESIZE    Op = 0x3b
	EXTCODECOPY    Op = 0x3c
	RETURNDATASIZE Op = 0x3d
	RETURNDATACOPY Op = 0x3e
	EXTCODEHASH    Op = 0x3f

	BLOCKHASH   Op = 0x40
	COINBASE    Op = 0x41
	TIMESTAMP   Op = 0x42
	NUMBER      Op = 0x43
	DIFFICULTY  Op = 0x44
	GASLIMIT    Op = 0x45
	CHAINID     Op = 0x46
	SELFBALANCE Op = 0x47

	POP      Op = 0x50
	MLOAD    Op = 0x51
	MSTORE   Op = 0x52
	MSTORE8  Op = 0x53
	SLOAD    Op = 0x54
	SSTORE   Op = 0x55
	JUMP     Op = 0x56
	JUMPI    Op = 0x57
	PC       Op = 0x58
	MSIZE    Op = 0x59
	GAS      Op = 0x5a
	JUMPDEST Op = 0x5b

	PUSH1  Op = 0x60
	PUSH32 Op = 0x7f
	DUP1   Op = 0x80
	DUP16  Op = 0x8f
	SWAP1  Op = 0x90
	SWAP16 Op = 0x9f

	LOG0 Op = 0xa0
	LOG1 Op = 0xa1
	LOG2 Op = 0xa2
	LOG3 Op = 0xa3
	LOG4 Op = 0xa4

	CREATE       Op = 0xf0
	CALL         Op = 0xf1
	CALLCODE     Op = 0xf2
	RETURN       Op = 0xf3
	DELEGATECALL Op = 0xf4
	CREATE2      Op = 0xf5
	STATICCALL   Op = 0xfa
	REVERT       Op = 0xfd
	INVALID      Op = 0xfe
	SELFDESTRUCT Op = 0xff
)

// PushN returns the PUSH opcode carrying n immediate bytes (1 <= n <= 32).
func PushN(n int) Op { return PUSH1 + Op(n-1) }

// DupN returns the DUP opcode duplicating the n-th stack item (1 <= n <= 16).
func DupN(n int) Op { return DUP1 + Op(n-1) }

// SwapN returns the SWAP opcode exchanging the top with the (n+1)-th stack
// item (1 <= n <= 16).
func SwapN(n int) Op { return SWAP1 + Op(n-1) }

// IsPush reports whether op is PUSH1..PUSH32.
func (op Op) IsPush() bool { return op >= PUSH1 && op <= PUSH32 }

// IsDup reports whether op is DUP1..DUP16.
func (op Op) IsDup() bool { return op >= DUP1 && op <= DUP16 }

// IsSwap reports whether op is SWAP1..SWAP16.
func (op Op) IsSwap() bool { return op >= SWAP1 && op <= SWAP16 }

// IsLog reports whether op is LOG0..LOG4.
func (op Op) IsLog() bool { return op >= LOG0 && op <= LOG4 }

// PushSize returns the number of immediate bytes following a PUSH opcode, or
// zero for non-push opcodes.
func (op Op) PushSize() int {
	if !op.IsPush() {
		return 0
	}
	return int(op-PUSH1) + 1
}

// IsTerminator reports whether op unconditionally ends a basic block (the
// instruction never falls through to its successor).
func (op Op) IsTerminator() bool {
	switch op {
	case STOP, JUMP, RETURN, REVERT, INVALID, SELFDESTRUCT:
		return true
	}
	return false
}

// opInfo describes the static stack behaviour of an opcode.
type opInfo struct {
	name    string
	pops    int
	pushes  int
	defined bool
}

var opTable = buildOpTable()

func buildOpTable() [256]opInfo {
	var t [256]opInfo
	def := func(op Op, name string, pops, pushes int) {
		t[op] = opInfo{name: name, pops: pops, pushes: pushes, defined: true}
	}
	def(STOP, "STOP", 0, 0)
	def(ADD, "ADD", 2, 1)
	def(MUL, "MUL", 2, 1)
	def(SUB, "SUB", 2, 1)
	def(DIV, "DIV", 2, 1)
	def(SDIV, "SDIV", 2, 1)
	def(MOD, "MOD", 2, 1)
	def(SMOD, "SMOD", 2, 1)
	def(ADDMOD, "ADDMOD", 3, 1)
	def(MULMOD, "MULMOD", 3, 1)
	def(EXP, "EXP", 2, 1)
	def(SIGNEXTEND, "SIGNEXTEND", 2, 1)
	def(LT, "LT", 2, 1)
	def(GT, "GT", 2, 1)
	def(SLT, "SLT", 2, 1)
	def(SGT, "SGT", 2, 1)
	def(EQ, "EQ", 2, 1)
	def(ISZERO, "ISZERO", 1, 1)
	def(AND, "AND", 2, 1)
	def(OR, "OR", 2, 1)
	def(XOR, "XOR", 2, 1)
	def(NOT, "NOT", 1, 1)
	def(BYTE, "BYTE", 2, 1)
	def(SHL, "SHL", 2, 1)
	def(SHR, "SHR", 2, 1)
	def(SAR, "SAR", 2, 1)
	def(SHA3, "SHA3", 2, 1)
	def(ADDRESS, "ADDRESS", 0, 1)
	def(BALANCE, "BALANCE", 1, 1)
	def(ORIGIN, "ORIGIN", 0, 1)
	def(CALLER, "CALLER", 0, 1)
	def(CALLVALUE, "CALLVALUE", 0, 1)
	def(CALLDATALOAD, "CALLDATALOAD", 1, 1)
	def(CALLDATASIZE, "CALLDATASIZE", 0, 1)
	def(CALLDATACOPY, "CALLDATACOPY", 3, 0)
	def(CODESIZE, "CODESIZE", 0, 1)
	def(CODECOPY, "CODECOPY", 3, 0)
	def(GASPRICE, "GASPRICE", 0, 1)
	def(EXTCODESIZE, "EXTCODESIZE", 1, 1)
	def(EXTCODECOPY, "EXTCODECOPY", 4, 0)
	def(RETURNDATASIZE, "RETURNDATASIZE", 0, 1)
	def(RETURNDATACOPY, "RETURNDATACOPY", 3, 0)
	def(EXTCODEHASH, "EXTCODEHASH", 1, 1)
	def(BLOCKHASH, "BLOCKHASH", 1, 1)
	def(COINBASE, "COINBASE", 0, 1)
	def(TIMESTAMP, "TIMESTAMP", 0, 1)
	def(NUMBER, "NUMBER", 0, 1)
	def(DIFFICULTY, "DIFFICULTY", 0, 1)
	def(GASLIMIT, "GASLIMIT", 0, 1)
	def(CHAINID, "CHAINID", 0, 1)
	def(SELFBALANCE, "SELFBALANCE", 0, 1)
	def(POP, "POP", 1, 0)
	def(MLOAD, "MLOAD", 1, 1)
	def(MSTORE, "MSTORE", 2, 0)
	def(MSTORE8, "MSTORE8", 2, 0)
	def(SLOAD, "SLOAD", 1, 1)
	def(SSTORE, "SSTORE", 2, 0)
	def(JUMP, "JUMP", 1, 0)
	def(JUMPI, "JUMPI", 2, 0)
	def(PC, "PC", 0, 1)
	def(MSIZE, "MSIZE", 0, 1)
	def(GAS, "GAS", 0, 1)
	def(JUMPDEST, "JUMPDEST", 0, 0)
	for n := 1; n <= 32; n++ {
		def(PushN(n), fmt.Sprintf("PUSH%d", n), 0, 1)
	}
	for n := 1; n <= 16; n++ {
		def(DupN(n), fmt.Sprintf("DUP%d", n), n, n+1)
		def(SwapN(n), fmt.Sprintf("SWAP%d", n), n+1, n+1)
	}
	for n := 0; n <= 4; n++ {
		def(LOG0+Op(n), fmt.Sprintf("LOG%d", n), 2+n, 0)
	}
	def(CREATE, "CREATE", 3, 1)
	def(CALL, "CALL", 7, 1)
	def(CALLCODE, "CALLCODE", 7, 1)
	def(RETURN, "RETURN", 2, 0)
	def(DELEGATECALL, "DELEGATECALL", 6, 1)
	def(CREATE2, "CREATE2", 4, 1)
	def(STATICCALL, "STATICCALL", 6, 1)
	def(REVERT, "REVERT", 2, 0)
	def(INVALID, "INVALID", 0, 0)
	def(SELFDESTRUCT, "SELFDESTRUCT", 1, 0)
	return t
}

// Defined reports whether op is a valid opcode in our instruction set.
func (op Op) Defined() bool { return opTable[op].defined }

// Pops returns the number of stack items op consumes.
func (op Op) Pops() int { return opTable[op].pops }

// Pushes returns the number of stack items op produces.
func (op Op) Pushes() int { return opTable[op].pushes }

// String returns the mnemonic, or a hex form for undefined opcodes.
func (op Op) String() string {
	if opTable[op].defined {
		return opTable[op].name
	}
	return fmt.Sprintf("UNDEFINED(0x%02x)", byte(op))
}

// OpByName maps a mnemonic back to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, 256)
	for i := 0; i < 256; i++ {
		if opTable[i].defined {
			m[opTable[i].name] = Op(i)
		}
	}
	return m
}()
