package evm_test

import (
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// runExpr executes an assembly snippet that leaves one value on the stack and
// returns it — coverage for value opcodes the mini-Solidity compiler never
// emits (checked against u256 semantics, which are themselves property-tested
// against math/big).
func runExpr(t *testing.T, asm string) u256.U256 {
	t.Helper()
	_, r, _ := runCode(t, asm+returnTop, nil)
	if r.Err != nil {
		t.Fatalf("exec: %v", r.Err)
	}
	return u256.FromBytes(r.Output)
}

func TestSignedArithmeticOpcodes(t *testing.T) {
	// SDIV: -7 / 2 = -3 (truncation toward zero).
	got := runExpr(t, `
		PUSH1 0x02
		PUSH1 0x07
		PUSH1 0x00
		SUB         ; -7
		SDIV
	`)
	if got != u256.FromUint64(3).Neg() {
		t.Errorf("SDIV(-7,2) = %s", got)
	}
	// SMOD: -7 %% 2 = -1 (sign of dividend).
	got = runExpr(t, `
		PUSH1 0x02
		PUSH1 0x07
		PUSH1 0x00
		SUB
		SMOD
	`)
	if got != u256.One.Neg() {
		t.Errorf("SMOD(-7,2) = %s", got)
	}
	// SLT: -1 < 1.
	got = runExpr(t, `
		PUSH1 0x01
		PUSH1 0x01
		PUSH1 0x00
		SUB         ; -1
		SLT
	`)
	if got != u256.One {
		t.Errorf("SLT(-1,1) = %s", got)
	}
	// SGT: 1 > -1.
	got = runExpr(t, `
		PUSH1 0x01
		PUSH1 0x00
		SUB         ; -1
		PUSH1 0x01
		SGT
	`)
	if got != u256.One {
		t.Errorf("SGT(1,-1) = %s", got)
	}
	// SAR: -8 >> 1 = -4.
	got = runExpr(t, `
		PUSH1 0x08
		PUSH1 0x00
		SUB         ; -8
		PUSH1 0x01
		SAR
	`)
	if got != u256.FromUint64(4).Neg() {
		t.Errorf("SAR(-8,1) = %s", got)
	}
	// SIGNEXTEND: 0xff from byte 0 is -1.
	got = runExpr(t, `
		PUSH1 0xff
		PUSH1 0x00
		SIGNEXTEND
	`)
	if got != u256.Max {
		t.Errorf("SIGNEXTEND(0, 0xff) = %s", got)
	}
}

func TestModularAndExpOpcodes(t *testing.T) {
	// ADDMOD(MAX, 2, 10): full-precision intermediate.
	got := runExpr(t, `
		PUSH1 0x0a
		PUSH1 0x02
		PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
		ADDMOD
	`)
	want := u256.Max.AddMod(u256.FromUint64(2), u256.FromUint64(10))
	if got != want {
		t.Errorf("ADDMOD = %s, want %s", got, want)
	}
	// MULMOD(MAX, MAX, 12).
	got = runExpr(t, `
		PUSH1 0x0c
		PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
		PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
		MULMOD
	`)
	want = u256.Max.MulMod(u256.Max, u256.FromUint64(12))
	if got != want {
		t.Errorf("MULMOD = %s, want %s", got, want)
	}
	// EXP(3, 7) = 2187.
	got = runExpr(t, `
		PUSH1 0x07
		PUSH1 0x03
		EXP
	`)
	if got != u256.FromUint64(2187) {
		t.Errorf("EXP(3,7) = %s", got)
	}
	// BYTE(31, x) is the low byte.
	got = runExpr(t, `
		PUSH2 0x1234
		PUSH1 31
		BYTE
	`)
	if got != u256.FromUint64(0x34) {
		t.Errorf("BYTE = %s", got)
	}
}

func TestEnvOpcodes(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(500))
	code := evm.MustAssemble(`
		ORIGIN
		CALLER
		EQ           ; top-level call: origin == caller
		NUMBER
		TIMESTAMP
		CHAINID
		GASLIMIT
		ADD
		ADD
		ADD
		ADD
	` + returnTop)
	addr := c.DeployRuntime(code, u256.Zero)
	r := c.Call(caller, addr, nil, u256.Zero)
	if r.Err != nil {
		t.Fatalf("call: %v", r.Err)
	}
	// 1 (eq) + block 2 + ts 1500000015 + chain 3 + gaslimit 10000000 (the
	// runtime install is block 1; the call lands in block 2).
	want := u256.FromUint64(1 + 2 + 1_500_000_015 + 3 + 10_000_000)
	if got := u256.FromBytes(r.Output); got != want {
		t.Errorf("env sum = %s, want %s", got, want)
	}
}

func TestExtcodeOpcodes(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(500))
	target := c.DeployRuntime([]byte{byte(evm.STOP), byte(evm.STOP), byte(evm.STOP)}, u256.Zero)
	code := evm.MustAssemble(`
		PUSH20 ` + target.Word().String() + `
		EXTCODESIZE
	` + returnTop)
	addr := c.DeployRuntime(code, u256.Zero)
	r := c.Call(caller, addr, nil, u256.Zero)
	if got := u256.FromBytes(r.Output); got != u256.FromUint64(3) {
		t.Errorf("EXTCODESIZE = %s", got)
	}
	// EXTCODECOPY copies the first byte of target code into memory.
	code2 := evm.MustAssemble(`
		PUSH1 0x03   ; len
		PUSH1 0x00   ; codeOff
		PUSH1 0x00   ; memOff
		PUSH20 ` + target.Word().String() + `
		EXTCODECOPY
		PUSH1 0x00
		MLOAD
	` + returnTop)
	addr2 := c.DeployRuntime(code2, u256.Zero)
	r = c.Call(caller, addr2, nil, u256.Zero)
	if r.Err != nil {
		t.Fatalf("extcodecopy: %v", r.Err)
	}
	// Three STOP bytes (0x00) copied: word stays zero.
	if got := u256.FromBytes(r.Output); !got.IsZero() {
		t.Errorf("EXTCODECOPY result = %s", got)
	}
	// EXTCODEHASH of a non-existent account is 0.
	code3 := evm.MustAssemble(`
		PUSH20 0xdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef
		EXTCODEHASH
	` + returnTop)
	addr3 := c.DeployRuntime(code3, u256.Zero)
	r = c.Call(caller, addr3, nil, u256.Zero)
	if got := u256.FromBytes(r.Output); !got.IsZero() {
		t.Errorf("EXTCODEHASH(absent) = %s", got)
	}
}

func TestCallcodeRunsInCallerContext(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(500))
	lib := c.DeployRuntime(evm.MustAssemble(`
		PUSH1 0x2a
		PUSH1 0x05
		SSTORE
		STOP
	`), u256.Zero)
	proxyCode := evm.MustAssemble(`
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00   ; value
		PUSH20 ` + lib.Word().String() + `
		GAS
		CALLCODE
		POP
		STOP
	`)
	proxy := c.DeployRuntime(proxyCode, u256.Zero)
	if r := c.Call(caller, proxy, nil, u256.Zero); r.Err != nil {
		t.Fatalf("callcode: %v", r.Err)
	}
	if got := c.State.GetState(proxy, u256.FromUint64(5)); got != u256.FromUint64(0x2a) {
		t.Errorf("CALLCODE must write the caller's storage: slot5 = %s", got)
	}
	if !c.State.GetState(lib, u256.FromUint64(5)).IsZero() {
		t.Error("CALLCODE must not write the library's storage")
	}
}

func TestCreate2AndLogsExecute(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(500))
	// CREATE2 with empty init code yields an address; LOG1 consumes operands.
	code := evm.MustAssemble(`
		PUSH1 0x07   ; salt
		PUSH1 0x00   ; len
		PUSH1 0x00   ; off
		PUSH1 0x00   ; value
		CREATE2
		ISZERO
		ISZERO       ; nonzero address -> 1
		PUSH1 0x20   ; LOG1 topic
		PUSH1 0x00   ; len
		PUSH1 0x00   ; off
		LOG1
	` + returnTop)
	addr := c.DeployRuntime(code, u256.Zero)
	r := c.Call(caller, addr, nil, u256.Zero)
	if r.Err != nil {
		t.Fatalf("create2/log: %v", r.Err)
	}
	if got := u256.FromBytes(r.Output); got != u256.One {
		t.Errorf("CREATE2 should produce a non-zero address, got flag %s", got)
	}
}

func TestStaticcallBlocksLogsAndCreate(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(500))
	logger := c.DeployRuntime(evm.MustAssemble(`
		PUSH1 0x00
		PUSH1 0x00
		LOG0
		STOP
	`), u256.Zero)
	proxy := c.DeployRuntime(evm.MustAssemble(`
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH20 `+logger.Word().String()+`
		GAS
		STATICCALL
	`+returnTop), u256.Zero)
	r := c.Call(caller, proxy, nil, u256.Zero)
	if got := u256.FromBytes(r.Output); !got.IsZero() {
		t.Errorf("LOG under STATICCALL must fail the inner frame, success=%s", got)
	}
}
