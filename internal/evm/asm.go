package evm

import (
	"fmt"
	"strconv"
	"strings"

	"ethainter/internal/u256"
)

// Assemble translates assembly text to bytecode. The syntax is one
// instruction per line:
//
//	; comment, or // comment
//	label:              ; defines a jump destination (emits JUMPDEST)
//	PUSH1 0x40          ; sized push with hex or decimal immediate
//	PUSH @label         ; auto-sized push of a label address
//	PUSH 123            ; auto-sized push of a value
//	JUMP
//
// Labels are resolved in a second pass. Because a label's byte address can
// grow the size of the PUSH that references it, label pushes are encoded with
// a fixed width of 2 bytes (sufficient for 64 KiB of code, far beyond the
// contract size limit).
func Assemble(src string) ([]byte, error) {
	type labelRef struct {
		patchAt int    // offset of the first immediate byte
		name    string // label to resolve
		line    int
	}
	var (
		code   []byte
		labels = make(map[string]int)
		refs   []labelRef
	)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSpace(strings.TrimSuffix(line, ":"))
			if name == "" {
				return nil, fmt.Errorf("asm line %d: empty label", lineNo+1)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("asm line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(code)
			code = append(code, byte(JUMPDEST))
			continue
		}
		fields := strings.Fields(line)
		mnemonic := strings.ToUpper(fields[0])
		switch {
		case mnemonic == "PUSH" && len(fields) == 2 && strings.HasPrefix(fields[1], "@"):
			code = append(code, byte(PushN(2)))
			refs = append(refs, labelRef{patchAt: len(code), name: fields[1][1:], line: lineNo + 1})
			code = append(code, 0, 0)
		case mnemonic == "PUSH" && len(fields) == 2:
			v, err := parseImmediate(fields[1])
			if err != nil {
				return nil, fmt.Errorf("asm line %d: %v", lineNo+1, err)
			}
			n := (v.BitLen() + 7) / 8
			if n == 0 {
				n = 1
			}
			code = append(code, byte(PushN(n)))
			b := v.Bytes32()
			code = append(code, b[32-n:]...)
		case strings.HasPrefix(mnemonic, "PUSH"):
			n, err := strconv.Atoi(mnemonic[4:])
			if err != nil || n < 1 || n > 32 {
				return nil, fmt.Errorf("asm line %d: bad push mnemonic %q", lineNo+1, mnemonic)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("asm line %d: %s needs an immediate", lineNo+1, mnemonic)
			}
			v, err := parseImmediate(fields[1])
			if err != nil {
				return nil, fmt.Errorf("asm line %d: %v", lineNo+1, err)
			}
			if (v.BitLen()+7)/8 > n {
				return nil, fmt.Errorf("asm line %d: immediate %s does not fit in PUSH%d", lineNo+1, v, n)
			}
			code = append(code, byte(PushN(n)))
			b := v.Bytes32()
			code = append(code, b[32-n:]...)
		default:
			op, ok := OpByName(mnemonic)
			if !ok {
				return nil, fmt.Errorf("asm line %d: unknown mnemonic %q", lineNo+1, mnemonic)
			}
			if len(fields) != 1 {
				return nil, fmt.Errorf("asm line %d: %s takes no operand", lineNo+1, mnemonic)
			}
			code = append(code, byte(op))
		}
	}
	for _, ref := range refs {
		addr, ok := labels[ref.name]
		if !ok {
			return nil, fmt.Errorf("asm line %d: undefined label %q", ref.line, ref.name)
		}
		if addr > 0xffff {
			return nil, fmt.Errorf("asm: label %q address %d exceeds 2-byte pushes", ref.name, addr)
		}
		code[ref.patchAt] = byte(addr >> 8)
		code[ref.patchAt+1] = byte(addr)
	}
	return code, nil
}

func parseImmediate(s string) (u256.U256, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return u256.FromHex(s)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return u256.Zero, fmt.Errorf("bad immediate %q: %w", s, err)
	}
	return u256.FromUint64(v), nil
}

// MustAssemble is Assemble that panics on error; for tests and fixtures.
func MustAssemble(src string) []byte {
	code, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return code
}
