package evm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ethainter/internal/u256"
)

func TestAssembleBasics(t *testing.T) {
	code, err := Assemble(`
		; a comment
		PUSH1 0x40   // trailing comment
		PUSH 2
		ADD
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(PUSH1), 0x40, byte(PUSH1), 0x02, byte(ADD)}
	if string(code) != string(want) {
		t.Fatalf("code = %x, want %x", code, want)
	}
}

func TestAssembleLabels(t *testing.T) {
	code, err := Assemble(`
		PUSH @end
		JUMP
		INVALID
	end:
		STOP
	`)
	if err != nil {
		t.Fatal(err)
	}
	// PUSH2 addr(4) JUMP INVALID JUMPDEST STOP
	want := []byte{byte(PushN(2)), 0x00, 0x05, byte(JUMP), byte(INVALID), byte(JUMPDEST), byte(STOP)}
	if string(code) != string(want) {
		t.Fatalf("code = %x, want %x", code, want)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"BOGUS",
		"PUSH1",
		"PUSH1 0x1234",        // doesn't fit
		"PUSH @nowhere\nJUMP", // undefined label
		"x:\nx:",              // duplicate label
		"ADD 5",               // spurious operand
		"PUSH33 0x1",          // no such opcode
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q): expected error", src)
		}
	}
}

func TestAutoSizedPush(t *testing.T) {
	code := MustAssemble("PUSH 0x1234")
	if code[0] != byte(PushN(2)) {
		t.Fatalf("expected PUSH2, got %s", Op(code[0]))
	}
	code = MustAssemble("PUSH 0")
	if code[0] != byte(PUSH1) || code[1] != 0 {
		t.Fatalf("PUSH 0 should encode as PUSH1 0x00, got %x", code)
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	// PUSH32 with only 2 immediate bytes present: zero-padded on the right.
	code := []byte{byte(PUSH32), 0xab, 0xcd}
	ins := Disassemble(code)
	if len(ins) != 1 {
		t.Fatalf("got %d instructions", len(ins))
	}
	want := u256.MustHex("0xabcd").Shl(240)
	if ins[0].Arg != want {
		t.Fatalf("arg = %s, want %s", ins[0].Arg, want)
	}
}

// Disassembling assembled text and reassembling the mnemonics must reproduce
// the original bytecode (for label-free programs).
func TestRoundTripRandomPrograms(t *testing.T) {
	ops := []Op{ADD, MUL, POP, CALLER, CALLDATALOAD, SSTORE, SLOAD, MSTORE, MLOAD, DUP1, SwapN(2), ISZERO, STOP}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var src strings.Builder
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				width := 1 + r.Intn(32)
				v := u256.FromUint64(r.Uint64()).Mod(u256.One.Shl(uint(8 * min(width, 8))))
				src.WriteString("PUSH")
				src.WriteString(itoa(width))
				src.WriteString(" ")
				src.WriteString(v.String())
				src.WriteString("\n")
			} else {
				src.WriteString(ops[r.Intn(len(ops))].String())
				src.WriteString("\n")
			}
		}
		code, err := Assemble(src.String())
		if err != nil {
			t.Logf("assemble failed: %v\n%s", err, src.String())
			return false
		}
		var re strings.Builder
		for _, ins := range Disassemble(code) {
			re.WriteString(ins.Op.String())
			if ins.Op.IsPush() {
				re.WriteString(" ")
				re.WriteString(ins.Arg.String())
			}
			re.WriteString("\n")
		}
		code2, err := Assemble(reSize(re.String(), code))
		if err != nil {
			t.Logf("reassemble failed: %v", err)
			return false
		}
		return string(code) == string(code2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// reSize is a no-op hook kept for clarity: disassembly prints exact PUSH
// widths via the mnemonic, so the text reassembles to identical bytes.
func reSize(s string, _ []byte) string { return s }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestOpcodeTableConsistency(t *testing.T) {
	if PushN(1) != PUSH1 || PushN(32) != PUSH32 {
		t.Fatal("PushN endpoints wrong")
	}
	if DupN(1) != DUP1 || SwapN(16) != SWAP16 {
		t.Fatal("DupN/SwapN endpoints wrong")
	}
	for i := 0; i < 256; i++ {
		op := Op(i)
		if !op.Defined() {
			continue
		}
		back, ok := OpByName(op.String())
		if !ok || back != op {
			t.Errorf("name round-trip failed for %s", op)
		}
	}
	if PUSH32.PushSize() != 32 || PUSH1.PushSize() != 1 || ADD.PushSize() != 0 {
		t.Fatal("PushSize wrong")
	}
	if !JUMP.IsTerminator() || JUMPI.IsTerminator() {
		t.Fatal("terminator classification wrong")
	}
}
