package evm_test

import (
	"errors"
	"testing"

	"ethainter/internal/chain"
	"ethainter/internal/evm"
	"ethainter/internal/u256"
)

// runCode deploys runtime code on a fresh chain and calls it once.
func runCode(t *testing.T, asm string, input []byte) (*chain.Chain, *chain.Receipt, evm.Address) {
	t.Helper()
	code, err := evm.Assemble(asm)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1_000_000))
	addr := c.DeployRuntime(code, u256.Zero)
	return c, c.Call(caller, addr, input, u256.Zero), addr
}

func wantWord(t *testing.T, r *chain.Receipt, want u256.U256) {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("call failed: %v (output %x)", r.Err, r.Output)
	}
	if len(r.Output) != 32 {
		t.Fatalf("output length %d, want 32", len(r.Output))
	}
	if got := u256.FromBytes(r.Output); got != want {
		t.Fatalf("output %s, want %s", got, want)
	}
}

const returnTop = `
	PUSH1 0x00
	MSTORE
	PUSH1 0x20
	PUSH1 0x00
	RETURN
`

func TestArithmeticProgram(t *testing.T) {
	// (7 + 5) * 3 - 1 = 35
	_, r, _ := runCode(t, `
		PUSH1 0x05
		PUSH1 0x07
		ADD
		PUSH1 0x03
		MUL
		PUSH1 0x01
		SWAP1
		SUB
	`+returnTop, nil)
	wantWord(t, r, u256.FromUint64(35))
}

func TestStackOpsDupSwap(t *testing.T) {
	// DUP2 copies the second item; SWAP1 exchanges; result = 2*10 + 3 = 23.
	_, r, _ := runCode(t, `
		PUSH1 0x03
		PUSH1 0x0a
		DUP1
		ADD        ; 20, 3
		ADD        ; 23
	`+returnTop, nil)
	wantWord(t, r, u256.FromUint64(23))
}

func TestCalldataLoadAndSize(t *testing.T) {
	input := make([]byte, 36)
	input[3] = 0xaa  // selector area
	input[35] = 0x2a // arg word = 42
	_, r, _ := runCode(t, ` // return CALLDATALOAD(4) + CALLDATASIZE
		PUSH1 0x04
		CALLDATALOAD
		CALLDATASIZE
		ADD
	`+returnTop, input)
	wantWord(t, r, u256.FromUint64(42+36))
}

func TestCalldataLoadPastEndIsZeroPadded(t *testing.T) {
	_, r, _ := runCode(t, `
		PUSH1 0x64
		CALLDATALOAD
	`+returnTop, []byte{1, 2, 3})
	wantWord(t, r, u256.Zero)
}

func TestJumpAndLoop(t *testing.T) {
	// Sum 1..5 with a loop: i in slot of stack, acc in memory 0x20.
	_, r, _ := runCode(t, `
		PUSH1 0x05      ; i = 5
	loop:
		DUP1
		ISZERO
		PUSH @done
		JUMPI
		DUP1            ; acc += i
		PUSH1 0x20
		MLOAD
		ADD
		PUSH1 0x20
		MSTORE
		PUSH1 0x01      ; i -= 1
		SWAP1
		SUB
		PUSH @loop
		JUMP
	done:
		POP
		PUSH1 0x20
		MLOAD
	`+returnTop, nil)
	wantWord(t, r, u256.FromUint64(15))
}

func TestInvalidJumpFails(t *testing.T) {
	_, r, _ := runCode(t, `
		PUSH1 0x03
		JUMP
		STOP
	`, nil)
	if !errors.Is(r.Err, evm.ErrInvalidJump) {
		t.Fatalf("err = %v, want ErrInvalidJump", r.Err)
	}
}

func TestJumpIntoPushImmediateFails(t *testing.T) {
	// 0x5b hidden inside a PUSH immediate is not a valid destination.
	code := []byte{byte(evm.PUSH1), byte(evm.JUMPDEST), byte(evm.PUSH1), 0x01, byte(evm.JUMP)}
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1000))
	addr := c.DeployRuntime(code, u256.Zero)
	r := c.Call(caller, addr, nil, u256.Zero)
	if !errors.Is(r.Err, evm.ErrInvalidJump) {
		t.Fatalf("err = %v, want ErrInvalidJump", r.Err)
	}
}

func TestStorageRoundTrip(t *testing.T) {
	c, r, addr := runCode(t, `
		PUSH1 0x2a
		PUSH1 0x07
		SSTORE
		PUSH1 0x07
		SLOAD
	`+returnTop, nil)
	wantWord(t, r, u256.FromUint64(42))
	if got := c.State.GetState(addr, u256.FromUint64(7)); got != u256.FromUint64(42) {
		t.Fatalf("persisted storage = %s", got)
	}
}

func TestRevertRollsBackStorage(t *testing.T) {
	c, r, addr := runCode(t, `
		PUSH1 0x2a
		PUSH1 0x07
		SSTORE
		PUSH1 0x00
		PUSH1 0x00
		REVERT
	`, nil)
	if !errors.Is(r.Err, evm.ErrExecutionReverted) {
		t.Fatalf("err = %v, want revert", r.Err)
	}
	if got := c.State.GetState(addr, u256.FromUint64(7)); !got.IsZero() {
		t.Fatalf("storage not rolled back: %s", got)
	}
}

func TestCallerAndAddressOpcodes(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1000))
	code := evm.MustAssemble(`
		CALLER
	` + returnTop)
	addr := c.DeployRuntime(code, u256.Zero)
	r := c.Call(caller, addr, nil, u256.Zero)
	wantWord(t, r, caller.Word())
}

func TestSelfdestructMovesBalanceAndRemovesCode(t *testing.T) {
	c := chain.New()
	attacker := c.NewAccount(u256.FromUint64(100))
	code := evm.MustAssemble(`
		CALLER
		SELFDESTRUCT
	`)
	victim := c.DeployRuntime(code, u256.FromUint64(5000))
	r := c.Call(attacker, victim, nil, u256.Zero)
	if r.Err != nil {
		t.Fatalf("call: %v", r.Err)
	}
	if len(r.Destroyed) != 1 || r.Destroyed[0] != victim {
		t.Fatalf("Destroyed = %v", r.Destroyed)
	}
	if !c.IsDestroyed(victim) {
		t.Fatal("victim should be destroyed")
	}
	if got := c.State.GetBalance(attacker); got != u256.FromUint64(5100) {
		t.Fatalf("attacker balance = %s, want 5100", got)
	}
}

func TestInnerCallTransfersValueAndReturnsData(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1000))
	// Callee returns CALLVALUE.
	callee := c.DeployRuntime(evm.MustAssemble(`
		CALLVALUE
	`+returnTop), u256.Zero)
	// Caller forwards 7 wei and returns the callee's output.
	calleeWord := callee.Word()
	callerCode := evm.MustAssemble(`
		PUSH1 0x20     ; outLen
		PUSH1 0x00     ; outOff
		PUSH1 0x00     ; inLen
		PUSH1 0x00     ; inOff
		PUSH1 0x07     ; value
		PUSH20 ` + calleeWord.String() + `
		GAS
		CALL
		POP
		PUSH1 0x20
		PUSH1 0x00
		RETURN
	`)
	proxy := c.DeployRuntime(callerCode, u256.FromUint64(50))
	r := c.Call(caller, proxy, nil, u256.Zero)
	wantWord(t, r, u256.FromUint64(7))
	if got := c.State.GetBalance(callee); got != u256.FromUint64(7) {
		t.Fatalf("callee balance = %s", got)
	}
}

func TestDelegatecallRunsInCallerStorage(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1000))
	// Library writes 99 to slot 0.
	lib := c.DeployRuntime(evm.MustAssemble(`
		PUSH1 0x63
		PUSH1 0x00
		SSTORE
		STOP
	`), u256.Zero)
	proxyCode := evm.MustAssemble(`
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH20 ` + lib.Word().String() + `
		GAS
		DELEGATECALL
		POP
		STOP
	`)
	proxy := c.DeployRuntime(proxyCode, u256.Zero)
	if r := c.Call(caller, proxy, nil, u256.Zero); r.Err != nil {
		t.Fatalf("call: %v", r.Err)
	}
	if got := c.State.GetState(proxy, u256.Zero); got != u256.FromUint64(0x63) {
		t.Fatalf("proxy slot0 = %s, want 0x63 (delegatecall must write caller storage)", got)
	}
	if got := c.State.GetState(lib, u256.Zero); !got.IsZero() {
		t.Fatalf("lib slot0 = %s, want 0 (library storage untouched)", got)
	}
}

func TestStaticcallBlocksWrites(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1000))
	writer := c.DeployRuntime(evm.MustAssemble(`
		PUSH1 0x01
		PUSH1 0x00
		SSTORE
		STOP
	`), u256.Zero)
	proxyCode := evm.MustAssemble(`
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH20 ` + writer.Word().String() + `
		GAS
		STATICCALL
	` + returnTop)
	proxy := c.DeployRuntime(proxyCode, u256.Zero)
	r := c.Call(caller, proxy, nil, u256.Zero)
	// The inner frame fails; the outer call must see success=0.
	wantWord(t, r, u256.Zero)
	if got := c.State.GetState(writer, u256.Zero); !got.IsZero() {
		t.Fatalf("static call wrote storage: %s", got)
	}
}

// The 0x-exchange bug shape: a STATICCALL whose callee returns fewer bytes
// than the output size leaves the rest of the output buffer holding the
// untrusted input. This test pins that semantics (the vulnerability the
// "unchecked tainted staticcall" analysis detects).
func TestStaticcallShortReturnLeavesInputInBuffer(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1000))
	empty := c.DeployRuntime(evm.MustAssemble(`STOP`), u256.Zero) // returns 0 bytes
	proxyCode := evm.MustAssemble(`
		PUSH1 0x2a      ; write "attacker input" 42 at memory 0
		PUSH1 0x00
		MSTORE
		PUSH1 0x20      ; outLen = 32, outOff = 0 (over input)
		PUSH1 0x00
		PUSH1 0x20      ; inLen = 32, inOff = 0
		PUSH1 0x00
		PUSH20 ` + empty.Word().String() + `
		GAS
		STATICCALL
		POP
		PUSH1 0x00      ; "isValid := mload(cdStart)"
		MLOAD
	` + returnTop)
	proxy := c.DeployRuntime(proxyCode, u256.Zero)
	r := c.Call(caller, proxy, nil, u256.Zero)
	wantWord(t, r, u256.FromUint64(42)) // input read back as output
}

func TestReturndataSizeAndCopy(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(1000))
	callee := c.DeployRuntime(evm.MustAssemble(`
		PUSH1 0x11
	`+returnTop), u256.Zero)
	proxyCode := evm.MustAssemble(`
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH1 0x00
		PUSH20 ` + callee.Word().String() + `
		GAS
		STATICCALL
		POP
		RETURNDATASIZE  ; 32
		PUSH1 0x00
		PUSH1 0x40
		RETURNDATACOPY  ; copy return word to 0x40
		PUSH1 0x40
		MLOAD
		RETURNDATASIZE
		ADD             ; 0x11 + 32 = 49
	` + returnTop)
	proxy := c.DeployRuntime(proxyCode, u256.Zero)
	r := c.Call(caller, proxy, nil, u256.Zero)
	wantWord(t, r, u256.FromUint64(49))
}

func TestOutOfGasOnInfiniteLoop(t *testing.T) {
	_, r, _ := runCode(t, `
	loop:
		PUSH @loop
		JUMP
	`, nil)
	if !errors.Is(r.Err, evm.ErrOutOfGas) {
		t.Fatalf("err = %v, want ErrOutOfGas", r.Err)
	}
}

func TestHugeMemoryOffsetDiesAsOutOfGas(t *testing.T) {
	_, r, _ := runCode(t, `
		PUSH1 0x01
		PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
		MSTORE
	`, nil)
	if !errors.Is(r.Err, evm.ErrOutOfGas) {
		t.Fatalf("err = %v, want ErrOutOfGas", r.Err)
	}
}

func TestSha3Opcode(t *testing.T) {
	// keccak256(pad32(0)) — the mapping-slot hash for key 0, slot 0 would be
	// keccak over 64 bytes; here hash 32 zero bytes and compare low byte.
	_, r, _ := runCode(t, `
		PUSH1 0x20
		PUSH1 0x00
		SHA3
	`+returnTop, nil)
	if r.Err != nil {
		t.Fatalf("call: %v", r.Err)
	}
	want := u256.MustHex("0x290decd9548b62a8d60345a988386fc84ba6bc95484008f6362f93160ef3e563")
	if got := u256.FromBytes(r.Output); got != want {
		t.Fatalf("keccak(32 zero bytes) = %s, want %s", got, want)
	}
}

func TestValueTransferInsufficientFunds(t *testing.T) {
	c := chain.New()
	poor := c.NewAccount(u256.FromUint64(5))
	target := c.NewAccount(u256.Zero)
	r := c.Call(poor, target, nil, u256.FromUint64(100))
	if !errors.Is(r.Err, evm.ErrInsufficientFunds) {
		t.Fatalf("err = %v", r.Err)
	}
	if got := c.State.GetBalance(poor); got != u256.FromUint64(5) {
		t.Fatalf("balance changed: %s", got)
	}
}

func TestCreateDeploysReturnedCode(t *testing.T) {
	c := chain.New()
	creator := c.NewAccount(u256.FromUint64(1000))
	// Init code returns a 1-byte runtime: STOP.
	init := evm.MustAssemble(`
		PUSH1 0x00      ; STOP opcode byte
		PUSH1 0x00
		MSTORE8
		PUSH1 0x01
		PUSH1 0x00
		RETURN
	`)
	r := c.Deploy(creator, init, u256.Zero)
	if r.Err != nil {
		t.Fatalf("deploy: %v", r.Err)
	}
	if code := c.State.GetCode(r.Created); len(code) != 1 || code[0] != byte(evm.STOP) {
		t.Fatalf("deployed code = %x", code)
	}
}

func TestTraceRecordsSelfdestruct(t *testing.T) {
	c := chain.New()
	caller := c.NewAccount(u256.FromUint64(100))
	victim := c.DeployRuntime(evm.MustAssemble(`
		CALLER
		SELFDESTRUCT
	`), u256.Zero)
	r := c.Call(caller, victim, nil, u256.Zero)
	found := false
	for _, e := range r.Trace {
		if e.Op == evm.SELFDESTRUCT && e.Contract == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("trace missing SELFDESTRUCT entry")
	}
}
