package evm

import (
	"fmt"
	"strings"

	"ethainter/internal/u256"
)

// Instruction is one decoded bytecode instruction.
type Instruction struct {
	PC  int       // byte offset of the opcode
	Op  Op        // the opcode
	Arg u256.U256 // immediate value for PUSH opcodes (zero otherwise)
}

// Size returns the encoded byte length of the instruction.
func (ins Instruction) Size() int { return 1 + ins.Op.PushSize() }

// String renders the instruction as "PC: MNEMONIC [arg]".
func (ins Instruction) String() string {
	if ins.Op.IsPush() {
		return fmt.Sprintf("%5d: %s %s", ins.PC, ins.Op, ins.Arg)
	}
	return fmt.Sprintf("%5d: %s", ins.PC, ins.Op)
}

// Disassemble decodes code into an instruction list. PUSH immediates that run
// off the end of the code are zero-padded, matching EVM execution semantics.
// Undefined opcodes are kept (they behave as INVALID when executed).
func Disassemble(code []byte) []Instruction {
	return DisassembleInto(nil, code)
}

// DisassembleInto is Disassemble appending into dst (reset to length zero),
// so hot callers can recycle the instruction buffer across bytecodes. A
// counting pre-pass sizes the one growth allocation exactly.
func DisassembleInto(dst []Instruction, code []byte) []Instruction {
	n := 0
	for pc := 0; pc < len(code); pc += 1 + Op(code[pc]).PushSize() {
		n++
	}
	out := dst[:0]
	if cap(out) < n {
		out = make([]Instruction, 0, n)
	}
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		ins := Instruction{PC: pc, Op: op}
		if n := op.PushSize(); n > 0 {
			end := pc + 1 + n
			src := code[pc+1 : min(end, len(code))]
			if n <= 8 && len(src) == n {
				// PUSH1..PUSH8 dominate real bytecode: assemble the single
				// low limb directly instead of staging a 32-byte buffer and
				// unpacking all four limbs.
				var v uint64
				for _, b := range src {
					v = v<<8 | uint64(b)
				}
				ins.Arg = u256.FromUint64(v)
			} else {
				var imm [32]byte
				copy(imm[32-n:], src)
				ins.Arg = u256.FromBytes32(imm)
			}
			pc = end
		} else {
			pc++
		}
		out = append(out, ins)
	}
	return out
}

// JumpDests returns the set of valid JUMPDEST byte offsets in code, honoring
// the rule that a 0x5b inside a PUSH immediate is data, not a destination.
func JumpDests(code []byte) map[int]bool {
	dests := make(map[int]bool)
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		if op == JUMPDEST {
			dests[pc] = true
		}
		pc += 1 + op.PushSize()
	}
	return dests
}

// FormatDisassembly renders code as a human-readable listing.
func FormatDisassembly(code []byte) string {
	var b strings.Builder
	for _, ins := range Disassemble(code) {
		b.WriteString(ins.String())
		b.WriteByte('\n')
	}
	return b.String()
}
