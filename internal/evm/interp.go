package evm

import (
	"encoding/hex"
	"errors"
	"fmt"

	"ethainter/internal/crypto"
	"ethainter/internal/u256"
)

// Address is a 160-bit Ethereum account address.
type Address [20]byte

// Word returns the address left-padded to a 256-bit word.
func (a Address) Word() u256.U256 { return u256.FromBytes(a[:]) }

// String renders the address as 0x-prefixed hex.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// AddressFromWord truncates a 256-bit word to its low 160 bits.
func AddressFromWord(w u256.U256) Address {
	b := w.Bytes32()
	var a Address
	copy(a[:], b[12:])
	return a
}

// AddressFromHex parses a 0x-prefixed or bare 40-digit hex address.
func AddressFromHex(s string) (Address, error) {
	w, err := u256.FromHex(s)
	if err != nil {
		return Address{}, err
	}
	return AddressFromWord(w), nil
}

// StateDB is the mutable world state the interpreter runs against. The chain
// package provides the journaled implementation.
type StateDB interface {
	Exists(Address) bool
	CreateAccount(Address)
	GetBalance(Address) u256.U256
	AddBalance(Address, u256.U256)
	SubBalance(Address, u256.U256)
	GetNonce(Address) uint64
	SetNonce(Address, uint64)
	GetCode(Address) []byte
	SetCode(Address, []byte)
	GetState(addr Address, key u256.U256) u256.U256
	SetState(addr Address, key u256.U256, val u256.U256)
	Suicide(addr, beneficiary Address)
	HasSuicided(Address) bool
	Snapshot() int
	RevertToSnapshot(int)
}

// BlockContext carries the block-level environment opcodes read.
type BlockContext struct {
	Number     uint64
	Timestamp  uint64
	Coinbase   Address
	GasLimit   uint64
	Difficulty u256.U256
	ChainID    uint64
}

// Tracer observes execution. Implementations must not mutate state.
type Tracer interface {
	// OnOp is invoked before each instruction executes.
	OnOp(depth int, contract Address, pc int, op Op)
}

// CreateTracer is an optional Tracer extension: implementations are told
// about every successful contract creation — outer creation transactions and
// inner CREATE/CREATE2 frames alike — with the runtime code that was
// installed. A creation reported here can still be undone when an enclosing
// frame later reverts; consumers needing finalized truth must re-check state
// after the transaction completes.
type CreateTracer interface {
	OnCreate(depth int, creator, created Address, code []byte)
}

// Execution errors.
var (
	ErrOutOfGas          = errors.New("evm: out of gas")
	ErrStackUnderflow    = errors.New("evm: stack underflow")
	ErrStackOverflow     = errors.New("evm: stack overflow")
	ErrInvalidJump       = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode     = errors.New("evm: invalid opcode")
	ErrWriteProtection   = errors.New("evm: write protection (static call)")
	ErrExecutionReverted = errors.New("evm: execution reverted")
	ErrDepth             = errors.New("evm: max call depth exceeded")
	ErrInsufficientFunds = errors.New("evm: insufficient balance for transfer")
	ErrCodeSizeExceeded  = errors.New("evm: created code exceeds size limit")
)

const (
	stackLimit   = 1024
	callDepthMax = 1024
	maxCodeSize  = 24576
)

// EVM executes bytecode against a StateDB.
type EVM struct {
	State    StateDB
	Block    BlockContext
	Origin   Address
	GasPrice u256.U256
	Tracer   Tracer
}

// New returns an EVM bound to the given state and block context.
func New(state StateDB, block BlockContext) *EVM {
	return &EVM{State: state, Block: block}
}

// frame is one call frame.
type frame struct {
	contract Address // address whose storage/balance is live
	codeAddr Address // address whose code runs (differs under DELEGATECALL)
	caller   Address
	code     []byte
	input    []byte
	value    u256.U256
	readonly bool

	stack   []u256.U256
	mem     []byte
	retData []byte // return data of the last nested call
	pc      int
	gas     uint64
	jumpOK  map[int]bool
}

// Call runs a message call. It returns the output, the remaining gas, and an
// error; ErrExecutionReverted carries the revert output. State changes are
// rolled back on any error.
func (e *EVM) Call(caller, to Address, input []byte, value u256.U256, gas uint64) (ret []byte, gasLeft uint64, err error) {
	return e.call(caller, to, to, input, value, gas, false, 0)
}

// StaticCall runs a read-only message call.
func (e *EVM) StaticCall(caller, to Address, input []byte, gas uint64) (ret []byte, gasLeft uint64, err error) {
	return e.call(caller, to, to, input, u256.Zero, gas, true, 0)
}

func (e *EVM) call(caller, contract, codeAddr Address, input []byte, value u256.U256, gas uint64, readonly bool, depth int) ([]byte, uint64, error) {
	if depth > callDepthMax {
		return nil, gas, ErrDepth
	}
	snap := e.State.Snapshot()
	if !value.IsZero() {
		if e.State.GetBalance(caller).Lt(value) {
			return nil, gas, ErrInsufficientFunds
		}
		if !e.State.Exists(contract) {
			e.State.CreateAccount(contract)
		}
		e.State.SubBalance(caller, value)
		e.State.AddBalance(contract, value)
	}
	code := e.State.GetCode(codeAddr)
	if len(code) == 0 {
		return nil, gas, nil
	}
	f := &frame{
		contract: contract,
		codeAddr: codeAddr,
		caller:   caller,
		code:     code,
		input:    input,
		value:    value,
		readonly: readonly,
		gas:      gas,
		jumpOK:   JumpDests(code),
	}
	ret, err := e.run(f, depth)
	if err != nil {
		e.State.RevertToSnapshot(snap)
		if errors.Is(err, ErrExecutionReverted) {
			return ret, f.gas, err
		}
		// Non-revert failures consume all gas, as on chain.
		return nil, 0, err
	}
	return ret, f.gas, nil
}

// Create deploys a contract: it runs initCode and installs its return value as
// the account code. The new address is derived from the creator and nonce.
func (e *EVM) Create(caller Address, initCode []byte, value u256.U256, gas uint64) (addr Address, ret []byte, gasLeft uint64, err error) {
	return e.create(caller, initCode, value, gas, 0)
}

func (e *EVM) create(caller Address, initCode []byte, value u256.U256, gas uint64, depth int) (Address, []byte, uint64, error) {
	if depth > callDepthMax {
		return Address{}, nil, gas, ErrDepth
	}
	nonce := e.State.GetNonce(caller)
	e.State.SetNonce(caller, nonce+1)
	addr := CreateAddress(caller, nonce)

	snap := e.State.Snapshot()
	e.State.CreateAccount(addr)
	e.State.SetNonce(addr, 1)
	if !value.IsZero() {
		if e.State.GetBalance(caller).Lt(value) {
			e.State.RevertToSnapshot(snap)
			return Address{}, nil, gas, ErrInsufficientFunds
		}
		e.State.SubBalance(caller, value)
		e.State.AddBalance(addr, value)
	}
	f := &frame{
		contract: addr,
		codeAddr: addr,
		caller:   caller,
		code:     initCode,
		value:    value,
		gas:      gas,
		jumpOK:   JumpDests(initCode),
	}
	ret, err := e.run(f, depth)
	if err != nil {
		e.State.RevertToSnapshot(snap)
		if errors.Is(err, ErrExecutionReverted) {
			return Address{}, ret, f.gas, err
		}
		return Address{}, nil, 0, err
	}
	if len(ret) > maxCodeSize {
		e.State.RevertToSnapshot(snap)
		return Address{}, nil, 0, ErrCodeSizeExceeded
	}
	e.State.SetCode(addr, ret)
	if t, ok := e.Tracer.(CreateTracer); ok {
		t.OnCreate(depth, caller, addr, ret)
	}
	return addr, ret, f.gas, nil
}

// CreateAddress computes the standard contract address for a creator/nonce
// pair. The canonical scheme RLP-encodes (creator, nonce); we use the
// equivalent-strength keccak(creator ++ nonce_be8) since nothing on-chain
// needs to agree with external tooling here.
func CreateAddress(creator Address, nonce uint64) Address {
	var n [8]byte
	for i := 0; i < 8; i++ {
		n[7-i] = byte(nonce >> (8 * i))
	}
	h := crypto.Keccak256(creator[:], n[:])
	var a Address
	copy(a[:], h[12:])
	return a
}

// --- frame helpers ---

func (f *frame) push(v u256.U256) error {
	if len(f.stack) >= stackLimit {
		return ErrStackOverflow
	}
	f.stack = append(f.stack, v)
	return nil
}

func (f *frame) pop() (u256.U256, error) {
	if len(f.stack) == 0 {
		return u256.Zero, ErrStackUnderflow
	}
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v, nil
}

func (f *frame) popN(n int) ([]u256.U256, error) {
	if len(f.stack) < n {
		return nil, ErrStackUnderflow
	}
	args := make([]u256.U256, n)
	for i := 0; i < n; i++ {
		args[i] = f.stack[len(f.stack)-1-i]
	}
	f.stack = f.stack[:len(f.stack)-n]
	return args, nil
}

func (f *frame) useGas(n uint64) error {
	if f.gas < n {
		f.gas = 0
		return ErrOutOfGas
	}
	f.gas -= n
	return nil
}

// expandMem grows memory to cover [off, off+size) and charges gas with the
// quadratic schedule, which naturally bounds allocation by the gas budget.
func (f *frame) expandMem(off, size u256.U256) (int, int, error) {
	if size.IsZero() {
		// A zero-size access touches no memory and costs nothing, so the
		// offset is irrelevant — and must not be returned as-is: it can point
		// far past the (unexpanded) buffer, and callers slice f.mem[o:o+s].
		return 0, 0, nil
	}
	if !off.IsUint64() || !size.IsUint64() {
		return 0, 0, ErrOutOfGas
	}
	end := off.Uint64() + size.Uint64()
	if end < off.Uint64() || end > 1<<32 {
		return 0, 0, ErrOutOfGas
	}
	words := (end + 31) / 32
	curWords := uint64(len(f.mem)) / 32
	if words > curWords {
		cost := 3*(words-curWords) + (words*words-curWords*curWords)/512
		if err := f.useGas(cost); err != nil {
			return 0, 0, err
		}
		grown := make([]byte, words*32)
		copy(grown, f.mem)
		f.mem = grown
	}
	return int(off.Uint64()), int(size.Uint64()), nil
}

func (f *frame) memRead(off, size u256.U256) ([]byte, error) {
	o, s, err := f.expandMem(off, size)
	if err != nil {
		return nil, err
	}
	return f.mem[o : o+s], nil
}

// getData reads [off, off+size) from src with zero padding past the end.
func getData(src []byte, off, size u256.U256) []byte {
	if !size.IsUint64() || size.Uint64() > 1<<32 {
		return nil
	}
	s := size.Uint64()
	out := make([]byte, s)
	if !off.IsUint64() {
		return out
	}
	o := off.Uint64()
	if o >= uint64(len(src)) {
		return out
	}
	n := copy(out, src[o:])
	_ = n
	return out
}

// run executes a frame to completion.
func (e *EVM) run(f *frame, depth int) ([]byte, error) {
	for {
		if f.pc >= len(f.code) {
			return nil, nil // implicit STOP
		}
		op := Op(f.code[f.pc])
		if e.Tracer != nil {
			e.Tracer.OnOp(depth, f.contract, f.pc, op)
		}
		if !op.Defined() {
			return nil, ErrInvalidOpcode
		}
		if err := f.useGas(gasCost(op)); err != nil {
			return nil, err
		}
		done, ret, err := e.step(f, op, depth)
		if err != nil {
			return ret, err
		}
		if done {
			return ret, nil
		}
	}
}

func gasCost(op Op) uint64 {
	switch {
	case op == SSTORE:
		return 500
	case op == SLOAD:
		return 50
	case op == SHA3:
		return 30
	case op == BALANCE || op == EXTCODESIZE || op == EXTCODEHASH:
		return 20
	case op == CALL || op == CALLCODE || op == DELEGATECALL || op == STATICCALL:
		return 100
	case op == CREATE || op == CREATE2:
		return 3200
	case op == SELFDESTRUCT:
		return 500
	case op == EXP:
		return 10
	case op.IsLog():
		return 75
	default:
		return 1
	}
}

// step executes a single instruction. It returns done=true with the frame's
// output when execution halts normally.
func (e *EVM) step(f *frame, op Op, depth int) (done bool, ret []byte, err error) {
	// Binary arithmetic/logic ops share a pop-pop-push skeleton.
	if fn := binaryOps[op]; fn != nil {
		args, err := f.popN(2)
		if err != nil {
			return false, nil, err
		}
		f.pc++
		return false, nil, f.push(fn(args[0], args[1]))
	}
	switch {
	case op.IsPush():
		n := op.PushSize()
		var imm [32]byte
		end := f.pc + 1 + n
		src := f.code[f.pc+1 : min(end, len(f.code))]
		copy(imm[32-n:], src)
		f.pc = end
		return false, nil, f.push(u256.FromBytes32(imm))
	case op.IsDup():
		n := int(op-DUP1) + 1
		if len(f.stack) < n {
			return false, nil, ErrStackUnderflow
		}
		f.pc++
		return false, nil, f.push(f.stack[len(f.stack)-n])
	case op.IsSwap():
		n := int(op-SWAP1) + 1
		if len(f.stack) < n+1 {
			return false, nil, ErrStackUnderflow
		}
		top := len(f.stack) - 1
		f.stack[top], f.stack[top-n] = f.stack[top-n], f.stack[top]
		f.pc++
		return false, nil, nil
	case op.IsLog():
		if f.readonly {
			return false, nil, ErrWriteProtection
		}
		n := int(op - LOG0)
		args, err := f.popN(2 + n)
		if err != nil {
			return false, nil, err
		}
		if _, _, err := f.expandMem(args[0], args[1]); err != nil {
			return false, nil, err
		}
		f.pc++
		return false, nil, nil
	}

	switch op {
	case STOP:
		return true, nil, nil
	case ADDMOD, MULMOD:
		args, err := f.popN(3)
		if err != nil {
			return false, nil, err
		}
		var v u256.U256
		if op == ADDMOD {
			v = args[0].AddMod(args[1], args[2])
		} else {
			v = args[0].MulMod(args[1], args[2])
		}
		f.pc++
		return false, nil, f.push(v)
	case ISZERO, NOT:
		x, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		var v u256.U256
		if op == ISZERO {
			if x.IsZero() {
				v = u256.One
			}
		} else {
			v = x.Not()
		}
		f.pc++
		return false, nil, f.push(v)
	case SHA3:
		args, err := f.popN(2)
		if err != nil {
			return false, nil, err
		}
		data, err := f.memRead(args[0], args[1])
		if err != nil {
			return false, nil, err
		}
		if err := f.useGas(6 * uint64((len(data)+31)/32)); err != nil {
			return false, nil, err
		}
		h := crypto.Keccak256(data)
		f.pc++
		return false, nil, f.push(u256.FromBytes32(h))
	case ADDRESS:
		f.pc++
		return false, nil, f.push(f.contract.Word())
	case BALANCE:
		a, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		f.pc++
		return false, nil, f.push(e.State.GetBalance(AddressFromWord(a)))
	case SELFBALANCE:
		f.pc++
		return false, nil, f.push(e.State.GetBalance(f.contract))
	case ORIGIN:
		f.pc++
		return false, nil, f.push(e.Origin.Word())
	case CALLER:
		f.pc++
		return false, nil, f.push(f.caller.Word())
	case CALLVALUE:
		f.pc++
		return false, nil, f.push(f.value)
	case CALLDATALOAD:
		off, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		word := getData(f.input, off, u256.FromUint64(32))
		f.pc++
		return false, nil, f.push(u256.FromBytes(word))
	case CALLDATASIZE:
		f.pc++
		return false, nil, f.push(u256.FromUint64(uint64(len(f.input))))
	case CALLDATACOPY, CODECOPY, RETURNDATACOPY:
		args, err := f.popN(3)
		if err != nil {
			return false, nil, err
		}
		var src []byte
		switch op {
		case CALLDATACOPY:
			src = f.input
		case CODECOPY:
			src = f.code
		case RETURNDATACOPY:
			src = f.retData
		}
		// Expand (and charge for) the destination before materializing the
		// source slice, so absurd sizes die as out-of-gas, not allocations.
		o, s, err := f.expandMem(args[0], args[2])
		if err != nil {
			return false, nil, err
		}
		data := getData(src, args[1], args[2])
		copy(f.mem[o:o+s], data)
		f.pc++
		return false, nil, nil
	case CODESIZE:
		f.pc++
		return false, nil, f.push(u256.FromUint64(uint64(len(f.code))))
	case GASPRICE:
		f.pc++
		return false, nil, f.push(e.GasPrice)
	case EXTCODESIZE:
		a, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		f.pc++
		return false, nil, f.push(u256.FromUint64(uint64(len(e.State.GetCode(AddressFromWord(a))))))
	case EXTCODECOPY:
		args, err := f.popN(4)
		if err != nil {
			return false, nil, err
		}
		src := e.State.GetCode(AddressFromWord(args[0]))
		o, s, err := f.expandMem(args[1], args[3])
		if err != nil {
			return false, nil, err
		}
		data := getData(src, args[2], args[3])
		copy(f.mem[o:o+s], data)
		f.pc++
		return false, nil, nil
	case EXTCODEHASH:
		a, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		addr := AddressFromWord(a)
		f.pc++
		if !e.State.Exists(addr) {
			return false, nil, f.push(u256.Zero)
		}
		h := crypto.Keccak256(e.State.GetCode(addr))
		return false, nil, f.push(u256.FromBytes32(h))
	case RETURNDATASIZE:
		f.pc++
		return false, nil, f.push(u256.FromUint64(uint64(len(f.retData))))
	case BLOCKHASH:
		if _, err := f.pop(); err != nil {
			return false, nil, err
		}
		f.pc++
		return false, nil, f.push(u256.Zero)
	case COINBASE:
		f.pc++
		return false, nil, f.push(e.Block.Coinbase.Word())
	case TIMESTAMP:
		f.pc++
		return false, nil, f.push(u256.FromUint64(e.Block.Timestamp))
	case NUMBER:
		f.pc++
		return false, nil, f.push(u256.FromUint64(e.Block.Number))
	case DIFFICULTY:
		f.pc++
		return false, nil, f.push(e.Block.Difficulty)
	case GASLIMIT:
		f.pc++
		return false, nil, f.push(u256.FromUint64(e.Block.GasLimit))
	case CHAINID:
		f.pc++
		return false, nil, f.push(u256.FromUint64(e.Block.ChainID))
	case POP:
		_, err := f.pop()
		f.pc++
		return false, nil, err
	case MLOAD:
		off, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		data, err := f.memRead(off, u256.FromUint64(32))
		if err != nil {
			return false, nil, err
		}
		f.pc++
		return false, nil, f.push(u256.FromBytes(data))
	case MSTORE:
		args, err := f.popN(2)
		if err != nil {
			return false, nil, err
		}
		o, _, err := f.expandMem(args[0], u256.FromUint64(32))
		if err != nil {
			return false, nil, err
		}
		b := args[1].Bytes32()
		copy(f.mem[o:o+32], b[:])
		f.pc++
		return false, nil, nil
	case MSTORE8:
		args, err := f.popN(2)
		if err != nil {
			return false, nil, err
		}
		o, _, err := f.expandMem(args[0], u256.One)
		if err != nil {
			return false, nil, err
		}
		f.mem[o] = byte(args[1].Uint64())
		f.pc++
		return false, nil, nil
	case SLOAD:
		key, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		f.pc++
		return false, nil, f.push(e.State.GetState(f.contract, key))
	case SSTORE:
		if f.readonly {
			return false, nil, ErrWriteProtection
		}
		args, err := f.popN(2)
		if err != nil {
			return false, nil, err
		}
		e.State.SetState(f.contract, args[0], args[1])
		f.pc++
		return false, nil, nil
	case JUMP:
		dst, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		if !dst.IsUint64() || !f.jumpOK[int(dst.Uint64())] {
			return false, nil, ErrInvalidJump
		}
		f.pc = int(dst.Uint64())
		return false, nil, nil
	case JUMPI:
		args, err := f.popN(2)
		if err != nil {
			return false, nil, err
		}
		if !args[1].IsZero() {
			if !args[0].IsUint64() || !f.jumpOK[int(args[0].Uint64())] {
				return false, nil, ErrInvalidJump
			}
			f.pc = int(args[0].Uint64())
		} else {
			f.pc++
		}
		return false, nil, nil
	case PC:
		v := u256.FromUint64(uint64(f.pc))
		f.pc++
		return false, nil, f.push(v)
	case MSIZE:
		f.pc++
		return false, nil, f.push(u256.FromUint64(uint64(len(f.mem))))
	case GAS:
		f.pc++
		return false, nil, f.push(u256.FromUint64(f.gas))
	case JUMPDEST:
		f.pc++
		return false, nil, nil
	case CREATE, CREATE2:
		if f.readonly {
			return false, nil, ErrWriteProtection
		}
		n := 3
		if op == CREATE2 {
			n = 4
		}
		args, err := f.popN(n)
		if err != nil {
			return false, nil, err
		}
		initCode, err := f.memRead(args[1], args[2])
		if err != nil {
			return false, nil, err
		}
		childGas := f.gas - f.gas/64
		f.gas -= childGas
		addr, _, gasLeft, cerr := e.create(f.contract, append([]byte{}, initCode...), args[0], childGas, depth+1)
		f.gas += gasLeft
		f.pc++
		if cerr != nil {
			f.retData = nil
			return false, nil, f.push(u256.Zero)
		}
		f.retData = nil
		return false, nil, f.push(addr.Word())
	case CALL, CALLCODE, DELEGATECALL, STATICCALL:
		return false, nil, e.stepCall(f, op, depth)
	case RETURN, REVERT:
		args, err := f.popN(2)
		if err != nil {
			return false, nil, err
		}
		data, err := f.memRead(args[0], args[1])
		if err != nil {
			return false, nil, err
		}
		out := append([]byte{}, data...)
		if op == REVERT {
			return false, out, ErrExecutionReverted
		}
		return true, out, nil
	case INVALID:
		return false, nil, ErrInvalidOpcode
	case SELFDESTRUCT:
		if f.readonly {
			return false, nil, ErrWriteProtection
		}
		b, err := f.pop()
		if err != nil {
			return false, nil, err
		}
		e.State.Suicide(f.contract, AddressFromWord(b))
		return true, nil, nil
	}
	return false, nil, fmt.Errorf("evm: unhandled opcode %s", op)
}

// stepCall implements the four call variants.
func (e *EVM) stepCall(f *frame, op Op, depth int) error {
	n := 7
	if op == DELEGATECALL || op == STATICCALL {
		n = 6
	}
	args, err := f.popN(n)
	if err != nil {
		return err
	}
	// args: gas, addr, [value,] inOff, inLen, outOff, outLen
	gasArg := args[0]
	target := AddressFromWord(args[1])
	var value u256.U256
	idx := 2
	if n == 7 {
		value = args[2]
		idx = 3
	}
	inOff, inLen, outOff, outLen := args[idx], args[idx+1], args[idx+2], args[idx+3]

	input, err := f.memRead(inOff, inLen)
	if err != nil {
		return err
	}
	inputCopy := append([]byte{}, input...)
	// Pre-expand the output region so a short return still pays for it.
	if _, _, err := f.expandMem(outOff, outLen); err != nil {
		return err
	}

	childGas := f.gas - f.gas/64
	if gasArg.IsUint64() && gasArg.Uint64() < childGas {
		childGas = gasArg.Uint64()
	}
	f.gas -= childGas

	var (
		ret     []byte
		gasLeft uint64
		cerr    error
	)
	switch op {
	case CALL:
		if f.readonly && !value.IsZero() {
			f.gas += childGas
			return ErrWriteProtection
		}
		ret, gasLeft, cerr = e.call(f.contract, target, target, inputCopy, value, childGas, f.readonly, depth+1)
	case CALLCODE:
		ret, gasLeft, cerr = e.call(f.contract, f.contract, target, inputCopy, value, childGas, f.readonly, depth+1)
	case DELEGATECALL:
		ret, gasLeft, cerr = e.call(f.caller, f.contract, target, inputCopy, f.value, childGas, f.readonly, depth+1)
	case STATICCALL:
		ret, gasLeft, cerr = e.call(f.contract, target, target, inputCopy, u256.Zero, childGas, true, depth+1)
	}
	f.gas += gasLeft
	f.retData = ret

	// Copy min(len(ret), outLen) into the output region. Crucially, a short
	// return leaves the remainder of the output buffer untouched — the exact
	// behaviour the "unchecked tainted staticcall" vulnerability relies on.
	if outLen.IsUint64() && outLen.Uint64() > 0 && len(ret) > 0 {
		o := int(outOff.Uint64())
		limit := int(outLen.Uint64())
		copy(f.mem[o:o+limit], ret)
	}

	f.pc++
	if cerr != nil {
		return f.push(u256.Zero)
	}
	return f.push(u256.One)
}

// binaryOps maps two-operand value ops to their semantics (top of stack is the
// first operand, matching the Yellow Paper).
var binaryOps = map[Op]func(a, b u256.U256) u256.U256{
	ADD:        func(a, b u256.U256) u256.U256 { return a.Add(b) },
	MUL:        func(a, b u256.U256) u256.U256 { return a.Mul(b) },
	SUB:        func(a, b u256.U256) u256.U256 { return a.Sub(b) },
	DIV:        func(a, b u256.U256) u256.U256 { return a.Div(b) },
	SDIV:       func(a, b u256.U256) u256.U256 { return a.SDiv(b) },
	MOD:        func(a, b u256.U256) u256.U256 { return a.Mod(b) },
	SMOD:       func(a, b u256.U256) u256.U256 { return a.SMod(b) },
	EXP:        func(a, b u256.U256) u256.U256 { return a.Exp(b) },
	SIGNEXTEND: func(a, b u256.U256) u256.U256 { return b.SignExtend(a) },
	LT:         boolOp(func(a, b u256.U256) bool { return a.Lt(b) }),
	GT:         boolOp(func(a, b u256.U256) bool { return a.Gt(b) }),
	SLT:        boolOp(func(a, b u256.U256) bool { return a.Slt(b) }),
	SGT:        boolOp(func(a, b u256.U256) bool { return a.Sgt(b) }),
	EQ:         boolOp(func(a, b u256.U256) bool { return a.Eq(b) }),
	AND:        func(a, b u256.U256) u256.U256 { return a.And(b) },
	OR:         func(a, b u256.U256) u256.U256 { return a.Or(b) },
	XOR:        func(a, b u256.U256) u256.U256 { return a.Xor(b) },
	BYTE:       func(a, b u256.U256) u256.U256 { return b.Byte(a) },
	SHL:        shiftOp(u256.U256.Shl),
	SHR:        shiftOp(u256.U256.Shr),
	SAR:        shiftOp(u256.U256.Sar),
}

func boolOp(f func(a, b u256.U256) bool) func(a, b u256.U256) u256.U256 {
	return func(a, b u256.U256) u256.U256 {
		if f(a, b) {
			return u256.One
		}
		return u256.Zero
	}
}

func shiftOp(f func(x u256.U256, n uint) u256.U256) func(a, b u256.U256) u256.U256 {
	return func(shift, val u256.U256) u256.U256 {
		if !shift.IsUint64() || shift.Uint64() > 255 {
			shift = u256.FromUint64(256)
		}
		return f(val, uint(shift.Uint64()))
	}
}
