package minisol

import "fmt"

// Type is a minisol type: an elementary type, a (possibly nested) mapping, or
// a fixed-size array.
type Type struct {
	Kind TypeKind
	Key  *Type // mapping key (elementary)
	Val  *Type // mapping or array element type
	Len  int   // array length
}

// TypeKind enumerates the type constructors.
type TypeKind int

// Type kinds.
const (
	TyUint TypeKind = iota
	TyAddress
	TyBool
	TyMapping
	TyArray
)

// Elementary type singletons.
var (
	Uint256T = &Type{Kind: TyUint}
	AddressT = &Type{Kind: TyAddress}
	BoolT    = &Type{Kind: TyBool}
)

// Elementary reports whether t fits in one storage word.
func (t *Type) Elementary() bool { return t.Kind != TyMapping && t.Kind != TyArray }

// Slots returns the number of consecutive storage slots a state variable of
// this type reserves (the Solidity layout: one per elementary/mapping head,
// Len for fixed arrays).
func (t *Type) Slots() int {
	if t.Kind == TyArray {
		return t.Len
	}
	return 1
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TyMapping:
		return t.Key.Equal(o.Key) && t.Val.Equal(o.Val)
	case TyArray:
		return t.Len == o.Len && t.Val.Equal(o.Val)
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case TyUint:
		return "uint256"
	case TyAddress:
		return "address"
	case TyBool:
		return "bool"
	case TyMapping:
		return fmt.Sprintf("mapping(%s => %s)", t.Key, t.Val)
	case TyArray:
		return fmt.Sprintf("%s[%d]", t.Val, t.Len)
	}
	return "?"
}

// Contract is a parsed contract.
type Contract struct {
	Name      string
	Vars      []*StateVar
	Modifiers []*Modifier
	Functions []*Function
	Ctor      *Function // nil if absent
}

// StateVar is a contract-level variable. Slot is assigned by declaration
// order, matching the Solidity storage layout.
type StateVar struct {
	Name string
	Type *Type
	Slot int
	Init Expr // optional initializer (constant expression), applied at deploy
}

// Modifier is a function modifier with a single `_;` placeholder.
type Modifier struct {
	Name string
	Body []Stmt // contains exactly one *PlaceholderStmt
	Line int
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// Function is a contract function (or constructor when Name == "").
type Function struct {
	Name      string
	Params    []*Param
	Ret       *Type // nil for void
	Public    bool
	Payable   bool
	Modifiers []string
	Body      []Stmt
	Line      int
	// Cells is the number of 32-byte memory cells (params, locals, hoisted
	// temporaries) the function needs; set by Check.
	Cells int
}

// Signature returns the canonical ABI signature, e.g. "kill()" or
// "transfer(address,uint256)".
func (f *Function) Signature() string {
	s := f.Name + "("
	for i, p := range f.Params {
		if i > 0 {
			s += ","
		}
		s += p.Type.String()
	}
	return s + ")"
}

// --- Statements ---

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// DeclStmt declares and initializes a local variable.
type DeclStmt struct {
	Name string
	Type *Type
	Init Expr
	Line int
	// binding is the memory-cell binding allocated by the checker.
	binding *Binding
}

// AssignStmt assigns to an lvalue. Op is '=' for plain assignment, '+' or '-'
// for the compound forms.
type AssignStmt struct {
	LHS  Expr // *IdentExpr or *IndexExpr
	Op   byte
	RHS  Expr
	Line int
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// RequireStmt is require(e) or assert(e): revert unless e holds.
type RequireStmt struct {
	Cond     Expr
	IsAssert bool
	Line     int
}

// RevertStmt aborts unconditionally.
type RevertStmt struct{ Line int }

// ReturnStmt exits the function, optionally with a value.
type ReturnStmt struct {
	Value Expr // nil for bare return
	Line  int
}

// ExprStmt evaluates an expression for effect (internal or builtin call).
type ExprStmt struct {
	X    Expr
	Line int
}

// SelfdestructStmt is selfdestruct(beneficiary).
type SelfdestructStmt struct {
	Beneficiary Expr
	Line        int
}

// DelegatecallStmt is the low-level `delegatecall(target);` builtin: a
// DELEGATECALL with empty calldata, result discarded. It models the
// inline-assembly usage of the paper's "tainted delegatecall" examples.
type DelegatecallStmt struct {
	Target Expr
	Line   int
}

// TransferStmt is `send(to, amount);`: a value-bearing CALL with empty
// calldata; reverts on failure (the semantics of Solidity's
// `to.transfer(amount)`).
type TransferStmt struct {
	To     Expr
	Amount Expr
	Line   int
}

// PlaceholderStmt is the `_;` inside a modifier body.
type PlaceholderStmt struct{ Line int }

func (*DeclStmt) stmtNode()         {}
func (*AssignStmt) stmtNode()       {}
func (*IfStmt) stmtNode()           {}
func (*WhileStmt) stmtNode()        {}
func (*RequireStmt) stmtNode()      {}
func (*RevertStmt) stmtNode()       {}
func (*ReturnStmt) stmtNode()       {}
func (*ExprStmt) stmtNode()         {}
func (*SelfdestructStmt) stmtNode() {}
func (*DelegatecallStmt) stmtNode() {}
func (*TransferStmt) stmtNode()     {}
func (*PlaceholderStmt) stmtNode()  {}

// --- Expressions ---

// Expr is an expression node. Checked expressions carry their type.
type Expr interface {
	exprNode()
	// Type returns the checked type (nil before checking).
	Type() *Type
}

type typed struct{ ty *Type }

func (t *typed) Type() *Type { return t.ty }

// NumberExpr is an integer literal (uint256).
type NumberExpr struct {
	typed
	Text string
	Line int
}

// BoolExpr is true/false.
type BoolExpr struct {
	typed
	Value bool
	Line  int
}

// IdentExpr references a local, parameter, or state variable.
type IdentExpr struct {
	typed
	Name string
	Line int
	// Resolved binding, set by the checker.
	Binding *Binding
}

// Binding records what an identifier resolves to.
type Binding struct {
	Kind     BindKind
	StateVar *StateVar // for BindState
	LocalIdx int       // for BindLocal/BindParam: memory cell index
	Ty       *Type
}

// BindKind enumerates identifier binding kinds.
type BindKind int

// Binding kinds.
const (
	BindState BindKind = iota
	BindLocal
	BindParam
)

// MsgExpr is msg.sender or msg.value.
type MsgExpr struct {
	typed
	Field string // "sender" or "value"
	Line  int
}

// BlockExpr is block.number or block.timestamp.
type BlockExpr struct {
	typed
	Field string
	Line  int
}

// ThisExpr is `this` (the contract's own address).
type ThisExpr struct {
	typed
	Line int
}

// IndexExpr is base[key] on a mapping.
type IndexExpr struct {
	typed
	Base Expr
	Key  Expr
	Line int
}

// BinaryExpr is a binary operation; Op is the token kind.
type BinaryExpr struct {
	typed
	Op   TokKind
	L, R Expr
	Line int
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	typed
	Op   TokKind
	X    Expr
	Line int
}

// CallExpr calls an internal function or a builtin.
type CallExpr struct {
	typed
	Name string
	Args []Expr
	Line int
	// Resolved target for internal calls; nil for builtins.
	Target *Function
	// Builtin is set for recognized builtins: "balance", "keccak256",
	// "staticcall_unchecked", "staticcall_checked", "address", "uint256".
	Builtin string
}

// Builtin names recognized by the checker.
var builtinNames = map[string]bool{
	"balance":              true, // balance(address) -> uint256
	"keccak256":            true, // keccak256(word) -> uint256
	"staticcall_unchecked": true, // 0x-style staticcall, NO returndatasize check
	"staticcall_checked":   true, // same call with the post-fix check
	"address":              true, // cast
	"uint256":              true, // cast
}

func (*NumberExpr) exprNode() {}
func (*BoolExpr) exprNode()   {}
func (*IdentExpr) exprNode()  {}
func (*MsgExpr) exprNode()    {}
func (*BlockExpr) exprNode()  {}
func (*ThisExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
