package minisol

import (
	"fmt"

	"ethainter/internal/crypto"
	"ethainter/internal/u256"
)

// FuncABI describes one public function's external interface.
type FuncABI struct {
	Name     string
	Sig      string // canonical signature, e.g. "transfer(address,uint256)"
	Selector [4]byte
	Params   []*Type
	Ret      *Type // nil for void
	Payable  bool
}

// SelectorOf computes the 4-byte function selector of a canonical signature.
func SelectorOf(sig string) [4]byte {
	h := crypto.Keccak256([]byte(sig))
	var s [4]byte
	copy(s[:], h[:4])
	return s
}

// SelectorWord returns the selector as it appears on the EVM stack after
// `CALLDATALOAD(0) >> 224`.
func (a FuncABI) SelectorWord() u256.U256 {
	return u256.FromBytes(a.Selector[:])
}

// EncodeCall builds calldata for the function: selector followed by one
// 32-byte word per argument.
func (a FuncABI) EncodeCall(args ...u256.U256) ([]byte, error) {
	if len(args) != len(a.Params) {
		return nil, fmt.Errorf("minisol: %s takes %d arguments, got %d", a.Sig, len(a.Params), len(args))
	}
	out := make([]byte, 4+32*len(args))
	copy(out, a.Selector[:])
	for i, arg := range args {
		w := arg.Bytes32()
		copy(out[4+32*i:], w[:])
	}
	return out, nil
}

// MustEncodeCall is EncodeCall that panics on arity mismatch.
func (a FuncABI) MustEncodeCall(args ...u256.U256) []byte {
	b, err := a.EncodeCall(args...)
	if err != nil {
		panic(err)
	}
	return b
}

// DecodeReturnWord extracts the single return word from call output.
func DecodeReturnWord(out []byte) (u256.U256, error) {
	if len(out) < 32 {
		return u256.Zero, fmt.Errorf("minisol: return data too short: %d bytes", len(out))
	}
	return u256.FromBytes(out[:32]), nil
}

// ABIOf derives the external interface of the contract's public functions.
func ABIOf(c *Contract) []FuncABI {
	var out []FuncABI
	for _, fn := range c.Functions {
		if !fn.Public {
			continue
		}
		sig := fn.Signature()
		abi := FuncABI{
			Name:     fn.Name,
			Sig:      sig,
			Selector: SelectorOf(sig),
			Ret:      fn.Ret,
			Payable:  fn.Payable,
		}
		for _, p := range fn.Params {
			abi.Params = append(abi.Params, p.Type)
		}
		out = append(out, abi)
	}
	return out
}

// FindABI returns the ABI entry for name, if present.
func FindABI(abis []FuncABI, name string) (FuncABI, bool) {
	for _, a := range abis {
		if a.Name == name {
			return a, true
		}
	}
	return FuncABI{}, false
}
