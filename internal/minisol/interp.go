package minisol

import (
	"fmt"
	"strings"

	"ethainter/internal/crypto"
	"ethainter/internal/u256"
)

// Interp is a reference tree-walking interpreter for checked contracts. It
// executes at source level with its own storage model, independent of the
// code generator, the EVM, and the storage layout — which makes it a
// differential-testing oracle for the whole compile-and-execute pipeline:
// random programs are run both ways and their observable behaviour (returned
// words, reverts, state read back through getters) must agree.
type Interp struct {
	contract *Contract
	// elem holds elementary state variables by name.
	elem map[string]u256.U256
	// aggr holds mapping and array elements, keyed by variable name plus the
	// full key path.
	aggr map[string]u256.U256
	// Destroyed is set once selfdestruct executes.
	Destroyed bool
	// Balance is the contract's own balance (msg.value accrues; send debits).
	Balance u256.U256
	// Sent records send(to, amount) transfers, in order.
	Sent []Transfer

	steps int
}

// Transfer is one value transfer performed by send().
type Transfer struct {
	To     u256.U256
	Amount u256.U256
}

// CallResult is the outcome of one source-level call.
type CallResult struct {
	Ret      *u256.U256 // nil for void functions
	Reverted bool
}

// interpRevert signals require/assert/revert unwinding.
type interpRevert struct{ reason string }

// interpStop signals a return statement, carrying the value.
type interpStop struct{ val *u256.U256 }

// interpHalt signals selfdestruct: the whole call halts successfully, past
// any internal-call frames.
type interpHalt struct{}

const maxInterpSteps = 1_000_000

// NewInterp builds an interpreter for a checked contract and runs its state
// initializers and constructor with the given deployer as msg.sender.
func NewInterp(c *Contract, deployer u256.U256) (*Interp, error) {
	ip := &Interp{
		contract: c,
		elem:     map[string]u256.U256{},
		aggr:     map[string]u256.U256{},
	}
	for _, v := range c.Vars {
		if v.Init != nil {
			val, err := constEval(v.Init)
			if err != nil {
				return nil, err
			}
			ip.elem[v.Name] = val
		}
	}
	if c.Ctor != nil {
		res := ip.run(c.Ctor, frameEnv{sender: deployer})
		if res.Reverted {
			return nil, fmt.Errorf("minisol: constructor reverted")
		}
	}
	return ip, nil
}

// constEval evaluates constant initializer expressions.
func constEval(e Expr) (u256.U256, error) {
	switch e := e.(type) {
	case *NumberExpr:
		return parseNumber(e.Text)
	case *BoolExpr:
		if e.Value {
			return u256.One, nil
		}
		return u256.Zero, nil
	case *CallExpr:
		if e.Builtin == "address" || e.Builtin == "uint256" {
			v, err := constEval(e.Args[0])
			if err != nil {
				return u256.Zero, err
			}
			if e.Builtin == "address" {
				v = v.And(addressMask)
			}
			return v, nil
		}
	}
	return u256.Zero, fmt.Errorf("minisol: non-constant initializer")
}

// frameEnv is the per-call environment.
type frameEnv struct {
	sender u256.U256
	value  u256.U256
	locals map[string]u256.U256
	fn     *Function
}

// Call invokes a public function by name.
func (ip *Interp) Call(name string, sender, value u256.U256, args ...u256.U256) (CallResult, error) {
	if ip.Destroyed {
		// Calls to destroyed contracts succeed with empty output on chain;
		// mirror that as a void success.
		return CallResult{}, nil
	}
	var fn *Function
	for _, f := range ip.contract.Functions {
		if f.Name == name && f.Public {
			fn = f
		}
	}
	if fn == nil {
		return CallResult{}, fmt.Errorf("minisol: no public function %q", name)
	}
	if len(args) != len(fn.Params) {
		return CallResult{}, fmt.Errorf("minisol: %s takes %d args, got %d", name, len(fn.Params), len(args))
	}
	if !fn.Payable && !value.IsZero() {
		return CallResult{Reverted: true}, nil
	}
	env := frameEnv{sender: sender, value: value, locals: map[string]u256.U256{}, fn: fn}
	for i, p := range fn.Params {
		v := args[i]
		if p.Type.Kind == TyAddress {
			v = v.And(addressMask)
		}
		if p.Type.Kind == TyBool {
			if !v.IsZero() {
				v = u256.One
			}
		}
		env.locals[p.Name] = v
	}
	// State changes roll back on revert: snapshot.
	snapElem, snapAggr := copyState(ip.elem), copyState(ip.aggr)
	snapBal, snapSent := ip.Balance, len(ip.Sent)
	ip.Balance = ip.Balance.Add(value)
	res := ip.run(fn, env)
	if res.Reverted {
		ip.elem, ip.aggr = snapElem, snapAggr
		ip.Balance, ip.Sent = snapBal, ip.Sent[:snapSent]
	}
	return res, nil
}

func copyState(m map[string]u256.U256) map[string]u256.U256 {
	out := make(map[string]u256.U256, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// run executes a function body, translating the revert/return panics into a
// CallResult.
func (ip *Interp) run(fn *Function, env frameEnv) (res CallResult) {
	if env.locals == nil {
		env.locals = map[string]u256.U256{}
	}
	env.fn = fn
	defer func() {
		switch r := recover().(type) {
		case nil:
		case interpRevert:
			res = CallResult{Reverted: true}
		case interpStop:
			res = CallResult{Ret: r.val}
		case interpHalt:
			res = CallResult{}
		default:
			panic(r)
		}
	}()
	ip.stmts(fn.Body, env)
	if fn.Ret != nil {
		zero := u256.Zero
		return CallResult{Ret: &zero}
	}
	return CallResult{}
}

func (ip *Interp) tick() {
	ip.steps++
	if ip.steps > maxInterpSteps {
		panic(interpRevert{reason: "step budget exceeded"})
	}
}

func (ip *Interp) stmts(list []Stmt, env frameEnv) {
	for _, s := range list {
		ip.stmt(s, env)
	}
}

func (ip *Interp) stmt(s Stmt, env frameEnv) {
	ip.tick()
	switch s := s.(type) {
	case *DeclStmt:
		v := u256.Zero
		if s.Init != nil {
			v = ip.eval(s.Init, env)
		}
		env.locals[s.Name] = ip.coerce(v, s.Type)
	case *AssignStmt:
		rhs := ip.eval(s.RHS, env)
		if s.Op != '=' {
			cur := ip.eval(s.LHS, env)
			if s.Op == '+' {
				rhs = cur.Add(rhs)
			} else {
				rhs = cur.Sub(rhs)
			}
		}
		ip.assign(s.LHS, rhs, env)
	case *IfStmt:
		if !ip.eval(s.Cond, env).IsZero() {
			ip.stmts(s.Then, env)
		} else {
			ip.stmts(s.Else, env)
		}
	case *WhileStmt:
		for !ip.eval(s.Cond, env).IsZero() {
			ip.tick()
			ip.stmts(s.Body, env)
		}
	case *RequireStmt:
		if ip.eval(s.Cond, env).IsZero() {
			panic(interpRevert{reason: "require"})
		}
	case *RevertStmt:
		panic(interpRevert{reason: "revert"})
	case *ReturnStmt:
		if s.Value == nil {
			panic(interpStop{})
		}
		v := ip.eval(s.Value, env)
		panic(interpStop{val: &v})
	case *ExprStmt:
		if call, ok := s.X.(*CallExpr); ok && call.Target != nil {
			ip.callInternal(call, env)
			return
		}
		ip.eval(s.X, env)
	case *SelfdestructStmt:
		beneficiary := ip.eval(s.Beneficiary, env)
		ip.Sent = append(ip.Sent, Transfer{To: beneficiary, Amount: ip.Balance})
		ip.Balance = u256.Zero
		ip.Destroyed = true
		panic(interpHalt{})
	case *DelegatecallStmt:
		ip.eval(s.Target, env) // target evaluated; the call itself is a no-op
	case *TransferStmt:
		to := ip.eval(s.To, env)
		amount := ip.eval(s.Amount, env)
		if ip.Balance.Lt(amount) {
			panic(interpRevert{reason: "send: insufficient balance"})
		}
		ip.Balance = ip.Balance.Sub(amount)
		ip.Sent = append(ip.Sent, Transfer{To: to, Amount: amount})
	default:
		panic(fmt.Sprintf("minisol: interp: unknown statement %T", s))
	}
}

func (ip *Interp) assign(lhs Expr, val u256.U256, env frameEnv) {
	switch lhs := lhs.(type) {
	case *IdentExpr:
		val = ip.coerce(val, lhs.Type())
		switch lhs.Binding.Kind {
		case BindLocal, BindParam:
			env.locals[lhs.Name] = val
		case BindState:
			ip.elem[lhs.Name] = val
		}
	case *IndexExpr:
		ip.aggr[ip.aggrKey(lhs, env)] = ip.coerce(val, lhs.Type())
	default:
		panic(fmt.Sprintf("minisol: interp: unassignable %T", lhs))
	}
}

// aggrKey derives the state key for a mapping/array element access.
func (ip *Interp) aggrKey(x *IndexExpr, env frameEnv) string {
	var parts []string
	cur := Expr(x)
	for {
		idx, ok := cur.(*IndexExpr)
		if !ok {
			break
		}
		k := ip.eval(idx.Key, env)
		parts = append(parts, k.Hex64())
		cur = idx.Base
	}
	base := cur.(*IdentExpr)
	// parts are innermost-key-first; reverse for a stable path.
	var b strings.Builder
	b.WriteString(base.Name)
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteString("\x00")
		b.WriteString(parts[i])
	}
	return b.String()
}

// coerce normalizes a value for the destination type the way the compiled
// code does (address masking, bool canonicalization).
func (ip *Interp) coerce(v u256.U256, t *Type) u256.U256 {
	if t == nil {
		return v
	}
	switch t.Kind {
	case TyAddress:
		return v.And(addressMask)
	case TyBool:
		if v.IsZero() {
			return u256.Zero
		}
		return u256.One
	}
	return v
}

func (ip *Interp) eval(e Expr, env frameEnv) u256.U256 {
	ip.tick()
	switch e := e.(type) {
	case *NumberExpr:
		v, err := parseNumber(e.Text)
		if err != nil {
			panic(err)
		}
		return v
	case *BoolExpr:
		if e.Value {
			return u256.One
		}
		return u256.Zero
	case *IdentExpr:
		switch e.Binding.Kind {
		case BindLocal, BindParam:
			return env.locals[e.Name]
		case BindState:
			return ip.elem[e.Name]
		}
	case *MsgExpr:
		if e.Field == "sender" {
			return env.sender
		}
		return env.value
	case *BlockExpr:
		// The differential harness pins block.number/timestamp to the chain
		// defaults; random programs avoid them, targeted tests may not.
		if e.Field == "number" {
			return u256.FromUint64(1)
		}
		return u256.FromUint64(1_500_000_000)
	case *ThisExpr:
		return u256.Zero // the harness compares only behaviours not using `this` as a value
	case *IndexExpr:
		return ip.aggr[ip.aggrKey(e, env)]
	case *BinaryExpr:
		return ip.binary(e, env)
	case *UnaryExpr:
		x := ip.eval(e.X, env)
		if e.Op == TokBang {
			if x.IsZero() {
				return u256.One
			}
			return u256.Zero
		}
		return u256.Zero.Sub(x)
	case *CallExpr:
		if e.Target != nil {
			ret := ip.callInternal(e, env)
			if ret == nil {
				panic("minisol: interp: void call as value")
			}
			return *ret
		}
		return ip.builtin(e, env)
	}
	panic(fmt.Sprintf("minisol: interp: unknown expression %T", e))
}

func boolWord(b bool) u256.U256 {
	if b {
		return u256.One
	}
	return u256.Zero
}

func (ip *Interp) binary(e *BinaryExpr, env frameEnv) u256.U256 {
	l := ip.eval(e.L, env)
	r := ip.eval(e.R, env)
	switch e.Op {
	case TokPlus:
		return l.Add(r)
	case TokMinus:
		return l.Sub(r)
	case TokStar:
		return l.Mul(r)
	case TokSlash:
		return l.Div(r)
	case TokPercent:
		return l.Mod(r)
	case TokAmp:
		return l.And(r)
	case TokPipe:
		return l.Or(r)
	case TokCaret:
		return l.Xor(r)
	case TokShl:
		return shiftByWord(l, r, u256.U256.Shl)
	case TokShr:
		return shiftByWord(l, r, u256.U256.Shr)
	case TokAndAnd:
		return l.And(r) // operands are canonical 0/1 bools
	case TokOrOr:
		return l.Or(r)
	case TokEq:
		return boolWord(l == r)
	case TokNeq:
		return boolWord(l != r)
	case TokLt:
		return boolWord(l.Lt(r))
	case TokGt:
		return boolWord(l.Gt(r))
	case TokLe:
		return boolWord(!l.Gt(r))
	case TokGe:
		return boolWord(!l.Lt(r))
	}
	panic(fmt.Sprintf("minisol: interp: unknown binary op %d", e.Op))
}

func shiftByWord(val, by u256.U256, f func(u256.U256, uint) u256.U256) u256.U256 {
	if !by.IsUint64() || by.Uint64() > 255 {
		return f(val, 256)
	}
	return f(val, uint(by.Uint64()))
}

func (ip *Interp) callInternal(call *CallExpr, env frameEnv) *u256.U256 {
	callee := call.Target
	inner := frameEnv{sender: env.sender, value: env.value, locals: map[string]u256.U256{}}
	for i, a := range call.Args {
		inner.locals[callee.Params[i].Name] = ip.coerce(ip.eval(a, env), callee.Params[i].Type)
	}
	res := ip.runInternal(callee, inner)
	return res
}

// runInternal executes an internal function, propagating reverts to the
// caller but containing returns.
func (ip *Interp) runInternal(fn *Function, env frameEnv) (ret *u256.U256) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case interpStop:
			ret = r.val
			if ret == nil && fn.Ret != nil {
				zero := u256.Zero
				ret = &zero
			}
		default:
			panic(r) // reverts (and selfdestruct stops) unwind further
		}
	}()
	env.fn = fn
	ip.stmts(fn.Body, env)
	if fn.Ret != nil {
		zero := u256.Zero
		return &zero
	}
	return nil
}

func (ip *Interp) builtin(e *CallExpr, env frameEnv) u256.U256 {
	switch e.Builtin {
	case "address":
		return ip.eval(e.Args[0], env).And(addressMask)
	case "uint256":
		return ip.eval(e.Args[0], env)
	case "balance":
		addr := ip.eval(e.Args[0], env)
		if addr.IsZero() {
			return ip.Balance // balance(this) under the harness's ThisExpr model
		}
		return u256.Zero
	case "keccak256":
		v := ip.eval(e.Args[0], env)
		b := v.Bytes32()
		return u256.FromBytes32(crypto.Keccak256(b[:]))
	case "staticcall_unchecked", "staticcall_checked":
		// No external world at source level: evaluate operands for effect;
		// the unchecked variant reflects its input (the empty-callee case),
		// the checked variant yields zero.
		ip.eval(e.Args[0], env)
		in := ip.eval(e.Args[1], env)
		if e.Builtin == "staticcall_unchecked" {
			return in
		}
		return u256.Zero
	}
	panic(fmt.Sprintf("minisol: interp: unknown builtin %q", e.Builtin))
}
