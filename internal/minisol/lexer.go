package minisol

import (
	"fmt"
	"strings"
)

// lexer converts source text to tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// Lex tokenizes src, returning the token stream or the first lexical error.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByte2() == '*':
			startLine := l.line
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("minisol:%d: unterminated block comment", startLine)
				}
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		start.Kind = TokEOF
		return start, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		begin := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[begin:l.pos]
		if text == "_" {
			start.Kind = TokUnderscore
			start.Text = text
			return start, nil
		}
		start.Kind = TokIdent
		start.Text = text
		return start, nil
	case isDigit(c):
		begin := l.pos
		if c == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
			l.advance()
			l.advance()
			if !isHexDigit(l.peekByte()) {
				return Token{}, fmt.Errorf("minisol:%d:%d: malformed hex literal", start.Line, start.Col)
			}
			for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
				l.advance()
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		start.Kind = TokNumber
		start.Text = l.src[begin:l.pos]
		return start, nil
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("minisol:%d:%d: unterminated string", start.Line, start.Col)
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			b.WriteByte(ch)
		}
		start.Kind = TokString
		start.Text = b.String()
		return start, nil
	}

	two := func(kind TokKind) (Token, error) {
		l.advance()
		l.advance()
		start.Kind = kind
		return start, nil
	}
	one := func(kind TokKind) (Token, error) {
		l.advance()
		start.Kind = kind
		return start, nil
	}
	d := l.peekByte2()
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ';':
		return one(TokSemi)
	case ',':
		return one(TokComma)
	case '.':
		return one(TokDot)
	case '=':
		if d == '=' {
			return two(TokEq)
		}
		if d == '>' {
			return two(TokArrow)
		}
		return one(TokAssign)
	case '!':
		if d == '=' {
			return two(TokNeq)
		}
		return one(TokBang)
	case '<':
		if d == '=' {
			return two(TokLe)
		}
		if d == '<' {
			return two(TokShl)
		}
		return one(TokLt)
	case '>':
		if d == '=' {
			return two(TokGe)
		}
		if d == '>' {
			return two(TokShr)
		}
		return one(TokGt)
	case '+':
		if d == '=' {
			return two(TokPlusAssign)
		}
		return one(TokPlus)
	case '-':
		if d == '=' {
			return two(TokMinusAssign)
		}
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '&':
		if d == '&' {
			return two(TokAndAnd)
		}
		return one(TokAmp)
	case '|':
		if d == '|' {
			return two(TokOrOr)
		}
		return one(TokPipe)
	case '^':
		return one(TokCaret)
	}
	return Token{}, fmt.Errorf("minisol:%d:%d: unexpected character %q", start.Line, start.Col, string(c))
}
